// Command simlint runs the simulator's static-analysis suite: the
// repo-specific analyzers built on the standard library's go/parser,
// go/ast, and go/types only (see internal/lint for the list — per-package
// checks plus the whole-program checkpoint-coverage, hot-path
// escape-analysis, and determinism-taint passes). It exits 0 when the
// checked packages are clean, 1 when any diagnostic fires, and 2 on load
// errors.
//
// Usage:
//
//	simlint              # lint the whole module (./...)
//	simlint ./internal/core ./cmd/...
//	simlint -list        # describe the analyzers
//	simlint -json        # machine-readable diagnostics (one JSON array)
//	simlint -github      # GitHub Actions ::error annotations
//	simlint -report      # group diagnostics by analyzer with counts
//
// Inside GitHub Actions (GITHUB_ACTIONS=true), ::error annotations are
// emitted automatically in addition to the normal output, so violations
// surface inline on the pull-request diff.
//
// Diagnostics are printed one per line as file:line:col: [analyzer]
// message, and can be suppressed in source with
// `//lint:ignore <analyzer> <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pdip/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations (automatic when GITHUB_ACTIONS=true)")
	report := flag.Bool("report", false, "group diagnostics by analyzer with counts")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: simlint [-list] [-json] [-github] [-report] [packages]\n\n")
		fmt.Fprintf(out, "Packages are directories or dir/... trees inside the module; default ./...\n\n")
		fmt.Fprintf(out, "Analyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(out, "  %-18s %s\n", a.Name(), a.Doc())
		}
		fmt.Fprintf(out, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		return
	}

	diags, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	rel := func(path string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return path
	}

	switch {
	case *jsonOut:
		printJSON(diags, rel)
	case *report:
		printReport(diags, rel)
	default:
		for _, d := range diags {
			d.Pos.Filename = rel(d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if *github || os.Getenv("GITHUB_ACTIONS") == "true" {
		printGitHub(diags, rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable diagnostic shape.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// printJSON emits the diagnostics as one JSON array.
func printJSON(diags []lint.Diagnostic, rel func(string) string) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Analyzer: d.Analyzer,
			File:     rel(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
}

// printGitHub emits one ::error workflow command per diagnostic, which
// GitHub Actions renders as an inline annotation on the diff.
func printGitHub(diags []lint.Diagnostic, rel func(string) string) {
	for _, d := range diags {
		// Workflow-command property values escape %, \r, \n, and the
		// property separators.
		esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
		propEsc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
		fmt.Printf("::error file=%s,line=%d,col=%d,title=simlint %s::%s\n",
			propEsc.Replace(rel(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
			d.Analyzer, esc.Replace(d.Message))
	}
}

// printReport groups the diagnostics by analyzer, worst-offender first —
// the triage view behind `make lint-fix-report`.
func printReport(diags []lint.Diagnostic, rel func(string) string) {
	if len(diags) == 0 {
		fmt.Println("simlint: clean (0 diagnostics)")
		return
	}
	byAnalyzer := map[string][]lint.Diagnostic{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
	}
	names := make([]string, 0, len(byAnalyzer))
	for name := range byAnalyzer {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(byAnalyzer[names[i]]) != len(byAnalyzer[names[j]]) {
			return len(byAnalyzer[names[i]]) > len(byAnalyzer[names[j]])
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		ds := byAnalyzer[name]
		fmt.Printf("%s: %d diagnostic(s)\n", name, len(ds))
		for _, d := range ds {
			fmt.Printf("  %s:%d:%d: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message)
		}
	}
}

// run loads every package named by patterns and applies all analyzers.
func run(patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot(".")
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}

	var pkgs []*lint.Package
	seen := map[string]bool{}
	add := func(p *lint.Package) {
		if !seen[p.ImportPath] {
			seen[p.ImportPath] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pat := range patterns {
		if dir, ok := strings.CutSuffix(pat, "/..."); ok {
			if dir == "." || dir == "" {
				dir = root
			}
			tree, err := loader.LoadTree(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range tree {
				add(p)
			}
			continue
		}
		p, err := loader.LoadDir(pat)
		if err != nil {
			return nil, err
		}
		add(p)
	}

	// Surface type-check failures: analyzers run best-effort on partial
	// information, but a broken package should not pass silently.
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", p.ImportPath, e)
		}
	}
	return lint.Run(lint.NewProgram(loader, pkgs), lint.All()), nil
}

// findModuleRoot walks upward from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
