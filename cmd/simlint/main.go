// Command simlint runs the simulator's static-analysis suite: four
// repo-specific analyzers (determinism, counterownership, portdiscipline,
// cfgbounds) built on the standard library's go/parser, go/ast, and
// go/types only. It exits 0 when the checked packages are clean, 1 when
// any diagnostic fires, and 2 on load errors.
//
// Usage:
//
//	simlint              # lint the whole module (./...)
//	simlint ./internal/core ./cmd/...
//	simlint -list        # describe the analyzers
//
// Diagnostics are printed one per line as file:line:col: [analyzer]
// message, and can be suppressed in source with
// `//lint:ignore <analyzer> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pdip/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: simlint [-list] [packages]\n\n")
		fmt.Fprintf(out, "Packages are directories or dir/... trees inside the module; default ./...\n\n")
		fmt.Fprintf(out, "Analyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(out, "  %-17s %s\n", a.Name(), a.Doc())
		}
		fmt.Fprintf(out, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-17s %s\n", a.Name(), a.Doc())
		}
		return
	}

	diags, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// run loads every package named by patterns and applies all analyzers.
func run(patterns []string) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot(".")
	if err != nil {
		return nil, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}

	var pkgs []*lint.Package
	seen := map[string]bool{}
	add := func(p *lint.Package) {
		if !seen[p.ImportPath] {
			seen[p.ImportPath] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pat := range patterns {
		if dir, ok := strings.CutSuffix(pat, "/..."); ok {
			if dir == "." || dir == "" {
				dir = root
			}
			tree, err := loader.LoadTree(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range tree {
				add(p)
			}
			continue
		}
		p, err := loader.LoadDir(pat)
		if err != nil {
			return nil, err
		}
		add(p)
	}

	// Surface type-check failures: analyzers run best-effort on partial
	// information, but a broken package should not pass silently.
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", p.ImportPath, e)
		}
	}
	return lint.Run(pkgs, lint.All()), nil
}

// findModuleRoot walks upward from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
