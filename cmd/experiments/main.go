// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig10                # one artifact
//	experiments -run all                  # everything (minutes)
//	experiments -run fig9 -quick          # reduced instruction budgets
//	experiments -run fig10 -benchmarks cassandra,tpcc,verilator
//	experiments -run fig10 -metrics runs.json   # dump every run's registry
//	experiments -record-trace traces -benchmarks kafka,tomcat
//	experiments -run fig10 -trace traces -trace-differential
//	experiments -run fig10 -fabric-workers 4      # distribute cells over a localhost fleet
//	experiments -run fig10 -shard 0/4             # static benchmark shard (no coordinator)
//	experiments -list
//	experiments -list-benchmarks
//	experiments -list-policies
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pdip"
	"pdip/internal/fabric"
	"pdip/internal/profiling"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (fig1, fig3, fig4, fig9, fig10, fig11, tab4, fig12, fig13, tab5, fig14, fig15, fig16) or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "reduced instruction budgets (smoke scale)")
		warmup   = flag.Uint64("warmup", 0, "override warmup instructions")
		measure  = flag.Uint64("measure", 0, "override measured instructions")
		benchCSV = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 16)")
		par      = flag.Int("parallel", 0, "max concurrent runs (0 = GOMAXPROCS)")
		metrics  = flag.String("metrics", "", "after the experiment, write every executed run's full metrics registry as JSON to this path, keyed by benchmark/policy")
		listB    = flag.Bool("list-benchmarks", false, "print Table 2 benchmark registry and exit")
		listP    = flag.Bool("list-policies", false, "print Table 3 policy registry and exit")
		noFF     = flag.Bool("no-fast-forward", false, "step every cycle instead of fast-forwarding idle windows (metrics are bit-identical either way)")
		ckDir    = flag.String("checkpoint-dir", "", "cache warm simulator states in this directory (content-addressed), so repeat invocations skip warmup")
		ckGCMB   = flag.Int64("checkpoint-gc-mb", 0, "after the experiment, delete oldest checkpoints until -checkpoint-dir is under this many MiB (0 = never collect)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile covering every run to this path")
		memProf  = flag.String("memprofile", "", "write a post-experiment heap profile to this path")
		traceDir = flag.String("trace", "", "drive every run from ChampSim traces in this directory (<benchmark>.champsim or .champsim.gz) instead of the synthetic walker")
		traceDif = flag.Bool("trace-differential", false, "with -trace: cross-check every decoded instruction against the synthetic walker; any divergence fails the run")
		recDir   = flag.String("record-trace", "", "record every selected benchmark's synthetic stream as gzipped ChampSim traces into this directory and exit")
		fabricN  = flag.Int("fabric-workers", 0, "distribute every run over this many in-process fabric workers sharing -checkpoint-dir (0 = run locally)")
		shard    = flag.String("shard", "", "run only the i-th of n static benchmark shards ('i/n') — the coordinator-free way to split a grid across machines")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	// Discovery flags mirror cmd/pdipsim, so the grids an experiment can
	// sweep (-benchmarks subsets, policy columns) are enumerable here too.
	if *listB {
		fmt.Printf("%-16s %-12s %s\n", "BENCHMARK", "SUITE", "DESCRIPTION")
		for _, p := range pdip.Benchmarks() {
			fmt.Printf("%-16s %-12s %s\n", p.Name, p.Suite, p.Description)
		}
		return
	}
	if *listP {
		fmt.Printf("%-24s %s\n", "POLICY", "DESCRIPTION")
		for _, p := range pdip.Policies() {
			fmt.Printf("%-24s %s\n", p.Name, p.Description)
		}
		return
	}

	if *list || (*run == "" && *recDir == "") {
		fmt.Println("available experiments:")
		for _, e := range pdip.Experiments() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Title)
		}
		return
	}

	o := pdip.DefaultOptions()
	if *quick {
		o = pdip.QuickOptions()
	}
	if *warmup > 0 {
		o.Warmup = *warmup
	}
	if *measure > 0 {
		o.Measure = *measure
	}
	if *benchCSV != "" {
		o.Benchmarks = strings.Split(*benchCSV, ",")
	}
	if *shard != "" {
		i, n, err := fabric.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		benches := o.Benchmarks
		if len(benches) == 0 {
			benches = pdip.BenchmarkNames()
		}
		o.Benchmarks = fabric.Shard(benches, i, n)
		if len(o.Benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "experiments: shard %s of %d benchmarks is empty\n", *shard, len(benches))
			return
		}
	}
	o.Parallelism = *par
	o.NoFastForward = *noFF
	o.TraceDir = *traceDir
	o.TraceDifferential = *traceDif

	if *recDir != "" {
		if err := recordTraces(o, *recDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	var ck *pdip.CheckpointDir
	if *ckDir != "" {
		ck = pdip.NewCheckpointDir(*ckDir, 0)
		defer gcCheckpoints(ck, *ckGCMB)
	}
	runner := pdip.NewRunnerWithDir(*par, ck)
	var fleet *fabric.Fleet
	if *fabricN > 0 {
		// Route every cache-missing run through a localhost fleet whose
		// workers share -checkpoint-dir's store; the experiment code is
		// unchanged, and each warm tuple is decoded once per process.
		fleet = fabric.StartFleetWithDir(*fabricN, 1, ck, fabric.Config{})
		defer fleet.Close()
		runner.SetExecutor(fleet.Exec)
	}
	if *run == "all" {
		for _, e := range pdip.Experiments() {
			out, err := e.Run(runner, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", e.ID+":", err)
				os.Exit(1)
			}
			fmt.Println("== " + e.Title + " ==")
			fmt.Println(out)
		}
		dumpMetrics(runner, *metrics)
		reportStats(runner, fleet)
		return
	}
	e, err := pdip.ExperimentByID(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	out, err := e.Run(runner, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Println("== " + e.Title + " ==")
	fmt.Println(out)
	dumpMetrics(runner, *metrics)
	reportStats(runner, fleet)
}

// recordTraces exports every selected benchmark's synthetic instruction
// stream into dir as <benchmark>.champsim.gz, sized to the options'
// warmup+measure budget plus no-wrap slack — ready for a later run with
// -trace pointed at the same directory.
func recordTraces(o pdip.Options, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	benches := o.Benchmarks
	if len(benches) == 0 {
		benches = pdip.BenchmarkNames()
	}
	for _, b := range benches {
		spec := pdip.RunSpec{Benchmark: b, Policy: "baseline", Warmup: o.Warmup, Measure: o.Measure}
		path := filepath.Join(dir, b+".champsim.gz")
		if err := pdip.RecordTrace(spec, path, 0); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: recorded %s -> %s\n", b, path)
	}
	return nil
}

// reportStats summarises execution and warm-state reuse on stderr, once,
// from the Runner.Stats() accessor (plus the fleet's aggregate when the
// runs were distributed): runs executed vs memoised, and how warmups were
// served — simulated, in-memory, or forked from the on-disk store.
func reportStats(runner *pdip.Runner, fleet *fabric.Fleet) {
	s := runner.Stats()
	if fleet != nil {
		// The local runner only memoises; the workers executed. Report
		// the cluster-wide counters the coordinator aggregated.
		fs := fleet.Stats()
		fmt.Fprintf(os.Stderr,
			"experiments: fabric: %d cells over %d workers (%d completed, %d failed, %d retries, %d re-queues)\n",
			fs.Cells, fs.Workers, fs.Completed, fs.Failed, fs.Retries, fs.Requeues)
		s.RunsExecuted = fs.Runner.RunsExecuted
		s.Checkpoint = fs.Runner.Checkpoint
	}
	if s.RunsExecuted == 0 && s.CacheHits == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: runs: %d executed, %d memoisation hits\n", s.RunsExecuted, s.CacheHits)
	ck := s.Checkpoint
	if ck.Forks == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"experiments: checkpoints: %d forked runs from %d simulated warmups (%d in-memory hits, %d store-cache forks, %d disk hits, %d disk stores)\n",
		ck.Forks, ck.WarmupsExecuted, ck.MemoryHits, ck.DirCacheHits, ck.DiskHits, ck.DiskStores)
}

// gcCheckpoints trims the warm-state store to maxMB mebibytes, oldest
// checkpoints first, after the experiment's stores have landed. A zero
// budget disables collection.
func gcCheckpoints(ck *pdip.CheckpointDir, maxMB int64) {
	if maxMB <= 0 {
		return
	}
	n, freed, err := ck.GC(maxMB << 20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: checkpoint-gc:", err)
		return
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "experiments: checkpoint-gc: removed %d checkpoints (%.1f MiB) from %s\n",
			n, float64(freed)/(1<<20), ck.Path())
	}
}

// dumpMetrics writes every memoised run's full metric snapshot to path as
// one JSON object keyed by "benchmark/policy" spec keys.
func dumpMetrics(runner *pdip.Runner, path string) {
	if path == "" {
		return
	}
	all := make(map[string]pdip.Snapshot)
	for _, res := range runner.Results() {
		all[res.Spec.Key()] = res.Metrics
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(all); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote metrics for %d runs to %s\n", len(all), path)
}
