// Command benchtrack converts `go test -bench` output into a stable JSON
// snapshot for tracking simulator performance across commits.
//
// It reads benchmark output on stdin and writes one JSON object keyed by
// benchmark name (GOMAXPROCS suffix stripped), each entry carrying the
// metrics the perf harness cares about: ns/op, allocs/op, B/op, and —
// for benchmarks that report it — simulated cycles per second of host
// time. `make bench-track` pipes the standard suite through it to emit
// BENCH_simulator.json; diffing that file against the committed snapshot
// is the before/after evidence for any perf PR.
//
// Usage:
//
//	go test -bench=. -benchmem | benchtrack -o BENCH_simulator.json
//	go test -bench=Micro -benchmem | benchtrack        # JSON to stdout
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's tracked metrics. Zero-valued fields are
// omitted so benchmarks that don't report a metric (e.g. simcycles/s)
// stay compact in the snapshot.
type Entry struct {
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec,omitempty"`
}

func main() {
	out := flag.String("o", "", "output path for the JSON snapshot (default: stdout)")
	flag.Parse()

	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrack:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchtrack: no benchmark lines on stdin (run with `go test -bench=... -benchmem | benchtrack`)")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtrack:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchtrack:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrack:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchtrack: wrote %d benchmarks to %s\n", len(entries), *out)
	}
}

// parse extracts benchmark result lines from r. The Go testing package
// emits one line per benchmark: the name (with a -N GOMAXPROCS suffix),
// the iteration count, then value/unit pairs.
func parse(r *os.File) (map[string]Entry, error) {
	entries := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		e := entries[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "simcycles/s":
				e.SimCyclesPerSec = v
			}
		}
		entries[name] = e
	}
	return entries, sc.Err()
}
