// Command benchtrack converts `go test -bench` output into a stable JSON
// snapshot for tracking simulator performance across commits.
//
// It reads benchmark output on stdin and writes one JSON object keyed by
// benchmark name (GOMAXPROCS suffix stripped), each entry carrying the
// metrics the perf harness cares about: ns/op, allocs/op, B/op, and —
// for benchmarks that report it — simulated cycles per second of host
// time. `make bench-track` pipes the standard suite through it to emit
// BENCH_simulator.json; diffing that file against the committed snapshot
// is the before/after evidence for any perf PR.
//
// Usage:
//
// With -diff, benchtrack instead compares the freshly parsed results
// against a committed snapshot and exits nonzero when any benchmark's
// ns/op regressed beyond -threshold (default 15%) — the CI guard that a
// perf-sensitive change cannot silently slow the simulator down.
// -threshold-for tightens (or loosens) the gate for rows matching a
// regexp, so low-variance benchmarks can be held to a stricter budget
// than the noisy end-to-end grids; the flag repeats, first match wins.
//
// Usage:
//
//	go test -bench=. -benchmem | benchtrack -o BENCH_simulator.json
//	go test -bench=Micro -benchmem | benchtrack        # JSON to stdout
//	go test -bench=. -benchmem | benchtrack -diff BENCH_simulator.json
//	... | benchtrack -diff BENCH_simulator.json -threshold-for '^BenchmarkCheckpoint=0.10'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's tracked metrics. Zero-valued fields are
// omitted so benchmarks that don't report a metric (e.g. simcycles/s)
// stay compact in the snapshot.
type Entry struct {
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec,omitempty"`
}

// thresholdRule is one -threshold-for override: benchmarks whose name
// matches re are gated at frac instead of the global -threshold.
type thresholdRule struct {
	re   *regexp.Regexp
	frac float64
}

// thresholdRules implements flag.Value for the repeatable -threshold-for
// flag. Rules apply in the order given; the first match wins.
type thresholdRules []thresholdRule

func (t *thresholdRules) String() string {
	parts := make([]string, len(*t))
	for i, r := range *t {
		parts[i] = fmt.Sprintf("%s=%g", r.re, r.frac)
	}
	return strings.Join(parts, ",")
}

func (t *thresholdRules) Set(s string) error {
	i := strings.LastIndex(s, "=")
	if i <= 0 {
		return fmt.Errorf("bad -threshold-for %q: want <regexp>=<fraction>", s)
	}
	re, err := regexp.Compile(s[:i])
	if err != nil {
		return fmt.Errorf("bad -threshold-for pattern %q: %w", s[:i], err)
	}
	frac, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil || frac < 0 {
		return fmt.Errorf("bad -threshold-for fraction %q: want a non-negative number", s[i+1:])
	}
	*t = append(*t, thresholdRule{re: re, frac: frac})
	return nil
}

// thresholdFor resolves the gate for one benchmark name.
func (t thresholdRules) thresholdFor(name string, fallback float64) float64 {
	for _, r := range t {
		if r.re.MatchString(name) {
			return r.frac
		}
	}
	return fallback
}

func main() {
	out := flag.String("o", "", "output path for the JSON snapshot (default: stdout)")
	diff := flag.String("diff", "", "compare parsed results against this committed snapshot instead of writing one; exit nonzero on ns/op regression beyond -threshold")
	threshold := flag.Float64("threshold", 0.15, "with -diff: maximum tolerated fractional ns/op regression (0.15 = 15%)")
	var rules thresholdRules
	flag.Var(&rules, "threshold-for", "with -diff: per-row override as <regexp>=<fraction>, e.g. '^BenchmarkCheckpoint=0.10' (repeatable; first match wins over -threshold)")
	flag.Parse()

	entries, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrack:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchtrack: no benchmark lines on stdin (run with `go test -bench=... -benchmem | benchtrack`)")
		os.Exit(1)
	}

	if *diff != "" {
		if err := diffSnapshot(entries, *diff, *threshold, rules); err != nil {
			fmt.Fprintln(os.Stderr, "benchtrack:", err)
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtrack:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchtrack:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrack:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchtrack: wrote %d benchmarks to %s\n", len(entries), *out)
	}
}

// diffSnapshot compares fresh results against the snapshot at path and
// returns an error when any benchmark present in both regressed in ns/op
// by more than its threshold — the first matching -threshold-for rule,
// falling back to the global value. Benchmarks only on one side are
// reported but never fail the gate (new benchmarks land with the PR that
// adds them; removed ones disappear with theirs) — and timing noise in
// either direction below the threshold is reported as ok.
func diffSnapshot(entries map[string]Entry, path string, threshold float64, rules thresholdRules) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var base map[string]Entry
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		cur := entries[name]
		old, ok := base[name]
		if !ok {
			fmt.Printf("%-48s %12.0f ns/op  (new, not in %s)\n", name, cur.NsPerOp, path)
			continue
		}
		if old.NsPerOp <= 0 {
			continue
		}
		gate := rules.thresholdFor(name, threshold)
		delta := (cur.NsPerOp - old.NsPerOp) / old.NsPerOp
		status := "ok"
		if delta > gate {
			status = fmt.Sprintf("REGRESSION (beyond %.0f%%)", gate*100)
			regressions = append(regressions, name)
		}
		fmt.Printf("%-48s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, old.NsPerOp, cur.NsPerOp, delta*100, status)
	}
	baseNames := make([]string, 0, len(base))
	for name := range base {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := entries[name]; !ok {
			fmt.Printf("%-48s (in %s but not in this run)\n", name, path)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond their ns/op threshold: %s",
			len(regressions), strings.Join(regressions, ", "))
	}
	fmt.Printf("benchtrack: no ns/op regression beyond threshold across %d benchmarks\n", len(names))
	return nil
}

// parse extracts benchmark result lines from r. The Go testing package
// emits one line per benchmark: the name (with a -N GOMAXPROCS suffix),
// the iteration count, then value/unit pairs.
func parse(r *os.File) (map[string]Entry, error) {
	entries := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		e := entries[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "simcycles/s":
				e.SimCyclesPerSec = v
			}
		}
		entries[name] = e
	}
	return entries, sc.Err()
}
