// Command gridd runs the distributed experiment fabric: a coordinator
// that shards a benchmark×policy×BTB×seed grid over workers which share
// warm state through a content-addressed checkpoint directory, plus a
// self-contained localhost mode.
//
// Usage:
//
//	gridd run -grid smoke -workers 4              # localhost fleet, one process
//	gridd run -grid fig10 -workers 0 -out a.json  # serial reference (Runner.RunAll)
//	gridd serve -addr :7070 -grid grid.json -out merged.json
//	gridd work -connect host:7070 -parallel 2 -checkpoint-dir /shared/ck
//
// Grids are JSON files (see internal/fabric.Grid) or the built-ins
// "fig10" (headline grid: all 16 benchmarks × baseline + Figure 10's six
// policy columns) and "smoke" (3 cells, seconds). A distributed run's
// merged document is byte-identical to a serial run of the same grid —
// `cmp` the -out files to audit a deployment.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"pdip/internal/checkpoint"
	"pdip/internal/fabric"
	"pdip/internal/harness"
	"pdip/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "work":
		err = workCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gridd: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  gridd run   -grid <file|fig10|smoke> [-workers N] [-parallel N] [-checkpoint-dir d] [-checkpoint-gc-mb N] [-out f]
  gridd serve -addr host:port -grid <file|fig10|smoke> [-shard i/n] [-out f]
  gridd work  -connect host:port [-parallel N] [-name id] [-checkpoint-dir d] [-checkpoint-gc-mb N]
`)
	os.Exit(2)
}

// gridFlags are the grid-selection flags run and serve share.
type gridFlags struct {
	grid    *string
	shard   *string
	warmup  *uint64
	measure *uint64
}

func addGridFlags(fs *flag.FlagSet) *gridFlags {
	return &gridFlags{
		grid:    fs.String("grid", "", "grid JSON file, or built-in 'fig10' / 'smoke'"),
		shard:   fs.String("shard", "", "run only the i-th of n static shards of the grid ('i/n')"),
		warmup:  fs.Uint64("warmup", 0, "override the grid's warmup instruction budget"),
		measure: fs.Uint64("measure", 0, "override the grid's measured instruction budget"),
	}
}

// specs resolves the flags into the expanded (and possibly sharded) job
// list.
func (gf *gridFlags) specs() ([]harness.RunSpec, error) {
	if *gf.grid == "" {
		return nil, fmt.Errorf("missing -grid (a JSON file, or built-in 'fig10' / 'smoke')")
	}
	g, err := builtinGrid(*gf.grid)
	if err != nil {
		return nil, err
	}
	if *gf.warmup > 0 {
		g.Warmup = *gf.warmup
	}
	if *gf.measure > 0 {
		g.Measure = *gf.measure
	}
	specs, err := g.Specs()
	if err != nil {
		return nil, err
	}
	if *gf.shard != "" {
		i, n, err := fabric.ParseShard(*gf.shard)
		if err != nil {
			return nil, err
		}
		specs = fabric.Shard(specs, i, n)
	}
	return specs, nil
}

// builtinGrid resolves a -grid argument: the two built-in names, else a
// JSON file path.
func builtinGrid(name string) (fabric.Grid, error) {
	switch name {
	case "fig10":
		// The headline grid: every benchmark × baseline + Figure 10's
		// policy columns at the full experiment scale.
		return fabric.Grid{
			Benchmarks: workload.Names(),
			Policies: []string{"baseline", "eip46", "eip-analytical", "emissary",
				"pdip44", "pdip44+emissary", "pdip44-zerocost"},
			Warmup:  300_000,
			Measure: 1_000_000,
		}, nil
	case "smoke":
		// Three cells in seconds, with sample streaming on — the
		// `make fabric-smoke` byte-identity gate.
		return fabric.Grid{
			Benchmarks:  []string{"cassandra", "kafka", "tpcc"},
			Policies:    []string{"pdip44"},
			Warmup:      20_000,
			Measure:     60_000,
			SampleEvery: 30_000,
		}, nil
	default:
		return fabric.LoadGrid(name)
	}
}

// writeDoc merges results and writes the canonical document to path
// ("" or "-" = stdout).
func writeDoc(path string, results []*harness.RunResult) error {
	cells, err := fabric.Merge(results)
	if err != nil {
		return err
	}
	if path == "" || path == "-" {
		return fabric.WriteMerged(os.Stdout, cells)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fabric.WriteMerged(f, cells); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gridd: wrote %d merged cells to %s\n", len(results), path)
	return nil
}

// reportStats prints the coordinator's aggregate accounting once, after
// the grid completes.
func reportStats(st fabric.Stats) {
	fmt.Fprintf(os.Stderr,
		"gridd: %d cells: %d completed, %d failed, %d retries, %d re-queues across %d workers\n",
		st.Cells, st.Completed, st.Failed, st.Retries, st.Requeues, st.Workers)
	ck := st.Runner.Checkpoint
	fmt.Fprintf(os.Stderr,
		"gridd: workers executed %d runs; checkpoints: %d forks from %d simulated warmups (%d memory hits, %d store-cache forks, %d disk hits, %d disk stores)\n",
		st.Runner.RunsExecuted, ck.Forks, ck.WarmupsExecuted, ck.MemoryHits, ck.DirCacheHits, ck.DiskHits, ck.DiskStores)
}

// gcStore trims the warm-state store to maxMB mebibytes, oldest
// checkpoints first. A zero budget disables collection.
func gcStore(ck *checkpoint.Dir, maxMB int64) {
	if ck == nil || maxMB <= 0 {
		return
	}
	n, freed, err := ck.GC(maxMB << 20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridd: checkpoint-gc:", err)
		return
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "gridd: checkpoint-gc: removed %d checkpoints (%.1f MiB) from %s\n",
			n, float64(freed)/(1<<20), ck.Path())
	}
}

// runCmd is the self-contained localhost mode: a coordinator plus
// -workers in-process workers ( -workers 0 = serial Runner.RunAll, the
// byte-identity reference).
func runCmd(argv []string) error {
	fs := flag.NewFlagSet("gridd run", flag.ExitOnError)
	gf := addGridFlags(fs)
	workers := fs.Int("workers", 2, "fleet size (0 = run the grid serially in-process)")
	par := fs.Int("parallel", 1, "concurrent jobs per worker")
	ckDir := fs.String("checkpoint-dir", "", "shared warm-state checkpoint directory (default: private temp dir)")
	ckGCMB := fs.Int64("checkpoint-gc-mb", 0, "after the grid, delete oldest checkpoints until -checkpoint-dir is under this many MiB (0 = never collect)")
	out := fs.String("out", "", "write the merged-grid JSON document here (default stdout)")
	fs.Parse(argv)

	specs, err := gf.specs()
	if err != nil {
		return err
	}
	dir := *ckDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gridd-ck-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	ck := checkpoint.NewDir(dir, 0)
	defer gcStore(ck, *ckGCMB)

	var results []*harness.RunResult
	if *workers <= 0 {
		runner := harness.NewRunnerWithDir(*par, ck)
		results, err = runner.RunAll(specs)
		if err != nil {
			return err
		}
		s := runner.Stats()
		fmt.Fprintf(os.Stderr, "gridd: serial: executed %d runs (%d cache hits)\n", s.RunsExecuted, s.CacheHits)
	} else {
		fleet := fabric.StartFleetWithDir(*workers, *par, ck, fabric.Config{})
		defer fleet.Close()
		results, err = fleet.RunGrid(specs)
		if err != nil {
			return err
		}
		reportStats(fleet.Stats())
	}
	fmt.Fprint(os.Stderr, fabric.SummaryTable(results))
	return writeDoc(*out, results)
}

// serveCmd runs the coordinator of a multi-process deployment: it listens
// for `gridd work` processes, distributes the grid, writes the merged
// document, and drains the fleet.
func serveCmd(argv []string) error {
	fs := flag.NewFlagSet("gridd serve", flag.ExitOnError)
	gf := addGridFlags(fs)
	addr := fs.String("addr", "127.0.0.1:7070", "address to listen for workers on")
	out := fs.String("out", "", "write the merged-grid JSON document here (default stdout)")
	lease := fs.Duration("lease", 60*time.Second, "job lease: silent workers are re-queued after this")
	attempts := fs.Int("max-attempts", 3, "per-job assignment cap before a cell fails the grid")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "retry backoff unit after a job failure")
	fs.Parse(argv)

	specs, err := gf.specs()
	if err != nil {
		return err
	}
	coord := fabric.NewCoordinator(fabric.Config{
		LeaseTimeout: *lease,
		MaxAttempts:  *attempts,
		RetryBackoff: *backoff,
	})
	defer coord.Close()
	l, err := coord.ListenAndServe(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gridd: coordinating %d cells; listening on %s\n", len(specs), l.Addr())

	results, err := coord.RunGrid(specs)
	if err != nil {
		return err
	}
	reportStats(coord.Stats())
	fmt.Fprint(os.Stderr, fabric.SummaryTable(results))
	return writeDoc(*out, results)
}

// workCmd runs one worker process against a remote coordinator,
// retrying the dial briefly so workers may start before the coordinator.
func workCmd(argv []string) error {
	fs := flag.NewFlagSet("gridd work", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator address (host:port)")
	par := fs.Int("parallel", 1, "concurrent jobs")
	name := fs.String("name", "", "worker name in coordinator accounting (default host:pid)")
	ckDir := fs.String("checkpoint-dir", "", "shared warm-state checkpoint directory")
	ckGCMB := fs.Int64("checkpoint-gc-mb", 0, "after the coordinator drains this worker, delete oldest checkpoints until -checkpoint-dir is under this many MiB (0 = never collect)")
	fs.Parse(argv)

	if *connect == "" {
		return fmt.Errorf("missing -connect host:port")
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var conn net.Conn
	var err error
	for try := 0; try < 20; try++ {
		conn, err = net.Dial("tcp", *connect)
		if err == nil {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("connect %s: %w", *connect, err)
	}
	fmt.Fprintf(os.Stderr, "gridd: worker %s serving %s (%d slots)\n", *name, *connect, *par)
	var ck *checkpoint.Dir
	if *ckDir != "" {
		ck = checkpoint.NewDir(*ckDir, 0)
		defer gcStore(ck, *ckGCMB)
	}
	w := &fabric.Worker{
		Name:   *name,
		Runner: harness.NewRunnerWithDir(*par, ck),
		Slots:  *par,
	}
	return w.Run(conn)
}
