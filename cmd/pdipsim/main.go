// Command pdipsim runs one benchmark under one policy and prints the full
// statistics dump — the single-run front-end of the simulator.
//
// Usage:
//
//	pdipsim -bench cassandra -policy pdip44
//	pdipsim -bench cassandra -policy pdip44 -stats-json stats.json
//	pdipsim -bench cassandra -policy pdip44 -stats-json - -sample-interval 100000
//	pdipsim -bench kafka -record-trace kafka.champsim.gz
//	pdipsim -bench kafka -policy pdip44 -trace kafka.champsim.gz
//	pdipsim -bench kafka -policy pdip44 -trace kafka.champsim.gz -trace-differential
//	pdipsim -list-benchmarks
//	pdipsim -list-policies
//	pdipsim -print-config
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pdip"
	"pdip/internal/profiling"
)

func main() {
	var (
		bench    = flag.String("bench", "cassandra", "benchmark name (see -list-benchmarks)")
		jsonOut  = flag.Bool("json", false, "emit the raw statistics snapshot as JSON")
		statsOut = flag.String("stats-json", "", "write the full metrics registry (all named counters and gauges) as JSON to this path ('-' for stdout)")
		sampleN  = flag.Uint64("sample-interval", 0, "with -stats-json: also record a full snapshot every N measured instructions")
		pol      = flag.String("policy", "baseline", "policy name (see -list-policies)")
		warmup   = flag.Uint64("warmup", 300_000, "warmup instructions (stats discarded)")
		measure  = flag.Uint64("measure", 1_000_000, "measured instructions")
		btb      = flag.Int("btb", 0, "override BTB entry count (0 = Table 1 default)")
		listB    = flag.Bool("list-benchmarks", false, "print Table 2 benchmark registry and exit")
		listP    = flag.Bool("list-policies", false, "print Table 3 policy registry and exit")
		printCfg = flag.Bool("print-config", false, "print the Table 1 baseline configuration and exit")
		noFF     = flag.Bool("no-fast-forward", false, "step every cycle instead of fast-forwarding idle windows (metrics are bit-identical either way)")
		ckDir    = flag.String("checkpoint-dir", "", "cache the warm simulator state in this directory (content-addressed), so repeat invocations skip warmup")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile for the run to this path")
		memProf  = flag.String("memprofile", "", "write a post-run heap profile to this path")
		tracePth = flag.String("trace", "", "drive the run from this ChampSim trace (raw or .gz) instead of walking the synthetic CFG")
		traceDif = flag.Bool("trace-differential", false, "with -trace: cross-check every decoded instruction against the synthetic walker the trace was recorded from; any divergence fails the run")
		recTrace = flag.String("record-trace", "", "record the benchmark's synthetic instruction stream as a ChampSim trace to this path (gzipped when it ends in .gz) and exit")
		recN     = flag.Uint64("record-insts", 0, "with -record-trace: instruction count to record (0 = warmup+measure plus no-wrap slack)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdipsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
		}
	}()

	switch {
	case *listB:
		fmt.Printf("%-16s %-12s %s\n", "BENCHMARK", "SUITE", "DESCRIPTION")
		for _, p := range pdip.Benchmarks() {
			fmt.Printf("%-16s %-12s %s\n", p.Name, p.Suite, p.Description)
		}
		return
	case *listP:
		fmt.Printf("%-24s %s\n", "POLICY", "DESCRIPTION")
		for _, p := range pdip.Policies() {
			fmt.Printf("%-24s %s\n", p.Name, p.Description)
		}
		return
	case *printCfg:
		c := pdip.DefaultCoreConfig()
		fmt.Printf("L1I: %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L1I.SizeBytes>>10, c.Mem.L1I.Ways, c.Mem.L1I.HitLatency, c.Mem.L1I.MSHRs)
		fmt.Printf("L1D: %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L1D.SizeBytes>>10, c.Mem.L1D.Ways, c.Mem.L1D.HitLatency, c.Mem.L1D.MSHRs)
		fmt.Printf("L2:  %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L2.SizeBytes>>10, c.Mem.L2.Ways, c.Mem.L2.HitLatency, c.Mem.L2.MSHRs)
		fmt.Printf("L3:  %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L3.SizeBytes>>10, c.Mem.L3.Ways, c.Mem.L3.HitLatency, c.Mem.L3.MSHRs)
		fmt.Printf("DRAM latency: %d cycles\n", c.Mem.DRAMLatency)
		fmt.Printf("BTB: %d entries; FTQ: %d entries; PQ: %d lines\n", c.BPU.BTBEntries, c.FTQDepth, c.PQDepth)
		fmt.Printf("Decode/Retire: %d-wide; ROB: %d entries\n", c.DecodeWidth, c.ROBSize)
		return
	}

	spec := pdip.RunSpec{
		Benchmark:         *bench,
		Policy:            *pol,
		Warmup:            *warmup,
		Measure:           *measure,
		BTBEntries:        *btb,
		SampleEvery:       *sampleN,
		NoFastForward:     *noFF,
		TracePath:         *tracePth,
		TraceDifferential: *traceDif,
	}
	if *recTrace != "" {
		if err := pdip.RecordTrace(spec, *recTrace, *recN); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pdipsim: recorded %s as a ChampSim trace at %s\n", *bench, *recTrace)
		return
	}
	var res *pdip.RunResult
	if *ckDir != "" {
		// Route through the warm-state layer so the warmup checkpoint is
		// loaded from (or stored into) the cross-process cache.
		res, err = pdip.NewRunnerWithCheckpoints(1, *ckDir).Run(spec)
	} else {
		res, err = pdip.Run(spec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdipsim:", err)
		os.Exit(1)
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		if *statsOut == "-" {
			return // registry JSON went to stdout; skip the human dump
		}
		fmt.Fprintf(os.Stderr, "pdipsim: wrote %d metrics to %s\n",
			len(res.Metrics.Counters)+len(res.Metrics.Gauges), *statsOut)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Res); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		return
	}

	r := &res.Res
	c := &r.Core
	ret, fe, bs, be := c.TopDown.Shares()
	fmt.Printf("benchmark=%s policy=%s (%s, %.1fKB prefetch metadata, %.1fKB BTB)\n",
		*bench, *pol, r.PrefetcherName, r.PrefetcherKB, r.BTBKB)
	fmt.Printf("instructions: %d   cycles: %d   IPC: %.3f\n", c.Instructions, c.Cycles, r.IPC())
	fmt.Printf("top-down: retiring %.1f%%  front-end %.1f%%  bad-spec %.1f%%  back-end %.1f%%\n",
		ret*100, fe*100, bs*100, be*100)
	fmt.Printf("MPKI: L1I %.1f  L2I %.1f  L2D %.1f  L3 %.1f\n", r.L1IMPKI(), r.L2IMPKI(), r.L2DMPKI(), r.L3MPKI())
	fmt.Printf("resteers/KI: mispredict %.2f  btb-miss %.2f  return %.2f\n",
		c.PerKilo(c.ResteerMispredict), c.PerKilo(c.ResteerBTBMiss), c.PerKilo(c.ResteerReturn))
	fmt.Printf("decode starvation: %d cycles (%.1f%% of cycles), FEC share %.1f%%\n",
		c.DecodeStarvedCycles, float64(c.DecodeStarvedCycles)/float64(c.Cycles)*100, r.FECStallShare()*100)
	fmt.Printf("FEC: %.2f%% of retired line episodes (%d episodes; %d high-cost, %d with back-end stall)\n",
		r.FECLinePct()*100, c.FECLines, c.HighCostFECLines, c.HighCostBackend)
	if r.PQ.Issued > 0 {
		mp, lt := r.TriggerDistribution()
		fmt.Printf("prefetch: PPKI %.1f  accuracy %.1f%%  late %.1f%%  useless/KI %.1f  triggers %.0f%%/%.0f%% (mispredict/last-taken)\n",
			r.PPKI(), r.PrefetchAccuracy()*100, r.LatePrefetchRate()*100, r.UselessPrefetchPKI(), mp*100, lt*100)
	}
	fmt.Printf("BPU: cond mispredict %.2f/KI  BTB-missed taken %.2f/KI  ind mispredict %.2f/KI\n",
		c.PerKilo(r.BPU.CondMispredict), c.PerKilo(r.BPU.BTBMissTaken), c.PerKilo(r.BPU.IndMispredict))
}

// writeStats dumps the run's full metrics registry (final snapshot plus any
// interval samples) as deterministic JSON to path, or stdout for "-".
func writeStats(path string, res *pdip.RunResult) error {
	exp := pdip.MetricsExport{
		Benchmark: res.Spec.Benchmark,
		Policy:    res.Spec.Policy,
		Final:     res.Metrics,
		Samples:   res.Samples,
	}
	if path == "-" {
		return exp.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
