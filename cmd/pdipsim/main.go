// Command pdipsim runs one benchmark under one policy and prints the full
// statistics dump — the single-run front-end of the simulator.
//
// Usage:
//
//	pdipsim -bench cassandra -policy pdip44
//	pdipsim -bench cassandra -policy pdip44 -stats-json stats.json
//	pdipsim -bench cassandra -policy pdip44 -stats-json - -sample-interval 100000
//	pdipsim -bench kafka -record-trace kafka.champsim.gz
//	pdipsim -bench kafka -policy pdip44 -trace kafka.champsim.gz
//	pdipsim -bench kafka -policy pdip44 -trace kafka.champsim.gz -trace-differential
//	pdipsim -bench cassandra -policy pdip44 -cores 2
//	pdipsim -tenants cassandra/pdip44,tomcat/eip46
//	pdipsim -tenants a.json,b.json -shared-pdip
//	pdipsim -list-benchmarks
//	pdipsim -list-policies
//	pdipsim -print-config
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pdip"
	"pdip/internal/profiling"
)

func main() {
	var (
		bench    = flag.String("bench", "cassandra", "benchmark name (see -list-benchmarks)")
		jsonOut  = flag.Bool("json", false, "emit the raw statistics snapshot as JSON")
		statsOut = flag.String("stats-json", "", "write the full metrics registry (all named counters and gauges) as JSON to this path ('-' for stdout)")
		sampleN  = flag.Uint64("sample-interval", 0, "with -stats-json: also record a full snapshot every N measured instructions")
		pol      = flag.String("policy", "baseline", "policy name (see -list-policies)")
		warmup   = flag.Uint64("warmup", 300_000, "warmup instructions (stats discarded)")
		measure  = flag.Uint64("measure", 1_000_000, "measured instructions")
		btb      = flag.Int("btb", 0, "override BTB entry count (0 = Table 1 default)")
		listB    = flag.Bool("list-benchmarks", false, "print Table 2 benchmark registry and exit")
		listP    = flag.Bool("list-policies", false, "print Table 3 policy registry and exit")
		printCfg = flag.Bool("print-config", false, "print the Table 1 baseline configuration and exit")
		noFF     = flag.Bool("no-fast-forward", false, "step every cycle instead of fast-forwarding idle windows (metrics are bit-identical either way)")
		ckDir    = flag.String("checkpoint-dir", "", "cache the warm simulator state in this directory (content-addressed), so repeat invocations skip warmup")
		ckGCMB   = flag.Int64("checkpoint-gc-mb", 0, "after the run, delete oldest checkpoints until -checkpoint-dir is under this many MiB (0 = never collect)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile for the run to this path")
		memProf  = flag.String("memprofile", "", "write a post-run heap profile to this path")
		tracePth = flag.String("trace", "", "drive the run from this ChampSim trace (raw or .gz) instead of walking the synthetic CFG")
		traceDif = flag.Bool("trace-differential", false, "with -trace: cross-check every decoded instruction against the synthetic walker the trace was recorded from; any divergence fails the run")
		recTrace = flag.String("record-trace", "", "record the benchmark's synthetic instruction stream as a ChampSim trace to this path (gzipped when it ends in .gz) and exit")
		recN     = flag.Uint64("record-insts", 0, "with -record-trace: instruction count to record (0 = warmup+measure plus no-wrap slack)")
		cores    = flag.Int("cores", 1, "co-run this many copies of -bench/-policy on one socket (shared L2/L3)")
		tenants  = flag.String("tenants", "", "comma-separated tenant list, each 'bench/policy' or a .json spec file; co-scheduled on one socket (overrides -cores)")
		sharedP  = flag.Bool("shared-pdip", false, "multi-tenant: share tenant 0's prefetcher table across all cores instead of per-core tables")
		l2Res    = flag.Int("l2-reserve", 0, "multi-tenant: guaranteed L2 MSHR slots per tenant (0 = default split)")
		l3Res    = flag.Int("l3-reserve", 0, "multi-tenant: guaranteed L3 MSHR slots per tenant (0 = default split)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdipsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
		}
	}()

	switch {
	case *listB:
		fmt.Printf("%-16s %-12s %s\n", "BENCHMARK", "SUITE", "DESCRIPTION")
		for _, p := range pdip.Benchmarks() {
			fmt.Printf("%-16s %-12s %s\n", p.Name, p.Suite, p.Description)
		}
		return
	case *listP:
		fmt.Printf("%-24s %s\n", "POLICY", "DESCRIPTION")
		for _, p := range pdip.Policies() {
			fmt.Printf("%-24s %s\n", p.Name, p.Description)
		}
		return
	case *printCfg:
		c := pdip.DefaultCoreConfig()
		fmt.Printf("L1I: %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L1I.SizeBytes>>10, c.Mem.L1I.Ways, c.Mem.L1I.HitLatency, c.Mem.L1I.MSHRs)
		fmt.Printf("L1D: %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L1D.SizeBytes>>10, c.Mem.L1D.Ways, c.Mem.L1D.HitLatency, c.Mem.L1D.MSHRs)
		fmt.Printf("L2:  %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L2.SizeBytes>>10, c.Mem.L2.Ways, c.Mem.L2.HitLatency, c.Mem.L2.MSHRs)
		fmt.Printf("L3:  %dKB %d-way, %d-cycle hit, %d MSHR\n", c.Mem.L3.SizeBytes>>10, c.Mem.L3.Ways, c.Mem.L3.HitLatency, c.Mem.L3.MSHRs)
		fmt.Printf("DRAM latency: %d cycles\n", c.Mem.DRAMLatency)
		fmt.Printf("BTB: %d entries; FTQ: %d entries; PQ: %d lines\n", c.BPU.BTBEntries, c.FTQDepth, c.PQDepth)
		fmt.Printf("Decode/Retire: %d-wide; ROB: %d entries\n", c.DecodeWidth, c.ROBSize)
		return
	}

	spec := pdip.RunSpec{
		Benchmark:         *bench,
		Policy:            *pol,
		Warmup:            *warmup,
		Measure:           *measure,
		BTBEntries:        *btb,
		SampleEvery:       *sampleN,
		NoFastForward:     *noFF,
		TracePath:         *tracePth,
		TraceDifferential: *traceDif,
	}
	if *recTrace != "" {
		if err := pdip.RecordTrace(spec, *recTrace, *recN); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pdipsim: recorded %s as a ChampSim trace at %s\n", *bench, *recTrace)
		return
	}
	if *tenants != "" || *cores > 1 {
		specs, err := tenantSpecs(spec, *tenants, *cores)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		so := pdip.SocketOptions{SharedPrefetcher: *sharedP, L2Reserve: *l2Res, L3Reserve: *l3Res}
		sres, err := pdip.RunSocket(specs, so)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		if *statsOut != "" {
			if err := writeSocketStats(*statsOut, specs, sres); err != nil {
				fmt.Fprintln(os.Stderr, "pdipsim:", err)
				os.Exit(1)
			}
			if *statsOut == "-" {
				return // registry JSON went to stdout; skip the human dump
			}
			fmt.Fprintf(os.Stderr, "pdipsim: wrote %d metrics to %s\n",
				len(sres.Combined.Counters)+len(sres.Combined.Gauges), *statsOut)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sres); err != nil {
				fmt.Fprintln(os.Stderr, "pdipsim:", err)
				os.Exit(1)
			}
			return
		}
		printSocket(sres, so)
		return
	}
	var res *pdip.RunResult
	if *ckDir != "" {
		// Route through the warm-state layer so the warmup checkpoint is
		// loaded from (or stored into) the cross-process cache.
		ck := pdip.NewCheckpointDir(*ckDir, 0)
		res, err = pdip.NewRunnerWithDir(1, ck).Run(spec)
		if err == nil && *ckGCMB > 0 {
			if n, freed, gcErr := ck.GC(*ckGCMB << 20); gcErr != nil {
				fmt.Fprintln(os.Stderr, "pdipsim: checkpoint-gc:", gcErr)
			} else if n > 0 {
				fmt.Fprintf(os.Stderr, "pdipsim: checkpoint-gc: removed %d checkpoints (%.1f MiB) from %s\n",
					n, float64(freed)/(1<<20), *ckDir)
			}
		}
	} else {
		res, err = pdip.Run(spec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdipsim:", err)
		os.Exit(1)
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		if *statsOut == "-" {
			return // registry JSON went to stdout; skip the human dump
		}
		fmt.Fprintf(os.Stderr, "pdipsim: wrote %d metrics to %s\n",
			len(res.Metrics.Counters)+len(res.Metrics.Gauges), *statsOut)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Res); err != nil {
			fmt.Fprintln(os.Stderr, "pdipsim:", err)
			os.Exit(1)
		}
		return
	}

	r := &res.Res
	c := &r.Core
	ret, fe, bs, be := c.TopDown.Shares()
	fmt.Printf("benchmark=%s policy=%s (%s, %.1fKB prefetch metadata, %.1fKB BTB)\n",
		*bench, *pol, r.PrefetcherName, r.PrefetcherKB, r.BTBKB)
	fmt.Printf("instructions: %d   cycles: %d   IPC: %.3f\n", c.Instructions, c.Cycles, r.IPC())
	fmt.Printf("top-down: retiring %.1f%%  front-end %.1f%%  bad-spec %.1f%%  back-end %.1f%%\n",
		ret*100, fe*100, bs*100, be*100)
	fmt.Printf("MPKI: L1I %.1f  L2I %.1f  L2D %.1f  L3 %.1f\n", r.L1IMPKI(), r.L2IMPKI(), r.L2DMPKI(), r.L3MPKI())
	fmt.Printf("resteers/KI: mispredict %.2f  btb-miss %.2f  return %.2f\n",
		c.PerKilo(c.ResteerMispredict), c.PerKilo(c.ResteerBTBMiss), c.PerKilo(c.ResteerReturn))
	fmt.Printf("decode starvation: %d cycles (%.1f%% of cycles), FEC share %.1f%%\n",
		c.DecodeStarvedCycles, float64(c.DecodeStarvedCycles)/float64(c.Cycles)*100, r.FECStallShare()*100)
	fmt.Printf("FEC: %.2f%% of retired line episodes (%d episodes; %d high-cost, %d with back-end stall)\n",
		r.FECLinePct()*100, c.FECLines, c.HighCostFECLines, c.HighCostBackend)
	if r.PQ.Issued > 0 {
		mp, lt := r.TriggerDistribution()
		fmt.Printf("prefetch: PPKI %.1f  accuracy %.1f%%  late %.1f%%  useless/KI %.1f  triggers %.0f%%/%.0f%% (mispredict/last-taken)\n",
			r.PPKI(), r.PrefetchAccuracy()*100, r.LatePrefetchRate()*100, r.UselessPrefetchPKI(), mp*100, lt*100)
	}
	fmt.Printf("BPU: cond mispredict %.2f/KI  BTB-missed taken %.2f/KI  ind mispredict %.2f/KI\n",
		c.PerKilo(r.BPU.CondMispredict), c.PerKilo(r.BPU.BTBMissTaken), c.PerKilo(r.BPU.IndMispredict))
}

// tenantSpecs builds the socket's per-tenant spec list: either `cores`
// copies of the base spec, or one spec per -tenants entry. An entry is
// "bench/policy" or a path to a JSON file ({"benchmark","policy","btb"});
// warmup, measure, and fast-forward mode always come from the base flags
// (the socket runs one shared window).
func tenantSpecs(base pdip.RunSpec, list string, cores int) ([]pdip.RunSpec, error) {
	if list == "" {
		if cores < 1 {
			return nil, fmt.Errorf("-cores %d: need at least one core", cores)
		}
		specs := make([]pdip.RunSpec, cores)
		for i := range specs {
			specs[i] = base
		}
		return specs, nil
	}
	var specs []pdip.RunSpec
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		spec := base
		spec.BTBEntries = 0
		switch {
		case strings.HasSuffix(entry, ".json"):
			data, err := os.ReadFile(entry)
			if err != nil {
				return nil, err
			}
			var t struct {
				Benchmark string `json:"benchmark"`
				Policy    string `json:"policy"`
				BTB       int    `json:"btb"`
			}
			if err := json.Unmarshal(data, &t); err != nil {
				return nil, fmt.Errorf("%s: %w", entry, err)
			}
			spec.Benchmark, spec.Policy, spec.BTBEntries = t.Benchmark, t.Policy, t.BTB
		case strings.Count(entry, "/") == 1:
			parts := strings.SplitN(entry, "/", 2)
			spec.Benchmark, spec.Policy = parts[0], parts[1]
		default:
			return nil, fmt.Errorf("-tenants entry %q: want bench/policy or a .json spec file", entry)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// printSocket renders the per-tenant results table and the shared-level
// interference counters of a multi-tenant run.
func printSocket(res *pdip.SocketRunResult, so pdip.SocketOptions) {
	table := "per-core"
	if so.SharedPrefetcher {
		table = "shared"
	}
	fmt.Printf("socket: %d tenants, shared L2/L3, %s prefetch table, %d cycles\n",
		len(res.Tenants), table, res.Cycles)
	fmt.Printf("%-3s %-24s %8s %9s %9s %8s\n", "ID", "BENCH/POLICY", "IPC", "L1I-MPKI", "L2I-MPKI", "FEC%")
	for i, tr := range res.Tenants {
		fmt.Printf("%-3d %-24s %8.3f %9.1f %9.1f %7.1f%%\n",
			i, tr.Spec.Benchmark+"/"+tr.Spec.Policy,
			tr.Res.IPC(), tr.Res.L1IMPKI(), tr.Res.L2IMPKI(), tr.Res.FECLinePct()*100)
	}
	uc := res.Interference.Counters
	fmt.Printf("uncore: L2 %d accesses / %d misses; L3 %d accesses / %d misses\n",
		uc["uncore.l2.accesses"], uc["uncore.l2.misses"], uc["uncore.l3.accesses"], uc["uncore.l3.misses"])
	if len(res.Tenants) > 1 {
		fmt.Printf("%-3s %9s %10s %10s %10s %10s %10s\n",
			"ID", "REQUESTS", "L2-STEALS", "L2-XEVICT", "L3-STEALS", "L3-XEVICT", "SPEC-DROP")
		for i := range res.Tenants {
			p := fmt.Sprintf("uncore.tenant%d", i)
			fmt.Printf("%-3d %9d %10d %10d %10d %10d %10d\n", i,
				uc[p+".requests"],
				uc[p+".l2.mshr_steals"], uc[p+".l2.cross_evictions"],
				uc[p+".l3.mshr_steals"], uc[p+".l3.cross_evictions"],
				uc[p+".spec_dropped"])
		}
	}
}

// writeStats dumps the run's full metrics registry (final snapshot plus any
// interval samples) as deterministic JSON to path, or stdout for "-".
// writeSocketStats exports the socket run's combined namespace (each
// tenant's quota-frozen registry under "tenant<i>." plus the uncore
// counters) in the same MetricsExport envelope single runs use.
func writeSocketStats(path string, specs []pdip.RunSpec, res *pdip.SocketRunResult) error {
	var names []string
	for _, s := range specs {
		names = append(names, s.Benchmark+"/"+s.Policy)
	}
	exp := pdip.MetricsExport{
		Benchmark: strings.Join(names, ","),
		Policy:    "socket",
		Final:     res.Combined,
	}
	if path == "-" {
		return exp.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeStats(path string, res *pdip.RunResult) error {
	exp := pdip.MetricsExport{
		Benchmark: res.Spec.Benchmark,
		Policy:    res.Spec.Policy,
		Final:     res.Metrics,
		Samples:   res.Samples,
	}
	if path == "-" {
		return exp.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
