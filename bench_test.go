// Package pdip's benchmarks regenerate each table and figure of the paper
// at benchmark scale: one testing.B target per artifact, plus ablation
// benches for the design choices DESIGN.md calls out and micro-benches for
// the hot simulator paths.
//
// The figure/table benches run a reduced grid (two benchmarks, small
// instruction budgets) so `go test -bench=.` finishes in minutes; the full
// 16-benchmark reproduction is `go run ./cmd/experiments -run all`.
package pdip

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"pdip/internal/bpu"
	"pdip/internal/cache"
	"pdip/internal/cfg"
	"pdip/internal/checkpoint"
	"pdip/internal/core"
	"pdip/internal/fabric"
	"pdip/internal/harness"
	"pdip/internal/isa"
	"pdip/internal/mem"
	ipdip "pdip/internal/pdip"
	"pdip/internal/prefetch"
	"pdip/internal/trace"
	"pdip/internal/trace/champsim"
	"pdip/internal/workload"
)

func fecBenchEvent(trigger, line uint64) prefetch.RetireEvent {
	return prefetch.RetireEvent{
		Line:           isa.Addr(line),
		Missed:         true,
		FEC:            true,
		HighCost:       true,
		BackendEmpty:   true,
		StarveCycles:   20,
		ResteerTrigger: isa.Addr(trigger),
	}
}

func addr(a uint64) isa.Addr { return isa.Addr(a) }

// benchOptions is the reduced grid used by the per-figure benches.
func benchOptions() Options {
	return Options{
		Warmup:     30_000,
		Measure:    80_000,
		Benchmarks: []string{"kafka", "speedometer2.0"},
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r := NewRunner(0)
		if _, err := e.Run(r, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1TopDown(b *testing.B)              { benchExperiment(b, "fig1") }
func BenchmarkFig3PriorTechniques(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4FECBreakdown(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig9MPKI(b *testing.B)                 { benchExperiment(b, "fig9") }
func BenchmarkFig10Speedup(b *testing.B)             { benchExperiment(b, "fig10") }
func BenchmarkFig11LatePrefetch(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkTable4Accuracy(b *testing.B)           { benchExperiment(b, "tab4") }
func BenchmarkFig12FECStallReduction(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13TableSensitivity(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkTable5EnergyArea(b *testing.B)         { benchExperiment(b, "tab5") }
func BenchmarkFig16TriggerDistribution(b *testing.B) { benchExperiment(b, "fig16") }

// Fig 14/15 sweep six BTB sizes; bench a two-point subset.
func BenchmarkFig14BTBSensitivity(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r := NewRunner(0)
		for _, btb := range []int{4096, 8192} {
			for _, bench := range o.Benchmarks {
				for _, pol := range []string{"baseline", "pdip44"} {
					if _, err := r.Run(RunSpec{
						Benchmark: bench, Policy: pol,
						Warmup: o.Warmup, Measure: o.Measure, BTBEntries: btb,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

func BenchmarkFig15StorageFrontier(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r := NewRunner(0)
		for _, btb := range []int{4096, 16384} {
			for _, bench := range o.Benchmarks {
				for _, pol := range []string{"baseline", "pdip11", "eip46"} {
					if _, err := r.Run(RunSpec{
						Benchmark: bench, Policy: pol,
						Warmup: o.Warmup, Measure: o.Measure, BTBEntries: btb,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// --- ablation benches (DESIGN.md §6) ---

func benchPolicyPair(b *testing.B, a, c string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, pol := range []string{a, c} {
			if _, err := Run(RunSpec{
				Benchmark: "kafka", Policy: pol,
				Warmup: 30_000, Measure: 80_000,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationInsertProb compares the paper's 0.25 insertion filter
// against insert-always (§5.3).
func BenchmarkAblationInsertProb(b *testing.B) { benchPolicyPair(b, "pdip44", "pdip44-insert100") }

// BenchmarkAblationCandidateFilter compares high-cost+back-end-stall
// candidate selection against all-FEC insertion (§4.1/§5.3).
func BenchmarkAblationCandidateFilter(b *testing.B) { benchPolicyPair(b, "pdip44", "pdip44-allfec") }

// BenchmarkAblationMask compares the 4-bit following-blocks mask against
// single-line targets (§5.1).
func BenchmarkAblationMask(b *testing.B) { benchPolicyPair(b, "pdip44", "pdip44-nomask") }

// BenchmarkAblationReturnTriggers compares §5.2's return exclusion.
func BenchmarkAblationReturnTriggers(b *testing.B) { benchPolicyPair(b, "pdip44", "pdip44-returns") }

// BenchmarkAblationPQReserve compares the 2-MSHR demand reserve of §5.
func BenchmarkAblationPQReserve(b *testing.B) { benchPolicyPair(b, "pdip44", "pdip44-reserve0") }

// BenchmarkAblationFDIP measures the value of the decoupled front-end
// itself (§6.2: FDIP is worth 27.1% over a coupled core).
func BenchmarkAblationFDIP(b *testing.B) { benchPolicyPair(b, "baseline", "no-fdip") }

// BenchmarkFabricGridThroughput distributes a fixed 6-cell grid over
// localhost fleets of 1, 2, and 4 workers that share a pre-warmed
// checkpoint directory (warmed outside the timed region, so every job
// forks instead of simulating its warmup). Each iteration is one full
// grid: fleet start, distribution, measure-phase simulation, merge,
// drain. On a multi-core host the 2- and 4-worker rows show the fabric's
// scaling; on a single-core host they bound its overhead instead — see
// EXPERIMENTS.md.
func BenchmarkFabricGridThroughput(b *testing.B) {
	grid := fabric.Grid{
		Benchmarks: []string{"cassandra", "kafka", "tpcc"},
		Policies:   []string{"baseline", "pdip44"},
		Warmup:     20_000,
		Measure:    60_000,
	}
	specs, err := grid.Specs()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ckdir := b.TempDir()
			if _, err := harness.NewRunnerWithCheckpoints(0, ckdir).RunAll(specs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fleet := fabric.StartFleet(workers, 1, ckdir, fabric.Config{})
				results, err := fleet.RunGrid(specs)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(specs) {
					b.Fatalf("want %d cells, got %d", len(specs), len(results))
				}
				fleet.Close()
			}
			b.ReportMetric(float64(len(specs))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// --- simulator micro-benches ---

// BenchmarkSimulatorThroughput measures raw simulated instructions/second
// on the baseline machine (reported as ns/op for one instruction).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := workload.ByName("cassandra")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := prof.Program()
	if err != nil {
		b.Fatal(err)
	}
	c := core.DefaultConfig()
	c.Seed = 1
	co := core.MustNew(prog, c)
	b.ReportAllocs()
	b.ResetTimer()
	start := co.Cycles()
	if err := co.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	reportSimCycles(b, co.Cycles()-start)
}

// reportSimCycles publishes simulated cycles per wall-clock second — the
// end-to-end throughput number bench-track trends across commits.
func reportSimCycles(b *testing.B, cycles int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(cycles)/s, "simcycles/s")
	}
}

// BenchmarkWalker measures the synthetic trace generator alone.
func BenchmarkWalker(b *testing.B) {
	p := cfg.DefaultParams()
	p.NumFuncs = 512
	prog := cfg.MustGenerate(p)
	w := trace.New(prog, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

// --- per-stage micro-benches (EXPERIMENTS.md before/after table) ---
//
// These isolate the three hot paths the pipeline/port refactor touched:
// a resident cache lookup (one port message, replied at L1), the full
// fetch path (messages traversing L1I→L2→L3→DRAM on cold lines), and the
// prefetch-queue drain into the instruction port. CoreStep measures one
// whole-pipeline tick for the composite view.

// BenchmarkMicroCacheLookup measures a warm L1I lookup through the
// instruction port — the per-message overhead of the port model.
func BenchmarkMicroCacheLookup(b *testing.B) {
	h := mem.MustNew(core.DefaultConfig().Mem)
	p := h.InstPort()
	p.Send(mem.Req{Op: mem.OpFetch, Line: addr(0x1000), At: 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(mem.Req{Op: mem.OpFetch, Line: addr(0x1000), At: int64(i) + 10_000})
	}
}

// BenchmarkMicroFetchPath measures demand fetches over a footprint larger
// than the L1I, so messages regularly traverse the full port chain.
func BenchmarkMicroFetchPath(b *testing.B) {
	h := mem.MustNew(core.DefaultConfig().Mem)
	p := h.InstPort()
	const footprint = 4096 // lines; 256KB >> 32KB L1I
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := addr(uint64(i%footprint) * 64)
		p.Send(mem.Req{Op: mem.OpFetch, Line: line, At: int64(i) * 3})
	}
}

// BenchmarkMicroPQDrain measures enqueue + priority-ordered drain of the
// prefetch queue into the instruction port.
func BenchmarkMicroPQDrain(b *testing.B) {
	h := mem.MustNew(core.DefaultConfig().Mem)
	q := prefetch.NewQueue(32)
	noPriority := func(isa.Addr) bool { return false }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * 8 * 64
		for j := uint64(0); j < 8; j++ {
			q.Enqueue(prefetch.Request{Line: addr(base + j*64)})
		}
		q.Drain(h.InstPort(), int64(i)*4, noPriority)
	}
}

// BenchmarkMicroCoreStep measures one full pipeline tick (all six stages)
// on the default machine, reported per retired instruction.
func BenchmarkMicroCoreStep(b *testing.B) {
	prof, err := workload.ByName("kafka")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := prof.Program()
	if err != nil {
		b.Fatal(err)
	}
	c := core.DefaultConfig()
	c.Seed = 1
	co := core.MustNew(prog, c)
	b.ReportAllocs()
	b.ResetTimer()
	start := co.Cycles()
	if err := co.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	reportSimCycles(b, co.Cycles()-start)
}

// BenchmarkMicroTraceReplay measures one decoded instruction off the
// ChampSim trace front-end in standalone mode — the per-instruction cost a
// trace-driven run adds over the synthetic walker (BenchmarkWalker). The
// trace is raw (uncompressed) and the source is warmed past its first
// chunk, so steady state must stay at 0 allocs/op: Next reuses the chunk
// buffer and the fixed-size decode cache and RAS mirror, wrapping back to
// record 0 when the pass ends.
func BenchmarkMicroTraceReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "kafka.champsim")
	spec := RunSpec{Benchmark: "kafka", Policy: "baseline"}
	if err := RecordTrace(spec, path, 200_000); err != nil {
		b.Fatal(err)
	}
	src, err := champsim.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 50_000; i++ {
		src.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next()
	}
	b.StopTimer()
	if err := src.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroTAGEPredict measures one predict+train round trip of the
// TAGE conditional predictor — the folded-history memoization target.
func BenchmarkMicroTAGEPredict(b *testing.B) {
	t := bpu.NewTAGE()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := addr(0x1000 + uint64(i%512)*4)
		t.Predict(pc)
		t.Update(pc, i&3 != 0)
	}
}

// BenchmarkMicroMSHRPrune measures the MSHR bookkeeping of a first-level
// cache under a steady fill/expiry interleaving — the in-place prune and
// cached earliest-free paths.
func BenchmarkMicroMSHRPrune(b *testing.B) {
	c, err := cache.New(cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 2, MSHRs: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i) * 4
		c.Fill(addr(uint64(i%1024)*64), now, now+20, cache.FillOpts{})
		c.MSHRFree(now + 2)
		c.EarliestMSHRFree(now + 2)
	}
}

// --- checkpoint benches (EXPERIMENTS.md warm-state reuse table) ---

// BenchmarkCheckpointSaveRestore measures one full snapshot round trip of
// a warmed simulator: capture, serialize (the binary columnar on-disk
// format), deserialize, and restore into a fresh core — the per-fork
// overhead the warm-state layer pays instead of re-simulating the warmup
// window.
func BenchmarkCheckpointSaveRestore(b *testing.B) {
	prof, err := workload.ByName("cassandra")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := prof.Program()
	if err != nil {
		b.Fatal(err)
	}
	c := core.DefaultConfig()
	c.Seed = 1
	c.Prefetcher = ipdip.New(ipdip.DefaultConfig())
	co := core.MustNew(prog, c)
	if err := co.Run(60_000); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := co.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		if err := checkpoint.Encode(&buf, st); err != nil {
			b.Fatal(err)
		}
		st2, err := checkpoint.DecodeBytes(buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		cf := c
		cf.Prefetcher = ipdip.New(ipdip.DefaultConfig())
		if _, err := core.NewFromSnapshot(prog, cf, st2); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(buf.Len()), "ckpt-bytes")
		}
	}
}

// benchCheckpointFork measures the warm-fork path through the checkpoint
// store: Load a stored warm state from a Dir and instantiate a fresh core
// from it — the per-cell cost a grid pays once its warmup is amortized.
// cacheBytes selects the path under test: with the decoded-state cache
// disabled every Load pays the full disk decode; with it enabled every
// Load after the first is an in-memory hit and the fork cost is just the
// core rebuild.
func benchCheckpointFork(b *testing.B, cacheBytes int64) {
	prof, err := workload.ByName("cassandra")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := prof.Program()
	if err != nil {
		b.Fatal(err)
	}
	c := core.DefaultConfig()
	c.Seed = 1
	c.Prefetcher = ipdip.New(ipdip.DefaultConfig())
	co := core.MustNew(prog, c)
	if err := co.Run(60_000); err != nil {
		b.Fatal(err)
	}
	st, err := co.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	store := checkpoint.NewDir(b.TempDir(), cacheBytes)
	if err := store.Save("warm", st); err != nil {
		b.Fatal(err)
	}
	if _, _, err := store.Load("warm"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := store.Load("warm")
		if err != nil || got == nil {
			b.Fatalf("load: (%v, %v)", got, err)
		}
		cf := c
		cf.Prefetcher = ipdip.New(ipdip.DefaultConfig())
		if _, err := core.NewFromSnapshot(prog, cf, got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointForkDisk(b *testing.B)   { benchCheckpointFork(b, -1) }
func BenchmarkCheckpointForkCached(b *testing.B) { benchCheckpointFork(b, 0) }

// BenchmarkGridWarmupReuse measures a grid of specs that share one warm
// tuple through the runner's warm-state layer: one simulated warmup plus
// one snapshot fork per cell, against cellCount full warmups from scratch
// before this layer existed. The cells differ only in SampleEvery (set
// beyond the measure budget so no samples are actually recorded), which
// makes them distinct specs with identical simulated work.
func BenchmarkGridWarmupReuse(b *testing.B) {
	const cells = 6
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(0)
		specs := make([]RunSpec, cells)
		for j := range specs {
			specs[j] = RunSpec{
				Benchmark: "kafka", Policy: "pdip44",
				Warmup: 60_000, Measure: 40_000,
				SampleEvery: 1<<40 + uint64(j),
			}
		}
		if _, err := r.RunAll(specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSocketStep measures one socket arbitration round — N
// lockstep core ticks plus the socket-wide idle-skip decision and the
// shared-port traffic they generate — at 2 and 4 cores. The socket path
// must hold the same zero-alloc steady-state contract as the single-core
// step (perf-smoke gate), so fills crossing the arbitrated uncore port
// may not allocate.
func BenchmarkMicroSocketStep(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			names := workload.Names()
			tenants := make([]core.SocketTenant, n)
			for i := range tenants {
				prof, err := workload.ByName(names[i%len(names)])
				if err != nil {
					b.Fatal(err)
				}
				prog, err := prof.Program()
				if err != nil {
					b.Fatal(err)
				}
				c := core.DefaultConfig()
				c.Seed = uint64(i + 1)
				tenants[i] = core.SocketTenant{Prog: prog, Config: c}
			}
			s, err := core.NewSocket(tenants, core.SocketConfig{})
			if err != nil {
				b.Fatal(err)
			}
			// Warm every tenant past pool growth so the timed loop is
			// steady state.
			if err := s.Run(20_000); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := s.Cycles()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			reportSimCycles(b, s.Cycles()-start)
		})
	}
}

// BenchmarkPDIPTable measures table insert+lookup cost.
func BenchmarkPDIPTable(b *testing.B) {
	pc := ipdip.DefaultConfig()
	pc.InsertProb = 1.0
	pc.RequireHighCost = false
	p := ipdip.New(pc)
	reqs := p.OnFTQInsert(0x1000, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trig := 0x1000 + uint64(i%4096)*64
		p.OnLineRetired(fecBenchEvent(trig, trig+0x40000))
		reqs = p.OnFTQInsert(addr(trig), reqs[:0])
	}
}
