package pdip

import "testing"

func TestPublicRegistries(t *testing.T) {
	if len(Benchmarks()) != 16 {
		t.Fatalf("%d benchmarks", len(Benchmarks()))
	}
	if len(BenchmarkNames()) != 16 {
		t.Fatal("names mismatch")
	}
	if len(Policies()) == 0 {
		t.Fatal("empty policy registry")
	}
	if len(Experiments()) != 16 {
		t.Fatalf("%d experiments, want 16 (every table and figure plus ablations, the trace cross-check, and contention)", len(Experiments()))
	}
	if _, err := BenchmarkByName("tpcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := PolicyByName("pdip44"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExperimentByID("fig10"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRunSmoke(t *testing.T) {
	res, err := Run(RunSpec{Benchmark: "speedometer2.0", Policy: "pdip44", Warmup: 20_000, Measure: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.IPC() <= 0 {
		t.Fatal("non-positive IPC")
	}
}

func TestRunProfile(t *testing.T) {
	prof, err := BenchmarkByName("kafka")
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultCoreConfig()
	c.Seed = prof.CFG.Seed
	r, err := RunProfile(prof, c, 20_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Core.Instructions < 50_000 {
		t.Fatalf("measured %d instructions", r.Core.Instructions)
	}
}

func TestExperimentPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Experiment(bad) did not panic")
		}
	}()
	Experiment("fig99")
}

func TestDefaultConfigIsTable1(t *testing.T) {
	c := DefaultCoreConfig()
	if c.Mem.L1I.SizeBytes != 32<<10 || c.BPU.BTBEntries != 8192 ||
		c.FTQDepth != 24 || c.ROBSize != 512 || c.DecodeWidth != 12 {
		t.Fatal("default config drifted from Table 1")
	}
}
