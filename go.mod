module pdip

go 1.22
