// Package pdip is the public API of the PDIP reproduction: a cycle-level
// decoupled-front-end (FDIP) CPU simulator with the Priority Directed
// Instruction Prefetcher of Godala et al. (ASPLOS '24), the EIP baseline
// prefetcher, the EMISSARY L2 replacement policy, synthetic server
// workloads standing in for the paper's Table 2 benchmarks, and a harness
// that regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := pdip.Run(pdip.RunSpec{Benchmark: "cassandra", Policy: "pdip44"})
//	fmt.Println(res.Res.IPC())
//
// Or compare policies on a grid:
//
//	runner := pdip.NewRunner(0)
//	out, err := pdip.Experiment("fig10").Run(runner, pdip.QuickOptions())
//
// See cmd/pdipsim and cmd/experiments for command-line front-ends, and the
// examples/ directory for runnable programs.
package pdip

import (
	"pdip/internal/cfg"
	"pdip/internal/checkpoint"
	"pdip/internal/core"
	"pdip/internal/harness"
	"pdip/internal/metrics"
	"pdip/internal/policy"
	"pdip/internal/workload"
)

// RunSpec identifies one simulation run (benchmark × policy, instruction
// budgets, optional BTB override).
type RunSpec = harness.RunSpec

// RunResult pairs a RunSpec with the measured statistics snapshot.
type RunResult = harness.RunResult

// Result is the statistics snapshot of one run, with derived metrics
// (IPC, MPKIs, PPKI, prefetch accuracy, FEC shares).
type Result = core.Result

// Options scales a whole experiment (instruction budgets, benchmark
// subset, parallelism).
type Options = harness.Options

// Runner executes and memoises simulation runs, warming each
// (benchmark, policy, btb, warmup) tuple once and forking the warm
// snapshot for every spec that differs only in measure-phase knobs.
type Runner = harness.Runner

// CheckpointStats counts warm-state reuse (warmups simulated, snapshot
// forks, in-memory and on-disk cache hits) for a Runner.
type CheckpointStats = harness.CheckpointStats

// RunnerStats is Runner.Stats()'s programmatic execution report: runs
// executed, memoisation hits, and the warm-state reuse counters. The
// fabric coordinator aggregates one of these per worker.
type RunnerStats = harness.RunnerStats

// Profile is a synthetic benchmark profile (see Benchmarks).
type Profile = workload.Profile

// Policy is a named machine configuration (see Policies).
type Policy = policy.Policy

// ProgramParams parameterises synthetic program generation for custom
// workloads (see examples/custom_workload).
type ProgramParams = cfg.Params

// CoreConfig is the full simulated-core configuration (Table 1 defaults
// via DefaultCoreConfig).
type CoreConfig = core.Config

// Snapshot is a stable-ordered capture of every registered metric of a
// run: named counters (with histogram buckets expanded) plus float gauges.
type Snapshot = metrics.Snapshot

// Sample is one per-interval Snapshot taken every RunSpec.SampleEvery
// retired instructions.
type Sample = metrics.Sample

// MetricsExport is the JSON document written by `pdipsim -stats-json`:
// the final snapshot plus any interval samples.
type MetricsExport = metrics.Export

// SocketOptions sets socket-wide policy for a multi-tenant run: the
// shared-vs-per-core PDIP table mode and the per-tenant MSHR reservation
// at the shared levels.
type SocketOptions = harness.SocketOptions

// SocketRunResult packages one multi-tenant run: per-tenant results plus
// the shared-level (uncore) interference counters.
type SocketRunResult = harness.SocketRunResult

// Run executes one simulation run without memoisation.
func Run(spec RunSpec) (*RunResult, error) { return harness.Execute(spec) }

// RunSocket co-schedules one core per spec against a shared L2/L3 uncore
// with deterministic round-robin arbitration, and reports each tenant's
// result (measured over exactly its own instruction budget) alongside the
// shared-level interference counters (per-tenant traffic, MSHR steals,
// cross-tenant evictions). All specs must carry the same warmup/measure
// budgets. A single-spec call is bit-identical to Run.
func RunSocket(specs []RunSpec, so SocketOptions) (*SocketRunResult, error) {
	return harness.ExecuteSocket(specs, so)
}

// RecordTrace exports spec's synthetic instruction stream as a ChampSim
// trace at path (gzipped when path ends in ".gz"). n instructions are
// recorded; n == 0 sizes the trace to the spec's warmup+measure budget
// plus enough slack that replaying the same spec never wraps. The
// recorded trace replays bit-identically through RunSpec.TracePath with
// TraceDifferential set.
func RecordTrace(spec RunSpec, path string, n uint64) error {
	return harness.RecordTrace(spec, path, n)
}

// VerifyDeterminism runs spec twice from scratch and returns an error
// describing the first divergence if the two full metric snapshots are not
// bit-identical. Deterministic replay is the simulator's core correctness
// contract; see DESIGN.md §Observability.
func VerifyDeterminism(spec RunSpec) error { return harness.VerifyDeterminism(spec) }

// NewRunner returns a memoising runner bounded to n concurrent runs
// (n <= 0 uses GOMAXPROCS).
func NewRunner(n int) *Runner { return harness.NewRunner(n) }

// NewRunnerWithCheckpoints returns a runner that additionally persists
// warm-state checkpoints under dir (content-addressed by workload,
// configuration, and state-format version), so repeat process invocations
// skip warmup entirely. An empty dir keeps warm states in memory only.
func NewRunnerWithCheckpoints(n int, dir string) *Runner {
	return harness.NewRunnerWithCheckpoints(n, dir)
}

// CheckpointDir is a content-addressed on-disk warm-state store fronted
// by a size-bounded in-memory cache of decoded states, so repeated forks
// of the same warm tuple pay the binary decode once per process rather
// than once per run.
type CheckpointDir = checkpoint.Dir

// CheckpointDirStats is a CheckpointDir's cache accounting (memory hits,
// disk hits, misses, stores, evictions).
type CheckpointDirStats = checkpoint.DirStats

// NewCheckpointDir opens the warm-state store rooted at path. cacheBytes
// bounds the in-memory decoded-state cache (0 selects the default of
// 256 MiB; negative disables caching). The directory is created lazily
// on first Save.
func NewCheckpointDir(path string, cacheBytes int64) *CheckpointDir {
	return checkpoint.NewDir(path, cacheBytes)
}

// NewRunnerWithDir returns a runner over an existing checkpoint store.
// Several runners may share one store — fleet workers started in the
// same process do, so each warm tuple is decoded once and every sibling
// forks it from memory.
func NewRunnerWithDir(n int, ck *CheckpointDir) *Runner {
	return harness.NewRunnerWithDir(n, ck)
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options { return harness.DefaultOptions() }

// QuickOptions returns a reduced scale for smoke runs and examples.
func QuickOptions() Options { return harness.QuickOptions() }

// Benchmarks returns the 16 paper benchmarks (Table 2) as synthetic
// profiles, in presentation order.
func Benchmarks() []Profile { return workload.All() }

// BenchmarkNames returns the benchmark names in presentation order.
func BenchmarkNames() []string { return workload.Names() }

// BenchmarkByName returns the named benchmark profile.
func BenchmarkByName(name string) (Profile, error) { return workload.ByName(name) }

// Policies returns every registered policy (Table 3 plus ablations).
func Policies() []Policy { return policy.All() }

// PolicyByName returns the named policy.
func PolicyByName(name string) (Policy, error) { return policy.ByName(name) }

// DefaultCoreConfig returns the paper's Golden Cove-like baseline core
// configuration (Table 1).
func DefaultCoreConfig() CoreConfig { return core.DefaultConfig() }

// ExperimentInfo describes one regenerable table or figure.
type ExperimentInfo = harness.Experiment

// Experiments returns every regenerable paper artifact in paper order.
func Experiments() []ExperimentInfo { return harness.Experiments() }

// Experiment returns the experiment with the given id ("fig10", "tab4",
// ...); it panics on unknown ids (use ExperimentByID for errors).
func Experiment(id string) ExperimentInfo {
	e, err := harness.ExperimentByID(id)
	if err != nil {
		panic(err)
	}
	return e
}

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (ExperimentInfo, error) { return harness.ExperimentByID(id) }

// RunProfile simulates a custom workload profile under a custom core
// configuration, returning the measured snapshot. Warmup executes first
// with statistics discarded.
func RunProfile(p Profile, c CoreConfig, warmup, measure uint64) (Result, error) {
	prog, err := p.Program()
	if err != nil {
		return Result{}, err
	}
	c.MemOpFrac = p.MemOpFrac
	c.DataHotLines = p.DataHotLines
	c.DataColdLines = p.DataColdLines
	c.DataHotFrac = p.DataHotFrac
	co, err := core.New(prog, c)
	if err != nil {
		return Result{}, err
	}
	if err := co.Run(warmup); err != nil {
		return Result{}, err
	}
	co.ResetStats()
	if err := co.Run(measure); err != nil {
		return Result{}, err
	}
	return co.Result(), nil
}
