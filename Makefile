# Development workflow for the PDIP reproduction. Every target uses only
# the Go toolchain; `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build fmt-check vet test race determinism golden check bench clean
.PHONY: lint check-invariant fuzz

all: build

build:
	$(GO) build ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Repo-specific static analysis (cmd/simlint): determinism, counter
# ownership, port discipline, and config-geometry contracts, enforced at
# the offending line. Stdlib-only; see internal/lint.
lint:
	$(GO) run ./cmd/simlint ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite. Metric registries are single-writer
# by design (one per core, owned by its goroutine); this gate proves no
# sharing crept in.
race:
	$(GO) test -race ./...

# Deterministic-replay verification: identical specs must produce
# bit-identical metric snapshots (counters, histograms, derived gauges).
determinism:
	$(GO) test ./internal/harness -run 'TestDeterministicReplay' -v

# Golden-value regression grid (3 benchmarks x 3 policies). After an
# intentional simulator change, regenerate with `make golden-update`.
golden:
	$(GO) test ./internal/harness -run 'TestGolden'

golden-update:
	$(GO) test ./internal/harness -run 'TestGoldenMetrics' -update

# Full suite with the runtime micro-assertions armed (internal/invariant,
# siminvariant build tag): FTQ/PQ bounds, MSHR drain, LRU stack validity,
# the prefetch demand reserve, and per-stage ordering checks.
check-invariant:
	$(GO) test -tags siminvariant ./...

# Short fuzzing smoke over the three property-based targets. Lengthen
# -fuzztime for real fuzzing sessions.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/cache -run '^$$' -fuzz '^FuzzCacheSetVsShadow$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bpu -run '^$$' -fuzz '^FuzzTAGEIndexFold$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/pdip -run '^$$' -fuzz '^FuzzPDIPTableInsertLookup$$' -fuzztime=$(FUZZTIME)

check: fmt-check vet build lint test race determinism golden

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem

clean:
	$(GO) clean ./...
