# Development workflow for the PDIP reproduction. Every target uses only
# the Go toolchain; `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build vet test race determinism golden check bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite. Metric registries are single-writer
# by design (one per core, owned by its goroutine); this gate proves no
# sharing crept in.
race:
	$(GO) test -race ./...

# Deterministic-replay verification: identical specs must produce
# bit-identical metric snapshots (counters, histograms, derived gauges).
determinism:
	$(GO) test ./internal/harness -run 'TestDeterministicReplay' -v

# Golden-value regression grid (3 benchmarks x 3 policies). After an
# intentional simulator change, regenerate with `make golden-update`.
golden:
	$(GO) test ./internal/harness -run 'TestGolden'

golden-update:
	$(GO) test ./internal/harness -run 'TestGoldenMetrics' -update

check: vet build test race determinism golden

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem

clean:
	$(GO) clean ./...
