# Development workflow for the PDIP reproduction. Every target uses only
# the Go toolchain; `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build fmt-check vet test race determinism golden check bench clean
.PHONY: lint lint-fix-report check-invariant fuzz bench-track bench-diff perf-smoke trace-suite socket fabric-smoke

all: build

build:
	$(GO) build ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Repo-specific static analysis (cmd/simlint): per-package analyzers
# (determinism, counter ownership, port discipline, config geometry,
# tenant namespaces) plus whole-program passes (checkpoint coverage,
# escape-analysis hot-path gate, interprocedural determinism taint),
# enforced at the offending line. Stdlib-only; see internal/lint.
lint:
	$(GO) run ./cmd/simlint ./...

# Triage view of the same run: diagnostics grouped per analyzer,
# worst-offending analyzer first, for working through a backlog.
lint-fix-report:
	$(GO) run ./cmd/simlint -report ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite. Metric registries are single-writer
# by design (one per core, owned by its goroutine); this gate proves no
# sharing crept in.
race:
	$(GO) test -race ./...

# Deterministic-replay verification: identical specs must produce
# bit-identical metric snapshots (counters, histograms, derived gauges).
determinism:
	$(GO) test ./internal/harness -run 'TestDeterministicReplay' -v

# Golden-value regression grid (3 benchmarks x 3 policies). After an
# intentional simulator change, regenerate with `make golden-update`.
golden:
	$(GO) test ./internal/harness -run 'TestGolden'

golden-update:
	$(GO) test ./internal/harness -run 'TestGoldenMetrics' -update

# Full suite with the runtime micro-assertions armed (internal/invariant,
# siminvariant build tag): FTQ/PQ bounds, MSHR drain, LRU stack validity,
# the prefetch demand reserve, and per-stage ordering checks.
check-invariant:
	$(GO) test -tags siminvariant ./...

# Short fuzzing smoke over the property-based targets. Lengthen
# -fuzztime for real fuzzing sessions.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/cache -run '^$$' -fuzz '^FuzzCacheSetVsShadow$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bpu -run '^$$' -fuzz '^FuzzTAGEIndexFold$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/pdip -run '^$$' -fuzz '^FuzzPDIPTableInsertLookup$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/trace/champsim -run '^$$' -fuzz '^FuzzChampSimDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzBinaryCheckpointDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz '^FuzzBinarySocketDecode$$' -fuzztime=$(FUZZTIME)

# Trace front-end suite: the ChampSim codec/source unit tests plus the
# harness-level round-trip, checkpoint, and warm-fork trace tests.
trace-suite:
	$(GO) test ./internal/trace/... -count=1
	$(GO) test ./internal/harness -run 'TestGoldenMetricsTraceRoundTrip|TestRecordTrace|TestTrace' -count=1 -v

# Distributed-fabric gate: run the 3-cell smoke grid through a localhost
# coordinator + 2-worker fleet sharing a checkpoint directory, then
# serially, and require the two merged documents to be byte-identical
# (cmp). This is the end-to-end proof that sharding, warm leases, sample
# streaming, and the deterministic merge change nothing but wall-clock.
fabric-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/gridd run -grid smoke -workers 2 -checkpoint-dir "$$dir/ck" -out "$$dir/fabric.json" && \
	$(GO) run ./cmd/gridd run -grid smoke -workers 0 -checkpoint-dir "$$dir/ck2" -out "$$dir/serial.json" && \
	cmp "$$dir/fabric.json" "$$dir/serial.json" && \
	echo "fabric-smoke: distributed merged document is byte-identical to serial"

# Socket/multi-tenant gate: the Socket{N:1} golden-equivalence pin, the
# 2-tenant interference + determinism acceptance test, and the
# adversarial socket checkpoint round trip (mid-wrong-path fork of a
# 2-core socket must replay bit-identically).
socket:
	$(GO) test ./internal/harness -run 'TestGoldenSocketEquivalence|TestSocketContentionInterference' -count=1
	$(GO) test ./internal/core -run 'TestSocket' -count=1

check: fmt-check vet build lint test race determinism golden socket

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem

# Perf snapshot: run the benchmark suite at a stable benchtime and record
# ns/op, allocs/op, B/op, and simulated cycles/sec per bench into
# BENCH_simulator.json (via cmd/benchtrack). Diff the regenerated file
# against the committed snapshot for before/after evidence in perf PRs.
BENCHTIME ?= 0.5s
bench-track:
	$(GO) test -run '^$$' -bench=. -benchtime=$(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchtrack -o BENCH_simulator.json

# Perf-regression gate: rerun the benchmark suite and compare ns/op
# against the committed BENCH_simulator.json, failing when any benchmark
# regressed beyond the threshold (default 15% — generous enough for CI
# machine noise, tight enough to catch a real slowdown). The checkpoint
# rows (codec round trip, disk/cached forks) are pure CPU + small-file
# I/O with far less run-to-run variance than the end-to-end grids, so
# they get a tighter per-row gate: the binary codec is the warm-state
# layer's whole perf budget and must not creep. After an intentional perf
# change, regenerate the snapshot with `make bench-track`.
BENCH_THRESHOLD ?= 0.15
BENCH_CKPT_THRESHOLD ?= 0.10
bench-diff:
	$(GO) test -run '^$$' -bench=. -benchtime=$(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchtrack -diff BENCH_simulator.json -threshold $(BENCH_THRESHOLD) \
			-threshold-for '^BenchmarkCheckpoint=$(BENCH_CKPT_THRESHOLD)'

# Zero-alloc gate: every hot-path micro benchmark must report 0 allocs/op
# in steady state. The benchtime is iteration-pinned and large enough that
# one-time pool warm-up allocations truncate to zero; any per-iteration
# allocation on the step path pushes allocs/op to >= 1 and fails the gate.
perf-smoke:
	@out=$$($(GO) test -run '^$$' -bench '^BenchmarkMicro' -benchtime=5000x -benchmem .); \
	status=$$?; echo "$$out"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	echo "$$out" | awk '$$NF == "allocs/op" && $$(NF-1)+0 > 0 { bad = 1; \
		print "perf-smoke: " $$1 " reports " $$(NF-1) " allocs/op (want 0)" } \
		END { if (bad) exit 1; print "perf-smoke: all hot-path benches at 0 allocs/op" }'

clean:
	$(GO) clean ./...
