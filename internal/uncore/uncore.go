// Package uncore owns the shared half of a multi-core socket's memory
// system: one L2 and one L3 (with DRAM behind them) contended by N
// requesting cores. Each core sees the uncore through its own tenant port
// — a mem.Port that stamps the requester id onto every message and
// attributes traffic, drops, and fill latency to that tenant — while the
// caches themselves track per-owner MSHR occupancy and eviction
// interference (cache.OwnerStats). All uncore metrics live in the
// uncore's own registry under the "uncore." namespace; per-core registries
// never host another tenant's counters (enforced by the tenantnamespace
// simlint rule).
//
// With a single requester the uncore degenerates exactly to the exclusive
// chain mem.New builds: owner tracking stays off, so the port chain
// executes the identical code path — that equivalence is what lets the
// Socket{N:1} configuration replay the golden grid bit for bit.
package uncore

import (
	"fmt"

	"pdip/internal/cache"
	"pdip/internal/isa"
	"pdip/internal/mem"
	"pdip/internal/metrics"
)

// Config sizes the shared levels and the contention policy.
type Config struct {
	// L2 and L3 size the shared caches (per-tenant L1s live in the cores).
	L2, L3 cache.Config
	// DRAMLatency is the flat main-memory latency in cycles.
	DRAMLatency int
	// Requesters is the number of cores sharing the uncore.
	Requesters int
	// L2Reserve/L3Reserve are the per-requester reserved MSHR slots at
	// each shared level; the rest of the file is a shared pool. Zero picks
	// the default split (half the file divided evenly); negative reserves
	// nothing (the whole file is contended).
	L2Reserve, L3Reserve int
}

// Uncore is the assembled shared memory system behind N cores.
type Uncore struct {
	L2, L3      *cache.Cache
	DRAMLatency int

	chain mem.Port // L2 → L3 → DRAM, shared by every tenant port
	ports []*tenantPort
	reg   *metrics.Registry
}

// New builds the shared levels, enables owner tracking when more than one
// requester contends for them, and wires one tenant port per requester.
func New(cfg Config) (*Uncore, error) {
	if cfg.Requesters < 1 || cfg.Requesters > 256 {
		return nil, fmt.Errorf("uncore: need 1..256 requesters, got %d", cfg.Requesters)
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := cache.New(cfg.L3)
	if err != nil {
		return nil, err
	}
	dram := cfg.DRAMLatency
	if dram <= 0 {
		dram = 150
	}
	u := &Uncore{L2: l2, L3: l3, DRAMLatency: dram, reg: metrics.NewRegistry()}
	if cfg.Requesters > 1 {
		if err := l2.EnableOwnerTracking(cfg.Requesters, reserveFor(cfg.L2Reserve, l2.Config().MSHRs, cfg.Requesters)); err != nil {
			return nil, err
		}
		if err := l3.EnableOwnerTracking(cfg.Requesters, reserveFor(cfg.L3Reserve, l3.Config().MSHRs, cfg.Requesters)); err != nil {
			return nil, err
		}
	}
	u.chain = mem.NewSharedChain(l2, l3, dram)
	u.L2.RegisterMetrics(u.reg, "uncore.l2")
	u.L3.RegisterMetrics(u.reg, "uncore.l3")
	u.ports = make([]*tenantPort, cfg.Requesters)
	for i := range u.ports {
		u.ports[i] = newTenantPort(u, i)
	}
	return u, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Uncore {
	u, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// reserveFor resolves a configured per-requester MSHR reserve: zero means
// the default split (half the file divided evenly among requesters),
// negative means no reservation, and explicit values are clamped so the
// reserves never exceed the file.
func reserveFor(configured, mshrs, requesters int) int {
	r := configured
	switch {
	case r == 0:
		r = mshrs / (2 * requesters)
	case r < 0:
		r = 0
	}
	if r*requesters > mshrs {
		r = mshrs / requesters
	}
	return r
}

// Requesters returns the number of tenant ports.
func (u *Uncore) Requesters() int { return len(u.ports) }

// Port returns requester i's front port into the shared chain. Every
// message through it is stamped with the requester id, so drops, delays,
// and evictions at the shared levels attribute to the right tenant.
func (u *Uncore) Port(i int) mem.Port { return u.ports[i] }

// Metrics returns the uncore's registry ("uncore.*" namespace: shared
// cache stats, per-tenant traffic, and interference counters).
func (u *Uncore) Metrics() *metrics.Registry { return u.reg }

// MetricsSnapshot captures every uncore metric at this instant.
func (u *Uncore) MetricsSnapshot() metrics.Snapshot { return u.reg.Snapshot() }

// ResetStats zeroes the shared-level stats, the per-owner interference
// counters, and the uncore registry — the socket-wide measurement reset
// after warmup.
func (u *Uncore) ResetStats() {
	u.reg.Reset()
	u.L2.Stats = cache.Stats{}
	u.L3.Stats = cache.Stats{}
	u.L2.ResetOwnerStats()
	u.L3.ResetOwnerStats()
}

// tenantCounters attributes one requester's uncore traffic. Everything is
// registered under "uncore.tenant<i>." in the uncore registry — never in
// a core's registry, so the golden single-core counter set is untouched.
//
//lint:owner uncore.go
type tenantCounters struct {
	requests   *metrics.Counter
	l2Hits     *metrics.Counter
	l3Hits     *metrics.Counter
	memFills   *metrics.Counter
	l2Misses   *metrics.Counter
	l3Misses   *metrics.Counter
	drops      *metrics.Counter
	fillCycles *metrics.Counter
}

// tenantPort is requester i's view of the shared chain: it stamps the
// requester id on every message (the cache-level owner attribution keys
// off it) and counts the reply.
type tenantPort struct {
	id   uint8
	down mem.Port
	ct   tenantCounters
}

func newTenantPort(u *Uncore, i int) *tenantPort {
	prefix := fmt.Sprintf("uncore.tenant%d", i)
	p := &tenantPort{
		id:   uint8(i),
		down: u.chain,
		ct: tenantCounters{
			requests:   u.reg.Counter(prefix + ".requests"),
			l2Hits:     u.reg.Counter(prefix + ".l2_hits"),
			l3Hits:     u.reg.Counter(prefix + ".l3_hits"),
			memFills:   u.reg.Counter(prefix + ".mem_fills"),
			l2Misses:   u.reg.Counter(prefix + ".l2_misses"),
			l3Misses:   u.reg.Counter(prefix + ".l3_misses"),
			drops:      u.reg.Counter(prefix + ".spec_dropped"),
			fillCycles: u.reg.Counter(prefix + ".fill_cycles"),
		},
	}
	if u.L2.OwnersEnabled() {
		registerOwnerMetrics(u.reg, prefix+".l2", &u.L2.Owners[i])
		registerOwnerMetrics(u.reg, prefix+".l3", &u.L3.Owners[i])
	}
	return p
}

// registerOwnerMetrics binds one tenant's interference counters at one
// shared level (cache.OwnerStats fields, maintained by the cache and the
// port chain) as counter funcs.
func registerOwnerMetrics(reg *metrics.Registry, prefix string, o *cache.OwnerStats) {
	reg.CounterFunc(prefix+".fills", func() uint64 { return o.Fills })
	reg.CounterFunc(prefix+".mshr_steals", func() uint64 { return o.MSHRSteals })
	reg.CounterFunc(prefix+".delayed_fills", func() uint64 { return o.DelayedFills })
	reg.CounterFunc(prefix+".delay_cycles", func() uint64 { return o.DelayCycles })
	reg.CounterFunc(prefix+".spec_dropped", func() uint64 { return o.SpecDropped })
	reg.CounterFunc(prefix+".cross_evictions", func() uint64 { return o.CrossEvictionsSuffered })
	reg.CounterFunc(prefix+".cross_evictions_caused", func() uint64 { return o.CrossEvictionsCaused })
}

// Send implements mem.Port.
//
//lint:hotpath
func (p *tenantPort) Send(req mem.Req) mem.AccessResult {
	req.Src = p.id
	// Tenants are separate address spaces (distinct co-run services), but
	// the synthetic programs all generate low line addresses, so without
	// disambiguation co-tenants would constructively hit on each other's
	// fills. Folding the tenant id into untouched high address bits keeps
	// the shared levels honest: interference is capacity and MSHR
	// contention, never accidental sharing. Tenant 0's bias is zero, so a
	// 1-tenant socket forwards addresses untouched (the N=1 bit-identity
	// contract).
	req.Line ^= isa.Addr(p.id) << 56
	res := p.down.Send(req)
	p.ct.requests.Inc()
	if res.Dropped {
		p.ct.drops.Inc()
		return res
	}
	switch res.ServedBy {
	case mem.LevelL2:
		p.ct.l2Hits.Inc()
	case mem.LevelL3:
		p.ct.l2Misses.Inc()
		p.ct.l3Hits.Inc()
	case mem.LevelMem:
		p.ct.l2Misses.Inc()
		p.ct.l3Misses.Inc()
		p.ct.memFills.Inc()
	}
	if res.Done > req.At {
		p.ct.fillCycles.Add(uint64(res.Done - req.At))
	}
	return res
}
