package uncore

import "pdip/internal/checkpoint"

// CaptureCheckpoint captures the shared levels (including their per-owner
// attribution columns) and the uncore registry's owned counters. The port
// wiring is stateless and rebuilt by New.
func (u *Uncore) CaptureCheckpoint() checkpoint.UncoreState {
	return checkpoint.UncoreState{
		L2:      u.L2.CaptureCheckpoint(),
		L3:      u.L3.CaptureCheckpoint(),
		Metrics: u.reg.CaptureCheckpoint(),
	}
}

// RestoreCheckpoint overwrites the shared levels and the uncore registry
// from a captured state. The uncore must have been built with the same
// geometry and requester count.
func (u *Uncore) RestoreCheckpoint(st checkpoint.UncoreState) error {
	if err := u.L2.RestoreCheckpoint(st.L2); err != nil {
		return err
	}
	if err := u.L3.RestoreCheckpoint(st.L3); err != nil {
		return err
	}
	return u.reg.RestoreCheckpoint(st.Metrics)
}
