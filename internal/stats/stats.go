// Package stats defines the measurement vocabulary of the simulator: raw
// counters collected by the core, the top-down issue-slot breakdown
// (Figure 1), and the derived metrics the paper reports (IPC, MPKI, PPKI,
// prefetch accuracy, FEC stall shares, geomean speedups).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// TopDown is the issue-slot breakdown of the top-down method (Yasin).
// Slots are counted at the decode/allocation boundary each cycle.
type TopDown struct {
	// Retiring slots delivered correct-path instructions that retired.
	Retiring uint64
	// BadSpeculation slots delivered wrong-path instructions (squashed).
	BadSpeculation uint64
	// FrontendBound slots were empty because the front-end supplied
	// nothing.
	FrontendBound uint64
	// BackendBound slots were empty because the back-end could not accept
	// (ROB full).
	BackendBound uint64
}

// Total returns the slot total.
func (t TopDown) Total() uint64 {
	return t.Retiring + t.BadSpeculation + t.FrontendBound + t.BackendBound
}

// Shares returns the four fractions in order retiring, frontend, badspec,
// backend. A zero total yields zeros.
func (t TopDown) Shares() (retiring, frontend, badspec, backend float64) {
	total := float64(t.Total())
	if total == 0 {
		return
	}
	return float64(t.Retiring) / total, float64(t.FrontendBound) / total,
		float64(t.BadSpeculation) / total, float64(t.BackendBound) / total
}

// Core aggregates one simulation run's raw counters.
type Core struct {
	// Cycles and Instructions define IPC. Instructions counts retired
	// (correct-path) instructions only.
	Cycles       uint64
	Instructions uint64

	// WrongPathInstructions counts squashed fetches entering the pipeline.
	WrongPathInstructions uint64

	// Resteers by cause.
	ResteerMispredict uint64 // conditional/indirect direction or target
	ResteerBTBMiss    uint64 // taken branch invisible to the IAG
	ResteerReturn     uint64 // return target mispredicts

	// DecodeStarvedCycles counts cycles decode delivered nothing while
	// the back-end could accept.
	DecodeStarvedCycles uint64
	// StarvedOnMiss counts the subset attributable to an L1I miss.
	StarvedOnMiss uint64
	// StarveNoEntry counts starved cycles with an empty FTQ and idle IFU
	// (post-resteer refill, IAG restart).
	StarveNoEntry uint64
	// StarvePipe counts starved cycles where fetched uops were still in
	// the decode pipe (refill latency).
	StarvePipe uint64
	// StarveOther counts the remainder (e.g. waiting on a hit's
	// delivery, decode-queue backpressure interactions).
	StarveOther uint64

	// Line-episode accounting (the FEC machinery, §2.1/§3).
	LinesRetired     uint64 // retired line episodes
	FECLines         uint64 // episodes meeting the 3 FEC conditions
	FECRepeatLines   uint64 // FEC episodes whose line was FEC before
	HighCostFECLines uint64 // FEC with >10 starvation cycles
	HighCostBackend  uint64 // high-cost FEC that also drained the backend
	FECStallCycles   uint64 // starvation cycles caused by FEC episodes
	FECCoveredLate   uint64 // FEC episodes that had consumed a prefetch (late/partial)
	ShadowCovered    uint64 // resteer-shadow episodes saved by a prefetch (no stall)
	NonFECStall      uint64 // starvation cycles on non-FEC episodes

	// PFDroppedFTQ counts prefetch requests suppressed because the line
	// was already covered by a queued FTQ entry (§6.2 duplicate check).
	PFDroppedFTQ uint64

	TopDown TopDown
}

// IPC returns instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// PerKilo returns events per kilo-instruction.
func (c *Core) PerKilo(events uint64) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(c.Instructions)
}

// Speedup returns the relative IPC gain of new over base as a fraction
// (0.032 == +3.2%).
func Speedup(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return new/base - 1
}

// Geomean returns the geometric mean of (1+x) minus 1 over speedup
// fractions, the paper's mean-speedup convention. Empty input yields 0.
func Geomean(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range speedups {
		v := 1 + s
		if v <= 0 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum/float64(len(speedups))) - 1
}

// GeomeanIPC returns the geometric mean of raw IPC values.
func GeomeanIPC(ipcs []float64) float64 {
	if len(ipcs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ipcs {
		if v <= 0 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(ipcs)))
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Table is a minimal text-table builder for harness and cmd output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out string
	line := func(cells []string) string {
		s := ""
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			s += fmt.Sprintf("%-*s", widths[i], c)
			if i != len(widths)-1 {
				s += "  "
			}
		}
		return s + "\n"
	}
	out += line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	out += line(sep)
	for _, row := range t.rows {
		out += line(row)
	}
	return out
}

// Median returns the median of xs (not destructive). Empty input yields 0.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
