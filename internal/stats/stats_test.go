package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTopDownShares(t *testing.T) {
	td := TopDown{Retiring: 10, BadSpeculation: 20, FrontendBound: 30, BackendBound: 40}
	if td.Total() != 100 {
		t.Fatalf("total %d", td.Total())
	}
	r, f, b, be := td.Shares()
	if r != 0.1 || f != 0.3 || b != 0.2 || be != 0.4 {
		t.Fatalf("shares %v %v %v %v", r, f, b, be)
	}
	var zero TopDown
	r, f, b, be = zero.Shares()
	if r+f+b+be != 0 {
		t.Fatal("zero top-down produced non-zero shares")
	}
}

func TestIPCAndPerKilo(t *testing.T) {
	c := Core{Cycles: 1000, Instructions: 2500}
	if c.IPC() != 2.5 {
		t.Fatalf("IPC %v", c.IPC())
	}
	if c.PerKilo(25) != 10 {
		t.Fatalf("PerKilo %v", c.PerKilo(25))
	}
	var zero Core
	if zero.IPC() != 0 || zero.PerKilo(5) != 0 {
		t.Fatal("zero-division not guarded")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2.0, 2.1); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("Speedup = %v", got)
	}
	if Speedup(0, 1) != 0 {
		t.Fatal("zero base not guarded")
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	// Symmetric gains ±x multiply out: geomean of {+10%, -9.0909..%} ≈ 0.
	g := Geomean([]float64{0.10, 1/1.10 - 1})
	if math.Abs(g) > 1e-9 {
		t.Fatalf("geomean %v, want ~0", g)
	}
	// All-equal speedups are the geomean.
	g = Geomean([]float64{0.032, 0.032, 0.032})
	if math.Abs(g-0.032) > 1e-9 {
		t.Fatalf("geomean %v", g)
	}
}

func TestGeomeanIPC(t *testing.T) {
	g := GeomeanIPC([]float64{1, 4})
	if math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean IPC %v", g)
	}
	if GeomeanIPC(nil) != 0 {
		t.Fatal("empty geomean IPC")
	}
}

func TestGeomeanMonotonic(t *testing.T) {
	f := func(a, b uint8) bool {
		x := float64(a%50) / 100
		y := x + float64(b%50)/100
		return Geomean([]float64{x, x}) <= Geomean([]float64{y, y})+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// All lines aligned to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator width mismatch")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	// Not destructive.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("median sorted its input")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Fatalf("Pct = %q", Pct(0.125))
	}
}
