package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	parent.Uint64()
	f1 := parent.Fork(1)
	// Forking must not advance the parent stream.
	ref := New(7)
	ref.Uint64()
	refFork := ref.Fork(1)
	if f1.Uint64() != refFork.Uint64() {
		t.Fatal("fork is not deterministic in (parent seed, salt)")
	}
	if parent.Uint64() != ref.Uint64() {
		t.Fatal("Fork advanced the parent stream")
	}
	// Different salts give different streams.
	if parent.Fork(2).Uint64() == parent.Fork(3).Uint64() {
		t.Fatal("fork salts 2 and 3 collide")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolEdgeProbabilities(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %.3f outside [0.23, 0.27]", frac)
	}
}

func TestPickWeights(t *testing.T) {
	r := New(6)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Pick(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight-3:weight-1 ratio %.2f outside [2.7, 3.3]", ratio)
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick(nil) did not panic")
		}
	}()
	New(1).Pick(nil)
}

func TestGeometricBounds(t *testing.T) {
	r := New(8)
	f := func(seed uint8) bool {
		v := r.Geometric(4, 20)
		return v >= 1 && v <= 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(10)
	sum := 0
	n := 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(5, 1000)
	}
	mean := float64(sum) / float64(n)
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("Geometric(5) sample mean %.2f outside [4.5, 5.5]", mean)
	}
}
