// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Every stochastic decision in a
// simulation run (workload walk, wrong-path walk, EMISSARY promotion, PDIP
// insertion) draws from an explicitly seeded generator so that runs are
// exactly reproducible and independent subsystems can fork disjoint streams.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with zero, but callers should normally use New to mix the seed.
type RNG struct {
	state uint64
}

// New returns a generator seeded from seed. Two generators created with
// different seeds produce uncorrelated streams for practical purposes.
func New(seed uint64) *RNG {
	//lint:ignore allocfree cold fork path: ForkInto reseeds pooled generators in place on the hot path
	r := &RNG{state: seed}
	// Warm the state so nearby seeds diverge immediately.
	r.Uint64()
	return r
}

// Fork derives a new independent generator from the current one, keyed by
// salt. The parent's stream is not advanced, so forking is deterministic
// with respect to the parent's seed regardless of how much the parent has
// been used before or after the fork.
func (r *RNG) Fork(salt uint64) *RNG {
	//lint:ignore allocfree cold fork path: ForkInto reseeds pooled generators in place on the hot path
	return New(mix(r.state ^ mix(salt)))
}

// ForkInto behaves exactly like Fork but reseeds dst in place when it is
// non-nil, so hot paths that fork repeatedly (wrong-path walks) can reuse
// one generator's storage. The produced stream is identical to Fork's.
func (r *RNG) ForkInto(dst *RNG, salt uint64) *RNG {
	if dst == nil {
		return r.Fork(salt)
	}
	dst.state = mix(r.state ^ mix(salt))
	dst.Uint64() // same warm-up New applies
	return dst
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. It panics if weights is empty or sums to a
// non-positive value.
func (r *RNG) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if len(weights) == 0 || sum <= 0 {
		panic("rng: Pick needs positive weights")
	}
	x := r.Float64() * sum
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Geometric returns a sample from a geometric-ish distribution with the
// given mean, clamped to [1, max]. It is used for block and run lengths.
func (r *RNG) Geometric(mean float64, max int) int {
	if mean < 1 {
		mean = 1
	}
	p := 1 / mean
	n := 1
	for n < max && !r.Bool(p) {
		n++
	}
	return n
}
