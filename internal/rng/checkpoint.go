package rng

// State returns the generator's internal state word for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state word, restoring a
// stream captured with State. The next Uint64 continues the captured
// sequence exactly.
func (r *RNG) SetState(s uint64) { r.state = s }
