// Package energy provides an analytical SRAM energy/area model standing in
// for the paper's McPAT evaluation (Table 5). The paper modified McPAT to
// model the PDIP structures; we model SRAM arrays with a CACTI-style
// scaling law — bit-cell area plus peripheral overhead growing with
// associativity (comparators, way muxes), and dynamic energy per access
// growing with both capacity and way count — calibrated against a
// Golden Cove-class core budget so the magnitudes and the trends (area
// superlinear in ways, energy saturating with size) match Table 5.
package energy

// Core budget constants (Golden Cove-class, 7nm-equivalent arbitrary
// units). Only ratios matter for the reported percentages.
const (
	// coreAreaMM2 approximates one P-core without L2.
	coreAreaMM2 = 7.0
	// coreEnergyPerCycle is the average core energy per cycle (pJ).
	coreEnergyPerCycle = 1400.0

	// sramMM2PerKB is the bit-cell array area per KB.
	sramMM2PerKB = 0.0014
	// perWayOverhead is the fractional array-area overhead per way
	// (comparators, sense amps, way select).
	perWayOverhead = 0.085
	// readEnergyBase is the per-access dynamic energy (pJ) of a small
	// way; each additional probed way adds readEnergyPerWay.
	readEnergyBase   = 2.2
	readEnergyPerWay = 1.9
	// leakagePerKB is static energy per KB per cycle (pJ).
	leakagePerKB = 0.011
)

// Overhead is the modelled cost of one added structure.
type Overhead struct {
	// AreaFrac is the structure's area as a fraction of core area.
	AreaFrac float64
	// EnergyFrac is the added energy as a fraction of core energy.
	EnergyFrac float64
	// AreaMM2 and EnergyPJPerCycle are the absolute model outputs.
	AreaMM2          float64
	EnergyPJPerCycle float64
}

// Table models a set-associative SRAM table.
type Table struct {
	// SizeKB is the array capacity in kilobytes.
	SizeKB float64
	// Ways is the associativity (every way is probed per access).
	Ways int
	// AccessesPerCycle is the average probe rate.
	AccessesPerCycle float64
}

// Model computes the table's overhead against the core budget.
func Model(t Table) Overhead {
	ways := t.Ways
	if ways < 1 {
		ways = 1
	}
	area := t.SizeKB * sramMM2PerKB * (1 + perWayOverhead*float64(ways))
	dyn := (readEnergyBase + readEnergyPerWay*float64(ways)) * t.AccessesPerCycle
	leak := t.SizeKB * leakagePerKB
	e := dyn + leak
	return Overhead{
		AreaFrac:         area / coreAreaMM2,
		EnergyFrac:       e / coreEnergyPerCycle,
		AreaMM2:          area,
		EnergyPJPerCycle: e,
	}
}

// pdipKBForWays mirrors the paper's table sizes (512 sets, 10-bit tag,
// 1 LRU bit, 2 targets of 34+4 bits per entry).
func pdipKBForWays(ways int) float64 {
	bitsPerEntry := 10 + 1 + 2*(34+4)
	return float64(512*ways*bitsPerEntry) / 8192.0
}

// PDIPOverhead models the PDIP table at the given associativity with the
// measured lookup activity (Table 5's four configurations are ways
// 2/4/8/16). Accesses include both table probes and prefetch issues.
func PDIPOverhead(ways int, accessesPerCycle float64) Overhead {
	return Model(Table{
		SizeKB:           pdipKBForWays(ways),
		Ways:             ways,
		AccessesPerCycle: accessesPerCycle,
	})
}
