package energy

import "testing"

func TestAreaMonotonicInWays(t *testing.T) {
	prev := 0.0
	for _, ways := range []int{2, 4, 8, 16} {
		m := PDIPOverhead(ways, 0.2)
		if m.AreaFrac <= prev {
			t.Fatalf("area not increasing at ways=%d: %f <= %f", ways, m.AreaFrac, prev)
		}
		prev = m.AreaFrac
	}
}

func TestEnergyMonotonicInWays(t *testing.T) {
	prev := 0.0
	for _, ways := range []int{2, 4, 8, 16} {
		m := PDIPOverhead(ways, 0.2)
		if m.EnergyFrac <= prev {
			t.Fatalf("energy not increasing at ways=%d", ways)
		}
		prev = m.EnergyFrac
	}
}

func TestTable5Magnitudes(t *testing.T) {
	// The paper reports sub-1% energy overheads and 0.3-3% area across
	// the four sizes; the analytical model must land in those decades.
	for _, ways := range []int{2, 4, 8, 16} {
		m := PDIPOverhead(ways, 0.2)
		if m.EnergyFrac <= 0 || m.EnergyFrac > 0.03 {
			t.Fatalf("ways=%d energy fraction %.4f outside (0, 3%%]", ways, m.EnergyFrac)
		}
		if m.AreaFrac <= 0 || m.AreaFrac > 0.06 {
			t.Fatalf("ways=%d area fraction %.4f outside (0, 6%%]", ways, m.AreaFrac)
		}
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	lo := PDIPOverhead(8, 0.01)
	hi := PDIPOverhead(8, 1.0)
	if hi.EnergyFrac <= lo.EnergyFrac {
		t.Fatal("energy insensitive to access rate")
	}
	if hi.AreaFrac != lo.AreaFrac {
		t.Fatal("area depends on access rate")
	}
}

func TestModelZeroWays(t *testing.T) {
	m := Model(Table{SizeKB: 10, Ways: 0, AccessesPerCycle: 0.1})
	if m.AreaFrac <= 0 {
		t.Fatal("zero ways not clamped")
	}
}
