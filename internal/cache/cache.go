// Package cache models set-associative caches with MSHR-limited outstanding
// misses, pluggable replacement (LRU and the EMISSARY front-end-criticality
// policy), and the prefetch bookkeeping (useful / useless / late) that the
// paper's Table 4 and Figure 11 report.
//
// Timing model: the simulator is cycle-timed but not event-driven. A fill
// is installed immediately with a readyAt timestamp; a demand access that
// finds the line still in flight completes at readyAt (this is a hit on an
// MSHR, i.e. the paper's "partial hit" — a late prefetch when the fill was
// prefetch-initiated). MSHR occupancy is the number of lines whose readyAt
// is still in the future.
package cache

import (
	"fmt"

	"pdip/internal/invariant"
	"pdip/internal/isa"
)

// Config sizes one cache level.
type Config struct {
	// Name labels the level in stats output ("L1I", "L2", ...).
	Name string
	// SizeBytes is the total capacity; SizeBytes/(64*Ways) must be a
	// power-of-two set count.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles.
	HitLatency int
	// MSHRs bounds outstanding misses.
	MSHRs int
	// ProtectedWays > 0 enables EMISSARY replacement at this level with
	// that many priority-protected ways per set.
	ProtectedWays int
}

// Line is one cache block's metadata.
type Line struct {
	valid bool
	tag   uint64
	lru   uint32
	// readyAt is the cycle the fill completes; accesses before then are
	// hits on the in-flight MSHR.
	readyAt int64
	// priority is the EMISSARY P-bit.
	priority bool
	// prefetched marks a prefetch-initiated fill not yet demand-hit.
	prefetched bool
	// owner is the requester that filled the line (shared levels only;
	// see owner.go). Always zero with owner tracking off.
	owner uint8
}

// Priority reports the EMISSARY P-bit (exported for tests).
func (l *Line) Priority() bool { return l.priority }

// Stats aggregates per-level counters.
type Stats struct {
	// Demand accesses and misses (prefetch probes excluded).
	Accesses uint64
	Misses   uint64
	// InstMisses/DataMisses split Misses by request class (used for the
	// paper's L2I vs L2D distinction).
	InstMisses uint64
	DataMisses uint64
	// LateHits counts demand accesses that found the line in flight.
	LateHits uint64
	// Fills counts new line installations from any source (demand, FDIP
	// prime, prefetch). At the L1I this is the paper's miss-traffic
	// measure: with FDIP most fills are prefetch-initiated rather than
	// demand misses.
	Fills uint64
	// PrefetchFills counts fills initiated by a prefetcher.
	PrefetchFills uint64
	// UsefulPrefetches counts prefetched lines demand-hit before eviction.
	UsefulPrefetches uint64
	// LatePrefetches counts demand accesses that found a prefetched line
	// still in flight (issued, but not early enough).
	LatePrefetches uint64
	// UselessPrefetches counts prefetched lines evicted without a hit.
	UselessPrefetches uint64
	// Evictions counts replaced valid lines.
	Evictions uint64
}

// Class distinguishes instruction- from data-side requests for stats.
type Class uint8

const (
	// ClassInst marks instruction-side requests.
	ClassInst Class = iota
	// ClassData marks data-side requests.
	ClassData
)

// Cache is one set-associative level.
type Cache struct {
	cfg     Config
	sets    [][]Line
	setMask uint64
	tick    uint32

	// inflight holds readyAt deadlines of outstanding fills (the MSHR
	// file). Pruned lazily against the current cycle, compacting in place
	// so the backing array is reused across the whole run.
	inflight []int64
	// inflightMin caches the earliest deadline in inflight, so the common
	// "nothing to drain yet" case and the EarliestMSHRFree scan are O(1).
	// Meaningless when inflight is empty.
	inflightMin int64

	Stats Stats

	// Owner tracking (shared uncore levels only; see owner.go). Owners is
	// nil until EnableOwnerTracking, and every owner-mode branch in the hot
	// path is gated on that nil check so single-core behaviour is
	// bit-identical to a cache without the feature.
	Owners        []OwnerStats
	ownerReserve  int
	ownerUsed     []int   // in-flight fills per owner (derived from inflightOwner)
	inflightOwner []uint8 // owner column parallel to inflight
	// Preallocated scratch for EarliestMSHRFreeFor's retirement simulation.
	scratchT []int64
	scratchO []uint8
	scratchU []int
}

// New builds a cache level from cfg.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: size and ways must be positive", cfg.Name)
	}
	numSets := cfg.SizeBytes / (isa.LineSize * cfg.Ways)
	if numSets == 0 || numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %dB/%d-way yields %d sets; must be a power of two",
			cfg.Name, cfg.SizeBytes, cfg.Ways, numSets)
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 16
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]Line, numSets),
		setMask: uint64(numSets - 1),
	}
	backing := make([]Line, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) addr2set(line isa.Addr) (int, uint64) {
	v := uint64(line) >> isa.LineShift
	return int(v & c.setMask), v
}

func (c *Cache) find(line isa.Addr) *Line {
	set, tag := c.addr2set(line)
	for i := range c.sets[set] {
		if e := &c.sets[set][i]; e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

// Contains reports whether line is present (including in-flight fills),
// without touching LRU state or stats. Prefetch queues use this to probe.
func (c *Cache) Contains(line isa.Addr) bool { return c.find(line) != nil }

// LookupResult describes the outcome of a demand access.
type LookupResult struct {
	// Hit is true when the line is present (possibly still in flight).
	Hit bool
	// ReadyAt is the cycle the data is available (>= now on in-flight
	// hits). Meaningless when !Hit.
	ReadyAt int64
	// WasInflight is true when the hit landed on an outstanding fill.
	WasInflight bool
	// WasPrefetch is true when the line was brought in by a prefetch and
	// this is its first demand touch.
	WasPrefetch bool
}

// Access performs a demand lookup at cycle now, updating LRU and stats.
//
//lint:hotpath
func (c *Cache) Access(line isa.Addr, now int64, class Class) LookupResult {
	c.Stats.Accesses++
	e := c.find(line)
	if e == nil {
		c.Stats.Misses++
		if class == ClassInst {
			c.Stats.InstMisses++
		} else {
			c.Stats.DataMisses++
		}
		return LookupResult{}
	}
	c.tick++
	e.lru = c.tick
	if invariant.Enabled {
		// LRU stack validity: the just-touched line must be the unique
		// MRU of its set (tick is monotonic, so a tie or inversion means
		// a replacement path updated lru out of band).
		set, _ := c.addr2set(line)
		for i := range c.sets[set] {
			if l := &c.sets[set][i]; l != e && l.valid && l.lru >= e.lru {
				invariant.Failf("cache %s: LRU stack broken: touched line %#x is not MRU in its set", c.cfg.Name, uint64(line))
			}
		}
	}
	res := LookupResult{Hit: true, ReadyAt: now + int64(c.cfg.HitLatency)}
	if e.readyAt > now {
		res.ReadyAt = e.readyAt
		res.WasInflight = true
		c.Stats.LateHits++
	}
	if e.prefetched {
		res.WasPrefetch = true
		e.prefetched = false
		c.Stats.UsefulPrefetches++
		if res.WasInflight {
			c.Stats.LatePrefetches++
		}
	}
	return res
}

// MSHRFree returns the number of free MSHR entries at cycle now.
func (c *Cache) MSHRFree(now int64) int {
	c.pruneMSHR(now)
	return c.cfg.MSHRs - len(c.inflight)
}

// EarliestMSHRFree returns the cycle at which an MSHR entry will next be
// available. If one is free now, it returns now.
func (c *Cache) EarliestMSHRFree(now int64) int64 {
	c.pruneMSHR(now)
	if len(c.inflight) < c.cfg.MSHRs {
		return now
	}
	// The file is full, so the next free slot is the cached earliest
	// deadline — no scan.
	return c.inflightMin
}

// pruneMSHR drains deadlines that have passed. The cached minimum makes
// the common case — nothing drains this cycle — a single comparison; when
// something does drain, one pass compacts the slice in place (reusing the
// backing array) and recomputes the minimum as it goes.
//
//lint:hotpath
func (c *Cache) pruneMSHR(now int64) {
	if len(c.inflight) == 0 || c.inflightMin > now {
		return
	}
	if c.Owners != nil {
		c.pruneMSHROwned(now)
		return
	}
	keep := c.inflight[:0]
	min := int64(0)
	for _, t := range c.inflight {
		if t > now {
			if len(keep) == 0 || t < min {
				min = t
			}
			keep = append(keep, t)
		}
	}
	c.inflight = keep
	c.inflightMin = min
	if invariant.Enabled {
		// No-leak on drain: every MSHR entry surviving a prune must still
		// be in flight, and the cached minimum must actually be the
		// minimum; drift in either means occupancy accounting (and hence
		// prefetch drop decisions) has broken.
		for _, t := range c.inflight {
			if t <= now {
				invariant.Failf("cache %s: MSHR deadline %d not drained at cycle %d", c.cfg.Name, t, now)
			}
			if t < c.inflightMin {
				invariant.Failf("cache %s: cached MSHR minimum %d above live deadline %d", c.cfg.Name, c.inflightMin, t)
			}
		}
	}
}

// FillOpts qualifies a fill.
type FillOpts struct {
	// Prefetch marks a prefetch-initiated fill.
	Prefetch bool
	// Priority sets the EMISSARY P-bit on the installed line.
	Priority bool
	// Owner attributes the fill to a requester (shared levels only;
	// ignored unless owner tracking is enabled).
	Owner uint8
}

// Fill installs line, completing at readyAt, allocating an MSHR slot for
// the in-flight window. The caller must have checked MSHR availability.
// It returns the evicted line address, if any valid line was displaced.
func (c *Cache) Fill(line isa.Addr, now, readyAt int64, opts FillOpts) (evicted isa.Addr, hadVictim bool) {
	if e := c.find(line); e != nil {
		// Already present or in flight; refresh priority at most.
		if opts.Priority {
			e.priority = true
		}
		return 0, false
	}
	if readyAt > now {
		c.pruneMSHR(now)
		if len(c.inflight) == 0 || readyAt < c.inflightMin {
			c.inflightMin = readyAt
		}
		c.inflight = append(c.inflight, readyAt)
		if c.Owners != nil {
			c.inflightOwner = append(c.inflightOwner, opts.Owner)
			c.ownerUsed[opts.Owner]++
			if c.ownerUsed[opts.Owner] > c.ownerReserve {
				c.Owners[opts.Owner].MSHRSteals++
			}
		}
	}
	c.Stats.Fills++
	if opts.Prefetch {
		c.Stats.PrefetchFills++
	}
	if c.Owners != nil {
		c.Owners[opts.Owner].Fills++
	}
	set, tag := c.addr2set(line)
	victim := c.pickVictim(c.sets[set], now)
	if invariant.Enabled && (victim < 0 || victim >= len(c.sets[set])) {
		invariant.Failf("cache %s: victim way %d outside [0, %d)", c.cfg.Name, victim, len(c.sets[set]))
	}
	e := &c.sets[set][victim]
	if e.valid {
		c.Stats.Evictions++
		if e.prefetched {
			c.Stats.UselessPrefetches++
		}
		if c.Owners != nil && e.owner != opts.Owner {
			c.Owners[e.owner].CrossEvictionsSuffered++
			c.Owners[opts.Owner].CrossEvictionsCaused++
		}
		evicted = isa.Addr(e.tag << isa.LineShift)
		hadVictim = true
	}
	c.tick++
	*e = Line{
		valid:      true,
		tag:        tag,
		lru:        c.tick,
		readyAt:    readyAt,
		priority:   opts.Priority,
		prefetched: opts.Prefetch,
		owner:      opts.Owner,
	}
	if invariant.Enabled && c.find(line) == nil {
		invariant.Failf("cache %s: line %#x absent immediately after fill", c.cfg.Name, uint64(line))
	}
	return evicted, hadVictim
}

// pickVictim chooses a way to replace: LRU by default; with EMISSARY
// enabled, LRU among non-priority lines while the set holds at most
// ProtectedWays priority lines (falling back to global LRU, clearing the
// victim's P-bit, when the protection budget is exhausted or every way is
// priority).
func (c *Cache) pickVictim(set []Line, now int64) int {
	// Invalid way first.
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	protect := c.cfg.ProtectedWays
	if protect > 0 {
		nPri := 0
		for i := range set {
			if set[i].priority {
				nPri++
			}
		}
		if nPri <= protect && nPri < len(set) {
			// Protect priority lines: LRU among non-priority ways,
			// preferring lines that are not mid-fill.
			if v := lruAmong(set, now, func(l *Line) bool { return !l.priority }); v >= 0 {
				return v
			}
		}
		// Protection budget exhausted: global LRU, demoting the victim.
		v := lruAmong(set, now, func(l *Line) bool { return true })
		set[v].priority = false
		return v
	}
	return lruAmong(set, now, func(l *Line) bool { return true })
}

// lruAmong returns the least-recently-used way satisfying pred, preferring
// lines whose fill has completed (evicting an in-flight line would squash
// an outstanding fill). Returns -1 if no way satisfies pred.
func lruAmong(set []Line, now int64, pred func(*Line) bool) int {
	best, bestInflight := -1, -1
	var bestLRU, bestInflightLRU uint32
	for i := range set {
		l := &set[i]
		if !pred(l) {
			continue
		}
		if l.readyAt > now {
			if bestInflight == -1 || l.lru < bestInflightLRU {
				bestInflight, bestInflightLRU = i, l.lru
			}
			continue
		}
		if best == -1 || l.lru < bestLRU {
			best, bestLRU = i, l.lru
		}
	}
	if best >= 0 {
		return best
	}
	return bestInflight
}

// Promote sets the EMISSARY P-bit on a resident line; a miss is a no-op.
func (c *Cache) Promote(line isa.Addr) {
	if e := c.find(line); e != nil {
		e.priority = true
	}
}

// NumSets returns the set count.
func (c *Cache) NumSets() int { return len(c.sets) }

// PriorityLines counts resident lines with the P-bit set (test support).
func (c *Cache) PriorityLines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].priority {
				n++
			}
		}
	}
	return n
}
