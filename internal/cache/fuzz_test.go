package cache

import (
	"testing"

	"pdip/internal/isa"
)

// FuzzCacheSetVsShadow drives the cache and the executable replacement
// specification (property_test.go's shadowCache) with the same
// fuzzer-chosen operation sequence — accesses, completed fills with and
// without the P-bit, promotions — and fails on the first divergence in
// hit/miss outcome, eviction choice, or priority population. It is the
// fuzz-shaped twin of TestReplacementProperty: the fuzzer hunts for the
// operation orderings the seeded random walks never try.
func FuzzCacheSetVsShadow(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 0, 1})
	f.Add([]byte{1, 0x81, 1, 0x91, 2, 0x81, 0, 0x81, 1, 0xa1})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := MustNew(Config{
			Name: "fuzz", SizeBytes: 2 * 1024, Ways: 4,
			HitLatency: 1, MSHRs: 8, ProtectedWays: 2,
		})
		s := newShadow(c)
		now := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			now++
			op := data[i] % 3
			pri := data[i]&0x80 != 0
			line := isa.Addr(uint64(data[i+1])) * isa.LineSize
			switch op {
			case 0:
				got := c.Access(line, now, ClassInst).Hit
				want := s.access(line)
				if got != want {
					t.Fatalf("op %d: access %#x: cache hit=%v, shadow hit=%v", i, uint64(line), got, want)
				}
			case 1:
				gotEv, gotHad := c.Fill(line, now, now, FillOpts{Priority: pri})
				wantEv, wantHad := s.fill(line, pri)
				if gotHad != wantHad || gotEv != wantEv {
					t.Fatalf("op %d: fill %#x pri=%v: cache evicted (%#x,%v), shadow evicted (%#x,%v)",
						i, uint64(line), pri, uint64(gotEv), gotHad, uint64(wantEv), wantHad)
				}
			case 2:
				c.Promote(line)
				s.promote(line)
			}
			if got, want := c.PriorityLines(), s.priorityLines(); got != want {
				t.Fatalf("op %d: priority population diverged: cache %d, shadow %d", i, got, want)
			}
		}
	})
}
