// Owner tracking: when a cache level is shared between cores (the uncore
// L2/L3), every in-flight fill and every resident line is attributed to
// the requester ("owner") that caused it, and the MSHR file is split into
// per-owner reserved slots plus a free-for-all shared pool. The machinery
// is strictly opt-in: until EnableOwnerTracking is called, none of these
// fields exist and every hot-path check short-circuits on a nil slice, so
// a single-core hierarchy executes exactly the pre-owner code path.
package cache

import "fmt"

// OwnerStats aggregates per-owner interference counters at one shared
// level. The slice lives on Cache.Owners, indexed by owner id; internal/mem's
// port chain and internal/uncore increment the fields directly.
type OwnerStats struct {
	// Fills counts line installations attributed to this owner.
	Fills uint64
	// MSHRSteals counts fill allocations beyond the owner's reserved MSHR
	// share, i.e. slots taken from the shared pool that other tenants
	// compete for.
	MSHRSteals uint64
	// DelayedFills counts demand-origin fills that had to wait for MSHR
	// quota; DelayCycles accumulates the total wait.
	DelayedFills uint64
	DelayCycles  uint64
	// SpecDropped counts speculative (prefetch/prime-origin) fills dropped
	// at this level because the owner's quota was exhausted.
	SpecDropped uint64
	// CrossEvictionsSuffered counts this owner's resident lines evicted by
	// another owner's fill; CrossEvictionsCaused is the mirror image.
	CrossEvictionsSuffered uint64
	CrossEvictionsCaused   uint64
}

// EnableOwnerTracking switches the cache into shared (owner-attributed)
// mode for the given number of owners, reserving reserve MSHR slots per
// owner; the remaining MSHRs - owners*reserve entries form a shared pool.
// Must be called on a fresh cache, before any fill.
func (c *Cache) EnableOwnerTracking(owners, reserve int) error {
	if owners < 2 || owners > 256 {
		return fmt.Errorf("cache %s: owner tracking needs 2..256 owners, got %d", c.cfg.Name, owners)
	}
	if reserve < 0 || owners*reserve > c.cfg.MSHRs {
		return fmt.Errorf("cache %s: %d owners x %d reserved MSHRs exceeds the %d-entry file",
			c.cfg.Name, owners, reserve, c.cfg.MSHRs)
	}
	if len(c.inflight) != 0 || c.Stats.Fills != 0 {
		return fmt.Errorf("cache %s: owner tracking must be enabled before use", c.cfg.Name)
	}
	c.Owners = make([]OwnerStats, owners)
	c.ownerReserve = reserve
	c.ownerUsed = make([]int, owners)
	c.inflightOwner = make([]uint8, 0, c.cfg.MSHRs)
	c.scratchT = make([]int64, 0, c.cfg.MSHRs)
	c.scratchO = make([]uint8, 0, c.cfg.MSHRs)
	c.scratchU = make([]int, owners)
	return nil
}

// OwnersEnabled reports whether the level tracks per-owner attribution.
func (c *Cache) OwnersEnabled() bool { return c.Owners != nil }

// OwnerReserve returns the per-owner reserved MSHR share.
func (c *Cache) OwnerReserve() int { return c.ownerReserve }

// ResetOwnerStats zeroes the per-owner counters (measurement-phase reset).
func (c *Cache) ResetOwnerStats() {
	for i := range c.Owners {
		c.Owners[i] = OwnerStats{}
	}
}

// sharedInUse returns how many in-flight fills are charged to the shared
// pool: each owner's use beyond its reserved share.
func sharedInUse(used []int, reserve int) int {
	n := 0
	for _, u := range used {
		if u > reserve {
			n += u - reserve
		}
	}
	return n
}

// canIssueOwner is the MSHR admission rule in owner mode: an owner under
// its reserve may always allocate (the reserve is physically guaranteed —
// shared-pool use never exceeds MSHRs - owners*reserve, so a slot is
// free); beyond the reserve it competes for the shared pool.
func canIssueOwner(mshrs, reserve int, used []int, total, owner int) bool {
	if total >= mshrs {
		return false
	}
	if used[owner] < reserve {
		return true
	}
	return sharedInUse(used, reserve) < mshrs-len(used)*reserve
}

// OwnerCanIssue reports whether owner may allocate an MSHR at cycle now
// without waiting. Speculative fills at a contended shared level use this
// to drop rather than queue behind another tenant's misses.
func (c *Cache) OwnerCanIssue(now int64, owner int) bool {
	if c.Owners == nil {
		return c.MSHRFree(now) > 0
	}
	c.pruneMSHR(now)
	return canIssueOwner(c.cfg.MSHRs, c.ownerReserve, c.ownerUsed, len(c.inflight), owner)
}

// EarliestMSHRFreeFor returns the earliest cycle >= now at which owner may
// allocate an MSHR under the reservation policy. With owner tracking off
// it degenerates to EarliestMSHRFree. The search simulates in-flight
// retirements in deadline order on preallocated scratch (insertion sort —
// the file is small and sort.Slice would allocate), so the hot path stays
// allocation-free.
func (c *Cache) EarliestMSHRFreeFor(now int64, owner int) int64 {
	if c.Owners == nil {
		return c.EarliestMSHRFree(now)
	}
	c.pruneMSHR(now)
	if canIssueOwner(c.cfg.MSHRs, c.ownerReserve, c.ownerUsed, len(c.inflight), owner) {
		return now
	}
	st := append(c.scratchT[:0], c.inflight...)
	so := append(c.scratchO[:0], c.inflightOwner...)
	for i := 1; i < len(st); i++ {
		t, o := st[i], so[i]
		j := i - 1
		for j >= 0 && st[j] > t {
			st[j+1], so[j+1] = st[j], so[j]
			j--
		}
		st[j+1], so[j+1] = t, o
	}
	used := c.scratchU
	copy(used, c.ownerUsed)
	total := len(st)
	for i := range st {
		used[so[i]]--
		total--
		if canIssueOwner(c.cfg.MSHRs, c.ownerReserve, used, total, owner) {
			return st[i]
		}
	}
	// Unreachable: an empty file always admits every owner.
	return c.inflightMin
}

// pruneMSHROwned is pruneMSHR's owner-mode twin: it compacts the deadline
// and owner columns in parallel and returns freed slots to their owners.
func (c *Cache) pruneMSHROwned(now int64) {
	keepT := c.inflight[:0]
	keepO := c.inflightOwner[:0]
	min := int64(0)
	for i, t := range c.inflight {
		o := c.inflightOwner[i]
		if t > now {
			if len(keepT) == 0 || t < min {
				min = t
			}
			keepT = append(keepT, t)
			keepO = append(keepO, o)
		} else {
			c.ownerUsed[o]--
		}
	}
	c.inflight = keepT
	c.inflightOwner = keepO
	c.inflightMin = min
}
