package cache

import "pdip/internal/metrics"

// RegisterMetrics binds every per-level counter under prefix (e.g.
// "cache.l1i") into reg. The bindings are closures over the level's Stats
// struct, resolved once here and read only at snapshot time, so the access
// hot path is untouched and ResetStats-style zeroing of Stats is reflected
// automatically.
func (c *Cache) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+".accesses", func() uint64 { return c.Stats.Accesses })
	reg.CounterFunc(prefix+".misses", func() uint64 { return c.Stats.Misses })
	reg.CounterFunc(prefix+".inst_misses", func() uint64 { return c.Stats.InstMisses })
	reg.CounterFunc(prefix+".data_misses", func() uint64 { return c.Stats.DataMisses })
	reg.CounterFunc(prefix+".late_hits", func() uint64 { return c.Stats.LateHits })
	reg.CounterFunc(prefix+".fills", func() uint64 { return c.Stats.Fills })
	reg.CounterFunc(prefix+".prefetch_fills", func() uint64 { return c.Stats.PrefetchFills })
	reg.CounterFunc(prefix+".useful_prefetches", func() uint64 { return c.Stats.UsefulPrefetches })
	reg.CounterFunc(prefix+".late_prefetches", func() uint64 { return c.Stats.LatePrefetches })
	reg.CounterFunc(prefix+".useless_prefetches", func() uint64 { return c.Stats.UselessPrefetches })
	reg.CounterFunc(prefix+".evictions", func() uint64 { return c.Stats.Evictions })
	reg.Gauge(prefix + ".size_bytes").Set(float64(c.cfg.SizeBytes))
	reg.Gauge(prefix + ".ways").Set(float64(c.cfg.Ways))
}
