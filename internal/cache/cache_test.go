package cache

import (
	"testing"
	"testing/quick"

	"pdip/internal/isa"
)

func tiny(protected int) *Cache {
	return MustNew(Config{
		Name: "T", SizeBytes: 4 * isa.LineSize * 2, Ways: 2,
		HitLatency: 2, MSHRs: 4, ProtectedWays: protected,
	}) // 4 sets × 2 ways
}

func TestMissThenHit(t *testing.T) {
	c := tiny(0)
	line := isa.Addr(0x1000)
	if r := c.Access(line, 10, ClassInst); r.Hit {
		t.Fatal("empty cache hit")
	}
	c.Fill(line, 10, 10, FillOpts{})
	r := c.Access(line, 11, ClassInst)
	if !r.Hit || r.ReadyAt != 13 {
		t.Fatalf("hit=%v readyAt=%d, want hit at 13", r.Hit, r.ReadyAt)
	}
	if c.Stats.Misses != 1 || c.Stats.InstMisses != 1 || c.Stats.Accesses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestInflightPartialHit(t *testing.T) {
	c := tiny(0)
	line := isa.Addr(0x2000)
	c.Fill(line, 10, 50, FillOpts{}) // fill completes at 50
	r := c.Access(line, 20, ClassInst)
	if !r.Hit || !r.WasInflight || r.ReadyAt != 50 {
		t.Fatalf("in-flight access: %+v", r)
	}
	if c.Stats.LateHits != 1 {
		t.Fatalf("LateHits = %d", c.Stats.LateHits)
	}
	// After completion it is a plain hit.
	r = c.Access(line, 60, ClassInst)
	if !r.Hit || r.WasInflight {
		t.Fatalf("post-completion access: %+v", r)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(0)
	// Three lines mapping to the same set (stride = sets×linesize = 256).
	a, b, d := isa.Addr(0x0), isa.Addr(0x100), isa.Addr(0x200)
	c.Fill(a, 1, 1, FillOpts{})
	c.Fill(b, 2, 2, FillOpts{})
	c.Access(a, 3, ClassInst) // make a MRU
	evicted, had := c.Fill(d, 4, 4, FillOpts{})
	if !had || evicted != b {
		t.Fatalf("evicted %v (had=%v), want %v", evicted, had, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestMSHRAccounting(t *testing.T) {
	c := tiny(0)
	now := int64(10)
	if c.MSHRFree(now) != 4 {
		t.Fatalf("free = %d", c.MSHRFree(now))
	}
	for i := 0; i < 4; i++ {
		c.Fill(isa.Addr(0x1000+i*64), now, now+100, FillOpts{})
	}
	if c.MSHRFree(now) != 0 {
		t.Fatalf("free = %d after 4 in-flight fills", c.MSHRFree(now))
	}
	if got := c.EarliestMSHRFree(now); got != now+100 {
		t.Fatalf("EarliestMSHRFree = %d, want %d", got, now+100)
	}
	// After completion the entries expire.
	if c.MSHRFree(now+101) != 4 {
		t.Fatalf("free = %d after fills completed", c.MSHRFree(now+101))
	}
}

func TestCompletedFillUsesNoMSHR(t *testing.T) {
	c := tiny(0)
	c.Fill(0x40, 5, 5, FillOpts{}) // instant (zero-cost) fill
	if c.MSHRFree(5) != 4 {
		t.Fatal("instant fill consumed an MSHR")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := tiny(0)
	line := isa.Addr(0x3000)
	c.Fill(line, 10, 30, FillOpts{Prefetch: true})
	if c.Stats.PrefetchFills != 1 || c.Stats.Fills != 1 {
		t.Fatalf("fills %+v", c.Stats)
	}
	// Demand before completion: useful AND late.
	r := c.Access(line, 20, ClassInst)
	if !r.WasPrefetch {
		t.Fatal("prefetch consumption not flagged")
	}
	if c.Stats.UsefulPrefetches != 1 || c.Stats.LatePrefetches != 1 {
		t.Fatalf("useful=%d late=%d", c.Stats.UsefulPrefetches, c.Stats.LatePrefetches)
	}
	// Second access is no longer a prefetch consumption.
	if r := c.Access(line, 40, ClassInst); r.WasPrefetch {
		t.Fatal("prefetch counted twice")
	}
}

func TestUselessPrefetch(t *testing.T) {
	c := tiny(0)
	// Fill the set with two prefetches, then evict one without a hit.
	c.Fill(0x000, 1, 1, FillOpts{Prefetch: true})
	c.Fill(0x100, 2, 2, FillOpts{Prefetch: true})
	c.Fill(0x200, 3, 3, FillOpts{})
	if c.Stats.UselessPrefetches != 1 {
		t.Fatalf("UselessPrefetches = %d", c.Stats.UselessPrefetches)
	}
}

func TestEmissaryProtection(t *testing.T) {
	c := tiny(1) // 2-way with 1 protected way
	pri, x, y := isa.Addr(0x000), isa.Addr(0x100), isa.Addr(0x200)
	c.Fill(pri, 1, 1, FillOpts{Priority: true})
	c.Fill(x, 2, 2, FillOpts{})
	// A new fill must evict the non-priority line even though pri is LRU.
	evicted, had := c.Fill(y, 3, 3, FillOpts{})
	if !had || evicted != x {
		t.Fatalf("evicted %v, want non-priority %v", evicted, x)
	}
	if !c.Contains(pri) {
		t.Fatal("priority line evicted despite protection")
	}
}

func TestEmissaryDemotionWhenExhausted(t *testing.T) {
	c := tiny(1)
	a, b, d := isa.Addr(0x000), isa.Addr(0x100), isa.Addr(0x200)
	c.Fill(a, 1, 1, FillOpts{Priority: true})
	c.Fill(b, 2, 2, FillOpts{Priority: true})
	// Both ways priority, budget 1: global LRU must go, demoted.
	evicted, had := c.Fill(d, 3, 3, FillOpts{})
	if !had || evicted != a {
		t.Fatalf("evicted %v, want LRU %v", evicted, a)
	}
	if c.PriorityLines() != 1 {
		t.Fatalf("priority lines = %d after demotion path", c.PriorityLines())
	}
}

func TestPromote(t *testing.T) {
	c := tiny(1)
	line := isa.Addr(0x4000)
	c.Promote(line) // miss: no-op
	c.Fill(line, 1, 1, FillOpts{})
	c.Promote(line)
	if c.PriorityLines() != 1 {
		t.Fatal("Promote did not set the P-bit")
	}
}

func TestFillExistingRefreshesPriority(t *testing.T) {
	c := tiny(1)
	line := isa.Addr(0x40)
	c.Fill(line, 1, 1, FillOpts{})
	c.Fill(line, 2, 2, FillOpts{Priority: true})
	if c.PriorityLines() != 1 {
		t.Fatal("re-fill did not set priority")
	}
	if c.Stats.Fills != 1 {
		t.Fatalf("duplicate fill counted: %d", c.Stats.Fills)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Name: "bad", SizeBytes: 0, Ways: 2}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := New(Config{Name: "bad", SizeBytes: 3 * 64, Ways: 1}); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
}

func TestContainsAfterFillProperty(t *testing.T) {
	c := MustNew(Config{Name: "P", SizeBytes: 64 << 10, Ways: 8, HitLatency: 2, MSHRs: 16})
	f := func(a uint32) bool {
		line := isa.Addr(a).Line()
		c.Fill(line, 1, 1, FillOpts{})
		return c.Contains(line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictedAddressReconstruction(t *testing.T) {
	c := tiny(0)
	a, b, d := isa.Addr(0x7000), isa.Addr(0x7100), isa.Addr(0x7200)
	c.Fill(a, 1, 1, FillOpts{})
	c.Fill(b, 2, 2, FillOpts{})
	evicted, had := c.Fill(d, 3, 3, FillOpts{})
	if !had || (evicted != a && evicted != b) {
		t.Fatalf("evicted %v, want one of the original lines", evicted)
	}
}

func TestEmissaryInvariantProperty(t *testing.T) {
	// Under any interleaving of priority/plain fills, the number of
	// priority lines per set never exceeds the way count, and protected
	// lines survive plain fills while the budget holds.
	c := MustNew(Config{Name: "E", SizeBytes: 8 * isa.LineSize * 4, Ways: 4,
		HitLatency: 2, MSHRs: 8, ProtectedWays: 2})
	f := func(ops []uint16) bool {
		for i, op := range ops {
			line := isa.Addr(op&0xff) * isa.LineSize
			pri := op&0x100 != 0
			c.Fill(line, int64(i), int64(i), FillOpts{Priority: pri})
		}
		for _, set := range c.sets {
			nPri := 0
			for i := range set {
				if set[i].valid && set[i].priority {
					nPri++
				}
			}
			if nPri > len(set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRNeverNegativeProperty(t *testing.T) {
	c := MustNew(Config{Name: "M", SizeBytes: 16 << 10, Ways: 4, HitLatency: 2, MSHRs: 4})
	now := int64(0)
	f := func(step uint8, lineSel uint16) bool {
		now += int64(step%7) + 1
		line := isa.Addr(lineSel) * isa.LineSize
		if c.MSHRFree(now) > 0 && !c.Contains(line) {
			c.Fill(line, now, now+20, FillOpts{})
		}
		free := c.MSHRFree(now)
		return free >= 0 && free <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMSHROccupancyAcrossPruneFillInterleavings pins MSHR occupancy and
// the earliest-free cycle against a reference model through adversarial
// prune/fill interleavings: out-of-order deadlines, same-cycle expiry and
// refill, time jumps that drain everything, and full-file backpressure.
// The cached-minimum fast path and the in-place compaction must agree
// with the brute-force recount at every step.
func TestMSHROccupancyAcrossPruneFillInterleavings(t *testing.T) {
	c := MustNew(Config{Name: "M", SizeBytes: 64 << 10, Ways: 4, HitLatency: 2, MSHRs: 4})
	// ref is the model: the multiset of live deadlines.
	var ref []int64
	refFree := func(now int64) int {
		n := 0
		for _, d := range ref {
			if d > now {
				n++
			}
		}
		return 4 - n
	}
	refEarliest := func(now int64) int64 {
		if refFree(now) > 0 {
			return now
		}
		min := int64(0)
		for _, d := range ref {
			if d > now && (min == 0 || d < min) {
				min = d
			}
		}
		return min
	}
	check := func(now int64) {
		t.Helper()
		if got, want := c.MSHRFree(now), refFree(now); got != want {
			t.Fatalf("cycle %d: MSHRFree = %d, want %d (ref %v)", now, got, want, ref)
		}
		if got, want := c.EarliestMSHRFree(now), refEarliest(now); got != want {
			t.Fatalf("cycle %d: EarliestMSHRFree = %d, want %d (ref %v)", now, got, want, ref)
		}
	}
	fill := func(line isa.Addr, now, readyAt int64) {
		c.Fill(line, now, readyAt, FillOpts{})
		if readyAt > now {
			ref = append(ref, readyAt)
		}
	}

	// Out-of-order deadlines: longest first.
	fill(0x1000, 10, 200)
	fill(0x1040, 11, 50)
	fill(0x1080, 12, 120)
	check(12)
	// Partial drain: the short one expires, the others survive.
	check(51)
	// Refill on the same cycle a deadline expires.
	fill(0x10c0, 120, 140)
	check(120)
	// Fill the file and verify full-file earliest-free (cached minimum).
	fill(0x1100, 121, 125)
	check(121)
	// Drain two at once with a time jump.
	check(141)
	// Instant fill (readyAt == now) consumes nothing.
	fill(0x1140, 150, 150)
	check(150)
	// Drain everything, then rebuild from empty.
	check(1000)
	fill(0x2000, 1001, 1030)
	fill(0x2040, 1001, 1010)
	check(1001)
	check(1010)
	check(1030)
}
