package cache

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/rng"
)

// shadowLine mirrors one resident line in the reference model.
type shadowLine struct {
	tag      uint64
	priority bool
}

// shadowCache is an executable specification of the replacement policy:
// per-set recency lists (oldest first) plus P-bits. It replicates
// pickVictim for fully-completed fills — LRU with EMISSARY's non-priority
// preference while the set's priority population is within budget, global
// LRU with demotion once it is exhausted.
type shadowCache struct {
	ways    int
	protect int
	sets    [][]shadowLine
	mask    uint64
}

func newShadow(c *Cache) *shadowCache {
	return &shadowCache{
		ways:    c.Config().Ways,
		protect: c.Config().ProtectedWays,
		sets:    make([][]shadowLine, c.NumSets()),
		mask:    uint64(c.NumSets() - 1),
	}
}

func (s *shadowCache) locate(line isa.Addr) (int, uint64) {
	v := uint64(line) >> isa.LineShift
	return int(v & s.mask), v
}

func (s *shadowCache) find(set int, tag uint64) int {
	for i, l := range s.sets[set] {
		if l.tag == tag {
			return i
		}
	}
	return -1
}

// access mirrors Cache.Access: a hit refreshes recency, a miss changes
// nothing. Returns whether the model predicts a hit.
func (s *shadowCache) access(line isa.Addr) bool {
	set, tag := s.locate(line)
	i := s.find(set, tag)
	if i < 0 {
		return false
	}
	l := s.sets[set][i]
	s.sets[set] = append(append(s.sets[set][:i:i], s.sets[set][i+1:]...), l)
	return true
}

// fill mirrors Cache.Fill for completed fills and returns the predicted
// eviction. Present lines only refresh the P-bit (no recency touch).
func (s *shadowCache) fill(line isa.Addr, priority bool) (evicted isa.Addr, hadVictim bool) {
	set, tag := s.locate(line)
	if i := s.find(set, tag); i >= 0 {
		if priority {
			s.sets[set][i].priority = true
		}
		return 0, false
	}
	if len(s.sets[set]) >= s.ways {
		v := s.victim(set)
		evicted = isa.Addr(s.sets[set][v].tag << isa.LineShift)
		hadVictim = true
		s.sets[set] = append(s.sets[set][:v:v], s.sets[set][v+1:]...)
	}
	s.sets[set] = append(s.sets[set], shadowLine{tag: tag, priority: priority})
	return evicted, hadVictim
}

func (s *shadowCache) victim(set int) int {
	lines := s.sets[set]
	if s.protect > 0 {
		nPri := 0
		for _, l := range lines {
			if l.priority {
				nPri++
			}
		}
		if nPri <= s.protect && nPri < len(lines) {
			for i, l := range lines { // oldest non-priority line
				if !l.priority {
					return i
				}
			}
		}
	}
	return 0 // oldest overall
}

func (s *shadowCache) promote(line isa.Addr) {
	set, tag := s.locate(line)
	if i := s.find(set, tag); i >= 0 {
		s.sets[set][i].priority = true
	}
}

func (s *shadowCache) priorityLines() int {
	n := 0
	for _, set := range s.sets {
		for _, l := range set {
			if l.priority {
				n++
			}
		}
	}
	return n
}

// runReplacementProperty drives cache and shadow with the same randomized
// operation sequence and fails on the first divergence in hit/miss
// outcome, eviction choice, or priority population.
func runReplacementProperty(t *testing.T, seed uint64, protectedWays int) {
	t.Helper()
	c := MustNew(Config{
		Name: "prop", SizeBytes: 4 * 1024, Ways: 8,
		HitLatency: 1, MSHRs: 8, ProtectedWays: protectedWays,
	})
	sh := newShadow(c)
	r := rng.New(seed)
	// 4 sets below saturation pressure: pool of 8 sets' worth of tags so
	// each set sees ~2x its capacity in live lines.
	pool := make([]isa.Addr, 128)
	for i := range pool {
		pool[i] = isa.Addr(i * isa.LineSize)
	}
	var now int64 = 100
	for op := 0; op < 50_000; op++ {
		now++
		line := pool[r.Intn(len(pool))]
		switch {
		case r.Bool(0.45): // demand access
			got := c.Access(line, now, ClassInst)
			want := sh.access(line)
			if got.Hit != want {
				t.Fatalf("op %d: Access(%#x) hit=%v, shadow says %v", op, line, got.Hit, want)
			}
		case r.Bool(0.1) && protectedWays > 0: // EMISSARY promote
			c.Promote(line)
			sh.promote(line)
		default: // completed fill (readyAt == now: no in-flight state)
			pri := protectedWays > 0 && r.Bool(0.3)
			gotEv, gotHad := c.Fill(line, now, now, FillOpts{Priority: pri})
			wantEv, wantHad := sh.fill(line, pri)
			if gotHad != wantHad || (gotHad && gotEv != wantEv) {
				t.Fatalf("op %d: Fill(%#x,pri=%v) evicted (%#x,%v), shadow predicts (%#x,%v)",
					op, line, pri, gotEv, gotHad, wantEv, wantHad)
			}
		}
		if protectedWays > 0 && op%1000 == 0 {
			if got, want := c.PriorityLines(), sh.priorityLines(); got != want {
				t.Fatalf("op %d: %d priority lines, shadow has %d", op, got, want)
			}
		}
	}
}

// TestPropertyLRUReplacement checks pure LRU against the shadow model:
// every eviction over 50k randomized accesses/fills must displace exactly
// the least-recently-touched line of its set.
func TestPropertyLRUReplacement(t *testing.T) {
	for _, seed := range []uint64{1, 0xdead, 0xc0ffee} {
		runReplacementProperty(t, seed, 0)
	}
}

// TestPropertyEmissaryReplacement checks the EMISSARY policy against the
// shadow model: priority lines survive as long as the set's priority
// population is within ProtectedWays and a non-priority victim exists;
// past the budget, the global LRU line is demoted and evicted.
func TestPropertyEmissaryReplacement(t *testing.T) {
	for _, seed := range []uint64{2, 0xbeef, 0xfade} {
		for _, protect := range []int{1, 4} {
			runReplacementProperty(t, seed, protect)
		}
	}
}

// TestPropertyMSHROccupancy drives the guarded fill path the prefetch
// queue uses — fill only when an MSHR is free — with randomized latencies
// and time advances, and checks occupancy stays within [0, MSHRs] and the
// MSHR file agrees with a reference list of outstanding deadlines.
func TestPropertyMSHROccupancy(t *testing.T) {
	const mshrs = 4
	c := MustNew(Config{
		Name: "mshr", SizeBytes: 64 * 1024, Ways: 8,
		HitLatency: 1, MSHRs: mshrs,
	})
	r := rng.New(0x5157)
	var now int64 = 1
	var outstanding []int64 // reference deadlines, pruned like the MSHR file
	next := 0               // fresh line per fill so every fill allocates
	for op := 0; op < 20_000; op++ {
		now += int64(r.Intn(5))
		keep := outstanding[:0]
		for _, d := range outstanding {
			if d > now {
				keep = append(keep, d)
			}
		}
		outstanding = keep

		free := c.MSHRFree(now)
		if wantFree := mshrs - len(outstanding); free != wantFree {
			t.Fatalf("op %d: MSHRFree=%d, reference says %d", op, free, wantFree)
		}
		if free < 0 || free > mshrs {
			t.Fatalf("op %d: MSHRFree=%d outside [0,%d]", op, free, mshrs)
		}
		if free == 0 {
			earliest := outstanding[0]
			for _, d := range outstanding[1:] {
				if d < earliest {
					earliest = d
				}
			}
			if got := c.EarliestMSHRFree(now); got != earliest {
				t.Fatalf("op %d: EarliestMSHRFree=%d, reference says %d", op, got, earliest)
			}
			continue
		}
		if got := c.EarliestMSHRFree(now); got != now {
			t.Fatalf("op %d: MSHR free but EarliestMSHRFree=%d, want now=%d", op, got, now)
		}
		// Guarded in-flight prefetch fill, exactly like prefetch.Queue.
		line := isa.Addr(next * isa.LineSize)
		next++
		readyAt := now + 1 + int64(r.Intn(40))
		c.Fill(line, now, readyAt, FillOpts{Prefetch: true})
		outstanding = append(outstanding, readyAt)
	}
}
