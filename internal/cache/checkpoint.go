package cache

import (
	"fmt"

	"pdip/internal/checkpoint"
)

// CaptureCheckpoint captures every line's metadata (tag, LRU stamp,
// EMISSARY P-bit, in-flight deadline), the MSHR file, the replacement
// clock, and the level's stats. Geometry (set count, ways) is recorded so
// a restore into a differently configured cache fails loudly. Lines are
// emitted into the columnar layout of checkpoint.CacheState, set-major.
func (c *Cache) CaptureCheckpoint() checkpoint.CacheState {
	n := len(c.sets) * c.cfg.Ways
	st := checkpoint.CacheState{
		Sets:        len(c.sets),
		Ways:        c.cfg.Ways,
		Tag:         make([]uint64, 0, n),
		LRU:         make([]uint32, 0, n),
		ReadyAt:     make([]int64, 0, n),
		Valid:       checkpoint.NewBitmask(n),
		Priority:    checkpoint.NewBitmask(n),
		Prefetched:  checkpoint.NewBitmask(n),
		Tick:        c.tick,
		Inflight:    append([]int64(nil), c.inflight...),
		InflightMin: c.inflightMin,
		Stats:       checkpoint.CacheStats(c.Stats),
	}
	if c.Owners != nil {
		st.Owner = make([]uint8, 0, n)
		st.InflightOwner = append([]uint8(nil), c.inflightOwner...)
		st.Owners = make([]checkpoint.OwnerStats, len(c.Owners))
		for i, o := range c.Owners {
			st.Owners[i] = checkpoint.OwnerStats(o)
		}
	}
	k := 0
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			st.Tag = append(st.Tag, l.tag)
			st.LRU = append(st.LRU, l.lru)
			st.ReadyAt = append(st.ReadyAt, l.readyAt)
			if l.valid {
				st.Valid.Set(k)
			}
			if l.priority {
				st.Priority.Set(k)
			}
			if l.prefetched {
				st.Prefetched.Set(k)
			}
			if c.Owners != nil {
				st.Owner = append(st.Owner, l.owner)
			}
			k++
		}
	}
	return st
}

// RestoreCheckpoint overwrites the cache's state from a captured state.
// The receiver must have been built with the same geometry. Slices from
// st are copied, never aliased, so one checkpoint can restore many caches
// concurrently.
func (c *Cache) RestoreCheckpoint(st checkpoint.CacheState) error {
	if st.Sets != len(c.sets) || st.Ways != c.cfg.Ways {
		return fmt.Errorf("cache %s: checkpoint geometry %dx%d, cache is %dx%d",
			c.cfg.Name, st.Sets, st.Ways, len(c.sets), c.cfg.Ways)
	}
	n := st.Sets * st.Ways
	if len(st.Tag) != n || len(st.LRU) != n || len(st.ReadyAt) != n {
		return fmt.Errorf("cache %s: checkpoint has %d/%d/%d tag/lru/readyAt entries, want %d",
			c.cfg.Name, len(st.Tag), len(st.LRU), len(st.ReadyAt), n)
	}
	if st.Valid.Len() < n || st.Priority.Len() < n || st.Prefetched.Len() < n {
		return fmt.Errorf("cache %s: checkpoint bitmask shorter than %d lines", c.cfg.Name, n)
	}
	if c.Owners != nil {
		if len(st.Owner) != n {
			return fmt.Errorf("cache %s: owner-tracked restore needs %d owner entries, checkpoint has %d",
				c.cfg.Name, n, len(st.Owner))
		}
		if len(st.InflightOwner) != len(st.Inflight) {
			return fmt.Errorf("cache %s: checkpoint has %d in-flight owners for %d in-flight fills",
				c.cfg.Name, len(st.InflightOwner), len(st.Inflight))
		}
		if len(st.Owners) != len(c.Owners) {
			return fmt.Errorf("cache %s: checkpoint tracks %d owners, cache tracks %d",
				c.cfg.Name, len(st.Owners), len(c.Owners))
		}
	} else if st.Owner != nil {
		return fmt.Errorf("cache %s: checkpoint carries owner columns but owner tracking is off", c.cfg.Name)
	}
	k := 0
	for _, set := range c.sets {
		for i := range set {
			set[i] = Line{
				valid:      st.Valid.Get(k),
				tag:        st.Tag[k],
				lru:        st.LRU[k],
				readyAt:    st.ReadyAt[k],
				priority:   st.Priority.Get(k),
				prefetched: st.Prefetched.Get(k),
			}
			if c.Owners != nil {
				set[i].owner = st.Owner[k]
			}
			k++
		}
	}
	c.tick = st.Tick
	c.inflight = append(c.inflight[:0], st.Inflight...)
	c.inflightMin = st.InflightMin
	c.Stats = Stats(st.Stats)
	if c.Owners != nil {
		c.inflightOwner = append(c.inflightOwner[:0], st.InflightOwner...)
		// Per-owner occupancy is derived: recount it from the restored
		// owner column rather than trusting a redundant encoding.
		for i := range c.ownerUsed {
			c.ownerUsed[i] = 0
		}
		for _, o := range c.inflightOwner {
			if int(o) >= len(c.ownerUsed) {
				return fmt.Errorf("cache %s: checkpoint in-flight owner %d outside 0..%d",
					c.cfg.Name, o, len(c.ownerUsed)-1)
			}
			c.ownerUsed[o]++
		}
		for i := range c.Owners {
			c.Owners[i] = OwnerStats(st.Owners[i])
		}
	}
	return nil
}
