package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is a static call graph over the module's type-checked
// functions and methods. Edges cover direct calls, package-qualified
// calls, method calls on concrete receivers, and — via class-hierarchy
// analysis — interface method calls, resolved to every module type that
// implements the interface. Calls through function values are not
// resolved (the repo's hot paths avoid them; closures defined inside a
// function are attributed to that function by position).
type CallGraph struct {
	// nodes maps each declared function (its generic origin) to its node.
	nodes map[*types.Func]*FuncNode
	// concrete are the module's named non-interface types, for CHA.
	concrete []*types.Named
	// chaCache memoises interface-method resolution.
	chaCache map[chaKey][]*types.Func
}

// FuncNode is one declared function or method and its outgoing edges.
type FuncNode struct {
	// Fn is the function object (generic origin for generic functions).
	Fn *types.Func
	// Pkg is the declaring package.
	Pkg *Package
	// Decl is the declaration (nil only for functions without bodies).
	Decl *ast.FuncDecl
	// Calls are the outgoing edges, in source order.
	Calls []CallEdge
}

// CallEdge is one call site.
type CallEdge struct {
	// Callee is the called function (generic origin).
	Callee *types.Func
	// Pos is the call position.
	Pos token.Pos
	// ViaInterface marks a CHA-resolved interface dispatch.
	ViaInterface bool
}

type chaKey struct {
	iface  *types.Interface
	method string
}

// NewCallGraph builds the call graph over every function declared in pkgs.
func NewCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		nodes:    map[*types.Func]*FuncNode{},
		chaCache: map[chaKey][]*types.Func{},
	}
	// Index declarations and collect the module's concrete named types.
	for _, p := range pkgs {
		if p.Types != nil {
			scope := p.Types.Scope()
			for _, name := range scope.Names() {
				if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
					if named, ok := tn.Type().(*types.Named); ok {
						if _, isIface := named.Underlying().(*types.Interface); !isIface {
							cg.concrete = append(cg.concrete, named)
						}
					}
				}
			}
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn = origin(fn)
				cg.nodes[fn] = &FuncNode{Fn: fn, Pkg: p, Decl: fd}
			}
		}
	}
	// Resolve call sites, iterating nodes in deterministic (sorted) order.
	for _, node := range cg.Nodes() {
		if node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		p := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range cg.resolve(p, call) {
				node.Calls = append(node.Calls, callee)
			}
			return true
		})
		sort.SliceStable(node.Calls, func(i, j int) bool {
			return node.Calls[i].Pos < node.Calls[j].Pos
		})
	}
	return cg
}

// origin unwraps an instantiated generic function/method to its generic
// declaration, the identity the graph is keyed by.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// Node returns the graph node for fn (its generic origin), or nil.
func (cg *CallGraph) Node(fn *types.Func) *FuncNode {
	return cg.nodes[origin(fn)]
}

// Nodes returns every node, sorted by position — a deterministic
// whole-graph iteration order.
func (cg *CallGraph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(cg.nodes))
	for _, n := range cg.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg.ImportPath != out[j].Pkg.ImportPath {
			return out[i].Pkg.ImportPath < out[j].Pkg.ImportPath
		}
		return out[i].Fn.Pos() < out[j].Fn.Pos()
	})
	return out
}

// resolve maps one call expression to its possible module-internal
// callees. Calls into the standard library resolve to nothing: analyzers
// treat stdlib behaviour by name (wall-clock lists, escape output), not by
// body.
func (cg *CallGraph) resolve(p *Package, call *ast.CallExpr) []CallEdge {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if edge, ok := cg.moduleEdge(fn, call.Pos(), false); ok {
				return []CallEdge{edge}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			callee, _ := sel.Obj().(*types.Func)
			if callee == nil {
				return nil
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				var edges []CallEdge
				for _, impl := range cg.implementations(iface, callee.Name()) {
					if edge, ok := cg.moduleEdge(impl, call.Pos(), true); ok {
						edges = append(edges, edge)
					}
				}
				return edges
			}
			if edge, ok := cg.moduleEdge(callee, call.Pos(), false); ok {
				return []CallEdge{edge}
			}
			return nil
		}
		// Package-qualified function call (pkg.Fn).
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if edge, ok := cg.moduleEdge(fn, call.Pos(), false); ok {
				return []CallEdge{edge}
			}
		}
	}
	return nil
}

// moduleEdge returns an edge to fn when fn is declared in a loaded module
// package.
func (cg *CallGraph) moduleEdge(fn *types.Func, pos token.Pos, viaIface bool) (CallEdge, bool) {
	fn = origin(fn)
	if _, ok := cg.nodes[fn]; !ok {
		return CallEdge{}, false
	}
	return CallEdge{Callee: fn, Pos: pos, ViaInterface: viaIface}, true
}

// implementations resolves an interface method to the matching methods of
// every module type implementing the interface (class-hierarchy analysis).
func (cg *CallGraph) implementations(iface *types.Interface, method string) []*types.Func {
	key := chaKey{iface, method}
	if impls, ok := cg.chaCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range cg.concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, origin(fn))
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Pos() < impls[j].Pos() })
	cg.chaCache[key] = impls
	return impls
}

// Reachable walks the graph from roots and returns, for every reachable
// function, the edge by which it was first discovered (roots map to a
// zero edge). The breadth-first order is deterministic: roots in the
// given order, edges in source order.
type ReachEntry struct {
	// From is the caller that first reached this function (nil for roots).
	From *types.Func
	// Pos is the call site that first reached it.
	Pos token.Pos
}

// Reachable computes the functions reachable from roots.
func (cg *CallGraph) Reachable(roots []*types.Func) map[*types.Func]ReachEntry {
	reached := map[*types.Func]ReachEntry{}
	var queue []*types.Func
	for _, fn := range roots {
		fn = origin(fn)
		if _, ok := reached[fn]; !ok {
			reached[fn] = ReachEntry{}
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := cg.nodes[fn]
		if node == nil {
			continue
		}
		for _, edge := range node.Calls {
			if _, ok := reached[edge.Callee]; !ok {
				reached[edge.Callee] = ReachEntry{From: fn, Pos: edge.Pos}
				queue = append(queue, edge.Callee)
			}
		}
	}
	return reached
}

// Chain renders the discovery path from a root to fn as
// "root → ... → fn", using the entries produced by Reachable.
func Chain(reached map[*types.Func]ReachEntry, fn *types.Func) string {
	var names []string
	for cur := origin(fn); cur != nil; {
		names = append(names, funcName(cur))
		cur = reached[cur].From
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " -> "
		}
		out += n
	}
	return out
}

// funcName renders fn as "pkg.Fn" or "pkg.(*T).M".
func funcName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := lastSlash(path); i >= 0 {
			path = path[i+1:]
		}
		pkg = path + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
