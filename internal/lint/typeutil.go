package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// namedOf unwraps pointers and returns the named type behind t, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeDeclPkg returns the declaring package path and type name of t (after
// pointer unwrapping), or "","" when t is not a named type.
func typeDeclPkg(t types.Type) (pkgPath, name string) {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

// methodCall decomposes call into (receiver expression, receiver type,
// method name) when call is a method call through a selector; ok is false
// for plain function calls, package-qualified calls, and conversions.
func methodCall(p *Package, call *ast.CallExpr) (recv ast.Expr, recvType types.Type, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	s, isMethod := p.Info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return nil, nil, "", false
	}
	return sel.X, s.Recv(), sel.Sel.Name, true
}

// pkgFuncCall returns the package path and function name when call invokes
// a package-level function through a package qualifier (fmt.Println,
// sort.Strings, ...).
func pkgFuncCall(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isInternalPath reports whether path is a simulation package of this
// module (module/internal/...), which is where the determinism contract
// applies.
func isInternalPath(module, path string) bool {
	return strings.HasPrefix(path, module+"/internal/")
}

// objOf resolves the object an identifier refers to (use or definition).
func objOf(p *Package, id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// constInt extracts an exact integer from a constant expression value,
// returning ok=false for non-constant or non-integer expressions.
func constInt(p *Package, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return exactInt(tv)
}

func exactInt(tv types.TypeAndValue) (int64, bool) {
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// constFloat extracts a float from a constant expression value.
func constFloat(p *Package, e ast.Expr) (float64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}
