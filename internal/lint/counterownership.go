package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// CounterOwnership enforces the single-writer discipline of the per-stage
// counter groups (internal/core/metrics.go): a counter reached through a
// group struct named `<group>Counters` may only be incremented (Inc, Add,
// Observe) from the file that owns the group. Ownership defaults to
// `stage_<group>.go`; a `//lint:owner file.go [file.go ...]` directive in
// the group type's doc comment overrides the owner set (the pipe group is
// owned by core.go's cycle loop, the prefetch group is shared by the two
// stages that enqueue prefetches). metrics.go — the registration and
// snapshot site — is always allowed. Reads (Load) are unrestricted.
type CounterOwnership struct{}

// Name implements Analyzer.
func (*CounterOwnership) Name() string { return "counterownership" }

// Doc implements Analyzer.
func (*CounterOwnership) Doc() string {
	return "counters are incremented only from the pipeline-stage file that owns their group"
}

// incMethods are the mutating metric methods the ownership contract
// restricts.
var incMethods = map[string]bool{"Inc": true, "Add": true, "Observe": true}

const groupSuffix = "Counters"

// Check implements Analyzer.
func (c *CounterOwnership) Check(p *Package, rep *Reporter) {
	owners := c.ownership(p)
	if len(owners) == 0 {
		return
	}
	module := moduleOf(p.ImportPath)
	metricsPkg := module + "/internal/metrics"

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, recvType, method, ok := methodCall(p, call)
			if !ok || !incMethods[method] {
				return true
			}
			// The callee must be a metric primitive (Counter/Histogram).
			if pkg, _ := typeDeclPkg(recvType); pkg != metricsPkg {
				return true
			}
			// The metric must be reached as a field of a group struct:
			// <groupExpr>.<counterField>.Inc().
			sel, ok := recv.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			groupPkg, groupType := typeDeclPkg(p.Info.TypeOf(sel.X))
			if groupPkg != p.ImportPath || !strings.HasSuffix(groupType, groupSuffix) || len(groupType) == len(groupSuffix) {
				return true
			}
			group := strings.TrimSuffix(groupType, groupSuffix)
			allowed, known := owners[group]
			if !known {
				return true
			}
			f := p.FileOf(call.Pos())
			if !allowed[f] {
				rep.Reportf(c.Name(), call.Pos(),
					"counter %s.%s incremented in %s, but group %q is owned by %s (see %s's ownership groups)",
					groupType, selName(sel), f, group, ownerList(allowed), "metrics.go")
			}
			return true
		})
	}
}

// ownership builds group → allowed-files from the package's
// `<group>Counters` type declarations.
func (c *CounterOwnership) ownership(p *Package) map[string]map[string]bool {
	owners := map[string]map[string]bool{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				name := ts.Name.Name
				if !strings.HasSuffix(name, groupSuffix) || len(name) == len(groupSuffix) {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					continue
				}
				group := strings.TrimSuffix(name, groupSuffix)
				allowed := map[string]bool{"stage_" + group + ".go": true}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
					if files := ownerDirective(doc); files != nil {
						allowed = map[string]bool{}
						for _, f := range files {
							allowed[f] = true
						}
					}
				}
				// The registration/snapshot site is always a legal writer
				// home (construction, statsCore, derived metrics).
				allowed["metrics.go"] = true
				owners[group] = allowed
			}
		}
	}
	return owners
}

// ownerDirective extracts the file list of a `//lint:owner a.go b.go`
// doc-comment directive, or nil.
func ownerDirective(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	for _, line := range doc.List {
		if rest, ok := strings.CutPrefix(line.Text, "//lint:owner "); ok {
			return strings.Fields(rest)
		}
	}
	return nil
}

// ownerList renders the allowed-file set for messages, deterministically.
func ownerList(allowed map[string]bool) string {
	names := make([]string, 0, len(allowed))
	for f := range allowed {
		names = append(names, f)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// selName returns the selected field name of a selector expression.
func selName(sel *ast.SelectorExpr) string { return sel.Sel.Name }
