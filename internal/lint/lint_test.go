package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdip/internal/lint"
)

// loadTree loads every package under root with a fresh loader and fails
// the test on load or type-check errors: the corpus and the repo itself
// must both be compilable.
func loadTree(t *testing.T, root string) *lint.Program {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", root, err)
	}
	pkgs, err := loader.LoadTree(loader.Root)
	if err != nil {
		t.Fatalf("LoadTree(%s): %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("LoadTree(%s): no packages", root)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.ImportPath, e)
		}
	}
	return lint.NewProgram(loader, pkgs)
}

// wantMarkers scans the corpus sources for `want:<analyzer>` markers and
// returns file:line → expected analyzer names. Markers live in comments on
// the line the diagnostic must anchor to.
func wantMarkers(t *testing.T, root string) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			rest := line
			for {
				idx := strings.Index(rest, "want:")
				if idx < 0 {
					break
				}
				rest = rest[idx+len("want:"):]
				end := 0
				for end < len(rest) && rest[end] >= 'a' && rest[end] <= 'z' {
					end++
				}
				if end > 0 {
					key := rel + ":" + itoa(i+1)
					want[key] = append(want[key], rest[:end])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning corpus: %v", err)
	}
	return want
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCorpus runs every analyzer over the testdata corpus and matches the
// diagnostics against the `want:` markers: each marker must be hit by at
// least one diagnostic of its analyzer, and no diagnostic may fire on an
// unmarked line.
func TestCorpus(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	prog := loadTree(t, root)
	want := wantMarkers(t, root)
	if len(want) == 0 {
		t.Fatal("corpus has no want: markers")
	}

	matched := map[string]map[string]bool{} // key → analyzers seen
	for _, d := range lint.Run(prog, lint.All()) {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside corpus: %s", d)
			continue
		}
		key := rel + ":" + itoa(d.Pos.Line)
		ok := false
		for _, name := range want[key] {
			if name == d.Analyzer {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if matched[key] == nil {
			matched[key] = map[string]bool{}
		}
		matched[key][d.Analyzer] = true
	}
	for key, names := range want {
		for _, name := range names {
			if !matched[key][name] {
				t.Errorf("missing diagnostic: want [%s] at %s", name, key)
			}
		}
	}
}

// TestRepoClean is the dogfooding gate: simlint over the real repository
// must report zero diagnostics. Any new violation of the determinism,
// ownership, port, or geometry contracts fails this test.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	prog := loadTree(t, root)
	for _, d := range lint.Run(prog, lint.All()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestAnalyzerMetadata pins the analyzer set and its documentation: the
// names are part of the //lint:ignore interface.
func TestAnalyzerMetadata(t *testing.T) {
	wantNames := []string{
		"determinism", "counterownership", "portdiscipline", "cfgbounds", "tenantnamespace",
		"checkpointcoverage", "allocfree", "determinismtaint",
	}
	all := lint.All()
	if len(all) != len(wantNames) {
		t.Fatalf("got %d analyzers, want %d", len(all), len(wantNames))
	}
	for i, a := range all {
		if a.Name() != wantNames[i] {
			t.Errorf("analyzer %d: got %q, want %q", i, a.Name(), wantNames[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", a.Name())
		}
	}
}
