// Package stale carries a suppression whose violation is gone: the
// staleignore sweep must flag the directive itself.
package stale

// Tick is clean; the directive below suppresses nothing.
func Tick(n int) int {
	//lint:ignore determinism stale blessing kept for the lint corpus (want:staleignore)
	return n + 1
}
