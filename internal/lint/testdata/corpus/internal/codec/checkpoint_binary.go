// Package codec is the corpus stand-in for the binary checkpoint codec:
// a byte-oriented encoder whose output is content-addressed, so every
// serialized byte must be stable across runs. The file is named
// checkpoint_*.go, putting it under the strict serialization rule — a
// range over a map may only collect keys for sorting; writing into the
// encoder in iteration order must flag even where the general rule would
// accept it.
package codec

import (
	"encoding/binary"
	"sort"
)

// enc is a minimal columnar section encoder.
type enc struct {
	buf []byte
}

func (e *enc) u64(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// EncodeSorted is the sanctioned shape: collect the keys, sort them, then
// emit the columns by indexing the map in sorted order. Must pass.
func EncodeSorted(e *enc, set map[uint64]uint64) {
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.u64(k)
		e.u64(set[k])
	}
}

// EncodeUnsorted writes entries straight into the encoder in map
// iteration order: the serialized bytes would differ run to run, and the
// content address with them.
func EncodeUnsorted(e *enc, set map[uint64]uint64) {
	e.u64(uint64(len(set)))
	for k, v := range set {
		e.u64(k) // want:determinism
		e.u64(v) // want:determinism
	}
}

// EncodeCollectedUnsorted collects the keys like the sanctioned idiom but
// never sorts them before the emit loop — same nondeterministic bytes,
// one step removed.
func EncodeCollectedUnsorted(e *enc, set map[uint64]uint64) {
	var keys []uint64
	for k := range set {
		keys = append(keys, k) // want:determinism
	}
	for _, k := range keys {
		e.u64(k)
		e.u64(set[k])
	}
}
