// Package pdip is a miniature of the real prefetcher: just the Config
// geometry fields cfgbounds checks.
package pdip

// Config parameterises the PDIP table.
type Config struct {
	Sets            int
	Ways            int
	TargetsPerEntry int
	MaskBits        int
	TagBits         int
	InsertProb      float64
}

// PDIP is the prefetcher.
type PDIP struct{ cfg Config }

// New builds a prefetcher.
func New(cfg Config) *PDIP { return &PDIP{cfg: cfg} }
