// Package good uses only the order-independent and sanctioned idioms:
// must pass.
package good

import "sort"

// Keys is the collect-then-sort idiom.
func Keys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Sum is commutative integer accumulation.
func Sum(m map[int]uint64) uint64 {
	var s uint64
	for _, v := range m {
		s += v
	}
	return s
}

// Copy writes only through keys: order-independent.
func Copy(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Spawn documents why its goroutine is outside the simulated clock; the
// suppression must silence the diagnostic.
func Spawn(done chan struct{}) {
	//lint:ignore determinism corpus exercise of the suppression path: no simulator state is shared
	go func() { close(done) }()
}
