// Package bad violates every determinism contract: must flag.
package bad

import (
	"fmt"
	"math/rand" // want:determinism
	"time"
)

// Stamp reads the host clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want:determinism
}

// Roll draws from the global RNG (the import above is the violation).
func Roll() int {
	return rand.Intn(6)
}

// Race spawns a goroutine inside simulation code.
func Race(done chan struct{}) {
	go func() { close(done) }() // want:determinism
}

// PrintAll writes output in map-iteration order.
func PrintAll(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v) // want:determinism
	}
}

// Keys builds a slice in map-iteration order and never sorts it.
func Keys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want:determinism
	}
	return keys
}

// Last is last-writer-wins over map order.
func Last(m map[int]int) int {
	var last int
	for _, v := range m {
		last = v // want:determinism
	}
	return last
}

// SumF accumulates floats, which is not associative across orders.
func SumF(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want:determinism
	}
	return s
}

// agg shows a field write inside map iteration.
type agg struct{ last int }

// Fill mutates shared state in map-iteration order.
func (a *agg) Fill(m map[int]int) {
	for _, v := range m {
		a.last = v // want:determinism
	}
}

// malformed carries an ignore directive without a reason, which is itself
// reported rather than honoured.
func malformed(m map[int]int) int {
	a := agg{}
	_ = a /* want:lint */ //lint:ignore determinism
	a.Fill(m)
	return a.last
}
