package bad

import "time"

// sleeper mimics a pipeline stage implementing the fast-forward Sleeper
// interface. NextEventAt bounds are replayed bit-exactly, so an
// implementation that consults the host clock silently breaks the
// fast-forward contract: this corpus entry pins that the determinism
// analyzer catches wall-clock reads inside NextEventAt specifically.
type sleeper struct {
	deadline int64
}

// NextEventAt must derive its bound from simulated state only.
func (s *sleeper) NextEventAt(now int64) int64 {
	if time.Now().UnixNano() > s.deadline { // want:determinism
		return now + 1
	}
	return s.deadline
}

// AccountStall shows the companion interface is covered too: bulk stall
// bookkeeping may not time itself against the host.
func (s *sleeper) AccountStall(now, n int64) {
	s.deadline = now + n + time.Since(time.Unix(0, 0)).Nanoseconds() // want:determinism
}
