// Package taintuse is simulation code that calls transitively
// nondeterministic helpers from the non-internal clockutil package.
package taintuse

import "corpus/clockutil"

// T absorbs results so calls are not dead code.
var T int64

// Tick crosses into a helper that is two hops away from time.Now.
func Tick(start int64) {
	T = clockutil.Elapsed(start) // want:determinismtaint
}

// Names crosses into a helper that leaks map-iteration order.
func Names(m map[string]int) []string {
	return clockutil.Keys(m) // want:determinismtaint
}

// Bless calls the audited helper: the blessed source does not taint.
func Bless() {
	T = clockutil.Bench()
}
