package core

import "corpus/internal/metrics"

// counters groups the stage-owned counters, as the real core does.
type counters struct {
	retire retireCounters
	pipe   pipeCounters
}

// retireCounters is owned by the retire stage (default ownership:
// stage_retire.go).
type retireCounters struct {
	instructions *metrics.Counter
	occ          *metrics.Histogram
}

// pipeCounters is owned by the cycle loop, not a stage file.
//
//lint:owner core.go
type pipeCounters struct {
	cycles *metrics.Counter
}

func newCounters() counters {
	c := counters{
		retire: retireCounters{instructions: &metrics.Counter{}, occ: &metrics.Histogram{}},
		pipe:   pipeCounters{cycles: &metrics.Counter{}},
	}
	c.retire.instructions.Add(0)
	return c
}
