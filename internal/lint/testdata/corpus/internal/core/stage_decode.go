package core

// decodeStep pokes another stage's counters: must flag.
func (c *counters) decodeStep() {
	c.retire.instructions.Inc() // want:counterownership
	c.pipe.cycles.Inc()         // want:counterownership
}
