package core

// step increments the pipe group from core.go, the file the //lint:owner
// directive names: must pass.
func (c *counters) step() {
	c.pipe.cycles.Inc()
}

// Run drives the miniature core.
func Run(cycles int) uint64 {
	c := newCounters()
	for i := 0; i < cycles; i++ {
		c.step()
		c.retireStep(1)
	}
	c.decodeStep()
	return c.pipe.cycles.Load()
}
