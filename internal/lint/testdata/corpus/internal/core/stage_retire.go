package core

// retireStep increments the retire group from its owning file: must pass.
func (c *counters) retireStep(lines uint64) {
	c.retire.instructions.Inc()
	c.retire.occ.Observe(lines)
	// Reads are unrestricted everywhere.
	_ = c.pipe.cycles.Load()
}
