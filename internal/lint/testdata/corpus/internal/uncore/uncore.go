// Package uncore is the corpus stand-in for the real shared-level
// package: it is the one place allowed to mint uncore.* metric names
// (tenantN.* stays reserved even here).
package uncore

import (
	"fmt"

	"corpus/internal/metrics"
)

// Register mints the shared-level namespaces — all legal here.
func Register(reg *metrics.Registry, id int) {
	reg.Counter("uncore.l2.hits")
	reg.Counter(fmt.Sprintf("uncore.tenant%d.requests", id))
	reg.CounterFunc("uncore.l3.fills", func() uint64 { return 0 })
	reg.Counter("tenant1.cycles") // want:tenantnamespace
}
