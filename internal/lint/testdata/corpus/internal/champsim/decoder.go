// Package champsim mirrors the trace decoder's shapes against the
// determinism contracts: chunked decode state is fine, but host clocks,
// background readahead goroutines, and map-ordered record emission must
// all flag — a trace replay has to be bit-identical between runs.
package champsim

import (
	"sort"
	"time"
)

// Record is a decoded trace record stand-in.
type Record struct {
	PC     uint64
	Target uint64
}

// Stamp timestamps a recorded trace with the host clock.
func Stamp() int64 {
	return time.Now().Unix() // want:determinism
}

// Readahead decodes the next chunk on a background goroutine.
func Readahead(done chan struct{}) {
	go func() { close(done) }() // want:determinism
}

// EmitPending flushes resolved branch targets in map-iteration order: the
// encoded record stream would differ between runs.
func EmitPending(pending map[uint64]uint64) []Record {
	var out []Record
	for pc, tgt := range pending {
		out = append(out, Record{PC: pc, Target: tgt}) // want:determinism
	}
	return out
}

// EmitSorted is the sanctioned shape: collect PCs, sort, then emit.
func EmitSorted(pending map[uint64]uint64) []Record {
	pcs := make([]uint64, 0, len(pending))
	for pc := range pending {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	out := make([]Record, 0, len(pcs))
	for _, pc := range pcs {
		out = append(out, Record{PC: pc, Target: pending[pc]})
	}
	return out
}

// CountBranches is commutative integer accumulation: order-independent,
// must pass.
func CountBranches(pending map[uint64]uint64) uint64 {
	var n uint64
	for range pending {
		n++
	}
	return n
}
