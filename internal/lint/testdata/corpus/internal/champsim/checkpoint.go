// Checkpoint serialization for the decoder stand-in: by file name this
// gets the strict map rule — a range over a map may only collect keys
// that are sorted afterwards, because the captured decode cache feeds a
// content-addressed byte stream.
package champsim

import "sort"

// CaptureDecodeCache serializes slot→record in sorted-slot order: the
// sanctioned sorted-keys idiom, must pass.
func CaptureDecodeCache(cache map[int]Record) []Record {
	slots := make([]int, 0, len(cache))
	for s := range cache {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	out := make([]Record, 0, len(slots))
	for _, s := range slots {
		out = append(out, cache[s])
	}
	return out
}

// CaptureDecodeCacheDirect appends records in map-iteration order and
// never sorts: the serialized stream would follow map order.
func CaptureDecodeCacheDirect(cache map[int]Record) []Record {
	var out []Record
	for _, r := range cache {
		out = append(out, r) // want:determinism
	}
	return out
}

// CaptureCopy is a map→map copy — tolerated by the general rule, but
// banned in serialization files where a refactor could route the copy
// into the encoded stream unnoticed.
func CaptureCopy(cache map[int]Record) map[int]Record {
	out := make(map[int]Record, len(cache))
	for s, r := range cache {
		out[s] = r // want:determinism
	}
	return out
}
