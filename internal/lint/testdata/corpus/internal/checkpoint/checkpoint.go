// Package checkpoint is the corpus mirror tree: serializable snapshots of
// the corpus sim package's state.
package checkpoint

// SimState mirrors sim.Machine. Orphan is written by no capture code: the
// mirror-coverage check must flag it.
type SimState struct {
	Cyc    int64
	Hist   []int64
	Orphan int // want:checkpointcoverage
}
