// dir.go is the host side of the corpus checkpoint package: the store's
// decoded-state cache bookkeeping. Its structs live next to the mirror
// tree but are not wire format — no capture code ever writes their
// fields — so the mirror-coverage walk must skip everything declared
// outside the serialization files. No markers here: any diagnostic on
// this file is a regression.
package checkpoint

// Store is a decoded-state cache keyed by content address.
type Store struct {
	path  string
	cost  int64
	limit int64
	hits  uint64
}

// StoreStats is the store's counter snapshot — host-side observability,
// never serialized.
type StoreStats struct {
	Hits   uint64
	Misses uint64
}

// Admit charges cost against the cache budget and records a hit when the
// entry fits.
func (s *Store) Admit(cost int64) bool {
	if s.limit > 0 && s.cost+cost > s.limit {
		return false
	}
	s.cost += cost
	s.hits++
	return true
}

// Stats reports the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{Hits: s.hits}
}

// Path reports where the store keeps its files.
func (s *Store) Path() string { return s.path }
