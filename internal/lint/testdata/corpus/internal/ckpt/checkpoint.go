// Package ckpt exercises the stricter determinism rule for checkpoint
// serialization files: in a file named checkpoint*.go, a range over a map
// may do nothing but collect keys into a slice that is sorted afterwards.
// Shapes the general map rule accepts elsewhere (keyed writes, map→map
// copies) must still flag here.
package ckpt

import "sort"

// State is a serialized-state stand-in.
type State struct {
	Lines []uint64
}

// CaptureSorted is the sanctioned sorted-keys idiom: collect the keys,
// sort them, then index the map in sorted order. Must pass.
func CaptureSorted(set map[uint64]uint64) []uint64 {
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]uint64, 0, len(keys))
	for _, k := range keys {
		out = append(out, set[k])
	}
	return out
}

// CaptureUnsorted collects keys but never sorts them: the serialized
// order would follow map iteration.
func CaptureUnsorted(set map[uint64]uint64) []uint64 {
	var keys []uint64
	for k := range set {
		keys = append(keys, k) // want:determinism
	}
	return keys
}

// CaptureCopy is a map→map copy — order-independent under the general
// rule, but forbidden in serialization files where the strict rule leaves
// no room for a refactor to leak iteration order into the byte stream.
func CaptureCopy(set map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(set))
	for k, v := range set {
		out[k] = v // want:determinism
	}
	return out
}

// CaptureDirect serializes values straight into the state in map order.
func CaptureDirect(st *State, set map[uint64]uint64) {
	for line := range set {
		st.Lines = append(st.Lines, line) // want:determinism
	}
}
