// Package hot exercises the allocfree analyzer: a //lint:hotpath root, a
// two-hop reachable allocation, a cold function whose allocation is
// ignored, and a blessed amortized refill.
package hot

// sink keeps allocations observable to escape analysis.
var sink *int

// Step is the per-cycle hot path root.
//
//lint:hotpath
func Step(n int) {
	grow(n)
}

// grow allocates on every call: the seeded violation, two hops from the
// root.
//
//go:noinline
func grow(n int) {
	p := new(int) // want:allocfree
	*p = n
	sink = p
}

// Cold allocates too, but is not reachable from any hot-path root, so the
// analyzer stays quiet.
//
//go:noinline
func Cold(n int) *int {
	p := new(int)
	*p = n
	return p
}

// Refill is a hot-path root with a documented amortized allocation.
//
//lint:hotpath
//go:noinline
func Refill() {
	//lint:ignore allocfree corpus pool refill, amortized across the free list
	sink = new(int)
}
