// Package cache is a miniature of the real cache level: the Config
// geometry fields cfgbounds checks and the internal methods portdiscipline
// guards.
package cache

// Config sizes one cache level.
type Config struct {
	Name          string
	SizeBytes     int
	Ways          int
	HitLatency    int
	MSHRs         int
	ProtectedWays int
}

// Cache is one set-associative level.
type Cache struct{ cfg Config }

// New builds a cache level.
func New(cfg Config) *Cache { return &Cache{cfg: cfg} }

// Access performs a demand access.
func (c *Cache) Access(at int64) bool { return at >= 0 }

// Fill installs a line.
func (c *Cache) Fill(at int64) {}

// Contains probes for a line.
func (c *Cache) Contains(line uint64) bool { return line != 0 }

// MSHRFree counts free MSHRs at a cycle.
func (c *Cache) MSHRFree(at int64) int { return c.cfg.MSHRs }

// EarliestMSHRFree reports when an MSHR frees up.
func (c *Cache) EarliestMSHRFree(at int64) int64 { return at }

// Promote sets a line's priority bit.
func (c *Cache) Promote(line uint64) {}
