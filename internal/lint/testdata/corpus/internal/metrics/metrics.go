// Package metrics is a miniature of the real registry: just enough
// method surface for the corpus packages to exercise the analyzers.
package metrics

// Counter is a monotonically increasing metric.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v = 0 }

// Histogram records a distribution.
type Histogram struct{ n uint64 }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) { h.n += v }
