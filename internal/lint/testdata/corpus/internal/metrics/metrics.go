// Package metrics is a miniature of the real registry: just enough
// method surface for the corpus packages to exercise the analyzers.
package metrics

// Counter is a monotonically increasing metric.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Load reads the current value.
func (c *Counter) Load() uint64 { return c.v }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v = 0 }

// Histogram records a distribution.
type Histogram struct{ n uint64 }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) { h.n += v }

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set records the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Registry names and owns metrics.
type Registry struct{}

// Counter registers a counter under name.
func (r *Registry) Counter(name string) *Counter { _ = name; return &Counter{} }

// Gauge registers a gauge under name.
func (r *Registry) Gauge(name string) *Gauge { _ = name; return &Gauge{} }

// Histogram registers a histogram under name.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	_, _ = name, bounds
	return &Histogram{}
}

// CounterFunc binds a read-only counter under name.
func (r *Registry) CounterFunc(name string, fn func() uint64) { _, _ = name, fn }

// GaugeFunc binds a read-only gauge under name.
func (r *Registry) GaugeFunc(name string, fn func() float64) { _, _ = name, fn }
