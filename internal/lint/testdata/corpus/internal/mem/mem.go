// Package mem is the sanctioned access path to the cache: inside
// internal/mem the direct cache calls are the implementation of the port
// discipline, not a violation of it.
package mem

import "corpus/internal/cache"

// Port is the request/response channel into the hierarchy.
type Port struct{ l1 *cache.Cache }

// NewPort wraps a cache level.
func NewPort(l1 *cache.Cache) *Port { return &Port{l1: l1} }

// Send forwards one request, reserving an MSHR first.
func (p *Port) Send(at int64) bool {
	if p.l1.MSHRFree(at) == 0 {
		return false
	}
	if !p.l1.Access(at) {
		p.l1.Fill(at)
	}
	return true
}

// FetchInst is the named instruction-fetch wrapper.
func (p *Port) FetchInst(at int64) bool { return p.Send(at) }
