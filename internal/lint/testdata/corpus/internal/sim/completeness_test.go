package sim

import "reflect"

// checkpointManifest is the corpus ledger. It omits Machine.temp, lists
// the long-gone Machine.gone, and keeps an entry for a type the walk can
// no longer reach.
var checkpointManifest = map[string]map[string]string{
	"sim.Machine": {
		"cfg":  "config",
		"cyc":  "state",
		"hist": "state",
		"lost": "state",
		"g":    "state",
		"gone": "state", // want:checkpointcoverage
	},
	"sim.Entry": {
		"V": "state",
	},
	"sim.Unused": {}, // want:checkpointcoverage
}

// checkpointRoots mirrors the real repo's shape.
func checkpointRoots() []reflect.Type {
	return []reflect.Type{
		reflect.TypeOf(Machine{}),
	}
}

var _ = checkpointManifest
