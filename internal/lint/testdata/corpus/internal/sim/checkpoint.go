package sim

import "corpus/internal/checkpoint"

// Capture snapshots m into the mirror tree. It deliberately omits
// Machine.lost (seeding the uncaptured-state-field diagnostic) and writes
// nothing into SimState.Orphan (seeding the mirror-coverage diagnostic).
func (m *Machine) Capture() checkpoint.SimState {
	st := checkpoint.SimState{Cyc: m.cyc}
	for _, e := range m.hist {
		st.Hist = append(st.Hist, e.V)
	}
	_ = m.g
	return st
}

// Restore rebuilds m from st.
func (m *Machine) Restore(st checkpoint.SimState) {
	m.cyc = st.Cyc
	m.hist = m.hist[:0]
	for _, v := range st.Hist {
		m.hist = append(m.hist, Entry{V: v})
	}
}
