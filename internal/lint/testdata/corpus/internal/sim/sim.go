// Package sim is the corpus simulator-state package for the
// checkpointcoverage analyzer: a root struct with covered, unmanifested,
// and uncaptured fields, plus a struct the walk reaches that has no
// manifest entry at all.
package sim

// Machine is the corpus checkpoint root.
type Machine struct {
	cfg  int
	cyc  int64
	temp int64 // want:checkpointcoverage
	hist []Entry
	lost int64 // want:checkpointcoverage
	g    Ghost
}

// Entry is reached through Machine.hist and fully covered.
type Entry struct {
	V int64
}

// Ghost is reached through Machine.g but has no manifest entry.
type Ghost struct { // want:checkpointcoverage
	N int
}
