// Package tenantns exercises the tenantnamespace analyzer from a
// core-private package: registering into uncore.* or the reserved
// tenantN.* namespace must be flagged, ordinary namespaces must not.
package tenantns

import (
	"fmt"

	"corpus/internal/metrics"
)

// Register wires this package's counters into reg.
func Register(reg *metrics.Registry, id int) {
	reg.Counter("core.retired")                                                  // fine: own namespace
	reg.Counter("uncore.l2.sneaky")                                              // want:tenantnamespace
	reg.Gauge("uncore.occupancy")                                                // want:tenantnamespace
	reg.Histogram("uncore.latency", 1, 2, 4)                                     // want:tenantnamespace
	reg.CounterFunc("uncore.l3.fills", func() uint64 { return 0 })               // want:tenantnamespace
	reg.Counter(fmt.Sprintf("uncore.tenant%d.requests", id))                     // want:tenantnamespace
	reg.Counter("tenant0.ipc")                                                   // want:tenantnamespace
	reg.GaugeFunc(fmt.Sprintf("tenant%d.mpki", id), func() float64 { return 0 }) // want:tenantnamespace
	reg.Counter("tenancy.total")                                                 // fine: "tenant" not followed by an index
	reg.Counter(prefix + ".hits")                                                // fine: non-constant-prefix names are out of scope
}

var prefix = pick()

func pick() string { return "cache" }
