// Package good is the sanctioned shape of the same fabric code: the
// merged document is written via collect-then-sort, and every wall-clock
// or goroutine site carries a suppression locating it above the simulated
// clock. Must pass.
package good

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// cell stands in for a merged grid cell.
type cell struct{ IPC float64 }

// WriteMerged sorts cell keys before emitting, so the document bytes
// depend only on the cells, never on map order.
func WriteMerged(w io.Writer, cells map[string]cell) {
	keys := make([]string, 0, len(cells))
	for key := range cells {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(w, "%s %.3f\n", key, cells[key].IPC)
	}
}

// LeaseDeadline declares its clock read as scheduling-fabric state.
func LeaseDeadline(timeout time.Duration) time.Time {
	//lint:ignore determinism the fabric sits above the simulated clock: leases schedule host-side work and never touch simulation results
	return time.Now().Add(timeout)
}

// Dispatch declares its goroutine the same way.
func Dispatch(jobs chan int) {
	//lint:ignore determinism host-side job dispatch; the simulation inside each job is single-threaded and deterministic
	go func() { jobs <- 1 }()
}

// FirstWorker picks deterministically: collect, sort, take the minimum.
func FirstWorker(tokens map[string]int) string {
	names := make([]string, 0, len(tokens))
	for name := range tokens {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[0]
}
