// Package bad commits the fabric's two forbidden sins: emitting a merged
// grid document in map-iteration order, and reading the wall clock for
// scheduling without declaring that it sits above the simulated clock.
// Both must flag.
package bad

import (
	"fmt"
	"io"
	"time"
)

// cell stands in for a merged grid cell.
type cell struct{ IPC float64 }

// WriteMerged streams cells in map-iteration order — the byte-identity
// contract of the merged document dies here.
func WriteMerged(w io.Writer, cells map[string]cell) {
	for key, c := range cells {
		fmt.Fprintf(w, "%s %.3f\n", key, c.IPC) // want:determinism
	}
}

// LeaseDeadline reads the host clock with no suppression explaining that
// leases are scheduling-fabric state, not simulation state.
func LeaseDeadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) // want:determinism
}

// Dispatch hands out jobs on a raw goroutine, equally undeclared.
func Dispatch(jobs chan int) {
	go func() { jobs <- 1 }() // want:determinism
}

// FirstWorker picks a scheduling victim by map order: last writer wins,
// so two coordinators replaying the same event history disagree.
func FirstWorker(tokens map[string]int) string {
	var pick string
	for name := range tokens {
		pick = name // want:determinism
	}
	return pick
}
