package cfguse

import (
	"corpus/internal/cache"
	"corpus/internal/pdip"
)

// GoodConfigs mirror the paper geometry and satisfy every bound:
// must pass.
func GoodConfigs() (cache.Config, pdip.Config) {
	cc := cache.Config{
		Name:          "L1I",
		SizeBytes:     32 * 1024,
		Ways:          8,
		HitLatency:    2,
		MSHRs:         16,
		ProtectedWays: 6,
	}
	pc := pdip.Config{
		Sets:            512,
		Ways:            8,
		TargetsPerEntry: 2,
		MaskBits:        4,
		TagBits:         10,
		InsertProb:      0.25,
	}
	return cc, pc
}
