package cfguse

import (
	"corpus/internal/cache"
	"corpus/internal/pdip"
)

// BadCache has a non-power-of-two set count and over-protects ways:
// must flag.
func BadCache() cache.Config {
	return cache.Config{ // want:cfgbounds
		Name:          "L1I",
		SizeBytes:     48 * 1024,
		Ways:          8,
		ProtectedWays: 12, // want:cfgbounds
	}
}

// BadPDIP overflows the mask width, the tag width, and the probability
// range: must flag.
func BadPDIP() pdip.Config {
	return pdip.Config{
		Sets:       -1,  // want:cfgbounds
		MaskBits:   12,  // want:cfgbounds
		TagBits:    40,  // want:cfgbounds
		InsertProb: 1.5, // want:cfgbounds
	}
}
