package fetch

import "corpus/internal/mem"

// GoodFetch routes all traffic through the port wrappers: must pass.
func GoodFetch(p *mem.Port, at int64) bool {
	if !p.FetchInst(at) {
		return p.Send(at + 1)
	}
	return true
}
