package fetch

import "corpus/internal/cache"

// BadFetch bypasses the port layer with direct cache calls: must flag.
func BadFetch(c *cache.Cache, at int64) bool {
	if c.MSHRFree(at) == 0 { // want:portdiscipline
		return false
	}
	if c.Contains(uint64(at)) { // want:portdiscipline
		c.Promote(uint64(at)) // want:portdiscipline
	}
	return c.Access(at) // want:portdiscipline
}
