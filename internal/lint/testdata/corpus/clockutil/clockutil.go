// Package clockutil is a non-internal helper package for the
// determinismtaint corpus: its functions are legal here, but internal
// packages that call them (transitively) must be flagged.
package clockutil

import "time"

// Stamp reads the host clock: a taint source.
func Stamp() int64 { return time.Now().UnixNano() }

// Elapsed has a clean body but calls Stamp: the two-hop middle of the
// taint chain.
func Elapsed(start int64) int64 { return Stamp() - start }

// Keys returns map keys in iteration order without sorting: a map-order
// taint source.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Bench reads the host clock too, but the source is blessed: the
// suppression stops the taint (and, being used, is not stale).
func Bench() int64 {
	//lint:ignore determinismtaint benchmark harness helper, audited as non-simulation
	return time.Now().UnixNano()
}
