package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism enforces the contracts behind bit-identical deterministic
// replay in simulation packages (module/internal/...):
//
//   - no wall-clock time (time.Now and friends) — simulated time is the
//     only clock;
//   - no math/rand — every stochastic decision draws from the explicitly
//     seeded internal/rng streams;
//   - no go statements — the simulation is single-threaded per core, and
//     goroutine interleaving would break replay;
//   - no map-iteration-order dependence: a `range` over a map may not
//     mutate simulator state, call a mutating metrics method, write
//     output, or build a slice it never sorts. Order-independent bodies
//     (map→map copies, integer accumulation, keyed writes) pass, and the
//     collect-keys-then-sort idiom passes when a sort call follows in the
//     same function.
//
// Checkpoint serialization files (checkpoint*.go) get a stricter form of
// the map rule: there, a range over a map may do nothing but collect keys
// into a slice that is sorted afterwards. Serialization turns simulator
// state into bytes that must be identical across runs (the on-disk warm
// states are content-addressed), so body shapes the general rule
// tolerates — keyed writes, commutative accumulation — are still banned:
// a later refactor could route them into the encoded stream unnoticed.
type Determinism struct{}

// Name implements Analyzer.
func (*Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (*Determinism) Doc() string {
	return "forbid wall-clock, global RNG, goroutines, and map-iteration-order dependence in simulation packages"
}

// wallClockFuncs are the package time functions that read the host clock
// or schedule against it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// mutatingMetricMethods are the internal/metrics methods that change
// metric state; calling one inside map iteration makes the metric's
// update order (and any sampling interleaved with it) nondeterministic.
var mutatingMetricMethods = map[string]bool{
	"Inc": true, "Add": true, "Observe": true, "Set": true, "Reset": true,
}

// Check implements Analyzer.
func (d *Determinism) Check(p *Package, rep *Reporter) {
	module := moduleOf(p.ImportPath)
	if !isInternalPath(module, p.ImportPath) {
		return
	}
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			switch importPath(imp) {
			case "math/rand", "math/rand/v2":
				rep.Reportf(d.Name(), imp.Pos(),
					"import of %s in simulation code: use the seeded streams of %s/internal/rng", importPath(imp), module)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				rep.Reportf(d.Name(), node.Pos(),
					"go statement in simulation code: goroutine interleaving breaks deterministic replay")
			case *ast.SelectorExpr:
				if pkg, name, ok := pkgSel(p, node); ok && pkg == "time" && wallClockFuncs[name] {
					rep.Reportf(d.Name(), node.Pos(),
						"time.%s reads the host clock: simulation code must use simulated cycles only", name)
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(node.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						d.checkMapRange(p, rep, file, node, module)
					}
				}
			}
			return true
		})
	}
}

// isCheckpointFile reports whether filename is a checkpoint serialization
// source file: checkpoint.go, checkpoint_*.go, or *_checkpoint.go, tests
// excluded. The shapes are deliberate — socket_checkpoint.go is capture
// code, while a file that merely starts with the word (say,
// checkpointcoverage.go in the lint package) is not.
func isCheckpointFile(filename string) bool {
	base := filepath.Base(filename)
	if !strings.HasSuffix(base, ".go") || strings.HasSuffix(base, "_test.go") {
		return false
	}
	return base == "checkpoint.go" ||
		strings.HasPrefix(base, "checkpoint_") ||
		strings.HasSuffix(base, "_checkpoint.go")
}

// checkMapRange classifies the body of a range-over-map statement.
func (d *Determinism) checkMapRange(p *Package, rep *Reporter, file *ast.File, rs *ast.RangeStmt, module string) {
	if isCheckpointFile(p.Fset.Position(rs.Pos()).Filename) {
		d.checkCheckpointMapRange(p, rep, file, rs)
		return
	}
	metricsPkg := module + "/internal/metrics"
	statePkgs := map[string]bool{
		module + "/internal/mem":   true,
		module + "/internal/cache": true,
	}
	// appendTargets collects outer-scope slice variables grown inside the
	// loop; they inherit map iteration order and must be sorted afterwards.
	appendTargets := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			d.checkCall(p, rep, node, metricsPkg, statePkgs)
		case *ast.AssignStmt:
			d.checkAssign(p, rep, rs, node, appendTargets)
		case *ast.IncDecStmt:
			if id, ok := node.X.(*ast.Ident); ok {
				if obj := objOf(p, id); obj != nil && !declaredWithin(obj, rs) && isFloat(obj.Type()) {
					rep.Reportf(d.Name(), node.Pos(),
						"floating-point update of %s in map-iteration order is not associative across orders", id.Name)
				}
			}
		}
		return true
	})

	// The collect-then-sort idiom: every appended slice must reach a
	// sort.* / slices.Sort* call after the loop, in the same function.
	if len(appendTargets) == 0 {
		return
	}
	body := enclosingFunc(file, rs.Pos())
	for obj, pos := range appendTargets {
		if body == nil || !sortedAfter(p, body, rs.End(), obj) {
			rep.Reportf(d.Name(), pos,
				"slice %s is built in map-iteration order and never sorted afterwards: collect keys then sort (the sorted-keys idiom), or iterate a sorted key slice", obj.Name())
		}
	}
}

// checkCheckpointMapRange applies the stricter serialization rule: inside
// a checkpoint*.go file, every statement of a range-over-map body must
// append the iteration key to an outer slice, and every such slice must
// reach a sort call before the function ends. Anything else — keyed
// writes, accumulation, calls — is flagged even though the general rule
// would accept it, because serialization output must be byte-stable.
func (d *Determinism) checkCheckpointMapRange(p *Package, rep *Reporter, file *ast.File, rs *ast.RangeStmt) {
	appendTargets := map[types.Object]token.Pos{}
	for _, stmt := range rs.Body.List {
		if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := objOf(p, id); obj != nil && !declaredWithin(obj, rs) && isAppendTo(p, as, 0, obj) {
					appendTargets[obj] = as.Pos()
					continue
				}
			}
		}
		rep.Reportf(d.Name(), stmt.Pos(),
			"map iteration in checkpoint serialization code may only collect keys: collect into a slice, sort it, then index the map (sorted-keys idiom)")
	}
	body := enclosingFunc(file, rs.Pos())
	for obj, pos := range appendTargets {
		if body == nil || !sortedAfter(p, body, rs.End(), obj) {
			rep.Reportf(d.Name(), pos,
				"slice %s collects checkpoint map keys but is never sorted: the serialized byte stream would follow map iteration order", obj.Name())
		}
	}
}

// checkCall flags calls inside a map-range body that make iteration order
// observable: mutating metrics methods, simulator-state methods (mem,
// cache), and output writes.
func (d *Determinism) checkCall(p *Package, rep *Reporter, call *ast.CallExpr, metricsPkg string, statePkgs map[string]bool) {
	if _, recvType, method, ok := methodCall(p, call); ok {
		pkg, typeName := typeDeclPkg(recvType)
		switch {
		case pkg == metricsPkg && mutatingMetricMethods[method]:
			rep.Reportf(d.Name(), call.Pos(),
				"%s.%s called in map-iteration order: metric updates must happen in a deterministic order", typeName, method)
		case statePkgs[pkg]:
			rep.Reportf(d.Name(), call.Pos(),
				"%s.%s called in map-iteration order: memory-system state would mutate in nondeterministic order", typeName, method)
		case method == "Write" || method == "WriteString" || method == "WriteByte" || method == "WriteRune":
			rep.Reportf(d.Name(), call.Pos(),
				"write in map-iteration order produces nondeterministic output: iterate sorted keys instead")
		}
		return
	}
	if pkg, name, ok := pkgFuncCall(p, call); ok && pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			rep.Reportf(d.Name(), call.Pos(),
				"fmt.%s in map-iteration order produces nondeterministic output: iterate sorted keys instead", name)
		}
	}
}

// checkAssign classifies assignments inside a map-range body. Writes keyed
// by the iteration variable (map/slice index writes) and loop-local
// variables are order-independent; growth of an outer slice is recorded
// for the sorted-afterwards check; everything else that writes outer state
// is order-dependent and flagged.
func (d *Determinism) checkAssign(p *Package, rep *Reporter, rs *ast.RangeStmt, as *ast.AssignStmt, appendTargets map[types.Object]token.Pos) {
	for i, lhs := range as.Lhs {
		switch target := lhs.(type) {
		case *ast.IndexExpr:
			// m[k] = v or s[i] = v: keyed writes are order-independent.
		case *ast.Ident:
			if target.Name == "_" {
				continue
			}
			obj := objOf(p, target)
			if obj == nil || declaredWithin(obj, rs) {
				continue // loop-local
			}
			if as.Tok == token.DEFINE {
				continue
			}
			if isAppendTo(p, as, i, obj) {
				appendTargets[obj] = as.Pos()
				continue
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
				// Commutative integer accumulation is order-independent;
				// float accumulation is not associative.
				if isFloat(obj.Type()) {
					rep.Reportf(d.Name(), as.Pos(),
						"floating-point accumulation into %s in map-iteration order is not associative across orders", target.Name)
				}
			default:
				rep.Reportf(d.Name(), as.Pos(),
					"assignment to %s in map-iteration order is last-writer-wins and therefore nondeterministic", target.Name)
			}
		case *ast.SelectorExpr:
			rep.Reportf(d.Name(), as.Pos(),
				"field write %s in map-iteration order mutates shared state nondeterministically", exprString(target))
		case *ast.StarExpr:
			rep.Reportf(d.Name(), as.Pos(),
				"pointer write in map-iteration order mutates shared state nondeterministically")
		}
	}
}

// isAppendTo reports whether as assigns lhs index i from append(lhs, ...).
func isAppendTo(p *Package, as *ast.AssignStmt, i int, obj types.Object) bool {
	if len(as.Rhs) != len(as.Lhs) && len(as.Rhs) != 1 {
		return false
	}
	rhs := as.Rhs[0]
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && objOf(p, first) == obj
}

// sortedAfter reports whether a sort.*/slices.Sort* call mentioning obj
// appears after pos inside body.
func sortedAfter(p *Package, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		pkg, _, ok := pkgFuncCall(p, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && objOf(p, id) == obj {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// pkgSel resolves a selector to (package path, member name) when its base
// is a package qualifier.
func pkgSel(p *Package, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// importPath unquotes an import spec's path.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// moduleOf extracts the module prefix of an import path (the first
// segment), matching this repo's single-segment module name.
func moduleOf(importPath string) string {
	for i := 0; i < len(importPath); i++ {
		if importPath[i] == '/' {
			return importPath[:i]
		}
	}
	return importPath
}

// exprString renders a simple selector chain for messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	default:
		return "<expr>"
	}
}
