package lint

import (
	"go/ast"
)

// PortDiscipline enforces the memory-hierarchy access discipline: outside
// internal/mem and internal/cache, no code may call cache internals
// directly. All instruction and data traffic flows through mem.Port (Send)
// or the named Hierarchy wrappers (FetchInst, PrefetchInst, PrimeInst,
// AccessData), which is where latency accounting, MSHR reservation, and
// the priority plumbing live; a direct cache call would bypass all three.
type PortDiscipline struct{}

// Name implements Analyzer.
func (*PortDiscipline) Name() string { return "portdiscipline" }

// Doc implements Analyzer.
func (*PortDiscipline) Doc() string {
	return "memory traffic outside internal/mem and internal/cache must go through mem.Port or the Hierarchy wrappers"
}

// cacheInternalMethods are the cache.Cache methods that constitute direct
// cache traffic or state manipulation.
var cacheInternalMethods = map[string]bool{
	"Access": true, "Fill": true, "Contains": true,
	"MSHRFree": true, "EarliestMSHRFree": true, "Promote": true,
}

// Check implements Analyzer.
func (d *PortDiscipline) Check(p *Package, rep *Reporter) {
	module := moduleOf(p.ImportPath)
	cachePkg := module + "/internal/cache"
	memPkg := module + "/internal/mem"
	switch p.ImportPath {
	case cachePkg, memPkg:
		return // the hierarchy layers themselves own the cache internals
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, recvType, method, ok := methodCall(p, call)
			if !ok || !cacheInternalMethods[method] {
				return true
			}
			if pkg, name := typeDeclPkg(recvType); pkg == cachePkg && name == "Cache" {
				rep.Reportf(d.Name(), call.Pos(),
					"direct cache.Cache.%s call outside %s: route traffic through mem.Port.Send or the Hierarchy wrappers (FetchInst/PrefetchInst/AccessData)",
					method, "internal/mem")
			}
			return true
		})
	}
}
