package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// CheckpointCoverage is the static twin of TestCheckpointCompleteness
// (internal/core/completeness_test.go): it re-runs the manifest walk over
// go/types instead of reflect, so the ledger is enforced at lint time,
// and then goes further than the reflection test can:
//
//  1. Manifest completeness — every struct reachable from the checkpoint
//     roots must have a manifest entry, and every field of it a
//     disposition. Reported at the struct/field declaration.
//  2. Manifest staleness — entries and fields naming structs or fields
//     that no longer exist, and entries the walk never reaches.
//  3. Capture coverage — every field with disposition "state" must be
//     referenced (read for capture, written for restore, or whole-struct
//     copied/converted) by some checkpoint*.go file. Deleting the Capture
//     line for a field fails lint at the field that lost its capture.
//  4. Mirror coverage — every field of every struct in
//     <module>/internal/checkpoint must be *written* by some capture
//     code (keyed composite literal, assignment, or whole-struct
//     conversion); a mirror field nothing populates is a format hole
//     that would silently decode to zero. Reads don't count: a restore
//     that faithfully reads a field the capture stopped writing must
//     still fail lint.
//
// The per-package pass collects which "pkgpath.Type.Field" keys each
// package's checkpoint files touch (exported as a fact); the program pass
// parses the manifest out of completeness_test.go, mirrors the reflection
// walk, and cross-checks.
type CheckpointCoverage struct{}

// Name implements Analyzer.
func (*CheckpointCoverage) Name() string { return "checkpointcoverage" }

// Doc implements Analyzer.
func (*CheckpointCoverage) Doc() string {
	return "statically cross-check simulator state structs against the checkpoint manifest, capture/restore code, and the checkpoint mirror tree"
}

// ckptRefsFact records what one package's checkpoint*.go files reference.
type ckptRefsFact struct {
	// fields holds "pkgpath.Type.Field" keys referenced by selection or
	// keyed composite literal.
	fields map[string]bool
	// writes holds the subset of fields that are written: keyed composite
	// literal entries and selectors on the left of an assignment.
	writes map[string]bool
	// whole holds "pkgpath.Type" keys captured wholesale: by conversion,
	// positional composite literal, or appearing as a value flowing through
	// the capture code.
	whole map[string]bool
	// wholeWrites holds the subset of whole built wholesale — conversion
	// targets and full positional literals. A struct merely flowing through
	// a read does not populate its fields, so mirror coverage needs the
	// narrower set.
	wholeWrites map[string]bool
	// hasFiles reports whether the package has any checkpoint*.go file.
	hasFiles bool
}

// fullTypeKey renders a named type as "pkgpath.Name" (instantiation
// arguments stripped — Obj().Name() is the bare generic name).
func fullTypeKey(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// manifestTypeKey renders a named type the way completeness_test.go's
// typeKey does: last package-path segment + "." + bare name.
func manifestTypeKey(n *types.Named) string {
	pkg := ""
	if n.Obj().Pkg() != nil {
		pkg = n.Obj().Pkg().Path()
		if i := lastSlash(pkg); i >= 0 {
			pkg = pkg[i+1:]
		}
	}
	return pkg + "." + n.Obj().Name()
}

// Check implements Analyzer: it scans the package's checkpoint*.go files
// and exports the set of state fields and whole structs they touch.
func (a *CheckpointCoverage) Check(p *Package, rep *Reporter) {
	fact := &ckptRefsFact{
		fields:      map[string]bool{},
		writes:      map[string]bool{},
		whole:       map[string]bool{},
		wholeWrites: map[string]bool{},
	}
	module := moduleOf(p.ImportPath)
	for _, f := range p.Files {
		if !isCheckpointFile(p.Fset.Position(f.Pos()).Filename) {
			continue
		}
		fact.hasFiles = true
		a.collectRefs(p, f, module, fact)
	}
	if fact.hasFiles {
		rep.Facts().ExportPackageFact(a.Name(), p.ImportPath, fact)
	}
}

// collectRefs walks one checkpoint file recording field references,
// whole-struct captures, and conversions.
func (a *CheckpointCoverage) collectRefs(p *Package, f *ast.File, module string, fact *ckptRefsFact) {
	markWhole := func(t types.Type) {
		for _, n := range walkableNamed(t, module) {
			fact.whole[fullTypeKey(n)] = true
		}
	}
	markWholeWrite := func(t types.Type) {
		for _, n := range walkableNamed(t, module) {
			fact.wholeWrites[fullTypeKey(n)] = true
		}
	}
	// markWrites records every field selection inside an assignment target
	// (st.F = ..., st.A[i] = ..., st.N++) as a write.
	markWrites := func(lhs ast.Expr) {
		ast.Inspect(lhs, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel, ok := p.Info.Selections[se]; ok && sel.Kind() == types.FieldVal {
				if recv := namedOf(sel.Recv()); recv != nil {
					fact.writes[fullTypeKey(recv)+"."+sel.Obj().Name()] = true
				}
			}
			return true
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				markWrites(lhs)
			}
		case *ast.IncDecStmt:
			markWrites(node.X)
		case *ast.SelectorExpr:
			sel, ok := p.Info.Selections[node]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			recv := namedOf(sel.Recv())
			if recv == nil {
				return true
			}
			fact.fields[fullTypeKey(recv)+"."+sel.Obj().Name()] = true
			// The selected value itself flows through the capture code:
			// any module struct it leads to is captured wholesale.
			markWhole(sel.Obj().Type())
		case *ast.CompositeLit:
			t := p.Info.TypeOf(node)
			named := namedOf(t)
			if named == nil {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			key := fullTypeKey(named)
			keyed := false
			for _, elt := range node.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					keyed = true
					fact.fields[key+"."+id.Name] = true
					fact.writes[key+"."+id.Name] = true
				}
			}
			// A positional struct literal must mention every field.
			if !keyed && len(node.Elts) == st.NumFields() {
				fact.whole[key] = true
				fact.wholeWrites[key] = true
			}
		case *ast.CallExpr:
			// Conversions T(x): both the target and the operand struct are
			// captured field-for-field by the conversion semantics.
			tv, ok := p.Info.Types[node.Fun]
			if !ok || !tv.IsType() || len(node.Args) != 1 {
				return true
			}
			// The conversion populates the target's fields; the operand is
			// only read from.
			markWhole(tv.Type)
			markWholeWrite(tv.Type)
			if at := p.Info.TypeOf(node.Args[0]); at != nil {
				markWhole(at)
			}
		}
		return true
	})
}

// walkableNamed is the go/types mirror of completeness_test.go's
// walkable(): unwrap pointers and containers down to the module's named
// struct types a value of type t can lead to.
func walkableNamed(t types.Type, module string) []*types.Named {
	switch u := t.(type) {
	case *types.Pointer:
		return walkableNamed(u.Elem(), module)
	case *types.Slice:
		return walkableNamed(u.Elem(), module)
	case *types.Array:
		return walkableNamed(u.Elem(), module)
	case *types.Map:
		return append(walkableNamed(u.Key(), module), walkableNamed(u.Elem(), module)...)
	case *types.Named:
		if _, ok := u.Underlying().(*types.Struct); ok {
			if pkg := u.Obj().Pkg(); pkg != nil && strings.HasPrefix(pkg.Path(), module+"/") {
				return []*types.Named{u}
			}
			return nil
		}
		// Named non-struct (e.g. checkpoint.Bitmask []byte): walk like its
		// underlying shape, as reflect.Kind would.
		return walkableNamed(u.Underlying(), module)
	}
	return nil
}

// manifestField is one "field": "disposition" manifest line.
type manifestField struct {
	disp string
	pos  token.Pos
}

// manifestEntry is one struct's manifest block.
type manifestEntry struct {
	pos    token.Pos
	fields map[string]manifestField
}

// manifest is a parsed checkpointManifest plus the walk roots.
type manifest struct {
	entries map[string]manifestEntry
	// roots are the type expressions inside reflect.TypeOf(...) calls in
	// checkpointRoots, with the package that hosts the manifest file (whose
	// scope and imports resolve them).
	roots []rootExpr
	// imports maps qualifier -> import path, from the manifest file.
	imports map[string]string
	home    *Package
	// file is the path of the (first) manifest file, for messages.
	file string
}

type rootExpr struct {
	expr ast.Expr
	pos  token.Pos
}

// CheckProgram implements WholeProgram.
func (a *CheckpointCoverage) CheckProgram(prog *Program, rep *Reporter) {
	man := a.parseManifests(prog)
	if man == nil {
		return
	}

	// Union the per-package reference facts: unexported fields can only be
	// referenced from their declaring package, so locality is enforced by
	// the language, not by this analyzer.
	refFields := map[string]bool{}
	refWrites := map[string]bool{}
	refWhole := map[string]bool{}
	refWholeWrites := map[string]bool{}
	anyCkptFiles := false
	for _, entry := range prog.Facts.AllPackageFacts(a.Name()) {
		fact := entry.Fact.(*ckptRefsFact)
		anyCkptFiles = anyCkptFiles || fact.hasFiles
		for k := range fact.fields {
			refFields[k] = true
		}
		for k := range fact.writes {
			refWrites[k] = true
		}
		for k := range fact.whole {
			refWhole[k] = true
		}
		for k := range fact.wholeWrites {
			refWholeWrites[k] = true
		}
	}

	// Mirror the reflection walk.
	type stateField struct {
		named *types.Named
		key   string
		fld   *types.Var
	}
	var queue []*types.Named
	for _, root := range man.roots {
		named := a.resolveRoot(prog, man, root)
		if named == nil {
			rep.Reportf(a.Name(), root.pos, "cannot resolve checkpoint root %s to a loaded struct type", exprString(root.expr))
			continue
		}
		queue = append(queue, named)
	}
	visited := map[*types.Named]bool{}
	reached := map[string]bool{}
	reportedStruct := map[string]bool{}
	reportedField := map[string]bool{}
	var stateFields []stateField
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if visited[named] {
			continue
		}
		visited[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		key := manifestTypeKey(named)
		reached[key] = true
		entry, ok := man.entries[key]
		if !ok {
			if !reportedStruct[key] {
				reportedStruct[key] = true
				rep.Reportf(a.Name(), named.Obj().Pos(),
					"struct %s is reached by the checkpoint walk but has no entry in the checkpoint manifest (%s): decide a disposition for each field",
					key, relPath(prog.Root, man.file))
			}
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			mf, ok := entry.fields[fld.Name()]
			if !ok {
				fk := key + "." + fld.Name()
				if !reportedField[fk] {
					reportedField[fk] = true
					rep.Reportf(a.Name(), fld.Pos(),
						"field %s.%s (%s) is not in the checkpoint manifest — capture it in the checkpoint format or record why it can be skipped",
						key, fld.Name(), fld.Type().String())
				}
				continue
			}
			if mf.disp != "state" {
				continue
			}
			queue = append(queue, walkableNamed(fld.Type(), prog.Module)...)
			stateFields = append(stateFields, stateField{named: named, key: key, fld: fld})
		}
		// Stale manifest fields: listed but no longer on the struct.
		var names []string
		for name := range entry.fields {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !structHasField(st, name) {
				fk := key + "." + name + " (stale)"
				if !reportedField[fk] {
					reportedField[fk] = true
					rep.Reportf(a.Name(), entry.fields[name].pos,
						"manifest lists %s.%s but the struct has no such field (stale entry)", key, name)
				}
			}
		}
	}

	// Manifest entries the walk never reached.
	var keys []string
	for key := range man.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !reached[key] {
			rep.Reportf(a.Name(), man.entries[key].pos,
				"manifest entry %s was never reached by the checkpoint walk (stale type, or a root is missing)", key)
		}
	}

	// Capture coverage: every state field must be touched by checkpoint
	// code somewhere. Only meaningful once the repo has capture code at all
	// (a manifest without any checkpoint*.go file is checked for shape only).
	if anyCkptFiles {
		seen := map[string]bool{}
		for _, sf := range stateFields {
			full := fullTypeKey(sf.named)
			fk := full + "." + sf.fld.Name()
			if seen[fk] {
				continue
			}
			seen[fk] = true
			if refFields[fk] || refWhole[full] {
				continue
			}
			rep.Reportf(a.Name(), sf.fld.Pos(),
				"field %s.%s is marked state in the checkpoint manifest but no checkpoint*.go file references it — capture it in Capture/Restore (or fix its disposition)",
				sf.key, sf.fld.Name())
		}
	}

	// Mirror coverage: every field of every struct in the checkpoint
	// package must be populated by some capture write.
	a.checkMirror(prog, rep, refWrites, refWholeWrites)
}

// checkMirror verifies the <module>/internal/checkpoint mirror tree
// against the union of capture-side writes.
func (a *CheckpointCoverage) checkMirror(prog *Program, rep *Reporter, refWrites, refWholeWrites map[string]bool) {
	ckpt := prog.PackageByPath(prog.Module + "/internal/checkpoint")
	if ckpt == nil || ckpt.Types == nil {
		return
	}
	scope := ckpt.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		// The mirror tree is what the serialization files (checkpoint.go,
		// checkpoint_*.go) declare. The package also hosts the store's
		// host-side machinery (Dir's cache bookkeeping, codec scratch
		// state), whose structs are not wire format and are never written
		// by capture code.
		if !isCheckpointFile(prog.Fset.Position(tn.Pos()).Filename) {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		full := fullTypeKey(named)
		if refWholeWrites[full] {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if refWrites[full+"."+fld.Name()] {
				continue
			}
			// A mirror field whose type is itself a mirror struct (or leads
			// to one) is populated through that struct's own fields.
			if leadsToMirrorStruct(fld.Type(), ckpt.ImportPath) {
				continue
			}
			rep.Reportf(a.Name(), fld.Pos(),
				"checkpoint mirror field %s.%s is never written by any capture code: dead format field, or a capture is missing",
				name, fld.Name())
		}
	}
}

// leadsToMirrorStruct reports whether t unwraps to a struct declared in the
// checkpoint package itself.
func leadsToMirrorStruct(t types.Type, ckptPath string) bool {
	for _, n := range walkableNamed(t, moduleOf(ckptPath)) {
		if n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == ckptPath {
			if _, ok := n.Underlying().(*types.Struct); ok {
				return true
			}
		}
	}
	return false
}

// structHasField reports whether st declares (or embeds at the top level) a
// field with the given name.
func structHasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// parseManifests finds and parses every completeness_test.go next to a
// loaded package, merging manifests (nil when none exists).
func (a *CheckpointCoverage) parseManifests(prog *Program) *manifest {
	var man *manifest
	for _, p := range prog.Packages {
		path := filepath.Join(p.Dir, "completeness_test.go")
		if _, err := os.Stat(path); err != nil {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		m := a.parseManifestFile(prog, p, f)
		if m == nil {
			continue
		}
		m.file = path
		if man == nil {
			man = m
			continue
		}
		for k, v := range m.entries {
			man.entries[k] = v
		}
		man.roots = append(man.roots, m.roots...)
		for k, v := range m.imports {
			man.imports[k] = v
		}
	}
	return man
}

// parseManifestFile extracts checkpointManifest and checkpointRoots from
// one parsed test file; nil when the file declares neither.
func (a *CheckpointCoverage) parseManifestFile(prog *Program, home *Package, f *ast.File) *manifest {
	man := &manifest{entries: map[string]manifestEntry{}, imports: map[string]string{}, home: home}
	for _, imp := range f.Imports {
		path := importPath(imp)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else if p := prog.PackageByPath(path); p != nil && p.Types != nil {
			name = p.Types.Name()
		} else if i := lastSlash(path); i >= 0 {
			name = path[i+1:]
		} else {
			name = path
		}
		man.imports[name] = path
	}
	found := false
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "checkpointManifest" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				a.parseManifestLit(lit, man)
				found = true
			}
		case *ast.FuncDecl:
			if d.Name.Name != "checkpointRoots" || d.Body == nil {
				continue
			}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "TypeOf" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "reflect" {
					return true
				}
				cl, ok := call.Args[0].(*ast.CompositeLit)
				if !ok {
					return true
				}
				man.roots = append(man.roots, rootExpr{expr: cl.Type, pos: cl.Pos()})
				found = true
				return true
			})
		}
	}
	if !found {
		return nil
	}
	return man
}

// parseManifestLit walks the map[string]map[string]string literal.
func (a *CheckpointCoverage) parseManifestLit(lit *ast.CompositeLit, man *manifest) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := stringLit(kv.Key)
		if !ok {
			continue
		}
		inner, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			continue
		}
		entry := manifestEntry{pos: kv.Key.Pos(), fields: map[string]manifestField{}}
		for _, felt := range inner.Elts {
			fkv, ok := felt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			fname, ok := stringLit(fkv.Key)
			if !ok {
				continue
			}
			disp, ok := stringLit(fkv.Value)
			if !ok {
				continue
			}
			entry.fields[fname] = manifestField{disp: disp, pos: fkv.Key.Pos()}
		}
		man.entries[key] = entry
	}
}

// resolveRoot resolves a checkpointRoots type expression (Ident or
// pkg.Ident) to the named type it denotes.
func (a *CheckpointCoverage) resolveRoot(prog *Program, man *manifest, root rootExpr) *types.Named {
	lookup := func(scope *types.Scope, name string) *types.Named {
		if scope == nil {
			return nil
		}
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			return nil
		}
		named, _ := tn.Type().(*types.Named)
		return named
	}
	switch e := root.expr.(type) {
	case *ast.Ident:
		if man.home.Types == nil {
			return nil
		}
		return lookup(man.home.Types.Scope(), e.Name)
	case *ast.SelectorExpr:
		qual, ok := e.X.(*ast.Ident)
		if !ok {
			return nil
		}
		path, ok := man.imports[qual.Name]
		if !ok {
			return nil
		}
		p := prog.PackageByPath(path)
		if p == nil || p.Types == nil {
			return nil
		}
		return lookup(p.Types.Scope(), e.Sel.Name)
	}
	return nil
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// relPath renders path relative to root when possible.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
