package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// TenantNamespace enforces the metric-attribution contract of multi-tenant
// sockets (internal/uncore, internal/core/socket.go): per-tenant metric
// namespaces belong to exactly one writer.
//
//   - Names under "uncore." may only be registered or minted inside
//     internal/uncore — the shared levels are the one component allowed to
//     attribute traffic to tenants, and a core-private package registering
//     under "uncore." would charge its counters to another tenant's bill.
//   - Names under "tenant<i>." may not be registered anywhere: that prefix
//     is synthesized by Socket.CombinedSnapshot when it merges per-core
//     registries, so a registered "tenantN." name would collide with (or
//     masquerade as) another tenant's namespaced counters.
//
// The check fires on the name argument of the metrics.Registry
// registration methods (Counter, Gauge, Histogram, CounterFunc, GaugeFunc)
// whenever it is resolvable at lint time: a constant string (including
// concatenations) or a fmt.Sprintf whose format string is constant.
type TenantNamespace struct{}

// Name implements Analyzer.
func (*TenantNamespace) Name() string { return "tenantnamespace" }

// Doc implements Analyzer.
func (*TenantNamespace) Doc() string {
	return "per-tenant metric namespaces are minted only by their owner (uncore.* by internal/uncore, tenantN.* by nobody)"
}

// registerMethods are the metrics.Registry methods that mint a name.
var registerMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

// Check implements Analyzer.
func (c *TenantNamespace) Check(p *Package, rep *Reporter) {
	module := moduleOf(p.ImportPath)
	metricsPkg := module + "/internal/metrics"
	uncorePkg := module + "/internal/uncore"

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, recvType, method, ok := methodCall(p, call)
			if !ok || !registerMethods[method] {
				return true
			}
			if pkg, typ := typeDeclPkg(recvType); pkg != metricsPkg || typ != "Registry" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			name, ok := c.nameOf(p, call.Args[0])
			if !ok {
				return true
			}
			switch {
			case strings.HasPrefix(name, "uncore.") && p.ImportPath != uncorePkg:
				rep.Reportf(c.Name(), call.Pos(),
					"metric %q registered outside internal/uncore: the uncore.* namespace carries shared-level tenant attribution and is minted only there",
					name)
			case isTenantPrefixed(name):
				rep.Reportf(c.Name(), call.Pos(),
					"metric %q registered under the reserved tenantN.* namespace: that prefix is synthesized by Socket.CombinedSnapshot and must never be registered",
					name)
			}
			return true
		})
	}
}

// nameOf resolves a registration-name expression to a string usable for
// prefix checks: an exact constant string (covering literals and folded
// concatenations), or the constant format string of a fmt.Sprintf cut at
// its first verb (so "uncore.tenant%d.requests" still reveals the
// namespace it mints into).
func (c *TenantNamespace) nameOf(p *Package, e ast.Expr) (string, bool) {
	if s, ok := constString(p, e); ok {
		return s, true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	pkg, fn, ok := pkgFuncCall(p, call)
	if !ok || pkg != "fmt" || fn != "Sprintf" || len(call.Args) == 0 {
		return "", false
	}
	format, ok := constString(p, call.Args[0])
	if !ok {
		return "", false
	}
	// Keep the verb's '%' so "tenant%d..." still reads as minting into
	// the reserved namespace after the cut.
	if i := strings.IndexByte(format, '%'); i >= 0 {
		format = format[:i+1]
	}
	return format, true
}

// isTenantPrefixed reports whether name mints into the reserved
// "tenant<i>." namespace: "tenant" followed by a digit (literal index) or
// a '%' (an Sprintf verb about to become one).
func isTenantPrefixed(name string) bool {
	rest, ok := strings.CutPrefix(name, "tenant")
	if !ok || rest == "" {
		return false
	}
	return (rest[0] >= '0' && rest[0] <= '9') || rest[0] == '%'
}

// constString extracts an exact string from a constant expression value.
func constString(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
