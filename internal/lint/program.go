package lint

import (
	"go/token"
	"sort"
	"strings"
)

// Program is the whole-program view the cross-package analyzers run over:
// every loaded package, the module import graph, the call graph over
// type-checked functions, and the facts store the per-package passes
// export into.
type Program struct {
	// Module is the module path ("pdip").
	Module string
	// Root is the module root directory.
	Root string
	// Packages are the loaded packages, in load order (sorted by directory).
	Packages []*Package
	// Fset is the shared file set positioning every package.
	Fset *token.FileSet
	// Graph is the module-internal import graph.
	Graph *PackageGraph
	// Calls is the static call graph over the module's functions.
	Calls *CallGraph
	// Facts is the cross-package facts store.
	Facts *Facts
	// Escape provides per-package escape-analysis diagnostics (the
	// compiler's -gcflags=-m output). Defaults to a cached `go build`
	// runner; tests may substitute a fake.
	Escape EscapeSource
}

// NewProgram assembles the whole-program view over pkgs, which must all
// have been loaded by l (they share its FileSet and module).
func NewProgram(l *Loader, pkgs []*Package) *Program {
	prog := &Program{
		Module:   l.Module,
		Root:     l.Root,
		Packages: pkgs,
		Fset:     l.Fset(),
		Graph:    NewPackageGraph(l.Module, pkgs),
		Facts:    NewFacts(),
	}
	prog.Calls = NewCallGraph(pkgs)
	prog.Escape = NewGoBuildEscape(l.Root, l.Module)
	return prog
}

// PackageByPath returns the loaded package with the given import path.
func (prog *Program) PackageByPath(path string) *Package {
	return prog.Graph.byPath[path]
}

// PackageGraph is the module-internal import graph, plus per-package
// content hashes for build-output caching.
type PackageGraph struct {
	module string
	byPath map[string]*Package
	// imports maps import path -> sorted module-internal imports.
	imports map[string][]string
}

// NewPackageGraph indexes the module-internal import edges of pkgs.
func NewPackageGraph(module string, pkgs []*Package) *PackageGraph {
	g := &PackageGraph{
		module:  module,
		byPath:  map[string]*Package{},
		imports: map[string][]string{},
	}
	for _, p := range pkgs {
		g.byPath[p.ImportPath] = p
	}
	for _, p := range pkgs {
		seen := map[string]bool{}
		var deps []string
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := importPath(imp)
				if (path == module || strings.HasPrefix(path, module+"/")) && !seen[path] {
					seen[path] = true
					deps = append(deps, path)
				}
			}
		}
		sort.Strings(deps)
		g.imports[p.ImportPath] = deps
	}
	return g
}

// Imports returns the module-internal imports of path, sorted.
func (g *PackageGraph) Imports(path string) []string { return g.imports[path] }

// TransitiveImports returns path's module-internal import closure
// (excluding path itself), sorted.
func (g *PackageGraph) TransitiveImports(path string) []string {
	seen := map[string]bool{path: true}
	var out []string
	queue := append([]string(nil), g.imports[path]...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
		queue = append(queue, g.imports[p]...)
	}
	sort.Strings(out)
	return out
}

// Facts is the cross-package facts store: the per-package pass of a
// whole-program analyzer exports facts keyed by analyzer and package, and
// the program pass imports them — the same export/import shape as
// x/tools/go/analysis facts, without the dependency.
type Facts struct {
	pkg map[string]map[string]any // analyzer -> import path -> fact
}

// NewFacts returns an empty facts store.
func NewFacts() *Facts {
	return &Facts{pkg: map[string]map[string]any{}}
}

// ExportPackageFact records analyzer's fact about the package at path,
// replacing any previous fact.
func (f *Facts) ExportPackageFact(analyzer, path string, fact any) {
	m := f.pkg[analyzer]
	if m == nil {
		m = map[string]any{}
		f.pkg[analyzer] = m
	}
	m[path] = fact
}

// PackageFact returns analyzer's fact about the package at path.
func (f *Facts) PackageFact(analyzer, path string) (any, bool) {
	fact, ok := f.pkg[analyzer][path]
	return fact, ok
}

// PackageFactEntry is one exported fact with its package path.
type PackageFactEntry struct {
	Path string
	Fact any
}

// AllPackageFacts returns every fact exported by analyzer, sorted by
// package path — a deterministic iteration order for the program pass.
func (f *Facts) AllPackageFacts(analyzer string) []PackageFactEntry {
	var keys []string
	for path := range f.pkg[analyzer] {
		keys = append(keys, path)
	}
	sort.Strings(keys)
	out := make([]PackageFactEntry, 0, len(keys))
	for _, path := range keys {
		out = append(out, PackageFactEntry{Path: path, Fact: f.pkg[analyzer][path]})
	}
	return out
}
