package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocFree is the static form of the perf-smoke zero-alloc gate: it
// drives the compiler's own escape analysis (go build -gcflags=-m) over
// every package containing code reachable from a `//lint:hotpath`
// function, and rejects any heap-allocation site the call graph can reach
// from such a root. The runtime twin (make perf-smoke) measures allocs/op
// after the fact; this analyzer points at the offending line before the
// code ever runs.
//
// Roots are function declarations whose doc comment contains a line
// `//lint:hotpath` — the six pipeline-stage ticks, PQ drain, cache
// lookup, MSHR prune, and socket stepping. Reachability follows direct
// calls, method calls, and interface dispatch (class-hierarchy analysis
// over the module's types); calls through plain function values are not
// traced, but closures defined inside a reachable function are checked by
// position.
//
// Deliberate amortized allocations (pool refills, buffer growth on the
// cold setup path) are suppressed with `//lint:ignore allocfree <reason>`
// at the allocation site, keeping every exception documented.
type AllocFree struct{}

// Name implements Analyzer.
func (*AllocFree) Name() string { return "allocfree" }

// Doc implements Analyzer.
func (*AllocFree) Doc() string {
	return "forbid heap allocations reachable from //lint:hotpath functions (compiler escape analysis over the call graph)"
}

// hotpathFact lists the //lint:hotpath roots declared in one package.
type hotpathFact struct {
	roots []*types.Func
}

// isHotpathDoc reports whether doc carries a //lint:hotpath directive.
func isHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//lint:hotpath" {
			return true
		}
	}
	return false
}

// Check implements Analyzer: it exports the package's hotpath roots as a
// fact for the program pass.
func (a *AllocFree) Check(p *Package, rep *Reporter) {
	var fact hotpathFact
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpathDoc(fd.Doc) {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				rep.Reportf(a.Name(), fd.Pos(), "//lint:hotpath on a declaration the type checker could not resolve")
				continue
			}
			fact.roots = append(fact.roots, origin(fn))
		}
	}
	if len(fact.roots) > 0 {
		sort.Slice(fact.roots, func(i, j int) bool { return fact.roots[i].Pos() < fact.roots[j].Pos() })
		rep.Facts().ExportPackageFact(a.Name(), p.ImportPath, &fact)
	}
}

// CheckProgram implements WholeProgram: reachability from the hotpath
// roots, escape diagnostics for every package the reachable set touches,
// and a report for each heap-allocation site inside a reachable function.
func (a *AllocFree) CheckProgram(prog *Program, rep *Reporter) {
	var roots []*types.Func
	for _, entry := range prog.Facts.AllPackageFacts(a.Name()) {
		roots = append(roots, entry.Fact.(*hotpathFact).roots...)
	}
	if len(roots) == 0 {
		return
	}
	reached := prog.Calls.Reachable(roots)

	// Packages whose escape output we need: every package declaring a
	// reachable function. Main packages are skipped (go build would write
	// a binary; no hot path lives in package main).
	needSet := map[string]bool{}
	for fn := range reached {
		node := prog.Calls.Node(fn)
		if node == nil || node.Pkg.Types == nil || node.Pkg.Types.Name() == "main" {
			continue
		}
		needSet[node.Pkg.ImportPath] = true
	}
	var need []string
	for path := range needSet {
		need = append(need, path)
	}
	sort.Strings(need)

	escapes, err := prog.Escape.Diagnostics(prog, need)
	if err != nil {
		rep.Reportf(a.Name(), token.NoPos, "escape analysis unavailable: %v", err)
		return
	}

	for _, path := range need {
		p := prog.PackageByPath(path)
		files := map[string]*ast.File{}
		for _, f := range p.Files {
			files[p.Fset.Position(f.Pos()).Filename] = f
		}
		seen := map[string]bool{}
		for _, d := range escapes[path] {
			if !d.IsHeapAlloc() {
				continue
			}
			f, ok := files[d.File]
			if !ok {
				continue
			}
			pos := positionPos(p.Fset, f, d.Line, d.Col)
			if pos == token.NoPos {
				continue
			}
			fn := enclosingDeclFunc(p, f, pos)
			if fn == nil {
				continue
			}
			if _, ok := reached[origin(fn)]; !ok {
				continue
			}
			key := d.File + ":" + itoaKey(d.Line) + ":" + itoaKey(d.Col) + ":" + d.Message
			if seen[key] {
				continue
			}
			seen[key] = true
			rep.Reportf(a.Name(), pos,
				"heap allocation on the hot path: %s (reachable via %s)",
				d.Message, Chain(reached, fn))
		}
	}
}

// enclosingDeclFunc returns the function object of the top-level FuncDecl
// containing pos in f (closures are attributed to their enclosing
// declaration), or nil.
func enclosingDeclFunc(p *Package, f *ast.File, pos token.Pos) *types.Func {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// positionPos converts a (line, column) pair in f's source file into a
// token.Pos, or NoPos when out of range.
func positionPos(fset *token.FileSet, f *ast.File, line, col int) token.Pos {
	tf := fset.File(f.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	pos := tf.LineStart(line) + token.Pos(col-1)
	if pos < token.Pos(tf.Base()) || pos > token.Pos(tf.Base()+tf.Size()) {
		return tf.LineStart(line)
	}
	return pos
}

func itoaKey(n int) string {
	if n < 0 {
		return "-" + itoaKey(-n)
	}
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
