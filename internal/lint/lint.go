// Package lint is a small static-analysis framework, built on the
// standard library's go/parser, go/ast, and go/types only (no x/tools),
// that enforces the simulator's correctness contracts at the line that
// would break them:
//
//   - determinism: no wall-clock time, no global RNG, no goroutines, and
//     no map-iteration-order dependence in simulation packages — the
//     contracts behind bit-identical deterministic replay (DESIGN.md
//     §Observability).
//   - counterownership: every metrics counter is incremented only by the
//     pipeline stage that owns its group (internal/core/metrics.go).
//   - portdiscipline: all memory traffic flows through mem.Port or the
//     named Hierarchy wrappers; nothing outside internal/mem and
//     internal/cache calls cache internals directly.
//   - cfgbounds: cache/PDIP geometry literals satisfy the same rules the
//     runtime validators enforce, so bad configs fail at lint time.
//   - tenantnamespace: per-tenant metric namespaces are minted only by
//     their owner — uncore.* inside internal/uncore, tenantN.* by nobody
//     (it is synthesized at snapshot-merge time) — so no core-private
//     package can charge counters to another tenant's bill.
//   - checkpointcoverage: the static twin of the reflection-manifest
//     completeness test — every persistent field of every simulator state
//     struct must be captured by its package's checkpoint files, and every
//     field of the checkpoint mirror tree must be written by some capture.
//   - allocfree: the static twin of the perf-smoke zero-alloc gate —
//     no heap allocation (per the compiler's own escape analysis) may be
//     reachable through the call graph from a //lint:hotpath function.
//   - determinismtaint: the interprocedural form of the determinism rule —
//     a helper anywhere in the module that touches wall-clock time, global
//     RNG, or map-iteration order taints every simulation-package caller
//     transitively.
//
// The last three are whole-program analyzers (WholeProgram): they run over
// a Program — every loaded package plus the package graph, the call graph,
// and a facts store the per-package passes export into — mirroring the
// shape of x/tools/go/analysis facts without the dependency.
//
// Diagnostics can be suppressed with a `//lint:ignore <analyzer> <reason>`
// comment on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents why the contract does not
// apply. A suppression that no longer suppresses anything is itself
// reported (analyzer name "staleignore"), keeping the suppression
// inventory honest.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one repo-specific static check.
type Analyzer interface {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the enforced contract.
	Doc() string
	// Check inspects one type-checked package and reports violations.
	// Whole-program analyzers use this pass to export per-package facts.
	Check(p *Package, r *Reporter)
}

// WholeProgram is implemented by analyzers that need the cross-package
// view: the package graph, the call graph, and the facts exported by the
// per-package passes. CheckProgram runs once, after Check has run on every
// package.
type WholeProgram interface {
	Analyzer
	CheckProgram(prog *Program, r *Reporter)
}

// All returns every registered analyzer, in stable order.
func All() []Analyzer {
	return []Analyzer{
		&Determinism{},
		&CounterOwnership{},
		&PortDiscipline{},
		&CfgBounds{},
		&TenantNamespace{},
		&CheckpointCoverage{},
		&AllocFree{},
		&DeterminismTaint{},
	}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message describes the violation and the sanctioned alternative.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// directive is one parsed //lint:ignore suppression. Used tracks whether
// it suppressed (or blessed, for taint sources) anything this run; an
// unused directive is stale and reported by ReportStale.
type directive struct {
	name string
	pos  token.Position
	used bool
}

// Reporter collects diagnostics across every loaded package, applying
// //lint:ignore suppression. One Reporter serves a whole Run so that
// whole-program analyzers share the same suppression index — and so that
// directive usage can be accounted globally for stale-suppression
// reporting.
type Reporter struct {
	fset  *token.FileSet
	files []*ast.File
	diag  []Diagnostic
	// ignores maps filename -> line -> directives suppressing there
	// (a directive covers its own line and the next).
	ignores map[string]map[int][]*directive
	// facts is the cross-package facts store the per-package passes export
	// into; Run points it at the Program's store.
	facts *Facts
}

// Facts returns the run's cross-package facts store.
func (r *Reporter) Facts() *Facts { return r.facts }

// NewReporter builds a reporter over pkgs, indexing their ignore
// directives. All packages must share one FileSet (the loader guarantees
// this).
func NewReporter(pkgs []*Package) *Reporter {
	r := &Reporter{ignores: map[string]map[int][]*directive{}, facts: NewFacts()}
	for _, p := range pkgs {
		if r.fset == nil {
			r.fset = p.Fset
		}
		for _, f := range p.Files {
			r.files = append(r.files, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					m := r.ignores[pos.Filename]
					if m == nil {
						m = map[int][]*directive{}
						r.ignores[pos.Filename] = m
					}
					d := &directive{name: name, pos: pos}
					// The directive covers its own line (trailing comment)
					// and the next line (directive-above-statement form).
					m[pos.Line] = append(m[pos.Line], d)
					m[pos.Line+1] = append(m[pos.Line+1], d)
				}
			}
		}
	}
	return r
}

// parseIgnore recognises `//lint:ignore <analyzer> <reason>` and returns
// the analyzer name. A directive without a reason is not honoured:
// undocumented suppressions are themselves a contract violation, reported
// by CheckDirectives.
func parseIgnore(text string) (string, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 { // analyzer name plus at least one reason word
		return "", false
	}
	return fields[0], true
}

// CheckDirectives reports malformed //lint:ignore directives (missing
// analyzer name or missing reason) so suppressions stay documented.
func (r *Reporter) CheckDirectives() {
	for _, f := range r.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				if _, ok := parseIgnore(c.Text); !ok {
					r.diag = append(r.diag, Diagnostic{
						Analyzer: "lint",
						Pos:      r.fset.Position(c.Pos()),
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
				}
			}
		}
	}
}

// Suppressed reports whether an ignore directive for analyzer covers pos,
// marking any matching directive as used. Whole-program analyzers consult
// it for decisions beyond plain report suppression (a suppressed
// determinism source, for example, is blessed and does not taint its
// callers).
func (r *Reporter) Suppressed(analyzer string, pos token.Pos) bool {
	p := r.fset.Position(pos)
	hit := false
	for _, d := range r.ignores[p.Filename][p.Line] {
		if d.name == analyzer || d.name == "all" {
			d.used = true
			hit = true
		}
	}
	return hit
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (r *Reporter) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	if r.Suppressed(analyzer, pos) {
		return
	}
	r.diag = append(r.diag, Diagnostic{
		Analyzer: analyzer,
		Pos:      r.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportStale reports every //lint:ignore directive that suppressed
// nothing this run: the violation it once covered is gone, so the
// directive is dead weight that would silently swallow a future, different
// violation on that line. Call after every analyzer has run.
func (r *Reporter) ReportStale() {
	seen := map[*directive]bool{}
	var stale []*directive
	for _, byLine := range r.ignores {
		for _, ds := range byLine {
			for _, d := range ds {
				if !seen[d] {
					seen[d] = true
					if !d.used {
						stale = append(stale, d)
					}
				}
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i].pos, stale[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, d := range stale {
		r.diag = append(r.diag, Diagnostic{
			Analyzer: "staleignore",
			Pos:      d.pos,
			Message: fmt.Sprintf("stale suppression: [%s] no longer fires here — remove the //lint:ignore directive (it would silently swallow a future violation)",
				d.name),
		})
	}
}

// Diagnostics returns the collected diagnostics sorted by file, line,
// column, then analyzer — a stable order independent of check order.
func (r *Reporter) Diagnostics() []Diagnostic {
	sort.Slice(r.diag, func(i, j int) bool {
		a, b := r.diag[i], r.diag[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.diag
}

// Run executes every analyzer over the program: the per-package passes
// first (exporting facts), then the whole-program passes, then the
// stale-suppression sweep. Diagnostics come back in stable order.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	rep := NewReporter(prog.Packages)
	rep.facts = prog.Facts
	rep.CheckDirectives()
	for _, a := range analyzers {
		for _, p := range prog.Packages {
			a.Check(p, rep)
		}
	}
	for _, a := range analyzers {
		if wp, ok := a.(WholeProgram); ok {
			wp.CheckProgram(prog, rep)
		}
	}
	rep.ReportStale()
	return rep.Diagnostics()
}

// FileOf returns the base filename containing pos.
func (p *Package) FileOf(pos token.Pos) string {
	full := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// enclosingFunc returns the innermost function literal or declaration body
// in file that contains pos, or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
