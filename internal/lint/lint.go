// Package lint is a small static-analysis framework, built on the
// standard library's go/parser, go/ast, and go/types only (no x/tools),
// that enforces the simulator's correctness contracts at the line that
// would break them:
//
//   - determinism: no wall-clock time, no global RNG, no goroutines, and
//     no map-iteration-order dependence in simulation packages — the
//     contracts behind bit-identical deterministic replay (DESIGN.md
//     §Observability).
//   - counterownership: every metrics counter is incremented only by the
//     pipeline stage that owns its group (internal/core/metrics.go).
//   - portdiscipline: all memory traffic flows through mem.Port or the
//     named Hierarchy wrappers; nothing outside internal/mem and
//     internal/cache calls cache internals directly.
//   - cfgbounds: cache/PDIP geometry literals satisfy the same rules the
//     runtime validators enforce, so bad configs fail at lint time.
//   - tenantnamespace: per-tenant metric namespaces are minted only by
//     their owner — uncore.* inside internal/uncore, tenantN.* by nobody
//     (it is synthesized at snapshot-merge time) — so no core-private
//     package can charge counters to another tenant's bill.
//
// Diagnostics can be suppressed with a `//lint:ignore <analyzer> <reason>`
// comment on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents why the contract does not
// apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one repo-specific static check.
type Analyzer interface {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the enforced contract.
	Doc() string
	// Check inspects one type-checked package and reports violations.
	Check(p *Package, r *Reporter)
}

// All returns every registered analyzer, in stable order.
func All() []Analyzer {
	return []Analyzer{
		&Determinism{},
		&CounterOwnership{},
		&PortDiscipline{},
		&CfgBounds{},
		&TenantNamespace{},
	}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message describes the violation and the sanctioned alternative.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reporter collects diagnostics for one package, applying //lint:ignore
// suppression.
type Reporter struct {
	pkg  *Package
	diag []Diagnostic
	// ignores maps filename -> line -> analyzer names suppressed there
	// ("all" suppresses every analyzer).
	ignores map[string]map[int][]string
}

// NewReporter builds a reporter over p, indexing its ignore directives.
func NewReporter(p *Package) *Reporter {
	r := &Reporter{pkg: p, ignores: map[string]map[int][]string{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := r.ignores[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					r.ignores[pos.Filename] = m
				}
				// The directive covers its own line (trailing comment)
				// and the next line (directive-above-statement form).
				m[pos.Line] = append(m[pos.Line], name)
				m[pos.Line+1] = append(m[pos.Line+1], name)
			}
		}
	}
	return r
}

// parseIgnore recognises `//lint:ignore <analyzer> <reason>` and returns
// the analyzer name. A directive without a reason is not honoured:
// undocumented suppressions are themselves a contract violation, reported
// by CheckDirectives.
func parseIgnore(text string) (string, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	fields := strings.Fields(text[len(prefix):])
	if len(fields) < 2 { // analyzer name plus at least one reason word
		return "", false
	}
	return fields[0], true
}

// CheckDirectives reports malformed //lint:ignore directives (missing
// analyzer name or missing reason) so suppressions stay documented.
func (r *Reporter) CheckDirectives() {
	for _, f := range r.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				if _, ok := parseIgnore(c.Text); !ok {
					r.diag = append(r.diag, Diagnostic{
						Analyzer: "lint",
						Pos:      r.pkg.Fset.Position(c.Pos()),
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
				}
			}
		}
	}
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (r *Reporter) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	for _, name := range r.ignores[p.Filename][p.Line] {
		if name == analyzer || name == "all" {
			return
		}
	}
	r.diag = append(r.diag, Diagnostic{
		Analyzer: analyzer,
		Pos:      p,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the collected diagnostics sorted by file, line,
// column, then analyzer — a stable order independent of check order.
func (r *Reporter) Diagnostics() []Diagnostic {
	sort.Slice(r.diag, func(i, j int) bool {
		a, b := r.diag[i], r.diag[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.diag
}

// Run executes every analyzer over every package and returns the combined
// diagnostics in stable order.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		rep := NewReporter(p)
		rep.CheckDirectives()
		for _, a := range analyzers {
			a.Check(p, rep)
		}
		out = append(out, rep.Diagnostics()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// FileOf returns the base filename containing pos.
func (p *Package) FileOf(pos token.Pos) string {
	full := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

// enclosingFunc returns the innermost function literal or declaration body
// in file that contains pos, or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
