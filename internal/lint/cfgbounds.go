package lint

import (
	"go/ast"
)

// CfgBounds checks configuration composite literals against the same
// geometry rules the runtime validators enforce (cache.New, pdip.New), so
// an impossible configuration fails at lint time instead of at simulator
// start:
//
//   - cache.Config: SizeBytes and Ways positive, SizeBytes/(64·Ways) a
//     power-of-two set count, ProtectedWays ≤ Ways.
//   - pdip.Config: MaskBits ≤ 8 (the per-target mask is a uint8),
//     TagBits in [0, 32) (the partial tag is a uint32 and the width feeds
//     a shift), non-negative Sets/Ways/TargetsPerEntry, InsertProb in
//     [0, 1].
//
// Only fields given as compile-time constants are checked; computed values
// remain the runtime validator's job.
type CfgBounds struct{}

// Name implements Analyzer.
func (*CfgBounds) Name() string { return "cfgbounds" }

// Doc implements Analyzer.
func (*CfgBounds) Doc() string {
	return "cache and PDIP geometry literals satisfy the runtime validation rules"
}

// lineSize mirrors isa.LineSize; the analyzer cannot import the simulator
// packages it inspects without creating a lint→sim dependency.
const lineSize = 64

// Check implements Analyzer.
func (c *CfgBounds) Check(p *Package, rep *Reporter) {
	module := moduleOf(p.ImportPath)
	cachePkg := module + "/internal/cache"
	pdipPkg := module + "/internal/pdip"
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			pkg, name := typeDeclPkg(p.Info.TypeOf(lit))
			switch {
			case pkg == cachePkg && name == "Config":
				c.checkCacheConfig(p, rep, lit)
			case pkg == pdipPkg && name == "Config":
				c.checkPDIPConfig(p, rep, lit)
			}
			return true
		})
	}
}

// fields extracts the keyed elements of a config literal.
func fields(lit *ast.CompositeLit) map[string]ast.Expr {
	m := map[string]ast.Expr{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			m[id.Name] = kv.Value
		}
	}
	return m
}

func (c *CfgBounds) checkCacheConfig(p *Package, rep *Reporter, lit *ast.CompositeLit) {
	f := fields(lit)
	size, sizeOK := fieldInt(p, f, "SizeBytes")
	ways, waysOK := fieldInt(p, f, "Ways")
	if sizeOK && size <= 0 {
		rep.Reportf(c.Name(), f["SizeBytes"].Pos(), "cache.Config SizeBytes %d must be positive", size)
	}
	if waysOK && ways <= 0 {
		rep.Reportf(c.Name(), f["Ways"].Pos(), "cache.Config Ways %d must be positive", ways)
	}
	if sizeOK && waysOK && size > 0 && ways > 0 {
		sets := size / (lineSize * ways)
		if sets == 0 || sets&(sets-1) != 0 {
			rep.Reportf(c.Name(), lit.Pos(),
				"cache.Config %dB/%d-way yields %d sets; SizeBytes/(64*Ways) must be a power of two", size, ways, sets)
		}
	}
	if prot, ok := fieldInt(p, f, "ProtectedWays"); ok {
		if prot < 0 {
			rep.Reportf(c.Name(), f["ProtectedWays"].Pos(), "cache.Config ProtectedWays %d must be non-negative", prot)
		} else if waysOK && prot > ways {
			rep.Reportf(c.Name(), f["ProtectedWays"].Pos(),
				"cache.Config ProtectedWays %d exceeds Ways %d: EMISSARY cannot protect more ways than exist", prot, ways)
		}
	}
}

func (c *CfgBounds) checkPDIPConfig(p *Package, rep *Reporter, lit *ast.CompositeLit) {
	f := fields(lit)
	if mask, ok := fieldInt(p, f, "MaskBits"); ok && mask > 8 {
		rep.Reportf(c.Name(), f["MaskBits"].Pos(),
			"pdip.Config MaskBits %d exceeds 8: the per-target successor mask is a uint8", mask)
	}
	if tag, ok := fieldInt(p, f, "TagBits"); ok && (tag < 0 || tag >= 32) {
		rep.Reportf(c.Name(), f["TagBits"].Pos(),
			"pdip.Config TagBits %d out of range [0, 32): the partial tag is a uint32", tag)
	}
	for _, name := range [...]string{"Sets", "Ways", "TargetsPerEntry"} {
		if v, ok := fieldInt(p, f, name); ok && v < 0 {
			rep.Reportf(c.Name(), f[name].Pos(),
				"pdip.Config %s %d must be non-negative (zero selects the paper default)", name, v)
		}
	}
	if prob, ok := fieldFloat(p, f, "InsertProb"); ok && (prob < 0 || prob > 1) {
		rep.Reportf(c.Name(), f["InsertProb"].Pos(),
			"pdip.Config InsertProb %g out of range [0, 1]", prob)
	}
}

// fieldInt resolves a named field's constant integer value.
func fieldInt(p *Package, f map[string]ast.Expr, name string) (int64, bool) {
	e, ok := f[name]
	if !ok {
		return 0, false
	}
	return constInt(p, e)
}

// fieldFloat resolves a named field's constant float value.
func fieldFloat(p *Package, f map[string]ast.Expr, name string) (float64, bool) {
	e, ok := f[name]
	if !ok {
		return 0, false
	}
	return constFloat(p, e)
}
