package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// EscapeDiag is one compiler escape-analysis diagnostic (-gcflags=-m).
type EscapeDiag struct {
	// File is the absolute path of the source file.
	File string
	// Line and Col locate the diagnostic (1-based, as the compiler
	// reports them).
	Line, Col int
	// Message is the compiler's text ("make([]int, n) escapes to heap",
	// "moved to heap: x", "can inline f", ...).
	Message string
}

// IsHeapAlloc reports whether the diagnostic marks a heap allocation
// site, as opposed to inlining chatter or non-escaping analysis results.
// A constant string "escaping" to heap is excluded: the payload is interned
// static data (the shape panic("msg") and log-message arguments produce),
// so no per-operation allocation happens — and because inlining attributes
// the diagnostic to the call site, a syntactic panic filter could not
// catch these.
func (d EscapeDiag) IsHeapAlloc() bool {
	if strings.HasPrefix(d.Message, "\"") && strings.HasSuffix(d.Message, "\" escapes to heap") {
		return false
	}
	return strings.HasSuffix(d.Message, "escapes to heap") ||
		strings.HasPrefix(d.Message, "moved to heap:")
}

// EscapeSource provides per-package escape-analysis diagnostics. The
// production implementation shells out to `go build`; tests may
// substitute a canned source.
type EscapeSource interface {
	// Diagnostics returns the escape diagnostics for each of the given
	// import paths (all of which must be loaded in prog).
	Diagnostics(prog *Program, paths []string) (map[string][]EscapeDiag, error)
}

// GoBuildEscape obtains escape diagnostics by running
// `go build -gcflags=<pkg>=-m` and caches the per-package compiler output
// keyed by a content hash of the package and its module-internal
// dependency closure, so unchanged packages never re-invoke the
// toolchain.
type GoBuildEscape struct {
	// Root is the module root (go build's working directory).
	Root string
	// Module is the module path.
	Module string
	// CacheDir holds the per-package output cache; empty disables caching.
	CacheDir string

	// fileHash memoises the per-package hash of its own files.
	fileHash map[string]string
}

// NewGoBuildEscape returns a runner caching under root/.simlint-cache.
func NewGoBuildEscape(root, module string) *GoBuildEscape {
	return &GoBuildEscape{
		Root:     root,
		Module:   module,
		CacheDir: filepath.Join(root, ".simlint-cache", "escape"),
		fileHash: map[string]string{},
	}
}

// Diagnostics implements EscapeSource. Cache misses are batched into a
// single `go build` invocation; its per-package output sections are
// parsed, cached, and returned.
func (g *GoBuildEscape) Diagnostics(prog *Program, paths []string) (map[string][]EscapeDiag, error) {
	out := map[string][]EscapeDiag{}
	var misses []string
	keys := map[string]string{}
	for _, path := range paths {
		p := prog.PackageByPath(path)
		if p == nil {
			return nil, fmt.Errorf("escape: package %s not loaded", path)
		}
		key, err := g.cacheKey(prog, path)
		if err != nil {
			return nil, err
		}
		keys[path] = key
		if raw, ok := g.readCache(key); ok {
			out[path] = g.parseLines(raw)
			continue
		}
		misses = append(misses, path)
	}
	if len(misses) == 0 {
		return out, nil
	}
	sort.Strings(misses)
	sections, err := g.build(misses)
	if err != nil {
		return nil, err
	}
	for _, path := range misses {
		raw := sections[path] // absent => package compiled silently
		g.writeCache(keys[path], raw)
		out[path] = g.parseLines(raw)
	}
	return out, nil
}

// build runs one `go build` over paths with -m enabled for each, and
// splits the compiler output into per-package sections (the go tool
// prefixes each package's output with a "# importpath" header).
func (g *GoBuildEscape) build(paths []string) (map[string][]string, error) {
	args := []string{"build"}
	for _, path := range paths {
		args = append(args, "-gcflags="+path+"=-m")
	}
	args = append(args, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = g.Root
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	outBytes, err := cmd.CombinedOutput()
	lines := strings.Split(string(outBytes), "\n")
	sections := map[string][]string{}
	cur := ""
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			cur = strings.TrimSpace(rest)
			continue
		}
		if line == "" || cur == "" {
			continue
		}
		sections[cur] = append(sections[cur], line)
	}
	if err != nil {
		return nil, fmt.Errorf("escape: go build failed: %w\n%s", err, string(outBytes))
	}
	return sections, nil
}

// parseLines converts raw compiler output lines ("file:line:col: msg",
// file relative to the module root) into diagnostics.
func (g *GoBuildEscape) parseLines(raw []string) []EscapeDiag {
	var out []EscapeDiag
	for _, line := range raw {
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		file := parts[0]
		if strings.HasPrefix(file, "<") { // <autogenerated>
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(g.Root, file)
		}
		out = append(out, EscapeDiag{
			File:    file,
			Line:    ln,
			Col:     col,
			Message: strings.TrimSpace(parts[3]),
		})
	}
	return out
}

// cacheKey hashes the package's own files, its module-internal dependency
// closure's files, and the toolchain version: any change that could alter
// escape analysis (source, inlinable dependency bodies, compiler)
// invalidates the entry.
func (g *GoBuildEscape) cacheKey(prog *Program, path string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, path)
	own, err := g.packageHash(prog, path)
	if err != nil {
		return "", err
	}
	fmt.Fprintln(h, own)
	for _, dep := range prog.Graph.TransitiveImports(path) {
		dh, err := g.packageHash(prog, dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, dep, dh)
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// packageHash hashes one package's file names and contents.
func (g *GoBuildEscape) packageHash(prog *Program, path string) (string, error) {
	if h, ok := g.fileHash[path]; ok {
		return h, nil
	}
	h := sha256.New()
	if p := prog.PackageByPath(path); p != nil {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				return "", fmt.Errorf("escape: %w", err)
			}
			fmt.Fprintln(h, filepath.Base(name))
			h.Write(data)
		}
	} else {
		// A dependency outside the loaded set (linting a package subset):
		// hash its non-test .go files straight from disk. The set may
		// differ from what the loader would pick (build tags), so subset
		// and whole-module runs key separately — conservative, never stale.
		rel, ok := strings.CutPrefix(path, g.Module+"/")
		if !ok {
			return "", fmt.Errorf("escape: dependency %s not loaded and not module-internal", path)
		}
		entries, err := os.ReadDir(filepath.Join(g.Root, filepath.FromSlash(rel)))
		if err != nil {
			return "", fmt.Errorf("escape: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(g.Root, filepath.FromSlash(rel), name))
			if err != nil {
				return "", fmt.Errorf("escape: %w", err)
			}
			fmt.Fprintln(h, name)
			h.Write(data)
		}
	}
	sum := hex.EncodeToString(h.Sum(nil))
	g.fileHash[path] = sum
	return sum, nil
}

// readCache returns the cached raw output lines for key.
func (g *GoBuildEscape) readCache(key string) ([]string, bool) {
	if g.CacheDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(g.CacheDir, key+".txt"))
	if err != nil {
		return nil, false
	}
	text := strings.TrimRight(string(data), "\n")
	if text == "" {
		return nil, true
	}
	return strings.Split(text, "\n"), true
}

// writeCache stores raw output lines under key (best effort: a cache
// write failure never fails the lint run).
func (g *GoBuildEscape) writeCache(key string, raw []string) {
	if g.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(g.CacheDir, 0o755); err != nil {
		return
	}
	body := strings.Join(raw, "\n")
	if body != "" {
		body += "\n"
	}
	tmp := filepath.Join(g.CacheDir, key+".tmp")
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(g.CacheDir, key+".txt"))
}
