package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Dir is the package's absolute directory.
	Dir string
	// ImportPath is the module-relative import path ("pdip/internal/core").
	ImportPath string
	// Fset positions every file in the package (shared across a Loader).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in filename order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression facts.
	Info *types.Info
	// TypeErrors collects type-check errors (best effort: analyzers still
	// run on whatever type information was recovered).
	TypeErrors []error
}

// Loader parses and type-checks packages of one module. Imports within
// the module resolve from the module tree on disk; standard-library
// imports resolve through the stdlib source importer, keeping the whole
// pipeline free of external dependencies.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path from go.mod.
	Module string

	fset    *token.FileSet
	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool
	stdlib  types.Importer
}

// NewLoader builds a loader for the module rooted at root. The module path
// is read from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		Module:  module,
		fset:    fset,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		stdlib:  importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-internal paths load from disk,
// everything else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.LoadImportPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.stdlib.Import(path)
}

// LoadImportPath loads the module package with the given import path.
func (l *Loader) LoadImportPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
}

// LoadDir loads the package in dir (which must be inside the module),
// memoised by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %s is outside module root %s: %w", abs, l.Root, err)
	}
	ipath := l.Module
	if rel != "." {
		ipath = l.Module + "/" + filepath.ToSlash(rel)
	}
	if p, ok := l.pkgs[ipath]; ok {
		return p, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("lint: import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	// go/build applies the default build constraints (GOOS/GOARCH, no
	// custom tags), so tag-gated twins like invariant_off.go resolve the
	// same way `go build` does.
	bp, err := build.Default.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", abs, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	p := &Package{Dir: abs, ImportPath: ipath, Fset: l.fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		p.Files = append(p.Files, f)
	}

	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// Check returns the (possibly partial) package even on errors; the
	// errors are kept on the Package for the caller to surface.
	tpkg, _ := conf.Check(ipath, l.fset, p.Files, p.Info)
	p.Types = tpkg
	l.pkgs[ipath] = p
	return p, nil
}

// LoadTree loads every package under root (the module root or a
// subdirectory), skipping testdata, hidden, and VCS directories, in
// deterministic directory order.
func (l *Loader) LoadTree(root string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir contains at least one buildable non-test
// Go file under the default build constraints.
func hasGoFiles(dir string) bool {
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
