package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DeterminismTaint is the interprocedural form of the determinism rule.
// The syntactic Determinism analyzer only sees direct uses inside
// simulation packages (module/internal/...); a helper in a non-internal
// package — the root package, cmd/ tooling shared with the simulator —
// that reads the wall clock, draws from the global math/rand stream, or
// leaks map-iteration order would slip through it and still break
// bit-identical replay the moment simulation code calls it.
//
// The per-package pass classifies every function of every non-internal
// module package as clean or a nondeterminism source (exporting the
// sources as facts); the program pass propagates taint backwards over the
// call graph through non-internal callers and reports each call site where
// an internal package crosses into a tainted function. A
// `//lint:ignore determinismtaint <reason>` on the source line blesses the
// source and stops the taint (it is the analyzer's equivalent of auditing
// the helper); the same directive at the boundary call site suppresses the
// single report.
type DeterminismTaint struct{}

// Name implements Analyzer.
func (*DeterminismTaint) Name() string { return "determinismtaint" }

// Doc implements Analyzer.
func (*DeterminismTaint) Doc() string {
	return "forbid simulation packages from calling helpers that transitively reach wall-clock time, global RNG, or map-iteration order"
}

// taintSource is one nondeterministic operation in a non-internal helper.
type taintSource struct {
	fn   *types.Func
	pos  token.Pos
	desc string
}

// taintFact lists the sources found in one package.
type taintFact struct {
	sources []taintSource
}

// Check implements Analyzer: classify functions of non-internal module
// packages and export the sources.
func (a *DeterminismTaint) Check(p *Package, rep *Reporter) {
	module := moduleOf(p.ImportPath)
	if isInternalPath(module, p.ImportPath) {
		// Direct uses inside simulation packages are the plain determinism
		// analyzer's jurisdiction; taint only tracks what leaks in from
		// outside it.
		return
	}
	fact := &taintFact{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn = origin(fn)
			a.scanBody(p, rep, file, fd, fn, fact)
		}
	}
	if len(fact.sources) > 0 {
		sort.Slice(fact.sources, func(i, j int) bool { return fact.sources[i].pos < fact.sources[j].pos })
		rep.Facts().ExportPackageFact(a.Name(), p.ImportPath, fact)
	}
}

// scanBody records fd's nondeterminism sources. A //lint:ignore
// determinismtaint directive on the source line blesses it.
func (a *DeterminismTaint) scanBody(p *Package, rep *Reporter, file *ast.File, fd *ast.FuncDecl, fn *types.Func, fact *taintFact) {
	addSource := func(pos token.Pos, desc string) {
		if rep.Suppressed(a.Name(), pos) {
			return
		}
		fact.sources = append(fact.sources, taintSource{fn: fn, pos: pos, desc: desc})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SelectorExpr:
			pkg, name, ok := pkgSel(p, node)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && wallClockFuncs[name]:
				addSource(node.Pos(), "reads the host clock via time."+name)
			case pkg == "math/rand" || pkg == "math/rand/v2":
				addSource(node.Pos(), "draws from the global "+pkg+" stream via "+name)
			}
		case *ast.RangeStmt:
			t := p.Info.TypeOf(node.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			a.scanMapRange(p, file, node, addSource)
		}
		return true
	})
}

// scanMapRange flags the map-order shapes that make a helper's result
// depend on iteration order: growing an outer slice that is never sorted
// afterwards, and last-writer-wins assignment to an outer variable.
func (a *DeterminismTaint) scanMapRange(p *Package, file *ast.File, rs *ast.RangeStmt, addSource func(token.Pos, string)) {
	appendTargets := map[types.Object]token.Pos{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(p, id)
			if obj == nil || declaredWithin(obj, rs) || as.Tok == token.DEFINE {
				continue
			}
			if isAppendTo(p, as, i, obj) {
				if _, seen := appendTargets[obj]; !seen {
					appendTargets[obj] = as.Pos()
				}
				continue
			}
			if as.Tok == token.ASSIGN {
				addSource(as.Pos(), "assigns "+id.Name+" in map-iteration order (last-writer-wins)")
			}
		}
		return true
	})
	body := enclosingFunc(file, rs.Pos())
	var objs []types.Object
	for obj := range appendTargets {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return appendTargets[objs[i]] < appendTargets[objs[j]] })
	for _, obj := range objs {
		if body == nil || !sortedAfter(p, body, rs.End(), obj) {
			addSource(appendTargets[obj], "builds slice "+obj.Name()+" in map-iteration order without sorting it")
		}
	}
}

// taintInfo records how a tainted function reaches its source.
type taintInfo struct {
	src  taintSource
	next *types.Func // next hop toward the source; nil when fn is the source
}

// CheckProgram implements WholeProgram: propagate taint backwards from the
// sources through non-internal callers, and report every call site where
// an internal (simulation) package crosses into a tainted function.
func (a *DeterminismTaint) CheckProgram(prog *Program, rep *Reporter) {
	var sources []taintSource
	for _, entry := range prog.Facts.AllPackageFacts(a.Name()) {
		sources = append(sources, entry.Fact.(*taintFact).sources...)
	}
	if len(sources) == 0 {
		return
	}

	// Reverse call edges, in deterministic order.
	type revEdge struct {
		caller *types.Func
		pos    token.Pos
	}
	rev := map[*types.Func][]revEdge{}
	for _, node := range prog.Calls.Nodes() {
		for _, edge := range node.Calls {
			rev[edge.Callee] = append(rev[edge.Callee], revEdge{caller: node.Fn, pos: edge.Pos})
		}
	}

	internal := func(fn *types.Func) bool {
		return fn.Pkg() != nil && isInternalPath(prog.Module, fn.Pkg().Path())
	}

	taint := map[*types.Func]*taintInfo{}
	var queue []*types.Func
	for _, src := range sources {
		if _, ok := taint[src.fn]; ok {
			continue
		}
		taint[src.fn] = &taintInfo{src: src}
		queue = append(queue, src.fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		info := taint[fn]
		for _, e := range rev[fn] {
			if internal(e.caller) {
				rep.Reportf(a.Name(), e.pos,
					"call into %s makes simulation code transitively nondeterministic: %s (%s); thread determinism through explicit state (simulated cycles, internal/rng, sorted iteration)",
					funcName(fn), info.src.desc, a.chain(taint, fn))
				continue
			}
			if _, ok := taint[e.caller]; ok {
				continue
			}
			taint[e.caller] = &taintInfo{src: info.src, next: fn}
			queue = append(queue, e.caller)
		}
	}
}

// chain renders the taint path from fn to its source, ending at the
// source's position.
func (a *DeterminismTaint) chain(taint map[*types.Func]*taintInfo, fn *types.Func) string {
	out := ""
	for cur := fn; cur != nil; {
		if out != "" {
			out += " -> "
		}
		out += funcName(cur)
		info := taint[cur]
		if info == nil {
			break
		}
		cur = info.next
	}
	return out
}
