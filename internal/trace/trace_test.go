package trace

import (
	"testing"

	"pdip/internal/cfg"
	"pdip/internal/isa"
)

func testProgram(seed uint64) *cfg.Program {
	p := cfg.DefaultParams()
	p.Seed = seed
	p.NumFuncs = 128
	return cfg.MustGenerate(p)
}

func TestWalkerDeterminism(t *testing.T) {
	prog := testProgram(1)
	a, b := New(prog, 9), New(prog, 9)
	for i := 0; i < 5000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("walkers diverged at instruction %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestWalkerProgress(t *testing.T) {
	// The walk must keep visiting distinct lines — no seed may trap it in
	// a tiny loop forever (a historical failure mode of random CFGs).
	prog := testProgram(2)
	for seed := uint64(0); seed < 8; seed++ {
		w := New(prog, seed)
		lines := map[isa.Addr]struct{}{}
		for i := 0; i < 50000; i++ {
			lines[w.Next().PC.Line()] = struct{}{}
		}
		if len(lines) < 50 {
			t.Fatalf("seed %d: walk visited only %d distinct lines in 50K instructions", seed, len(lines))
		}
	}
}

func TestWalkerPathConsistency(t *testing.T) {
	// Each instruction's NextPC must equal the next instruction's PC.
	prog := testProgram(3)
	w := New(prog, 4)
	prev := w.Next()
	for i := 0; i < 20000; i++ {
		cur := w.Next()
		if prev.NextPC() != cur.PC {
			t.Fatalf("discontinuity at %d: %v(next %v) then %v", i, prev.PC, prev.NextPC(), cur.PC)
		}
		prev = cur
	}
}

func TestWalkerDepthBounded(t *testing.T) {
	prog := testProgram(4)
	w := New(prog, 5)
	for i := 0; i < 50000; i++ {
		w.Next()
		if w.Depth() > maxCallDepth {
			t.Fatalf("call depth %d exceeds cap %d", w.Depth(), maxCallDepth)
		}
	}
}

func TestCallsAreBalancedByLayers(t *testing.T) {
	// With the layered DAG, depth must stay small (≤ layers + margin for
	// dispatch frames), far below the cap.
	prog := testProgram(5)
	w := New(prog, 6)
	maxDepth := 0
	for i := 0; i < 50000; i++ {
		w.Next()
		if d := w.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth > cfg.MaxLayer+2 {
		t.Fatalf("max depth %d exceeds layer bound %d", maxDepth, cfg.MaxLayer+2)
	}
}

func TestForkDoesNotDisturbParent(t *testing.T) {
	prog := testProgram(6)
	w := New(prog, 7)
	ref := New(prog, 7)
	for i := 0; i < 1000; i++ {
		w.Next()
		ref.Next()
	}
	f := w.Fork(prog.Blocks[10].Addr)
	for i := 0; i < 500; i++ {
		f.Next()
	}
	for i := 0; i < 1000; i++ {
		if w.Next() != ref.Next() {
			t.Fatalf("fork disturbed the parent at instruction %d", i)
		}
	}
}

func TestForkCarriesStack(t *testing.T) {
	prog := testProgram(7)
	w := New(prog, 8)
	for i := 0; i < 2000 && w.Depth() == 0; i++ {
		w.Next()
	}
	if w.Depth() == 0 {
		t.Skip("walk never entered a call in 2000 instructions")
	}
	f := w.Fork(prog.Blocks[3].Addr)
	if f.Depth() != w.Depth() {
		t.Fatalf("fork depth %d != parent depth %d", f.Depth(), w.Depth())
	}
}

func TestForkLostMode(t *testing.T) {
	prog := testProgram(8)
	w := New(prog, 9)
	// Fork at an address far outside the program: the walker must produce
	// a linear stream of plain instructions, not crash.
	f := w.Fork(0x10_0000_0000)
	prev := f.Next()
	for i := 0; i < 100; i++ {
		cur := f.Next()
		if cur.Kind != isa.NotBranch && prev.Kind != isa.NotBranch {
			break // stumbled back into real code, fine
		}
		prev = cur
	}
}

func TestForkMidInstruction(t *testing.T) {
	prog := testProgram(9)
	blk := &prog.Blocks[20]
	if blk.NumInsts() < 2 {
		t.Skip("block too small")
	}
	// Target one byte into the second instruction: the walker must snap
	// to the containing instruction boundary.
	target := blk.Addr + isa.Addr(blk.InstSizes[0]) + 1
	f := New(prog, 1).Fork(target)
	in := f.Next()
	if in.PC != blk.Addr+isa.Addr(blk.InstSizes[0]) {
		t.Fatalf("mid-instruction fork produced PC %v", in.PC)
	}
}

func TestDispatchEntersHandlers(t *testing.T) {
	prog := testProgram(10)
	w := New(prog, 11)
	sawDispatch := false
	for i := 0; i < 50000; i++ {
		in := w.Next()
		if in.Kind == isa.IndirectCall {
			blk := prog.BlockAt(in.PC)
			if blk != nil && blk.Term.Dispatch {
				sawDispatch = true
				tgt := prog.BlockAt(in.Target)
				if tgt == nil {
					t.Fatal("dispatch target outside program")
				}
				fn := prog.Funcs[tgt.Func]
				if fn.Layer != 0 || fn.ID == 0 {
					t.Fatalf("dispatch went to func %d (layer %d)", fn.ID, fn.Layer)
				}
			}
		}
	}
	if !sawDispatch {
		t.Fatal("no dispatch executed in 50K instructions")
	}
}

func TestLoopTripsAreDeterministic(t *testing.T) {
	// A loop back-edge must be taken trip-1 times then fall through, each
	// time the loop is entered — the pattern TAGE learns.
	prog := testProgram(11)
	var loopBlock *cfg.Block
	for i := range prog.Blocks {
		if prog.Blocks[i].Term.LoopTrip > 1 {
			loopBlock = &prog.Blocks[i]
			break
		}
	}
	if loopBlock == nil {
		t.Skip("no loop in program")
	}
	w := New(prog, 12)
	taken, seen := 0, 0
	for i := 0; i < 2000000 && seen < 3*loopBlock.Term.LoopTrip; i++ {
		in := w.Next()
		if in.PC == loopBlock.LastPC() && in.Kind == isa.CondDirect {
			seen++
			if in.Taken {
				taken++
			}
		}
	}
	if seen == 0 {
		t.Skip("walk never reached the loop")
	}
	wantTakenFrac := float64(loopBlock.Term.LoopTrip-1) / float64(loopBlock.Term.LoopTrip)
	gotFrac := float64(taken) / float64(seen)
	if gotFrac < wantTakenFrac-0.35 || gotFrac > wantTakenFrac+0.35 {
		t.Fatalf("loop taken fraction %.2f far from expected %.2f (%d/%d)", gotFrac, wantTakenFrac, taken, seen)
	}
}

func TestCount(t *testing.T) {
	prog := testProgram(12)
	w := New(prog, 13)
	for i := 0; i < 123; i++ {
		w.Next()
	}
	if w.Count() != 123 {
		t.Fatalf("Count = %d, want 123", w.Count())
	}
}
