// Package trace turns a static synthetic program (package cfg) into dynamic
// instruction streams.
//
// Two kinds of walkers exist:
//
//   - The oracle walker produces the committed (architecturally correct)
//     path: a seeded random walk over the CFG honouring branch biases,
//     deterministic loop trip counts, call/return semantics, and indirect
//     target selection. The core simulator compares BPU predictions against
//     this stream to detect mispredicts.
//
//   - A wrong-path walker is forked at a mispredicted target and produces
//     the speculative path the front-end actually fetches until the resteer:
//     it walks the CFG from an arbitrary address with its own RNG and an
//     empty call stack, degrading to a linear byte stream if the address
//     lands outside any block (e.g. alignment padding), exactly like a real
//     front-end chasing a bogus target.
package trace

import (
	"pdip/internal/cfg"
	"pdip/internal/isa"
	"pdip/internal/rng"
)

// maxCallDepth bounds the simulated call stack: calls at the cap bounce off
// the callee's return block (see capCall), so runaway recursion unwinds
// instead of trapping the walk. The cap is kept below the RAS depth (32):
// real server code rarely overflows the RAS, and an overflowing cap would
// otherwise turn every deep unwind into a burst of return mispredicts that
// dominates the resteer mix.
const maxCallDepth = 28

// Walker produces a dynamic instruction stream over a program.
type Walker struct {
	prog *cfg.Program
	r    *rng.RNG

	// stack holds return addresses for calls.
	stack []isa.Addr
	// loopCnt tracks per-block loop-iteration counters (indexed by block
	// ID) so loop back-edges have deterministic, learnable trip counts.
	loopCnt []uint16

	// cur is the current block, nil when "lost" (walking addresses that
	// belong to no block, only possible on wrong paths).
	cur *cfg.Block
	// instIdx is the index of the next instruction within cur.
	instIdx int
	// lostPC is the next PC when lost.
	lostPC isa.Addr

	// wrongPath marks forked walkers (affects empty-stack return policy:
	// a lost wrong path re-enters code at a pseudo-random function).
	wrongPath bool

	// dispatchCenter is the slowly drifting function index around which
	// top-level dispatch (empty-stack returns) lands — the walk's phase
	// center. Drift and occasional jumps model request-type locality.
	dispatchCenter int

	// count is the number of instructions produced.
	count uint64
}

// New returns an oracle walker starting at the program entry.
func New(prog *cfg.Program, seed uint64) *Walker {
	w := &Walker{
		prog:    prog,
		r:       rng.New(seed),
		loopCnt: make([]uint16, len(prog.Blocks)),
	}
	w.cur = &prog.Blocks[prog.Entry]
	return w
}

// Fork creates a wrong-path walker positioned at pc. The fork has its own
// RNG (salted by pc) and a copy of the parent's call stack — the hardware
// front-end speculates through returns with the real RAS, so a wrong path
// that reaches a return rejoins the correct caller. The parent is
// unaffected.
func (w *Walker) Fork(pc isa.Addr) *Walker {
	// Forks carry no loop counters (loopCnt nil): loop back-edges are
	// sampled probabilistically instead. Wrong paths are short-lived, and
	// this avoids allocating a per-block array on every mispredict.
	//lint:ignore allocfree cold fork path: ForkInto reuses dst storage; fresh fork on first mispredict only
	f := &Walker{
		prog:           w.prog,
		r:              w.r.Fork(uint64(pc)),
		stack:          append([]isa.Addr(nil), w.stack...),
		dispatchCenter: w.dispatchCenter,
		wrongPath:      true,
	}
	f.jumpTo(pc)
	return f
}

// ForkInto behaves exactly like Fork but reuses dst's storage (call-stack
// backing and RNG) when dst is non-nil, so the front-end can recycle one
// wrong-path walker across mispredicts instead of allocating per fork. The
// produced instruction stream is identical to Fork's.
func (w *Walker) ForkInto(dst *Walker, pc isa.Addr) *Walker {
	if dst == nil || dst == w {
		return w.Fork(pc)
	}
	r := w.r.ForkInto(dst.r, uint64(pc))
	stack := append(dst.stack[:0], w.stack...)
	*dst = Walker{
		prog:           w.prog,
		r:              r,
		stack:          stack,
		dispatchCenter: w.dispatchCenter,
		wrongPath:      true,
	}
	dst.jumpTo(pc)
	return dst
}

// Count returns the number of instructions produced so far.
func (w *Walker) Count() uint64 { return w.count }

// Depth returns the current call-stack depth.
func (w *Walker) Depth() int { return len(w.stack) }

// jumpTo repositions the walker at pc, resolving the containing block and
// instruction index, or entering lost mode.
func (w *Walker) jumpTo(pc isa.Addr) {
	blk := w.prog.BlockAt(pc)
	if blk == nil {
		w.cur = nil
		w.lostPC = pc
		return
	}
	// Locate the instruction boundary containing pc. Wrong-path targets
	// may land mid-instruction; snap to the containing instruction.
	a := blk.Addr
	for i, sz := range blk.InstSizes {
		next := a + isa.Addr(sz)
		if pc < next {
			w.cur = blk
			w.instIdx = i
			return
		}
		a = next
	}
	// pc == blk.End() cannot happen (BlockAt checked), but be safe.
	w.cur = blk
	w.instIdx = len(blk.InstSizes) - 1
}

// Next produces the next instruction on this walker's path, including its
// actual control-flow outcome, and advances past it.
func (w *Walker) Next() isa.Inst {
	w.count++
	if w.cur == nil {
		in := isa.Inst{PC: w.lostPC, Size: 4, Kind: isa.NotBranch}
		w.lostPC += 4
		// A lost wrong path may stumble back into real code.
		if blk := w.prog.BlockAt(w.lostPC); blk != nil {
			w.jumpTo(w.lostPC)
		}
		return in
	}

	blk := w.cur
	pc := blk.Addr
	for i := 0; i < w.instIdx; i++ {
		pc += isa.Addr(blk.InstSizes[i])
	}
	size := blk.InstSizes[w.instIdx]
	lastInst := w.instIdx == blk.NumInsts()-1

	if !lastInst || blk.Term.Kind == isa.NotBranch {
		in := isa.Inst{PC: pc, Size: size, Kind: isa.NotBranch}
		if lastInst {
			w.advanceFallThrough(blk)
		} else {
			w.instIdx++
		}
		return in
	}

	// Terminator instruction: sample the actual outcome.
	in := isa.Inst{PC: pc, Size: size, Kind: blk.Term.Kind}
	switch blk.Term.Kind {
	case isa.CondDirect:
		if blk.Term.LoopTrip > 0 {
			if w.loopCnt == nil {
				// Wrong-path fork: sample the steady-state taken rate.
				t := float64(blk.Term.LoopTrip)
				in.Taken = w.r.Bool((t - 1) / t)
			} else if cnt := w.loopCnt[blk.ID]; int(cnt)+1 < blk.Term.LoopTrip {
				in.Taken = true
				w.loopCnt[blk.ID] = cnt + 1
			} else {
				in.Taken = false
				w.loopCnt[blk.ID] = 0
			}
		} else {
			in.Taken = w.r.Bool(blk.Term.TakenProb)
		}
		if in.Taken {
			in.Target = w.prog.Blocks[blk.Term.TakenBlock].Addr
			w.gotoBlock(blk.Term.TakenBlock)
		} else {
			in.Target = w.prog.Blocks[blk.Term.TakenBlock].Addr
			w.advanceFallThrough(blk)
		}
	case isa.UncondDirect:
		in.Taken = true
		in.Target = w.prog.Blocks[blk.Term.TakenBlock].Addr
		w.gotoBlock(blk.Term.TakenBlock)
	case isa.DirectCall:
		in.Taken = true
		tgt := w.capCall(blk.Term.TakenBlock)
		in.Target = w.prog.Blocks[tgt].Addr
		w.pushRet(in.FallThrough())
		w.gotoBlock(tgt)
	case isa.IndirectJump:
		in.Taken = true
		tgt := w.pickIndirect(blk.Term.IndTargets)
		in.Target = w.prog.Blocks[tgt].Addr
		w.gotoBlock(tgt)
	case isa.IndirectCall:
		in.Taken = true
		var tgt int
		if blk.Term.Dispatch {
			// Driver loop: dispatch to the next request handler.
			tgt = w.prog.Funcs[w.dispatchFunc()].FirstBlock
		} else {
			tgt = w.capCall(w.pickIndirect(blk.Term.IndTargets))
		}
		in.Target = w.prog.Blocks[tgt].Addr
		w.pushRet(in.FallThrough())
		w.gotoBlock(tgt)
	case isa.Return:
		in.Taken = true
		in.Target = w.popRet()
		w.jumpTo(in.Target)
	}
	return in
}

// pickIndirect samples an indirect target: the dominant first target with
// probability IndirectBias, else uniform over the rest (skewed receiver
// distributions are what make indirect branches ITTAGE-predictable).
func (w *Walker) pickIndirect(targets []int) int {
	bias := w.prog.Params.IndirectBias
	if len(targets) == 1 || w.r.Bool(bias) {
		return targets[0]
	}
	return targets[1+w.r.Intn(len(targets)-1)]
}

func (w *Walker) pushRet(addr isa.Addr) {
	if len(w.stack) >= maxCallDepth {
		return // tail-call: deepest frames share the caller's return
	}
	w.stack = append(w.stack, addr)
}

// capCall redirects a call at the depth cap to the callee's return block,
// so runaway recursion (e.g. a mutual-recursion cycle of entry blocks)
// bounces and unwinds instead of trapping the walk forever.
func (w *Walker) capCall(calleeEntry int) int {
	if len(w.stack) < maxCallDepth {
		return calleeEntry
	}
	fn := w.prog.Funcs[w.prog.Blocks[calleeEntry].Func]
	return fn.FirstBlock + fn.NumBlocks - 1
}

// popRet pops a return address; with an empty stack (only possible on
// wrong paths that over-unwind) the walk falls back to the driver loop.
func (w *Walker) popRet() isa.Addr {
	if n := len(w.stack); n > 0 {
		addr := w.stack[n-1]
		w.stack = w.stack[:n-1]
		return addr
	}
	return w.prog.Blocks[w.prog.Entry].Addr
}

// dispatchFunc selects a function for top-level dispatch. The center
// drifts a few indices per dispatch and occasionally jumps to a random
// (hot-weighted) function, so the walk's active region — the union of the
// dispatch neighbourhood and the local call subtrees hanging off it —
// moves slowly across the footprint.
func (w *Walker) dispatchFunc() int {
	p := w.prog.Params
	n := len(w.prog.Funcs)
	// Zipf-like request mix: most dispatches go to the hot handler set.
	if hot := w.prog.HotHandlers(); len(hot) > 0 && w.r.Bool(p.DispatchHotFrac) {
		return hot[w.r.Intn(len(hot))]
	}
	if w.r.Bool(p.DispatchJump) {
		w.dispatchCenter = w.prog.PickGlobalFunc(w.r)
	} else if d := p.DispatchDrift; d > 0 {
		w.dispatchCenter += w.r.Intn(2*d+1) - d
	}
	// Wrap the center toroidally so drift never sticks at a boundary.
	w.dispatchCenter = ((w.dispatchCenter % n) + n) % n
	noise := p.DispatchNoise
	if noise < 1 {
		noise = 1
	}
	f := w.dispatchCenter + w.r.Intn(2*noise+1) - noise
	f = ((f % n) + n) % n
	// Dispatch always enters a request handler (call-graph layer 0),
	// never the driver itself (function 0).
	if c := w.prog.SnapToLayer(f, 0); c > 0 {
		return c
	}
	if c := w.prog.SnapToLayer(16, 0); c > 0 {
		return c
	}
	return f
}

func (w *Walker) gotoBlock(id int) {
	w.cur = &w.prog.Blocks[id]
	w.instIdx = 0
}

// advanceFallThrough moves to the next sequential block; at the end of the
// program it wraps to the entry (cannot happen in generated programs, whose
// final block returns).
func (w *Walker) advanceFallThrough(blk *cfg.Block) {
	next := blk.ID + 1
	if next >= len(w.prog.Blocks) {
		next = w.prog.Entry
	}
	w.gotoBlock(next)
}
