package trace

import (
	"fmt"

	"pdip/internal/cfg"
	"pdip/internal/checkpoint"
	"pdip/internal/isa"
	"pdip/internal/rng"
)

// CaptureCheckpoint captures the walker's position and stream state. The
// program is reconstruction input, not state: the current block is stored
// by ID (-1 when the walker is lost outside any block, and also for a nil
// LoopCnt — wrong-path forks carry no loop counters).
func (w *Walker) CaptureCheckpoint() checkpoint.WalkerState {
	st := checkpoint.WalkerState{
		Rng:            w.r.State(),
		Stack:          append([]isa.Addr(nil), w.stack...),
		CurBlock:       -1,
		InstIdx:        w.instIdx,
		LostPC:         w.lostPC,
		WrongPath:      w.wrongPath,
		DispatchCenter: w.dispatchCenter,
		Count:          w.count,
	}
	if w.loopCnt != nil {
		st.LoopCnt = append([]uint16(nil), w.loopCnt...)
	}
	if w.cur != nil {
		st.CurBlock = w.cur.ID
	}
	return st
}

// RestoreCheckpoint overwrites the walker's position and stream state
// from a captured state, keeping its program. Slices from st are copied,
// never aliased.
func (w *Walker) RestoreCheckpoint(st checkpoint.WalkerState) error {
	if st.CurBlock >= len(w.prog.Blocks) {
		return fmt.Errorf("trace: checkpoint block %d out of range (program has %d blocks)", st.CurBlock, len(w.prog.Blocks))
	}
	if st.LoopCnt != nil && len(st.LoopCnt) != len(w.prog.Blocks) {
		return fmt.Errorf("trace: checkpoint has %d loop counters, program has %d blocks", len(st.LoopCnt), len(w.prog.Blocks))
	}
	w.r.SetState(st.Rng)
	w.stack = append(w.stack[:0], st.Stack...)
	if st.LoopCnt == nil {
		w.loopCnt = nil
	} else {
		if w.loopCnt == nil {
			w.loopCnt = make([]uint16, len(st.LoopCnt))
		}
		copy(w.loopCnt, st.LoopCnt)
	}
	if st.CurBlock >= 0 {
		w.cur = &w.prog.Blocks[st.CurBlock]
	} else {
		w.cur = nil
	}
	w.instIdx = st.InstIdx
	w.lostPC = st.LostPC
	w.wrongPath = st.WrongPath
	w.dispatchCenter = st.DispatchCenter
	w.count = st.Count
	return nil
}

// NewFromCheckpoint builds a walker over prog positioned at a captured
// state (used for wrong-path walkers, which have no constructor taking a
// seed).
func NewFromCheckpoint(prog *cfg.Program, st checkpoint.WalkerState) (*Walker, error) {
	w := &Walker{prog: prog, r: rng.New(0)}
	if err := w.RestoreCheckpoint(st); err != nil {
		return nil, err
	}
	return w, nil
}
