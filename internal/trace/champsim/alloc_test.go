package champsim

import (
	"path/filepath"
	"testing"

	"pdip/internal/isa"
)

// TestDecoderSteadyStateAllocs holds the streaming contract: replaying a
// multi-MB trace allocates nothing per instruction once the reader's
// chunk buffer exists — the trace is never materialized, and the PR-4
// zero-alloc steady state survives the trace front-end. (Gzipped traces
// pay gzip's internal state on rewind; the bound is on the raw path,
// which is what the alloc-sensitive benchmarks use.)
func TestDecoderSteadyStateAllocs(t *testing.T) {
	prog, seed := kafkaProgram(t)
	path := filepath.Join(t.TempDir(), "big.champsim")
	const n = 100_000 // 6.4 MB on disk
	recordWalker(t, path, prog, seed, n)

	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Warm past priming and the first chunk fills.
	for i := 0; i < 5000; i++ {
		src.Next()
	}
	var sink uint64
	avg := testing.AllocsPerRun(50, func() {
		// Each run crosses multiple chunk boundaries (and, across runs,
		// the end-of-trace wrap), so chunk refill and rewind are inside
		// the measured window.
		for i := 0; i < 5000; i++ {
			sink += uint64(src.Next().PC)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state decode allocates %.1f objects per 5000 instructions, want 0", avg)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	_ = sink
}

// TestWrongPathAllocs extends the bound to derived wrong paths: forking
// with a recycled adapter and walking it must not allocate either.
func TestWrongPathAllocs(t *testing.T) {
	prog, seed := kafkaProgram(t)
	path := filepath.Join(t.TempDir(), "big.champsim")
	recordWalker(t, path, prog, seed, 50_000)

	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var pc uint64
	for i := 0; i < 10_000; i++ {
		pc = uint64(src.Next().PC)
	}
	// First fork allocates the adapter; recycled ones must not.
	free := src.ForkWrong(nil, 0)
	var sink uint64
	avg := testing.AllocsPerRun(50, func() {
		w := src.ForkWrong(free, isa.Addr(pc))
		for i := 0; i < 64; i++ {
			sink += uint64(w.Next().PC)
		}
		free = w
	})
	if avg != 0 {
		t.Fatalf("wrong-path fork allocates %.1f objects, want 0", avg)
	}
	_ = sink
}
