// Package champsim reads and writes ChampSim instruction traces and
// adapts them onto the simulator's instruction-source interface, so the
// front-end can be driven by the traces the paper's competitive landscape
// (FDIP-Revisited, MANA, the DPC-3 prefetchers) is evaluated on.
//
// The on-disk format is ChampSim's input_instr: fixed 64-byte
// little-endian records with no header and no explicit branch metadata —
// branch *type* is reconstructed from the architectural registers each
// instruction reads and writes (the same predicate chain ChampSim's
// tracereader uses), the branch *target* is the next record's IP, and the
// instruction size is the IP delta to the fall-through. Records written
// by this package additionally stash the instruction size in the unused
// last source-memory slot (tagged with a magic so foreign traces are
// unaffected), which lets taken-branch sizes survive a round trip.
package champsim

import (
	"encoding/binary"
	"fmt"

	"pdip/internal/isa"
)

// RecordSize is the fixed on-disk size of one input_instr record.
const RecordSize = 64

// ChampSim's x86 architectural register conventions (tracer/champsim.h).
const (
	regSP    = 6  // REG_STACK_POINTER
	regFlags = 25 // REG_FLAGS
	regIP    = 26 // REG_INSTRUCTION_POINTER
)

// regOther is an arbitrary general-purpose register (≠ SP/FLAGS/IP) used
// when encoding indirect branches, whose classification requires reading
// a non-special register.
const regOther = 3

// sizeMagic tags SrcMem[3] as carrying the instruction size in its low
// nibble. ChampSim ignores trailing zero slots and treats any non-zero
// entry as a data address; real data addresses live far from this value,
// and the simulator's replay never materializes data operands from the
// trace anyway (the data stream is drawn from the workload profile).
const sizeMagic = uint64(0xC0DE517E) << 32

// Record is one decoded input_instr record.
type Record struct {
	IP          uint64
	IsBranch    uint8
	BranchTaken uint8
	DestRegs    [2]uint8
	SrcRegs     [4]uint8
	DestMem     [2]uint64
	SrcMem      [4]uint64
}

// decodeInto parses a full 64-byte record from b. The caller guarantees
// len(b) >= RecordSize.
func decodeInto(rec *Record, b []byte) {
	rec.IP = binary.LittleEndian.Uint64(b[0:8])
	rec.IsBranch = b[8]
	rec.BranchTaken = b[9]
	rec.DestRegs[0] = b[10]
	rec.DestRegs[1] = b[11]
	rec.SrcRegs[0] = b[12]
	rec.SrcRegs[1] = b[13]
	rec.SrcRegs[2] = b[14]
	rec.SrcRegs[3] = b[15]
	rec.DestMem[0] = binary.LittleEndian.Uint64(b[16:24])
	rec.DestMem[1] = binary.LittleEndian.Uint64(b[24:32])
	rec.SrcMem[0] = binary.LittleEndian.Uint64(b[32:40])
	rec.SrcMem[1] = binary.LittleEndian.Uint64(b[40:48])
	rec.SrcMem[2] = binary.LittleEndian.Uint64(b[48:56])
	rec.SrcMem[3] = binary.LittleEndian.Uint64(b[56:64])
}

// DecodeRecord parses one record from the front of b.
func DecodeRecord(b []byte) (Record, error) {
	var rec Record
	if len(b) < RecordSize {
		return rec, fmt.Errorf("champsim: short record: %d bytes, need %d", len(b), RecordSize)
	}
	decodeInto(&rec, b)
	return rec, nil
}

// Encode serializes the record into b. The caller guarantees
// len(b) >= RecordSize.
func (rec *Record) Encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:8], rec.IP)
	b[8] = rec.IsBranch
	b[9] = rec.BranchTaken
	b[10] = rec.DestRegs[0]
	b[11] = rec.DestRegs[1]
	b[12] = rec.SrcRegs[0]
	b[13] = rec.SrcRegs[1]
	b[14] = rec.SrcRegs[2]
	b[15] = rec.SrcRegs[3]
	binary.LittleEndian.PutUint64(b[16:24], rec.DestMem[0])
	binary.LittleEndian.PutUint64(b[24:32], rec.DestMem[1])
	binary.LittleEndian.PutUint64(b[32:40], rec.SrcMem[0])
	binary.LittleEndian.PutUint64(b[40:48], rec.SrcMem[1])
	binary.LittleEndian.PutUint64(b[48:56], rec.SrcMem[2])
	binary.LittleEndian.PutUint64(b[56:64], rec.SrcMem[3])
}

// regUse summarises which special registers a slot set touches.
func regUse(regs []uint8) (sp, flags, ip, other bool) {
	for _, r := range regs {
		switch r {
		case 0:
			// empty slot
		case regSP:
			sp = true
		case regFlags:
			flags = true
		case regIP:
			ip = true
		default:
			other = true
		}
	}
	return
}

// Kind reconstructs the branch kind from the record's register uses,
// following ChampSim's tracereader predicate chain in its exact order (so
// records encoded by this package and by ChampSim's Pin tool classify
// identically).
func (rec *Record) Kind() isa.BranchKind {
	readsSP, readsFlags, readsIP, readsOther := regUse(rec.SrcRegs[:])
	writesSP, _, writesIP, _ := regUse(rec.DestRegs[:])
	switch {
	case writesIP && !readsSP && !readsFlags && !readsOther:
		return isa.UncondDirect
	case writesIP && !readsSP && !readsFlags && readsOther:
		return isa.IndirectJump
	case !readsSP && readsIP && !writesSP && writesIP && readsFlags && !readsOther:
		return isa.CondDirect
	case readsSP && readsIP && writesSP && writesIP && !readsFlags && !readsOther:
		return isa.DirectCall
	case readsSP && readsIP && writesSP && writesIP && !readsFlags && readsOther:
		return isa.IndirectCall
	case readsSP && !readsIP && writesSP && writesIP:
		return isa.Return
	case writesIP:
		// ChampSim's BRANCH_OTHER: unclassifiable control flow; treat as
		// an indirect jump (always taken, target from the stream).
		return isa.IndirectJump
	default:
		return isa.NotBranch
	}
}

// size recovers the instruction's byte size: the recorder's magic slot
// when present, else the fall-through IP delta (valid when the
// instruction did not jump away), else the x86 average of 4.
func (rec *Record) size(taken bool, nextIP uint64) uint8 {
	if rec.SrcMem[3]&^uint64(0xF) == sizeMagic {
		if sz := rec.SrcMem[3] & 0xF; sz != 0 {
			return uint8(sz)
		}
	}
	if !taken {
		if d := nextIP - rec.IP; d >= 1 && d <= 15 {
			return uint8(d)
		}
	}
	return 4
}

// inst converts the record into an architectural instruction with its
// actual outcome, given the IP of the next record in the stream (the
// taken-branch target).
func (rec *Record) inst(nextIP isa.Addr) isa.Inst {
	kind := rec.Kind()
	taken := false
	switch kind {
	case isa.NotBranch:
	case isa.CondDirect:
		taken = rec.BranchTaken != 0
	default:
		taken = true
	}
	in := isa.Inst{
		PC:    isa.Addr(rec.IP),
		Size:  rec.size(taken, uint64(nextIP)),
		Kind:  kind,
		Taken: taken,
	}
	if taken {
		in.Target = nextIP
	}
	return in
}

// encodeInst fills the record for an architectural instruction: register
// slots chosen so Kind() round-trips, size stashed in the magic slot.
// Targets are not stored — ChampSim traces carry them implicitly as the
// next record's IP.
func encodeInst(rec *Record, in isa.Inst) {
	*rec = Record{IP: uint64(in.PC)}
	rec.SrcMem[3] = sizeMagic | uint64(in.Size&0xF)
	if in.Kind == isa.NotBranch {
		return
	}
	rec.IsBranch = 1
	if in.Taken {
		rec.BranchTaken = 1
	}
	switch in.Kind {
	case isa.CondDirect:
		rec.DestRegs = [2]uint8{regIP, 0}
		rec.SrcRegs = [4]uint8{regIP, regFlags, 0, 0}
	case isa.UncondDirect:
		rec.DestRegs = [2]uint8{regIP, 0}
		rec.SrcRegs = [4]uint8{regIP, 0, 0, 0}
	case isa.DirectCall:
		rec.DestRegs = [2]uint8{regIP, regSP}
		rec.SrcRegs = [4]uint8{regIP, regSP, 0, 0}
	case isa.IndirectJump:
		rec.DestRegs = [2]uint8{regIP, 0}
		rec.SrcRegs = [4]uint8{regOther, 0, 0, 0}
	case isa.IndirectCall:
		rec.DestRegs = [2]uint8{regIP, regSP}
		rec.SrcRegs = [4]uint8{regIP, regSP, regOther, 0}
	case isa.Return:
		rec.DestRegs = [2]uint8{regIP, regSP}
		rec.SrcRegs = [4]uint8{regSP, 0, 0, 0}
	}
}
