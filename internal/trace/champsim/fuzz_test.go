package champsim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pdip/internal/isa"
)

// FuzzChampSimDecode throws arbitrary bytes at the whole ingestion path:
// framing validation at open, record decoding, instruction
// reconstruction, and derived wrong-path fetch. Truncated, corrupted, and
// adversarially-sized inputs must come back as errors (or decode to
// *some* bounded instruction stream) — never a panic, never an over-read,
// never unbounded memory.
func FuzzChampSimDecode(f *testing.F) {
	// Seed with a genuine recorded mini-trace so the fuzzer starts from
	// structurally valid records (plus classic framing edge cases).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pcs := []isa.Inst{
		{PC: 0x1000, Size: 4},
		{PC: 0x1004, Size: 2, Kind: isa.CondDirect, Taken: true, Target: 0x2000},
		{PC: 0x2000, Size: 5, Kind: isa.DirectCall, Taken: true, Target: 0x3000},
		{PC: 0x3000, Size: 1, Kind: isa.Return, Taken: true, Target: 0x2005},
		{PC: 0x2005, Size: 4, Kind: isa.IndirectJump, Taken: true, Target: 0x1000},
	}
	for _, in := range pcs {
		if err := w.WriteInst(in); err != nil {
			f.Fatal(err)
		}
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-1])                       // truncated final record
	f.Add(full[:RecordSize])                        // single record
	f.Add([]byte{})                                 // empty trace
	f.Add(bytes.Repeat([]byte{0xFF}, 3*RecordSize)) // all-ones records

	f.Fuzz(func(t *testing.T, data []byte) {
		// The record codec itself must bound-check.
		if rec, err := DecodeRecord(data); err == nil {
			_ = rec.inst(isa.Addr(rec.IP) + 4)
		}

		path := filepath.Join(t.TempDir(), "fuzz.champsim")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		src, err := Open(path)
		if err != nil {
			// Malformed framing must be rejected at open.
			if len(data) > 0 && len(data)%RecordSize == 0 {
				t.Fatalf("well-framed %d-byte trace rejected: %v", len(data), err)
			}
			return
		}
		defer src.Close()
		// A decodable trace must stream (wrapping as needed) without
		// panicking or latching stream faults, whatever its contents.
		var wrong isa.Inst
		for i := 0; i < 512; i++ {
			in := src.Next()
			if i == 256 {
				// Exercise the derived wrong path from a mid-stream PC.
				w := src.ForkWrong(nil, in.PC)
				for j := 0; j < 64; j++ {
					wrong = w.Next()
				}
			}
		}
		_ = wrong
		if err := src.Err(); err != nil {
			t.Fatalf("valid framing latched a stream fault: %v", err)
		}
		// Checkpoint capture/restore must hold for arbitrary contents too.
		st := src.CaptureSource()
		re, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if err := re.RestoreSource(st); err != nil {
			t.Fatalf("restore of a live capture failed: %v", err)
		}
		for i := 0; i < 64; i++ {
			a, b := src.Next(), re.Next()
			if a != b {
				t.Fatalf("restored source diverged at %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
