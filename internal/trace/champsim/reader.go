package champsim

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// chunkRecords is how many records a reader buffers per file read: 64 KiB
// chunks amortize syscall (and gzip inflate) cost while keeping the
// resident footprint constant — the trace is never materialized whole.
const chunkRecords = 1024

// Reader streams records from a ChampSim trace file (raw or gzipped, by
// ".gz" suffix), wrapping to the beginning when the trace runs out so a
// short trace can drive an arbitrarily long run — ChampSim's own repeat
// behaviour. All steady-state reads go through one preallocated chunk
// buffer: after Open, Next allocates nothing on raw traces.
type Reader struct {
	path string
	f    *os.File
	zr   *gzip.Reader
	gz   bool

	// buf is the chunk buffer; pos/n delimit the unconsumed window.
	buf []byte
	pos int
	n   int

	// recInPass counts records consumed since the last rewind,
	// passRecords the total per pass, wraps the completed passes.
	recInPass   uint64
	passRecords uint64
	wraps       uint64
}

// OpenReader opens a trace file and validates its framing: the byte
// length must be a non-zero multiple of the record size (gzipped traces
// pay one counting pass at open to establish it).
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		path: path,
		f:    f,
		gz:   strings.HasSuffix(path, ".gz"),
		buf:  make([]byte, chunkRecords*RecordSize),
	}
	if r.gz {
		if r.zr, err = gzip.NewReader(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("champsim: %s: %w", path, err)
		}
		var total uint64
		for {
			n, err := r.zr.Read(r.buf)
			total += uint64(n)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("champsim: %s: %w", path, err)
			}
		}
		if total%RecordSize != 0 {
			f.Close()
			return nil, fmt.Errorf("champsim: %s: %d bytes is not a whole number of %d-byte records", path, total, RecordSize)
		}
		r.passRecords = total / RecordSize
	} else {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if st.Size()%RecordSize != 0 {
			f.Close()
			return nil, fmt.Errorf("champsim: %s: %d bytes is not a whole number of %d-byte records", path, st.Size(), RecordSize)
		}
		r.passRecords = uint64(st.Size()) / RecordSize
	}
	if r.passRecords == 0 {
		f.Close()
		return nil, fmt.Errorf("champsim: %s: empty trace", path)
	}
	if err := r.rewind(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// src is the underlying byte stream (inflated for gzipped traces).
func (r *Reader) src() io.Reader {
	if r.gz {
		return r.zr
	}
	return r.f
}

// rewind repositions the stream at record 0.
func (r *Reader) rewind() error {
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		//lint:ignore allocfree error construction on the I/O failure path; replay aborts
		return fmt.Errorf("champsim: %s: %w", r.path, err)
	}
	if r.gz {
		if err := r.zr.Reset(r.f); err != nil {
			//lint:ignore allocfree error construction on the I/O failure path; replay aborts
			return fmt.Errorf("champsim: %s: %w", r.path, err)
		}
	}
	r.pos, r.n = 0, 0
	r.recInPass = 0
	return nil
}

// fill refreshes the chunk window, wrapping to the start of the trace at
// the end of a pass.
func (r *Reader) fill() error {
	if r.recInPass == r.passRecords {
		if err := r.rewind(); err != nil {
			return err
		}
		r.wraps++
	}
	want := r.passRecords - r.recInPass
	if want > chunkRecords {
		want = chunkRecords
	}
	b := r.buf[:want*RecordSize]
	if _, err := io.ReadFull(r.src(), b); err != nil {
		//lint:ignore allocfree error construction on the I/O failure path; replay aborts
		return fmt.Errorf("champsim: %s: record %d: %w", r.path, r.recInPass, err)
	}
	r.pos, r.n = 0, len(b)
	return nil
}

// Next decodes the next record into rec.
func (r *Reader) Next(rec *Record) error {
	if r.pos == r.n {
		if err := r.fill(); err != nil {
			return err
		}
	}
	decodeInto(rec, r.buf[r.pos:r.pos+RecordSize])
	r.pos += RecordSize
	r.recInPass++
	return nil
}

// SeekRecord repositions the stream so the next Next returns record
// abs%Records(). Gzipped traces rewind and discard; raw traces seek.
func (r *Reader) SeekRecord(abs uint64) error {
	target := abs % r.passRecords
	if err := r.rewind(); err != nil {
		return err
	}
	r.wraps = abs / r.passRecords
	if r.gz {
		var rec Record
		for i := uint64(0); i < target; i++ {
			if err := r.Next(&rec); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := r.f.Seek(int64(target)*RecordSize, io.SeekStart); err != nil {
		return fmt.Errorf("champsim: %s: %w", r.path, err)
	}
	r.recInPass = target
	return nil
}

// Records returns the number of records in one pass over the trace.
func (r *Reader) Records() uint64 { return r.passRecords }

// Wraps returns how many times the reader has wrapped to record 0.
func (r *Reader) Wraps() uint64 { return r.wraps }

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.zr != nil {
		r.zr.Close()
	}
	return r.f.Close()
}
