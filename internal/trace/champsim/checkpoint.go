package champsim

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
	"pdip/internal/trace"
)

// CaptureSource implements trace.Source. The trace file itself is
// reconstruction input; what is captured is the stream position
// (Count/Primed — the reader is reseeked on restore), and in standalone
// mode the derived-wrong-path structures (decode cache as a sparse
// slot-sorted table, RAS mirror oldest-first). Differential mode captures
// the shadow walker instead, under the same tagged union.
func (s *Source) CaptureSource() checkpoint.SourceState {
	cs := &checkpoint.ChampSimState{Count: s.count, Primed: s.primed}
	st := checkpoint.SourceState{Kind: checkpoint.SourceChampSim, ChampSim: cs}
	if s.shadow != nil {
		w := s.shadow.CaptureCheckpoint()
		st.Walker = &w
		return st
	}
	for slot := range s.dec.inst {
		if !s.dec.valid[slot] {
			continue
		}
		in := s.dec.inst[slot]
		cs.Decode = append(cs.Decode, checkpoint.ChampSimDecodeEntry{
			Slot:   slot,
			PC:     in.PC,
			Size:   in.Size,
			Kind:   uint8(in.Kind),
			Taken:  in.Taken,
			Target: in.Target,
		})
	}
	cs.RAS = s.ras.entries()
	return st
}

// RestoreSource implements trace.OracleSource: it reseeks the reader to
// the captured stream position (re-reading the lookahead record) and
// overwrites the shadow structures. The source must be over the same
// trace (and, differentially, the same workload) the checkpoint was
// taken from.
func (s *Source) RestoreSource(st checkpoint.SourceState) error {
	if st.Kind != checkpoint.SourceChampSim || st.ChampSim == nil {
		return fmt.Errorf("champsim: cannot restore a %q source into a trace replay", st.Kind)
	}
	cs := st.ChampSim
	if s.shadow != nil {
		if st.Walker == nil {
			return fmt.Errorf("champsim: differential replay checkpoint is missing its shadow walker")
		}
		if err := s.shadow.RestoreCheckpoint(*st.Walker); err != nil {
			return err
		}
	}
	s.dec = decodeCache{}
	for _, e := range cs.Decode {
		if e.Slot < 0 || e.Slot >= len(s.dec.inst) {
			return fmt.Errorf("champsim: checkpoint decode-cache slot %d out of range", e.Slot)
		}
		s.dec.inst[e.Slot] = isa.Inst{
			PC:     e.PC,
			Size:   e.Size,
			Kind:   isa.BranchKind(e.Kind),
			Taken:  e.Taken,
			Target: e.Target,
		}
		s.dec.valid[e.Slot] = true
	}
	s.ras.restore(cs.RAS)
	s.count = cs.Count
	s.primed = false
	s.err = nil
	if cs.Primed {
		// The lookahead record is record #Count (Count instructions were
		// emitted, each consuming one record beyond the priming read).
		if err := s.r.SeekRecord(cs.Count); err != nil {
			return err
		}
		if err := s.r.Next(&s.cur); err != nil {
			return err
		}
		s.primed = true
	} else if err := s.r.SeekRecord(0); err != nil {
		return err
	}
	return nil
}

// RestoreWrong implements trace.OracleSource. Differential wrong paths
// are shadow-walker forks ("cfg" states, delegated); standalone wrong
// paths are rebuilt over this source's decode cache.
func (s *Source) RestoreWrong(st checkpoint.SourceState) (trace.Source, error) {
	if s.shadow != nil {
		return s.shadow.RestoreWrong(st)
	}
	if st.Kind != checkpoint.SourceChampSimWrong || st.ChampSim == nil {
		return nil, fmt.Errorf("champsim: cannot restore a %q wrong path under a standalone trace replay", st.Kind)
	}
	w := &Wrong{src: s, pc: st.ChampSim.PC}
	w.ras.restore(st.ChampSim.RAS)
	return w, nil
}

// CaptureSource implements trace.Source for the derived wrong path: its
// position and RAS copy (the decode cache belongs to the parent source).
func (w *Wrong) CaptureSource() checkpoint.SourceState {
	return checkpoint.SourceState{
		Kind: checkpoint.SourceChampSimWrong,
		ChampSim: &checkpoint.ChampSimState{
			PC:  w.pc,
			RAS: w.ras.entries(),
		},
	}
}
