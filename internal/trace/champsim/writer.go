package champsim

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"
	"strings"

	"pdip/internal/isa"
)

// Writer serializes an instruction stream as a ChampSim trace. One
// fixed scratch record is reused across writes.
type Writer struct {
	w       io.Writer
	f       *os.File
	bw      *bufio.Writer
	zw      *gzip.Writer
	scratch [RecordSize]byte
	rec     Record
	n       uint64
}

// NewWriter writes records to w (no compression, no buffering beyond w's
// own).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Create opens path for writing, gzipping when it ends in ".gz".
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	w.w = w.bw
	if strings.HasSuffix(path, ".gz") {
		w.zw = gzip.NewWriter(w.bw)
		w.w = w.zw
	}
	return w, nil
}

// WriteInst appends one instruction.
func (w *Writer) WriteInst(in isa.Inst) error {
	encodeInst(&w.rec, in)
	w.rec.Encode(w.scratch[:])
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Records returns how many instructions have been written.
func (w *Writer) Records() uint64 { return w.n }

// Close flushes and closes the underlying file (when Create'd).
func (w *Writer) Close() error {
	if w.zw != nil {
		if err := w.zw.Close(); err != nil {
			return err
		}
	}
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			return err
		}
	}
	if w.f != nil {
		return w.f.Close()
	}
	return nil
}
