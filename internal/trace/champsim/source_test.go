package champsim

import (
	"flag"
	"path/filepath"
	"testing"

	"pdip/internal/cfg"
	"pdip/internal/isa"
	"pdip/internal/trace"
	"pdip/internal/workload"
)

// updateSample regenerates the committed sample trace.
var updateSample = flag.Bool("update-sample", false, "regenerate testdata/kafka_10k.champsim.gz")

// harnessSeedSalt mirrors the harness's walker seed derivation
// (buildConfig: prof.CFG.Seed ^ 0x5eed), so the committed sample replays
// bit-identically under `pdipsim -trace`.
const harnessSeedSalt = 0x5eed

const samplePath = "testdata/kafka_10k.champsim.gz"
const sampleRecords = 10_000

func kafkaProgram(t testing.TB) (*cfg.Program, uint64) {
	t.Helper()
	prof, err := workload.ByName("kafka")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := prof.Program()
	if err != nil {
		t.Fatal(err)
	}
	return prog, prof.CFG.Seed ^ harnessSeedSalt
}

// recordWalker writes n oracle instructions to path.
func recordWalker(t testing.TB, path string, prog *cfg.Program, seed uint64, n int) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	walker := trace.New(prog, seed)
	for i := 0; i < n; i++ {
		if err := w.WriteInst(walker.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// sameInst compares a decoded instruction against the synthetic original.
// Not-taken branches never encode a target (ChampSim traces carry targets
// only as the next record's IP), and nothing downstream reads Target when
// !Taken, so it is excluded exactly there.
func sameInst(got, want isa.Inst) bool {
	if got.PC != want.PC || got.Size != want.Size || got.Kind != want.Kind || got.Taken != want.Taken {
		return false
	}
	return !want.Taken || got.Target == want.Target
}

// TestStandaloneStreamEquality records a walker stream and replays it
// standalone: every decoded instruction must match the original.
func TestStandaloneStreamEquality(t *testing.T) {
	prog, seed := kafkaProgram(t)
	path := filepath.Join(t.TempDir(), "kafka.champsim")
	const n = 20_000
	recordWalker(t, path, prog, seed, n)

	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ref := trace.New(prog, seed)
	// The last record's target lookahead wraps to record 0, so compare
	// all but the final instruction.
	for i := 0; i < n-1; i++ {
		got, want := src.Next(), ref.Next()
		if !sameInst(got, want) {
			t.Fatalf("instruction %d: decoded %+v, synthetic %+v", i, got, want)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialMatch replays a recorded trace differentially: the
// cross-check must stay clean against the generating walker and must
// latch a divergence against a different one.
func TestDifferentialMatch(t *testing.T) {
	prog, seed := kafkaProgram(t)
	path := filepath.Join(t.TempDir(), "kafka.champsim")
	const n = 20_000
	recordWalker(t, path, prog, seed, n)

	src, err := OpenDifferential(path, prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		src.Next()
	}
	if err := src.Err(); err != nil {
		t.Fatalf("matching replay diverged: %v", err)
	}
	src.Close()

	// A different seed walks a different path; the cross-check must
	// notice, not silently simulate the wrong stream.
	bad, err := OpenDifferential(path, prog, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	for i := 0; i < 1000 && bad.Err() == nil; i++ {
		bad.Next()
	}
	if bad.Err() == nil {
		t.Fatal("mismatched replay did not latch a divergence")
	}
}

// TestWrongPathDerivation forks the derived wrong path at a committed PC
// and checks it replays cached outcomes deterministically (two forks at
// the same point produce the same stream) and degrades to linear fetch at
// unvisited PCs.
func TestWrongPathDerivation(t *testing.T) {
	prog, seed := kafkaProgram(t)
	path := filepath.Join(t.TempDir(), "kafka.champsim")
	recordWalker(t, path, prog, seed, 20_000)

	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var lastPC isa.Addr
	for i := 0; i < 5000; i++ {
		lastPC = src.Next().PC
	}

	w1 := src.ForkWrong(nil, lastPC)
	var stream []isa.Inst
	for i := 0; i < 200; i++ {
		stream = append(stream, w1.Next())
	}
	w2 := src.ForkWrong(nil, lastPC)
	for i := 0; i < 200; i++ {
		if got := w2.Next(); got != stream[i] {
			t.Fatalf("wrong-path fork %d diverged from its twin: %+v vs %+v", i, got, stream[i])
		}
	}

	// An unvisited PC must fetch linearly, never panic or wander.
	wl := src.ForkWrong(nil, 0x7fff_0000)
	for i := 0; i < 16; i++ {
		in := wl.Next()
		if in.Kind != isa.NotBranch || in.PC != 0x7fff_0000+isa.Addr(4*i) {
			t.Fatalf("linear degradation broken at %d: %+v", i, in)
		}
	}
}

// TestSourceCheckpointRoundTrip captures a standalone source mid-stream
// and restores it into a fresh source over the same file: the two must
// produce identical instructions from there on (including wrong-path
// forks, whose decode cache and RAS mirror ride in the checkpoint).
func TestSourceCheckpointRoundTrip(t *testing.T) {
	prog, seed := kafkaProgram(t)
	path := filepath.Join(t.TempDir(), "kafka.champsim")
	recordWalker(t, path, prog, seed, 20_000)

	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var lastPC isa.Addr
	for i := 0; i < 7000; i++ {
		lastPC = src.Next().PC
	}
	st := src.CaptureSource()

	fork, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()
	if err := fork.RestoreSource(st); err != nil {
		t.Fatal(err)
	}

	// Wrong paths forked from the original and the restored source must
	// agree (the decode cache travelled through the checkpoint).
	wa, wb := src.ForkWrong(nil, lastPC), fork.ForkWrong(nil, lastPC)
	for i := 0; i < 200; i++ {
		a, b := wa.Next(), wb.Next()
		if a != b {
			t.Fatalf("restored wrong path %d: %+v vs %+v", i, a, b)
		}
	}
	// And a captured wrong path must restore to the same stream position.
	wst := wa.CaptureSource()
	wc, err := fork.RestoreWrong(wst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, c := wa.Next(), wc.Next()
		if a != c {
			t.Fatalf("restored-from-checkpoint wrong path %d: %+v vs %+v", i, a, c)
		}
	}

	for i := 0; i < 5000; i++ {
		a, b := src.Next(), fork.Next()
		if a != b {
			t.Fatalf("restored source %d: %+v vs %+v", i, a, b)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if err := fork.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSampleTrace pins the committed sample: a gzipped 10K-instruction
// kafka recording that must keep decoding bit-identically to the
// generating walker. Regenerate with -update-sample after intentional
// format changes.
func TestSampleTrace(t *testing.T) {
	prog, seed := kafkaProgram(t)
	if *updateSample {
		recordWalker(t, samplePath, prog, seed, sampleRecords)
	}
	src, err := Open(samplePath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace/champsim -update-sample` to regenerate)", err)
	}
	defer src.Close()
	if got := src.r.Records(); got != sampleRecords {
		t.Fatalf("sample has %d records, want %d", got, sampleRecords)
	}
	ref := trace.New(prog, seed)
	for i := 0; i < sampleRecords-1; i++ {
		got, want := src.Next(), ref.Next()
		if !sameInst(got, want) {
			t.Fatalf("sample instruction %d: decoded %+v, synthetic %+v", i, got, want)
		}
	}
}
