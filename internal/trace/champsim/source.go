package champsim

import (
	"fmt"

	"pdip/internal/cfg"
	"pdip/internal/isa"
	"pdip/internal/trace"
)

// dcBits sizes the decode cache: 8192 direct-mapped entries (~0.3 MB),
// bounded regardless of trace length.
const dcBits = 13

// rasDepth bounds the return-address mirror (Table 1-ish: deep enough for
// the workloads' call depth, fixed so forks are O(1) copies).
const rasDepth = 32

// decodeCache is a direct-mapped cache of committed instructions keyed by
// PC, giving the derived wrong path a bounded window into the program:
// wrong-path fetch replays the most recent committed outcome at each PC
// it walks — stale or missing entries degrade to linear fetch, never to
// unbounded state.
type decodeCache struct {
	inst  [1 << dcBits]isa.Inst
	valid [1 << dcBits]bool
}

// slot hashes a PC to its cache index (Fibonacci hashing — PCs are
// 4-ish-byte strided, so low bits alone alias heavily).
func dcSlot(pc isa.Addr) int {
	return int((uint64(pc) * 0x9E3779B97F4A7C15) >> (64 - dcBits))
}

func (c *decodeCache) insert(in isa.Inst) {
	s := dcSlot(in.PC)
	c.inst[s] = in
	c.valid[s] = true
}

func (c *decodeCache) lookup(pc isa.Addr) (isa.Inst, bool) {
	s := dcSlot(pc)
	if !c.valid[s] || c.inst[s].PC != pc {
		return isa.Inst{}, false
	}
	return c.inst[s], true
}

// rasMirror is a fixed-depth circular return-address stack shadowing the
// committed stream's calls and returns; wrong-path forks copy it whole.
type rasMirror struct {
	buf   [rasDepth]isa.Addr
	top   int
	depth int
}

func (m *rasMirror) push(a isa.Addr) {
	m.buf[m.top] = a
	m.top = (m.top + 1) % rasDepth
	if m.depth < rasDepth {
		m.depth++
	}
}

func (m *rasMirror) pop() (isa.Addr, bool) {
	if m.depth == 0 {
		return 0, false
	}
	m.top = (m.top + rasDepth - 1) % rasDepth
	m.depth--
	return m.buf[m.top], true
}

// entries returns the live entries oldest-first (for checkpointing).
func (m *rasMirror) entries() []isa.Addr {
	out := make([]isa.Addr, 0, m.depth)
	for i := 0; i < m.depth; i++ {
		out = append(out, m.buf[(m.top+rasDepth-m.depth+i)%rasDepth])
	}
	return out
}

func (m *rasMirror) restore(entries []isa.Addr) {
	*m = rasMirror{}
	for _, a := range entries {
		m.push(a)
	}
}

// Source adapts a ChampSim trace onto trace.OracleSource, in one of two
// modes.
//
// Standalone (Open): the decoded stream is the oracle. Wrong paths —
// which a trace cannot record — are derived from a bounded decode cache
// of committed instructions plus a RAS mirror (see Wrong).
//
// Differential (OpenDifferential): the decoded stream is cross-checked
// instruction-by-instruction against a lockstep synthetic walker over the
// generating workload, and the walker's instruction is what the pipeline
// consumes — including wrong-path forks. A run in this mode is
// bit-identical to the direct synthetic run by construction, so any
// decode/encode defect surfaces as a latched Err, not a silently
// different simulation. This is the round-trip test mode.
type Source struct {
	r      *Reader
	shadow *trace.Walker

	// cur is the last record read (the lookahead window: its instruction
	// is emitted when the *next* record supplies the branch target).
	cur    Record
	primed bool
	count  uint64

	dec decodeCache
	ras rasMirror

	// err latches the first replay divergence (differential mode) or
	// stream fault; the simulation keeps running on the shadow stream so
	// the harness can report the mismatch after the run, not panic inside
	// the pipeline.
	err error

	// freeWrong recycles the single wrong-path adapter (pool, not state).
	freeWrong *Wrong
}

// Compile-time conformance.
var (
	_ trace.OracleSource = (*Source)(nil)
	_ trace.Source       = (*Wrong)(nil)
)

// Open opens a trace as a standalone oracle source.
func Open(path string) (*Source, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	return &Source{r: r}, nil
}

// OpenDifferential opens a trace in differential mode: decoded records
// are verified against (and the pipeline is fed from) a synthetic walker
// over prog with the given seed — the exact configuration the trace was
// recorded from.
func OpenDifferential(path string, prog *cfg.Program, seed uint64) (*Source, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	return &Source{r: r, shadow: trace.New(prog, seed)}, nil
}

// fail latches the first error.
func (s *Source) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// decodeNext decodes the next instruction from the trace, maintaining the
// one-record lookahead that supplies taken-branch targets. A stream fault
// latches Err and degrades to linear fetch so the pipeline stays fed.
func (s *Source) decodeNext() isa.Inst {
	if !s.primed {
		if err := s.r.Next(&s.cur); err != nil {
			s.fail(err)
			return isa.Inst{PC: isa.Addr(s.cur.IP), Size: 4}
		}
		s.primed = true
	}
	var nxt Record
	if err := s.r.Next(&nxt); err != nil {
		s.fail(err)
		in := isa.Inst{PC: isa.Addr(s.cur.IP), Size: 4}
		s.cur.IP += 4
		s.count++
		return in
	}
	in := s.cur.inst(isa.Addr(nxt.IP))
	s.cur = nxt
	s.count++
	return in
}

// Next implements trace.Source.
func (s *Source) Next() isa.Inst {
	got := s.decodeNext()
	if s.shadow == nil {
		// Standalone: shadow structures track the committed stream so
		// ForkWrong can derive speculative paths.
		s.dec.insert(got)
		switch got.Kind {
		case isa.DirectCall, isa.IndirectCall:
			s.ras.push(got.FallThrough())
		case isa.Return:
			s.ras.pop()
		}
		return got
	}
	want := s.shadow.Next()
	if s.err == nil {
		// Not-taken branches never encode a target (and never consume
		// one downstream), so Target is compared only when taken.
		if got.PC != want.PC || got.Size != want.Size || got.Kind != want.Kind ||
			got.Taken != want.Taken || (want.Taken && got.Target != want.Target) {
			//lint:ignore allocfree error construction on the replay-divergence path; latched once
			s.err = fmt.Errorf("champsim: replay diverged at instruction %d: decoded %+v, synthetic %+v", s.count-1, got, want)
		}
	}
	return want
}

// Count returns how many instructions have been emitted.
func (s *Source) Count() uint64 { return s.count }

// Err returns the first latched replay divergence or stream fault.
func (s *Source) Err() error { return s.err }

// Close releases the trace file.
func (s *Source) Close() error { return s.r.Close() }

// ForkWrong implements trace.OracleSource. Differential mode delegates to
// the shadow walker (wrong paths must match the synthetic run exactly);
// standalone mode hands out the derived wrong-path adapter.
func (s *Source) ForkWrong(free trace.Source, pc isa.Addr) trace.Source {
	if s.shadow != nil {
		return s.shadow.ForkWrong(free, pc)
	}
	w, _ := free.(*Wrong)
	if w == nil || w.src != s {
		if s.freeWrong != nil {
			w = s.freeWrong
			s.freeWrong = nil
		} else {
			//lint:ignore allocfree wrong-path fork pool refill (freeWrong); amortized
			w = &Wrong{src: s}
		}
	}
	w.pc = pc
	w.ras = s.ras
	return w
}

// Wrong is the derived wrong path of a standalone trace source: the trace
// records only the committed stream, so speculative fetch beyond a
// mispredict replays the decode cache's most recent committed outcome at
// each PC it reaches (with its own copy of the RAS mirror for returns)
// and degrades to linear fetch at PCs the committed stream has not
// visited — bounded state, deterministic, and plausibly wrong in the same
// way real wrong paths are: mostly-stale right answers.
type Wrong struct {
	src *Source
	pc  isa.Addr
	ras rasMirror
}

// Next implements trace.Source.
func (w *Wrong) Next() isa.Inst {
	in, ok := w.src.dec.lookup(w.pc)
	if !ok {
		in = isa.Inst{PC: w.pc, Size: 4}
		w.pc += 4
		return in
	}
	switch {
	case in.Kind == isa.Return:
		if t, ok := w.ras.pop(); ok && t != 0 {
			in.Target = t
		} else if in.Target == 0 {
			in.Target = in.FallThrough()
		}
		w.pc = in.Target
	case in.Taken && in.Target != 0:
		if in.Kind == isa.DirectCall || in.Kind == isa.IndirectCall {
			w.ras.push(in.FallThrough())
		}
		w.pc = in.Target
	default:
		// Not-taken (or a taken record with no recoverable target):
		// fall through.
		in.Taken = in.Taken && in.Target != 0
		if !in.Taken {
			in.Target = 0
		}
		w.pc = in.FallThrough()
	}
	return in
}
