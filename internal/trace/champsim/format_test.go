package champsim

import (
	"testing"

	"pdip/internal/isa"
)

// TestRecordEncodeDecode checks the byte-level codec round-trips every
// field.
func TestRecordEncodeDecode(t *testing.T) {
	rec := Record{
		IP:          0x4000_1234,
		IsBranch:    1,
		BranchTaken: 1,
		DestRegs:    [2]uint8{regIP, regSP},
		SrcRegs:     [4]uint8{regIP, regSP, regFlags, 7},
		DestMem:     [2]uint64{0xdead, 0xbeef},
		SrcMem:      [4]uint64{1, 2, 3, sizeMagic | 5},
	}
	var b [RecordSize]byte
	rec.Encode(b[:])
	got, err := DecodeRecord(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	if _, err := DecodeRecord(b[:RecordSize-1]); err == nil {
		t.Fatal("DecodeRecord accepted a short buffer")
	}
}

// TestKindRoundTrip checks every branch kind survives encode → ChampSim's
// register-predicate classification → decode.
func TestKindRoundTrip(t *testing.T) {
	kinds := []isa.BranchKind{
		isa.NotBranch, isa.CondDirect, isa.UncondDirect, isa.DirectCall,
		isa.IndirectJump, isa.IndirectCall, isa.Return,
	}
	for _, k := range kinds {
		in := isa.Inst{PC: 0x1000, Size: 4, Kind: k, Taken: k != isa.NotBranch}
		var rec Record
		encodeInst(&rec, in)
		if got := rec.Kind(); got != k {
			t.Errorf("kind %v classified as %v after encode", k, got)
		}
	}
}

// TestInstConversion checks target/size/taken reconstruction paths.
func TestInstConversion(t *testing.T) {
	// Taken conditional: target is the next record's IP, size from magic.
	var rec Record
	encodeInst(&rec, isa.Inst{PC: 0x1000, Size: 3, Kind: isa.CondDirect, Taken: true, Target: 0x2000})
	in := rec.inst(0x2000)
	want := isa.Inst{PC: 0x1000, Size: 3, Kind: isa.CondDirect, Taken: true, Target: 0x2000}
	if in != want {
		t.Errorf("taken cond: got %+v want %+v", in, want)
	}

	// Not-taken conditional: no target, fall-through next IP.
	encodeInst(&rec, isa.Inst{PC: 0x1000, Size: 3, Kind: isa.CondDirect})
	in = rec.inst(0x1003)
	want = isa.Inst{PC: 0x1000, Size: 3, Kind: isa.CondDirect}
	if in != want {
		t.Errorf("not-taken cond: got %+v want %+v", in, want)
	}

	// Foreign trace (no size magic): not-taken size from the IP delta,
	// taken size defaults to 4.
	rec = Record{IP: 0x1000}
	if in := rec.inst(0x1002); in.Size != 2 {
		t.Errorf("delta size: got %d want 2", in.Size)
	}
	rec = Record{IP: 0x1000, IsBranch: 1, BranchTaken: 1}
	rec.DestRegs[0] = regIP
	rec.SrcRegs[0] = regIP
	if in := rec.inst(0x9000); in.Size != 4 || !in.Taken || in.Target != 0x9000 {
		t.Errorf("foreign taken jump: got %+v", in)
	}
}
