package trace

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
)

// Source produces a dynamic instruction stream. The synthetic CFG walker
// (Walker) and the ChampSim trace-replay adapters (trace/champsim)
// implement it, so the front-end's instruction address generator is
// agnostic about where its committed and speculative paths come from.
type Source interface {
	// Next produces the next instruction on this source's path, including
	// its actual control-flow outcome, and advances past it.
	Next() isa.Inst
	// CaptureSource captures the source's position and stream state as a
	// tagged union (the backing input — program, trace file — is
	// reconstruction input, not state).
	CaptureSource() checkpoint.SourceState
}

// OracleSource is a committed-path source that additionally manages the
// wrong paths forked off it at mispredicts, and can restore itself (and
// rebuild its wrong-path companions) from captured state. The oracle owns
// wrong-path construction because only it knows where speculative fetch
// can walk: the CFG walker forks a salted walker over its program, a
// trace replay walks its shadow decode structures.
type OracleSource interface {
	Source
	// ForkWrong forks a wrong-path source positioned at pc, reusing
	// free's storage when free is a compatible retired wrong-path source
	// (nil or an incompatible free forces a fresh allocation). The oracle
	// itself is unaffected.
	ForkWrong(free Source, pc isa.Addr) Source
	// RestoreSource overwrites the oracle's position and stream state
	// from a captured state of the same kind.
	RestoreSource(st checkpoint.SourceState) error
	// RestoreWrong rebuilds a wrong-path source from its captured state
	// (wrong paths carry no reconstruction input of their own — the
	// oracle supplies it).
	RestoreWrong(st checkpoint.SourceState) (Source, error)
}

// Compile-time conformance: the CFG walker is the reference source.
var _ OracleSource = (*Walker)(nil)

// CaptureSource implements Source.
func (w *Walker) CaptureSource() checkpoint.SourceState {
	st := w.CaptureCheckpoint()
	return checkpoint.SourceState{Kind: checkpoint.SourceCFG, Walker: &st}
}

// RestoreSource implements OracleSource.
func (w *Walker) RestoreSource(st checkpoint.SourceState) error {
	if st.Kind != checkpoint.SourceCFG || st.Walker == nil {
		return fmt.Errorf("trace: cannot restore a %q source into a CFG walker", st.Kind)
	}
	return w.RestoreCheckpoint(*st.Walker)
}

// ForkWrong implements OracleSource: it forks a wrong-path walker at pc,
// recycling free's storage when free is itself a walker (ForkInto
// reproduces Fork's stream exactly).
func (w *Walker) ForkWrong(free Source, pc isa.Addr) Source {
	dst, _ := free.(*Walker)
	return w.ForkInto(dst, pc)
}

// RestoreWrong implements OracleSource: wrong paths of a CFG oracle are
// walkers over the same program.
func (w *Walker) RestoreWrong(st checkpoint.SourceState) (Source, error) {
	if st.Kind != checkpoint.SourceCFG || st.Walker == nil {
		return nil, fmt.Errorf("trace: cannot restore a %q wrong path under a CFG oracle", st.Kind)
	}
	return NewFromCheckpoint(w.prog, *st.Walker)
}
