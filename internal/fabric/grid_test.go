package fabric

import (
	"strings"
	"testing"
)

// TestGridSpecs pins the deterministic expansion order: benchmark-major,
// then policy, BTB, seed.
func TestGridSpecs(t *testing.T) {
	g := Grid{
		Benchmarks: []string{"kafka", "cassandra"},
		Policies:   []string{"baseline", "pdip44"},
		BTBEntries: []int{0, 1024},
		Seeds:      []uint64{0, 7},
		Warmup:     1000,
		Measure:    2000,
	}
	specs, err := g.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 16 {
		t.Fatalf("want 2*2*2*2 = 16 cells, got %d", len(specs))
	}
	first, last := specs[0], specs[len(specs)-1]
	if first.Benchmark != "kafka" || first.Policy != "baseline" || first.BTBEntries != 0 || first.Seed != 0 {
		t.Fatalf("first cell out of order: %+v", first)
	}
	if last.Benchmark != "cassandra" || last.Policy != "pdip44" || last.BTBEntries != 1024 || last.Seed != 7 {
		t.Fatalf("last cell out of order: %+v", last)
	}
	keys := make(map[string]bool, len(specs))
	for _, s := range specs {
		if keys[s.Key()] {
			t.Fatalf("duplicate cell key %q", s.Key())
		}
		keys[s.Key()] = true
	}
}

// TestGridValidates rejects unknown benchmark and policy names at
// expansion time.
func TestGridValidates(t *testing.T) {
	if _, err := (Grid{Benchmarks: []string{"nope"}, Policies: []string{"baseline"}}).Specs(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := (Grid{Benchmarks: []string{"kafka"}, Policies: []string{"nope"}}).Specs(); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := (Grid{}).Specs(); err == nil {
		t.Fatal("empty grid accepted")
	}
}

// TestParseGridUnknownField rejects misspelled axes loudly.
func TestParseGridUnknownField(t *testing.T) {
	_, err := ParseGrid(strings.NewReader(`{"benchmarks":["kafka"],"polices":["baseline"]}`))
	if err == nil || !strings.Contains(err.Error(), "polices") {
		t.Fatalf("want unknown-field error naming the typo, got %v", err)
	}
}

// TestShard checks the strided shards partition the grid exactly.
func TestShard(t *testing.T) {
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	seen := make(map[int]int)
	n := 3
	for i := 0; i < n; i++ {
		for _, c := range Shard(cells, i, n) {
			seen[c]++
		}
	}
	for _, c := range cells {
		if seen[c] != 1 {
			t.Fatalf("cell %d covered %d times across %d shards", c, seen[c], n)
		}
	}
	if got := Shard(cells, 1, 3); got[0] != 1 || got[1] != 4 {
		t.Fatalf("shard 1/3 should stride: got %v", got)
	}
	if got := Shard(cells, 0, 1); len(got) != len(cells) {
		t.Fatalf("shard 0/1 should be identity")
	}
}

// TestParseShard pins the i/n syntax and its bounds.
func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("2/4")
	if err != nil || i != 2 || n != 4 {
		t.Fatalf("ParseShard(2/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "x", "4/4", "-1/4", "1/0", "1"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) should fail", bad)
		}
	}
}
