package fabric

import (
	"fmt"
	"net"
	"sync"

	"pdip/internal/checkpoint"
	"pdip/internal/harness"
)

// Fleet is a self-contained coordinator plus N in-process workers wired
// over net.Pipe — the same protocol bytes as a TCP deployment, with no
// sockets. `experiments -fabric-workers N` and the fabric benchmarks run
// on one of these; tests build them directly to inject faults.
type Fleet struct {
	Coordinator *Coordinator
	workers     []*Worker
	conns       []net.Conn // coordinator-side ends
	ck          *checkpoint.Dir
	wg          sync.WaitGroup
}

// StartFleet launches a coordinator and n in-process workers (slots
// concurrent jobs each), sharing the checkpoint directory ckdir.
func StartFleet(n, slots int, ckdir string, cfg Config) *Fleet {
	var ck *checkpoint.Dir
	if ckdir != "" {
		ck = checkpoint.NewDir(ckdir, 0)
	}
	return StartFleetWithDir(n, slots, ck, cfg)
}

// StartFleetWithDir is StartFleet over an existing checkpoint store.
// Every worker gets its own Runner over the shared store: warm-once
// scheduling crosses workers through the coordinator's leases plus the
// content-addressed directory, exactly as it would between separate
// machines — but because in-process workers share one Dir, each tuple's
// checkpoint is decoded once and every other worker forks it from the
// store's in-memory cache.
func StartFleetWithDir(n, slots int, ck *checkpoint.Dir, cfg Config) *Fleet {
	if n < 1 {
		n = 1
	}
	if slots < 1 {
		slots = 1
	}
	f := &Fleet{Coordinator: NewCoordinator(cfg), ck: ck}
	for i := 0; i < n; i++ {
		w := &Worker{
			Name:   fmt.Sprintf("w%d", i+1),
			Runner: harness.NewRunnerWithDir(slots, ck),
			Slots:  slots,
		}
		f.AddWorker(w)
	}
	return f
}

// CheckpointDir returns the store the fleet's workers share, or nil.
func (f *Fleet) CheckpointDir() *checkpoint.Dir { return f.ck }

// AddWorker connects w to the fleet's coordinator over an in-process
// pipe and starts serving it.
func (f *Fleet) AddWorker(w *Worker) {
	cend, wend := net.Pipe()
	f.workers = append(f.workers, w)
	f.conns = append(f.conns, cend)
	f.wg.Add(2)
	//lint:ignore determinism host-side fleet plumbing: one goroutine per pipe end; the fabric sits above the simulated clock
	go func() {
		defer f.wg.Done()
		f.Coordinator.HandleConn(cend)
	}()
	//lint:ignore determinism host-side fleet plumbing; see above
	go func() {
		defer f.wg.Done()
		w.Run(wend)
	}()
}

// Exec runs one spec through the fleet and waits for it — the signature
// Runner.SetExecutor wants, so a stock Runner transparently routes its
// cache misses through the fleet.
func (f *Fleet) Exec(spec harness.RunSpec) (*harness.RunResult, error) {
	return f.Coordinator.Submit(spec).Wait()
}

// RunGrid distributes specs over the fleet and returns results in spec
// order (see Coordinator.RunGrid).
func (f *Fleet) RunGrid(specs []harness.RunSpec) ([]*harness.RunResult, error) {
	return f.Coordinator.RunGrid(specs)
}

// Stats reports the coordinator's aggregate accounting.
func (f *Fleet) Stats() Stats { return f.Coordinator.Stats() }

// Close drains the fleet and waits for every connection goroutine.
func (f *Fleet) Close() {
	f.Coordinator.Close()
	f.wg.Wait()
}
