package fabric

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pdip/internal/harness"
	"pdip/internal/metrics"
)

// Worker executes jobs pulled from a coordinator over one connection. It
// offers Slots ready tokens up front, runs each assignment on its own
// goroutine through the shared job-execution core (Runner.ExecuteJob —
// exactly the path a serial run takes, so results are bit-identical),
// streams interval snapshots back mid-run, and heartbeats.
type Worker struct {
	// Name identifies the worker in coordinator accounting; the
	// coordinator uniquifies collisions.
	Name string
	// Runner supplies the warm-state layer: in-process singleflight plus
	// the shared on-disk checkpoint directory. It should be constructed
	// with parallelism ≥ Slots; the fabric bounds concurrency by tokens,
	// not by the runner's semaphore (ExecuteJob bypasses it).
	Runner *harness.Runner
	// Slots is the number of jobs run concurrently (min 1).
	Slots int
	// HeartbeatEvery is the liveness cadence (default 2s). It must be
	// comfortably under the coordinator's LeaseTimeout.
	HeartbeatEvery time.Duration
	// BeforeJob, when set, runs before each assignment executes — a test
	// hook for fault injection (e.g. severing the connection mid-job).
	// A returned error fails the job without executing it.
	BeforeJob func(spec harness.RunSpec) error
}

// Run serves the worker side of conn until the coordinator drains it or
// the connection drops. In-flight jobs are waited for on a clean drain.
func (w *Worker) Run(conn net.Conn) error {
	wr := newWire(conn)
	defer wr.close()
	slots := w.Slots
	if slots < 1 {
		slots = 1
	}
	if err := wr.send(&message{Type: msgHello, Worker: w.Name, Slots: slots}); err != nil {
		return fmt.Errorf("fabric: worker hello: %w", err)
	}
	for i := 0; i < slots; i++ {
		if err := wr.send(&message{Type: msgReady}); err != nil {
			return fmt.Errorf("fabric: worker ready: %w", err)
		}
	}

	hb := w.HeartbeatEvery
	if hb <= 0 {
		hb = 2 * time.Second
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:ignore determinism the heartbeat loop is host-side liveness signalling; the fabric sits above the simulated clock
	go func() {
		defer wg.Done()
		//lint:ignore determinism host-side heartbeat cadence; see above
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				stats := w.Runner.Stats()
				wr.send(&message{Type: msgHeartbeat, Stats: &stats})
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	var jobs sync.WaitGroup
	defer jobs.Wait()
	for {
		m, err := wr.recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("fabric: worker recv: %w", err)
		}
		switch m.Type {
		case msgAssign:
			jobs.Add(1)
			//lint:ignore determinism one host-side goroutine per assigned job slot; the simulation inside is single-threaded and deterministic
			go func(m *message) {
				defer jobs.Done()
				w.execute(wr, m)
			}(m)
		case msgDrain:
			return nil
		}
	}
}

// execute runs one assignment and reports done or fail, then re-offers
// the freed slot.
func (w *Worker) execute(wr *wire, m *message) {
	res, err := w.runJob(wr, m)
	var out *message
	if err != nil {
		out = &message{Type: msgFail, JobID: m.JobID, Attempt: m.Attempt, Error: err.Error()}
	} else {
		// Streamed samples already live at the coordinator in stream
		// order; strip them from the completion message rather than
		// sending every interval twice.
		if m.Spec.SampleEvery > 0 && len(res.Samples) > 0 {
			cp := *res
			cp.Samples = nil
			res = &cp
		}
		out = &message{Type: msgDone, JobID: m.JobID, Attempt: m.Attempt, Result: res}
	}
	stats := w.Runner.Stats()
	out.Stats = &stats
	if wr.send(out) != nil {
		return // connection gone; the coordinator re-queues the job
	}
	wr.send(&message{Type: msgReady})
}

// runJob executes the assignment through the shared core, streaming each
// interval snapshot as it is recorded (the retire stage invokes the hook
// in deterministic order, so the stream matches a serial run's Samples
// slice exactly).
func (w *Worker) runJob(wr *wire, m *message) (*harness.RunResult, error) {
	if m.Spec == nil {
		return nil, errors.New("fabric: assign without spec")
	}
	if w.BeforeJob != nil {
		if err := w.BeforeJob(*m.Spec); err != nil {
			return nil, err
		}
	}
	var onSample func(metrics.Sample)
	if m.Spec.SampleEvery > 0 {
		// Stream each interval snapshot as the retire stage records it.
		// Send errors are ignored: a dead connection also kills the
		// completion send, and the re-queued attempt regenerates the
		// identical stream.
		onSample = func(s metrics.Sample) {
			sm := s
			wr.send(&message{Type: msgSample, JobID: m.JobID, Attempt: m.Attempt, Sample: &sm})
		}
	}
	return w.Runner.ExecuteJob(*m.Spec, onSample)
}
