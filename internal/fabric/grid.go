// Package fabric turns the simulator into a distributed grid engine: a
// coordinator expands a benchmark×policy×BTB×seed grid into a
// deterministic job queue sharded over worker processes, workers pull
// jobs and resolve warm state through the shared content-addressed
// checkpoint directory (warming each tuple once cluster-wide via
// coordinator-held leases, forking everywhere else), stream incremental
// metric snapshots back, and heartbeat. The coordinator tolerates worker
// loss by lease-expiry re-queueing — jobs are idempotent, reruns are
// bit-identical by construction — and merges results deterministically by
// cell key, so a distributed run's merged output is byte-identical to a
// serial Runner.RunAll over the same grid.
//
// Everything in this package sits above the simulated clock: wall-clock
// time appears only in the scheduling fabric (leases, heartbeats, retry
// backoff), never in a simulation result. See DESIGN.md §5g.
package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pdip/internal/harness"
	"pdip/internal/policy"
	"pdip/internal/workload"
)

// Grid declares a benchmark×policy×BTB×seed sweep as plain JSON. Zero
// axes default to a single default cell on that axis (profile BTB,
// profile seed); zero budgets default to the standard experiment scale.
type Grid struct {
	Benchmarks []string `json:"benchmarks"`
	Policies   []string `json:"policies"`
	// BTBEntries sweeps BTB capacities; 0 (or empty) keeps Table 1's.
	BTBEntries []int `json:"btb_entries,omitempty"`
	// Seeds sweeps the data-side random streams for confidence
	// intervals; 0 (or empty) keeps each profile's pinned seed.
	Seeds []uint64 `json:"seeds,omitempty"`

	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// SampleEvery > 0 streams a full metric snapshot every that many
	// measured instructions from worker to coordinator.
	SampleEvery   uint64 `json:"sample_every,omitempty"`
	CollectSets   bool   `json:"collect_sets,omitempty"`
	NoFastForward bool   `json:"no_fast_forward,omitempty"`
	// TraceDir, when non-empty, drives every cell from
	// <TraceDir>/<benchmark>.champsim[.gz].
	TraceDir string `json:"trace_dir,omitempty"`
}

// Specs expands the grid into its job list in deterministic nested order
// (benchmark, then policy, then BTB, then seed) and validates every name
// against the registries, so a typo fails at submission, not mid-grid.
func (g Grid) Specs() ([]harness.RunSpec, error) {
	if len(g.Benchmarks) == 0 || len(g.Policies) == 0 {
		return nil, fmt.Errorf("fabric: grid needs at least one benchmark and one policy")
	}
	for _, b := range g.Benchmarks {
		if _, err := workload.ByName(b); err != nil {
			return nil, fmt.Errorf("fabric: grid: %w", err)
		}
	}
	for _, p := range g.Policies {
		if _, err := policy.ByName(p); err != nil {
			return nil, fmt.Errorf("fabric: grid: %w", err)
		}
	}
	btbs := g.BTBEntries
	if len(btbs) == 0 {
		btbs = []int{0}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	specs := make([]harness.RunSpec, 0, len(g.Benchmarks)*len(g.Policies)*len(btbs)*len(seeds))
	for _, b := range g.Benchmarks {
		for _, p := range g.Policies {
			for _, btb := range btbs {
				for _, seed := range seeds {
					s := harness.RunSpec{
						Benchmark:     b,
						Policy:        p,
						BTBEntries:    btb,
						Seed:          seed,
						Warmup:        g.Warmup,
						Measure:       g.Measure,
						SampleEvery:   g.SampleEvery,
						CollectSets:   g.CollectSets,
						NoFastForward: g.NoFastForward,
					}
					if g.TraceDir != "" {
						s.TracePath = harness.TracePathFor(g.TraceDir, b)
					}
					specs = append(specs, s)
				}
			}
		}
	}
	return specs, nil
}

// ParseGrid decodes a Grid from JSON, rejecting unknown fields so a
// misspelled axis fails loudly.
func ParseGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("fabric: parse grid: %w", err)
	}
	return g, nil
}

// LoadGrid reads a Grid JSON file.
func LoadGrid(path string) (Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return Grid{}, fmt.Errorf("fabric: %w", err)
	}
	defer f.Close()
	return ParseGrid(f)
}

// Shard returns the i-th of n static shards of cells: every cell whose
// index ≡ i (mod n). Striding (rather than chunking) balances shards even
// when cost correlates with grid position (adjacent cells share a
// benchmark). The union of all n shards is exactly cells, disjoint — the
// no-coordinator fallback `experiments -shard i/n` and `gridd -shard`
// both slice with this.
func Shard[T any](cells []T, i, n int) []T {
	if n <= 1 {
		return cells
	}
	var out []T
	for j := i; j < len(cells); j += n {
		out = append(out, cells[j])
	}
	return out
}

// ParseShard parses the "i/n" shard syntax (0 ≤ i < n).
func ParseShard(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("fabric: shard %q: want i/n (e.g. 0/4)", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("fabric: shard %q: want 0 <= i < n", s)
	}
	return i, n, nil
}
