package fabric

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"pdip/internal/harness"
	"pdip/internal/metrics"
)

// Config tunes the coordinator's failure handling. The zero value is
// usable: Defaults fills in production-scale settings.
type Config struct {
	// LeaseTimeout bounds how long an assigned job may go without its
	// worker heartbeating before the job is re-queued. Heartbeats renew
	// the lease, so it bounds detection latency, not job duration.
	LeaseTimeout time.Duration
	// SweepEvery is the reaper cadence (lease expiry, matured retries).
	SweepEvery time.Duration
	// MaxAttempts caps assignments per job (first try included) before
	// the job fails the grid permanently.
	MaxAttempts int
	// RetryBackoff delays a failed job's re-queue, scaled linearly by
	// its attempt count. Worker-loss re-queues skip the backoff: the job
	// did nothing wrong.
	RetryBackoff time.Duration
}

// withDefaults normalises unset fields.
func (c Config) withDefaults() Config {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 60 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff < 0 {
		c.RetryBackoff = 0
	} else if c.RetryBackoff == 0 {
		c.RetryBackoff = 500 * time.Millisecond
	}
	return c
}

// jobState is the lifecycle of one grid cell's job.
type jobState int

const (
	jobPending jobState = iota // queued (possibly held by a warm lease or backoff)
	jobRunning                 // assigned to a worker, lease ticking
	jobDone                    // result merged
	jobFailed                  // attempts exhausted
)

// job is one idempotent unit of work: a RunSpec plus scheduling state.
// Reruns are bit-identical by construction (see Runner.ExecuteJob), so
// any attempt's result is the job's result.
type job struct {
	id    uint64
	spec  harness.RunSpec
	tuple string // warm-state identity ("" = no warmup to share)

	state     jobState
	attempts  int       // assignments so far; Attempt on the wire
	worker    string    // current assignee (state == jobRunning)
	notBefore time.Time // retry backoff gate
	deadline  time.Time // lease expiry, renewed by heartbeats

	// samples accumulates the current attempt's streamed interval
	// snapshots, in stream order; cleared on re-queue.
	samples []metrics.Sample
	result  *harness.RunResult
	err     error
	done    chan struct{}
}

// tupleState tracks cluster-wide warm-once leases: the first job of a
// tuple dispatched becomes the leader and performs the tuple's only real
// warmup (persisting it to the shared checkpoint directory); the tuple's
// other jobs are held until the leader completes, then fork the warm
// state wherever they land.
type tupleState struct {
	warmed bool
	leader uint64 // job id currently leading the warmup, 0 = none
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	name     string
	w        *wire
	lastSeen time.Time
	tokens   int // outstanding ready offers not yet answered
	inflight map[uint64]bool
	stats    harness.RunnerStats // last reported runner counters
	gone     bool
}

// Stats is the coordinator's aggregate view: job accounting plus the
// summed runner counters of every worker that ever reported.
type Stats struct {
	Cells     uint64 // jobs submitted
	Completed uint64
	Failed    uint64 // permanent failures
	Retries   uint64 // re-queues after a reported job error
	Requeues  uint64 // re-queues after worker loss or lease expiry
	Workers   int    // workers ever connected
	// Runner aggregates every worker's RunnerStats (warmups simulated,
	// disk hits, forks) — the cluster-wide warm-state reuse report.
	Runner harness.RunnerStats
}

// Coordinator owns the job queue of a grid: it expands submissions into
// leased jobs, schedules them over connected workers, re-queues on
// failure or loss, and merges results deterministically by cell key.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[uint64]*job
	byspec  map[harness.RunSpec]*job
	tuples  map[string]*tupleState
	workers map[string]*workerConn
	nextID  uint64
	stats   Stats
	closed  bool
	// listeners opened by ListenAndServe, closed by Close so the accept
	// loops unwind.
	listeners []net.Listener

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a coordinator and starts its reaper.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[uint64]*job),
		byspec:  make(map[harness.RunSpec]*job),
		tuples:  make(map[string]*tupleState),
		workers: make(map[string]*workerConn),
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	//lint:ignore determinism the fabric scheduler sits above the simulated clock: the reaper goroutine expires leases and matures retries host-side and never touches simulation state
	go c.reap()
	return c
}

// now reads the host clock for lease and backoff bookkeeping — the one
// sanctioned wall-clock source in the fabric. Simulation results never
// depend on it: scheduling decides only where and when a job runs, and
// jobs are bit-identical wherever and whenever they run.
func (c *Coordinator) now() time.Time {
	//lint:ignore determinism the fabric sits above the simulated clock: leases, heartbeats, and retry backoff schedule host-side work and cannot influence simulation results
	return time.Now()
}

// reap periodically expires leases of silent workers, re-queues jobs
// whose lease ran out, and re-schedules matured retries.
func (c *Coordinator) reap() {
	defer c.wg.Done()
	//lint:ignore determinism host-side reaper cadence; see Coordinator.now
	tick := time.NewTicker(c.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.sweep()
		}
	}
}

// sweep is one reaper pass.
func (c *Coordinator) sweep() {
	now := c.now()
	c.mu.Lock()
	// Workers that stopped heartbeating: close their conns; the read
	// loop unwinds and re-queues their in-flight jobs.
	var lost []*workerConn
	for _, w := range c.workers {
		if !w.gone && now.Sub(w.lastSeen) > c.cfg.LeaseTimeout {
			lost = append(lost, w)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].name < lost[j].name })
	// Individual jobs whose lease expired (hung worker with a live
	// connection): re-queue just the job; any late result from the old
	// attempt is ignored by the attempt check.
	for _, j := range c.pendingScanLocked(jobRunning) {
		if now.After(j.deadline) {
			c.requeueLocked(j, now, fmt.Errorf("lease expired on worker %s", j.worker))
		}
	}
	asn := c.scheduleLocked(now)
	c.mu.Unlock()

	for _, w := range lost {
		w.w.close()
	}
	c.dispatch(asn)
}

// pendingScanLocked returns the jobs in the given state, id-ordered.
// (Collect-then-sort: map iteration order never escapes.)
func (c *Coordinator) pendingScanLocked(st jobState) []*job {
	var ids []uint64
	for id, j := range c.jobs {
		if j.state == st {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*job, len(ids))
	for i, id := range ids {
		out[i] = c.jobs[id]
	}
	return out
}

// Submit enqueues spec (deduplicating against an already-submitted equal
// spec) and returns a handle to wait on. Safe from any goroutine.
func (c *Coordinator) Submit(spec harness.RunSpec) *Pending {
	now := c.now()
	c.mu.Lock()
	if j, ok := c.byspec[spec]; ok {
		c.mu.Unlock()
		return &Pending{j: j}
	}
	c.nextID++
	j := &job{
		id:    c.nextID,
		spec:  spec,
		tuple: spec.WarmTuple(),
		state: jobPending,
		done:  make(chan struct{}),
	}
	if c.closed {
		j.state = jobFailed
		j.err = errors.New("fabric: coordinator closed")
		close(j.done)
		c.mu.Unlock()
		return &Pending{j: j}
	}
	c.jobs[j.id] = j
	c.byspec[spec] = j
	if j.tuple != "" && c.tuples[j.tuple] == nil {
		c.tuples[j.tuple] = &tupleState{}
	}
	c.stats.Cells++
	asn := c.scheduleLocked(now)
	c.mu.Unlock()
	c.dispatch(asn)
	return &Pending{j: j}
}

// Pending is a submitted job handle.
type Pending struct{ j *job }

// Wait blocks until the job completes (on any worker, any attempt) and
// returns its result.
func (p *Pending) Wait() (*harness.RunResult, error) {
	<-p.j.done
	return p.j.result, p.j.err
}

// RunGrid submits every spec and waits for all of them, returning results
// in spec order. Like Runner.RunAll, failures do not short-circuit: every
// cell's error comes back joined and labelled.
func (c *Coordinator) RunGrid(specs []harness.RunSpec) ([]*harness.RunResult, error) {
	pend := make([]*Pending, len(specs))
	for i, s := range specs {
		pend[i] = c.Submit(s)
	}
	results := make([]*harness.RunResult, len(specs))
	errs := make([]error, len(specs))
	for i, p := range pend {
		res, err := p.Wait()
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", specs[i].Key(), err)
			continue
		}
		results[i] = res
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// assignment pairs a scheduled job with its worker, built under the lock
// and sent outside it (a slow conn must not stall the scheduler).
type assignment struct {
	w *workerConn
	m *message
}

// scheduleLocked matches ready workers with dispatchable jobs. Both sides
// are ordered deterministically (jobs by id, workers by name), so the
// schedule depends only on the event history, never on map order.
func (c *Coordinator) scheduleLocked(now time.Time) []assignment {
	var ready []*workerConn
	for _, w := range c.workers {
		if !w.gone && w.tokens > 0 {
			ready = append(ready, w)
		}
	}
	if len(ready) == 0 {
		return nil
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].name < ready[j].name })

	var asn []assignment
	wi := 0
	for _, j := range c.pendingScanLocked(jobPending) {
		if wi >= len(ready) {
			break
		}
		if now.Before(j.notBefore) {
			continue
		}
		warmLead := false
		if j.tuple != "" {
			ts := c.tuples[j.tuple]
			if !ts.warmed {
				if ts.leader != 0 && ts.leader != j.id {
					continue // held: tuple is warming elsewhere
				}
				ts.leader = j.id
				warmLead = true
			}
		}
		w := ready[wi]
		j.state = jobRunning
		j.attempts++
		j.worker = w.name
		j.deadline = now.Add(c.cfg.LeaseTimeout)
		j.samples = nil
		w.inflight[j.id] = true
		w.tokens--
		if w.tokens == 0 {
			wi++
		}
		spec := j.spec
		asn = append(asn, assignment{w: w, m: &message{
			Type: msgAssign, JobID: j.id, Attempt: j.attempts,
			Spec: &spec, WarmLead: warmLead,
		}})
	}
	return asn
}

// dispatch sends assignments; a failed send re-queues the job (the read
// loop will also notice the dead conn and unregister the worker).
func (c *Coordinator) dispatch(asn []assignment) {
	for _, a := range asn {
		if err := a.w.w.send(a.m); err != nil {
			now := c.now()
			c.mu.Lock()
			if j := c.jobs[a.m.JobID]; j != nil && j.state == jobRunning && j.worker == a.w.name {
				c.requeueLocked(j, now, fmt.Errorf("send to worker %s: %w", a.w.name, err))
			}
			more := c.scheduleLocked(now)
			c.mu.Unlock()
			c.dispatch(more)
		}
	}
}

// requeueLocked returns a running job to the queue after worker loss or
// lease expiry — no backoff, the job itself did not fail. When attempts
// are exhausted the job fails permanently instead.
func (c *Coordinator) requeueLocked(j *job, now time.Time, cause error) {
	if w := c.workers[j.worker]; w != nil {
		delete(w.inflight, j.id)
	}
	c.releaseTupleLocked(j)
	j.worker = ""
	j.samples = nil
	if j.attempts >= c.cfg.MaxAttempts {
		c.failLocked(j, fmt.Errorf("fabric: %s: attempts exhausted (%d): %w", j.spec.Key(), j.attempts, cause))
		return
	}
	c.stats.Requeues++
	j.state = jobPending
	j.notBefore = now
}

// releaseTupleLocked drops j's warm-leadership, if it held it.
func (c *Coordinator) releaseTupleLocked(j *job) {
	if j.tuple == "" {
		return
	}
	if ts := c.tuples[j.tuple]; ts != nil && ts.leader == j.id {
		ts.leader = 0
	}
}

// failLocked marks a job permanently failed.
func (c *Coordinator) failLocked(j *job, err error) {
	j.state = jobFailed
	j.err = err
	c.releaseTupleLocked(j)
	c.stats.Failed++
	close(j.done)
}

// completeLocked merges a finished job: streamed samples are reattached
// to the result, the warm tuple is marked warmed, and held jobs become
// dispatchable.
func (c *Coordinator) completeLocked(j *job, res *harness.RunResult) {
	j.state = jobDone
	if len(j.samples) > 0 && len(res.Samples) == 0 {
		res.Samples = j.samples
	}
	j.result = res
	j.samples = nil
	if j.tuple != "" {
		ts := c.tuples[j.tuple]
		ts.warmed = true
		if ts.leader == j.id {
			ts.leader = 0
		}
	}
	c.stats.Completed++
	close(j.done)
}

// Serve accepts worker connections until the listener closes.
func (c *Coordinator) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-c.stop:
				return nil
			default:
				return err
			}
		}
		//lint:ignore determinism one host-side goroutine per worker connection; the fabric sits above the simulated clock
		go c.HandleConn(conn)
	}
}

// ListenAndServe listens on addr (TCP) and serves workers. It returns the
// bound listener so callers can learn an ephemeral port; Serve runs on a
// background goroutine.
func (c *Coordinator) ListenAndServe(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	c.mu.Lock()
	c.listeners = append(c.listeners, l)
	c.mu.Unlock()
	c.wg.Add(1)
	//lint:ignore determinism host-side accept loop; the fabric sits above the simulated clock
	go func() {
		defer c.wg.Done()
		c.Serve(l)
	}()
	return l, nil
}

// HandleConn runs the coordinator side of one worker connection: it
// registers the worker at hello, then processes ready/heartbeat/sample/
// done/fail messages until the connection drops, at which point every
// in-flight job of the worker is re-queued.
func (c *Coordinator) HandleConn(conn net.Conn) {
	w := newWire(conn)
	defer w.close()
	hello, err := w.recv()
	if err != nil || hello.Type != msgHello {
		return
	}
	now := c.now()
	c.mu.Lock()
	name := hello.Worker
	if name == "" {
		name = "worker"
	}
	for c.workers[name] != nil && !c.workers[name].gone {
		name += "+"
	}
	wc := &workerConn{
		name: name, w: w, lastSeen: now,
		inflight: make(map[uint64]bool),
	}
	c.workers[name] = wc
	c.stats.Workers++
	c.mu.Unlock()

	for {
		m, err := w.recv()
		if err != nil {
			break
		}
		c.handleMessage(wc, m)
	}
	c.workerLost(wc)
}

// handleMessage processes one worker message.
func (c *Coordinator) handleMessage(wc *workerConn, m *message) {
	now := c.now()
	c.mu.Lock()
	wc.lastSeen = now
	if m.Stats != nil {
		wc.stats = *m.Stats
	}
	var asn []assignment
	switch m.Type {
	case msgReady:
		wc.tokens++
		asn = c.scheduleLocked(now)
	case msgHeartbeat:
		// Liveness renews the leases of everything the worker holds.
		for _, j := range c.pendingScanLocked(jobRunning) {
			if j.worker == wc.name {
				j.deadline = now.Add(c.cfg.LeaseTimeout)
			}
		}
	case msgSample:
		if j := c.jobs[m.JobID]; j != nil && j.state == jobRunning &&
			j.worker == wc.name && j.attempts == m.Attempt && m.Sample != nil {
			j.samples = append(j.samples, *m.Sample)
		}
	case msgDone:
		if j := c.jobs[m.JobID]; j != nil && j.state == jobRunning &&
			j.worker == wc.name && j.attempts == m.Attempt && m.Result != nil {
			delete(wc.inflight, j.id)
			c.completeLocked(j, m.Result)
			asn = c.scheduleLocked(now)
		}
	case msgFail:
		if j := c.jobs[m.JobID]; j != nil && j.state == jobRunning &&
			j.worker == wc.name && j.attempts == m.Attempt {
			delete(wc.inflight, j.id)
			cause := errors.New(m.Error)
			if j.attempts >= c.cfg.MaxAttempts {
				c.failLocked(j, fmt.Errorf("fabric: %s: attempts exhausted (%d): %w", j.spec.Key(), j.attempts, cause))
			} else {
				c.stats.Retries++
				c.releaseTupleLocked(j)
				j.state = jobPending
				j.worker = ""
				j.samples = nil
				j.notBefore = now.Add(time.Duration(j.attempts) * c.cfg.RetryBackoff)
			}
			asn = c.scheduleLocked(now)
		}
	}
	c.mu.Unlock()
	c.dispatch(asn)
}

// workerLost unregisters a dropped worker and re-queues its in-flight
// jobs immediately (connection loss is a stronger signal than lease
// expiry, so recovery does not wait for the reaper).
func (c *Coordinator) workerLost(wc *workerConn) {
	now := c.now()
	c.mu.Lock()
	if wc.gone {
		c.mu.Unlock()
		return
	}
	wc.gone = true
	wc.tokens = 0
	var ids []uint64
	for id := range wc.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if j := c.jobs[id]; j != nil && j.state == jobRunning && j.worker == wc.name {
			c.requeueLocked(j, now, fmt.Errorf("worker %s disconnected", wc.name))
		}
	}
	asn := c.scheduleLocked(now)
	c.mu.Unlock()
	c.dispatch(asn)
}

// Stats returns the coordinator's aggregate accounting, including the
// summed runner counters of every worker — the single programmatic
// warm-state reuse report a distributed run emits once.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	var names []string
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Runner.Add(c.workers[name].stats)
	}
	return s
}

// Close drains connected workers (best effort) and stops the reaper.
// Jobs still pending fail on submission thereafter; in-flight waits
// resolve only if their workers finish before disconnecting.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var ws []*workerConn
	for _, w := range c.workers {
		if !w.gone {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].name < ws[j].name })
	ls := c.listeners
	c.mu.Unlock()

	close(c.stop)
	for _, l := range ls {
		l.Close()
	}
	for _, w := range ws {
		w.w.send(&message{Type: msgDrain})
		w.w.close()
	}
	c.wg.Wait()
}
