package fabric

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pdip/internal/harness"
)

// testGrid is the small distributed-vs-serial reference grid: two
// benchmarks × two policies with sample streaming on, so the comparison
// covers final snapshots and the incremental sample path.
func testGrid() Grid {
	return Grid{
		Benchmarks:  []string{"cassandra", "kafka"},
		Policies:    []string{"baseline", "pdip44"},
		Warmup:      20_000,
		Measure:     60_000,
		SampleEvery: 30_000,
	}
}

// serialDoc runs specs serially on a fresh runner and returns the
// canonical merged document.
func serialDoc(t *testing.T, specs []harness.RunSpec) []byte {
	t.Helper()
	cells, err := MergedFrom(harness.NewRunnerWithCheckpoints(1, t.TempDir()), specs)
	if err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteMerged(&buf, cells); err != nil {
		t.Fatalf("write serial doc: %v", err)
	}
	return buf.Bytes()
}

func mergedDoc(t *testing.T, results []*harness.RunResult) []byte {
	t.Helper()
	cells, err := Merge(results)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteMerged(&buf, cells); err != nil {
		t.Fatalf("write merged doc: %v", err)
	}
	return buf.Bytes()
}

// TestFabricBitIdenticalToSerial distributes the reference grid over two
// in-process workers with a shared checkpoint directory and requires the
// merged document to be byte-identical to a serial Runner.RunAll over the
// same specs.
func TestFabricBitIdenticalToSerial(t *testing.T) {
	specs, err := testGrid().Specs()
	if err != nil {
		t.Fatal(err)
	}
	want := serialDoc(t, specs)

	fleet := StartFleet(2, 1, t.TempDir(), Config{})
	defer fleet.Close()
	results, err := fleet.RunGrid(specs)
	if err != nil {
		t.Fatalf("fabric grid: %v", err)
	}
	got := mergedDoc(t, results)
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed merged document differs from serial reference\nserial:\n%s\nfabric:\n%s", want, got)
	}

	st := fleet.Stats()
	if st.Cells != uint64(len(specs)) || st.Completed != uint64(len(specs)) {
		t.Fatalf("stats: want %d cells completed, got %+v", len(specs), st)
	}
	if st.Runner.RunsExecuted != uint64(len(specs)) {
		t.Fatalf("stats: want %d runs executed across workers, got %d", len(specs), st.Runner.RunsExecuted)
	}
	if st.Runner.Checkpoint.WarmupsExecuted == 0 {
		t.Fatalf("stats: workers reported no warmups: %+v", st.Runner)
	}
}

// TestFabricWorkerLoss kills one worker's connection the moment it starts
// its first job; the coordinator must re-queue the orphaned work onto the
// surviving worker and still produce the byte-identical document.
func TestFabricWorkerLoss(t *testing.T) {
	specs, err := testGrid().Specs()
	if err != nil {
		t.Fatal(err)
	}
	want := serialDoc(t, specs)

	ckdir := t.TempDir()
	coord := NewCoordinator(Config{})
	defer coord.Close()

	var wg sync.WaitGroup
	start := func(w *Worker, cend, wend net.Conn) {
		wg.Add(2)
		go func() { defer wg.Done(); coord.HandleConn(cend) }()
		go func() { defer wg.Done(); w.Run(wend) }()
	}

	// The doomed worker severs its own connection when handed its first
	// job, orphaning that job mid-assignment.
	dcend, dwend := net.Pipe()
	var die sync.Once
	doomed := &Worker{
		Name:   "doomed",
		Runner: harness.NewRunnerWithCheckpoints(1, ckdir),
		Slots:  1,
		BeforeJob: func(harness.RunSpec) error {
			die.Do(func() { dwend.Close() })
			return nil
		},
	}
	start(doomed, dcend, dwend)
	scend, swend := net.Pipe()
	start(&Worker{Name: "survivor", Runner: harness.NewRunnerWithCheckpoints(1, ckdir), Slots: 1}, scend, swend)

	results, err := coord.RunGrid(specs)
	if err != nil {
		t.Fatalf("fabric grid with worker loss: %v", err)
	}
	got := mergedDoc(t, results)
	if !bytes.Equal(got, want) {
		t.Fatalf("merged document after worker loss differs from serial reference")
	}
	st := coord.Stats()
	if st.Requeues == 0 {
		t.Fatalf("expected at least one re-queue after worker loss, got %+v", st)
	}
	if st.Completed != uint64(len(specs)) {
		t.Fatalf("want %d completions, got %+v", len(specs), st)
	}
	coord.Close()
	wg.Wait()
}

// TestFabricLeaseExpiry re-queues a job whose worker hangs without
// disconnecting: heartbeats stop, the lease runs out, and the reaper
// moves the job (and the worker's other state) to the surviving worker.
func TestFabricLeaseExpiry(t *testing.T) {
	spec := harness.RunSpec{Benchmark: "kafka", Policy: "baseline", Warmup: 20_000, Measure: 60_000}
	ckdir := t.TempDir()
	coord := NewCoordinator(Config{LeaseTimeout: 150 * time.Millisecond, SweepEvery: 25 * time.Millisecond})
	defer coord.Close()

	// The hung worker accepts the job, then blocks forever with its
	// heartbeat loop suppressed (enormous cadence), so only lease expiry
	// can recover the job.
	hang := make(chan struct{})
	hung := &Worker{
		Name:           "hung",
		Runner:         harness.NewRunnerWithCheckpoints(1, ckdir),
		Slots:          1,
		HeartbeatEvery: time.Hour,
		BeforeJob:      func(harness.RunSpec) error { <-hang; return nil },
	}
	cend, wend := net.Pipe()
	go coord.HandleConn(cend)
	go hung.Run(wend)
	defer close(hang)
	defer wend.Close()

	pending := coord.Submit(spec)

	// Wait until the hung worker holds the job, then add a healthy
	// worker; the job must land there after the lease expires.
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Cells == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	healthy := &Worker{Name: "healthy", Runner: harness.NewRunnerWithCheckpoints(1, ckdir), Slots: 1, HeartbeatEvery: 20 * time.Millisecond}
	cend2, wend2 := net.Pipe()
	go coord.HandleConn(cend2)
	go healthy.Run(wend2)
	defer wend2.Close()

	res, err := pending.Wait()
	if err != nil {
		t.Fatalf("job after lease expiry: %v", err)
	}
	if res.Res.Core.Instructions == 0 {
		t.Fatalf("empty result after re-queue")
	}
	if st := coord.Stats(); st.Requeues == 0 {
		t.Fatalf("expected lease-expiry re-queue, got %+v", st)
	}
}

// TestFabricRetryCap permanently fails a job whose spec errors on every
// worker, after MaxAttempts tries, without stalling the rest of the grid.
func TestFabricRetryCap(t *testing.T) {
	fleet := StartFleet(2, 1, t.TempDir(), Config{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	defer fleet.Close()

	bad := harness.RunSpec{Benchmark: "no-such-benchmark", Policy: "baseline", Warmup: 1000, Measure: 1000}
	good := harness.RunSpec{Benchmark: "kafka", Policy: "baseline", Warmup: 20_000, Measure: 60_000}
	badP, goodP := fleet.Coordinator.Submit(bad), fleet.Coordinator.Submit(good)

	if _, err := goodP.Wait(); err != nil {
		t.Fatalf("good cell: %v", err)
	}
	_, err := badP.Wait()
	if err == nil {
		t.Fatalf("bad cell: want permanent failure")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("bad cell error %q: want attempts exhausted", err)
	}
	st := fleet.Stats()
	if st.Failed != 1 || st.Retries != 1 {
		t.Fatalf("want 1 permanent failure after 1 retry, got %+v", st)
	}
}

// TestFabricWarmLease checks the cluster-wide warm-once protocol: two
// specs sharing a warm tuple but differing in measure budget, distributed
// over two workers with a shared store, must warm exactly once — the
// leader simulates the warmup, the other cell forks (from disk on the
// other worker).
func TestFabricWarmLease(t *testing.T) {
	a := harness.RunSpec{Benchmark: "cassandra", Policy: "pdip44", Warmup: 20_000, Measure: 40_000}
	b := a
	b.Measure = 60_000
	if a.WarmTuple() != b.WarmTuple() || a.WarmTuple() == "" {
		t.Fatalf("specs should share a warm tuple: %q vs %q", a.WarmTuple(), b.WarmTuple())
	}

	fleet := StartFleet(2, 1, t.TempDir(), Config{})
	defer fleet.Close()
	if _, err := fleet.RunGrid([]harness.RunSpec{a, b}); err != nil {
		t.Fatal(err)
	}
	st := fleet.Stats()
	if st.Runner.Checkpoint.WarmupsExecuted != 1 {
		t.Fatalf("want exactly 1 cluster-wide warmup, got %+v", st.Runner.Checkpoint)
	}
	if st.Runner.Checkpoint.Forks != 2 {
		t.Fatalf("want both cells served by forks, got %+v", st.Runner.Checkpoint)
	}
}

// TestFabricTCP runs one cell over a real localhost TCP connection — the
// deployment transport — and compares against the in-process result.
func TestFabricTCP(t *testing.T) {
	spec := harness.RunSpec{Benchmark: "kafka", Policy: "pdip44", Warmup: 20_000, Measure: 60_000}
	want := serialDoc(t, []harness.RunSpec{spec})

	coord := NewCoordinator(Config{})
	defer coord.Close()
	l, err := coord.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Skipf("no localhost TCP available: %v", err)
	}
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Name: "tcp-w1", Runner: harness.NewRunnerWithCheckpoints(1, t.TempDir()), Slots: 1}
	done := make(chan error, 1)
	go func() { done <- w.Run(conn) }()

	results, err := coord.RunGrid([]harness.RunSpec{spec})
	if err != nil {
		t.Fatalf("tcp grid: %v", err)
	}
	if got := mergedDoc(t, results); !bytes.Equal(got, want) {
		t.Fatalf("tcp merged document differs from serial reference")
	}
	coord.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestFabricSubmitDedup hands the coordinator the same spec twice and
// expects one job, one execution, two identical results.
func TestFabricSubmitDedup(t *testing.T) {
	fleet := StartFleet(1, 1, t.TempDir(), Config{})
	defer fleet.Close()
	spec := harness.RunSpec{Benchmark: "kafka", Policy: "baseline", Warmup: 20_000, Measure: 60_000}
	p1, p2 := fleet.Coordinator.Submit(spec), fleet.Coordinator.Submit(spec)
	r1, err1 := p1.Wait()
	r2, err2 := p2.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("dedup waits: %v / %v", err1, err2)
	}
	if r1 != r2 {
		t.Fatalf("duplicate submissions should share one job result")
	}
	if st := fleet.Stats(); st.Cells != 1 || st.Runner.RunsExecuted != 1 {
		t.Fatalf("want one deduped cell executed once, got %+v", st)
	}
}
