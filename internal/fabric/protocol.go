package fabric

import (
	"encoding/json"
	"net"
	"sync"

	"pdip/internal/harness"
	"pdip/internal/metrics"
)

// The wire protocol is newline-delimited JSON messages over a single
// duplex connection per worker (TCP, or net.Pipe in-process). Each side
// runs one reader loop; writes are serialised per connection. The
// protocol is pull-based: the worker offers capacity with one "ready"
// token per free slot, and the coordinator answers each token with at
// most one "assign".
//
//	worker → coordinator: hello, ready, heartbeat, sample, done, fail
//	coordinator → worker: assign, drain
//
// Everything on the wire round-trips bit-exactly: metric snapshots
// marshal gauges through Go's shortest-round-trip float encoding, so the
// coordinator's merged document is byte-identical to a serial run's.
const (
	msgHello     = "hello"     // worker introduces itself (name, slots)
	msgReady     = "ready"     // worker offers one free execution slot
	msgAssign    = "assign"    // coordinator hands the worker a job
	msgDrain     = "drain"     // coordinator: no more work; disconnect
	msgHeartbeat = "heartbeat" // worker liveness + piggybacked runner stats
	msgSample    = "sample"    // one streamed interval snapshot of a running job
	msgDone      = "done"      // job finished; result attached
	msgFail      = "fail"      // job errored; error string attached
)

// message is the single wire envelope; Type selects which fields matter.
type message struct {
	Type string `json:"type"`

	// hello
	Worker string `json:"worker,omitempty"`
	Slots  int    `json:"slots,omitempty"`

	// assign / sample / done / fail
	JobID uint64 `json:"job_id,omitempty"`
	// Attempt is 1 on the first assignment and counts up across
	// re-queues, so a worker can log reruns distinctly.
	Attempt int `json:"attempt,omitempty"`
	// Spec is the job itself (assign).
	Spec *harness.RunSpec `json:"spec,omitempty"`
	// WarmLead marks this job as its warm tuple's cluster-wide leader:
	// the worker executing it performs the tuple's one real warmup and
	// persists the checkpoint; the tuple's remaining jobs stay held at
	// the coordinator until this job completes.
	WarmLead bool `json:"warm_lead,omitempty"`

	Sample *metrics.Sample    `json:"sample,omitempty"`
	Result *harness.RunResult `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`

	// Stats piggybacks the worker's runner counters on heartbeats and
	// completions, so the coordinator can report cluster-wide warm-state
	// reuse once, programmatically (no interleaved stderr prints).
	Stats *harness.RunnerStats `json:"stats,omitempty"`
}

// wire wraps one connection with a JSON codec and a write lock (multiple
// goroutines — executors, the heartbeat loop — send on one conn).
type wire struct {
	conn net.Conn
	dec  *json.Decoder
	wmu  sync.Mutex
	enc  *json.Encoder
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
}

func (w *wire) send(m *message) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.enc.Encode(m)
}

func (w *wire) recv() (*message, error) {
	var m message
	if err := w.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (w *wire) close() error { return w.conn.Close() }
