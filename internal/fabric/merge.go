package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pdip/internal/harness"
	"pdip/internal/metrics"
	"pdip/internal/stats"
)

// Cell is one merged grid cell: the final metric snapshot plus any
// streamed interval samples, in recording order.
type Cell struct {
	Final   metrics.Snapshot `json:"final"`
	Samples []metrics.Sample `json:"samples,omitempty"`
}

// Merge keys results by their spec key, independent of arrival order.
// Duplicate keys are an error: a well-formed grid has unique cell keys,
// and silently overwriting one would mask a mis-declared grid.
func Merge(results []*harness.RunResult) (map[string]Cell, error) {
	cells := make(map[string]Cell, len(results))
	for _, res := range results {
		key := res.Spec.Key()
		if _, dup := cells[key]; dup {
			return nil, fmt.Errorf("fabric: merge: duplicate cell key %q", key)
		}
		cells[key] = Cell{Final: res.Metrics, Samples: res.Samples}
	}
	return cells, nil
}

// WriteMerged writes the canonical merged-grid document: one JSON object
// keyed by cell key, indented. encoding/json sorts map keys, metric
// snapshots are stable-ordered, and gauges round-trip bit-exactly — so
// two result sets produce byte-identical documents iff every cell's
// metrics are bit-identical, regardless of the order the results arrived
// in. This is the byte-equality surface TestFabricBitIdenticalToSerial
// and `make fabric-smoke` compare on.
func WriteMerged(w io.Writer, cells map[string]Cell) error {
	return writeOrderedJSON(w, cells)
}

// writeOrderedJSON writes v indented; encoding/json emits map keys
// sorted, so the bytes are deterministic.
func writeOrderedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// MergedFrom runs the full serial reference: it executes specs on r
// (Runner.RunAll) and merges, producing the document a distributed run of
// the same grid must match byte for byte.
func MergedFrom(r *harness.Runner, specs []harness.RunSpec) (map[string]Cell, error) {
	results, err := r.RunAll(specs)
	if err != nil {
		return nil, err
	}
	return Merge(results)
}

// SummaryTable formats a compact per-cell overview (IPC, L1I MPKI) of a
// merged grid, rows sorted by cell key — `gridd run`'s human-readable
// complement to the JSON document.
func SummaryTable(results []*harness.RunResult) string {
	sorted := append([]*harness.RunResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Spec.Key() < sorted[j].Spec.Key() })
	t := stats.NewTable("cell", "IPC", "L1I MPKI", "instructions")
	for _, res := range sorted {
		t.AddRow(res.Spec.Key(),
			fmt.Sprintf("%.3f", res.Res.IPC()),
			fmt.Sprintf("%.1f", res.Res.L1IMPKI()),
			fmt.Sprintf("%d", res.Res.Core.Instructions))
	}
	return t.String()
}
