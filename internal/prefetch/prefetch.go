// Package prefetch defines the interface between the core and pluggable
// instruction prefetchers (PDIP, EIP), the prefetch queue (PQ) that sits
// beside the FTQ, and the counters behind the paper's prefetch metrics
// (PPKI, accuracy, late rate, trigger distribution).
package prefetch

import (
	"pdip/internal/invariant"
	"pdip/internal/isa"
	"pdip/internal/mem"
)

// TriggerKind classifies why a prefetch was issued (Figure 16).
type TriggerKind uint8

const (
	// TriggerNone is used by prefetchers without PDIP-style triggers.
	TriggerNone TriggerKind = iota
	// TriggerMispredict means the trigger was a front-end resteering
	// instruction (branch mispredict or BTB miss).
	TriggerMispredict
	// TriggerLastTaken means the trigger was the last retired taken
	// branch (long-latency misses with no resteer).
	TriggerLastTaken
)

func (k TriggerKind) String() string {
	switch k {
	case TriggerMispredict:
		return "mispredict"
	case TriggerLastTaken:
		return "last-taken"
	default:
		return "none"
	}
}

// Request is one prefetch target emitted by a prefetcher.
type Request struct {
	// Line is the cache line to prefetch.
	Line isa.Addr
	// Trigger records the trigger class for Figure 16 accounting.
	Trigger TriggerKind
}

// RetireEvent describes the retirement of the first instruction of one
// cache-line fetch episode, carrying everything the FEC machinery and the
// prefetchers need: miss status, observed latency, front-end stall
// exposure, back-end starvation, and the trigger candidates.
type RetireEvent struct {
	// Line is the instruction cache line.
	Line isa.Addr
	// Missed reports whether this episode missed the L1I.
	Missed bool
	// ServedBy is the level that supplied the line on a miss.
	ServedBy mem.Level
	// FetchCycle is when the demand access was issued.
	FetchCycle int64
	// FetchLatency is the demand-visible fill latency in cycles.
	FetchLatency int64
	// StarveCycles counts decode-starvation cycles attributed to this
	// episode's miss.
	StarveCycles int
	// BackendEmpty reports whether the back-end ran dry (issue queue
	// empty) during the starvation window.
	BackendEmpty bool
	// FEC reports the paper's three-condition front-end-critical status:
	// retired an instruction, missed the L1I, exposed front-end stalls.
	FEC bool
	// HighCost reports StarveCycles above the high-cost threshold (>10).
	HighCost bool
	// ResteerTrigger is the block (line) address of the most recent
	// front-end resteering instruction when this episode was fetched in
	// a resteer shadow, else 0.
	ResteerTrigger isa.Addr
	// ResteerWasReturn marks resteers caused by return mispredicts
	// (excluded from PDIP insertion per §5.2).
	ResteerWasReturn bool
	// LastTakenBlock is the block address of the last retired taken
	// branch (the long-latency-miss trigger).
	LastTakenBlock isa.Addr
}

// Prefetcher is the core-facing contract. Implementations are driven by
// two event streams: FTQ insertions (the access stream the BPU predicts)
// and line-episode retirements (the architecturally correct stream).
type Prefetcher interface {
	// Name identifies the prefetcher in stats output.
	Name() string
	// OnFTQInsert is invoked once per new FTQ entry with the entry's
	// starting block (line) address; the prefetcher appends any prefetch
	// requests to out and returns it.
	OnFTQInsert(block isa.Addr, out []Request) []Request
	// OnLineRetired is invoked once per retired line episode.
	OnLineRetired(ev RetireEvent)
	// StorageKB reports the metadata budget for Figure 15 accounting.
	StorageKB() float64
}

// Stats aggregates prefetch-issue accounting maintained by the queue.
type Stats struct {
	// Enqueued counts requests accepted into the PQ.
	Enqueued uint64
	// DroppedQueueFull counts requests rejected because the PQ was full.
	DroppedQueueFull uint64
	// Issued counts prefetches sent to the hierarchy.
	Issued uint64
	// DroppedPresent counts prefetches discarded on L1I probe hit.
	DroppedPresent uint64
	// DroppedMSHR counts prefetches discarded for MSHR headroom.
	DroppedMSHR uint64
	// ByTrigger splits issued prefetches by trigger class (Figure 16).
	ByTrigger [3]uint64
}

// Queue is the prefetch queue (PQ) of §5: a FIFO of prefetch target lines
// that probes the L1I and issues fills only with MSHR headroom to spare.
type Queue struct {
	entries []Request
	head    int
	count   int

	// ReserveMSHRs is the demand-protection threshold (default 2).
	ReserveMSHRs int
	// IssuePerCycle bounds prefetch issue bandwidth.
	IssuePerCycle int
	// ZeroCost makes issued prefetches install instantly (timeliness
	// ceiling study, §7.2).
	ZeroCost bool

	Stats Stats
}

// NewQueue returns a PQ with the given capacity (Table 1: 40 lines).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 40
	}
	return &Queue{
		entries:       make([]Request, capacity),
		ReserveMSHRs:  2,
		IssuePerCycle: 2,
	}
}

// Len returns the queued request count.
func (q *Queue) Len() int { return q.count }

// Enqueue adds requests, dropping when full (the paper drops rather than
// back-pressures).
func (q *Queue) Enqueue(reqs ...Request) {
	for _, r := range reqs {
		if q.count == len(q.entries) {
			q.Stats.DroppedQueueFull++
			continue
		}
		q.entries[(q.head+q.count)%len(q.entries)] = r
		q.count++
		q.Stats.Enqueued++
		if invariant.Enabled {
			if q.count > len(q.entries) {
				invariant.Failf("PQ occupancy %d exceeds capacity %d", q.count, len(q.entries))
			}
			if r.Line.Line() != r.Line {
				invariant.Failf("PQ request %#x is not line-aligned", uint64(r.Line))
			}
		}
	}
}

// Drain issues up to IssuePerCycle prefetches into the instruction-side
// port at cycle now, as OpPrefetch messages. priority marks fills with the
// EMISSARY P-bit when the policy promotes prefetched FEC lines
// (PDIP+EMISSARY synergy). Drops are classified from the port's reply.
func (q *Queue) Drain(p mem.Port, now int64, priorityOf func(isa.Addr) bool) {
	for n := 0; n < q.IssuePerCycle && q.count > 0; n++ {
		req := q.entries[q.head]
		q.head = (q.head + 1) % len(q.entries)
		q.count--
		pri := priorityOf != nil && priorityOf(req.Line)
		res := p.Send(mem.Req{
			Op:       mem.OpPrefetch,
			Line:     req.Line,
			At:       now,
			Reserve:  q.ReserveMSHRs,
			Priority: pri,
			ZeroCost: q.ZeroCost,
		})
		if res.Dropped {
			if res.Reason == mem.DropPresent {
				q.Stats.DroppedPresent++
			} else {
				q.Stats.DroppedMSHR++
			}
			continue
		}
		q.Stats.Issued++
		q.Stats.ByTrigger[req.Trigger]++
	}
	if invariant.Enabled && (q.count < 0 || q.head < 0 || q.head >= len(q.entries)) {
		invariant.Failf("PQ ring corrupt: head %d count %d capacity %d", q.head, q.count, len(q.entries))
	}
}

// Flush empties the queue (used on front-end resteers).
func (q *Queue) Flush() {
	q.head = 0
	q.count = 0
}

// None is the no-op prefetcher used by the FDIP-only baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnFTQInsert implements Prefetcher.
func (None) OnFTQInsert(_ isa.Addr, out []Request) []Request { return out }

// OnLineRetired implements Prefetcher.
func (None) OnLineRetired(RetireEvent) {}

// StorageKB implements Prefetcher.
func (None) StorageKB() float64 { return 0 }
