package prefetch

import "pdip/internal/metrics"

// RegisterMetrics binds the prefetch queue's issue accounting under prefix
// (conventionally "pq") into reg. Bindings are snapshot-time views over
// Stats; the enqueue/drain hot path is untouched.
func (q *Queue) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+".enqueued", func() uint64 { return q.Stats.Enqueued })
	reg.CounterFunc(prefix+".dropped_queue_full", func() uint64 { return q.Stats.DroppedQueueFull })
	reg.CounterFunc(prefix+".issued", func() uint64 { return q.Stats.Issued })
	reg.CounterFunc(prefix+".dropped_present", func() uint64 { return q.Stats.DroppedPresent })
	reg.CounterFunc(prefix+".dropped_mshr", func() uint64 { return q.Stats.DroppedMSHR })
	reg.CounterFunc(prefix+".trigger.none", func() uint64 { return q.Stats.ByTrigger[TriggerNone] })
	reg.CounterFunc(prefix+".trigger.mispredict", func() uint64 { return q.Stats.ByTrigger[TriggerMispredict] })
	reg.CounterFunc(prefix+".trigger.last_taken", func() uint64 { return q.Stats.ByTrigger[TriggerLastTaken] })
	reg.Gauge(prefix + ".capacity").Set(float64(len(q.entries)))
}
