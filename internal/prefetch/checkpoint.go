package prefetch

import (
	"fmt"

	"pdip/internal/checkpoint"
)

// Checkpointer is the optional Prefetcher extension for warm-state
// checkpointing. Every shipped prefetcher implements it; the core refuses
// to snapshot a prefetcher that does not, so a new implementation cannot
// silently opt out of checkpoint coverage.
type Checkpointer interface {
	// CaptureCheckpoint captures the prefetcher's full training state.
	CaptureCheckpoint() checkpoint.PrefetcherState
	// RestoreCheckpoint overwrites the prefetcher's state from a capture.
	// The state's Kind must match the implementation.
	RestoreCheckpoint(checkpoint.PrefetcherState) error
}

// CaptureRequests converts queued requests to their wire form.
func CaptureRequests(reqs []Request) []checkpoint.RequestState {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]checkpoint.RequestState, len(reqs))
	for i, r := range reqs {
		out[i] = checkpoint.RequestState{Line: r.Line, Trigger: uint8(r.Trigger)}
	}
	return out
}

// RestoreRequests converts wire-form requests back, appending to dst.
func RestoreRequests(dst []Request, sts []checkpoint.RequestState) []Request {
	for _, st := range sts {
		dst = append(dst, Request{Line: st.Line, Trigger: TriggerKind(st.Trigger)})
	}
	return dst
}

// CaptureCheckpoint captures the queued requests oldest-first and the
// issue stats. The issue-policy knobs (ReserveMSHRs, IssuePerCycle,
// ZeroCost) are configuration set by the core at construction, not
// simulated state.
func (q *Queue) CaptureCheckpoint() checkpoint.QueueState {
	st := checkpoint.QueueState{
		Entries: make([]checkpoint.RequestState, 0, q.count),
		Stats:   checkpoint.QueueStats(q.Stats),
	}
	for i := 0; i < q.count; i++ {
		r := q.entries[(q.head+i)%len(q.entries)]
		st.Entries = append(st.Entries, checkpoint.RequestState{Line: r.Line, Trigger: uint8(r.Trigger)})
	}
	return st
}

// RestoreCheckpoint replaces the queue's contents with the captured
// requests, rebuilding the ring at head 0.
func (q *Queue) RestoreCheckpoint(st checkpoint.QueueState) error {
	if len(st.Entries) > len(q.entries) {
		return fmt.Errorf("prefetch: checkpoint has %d PQ entries, capacity is %d", len(st.Entries), len(q.entries))
	}
	q.head = 0
	q.count = len(st.Entries)
	for i, r := range st.Entries {
		q.entries[i] = Request{Line: r.Line, Trigger: TriggerKind(r.Trigger)}
	}
	q.Stats = Stats(st.Stats)
	return nil
}

// CaptureCheckpoint implements Checkpointer: the baseline prefetcher has
// no state.
func (None) CaptureCheckpoint() checkpoint.PrefetcherState {
	return checkpoint.PrefetcherState{Kind: "none"}
}

// RestoreCheckpoint implements Checkpointer.
func (None) RestoreCheckpoint(st checkpoint.PrefetcherState) error {
	if st.Kind != "none" {
		return fmt.Errorf("prefetch: checkpoint kind %q, prefetcher is none", st.Kind)
	}
	return nil
}

// CaptureCheckpoint implements Checkpointer.
func (n *NextLine) CaptureCheckpoint() checkpoint.PrefetcherState {
	return checkpoint.PrefetcherState{
		Kind: "nextline",
		NextLine: &checkpoint.NextLineState{
			Degree:  n.Degree,
			Emitted: n.Emitted,
			Pending: CaptureRequests(n.pending),
		},
	}
}

// RestoreCheckpoint implements Checkpointer.
func (n *NextLine) RestoreCheckpoint(st checkpoint.PrefetcherState) error {
	if st.Kind != "nextline" || st.NextLine == nil {
		return fmt.Errorf("prefetch: checkpoint kind %q, prefetcher is nextline", st.Kind)
	}
	if st.NextLine.Degree != n.Degree {
		return fmt.Errorf("prefetch: checkpoint nextline degree %d, prefetcher has %d", st.NextLine.Degree, n.Degree)
	}
	n.Emitted = st.NextLine.Emitted
	n.pending = RestoreRequests(n.pending[:0], st.NextLine.Pending)
	return nil
}
