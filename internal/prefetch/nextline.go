package prefetch

import "pdip/internal/isa"

// RetireEmitter is an optional Prefetcher extension for prefetchers that
// generate requests at retirement (rather than at FTQ insertion, whose
// path returns requests directly). The core drains pending requests into
// the PQ once per cycle.
type RetireEmitter interface {
	// TakePending appends and clears requests generated since the last
	// call.
	TakePending(out []Request) []Request
}

// NextLine is the classic sequential prefetcher: when a retired line
// episode missed the L1I, prefetch the next Degree lines. The paper's §8
// discussion (and Ishii et al.'s rebasing study) predicts this baseline
// gains little over FDIP — the decoupled front-end already primes the
// sequential path — which is exactly the behaviour to demonstrate.
type NextLine struct {
	// Degree is how many following lines each miss requests.
	Degree int
	// Emitted counts generated requests.
	Emitted uint64

	pending []Request
}

// NewNextLine returns a next-line prefetcher of the given degree.
func NewNextLine(degree int) *NextLine {
	if degree <= 0 {
		degree = 2
	}
	return &NextLine{Degree: degree}
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "nextline" }

// StorageKB implements Prefetcher: next-line needs no metadata.
func (n *NextLine) StorageKB() float64 { return 0 }

// OnFTQInsert implements Prefetcher (no access-stream behaviour: FDIP
// already primes the predicted path).
func (n *NextLine) OnFTQInsert(_ isa.Addr, out []Request) []Request { return out }

// OnLineRetired implements Prefetcher: misses trigger sequential requests.
func (n *NextLine) OnLineRetired(ev RetireEvent) {
	if !ev.Missed {
		return
	}
	for i := 1; i <= n.Degree; i++ {
		n.pending = append(n.pending, Request{
			Line:    ev.Line + isa.Addr(i*isa.LineSize),
			Trigger: TriggerNone,
		})
		n.Emitted++
	}
}

// TakePending implements RetireEmitter.
func (n *NextLine) TakePending(out []Request) []Request {
	out = append(out, n.pending...)
	n.pending = n.pending[:0]
	return out
}
