package prefetch

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/mem"
)

func TestQueueFIFOAndDrop(t *testing.T) {
	q := NewQueue(2)
	q.Enqueue(Request{Line: 0x40}, Request{Line: 0x80}, Request{Line: 0xc0})
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Stats.DroppedQueueFull != 1 || q.Stats.Enqueued != 2 {
		t.Fatalf("stats %+v", q.Stats)
	}
}

func TestQueueDrainIssues(t *testing.T) {
	h := mem.MustNew(mem.DefaultConfig())
	q := NewQueue(8)
	q.IssuePerCycle = 2
	q.Enqueue(Request{Line: 0x1000, Trigger: TriggerMispredict},
		Request{Line: 0x2000, Trigger: TriggerLastTaken},
		Request{Line: 0x3000, Trigger: TriggerMispredict})
	q.Drain(h.InstPort(), 10, nil)
	if q.Stats.Issued != 2 || q.Len() != 1 {
		t.Fatalf("issued %d, remaining %d", q.Stats.Issued, q.Len())
	}
	q.Drain(h.InstPort(), 11, nil)
	if q.Stats.Issued != 3 {
		t.Fatalf("issued %d after second drain", q.Stats.Issued)
	}
	if q.Stats.ByTrigger[TriggerMispredict] != 2 || q.Stats.ByTrigger[TriggerLastTaken] != 1 {
		t.Fatalf("trigger split %+v", q.Stats.ByTrigger)
	}
	if !h.L1I.Contains(0x1000) || !h.L1I.Contains(0x3000) {
		t.Fatal("prefetched lines not installed")
	}
}

func TestQueueDropsPresent(t *testing.T) {
	h := mem.MustNew(mem.DefaultConfig())
	h.FetchInst(0x1000, 0, false)
	q := NewQueue(8)
	q.Enqueue(Request{Line: 0x1000})
	q.Drain(h.InstPort(), 500, nil)
	if q.Stats.Issued != 0 || q.Stats.DroppedPresent != 1 {
		t.Fatalf("stats %+v", q.Stats)
	}
}

func TestQueueRespectsMSHRReserve(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.L1I.MSHRs = 3
	h := mem.MustNew(cfg)
	q := NewQueue(8)
	q.ReserveMSHRs = 2
	q.IssuePerCycle = 4
	q.Enqueue(Request{Line: 0x1000}, Request{Line: 0x2000})
	q.Drain(h.InstPort(), 0, nil)
	if q.Stats.Issued != 1 || q.Stats.DroppedMSHR != 1 {
		t.Fatalf("stats %+v", q.Stats)
	}
}

func TestQueuePriorityCallback(t *testing.T) {
	h := mem.MustNew(mem.DefaultConfig())
	q := NewQueue(4)
	q.Enqueue(Request{Line: 0x1000})
	q.Drain(h.InstPort(), 0, func(l isa.Addr) bool { return true })
	if h.L1I.PriorityLines() != 1 {
		t.Fatal("priority callback not applied to fill")
	}
}

func TestQueueZeroCost(t *testing.T) {
	h := mem.MustNew(mem.DefaultConfig())
	q := NewQueue(4)
	q.ZeroCost = true
	q.Enqueue(Request{Line: 0x1000})
	q.Drain(h.InstPort(), 7, nil)
	res := h.FetchInst(0x1000, 8, false)
	if !res.L1Hit || res.WasInflight {
		t.Fatalf("zero-cost fill not instant: %+v", res)
	}
}

func TestQueueFlush(t *testing.T) {
	q := NewQueue(4)
	q.Enqueue(Request{Line: 0x40}, Request{Line: 0x80})
	q.Flush()
	if q.Len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestNonePrefetcher(t *testing.T) {
	var n None
	if n.Name() != "none" || n.StorageKB() != 0 {
		t.Fatal("None identity wrong")
	}
	buf := []Request{{Line: 1}}
	if got := n.OnFTQInsert(0x40, buf); len(got) != 1 {
		t.Fatal("None mutated the request buffer")
	}
	n.OnLineRetired(RetireEvent{})
}

func TestTriggerKindString(t *testing.T) {
	for _, k := range []TriggerKind{TriggerNone, TriggerMispredict, TriggerLastTaken} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestNextLineEmitsOnMiss(t *testing.T) {
	n := NewNextLine(3)
	n.OnLineRetired(RetireEvent{Line: 0x9000, Missed: true})
	reqs := n.TakePending(nil)
	if len(reqs) != 3 {
		t.Fatalf("emitted %d, want 3", len(reqs))
	}
	for i, r := range reqs {
		want := isa.Addr(0x9000 + (i+1)*isa.LineSize)
		if r.Line != want {
			t.Fatalf("request %d = %v, want %v", i, r.Line, want)
		}
	}
	// Hits emit nothing; pending is drained.
	n.OnLineRetired(RetireEvent{Line: 0xa000, Missed: false})
	if got := n.TakePending(nil); len(got) != 0 {
		t.Fatal("hit emitted requests")
	}
}

func TestNextLineIdentity(t *testing.T) {
	n := NewNextLine(0) // defaulted
	if n.Degree != 2 || n.Name() != "nextline" || n.StorageKB() != 0 {
		t.Fatalf("identity: %+v", n)
	}
}
