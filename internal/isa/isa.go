// Package isa defines the minimal instruction-set-level vocabulary shared by
// every layer of the simulator: addresses, cache-line geometry, branch kinds,
// and the dynamic instruction record that flows through the pipeline.
//
// The model is ISA-agnostic in the details (no opcodes or registers) but
// follows x86-like conventions from the paper's Golden Cove baseline:
// variable-length instructions and 64-byte cache lines.
package isa

import "fmt"

// Addr is a byte address in the simulated virtual/physical address space.
// The simulator does not model address translation (the paper stores full
// physical addresses in its tables to sidestep ITLB effects), so virtual
// and physical addresses coincide.
type Addr uint64

// Cache-line geometry. The entire paper, and therefore this model, assumes
// 64-byte lines at every level of the hierarchy.
const (
	LineShift = 6
	LineSize  = 1 << LineShift
	LineMask  = LineSize - 1
)

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ LineMask }

// LineOffset returns the byte offset of a within its cache line.
func (a Addr) LineOffset() int { return int(a & LineMask) }

// String formats the address as hex, convenient in test failures and traces.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// BranchKind classifies an instruction's control-flow behaviour. The kinds
// mirror the structures of the branch prediction unit: conditional branches
// consult TAGE, direct jumps/calls consult the BTB, indirect jumps/calls
// consult ITTAGE, and returns consult the RAS.
type BranchKind uint8

const (
	// NotBranch is any non-control-flow instruction.
	NotBranch BranchKind = iota
	// CondDirect is a conditional direct branch (direction predicted by
	// TAGE, target by BTB).
	CondDirect
	// UncondDirect is an unconditional direct jump (target by BTB).
	UncondDirect
	// DirectCall is a direct call; pushes the return address on the RAS.
	DirectCall
	// IndirectJump is a register-indirect jump (target by ITTAGE).
	IndirectJump
	// IndirectCall is a register-indirect call (ITTAGE + RAS push).
	IndirectCall
	// Return pops its target from the RAS.
	Return
)

// IsBranch reports whether the kind is any control-flow instruction.
func (k BranchKind) IsBranch() bool { return k != NotBranch }

// IsCall reports whether the kind pushes a return address.
func (k BranchKind) IsCall() bool { return k == DirectCall || k == IndirectCall }

// IsIndirect reports whether the target comes from ITTAGE (or the RAS for
// returns) rather than the BTB.
func (k BranchKind) IsIndirect() bool {
	return k == IndirectJump || k == IndirectCall || k == Return
}

// IsUnconditional reports whether the branch is always taken when executed.
func (k BranchKind) IsUnconditional() bool {
	return k.IsBranch() && k != CondDirect
}

func (k BranchKind) String() string {
	switch k {
	case NotBranch:
		return "not-branch"
	case CondDirect:
		return "cond"
	case UncondDirect:
		return "jmp"
	case DirectCall:
		return "call"
	case IndirectJump:
		return "ijmp"
	case IndirectCall:
		return "icall"
	case Return:
		return "ret"
	default:
		return fmt.Sprintf("BranchKind(%d)", uint8(k))
	}
}

// Inst is one dynamic instruction as produced by a path walker. For branch
// instructions, Taken and Target describe the *actual* outcome on the path
// being walked (the correct path for the oracle walker, the speculative
// path for a wrong-path walker).
type Inst struct {
	// PC is the instruction's address.
	PC Addr
	// Size is the instruction length in bytes.
	Size uint8
	// Kind classifies control flow.
	Kind BranchKind
	// Taken is the actual direction for CondDirect; unconditional branches
	// always have Taken == true, non-branches false.
	Taken bool
	// Target is the actual target when Taken.
	Target Addr
}

// NextPC returns the address of the instruction that follows this one on
// the walked path.
func (in Inst) NextPC() Addr {
	if in.Kind.IsBranch() && in.Taken {
		return in.Target
	}
	return in.PC + Addr(in.Size)
}

// FallThrough returns the sequential next address regardless of branching.
func (in Inst) FallThrough() Addr { return in.PC + Addr(in.Size) }
