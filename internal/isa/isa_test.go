package isa

import (
	"testing"
	"testing/quick"
)

func TestLineGeometry(t *testing.T) {
	cases := []struct {
		addr   Addr
		line   Addr
		offset int
	}{
		{0x0, 0x0, 0},
		{0x3f, 0x0, 63},
		{0x40, 0x40, 0},
		{0x1234, 0x1200, 0x34},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Line(%v) = %v, want %v", c.addr, got, c.line)
		}
		if got := c.addr.LineOffset(); got != c.offset {
			t.Errorf("LineOffset(%v) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestLineProperty(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		ln := addr.Line()
		return ln%LineSize == 0 && addr >= ln && addr < ln+LineSize &&
			ln+Addr(addr.LineOffset()) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchKindPredicates(t *testing.T) {
	cases := []struct {
		kind                           BranchKind
		branch, call, indirect, uncond bool
	}{
		{NotBranch, false, false, false, false},
		{CondDirect, true, false, false, false},
		{UncondDirect, true, false, false, true},
		{DirectCall, true, true, false, true},
		{IndirectJump, true, false, true, true},
		{IndirectCall, true, true, true, true},
		{Return, true, false, true, true},
	}
	for _, c := range cases {
		if c.kind.IsBranch() != c.branch {
			t.Errorf("%v.IsBranch() = %v", c.kind, !c.branch)
		}
		if c.kind.IsCall() != c.call {
			t.Errorf("%v.IsCall() = %v", c.kind, !c.call)
		}
		if c.kind.IsIndirect() != c.indirect {
			t.Errorf("%v.IsIndirect() = %v", c.kind, !c.indirect)
		}
		if c.kind.IsUnconditional() != c.uncond {
			t.Errorf("%v.IsUnconditional() = %v", c.kind, !c.uncond)
		}
	}
}

func TestInstNextPC(t *testing.T) {
	plain := Inst{PC: 0x100, Size: 4, Kind: NotBranch}
	if plain.NextPC() != 0x104 {
		t.Errorf("plain NextPC = %v", plain.NextPC())
	}
	taken := Inst{PC: 0x100, Size: 2, Kind: CondDirect, Taken: true, Target: 0x900}
	if taken.NextPC() != 0x900 {
		t.Errorf("taken NextPC = %v", taken.NextPC())
	}
	notTaken := Inst{PC: 0x100, Size: 2, Kind: CondDirect, Taken: false, Target: 0x900}
	if notTaken.NextPC() != 0x102 {
		t.Errorf("not-taken NextPC = %v", notTaken.NextPC())
	}
	if notTaken.FallThrough() != 0x102 {
		t.Errorf("FallThrough = %v", notTaken.FallThrough())
	}
}

func TestKindStrings(t *testing.T) {
	for k := NotBranch; k <= Return; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}
