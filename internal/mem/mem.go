// Package mem wires the cache levels of Table 1 into a hierarchy of
// request/response ports and provides the three access paths the core
// uses: demand instruction fetch, instruction prefetch, and data access.
// Latencies accumulate down the hierarchy (L1 2, L2 10, L3 20, then
// DRAM), fills are inclusive, and MSHR exhaustion delays demands but
// drops prefetches, as in the paper's §5. See port.go for the message
// model; the named methods on Hierarchy are convenience wrappers that
// build the corresponding Req.
package mem

import (
	"pdip/internal/cache"
	"pdip/internal/isa"
)

// Level identifies which level served an access.
type Level uint8

const (
	// LevelL1 means the first-level cache (L1I or L1D) hit.
	LevelL1 Level = iota
	// LevelL2 means the access missed L1 and hit L2.
	LevelL2
	// LevelL3 means the access missed L1 and L2 and hit L3.
	LevelL3
	// LevelMem means the access went to DRAM.
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	default:
		return "Mem"
	}
}

// Config sizes the hierarchy.
type Config struct {
	L1I, L1D, L2, L3 cache.Config
	// DRAMLatency is the flat main-memory latency in cycles.
	DRAMLatency int
}

// DefaultConfig mirrors the paper's Table 1 (Golden Cove-like).
func DefaultConfig() Config {
	return Config{
		L1I:         cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 2, MSHRs: 16},
		L1D:         cache.Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 16, HitLatency: 2, MSHRs: 16},
		L2:          cache.Config{Name: "L2", SizeBytes: 1 << 20, Ways: 16, HitLatency: 10, MSHRs: 32},
		L3:          cache.Config{Name: "L3", SizeBytes: 2 << 20, Ways: 16, HitLatency: 20, MSHRs: 64},
		DRAMLatency: 150,
	}
}

// Hierarchy is the assembled memory system: four cache levels joined by
// ports. The instruction and data front ports share the L2 port, so a
// fill started by either side is visible to both below L1 — exactly the
// inclusive shared-L2 behaviour the paper models.
type Hierarchy struct {
	L1I, L1D, L2, L3 *cache.Cache
	DRAMLatency      int

	inst *l1Port // L1I front port (fetch/prefetch/prime)
	data *l1Port // L1D front port (demand data)

	// shared marks a core-private hierarchy whose L2/L3 are views of an
	// uncore owned elsewhere (see NewShared): checkpoint capture skips
	// them so the socket snapshots the shared levels exactly once.
	shared bool
}

// New builds a hierarchy from cfg and wires its port chain:
// L1I ─┐
//
//	├─ L2 ── L3 ── DRAM
//
// L1D ─┘
func New(cfg Config) (*Hierarchy, error) {
	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := cache.New(cfg.L3)
	if err != nil {
		return nil, err
	}
	dram := cfg.DRAMLatency
	if dram <= 0 {
		dram = 150
	}
	h := &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, DRAMLatency: dram}
	// The L3 gates its MSHR before issuing to DRAM (a saturated miss file
	// delays the DRAM command); the L2's fill instead completes no earlier
	// than its own MSHR frees.
	l3p := &levelPort{c: l3, down: &dramPort{latency: dram}, level: LevelL3, gateMSHR: true}
	l2p := &levelPort{c: l2, down: l3p, level: LevelL2}
	h.inst = &l1Port{c: l1i, down: l2p, class: cache.ClassInst}
	h.data = &l1Port{c: l1d, down: l2p, class: cache.ClassData}
	return h, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// InstPort returns the instruction-side front port (demand fetch, FDIP
// prime, and PQ prefetch messages).
func (h *Hierarchy) InstPort() Port { return h.inst }

// DataPort returns the data-side front port (demand loads/stores).
func (h *Hierarchy) DataPort() Port { return h.data }

// AccessResult describes one hierarchy access — the reply message of the
// port model.
type AccessResult struct {
	// Done is the cycle the data is available to the requester.
	Done int64
	// L1Hit is true when the first-level cache held the line (possibly
	// still in flight).
	L1Hit bool
	// WasInflight is true when the L1 hit landed on an outstanding fill
	// (a "partial hit").
	WasInflight bool
	// WasPrefetch is true when the L1 line was prefetch-installed and
	// this was its first demand touch.
	WasPrefetch bool
	// ServedBy is the level that supplied the data on an L1 miss (LevelL1
	// on hits).
	ServedBy Level
	// Dropped is true when a prefetch was discarded; Reason says why.
	Dropped bool
	// Reason classifies the drop (DropNone when not dropped).
	Reason DropReason
}

// FetchInst performs a demand instruction fetch of line at cycle now.
// priority propagates the EMISSARY P-bit to fills of promoted lines.
func (h *Hierarchy) FetchInst(line isa.Addr, now int64, priority bool) AccessResult {
	return h.inst.Send(Req{Op: OpFetch, Line: line, At: now, Priority: priority})
}

// PrefetchInst issues a prefetch of line into the L1I at cycle now,
// keeping reserveMSHRs L1I MSHR entries free for demand fetches. The
// prefetch is dropped when the line is already present/in flight or when
// headroom is insufficient (§5: threshold of 2). priority propagates the
// EMISSARY P-bit. zeroCost installs the line instantly (the paper's
// zero-cost timeliness study).
func (h *Hierarchy) PrefetchInst(line isa.Addr, now int64, reserveMSHRs int, priority, zeroCost bool) AccessResult {
	return h.inst.Send(Req{
		Op:       OpPrefetch,
		Line:     line,
		At:       now,
		Reserve:  reserveMSHRs,
		Priority: priority,
		ZeroCost: zeroCost,
	})
}

// PrimeInst is the FDIP fill path: a new FTQ entry primes the L1I for its
// lines ahead of demand fetch. It behaves like PrefetchInst but does not
// mark the line as prefetched, keeping the prefetcher accuracy metrics
// (Table 4) scoped to the PQ prefetcher under study — FDIP is part of the
// baseline, not the prefetcher being measured.
func (h *Hierarchy) PrimeInst(line isa.Addr, now int64, reserveMSHRs int, priority bool) AccessResult {
	return h.inst.Send(Req{Op: OpPrime, Line: line, At: now, Reserve: reserveMSHRs, Priority: priority})
}

// AccessData performs a demand data access (load/store treated alike).
func (h *Hierarchy) AccessData(line isa.Addr, now int64) AccessResult {
	return h.data.Send(Req{Op: OpData, Line: line, At: now})
}

// PromoteInstLine sets the EMISSARY P-bit on line wherever it is resident
// (L1I and L2), used when a line qualifies as FEC at retirement.
func (h *Hierarchy) PromoteInstLine(line isa.Addr) {
	h.L1I.Promote(line)
	h.L2.Promote(line)
}
