// Package mem wires the cache levels of Table 1 into a hierarchy and
// provides the three access paths the core uses: demand instruction fetch,
// instruction prefetch, and data access. Latencies accumulate down the
// hierarchy (L1 2, L2 10, L3 20, then DRAM), fills are inclusive, and MSHR
// exhaustion delays demands but drops prefetches, as in the paper's §5.
package mem

import (
	"pdip/internal/cache"
	"pdip/internal/isa"
)

// Level identifies which level served an access.
type Level uint8

const (
	// LevelL1 means the first-level cache (L1I or L1D) hit.
	LevelL1 Level = iota
	// LevelL2 means the access missed L1 and hit L2.
	LevelL2
	// LevelL3 means the access missed L1 and L2 and hit L3.
	LevelL3
	// LevelMem means the access went to DRAM.
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	default:
		return "Mem"
	}
}

// Config sizes the hierarchy.
type Config struct {
	L1I, L1D, L2, L3 cache.Config
	// DRAMLatency is the flat main-memory latency in cycles.
	DRAMLatency int
}

// DefaultConfig mirrors the paper's Table 1 (Golden Cove-like).
func DefaultConfig() Config {
	return Config{
		L1I:         cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 2, MSHRs: 16},
		L1D:         cache.Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 16, HitLatency: 2, MSHRs: 16},
		L2:          cache.Config{Name: "L2", SizeBytes: 1 << 20, Ways: 16, HitLatency: 10, MSHRs: 32},
		L3:          cache.Config{Name: "L3", SizeBytes: 2 << 20, Ways: 16, HitLatency: 20, MSHRs: 64},
		DRAMLatency: 150,
	}
}

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	L1I, L1D, L2, L3 *cache.Cache
	DRAMLatency      int
}

// New builds a hierarchy from cfg.
func New(cfg Config) (*Hierarchy, error) {
	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := cache.New(cfg.L3)
	if err != nil {
		return nil, err
	}
	dram := cfg.DRAMLatency
	if dram <= 0 {
		dram = 150
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, DRAMLatency: dram}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// AccessResult describes one hierarchy access.
type AccessResult struct {
	// Done is the cycle the data is available to the requester.
	Done int64
	// L1Hit is true when the first-level cache held the line (possibly
	// still in flight).
	L1Hit bool
	// WasInflight is true when the L1 hit landed on an outstanding fill
	// (a "partial hit").
	WasInflight bool
	// WasPrefetch is true when the L1 line was prefetch-installed and
	// this was its first demand touch.
	WasPrefetch bool
	// ServedBy is the level that supplied the data on an L1 miss (LevelL1
	// on hits).
	ServedBy Level
	// Dropped is true when a prefetch was discarded (already present, or
	// insufficient MSHR headroom).
	Dropped bool
}

// fillLatency walks L2→L3→DRAM for a line missing in L1, updating lower
// levels (demand fills), and returns the absolute completion cycle and the
// serving level. class attributes L2/L3 miss stats to inst or data.
func (h *Hierarchy) fillLatency(line isa.Addr, now int64, class cache.Class) (int64, Level) {
	t := now
	if r := h.L2.Access(line, t, class); r.Hit {
		return r.ReadyAt, LevelL2
	}
	t += int64(h.L2.Config().HitLatency) // time to determine the L2 miss
	served := LevelL3
	var ready int64
	if r := h.L3.Access(line, t, class); r.Hit {
		ready = r.ReadyAt
	} else {
		t += int64(h.L3.Config().HitLatency)
		served = LevelMem
		// DRAM access, delayed if the L3 MSHR file is saturated.
		start := h.L3.EarliestMSHRFree(t)
		ready = start + int64(h.DRAMLatency)
		h.L3.Fill(line, t, ready, cache.FillOpts{})
	}
	// Fill L2 inclusively; respect its MSHR file.
	start := h.L2.EarliestMSHRFree(t)
	if start > ready {
		ready = start
	}
	h.L2.Fill(line, t, ready, cache.FillOpts{})
	return ready, served
}

// FetchInst performs a demand instruction fetch of line at cycle now.
// priority propagates the EMISSARY P-bit to fills of promoted lines.
func (h *Hierarchy) FetchInst(line isa.Addr, now int64, priority bool) AccessResult {
	if r := h.L1I.Access(line, now, cache.ClassInst); r.Hit {
		return AccessResult{
			Done:        r.ReadyAt,
			L1Hit:       true,
			WasInflight: r.WasInflight,
			WasPrefetch: r.WasPrefetch,
			ServedBy:    LevelL1,
		}
	}
	// L1I miss: a demand fetch waits for an MSHR if none is free.
	start := h.L1I.EarliestMSHRFree(now)
	ready, served := h.fillLatency(line, start, cache.ClassInst)
	h.L1I.Fill(line, now, ready, cache.FillOpts{Priority: priority})
	return AccessResult{Done: ready, ServedBy: served}
}

// PrefetchInst issues a prefetch of line into the L1I at cycle now,
// keeping reserveMSHRs L1I MSHR entries free for demand fetches. The
// prefetch is dropped when the line is already present/in flight or when
// headroom is insufficient (§5: threshold of 2). priority propagates the
// EMISSARY P-bit. zeroCost installs the line instantly (the paper's
// zero-cost timeliness study).
func (h *Hierarchy) PrefetchInst(line isa.Addr, now int64, reserveMSHRs int, priority, zeroCost bool) AccessResult {
	if h.L1I.Contains(line) {
		return AccessResult{Dropped: true}
	}
	if zeroCost {
		h.L1I.Fill(line, now, now, cache.FillOpts{Prefetch: true, Priority: priority})
		return AccessResult{Done: now, ServedBy: LevelL1}
	}
	if h.L1I.MSHRFree(now) <= reserveMSHRs {
		return AccessResult{Dropped: true}
	}
	ready, served := h.fillLatency(line, now, cache.ClassInst)
	h.L1I.Fill(line, now, ready, cache.FillOpts{Prefetch: true, Priority: priority})
	return AccessResult{Done: ready, ServedBy: served}
}

// PrimeInst is the FDIP fill path: a new FTQ entry primes the L1I for its
// lines ahead of demand fetch. It behaves like PrefetchInst but does not
// mark the line as prefetched, keeping the prefetcher accuracy metrics
// (Table 4) scoped to the PQ prefetcher under study — FDIP is part of the
// baseline, not the prefetcher being measured.
func (h *Hierarchy) PrimeInst(line isa.Addr, now int64, reserveMSHRs int, priority bool) AccessResult {
	if h.L1I.Contains(line) {
		return AccessResult{Dropped: true}
	}
	if h.L1I.MSHRFree(now) <= reserveMSHRs {
		return AccessResult{Dropped: true}
	}
	ready, served := h.fillLatency(line, now, cache.ClassInst)
	h.L1I.Fill(line, now, ready, cache.FillOpts{Priority: priority})
	return AccessResult{Done: ready, ServedBy: served}
}

// AccessData performs a demand data access (load/store treated alike).
func (h *Hierarchy) AccessData(line isa.Addr, now int64) AccessResult {
	if r := h.L1D.Access(line, now, cache.ClassData); r.Hit {
		return AccessResult{Done: r.ReadyAt, L1Hit: true, WasInflight: r.WasInflight, ServedBy: LevelL1}
	}
	start := h.L1D.EarliestMSHRFree(now)
	ready, served := h.fillLatency(line, start, cache.ClassData)
	h.L1D.Fill(line, now, ready, cache.FillOpts{})
	return AccessResult{Done: ready, ServedBy: served}
}

// PromoteInstLine sets the EMISSARY P-bit on line wherever it is resident
// (L1I and L2), used when a line qualifies as FEC at retirement.
func (h *Hierarchy) PromoteInstLine(line isa.Addr) {
	h.L1I.Promote(line)
	h.L2.Promote(line)
}
