package mem

import (
	"testing"

	"pdip/internal/cache"
	"pdip/internal/isa"
)

func line(i int) isa.Addr { return isa.Addr(i * isa.LineSize) }

// tinyConfig shrinks every level so misses and MSHR pressure are easy to
// provoke.
func tinyConfig() Config {
	return Config{
		L1I:         cache.Config{Name: "L1I", SizeBytes: 4 << 10, Ways: 4, HitLatency: 2, MSHRs: 4},
		L1D:         cache.Config{Name: "L1D", SizeBytes: 4 << 10, Ways: 4, HitLatency: 2, MSHRs: 4},
		L2:          cache.Config{Name: "L2", SizeBytes: 32 << 10, Ways: 8, HitLatency: 10, MSHRs: 8},
		L3:          cache.Config{Name: "L3", SizeBytes: 64 << 10, Ways: 8, HitLatency: 20, MSHRs: 2},
		DRAMLatency: 100,
	}
}

// TestPortMessageLatencyAccumulation walks one cold fetch message down
// the whole chain and checks the reply's Done cycle carries the summed
// traversal latency: L1I lookup forwards at t, L2 adds its lookup
// latency, L3 adds its own, DRAM adds the flat access time.
func TestPortMessageLatencyAccumulation(t *testing.T) {
	h := MustNew(tinyConfig())
	res := h.InstPort().Send(Req{Op: OpFetch, Line: line(1), At: 1000})
	if res.L1Hit || res.Dropped {
		t.Fatalf("cold fetch classified as hit/drop: %+v", res)
	}
	if res.ServedBy != LevelMem {
		t.Fatalf("cold fetch served by %v, want Mem", res.ServedBy)
	}
	// 1000 (send) + 10 (L2 lookup, miss determined) + 20 (L3 lookup,
	// miss determined) + 100 (DRAM) = 1130.
	if want := int64(1130); res.Done != want {
		t.Fatalf("cold fetch Done = %d, want %d", res.Done, want)
	}

	// A second fetch of the same line while in flight is an L1 partial
	// hit completing at the outstanding fill's ready cycle.
	res2 := h.InstPort().Send(Req{Op: OpFetch, Line: line(1), At: 1001})
	if !res2.L1Hit || !res2.WasInflight {
		t.Fatalf("in-flight fetch: %+v", res2)
	}
	if res2.Done != res.Done {
		t.Fatalf("partial hit Done = %d, want %d", res2.Done, res.Done)
	}
}

// TestPortHitLevels checks ServedBy attribution as the line ages down the
// hierarchy: L1 hit after the fill, L2 hit after an L1 eviction-free
// refetch of a different alias is out of scope here — instead verify the
// L2 path directly by filling only L2/L3 via a first miss and re-probing
// after L1I eviction pressure.
func TestPortHitLevels(t *testing.T) {
	h := MustNew(tinyConfig())
	p := h.InstPort()
	p.Send(Req{Op: OpFetch, Line: line(1), At: 0})
	// After the fill completes, the line hits in L1 at hit latency.
	res := p.Send(Req{Op: OpFetch, Line: line(1), At: 5000})
	if !res.L1Hit || res.WasInflight || res.Done != 5002 {
		t.Fatalf("warm L1 hit: %+v", res)
	}

	// Evict line(1) from the 4-way L1I set by fetching conflicting lines
	// (same set, different tags). Sets = 4KB/(64*4) = 16.
	sets := h.L1I.NumSets()
	for i := 1; i <= 4; i++ {
		p.Send(Req{Op: OpFetch, Line: line(1 + i*sets), At: 6000 + int64(i)*500})
	}
	// line(1) is gone from L1I but still in the inclusive L2: the reply
	// must come back served by L2 at the L2 lookup latency.
	res = p.Send(Req{Op: OpFetch, Line: line(1), At: 20000})
	if res.L1Hit {
		t.Fatal("line unexpectedly still resident in L1I")
	}
	if res.ServedBy != LevelL2 {
		t.Fatalf("served by %v, want L2", res.ServedBy)
	}
	if res.Done != 20010 {
		t.Fatalf("L2 hit Done = %d, want 20010", res.Done)
	}
}

// TestPortPrefetchDropReasons checks that the reply message classifies
// drops: present lines versus exhausted MSHR headroom.
func TestPortPrefetchDropReasons(t *testing.T) {
	h := MustNew(tinyConfig())
	p := h.InstPort()

	// Fill a line, then prefetch it again: DropPresent.
	p.Send(Req{Op: OpFetch, Line: line(1), At: 0})
	res := p.Send(Req{Op: OpPrefetch, Line: line(1), At: 1})
	if !res.Dropped || res.Reason != DropPresent {
		t.Fatalf("present prefetch: %+v", res)
	}

	// Saturate the 4-entry L1I MSHR file with cold fetches, then ask for
	// a prefetch with reserve 2: DropMSHR.
	for i := 10; i < 14; i++ {
		p.Send(Req{Op: OpFetch, Line: line(i), At: 2})
	}
	res = p.Send(Req{Op: OpPrefetch, Line: line(99), At: 3, Reserve: 2})
	if !res.Dropped || res.Reason != DropMSHR {
		t.Fatalf("MSHR-starved prefetch: %+v", res)
	}

	// An accepted prefetch reports DropNone and marks the fill.
	res = p.Send(Req{Op: OpPrefetch, Line: line(50), At: 50_000})
	if res.Dropped || res.Reason != DropNone {
		t.Fatalf("accepted prefetch: %+v", res)
	}
	demand := p.Send(Req{Op: OpFetch, Line: line(50), At: 60_000})
	if !demand.WasPrefetch {
		t.Fatal("prefetch-installed line not flagged on demand touch")
	}
}

// TestPortPrimeNotCountedAsPrefetch checks the FDIP prime path installs
// lines without prefetch attribution (Table 4 scoping).
func TestPortPrimeNotCountedAsPrefetch(t *testing.T) {
	h := MustNew(tinyConfig())
	p := h.InstPort()
	res := p.Send(Req{Op: OpPrime, Line: line(7), At: 0, Reserve: 1})
	if res.Dropped {
		t.Fatalf("prime dropped: %+v", res)
	}
	if h.L1I.Stats.PrefetchFills != 0 {
		t.Fatal("prime counted as prefetch fill")
	}
	demand := p.Send(Req{Op: OpFetch, Line: line(7), At: 10_000})
	if demand.WasPrefetch {
		t.Fatal("primed line flagged WasPrefetch on demand touch")
	}
}

// TestPortZeroCostPrefetch checks the §7.2 ceiling: a zero-cost prefetch
// installs instantly regardless of MSHR pressure.
func TestPortZeroCostPrefetch(t *testing.T) {
	h := MustNew(tinyConfig())
	p := h.InstPort()
	res := p.Send(Req{Op: OpPrefetch, Line: line(3), At: 42, ZeroCost: true})
	if res.Dropped || res.Done != 42 || res.ServedBy != LevelL1 {
		t.Fatalf("zero-cost prefetch: %+v", res)
	}
	demand := p.Send(Req{Op: OpFetch, Line: line(3), At: 43})
	if !demand.L1Hit || demand.WasInflight {
		t.Fatalf("zero-cost line not instantly resident: %+v", demand)
	}
}

// TestPortL3MSHRGatesDRAM checks the L3-before-DRAM discipline: with the
// L3 miss file saturated, a new DRAM-bound fill is issued only when an
// L3 MSHR frees, so its completion is later than an unsaturated fill's.
func TestPortL3MSHRGatesDRAM(t *testing.T) {
	cfg := tinyConfig() // L3 has 2 MSHRs
	h := MustNew(cfg)
	p := h.InstPort()
	// Two cold fetches occupy both L3 MSHRs until cycle 130.
	p.Send(Req{Op: OpFetch, Line: line(1), At: 0})
	p.Send(Req{Op: OpFetch, Line: line(2), At: 0})
	// A third cold fetch at cycle 1 reaches the L3 at 1+10+20=31 but must
	// wait for an L3 MSHR (earliest frees at 130) before DRAM issue.
	res := p.Send(Req{Op: OpFetch, Line: line(3), At: 1})
	if res.ServedBy != LevelMem {
		t.Fatalf("served by %v, want Mem", res.ServedBy)
	}
	if want := int64(130 + 100); res.Done != want {
		t.Fatalf("gated fill Done = %d, want %d", res.Done, want)
	}
}

// TestPortClassAttribution checks that data-side messages attribute L2
// misses to the data class and instruction messages to the inst class.
func TestPortClassAttribution(t *testing.T) {
	h := MustNew(tinyConfig())
	h.InstPort().Send(Req{Op: OpFetch, Line: line(1), At: 0})
	h.DataPort().Send(Req{Op: OpData, Line: line(1000), At: 0})
	if h.L2.Stats.InstMisses != 1 || h.L2.Stats.DataMisses != 1 {
		t.Fatalf("L2 class split: inst=%d data=%d, want 1/1",
			h.L2.Stats.InstMisses, h.L2.Stats.DataMisses)
	}
}

// TestPortWrapperEquivalence runs the same access pattern through the
// named wrappers and through raw port messages on twin hierarchies and
// requires identical replies and identical per-level stats — the named
// API is a pure view over the message model.
func TestPortWrapperEquivalence(t *testing.T) {
	a := MustNew(tinyConfig())
	b := MustNew(tinyConfig())
	for i := 0; i < 200; i++ {
		now := int64(i * 3)
		ln := line(i % 37)
		ra := a.FetchInst(ln, now, i%5 == 0)
		rb := b.InstPort().Send(Req{Op: OpFetch, Line: ln, At: now, Priority: i%5 == 0})
		if ra != rb {
			t.Fatalf("fetch %d: wrapper %+v != port %+v", i, ra, rb)
		}
		pa := a.PrefetchInst(line(i%53+100), now, 2, false, false)
		pb := b.InstPort().Send(Req{Op: OpPrefetch, Line: line(i%53 + 100), At: now, Reserve: 2})
		if pa != pb {
			t.Fatalf("prefetch %d: wrapper %+v != port %+v", i, pa, pb)
		}
		da := a.AccessData(line(i%29+500), now)
		db := b.DataPort().Send(Req{Op: OpData, Line: line(i%29 + 500), At: now})
		if da != db {
			t.Fatalf("data %d: wrapper %+v != port %+v", i, da, db)
		}
	}
	if a.L1I.Stats != b.L1I.Stats || a.L1D.Stats != b.L1D.Stats ||
		a.L2.Stats != b.L2.Stats || a.L3.Stats != b.L3.Stats {
		t.Fatal("per-level stats diverged between wrapper and port APIs")
	}
}
