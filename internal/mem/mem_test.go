package mem

import (
	"testing"

	"pdip/internal/isa"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.L1I.SizeBytes != 32<<10 || c.L1I.Ways != 8 || c.L1I.HitLatency != 2 || c.L1I.MSHRs != 16 {
		t.Fatalf("L1I config %+v", c.L1I)
	}
	if c.L1D.SizeBytes != 64<<10 || c.L1D.Ways != 16 {
		t.Fatalf("L1D config %+v", c.L1D)
	}
	if c.L2.SizeBytes != 1<<20 || c.L2.HitLatency != 10 || c.L2.MSHRs != 32 {
		t.Fatalf("L2 config %+v", c.L2)
	}
	if c.L3.SizeBytes != 2<<20 || c.L3.HitLatency != 20 || c.L3.MSHRs != 64 {
		t.Fatalf("L3 config %+v", c.L3)
	}
}

func TestColdFetchGoesToDRAM(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x40000)
	res := h.FetchInst(line, 100, false)
	if res.L1Hit {
		t.Fatal("cold fetch hit")
	}
	if res.ServedBy != LevelMem {
		t.Fatalf("served by %v, want Mem", res.ServedBy)
	}
	// Latency: L2 lookup(10) + L3 lookup(20) + DRAM(150) = 180 from issue.
	want := int64(100 + 10 + 20 + 150)
	if res.Done != want {
		t.Fatalf("Done = %d, want %d", res.Done, want)
	}
}

func TestInclusiveFillsServeFasterNextTime(t *testing.T) {
	h := MustNew(DefaultConfig())
	a := isa.Addr(0x40000)
	first := h.FetchInst(a, 0, false)
	// A different L1I-conflicting line is not needed; just re-fetch a
	// second line in the same L2 block region after eviction from L1I.
	// Simpler: fetch, then fetch a second cold line, then verify L2 holds
	// the first (hit latency from L2, not DRAM).
	if !h.L2.Contains(a) || !h.L3.Contains(a) {
		t.Fatal("fill was not inclusive")
	}
	_ = first
}

func TestL1HitLatency(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x1000)
	h.FetchInst(line, 0, false)
	res := h.FetchInst(line, 500, false)
	if !res.L1Hit || res.Done != 502 {
		t.Fatalf("hit: %+v", res)
	}
}

func TestPrefetchDedup(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x2000)
	r1 := h.PrefetchInst(line, 0, 2, false, false)
	if r1.Dropped {
		t.Fatal("first prefetch dropped")
	}
	r2 := h.PrefetchInst(line, 1, 2, false, false)
	if !r2.Dropped {
		t.Fatal("duplicate prefetch not dropped")
	}
}

func TestPrefetchRespectsMSHRReserve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1I.MSHRs = 3
	h := MustNew(cfg)
	// Two prefetches fit (3 MSHRs, reserve 2 means free must be > 2).
	if r := h.PrefetchInst(0x40, 0, 2, false, false); r.Dropped {
		t.Fatal("prefetch dropped with 3 free MSHRs")
	}
	if r := h.PrefetchInst(0x80, 0, 2, false, false); !r.Dropped {
		t.Fatal("prefetch accepted with only 2 free MSHRs (reserve 2)")
	}
	// Demand fetches are never dropped — they wait.
	if r := h.FetchInst(0xc0, 0, false); r.Dropped {
		t.Fatal("demand fetch dropped")
	}
}

func TestDemandWaitsWhenMSHRsFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1I.MSHRs = 1
	h := MustNew(cfg)
	first := h.FetchInst(0x40, 0, false) // occupies the only MSHR
	second := h.FetchInst(0x80, 1, false)
	if second.Done <= first.Done {
		t.Fatalf("second demand (%d) did not wait for MSHR freed at %d", second.Done, first.Done)
	}
}

func TestZeroCostPrefetch(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x3000)
	r := h.PrefetchInst(line, 42, 2, false, true)
	if r.Dropped || r.Done != 42 {
		t.Fatalf("zero-cost prefetch: %+v", r)
	}
	res := h.FetchInst(line, 43, false)
	if !res.L1Hit || res.WasInflight {
		t.Fatalf("demand after zero-cost prefetch: %+v", res)
	}
	if !res.WasPrefetch {
		t.Fatal("prefetch consumption not flagged")
	}
}

func TestPrimeInstDoesNotCountAsPrefetch(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x5000)
	r := h.PrimeInst(line, 0, 1, false)
	if r.Dropped {
		t.Fatal("prime dropped on empty cache")
	}
	if h.L1I.Stats.PrefetchFills != 0 {
		t.Fatal("FDIP prime counted as prefetch fill")
	}
	res := h.FetchInst(line, 1, false)
	if res.WasPrefetch {
		t.Fatal("FDIP-primed line flagged as prefetch consumption")
	}
	if !res.L1Hit || !res.WasInflight {
		t.Fatalf("demand on primed line: %+v", res)
	}
}

func TestDataPathSeparateFromInst(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x9000)
	h.AccessData(line, 0)
	if h.L1I.Contains(line) {
		t.Fatal("data access filled the L1I")
	}
	if !h.L1D.Contains(line) {
		t.Fatal("data access did not fill the L1D")
	}
	if h.L2.Stats.DataMisses != 1 || h.L2.Stats.InstMisses != 0 {
		t.Fatalf("L2 class split: %+v", h.L2.Stats)
	}
}

func TestL2ServesSecondCore(t *testing.T) {
	// Evict from L1I (tiny L1I), keep in L2: second fetch must be served
	// by L2 with its hit latency.
	cfg := DefaultConfig()
	cfg.L1I.SizeBytes = 2 * isa.LineSize * 8 // 2 sets × 8 ways
	h := MustNew(cfg)
	target := isa.Addr(0)
	h.FetchInst(target, 0, false)
	// Thrash the tiny L1I with conflicting lines (same set, stride 128).
	for i := 1; i <= 8; i++ {
		h.FetchInst(target+isa.Addr(i*2*isa.LineSize), 1000+int64(i), false)
	}
	if h.L1I.Contains(target) {
		t.Skip("target unexpectedly still resident")
	}
	res := h.FetchInst(target, 5000, false)
	if res.L1Hit || res.ServedBy != LevelL2 {
		t.Fatalf("refetch served by %v (hit=%v), want L2", res.ServedBy, res.L1Hit)
	}
	if res.Done != 5000+10 {
		t.Fatalf("L2-served latency: %d, want 5010", res.Done)
	}
}

func TestPromoteInstLine(t *testing.T) {
	h := MustNew(DefaultConfig())
	line := isa.Addr(0x7000)
	h.FetchInst(line, 0, false)
	h.PromoteInstLine(line)
	if h.L1I.PriorityLines() != 1 || h.L2.PriorityLines() != 1 {
		t.Fatal("promotion did not reach both levels")
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{LevelL1, LevelL2, LevelL3, LevelMem} {
		if l.String() == "" {
			t.Fatalf("level %d has empty name", l)
		}
	}
}
