package mem

import "pdip/internal/checkpoint"

// CaptureCheckpoint captures all four cache levels. The port chain itself
// is stateless wiring and is rebuilt by New at restore.
func (h *Hierarchy) CaptureCheckpoint() checkpoint.HierarchyState {
	return checkpoint.HierarchyState{
		L1I: h.L1I.CaptureCheckpoint(),
		L1D: h.L1D.CaptureCheckpoint(),
		L2:  h.L2.CaptureCheckpoint(),
		L3:  h.L3.CaptureCheckpoint(),
	}
}

// RestoreCheckpoint overwrites all four cache levels from a captured
// state. The hierarchy must have been built with the same geometry.
func (h *Hierarchy) RestoreCheckpoint(st checkpoint.HierarchyState) error {
	if err := h.L1I.RestoreCheckpoint(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.RestoreCheckpoint(st.L1D); err != nil {
		return err
	}
	if err := h.L2.RestoreCheckpoint(st.L2); err != nil {
		return err
	}
	return h.L3.RestoreCheckpoint(st.L3)
}
