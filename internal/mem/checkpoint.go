package mem

import (
	"fmt"

	"pdip/internal/checkpoint"
)

// CaptureCheckpoint captures the hierarchy's cache levels. The port chain
// itself is stateless wiring and is rebuilt by New at restore. A shared
// hierarchy (NewShared) captures only its private L1s — the socket
// snapshots the uncore-owned L2/L3 exactly once — and marks the state so
// a restore into the wrong wiring fails loudly.
func (h *Hierarchy) CaptureCheckpoint() checkpoint.HierarchyState {
	st := checkpoint.HierarchyState{
		L1I:    h.L1I.CaptureCheckpoint(),
		L1D:    h.L1D.CaptureCheckpoint(),
		Shared: h.shared,
	}
	if !h.shared {
		st.L2 = h.L2.CaptureCheckpoint()
		st.L3 = h.L3.CaptureCheckpoint()
	}
	return st
}

// RestoreCheckpoint overwrites the hierarchy's cache levels from a
// captured state. The hierarchy must have been built with the same
// geometry and sharing mode; a shared hierarchy restores only its private
// L1s (the uncore restores the shared levels).
func (h *Hierarchy) RestoreCheckpoint(st checkpoint.HierarchyState) error {
	if st.Shared != h.shared {
		return fmt.Errorf("mem: checkpoint shared=%v, hierarchy shared=%v", st.Shared, h.shared)
	}
	if err := h.L1I.RestoreCheckpoint(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.RestoreCheckpoint(st.L1D); err != nil {
		return err
	}
	if h.shared {
		return nil
	}
	if err := h.L2.RestoreCheckpoint(st.L2); err != nil {
		return err
	}
	return h.L3.RestoreCheckpoint(st.L3)
}
