// Port model: the hierarchy's levels are connected by request/response
// ports instead of nested function calls. A requester sends a typed Req
// message into a Port and receives an AccessResult reply whose Done field
// carries the explicit completion cycle; misses propagate down the chain
// as OpFill messages whose At timestamps accumulate the traversal latency
// level by level. The simulator stays cycle-timed rather than event-driven
// — a message's reply is computed synchronously, but all timing lives in
// the message (send cycle in, completion cycle out), so a level only sees
// its port traffic. That boundary is what lets a level be shared between
// cores or swapped for a queued DRAM model without touching the core.
package mem

import (
	"pdip/internal/cache"
	"pdip/internal/invariant"
	"pdip/internal/isa"
)

// Op enumerates the request kinds that cross a port.
type Op uint8

const (
	// OpFetch is a demand instruction fetch (blocks the IFU until done).
	OpFetch Op = iota
	// OpData is a demand data access (load/store treated alike).
	OpData
	// OpPrefetch is a prefetch-queue issue: dropped rather than delayed
	// when the line is present or MSHR headroom is insufficient.
	OpPrefetch
	// OpPrime is the FDIP fill path: like OpPrefetch but not attributed
	// to the prefetcher under study (FDIP is part of the baseline).
	OpPrime
	// OpFill is the internal miss-fill message a level sends downstream.
	OpFill
)

func (o Op) String() string {
	switch o {
	case OpFetch:
		return "fetch"
	case OpData:
		return "data"
	case OpPrefetch:
		return "prefetch"
	case OpPrime:
		return "prime"
	default:
		return "fill"
	}
}

// DropReason says why a prefetch-class request was discarded.
type DropReason uint8

const (
	// DropNone means the request was not dropped.
	DropNone DropReason = iota
	// DropPresent means the line was already resident or in flight.
	DropPresent
	// DropMSHR means MSHR headroom (after the demand reserve) ran out.
	DropMSHR
)

// Req is one message sent into a port. Req is passed and replied to by
// value throughout the chain — requests and results never escape to the
// heap, which keeps every hierarchy access allocation-free. Additions to
// Req must preserve that: no pointers into caller storage that would force
// an escape, no per-request slices.
type Req struct {
	// Op selects the request kind.
	Op Op
	// Line is the cache line address.
	Line isa.Addr
	// At is the cycle the message enters the port. Downstream OpFill
	// messages carry the accumulated traversal time.
	At int64
	// Class attributes lower-level misses to the instruction or data
	// side. Front ports stamp it when forwarding fills; requesters need
	// not set it.
	Class cache.Class
	// Priority propagates the EMISSARY P-bit to the fill.
	Priority bool
	// ZeroCost installs OpPrefetch fills instantly (§7.2 ceiling).
	ZeroCost bool
	// Reserve is the MSHR headroom kept free for demand fetches
	// (OpPrefetch/OpPrime only).
	Reserve int
	// Src identifies the requesting core at shared (owner-tracked) levels.
	// Stamped by the uncore's tenant ports; zero in a single-core chain.
	Src uint8
	// Speculative marks a fill that originated from a prefetch-class
	// request (OpPrefetch/OpPrime). A contended shared level drops such
	// fills rather than queueing them behind another tenant's misses.
	Speculative bool
}

// Port is one side of a request/response link in the hierarchy. Send
// delivers a message and returns the reply; all timing is carried in the
// message (Req.At in, AccessResult.Done out).
type Port interface {
	Send(Req) AccessResult
}

// dramPort terminates the chain: a flat fixed-latency main memory.
type dramPort struct {
	latency int
}

func (p *dramPort) Send(req Req) AccessResult {
	return AccessResult{Done: req.At + int64(p.latency), ServedBy: LevelMem}
}

// levelPort fronts one shared cache level (L2, L3). It serves OpFill
// messages: a hit replies with the level's ready cycle; a miss forwards
// the fill downstream after the lookup latency, then installs the line
// inclusively, never completing before the level's own MSHR file frees.
type levelPort struct {
	c     *cache.Cache
	down  Port
	level Level
	// gateMSHR delays the downstream issue until an MSHR frees (the
	// L3-before-DRAM discipline) instead of bounding the reply afterwards
	// (the L2 discipline, where the upstream fill is what waits).
	gateMSHR bool
}

func (p *levelPort) Send(req Req) AccessResult {
	if r := p.c.Access(req.Line, req.At, req.Class); r.Hit {
		return AccessResult{Done: r.ReadyAt, ServedBy: p.level}
	}
	// Lookup latency to determine the miss, then forward downstream.
	t := req.At + int64(p.c.Config().HitLatency)
	if p.c.OwnersEnabled() {
		return p.sendMissOwned(req, t)
	}
	issueAt := t
	if p.gateMSHR {
		issueAt = p.c.EarliestMSHRFree(t)
	}
	down := p.down.Send(Req{Op: OpFill, Line: req.Line, At: issueAt, Class: req.Class})
	ready := down.Done
	if !p.gateMSHR {
		if start := p.c.EarliestMSHRFree(t); start > ready {
			ready = start
		}
	}
	p.c.Fill(req.Line, t, ready, cache.FillOpts{})
	if invariant.Enabled && !p.c.Contains(req.Line) {
		invariant.Failf("level %s: line %#x absent after inclusive fill", p.level, uint64(req.Line))
	}
	return AccessResult{Done: ready, ServedBy: down.ServedBy}
}

// sendMissOwned is the miss path when the level tracks per-requester MSHR
// ownership (a shared uncore level). Demand-origin fills wait for the
// requester's quota — the wait is charged to that requester, not to its
// co-tenants — while speculative fills drop when the quota is exhausted.
// The MSHR disciplines mirror the exclusive path: a gating level delays
// the downstream issue, a non-gating level bounds its reply.
func (p *levelPort) sendMissOwned(req Req, t int64) AccessResult {
	owner := int(req.Src)
	if req.Speculative && !p.c.OwnerCanIssue(t, owner) {
		p.c.Owners[owner].SpecDropped++
		return AccessResult{Dropped: true, Reason: DropMSHR}
	}
	start := p.c.EarliestMSHRFreeFor(t, owner)
	if start > t {
		p.c.Owners[owner].DelayedFills++
		p.c.Owners[owner].DelayCycles += uint64(start - t)
	}
	issueAt := t
	if p.gateMSHR {
		issueAt = start
	}
	down := p.down.Send(Req{
		Op: OpFill, Line: req.Line, At: issueAt, Class: req.Class,
		Src: req.Src, Speculative: req.Speculative,
	})
	if down.Dropped {
		// A deeper shared level refused the speculative fill; install
		// nothing here either (inclusion: never hold a line L3 refused).
		return down
	}
	ready := down.Done
	if !p.gateMSHR && start > ready {
		ready = start
	}
	p.c.Fill(req.Line, t, ready, cache.FillOpts{Owner: req.Src})
	if invariant.Enabled && !p.c.Contains(req.Line) {
		invariant.Failf("level %s: line %#x absent after inclusive fill", p.level, uint64(req.Line))
	}
	return AccessResult{Done: ready, ServedBy: down.ServedBy}
}

// l1Port fronts a first-level cache (L1I or L1D) and implements the
// demand and prefetch disciplines of §5: demand misses wait for an MSHR,
// prefetch-class fills are dropped when the line is present or headroom
// (minus the demand reserve) is exhausted.
type l1Port struct {
	c *cache.Cache
	// down is the L2-facing port: the exclusive levelPort chain in a
	// single-core hierarchy (New), or a tenant port into the shared uncore
	// (NewShared). Only the miss path crosses it, so the interface call is
	// off the L1-hit fast path.
	down  Port
	class cache.Class
}

func (p *l1Port) Send(req Req) AccessResult {
	switch req.Op {
	case OpPrefetch, OpPrime:
		return p.sendPrefetch(req)
	default:
		return p.sendDemand(req)
	}
}

// sendDemand serves OpFetch/OpData: a hit (possibly on an in-flight MSHR)
// replies immediately; a miss waits for MSHR headroom, then forwards the
// fill downstream.
func (p *l1Port) sendDemand(req Req) AccessResult {
	if r := p.c.Access(req.Line, req.At, p.class); r.Hit {
		return AccessResult{
			Done:        r.ReadyAt,
			L1Hit:       true,
			WasInflight: r.WasInflight,
			WasPrefetch: r.WasPrefetch,
			ServedBy:    LevelL1,
		}
	}
	start := p.c.EarliestMSHRFree(req.At)
	// Demand-origin fills are never dropped downstream (only speculative
	// fills drop at a contended shared level), so no Dropped check here.
	down := p.down.Send(Req{Op: OpFill, Line: req.Line, At: start, Class: p.class, Src: req.Src})
	p.c.Fill(req.Line, req.At, down.Done, cache.FillOpts{Priority: req.Priority})
	return AccessResult{Done: down.Done, ServedBy: down.ServedBy}
}

// sendPrefetch serves OpPrefetch/OpPrime, which drop rather than delay.
func (p *l1Port) sendPrefetch(req Req) AccessResult {
	if p.c.Contains(req.Line) {
		return AccessResult{Dropped: true, Reason: DropPresent}
	}
	if req.Op == OpPrefetch && req.ZeroCost {
		p.c.Fill(req.Line, req.At, req.At, cache.FillOpts{Prefetch: true, Priority: req.Priority})
		return AccessResult{Done: req.At, ServedBy: LevelL1}
	}
	if p.c.MSHRFree(req.At) <= req.Reserve {
		return AccessResult{Dropped: true, Reason: DropMSHR}
	}
	down := p.down.Send(Req{
		Op: OpFill, Line: req.Line, At: req.At, Class: p.class,
		Src: req.Src, Speculative: true,
	})
	if down.Dropped {
		// A contended shared level refused the speculative fill; surface
		// the drop so the PQ's drop classification attributes it.
		return down
	}
	p.c.Fill(req.Line, req.At, down.Done, cache.FillOpts{
		Prefetch: req.Op == OpPrefetch,
		Priority: req.Priority,
	})
	if invariant.Enabled && req.Op == OpPrefetch {
		// Demand-first discipline: a forwarded prefetch consumes at most
		// one MSHR, so the reserve kept for demand fetches must survive
		// the fill it just triggered.
		if free := p.c.MSHRFree(req.At); free < req.Reserve {
			invariant.Failf("prefetch fill broke the demand reserve: %d MSHRs free < reserve %d", free, req.Reserve)
		}
	}
	return AccessResult{Done: down.Done, ServedBy: down.ServedBy}
}
