// Shared-uncore wiring: a multi-core socket owns one L2/L3 chain (built
// here, managed by internal/uncore) while each core keeps a core-private
// Hierarchy holding only its L1I/L1D, whose miss traffic exits through a
// port the uncore hands it. The Hierarchy keeps views of the shared caches
// so per-core metric bindings and EMISSARY promotion keep working
// unchanged.
package mem

import "pdip/internal/cache"

// NewSharedChain wires the shared half of the port chain — L2 → L3 → DRAM
// — and returns its upstream (L2-facing) port. The caches are built by the
// caller (internal/uncore), typically with owner tracking enabled so MSHR
// contention and eviction interference attribute to tenants. The MSHR
// disciplines match New: the L3 gates its downstream issue, the L2 bounds
// its reply.
func NewSharedChain(l2, l3 *cache.Cache, dramLatency int) Port {
	if dramLatency <= 0 {
		dramLatency = 150
	}
	l3p := &levelPort{c: l3, down: &dramPort{latency: dramLatency}, level: LevelL3, gateMSHR: true}
	return &levelPort{c: l2, down: l3p, level: LevelL2}
}

// NewShared builds the core-private half of a hierarchy — fresh L1I and
// L1D — whose miss traffic exits through down, a tenant port into a shared
// uncore. l2 and l3 are the shared caches behind that port, kept as views
// so Hierarchy.PromoteInstLine and the core's cache.l2/cache.l3 metric
// bindings observe the shared state.
func NewShared(cfg Config, l2, l3 *cache.Cache, down Port) (*Hierarchy, error) {
	l1i, err := cache.New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	dram := cfg.DRAMLatency
	if dram <= 0 {
		dram = 150
	}
	h := &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, DRAMLatency: dram, shared: true}
	h.inst = &l1Port{c: l1i, down: down, class: cache.ClassInst}
	h.data = &l1Port{c: l1d, down: down, class: cache.ClassData}
	return h, nil
}

// Shared reports whether L2/L3 are views of an uncore owned elsewhere.
func (h *Hierarchy) Shared() bool { return h.shared }
