package workload_test

import (
	"reflect"
	"testing"

	"pdip/internal/cfg"
	"pdip/internal/rng"
	"pdip/internal/trace"
	"pdip/internal/workload"
)

// TestProgramGenerationDeterministic regenerates each profile's synthetic
// program from scratch (bypassing the package-level cache) and requires the
// two structures to be deeply identical: same blocks, same terminators,
// same call graph, same hot-handler set.
func TestProgramGenerationDeterministic(t *testing.T) {
	for _, name := range []string{"kafka", "verilator", "tatp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := cfg.Generate(p.CFG)
			if err != nil {
				t.Fatal(err)
			}
			b, err := cfg.Generate(p.CFG)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("two generations from identical params differ")
			}
		})
	}
}

// TestInstructionStreamDeterministic walks two independent trace.Walker
// instances over the same program with the same seed and requires the
// instruction streams to match exactly, position by position. Runs in
// parallel across profiles to also shake out any shared mutable state
// between walker instances.
func TestInstructionStreamDeterministic(t *testing.T) {
	const steps = 100_000
	for _, name := range []string{"cassandra", "kafka", "xalan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := p.Program()
			if err != nil {
				t.Fatal(err)
			}
			a := trace.New(prog, p.CFG.Seed^0x5eed)
			b := trace.New(prog, p.CFG.Seed^0x5eed)
			for i := 0; i < steps; i++ {
				ia, ib := a.Next(), b.Next()
				if ia != ib {
					t.Fatalf("streams diverge at instruction %d: %+v vs %+v", i, ia, ib)
				}
			}
			if a.Count() != b.Count() {
				t.Fatalf("walker counts differ: %d vs %d", a.Count(), b.Count())
			}
		})
	}
}

// TestInstructionStreamSeedSensitive is the negative control: different
// seeds over the same program must diverge (otherwise the determinism test
// above proves nothing).
func TestInstructionStreamSeedSensitive(t *testing.T) {
	p, err := workload.ByName("cassandra")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	a := trace.New(prog, 1)
	b := trace.New(prog, 2)
	for i := 0; i < 10_000; i++ {
		if a.Next() != b.Next() {
			return
		}
	}
	t.Fatal("streams from different seeds identical for 10k instructions")
}

// TestRNGDeterministic pins the rng package's reproducibility contracts:
// same seed → same sequence; identically-used parents yield identical
// forks; and forking does not perturb the parent's own stream.
func TestRNGDeterministic(t *testing.T) {
	t.Parallel()
	a, b := rng.New(0xfeed), rng.New(0xfeed)
	for i := 0; i < 10_000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed sequences diverge at draw %d: %#x vs %#x", i, av, bv)
		}
	}

	// Twin parents with identical histories produce identical forks.
	p1, p2 := rng.New(42), rng.New(42)
	f1, f2 := p1.Fork(7), p2.Fork(7)
	for i := 0; i < 1000; i++ {
		if v1, v2 := f1.Uint64(), f2.Uint64(); v1 != v2 {
			t.Fatalf("forks of identical parents diverge at draw %d", i)
		}
	}

	// Forking must not advance the parent: a forked parent and an
	// untouched twin continue in lockstep.
	q1, q2 := rng.New(9), rng.New(9)
	_ = q1.Fork(3)
	for i := 0; i < 1000; i++ {
		if v1, v2 := q1.Uint64(), q2.Uint64(); v1 != v2 {
			t.Fatalf("Fork perturbed the parent stream at draw %d", i)
		}
	}
}
