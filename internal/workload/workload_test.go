package workload

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/trace"
)

func TestSixteenBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("got %d benchmarks, want the paper's 16", len(all))
	}
	want := []string{"cassandra", "tomcat", "kafka", "xalan", "finagle-http", "dotty",
		"tpcc", "ycsb", "twitter", "voter", "smallbank", "tatp", "sibench", "noop",
		"verilator", "speedometer2.0"}
	for i, p := range all {
		if p.Name != want[i] {
			t.Fatalf("benchmark %d = %q, want %q (paper order)", i, p.Name, want[i])
		}
		if p.Suite == "" || p.Description == "" {
			t.Fatalf("benchmark %q missing metadata", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("tpcc")
	if err != nil || p.Name != "tpcc" {
		t.Fatalf("ByName: %v %v", p.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProgramsGenerateAndExceedL1I(t *testing.T) {
	for _, p := range All() {
		prog, err := p.Program()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// The defining property of every benchmark: the footprint is far
		// larger than the 32KB L1I.
		if prog.FootprintBytes() < 4*32<<10 {
			t.Fatalf("%s footprint %dKB too small for a front-end-bound workload",
				p.Name, prog.FootprintBytes()>>10)
		}
	}
}

func TestProgramCaching(t *testing.T) {
	p, _ := ByName("ycsb")
	a, err := p.Program()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Program()
	if a != b {
		t.Fatal("program not cached")
	}
}

func TestVerilatorHasLongBlocks(t *testing.T) {
	v, _ := ByName("verilator")
	c, _ := ByName("cassandra")
	if v.CFG.InstsPerBlockMean <= c.CFG.InstsPerBlockMean {
		t.Fatal("verilator should have unusually long basic blocks (§7.4)")
	}
}

func TestDataHeavyTrio(t *testing.T) {
	// §7.1: dotty, tatp, smallbank pressure the L2 with data.
	base, _ := ByName("cassandra")
	for _, name := range []string{"dotty", "tatp", "smallbank"} {
		p, _ := ByName(name)
		if p.DataColdLines <= base.DataColdLines {
			t.Fatalf("%s cold data set not larger than default", name)
		}
	}
}

func TestWalksMakeProgress(t *testing.T) {
	// Every profile must sustain a non-degenerate walk: enough distinct
	// lines per window that the L1I is actually pressured.
	for _, p := range All() {
		prog, err := p.Program()
		if err != nil {
			t.Fatal(err)
		}
		w := trace.New(prog, 1234)
		lines := map[isa.Addr]struct{}{}
		for i := 0; i < 100000; i++ {
			lines[w.Next().PC.Line()] = struct{}{}
		}
		if len(lines)*isa.LineSize < 32<<10 {
			t.Fatalf("%s: walk touched only %dKB in 100K instructions (degenerate)",
				p.Name, len(lines)*isa.LineSize>>10)
		}
	}
}
