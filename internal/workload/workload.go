// Package workload defines the 16 large-code-footprint benchmark profiles
// of the paper's Table 2 as synthetic stand-ins.
//
// Each profile is a cfg.Params (code shape: footprint, block sizes, branch
// mix, call structure, dispatch mix) plus a data-side model (memory-op
// rate, working-set geometry). The parameters are calibrated so the
// baseline FDIP machine reproduces the *shape* of the paper's Figure 9
// miss pressure (who is I-cache-bound, who is data-heavy, who has BTB
// pressure), not the exact numbers — the originals are multi-threaded
// JVM/SQL applications on full Linux systems.
//
// Calibration levers, for anyone adding profiles (hard-won — see
// EXPERIMENTS.md for the calibration narrative):
//   - NumFuncs × BlocksPerFuncMean sets the active code footprint →
//     L1I MPKI and (via taken-branch sites) BTB pressure.
//   - HotFuncFrac + DispatchHotFrac set the request-popularity skew: hot
//     handlers revisit fast enough for prefetcher tables to learn.
//   - HardBranchFrac/HardBias concentrate mispredicts on a small static
//     site set (recurring resteer triggers).
//   - InstsPerBlockMean sets basic-block length (verilator's BOLT-ed
//     binary has unusually long blocks, §7.4).
//   - MemOpFrac + Data* set the L2 data contention EMISSARY competes with
//     (dotty, tatp, smallbank in §7.1).
package workload

import (
	"fmt"
	"sort"
	"sync"

	"pdip/internal/cfg"
)

// Profile is one benchmark stand-in.
type Profile struct {
	// Name is the paper's benchmark name (Table 2).
	Name string
	// Suite is the originating benchmark suite.
	Suite string
	// Description summarises what behaviour the profile models.
	Description string

	// CFG shapes the synthetic program.
	CFG cfg.Params

	// MemOpFrac is the fraction of non-branch instructions accessing data.
	MemOpFrac float64
	// DataHotLines/DataColdLines/DataHotFrac shape the data stream.
	DataHotLines, DataColdLines int
	DataHotFrac                 float64
}

// base returns the shared parameter skeleton the per-benchmark profiles
// perturb: a server-shaped program with a dispatch driver, zipf-like
// request popularity, layered (DAG) call graph, and a small set of hard
// data-dependent branches guarding cold slow paths.
func base(seed uint64) cfg.Params {
	p := cfg.DefaultParams()
	p.Seed = seed
	p.BlocksPerFuncMean = 20
	p.InstsPerBlockMean = 6
	p.CondFrac = 0.42
	p.JumpFrac = 0.08
	p.CallFrac = 0.08
	p.IndJumpFrac = 0.03
	p.IndCallFrac = 0.03
	p.RetFrac = 0.08
	p.FallFrac = 0.28
	p.LoopFrac = 0.12
	p.LoopTripMean = 5
	p.CondBias = 0.98
	p.HardBranchFrac = 0.08
	p.HardBias = 0.70
	p.IndirectTargets = 4
	p.IndirectBias = 0.85
	p.HotFuncFrac = 0.25
	p.HotCallWeight = 3
	p.CallLocality = 0.75
	p.CallNeighborhood = 60
	// Uniform dispatch over the whole handler population: the active set
	// is the full footprint, cycled continuously (stable, L2/L3-warm).
	p.DispatchNoise = 1 << 20
	p.DispatchJump = 0
	p.DispatchDrift = 0
	p.DispatchHotFrac = 0.85
	return p
}

// All returns the 16 profiles in the paper's presentation order.
func All() []Profile {
	mk := func(name, suite, desc string, seed uint64, funcs int,
		mut func(*cfg.Params)) Profile {
		p := base(seed)
		p.NumFuncs = funcs
		if mut != nil {
			mut(&p)
		}
		return Profile{
			Name: name, Suite: suite, Description: desc, CFG: p,
			MemOpFrac:    0.30,
			DataHotLines: 1 << 9, DataColdLines: 1 << 13, DataHotFrac: 0.90,
		}
	}
	list := []Profile{
		mk("cassandra", "DaCapo", "distributed store: huge JVM code footprint, deep request paths", 0xca55, 6000, nil),
		mk("tomcat", "DaCapo", "servlet container: large footprint, request-dispatch indirection", 0x70ca, 5000, func(p *cfg.Params) {
			p.IndCallFrac = 0.05
			p.IndirectTargets = 6
		}),
		mk("kafka", "DaCapo", "log broker: moderate code pressure, hot I/O loops", 0x4afca, 1800, func(p *cfg.Params) {
			p.HotFuncFrac = 0.30
			p.DispatchHotFrac = 0.92
			p.LoopFrac = 0.18
		}),
		mk("xalan", "DaCapo", "XSLT transformer: recursive tree walking, loopy kernels", 0xa1a, 3800, func(p *cfg.Params) {
			p.CallFrac = 0.10
			p.LoopFrac = 0.20
		}),
		mk("finagle-http", "Renaissance", "RPC server: futures/callback indirection", 0xf1a9, 4200, func(p *cfg.Params) {
			p.IndCallFrac = 0.06
			p.IndirectTargets = 6
		}),
		mk("dotty", "Renaissance", "Scala compiler: big footprint and heavy data-side pressure", 0xd077, 5200, func(p *cfg.Params) {
			p.CondBias = 0.97
		}),
		mk("tpcc", "OLTPBench", "OLTP: SQL executor dispatch over PostgreSQL", 0x79cc, 4400, func(p *cfg.Params) {
			p.IndJumpFrac = 0.05
			p.IndirectTargets = 8
		}),
		mk("ycsb", "OLTPBench", "key-value OLTP mix", 0x5c5b, 3600, nil),
		mk("twitter", "OLTPBench", "social-graph OLTP", 0x7177, 4000, func(p *cfg.Params) {
			p.IndJumpFrac = 0.04
			p.IndirectTargets = 6
		}),
		mk("voter", "OLTPBench", "high-rate small transactions", 0x0073, 3200, func(p *cfg.Params) {
			p.CondBias = 0.985
		}),
		mk("smallbank", "OLTPBench", "short transactions, data-heavy L2", 0x5a11, 3000, nil),
		mk("tatp", "OLTPBench", "telecom OLTP, data-heavy L2", 0x7a79, 2800, nil),
		mk("sibench", "OLTPBench", "snapshot-isolation microbench", 0x51b3, 2400, nil),
		mk("noop", "OLTPBench", "protocol/parse path only", 0x0f, 2100, func(p *cfg.Params) {
			p.CondBias = 0.985
		}),
		mk("verilator", "Chipyard", "BOLT-optimized RTL simulator: very long basic blocks, extreme footprint", 0x0e41, 3400, func(p *cfg.Params) {
			p.InstsPerBlockMean = 22
			p.BlocksPerFuncMean = 14
			p.CondBias = 0.99
			p.HardBranchFrac = 0.05
			p.LoopFrac = 0.10
			p.CallFrac = 0.05
			p.FallFrac = 0.34
			p.HotFuncFrac = 0.30
			p.DispatchHotFrac = 0.75
		}),
		mk("speedometer2.0", "BrowserBench", "JS framework suite: modest I-pressure", 0x59d0, 1400, func(p *cfg.Params) {
			p.HotFuncFrac = 0.30
			p.DispatchHotFrac = 0.92
		}),
	}

	// Data-side perturbations (§7.1: dotty/tatp/smallbank show L2 data
	// contention with EMISSARY; verilator has very low L2 data pressure).
	idx := indexOf(list)
	for _, name := range []string{"dotty", "tatp", "smallbank"} {
		p := &list[idx[name]]
		p.MemOpFrac = 0.34
		p.DataColdLines = 1 << 16 // 4MB cold set: real L2/L3 data pressure
		p.DataHotFrac = 0.75
	}
	v := &list[idx["verilator"]]
	v.MemOpFrac = 0.22
	v.DataColdLines = 1 << 11
	v.DataHotFrac = 0.97
	s := &list[idx["speedometer2.0"]]
	s.DataHotFrac = 0.95
	s.DataColdLines = 1 << 12
	k := &list[idx["kafka"]]
	k.DataHotFrac = 0.93
	return list
}

func indexOf(list []Profile) map[string]int {
	m := make(map[string]int, len(list))
	for i := range list {
		m[list[i].Name] = i
	}
	return m
}

// Names returns all profile names in presentation order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i := range all {
		names[i] = all[i].Name
	}
	return names
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, known)
}

var (
	progMu    sync.Mutex
	progCache = map[string]*cfg.Program{}
)

// Program generates (and caches) the profile's synthetic program. Programs
// are deterministic in the profile parameters, and read-only once built,
// so sharing across runs is safe.
func (p Profile) Program() (*cfg.Program, error) {
	key := fmt.Sprintf("%s/%d/%d/%v", p.Name, p.CFG.Seed, p.CFG.NumFuncs, p.CFG.BlocksPerFuncMean)
	progMu.Lock()
	defer progMu.Unlock()
	if prog, ok := progCache[key]; ok {
		return prog, nil
	}
	prog, err := cfg.Generate(p.CFG)
	if err != nil {
		return nil, err
	}
	progCache[key] = prog
	return prog, nil
}
