// Package harness runs (benchmark × policy) simulation grids with warmup,
// caches results for cross-run comparisons (speedups, FEC-stall reduction,
// coverage), and formats the rows of every table and figure in the paper's
// evaluation (see experiments.go).
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"pdip/internal/cfg"
	"pdip/internal/checkpoint"
	"pdip/internal/core"
	"pdip/internal/metrics"
	"pdip/internal/policy"
	"pdip/internal/workload"
)

// Options scales a whole experiment.
type Options struct {
	// Warmup and Measure are per-run instruction budgets. The paper warms
	// ~10M and measures 100M on gem5; the defaults here are scaled so the
	// full grid completes in minutes with the same pipeline model.
	Warmup, Measure uint64
	// Benchmarks restricts the benchmark set (nil = all 16).
	Benchmarks []string
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
	// CollectSets enables FEC/coverage set collection on every run.
	CollectSets bool
	// NoFastForward disables idle-cycle fast-forward on every run (see
	// RunSpec.NoFastForward).
	NoFastForward bool
	// TraceDir, when non-empty, drives every run from
	// <TraceDir>/<benchmark>.champsim[.gz] instead of walking the
	// synthetic CFG directly (see RunSpec.TracePath).
	TraceDir string
	// TraceDifferential cross-checks each trace against the synthetic
	// walker it was recorded from (see RunSpec.TraceDifferential).
	TraceDifferential bool
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Warmup: 300_000, Measure: 1_000_000}
}

// QuickOptions returns a reduced scale for smoke tests and examples.
func QuickOptions() Options {
	return Options{Warmup: 60_000, Measure: 200_000}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunSpec identifies one simulation run.
type RunSpec struct {
	// Benchmark and Policy name the workload profile and configuration.
	Benchmark, Policy string
	// BTBEntries overrides the BTB capacity when > 0 (Fig 14/15 sweeps).
	BTBEntries int
	// Warmup and Measure are instruction budgets.
	Warmup, Measure uint64
	// CollectSets enables coverage-set collection.
	CollectSets bool
	// SampleEvery > 0 records a full metrics snapshot every that many
	// measured instructions (IPC/MPKI trajectories).
	SampleEvery uint64
	// NoFastForward disables idle-cycle fast-forward for this run (the
	// core.Config flag of the same name); metrics must be bit-identical
	// either way, and TestFastForwardBitIdentical holds the simulator to it.
	NoFastForward bool
	// Seed, when nonzero, perturbs the core's data-side random streams
	// (memory behaviour, wrong-path noise) without regenerating the
	// benchmark's program, opening a seed axis for confidence-interval
	// sweeps. Zero keeps the profile's pinned default, so every existing
	// spec (and golden cell) is unchanged.
	Seed uint64
	// TracePath, when non-empty, drives the run from a ChampSim trace
	// instead of walking the synthetic CFG directly. The benchmark still
	// names the workload profile, which supplies the data-side model (and,
	// differentially, the shadow walker).
	TracePath string
	// TraceDifferential runs the trace in differential mode: every decoded
	// instruction is cross-checked against a lockstep synthetic walker and
	// a divergence fails the run. Requires TracePath, and the trace must
	// have been recorded from this benchmark's profile.
	TraceDifferential bool
}

// Key renders the spec as a stable string ("bench/policy[@btbK][+trace]"),
// used for metric export maps and error messages.
func (s RunSpec) Key() string {
	k := s.Benchmark + "/" + s.Policy
	if s.BTBEntries > 0 {
		k = fmt.Sprintf("%s@%dK-BTB", k, s.BTBEntries/1024)
	}
	if s.Seed != 0 {
		k = fmt.Sprintf("%s#seed%d", k, s.Seed)
	}
	if s.TracePath != "" {
		if s.TraceDifferential {
			k += "+difftrace"
		} else {
			k += "+trace"
		}
	}
	return k
}

// RunResult pairs a spec with its measured snapshot.
type RunResult struct {
	Spec RunSpec
	Res  core.Result
	// Metrics is the full registry snapshot at the end of the measured
	// window (superset of Res, including prefetcher-internal counters).
	Metrics metrics.Snapshot
	// Samples holds interval snapshots when Spec.SampleEvery > 0.
	Samples []metrics.Sample
}

// call is one in-flight Run, shared by every goroutine that submitted the
// same spec: the first registrant executes, the rest block on done.
type call struct {
	done chan struct{}
	res  *RunResult
	err  error
}

// warmKey identifies one warm simulator state: everything that influences
// the machine's state at the end of warmup. Specs differing only in
// measure-phase knobs (Measure, SampleEvery, CollectSets) share a key —
// and therefore share one warmup.
type warmKey struct {
	Benchmark, Policy string
	BTBEntries        int
	Seed              uint64
	Warmup            uint64
	NoFastForward     bool
	TracePath         string
	TraceDifferential bool
}

// warmKeyOf projects spec onto its warm-state identity, normalising the
// instruction budgets first.
func warmKeyOf(spec RunSpec) warmKey {
	warmup, _ := spec.budgets()
	return warmKey{
		Benchmark:         spec.Benchmark,
		Policy:            spec.Policy,
		BTBEntries:        spec.BTBEntries,
		Seed:              spec.Seed,
		Warmup:            warmup,
		NoFastForward:     spec.NoFastForward,
		TracePath:         spec.TracePath,
		TraceDifferential: spec.TraceDifferential,
	}
}

// WarmTuple renders the spec's warm-state identity as a stable string, or
// "" when the spec has no warmup phase and therefore nothing to share.
// Specs with equal tuples fork the same warm state, so a scheduler (the
// fabric coordinator) can warm each tuple once cluster-wide and hold the
// tuple's remaining jobs back until the warm checkpoint exists.
func (s RunSpec) WarmTuple() string {
	warmup, _ := s.budgets()
	if warmup == 0 {
		return ""
	}
	return fmt.Sprintf("%v", warmKeyOf(s))
}

// warmCall is one in-flight (or completed) warmup, singleflighted per
// warmKey. Completed calls stay in Runner.warm as the in-memory
// checkpoint cache.
type warmCall struct {
	done chan struct{}
	st   *checkpoint.State
	err  error
}

// RunnerStats is the programmatic view of a Runner's activity: how many
// specs it actually simulated, how many were served from the memoisation
// cache, and the warm-state reuse counters. It is a plain value snapshot,
// taken atomically under the runner's lock, so concurrent consumers (the
// fabric coordinator aggregating per-worker stats, tests, the experiments
// CLI's single end-of-run report) never observe interleaved prints or
// torn counters.
type RunnerStats struct {
	// RunsExecuted counts specs this runner simulated itself.
	RunsExecuted uint64
	// CacheHits counts Run calls served from the memoisation cache
	// (including singleflight waiters that blocked on a leader's run).
	CacheHits uint64
	// Checkpoint holds the warm-state reuse counters.
	Checkpoint CheckpointStats
}

// Add accumulates o into s (aggregating stats across fleet workers).
func (s *RunnerStats) Add(o RunnerStats) {
	s.RunsExecuted += o.RunsExecuted
	s.CacheHits += o.CacheHits
	s.Checkpoint.Forks += o.Checkpoint.Forks
	s.Checkpoint.WarmupsExecuted += o.Checkpoint.WarmupsExecuted
	s.Checkpoint.MemoryHits += o.Checkpoint.MemoryHits
	s.Checkpoint.DirCacheHits += o.Checkpoint.DirCacheHits
	s.Checkpoint.DiskHits += o.Checkpoint.DiskHits
	s.Checkpoint.DiskStores += o.Checkpoint.DiskStores
}

// CheckpointStats counts warm-state reuse for before/after reporting.
type CheckpointStats struct {
	// Forks counts runs served by forking a warm snapshot.
	Forks uint64
	// WarmupsExecuted counts warmups actually simulated.
	WarmupsExecuted uint64
	// MemoryHits counts warm states served from this runner's own warm
	// cache (including singleflight waiters who blocked on a leader's
	// warmup).
	MemoryHits uint64
	// DirCacheHits counts warm states served already-decoded from the
	// checkpoint store's in-memory cache — no disk read, no decode. With
	// several runners sharing one Dir (fleet workers), these are forks
	// that skipped the disk entirely because a sibling had already paid
	// for the decode.
	DirCacheHits uint64
	// DiskHits counts warm states read and decoded from the on-disk
	// -checkpoint-dir store; DiskStores counts warm states written to it.
	DiskHits   uint64
	DiskStores uint64
}

// Runner executes and memoises runs. Runs whose spec includes a warmup
// window go through the warm-state layer: the runner warms each warmKey
// tuple once (per process — or per checkpoint directory, when configured),
// snapshots the complete simulator state, and forks the snapshot for
// every spec that shares the tuple.
type Runner struct {
	mu       sync.Mutex
	cache    map[RunSpec]*RunResult
	errs     map[RunSpec]error
	inflight map[RunSpec]*call
	warm     map[warmKey]*warmCall
	ckStats  CheckpointStats
	stats    RunnerStats
	// executor, when set, replaces local execution for cache-missing
	// runs: the spec is handed to it (the fabric fleet's submit path)
	// and the returned result is memoised exactly as a local one.
	executor func(RunSpec) (*RunResult, error)
	// ck, when non-nil, is the content-addressed checkpoint store: the
	// on-disk directory shared across processes, fronted by its decoded
	// in-memory cache (shared across every Runner holding the same Dir —
	// fleet workers in one process fork each tuple's decode exactly once).
	ck  *checkpoint.Dir
	sem chan struct{}
}

// NewRunner returns a Runner bounded to parallelism concurrent runs.
func NewRunner(parallelism int) *Runner {
	return NewRunnerWithDir(parallelism, nil)
}

// NewRunnerWithCheckpoints returns a Runner that additionally persists
// warm-state checkpoints under dir (content-addressed by workload +
// configuration + format version), so repeat process invocations skip
// warmup entirely. An empty dir keeps checkpoints in memory only.
func NewRunnerWithCheckpoints(parallelism int, dir string) *Runner {
	var ck *checkpoint.Dir
	if dir != "" {
		ck = checkpoint.NewDir(dir, 0)
	}
	return NewRunnerWithDir(parallelism, ck)
}

// NewRunnerWithDir is NewRunnerWithCheckpoints over an existing store —
// the form that lets several Runners (the fabric fleet's workers) share
// one decoded-state cache. A nil ck keeps checkpoints in memory only.
func NewRunnerWithDir(parallelism int, ck *checkpoint.Dir) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		cache:    make(map[RunSpec]*RunResult),
		errs:     make(map[RunSpec]error),
		inflight: make(map[RunSpec]*call),
		warm:     make(map[warmKey]*warmCall),
		ck:       ck,
		sem:      make(chan struct{}, parallelism),
	}
}

// CheckpointDir returns the checkpoint store this runner persists warm
// states through, or nil when checkpoints stay in memory only.
func (r *Runner) CheckpointDir() *checkpoint.Dir { return r.ck }

// CheckpointStats returns a snapshot of the warm-state reuse counters.
func (r *Runner) CheckpointStats() CheckpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckStats
}

// Stats returns an atomic snapshot of the runner's activity counters
// (runs executed, cache hits, warm-state reuse). Consumers report it once
// at end of run instead of interleaving prints under concurrency.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Checkpoint = r.ckStats
	return s
}

// SetExecutor routes every cache-missing Run through exec instead of
// executing locally — the hook `experiments -fabric-workers` uses to push
// an unmodified experiment grid through a distributed fleet. Memoisation
// and per-spec singleflight still apply in front of exec. Must be set
// before the first Run; a nil exec restores local execution.
func (r *Runner) SetExecutor(exec func(RunSpec) (*RunResult, error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.executor = exec
}

// Run executes spec (or returns the memoised result). Concurrent calls
// with the same spec are singleflighted: the first registers an in-flight
// call and executes; later submitters block on it and share the result
// instead of duplicating the run.
func (r *Runner) Run(spec RunSpec) (*RunResult, error) {
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.stats.CacheHits++
		r.mu.Unlock()
		return res, nil
	}
	if err, ok := r.errs[spec]; ok {
		r.mu.Unlock()
		return nil, err
	}
	if c, ok := r.inflight[spec]; ok {
		r.stats.CacheHits++
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	r.inflight[spec] = c
	r.mu.Unlock()

	r.sem <- struct{}{}
	c.res, c.err = r.execute(spec)
	<-r.sem

	r.mu.Lock()
	if c.err != nil {
		r.errs[spec] = c.err
	} else {
		r.cache[spec] = c.res
	}
	delete(r.inflight, spec)
	r.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// execute runs one spec: through the configured remote executor when one
// is set, locally through the shared job-execution core otherwise.
func (r *Runner) execute(spec RunSpec) (*RunResult, error) {
	r.mu.Lock()
	exec := r.executor
	r.mu.Unlock()
	if exec != nil {
		return exec(spec)
	}
	return r.ExecuteJob(spec, nil)
}

// warmState returns the warm simulator state for wk, singleflighting the
// warmup: the first caller builds (or loads) it, concurrent callers block
// on the result, later callers hit the in-memory cache.
func (r *Runner) warmState(wk warmKey) (*checkpoint.State, error) {
	r.mu.Lock()
	if c, ok := r.warm[wk]; ok {
		r.ckStats.MemoryHits++
		r.mu.Unlock()
		<-c.done
		return c.st, c.err
	}
	c := &warmCall{done: make(chan struct{})}
	r.warm[wk] = c
	r.mu.Unlock()

	c.st, c.err = r.buildWarmState(wk)
	close(c.done)
	return c.st, c.err
}

// buildWarmState produces wk's warm state: from the on-disk cache when
// configured and populated, otherwise by simulating the warmup window on
// a fresh core and snapshotting it (and storing the result on disk).
func (r *Runner) buildWarmState(wk warmKey) (*checkpoint.State, error) {
	// Warm with measure-phase knobs off: CollectSets has no timing effect
	// and its sets are cleared at the measurement boundary anyway, so the
	// cheapest configuration warms for all of them.
	wspec := RunSpec{
		Benchmark:         wk.Benchmark,
		Policy:            wk.Policy,
		BTBEntries:        wk.BTBEntries,
		Warmup:            wk.Warmup,
		NoFastForward:     wk.NoFastForward,
		TracePath:         wk.TracePath,
		TraceDifferential: wk.TraceDifferential,
	}
	prog, c, err := buildConfig(wspec)
	if err != nil {
		return nil, err
	}

	// The on-disk cache content-addresses the workload parameters and
	// configuration, not the bytes of an arbitrary trace file, so
	// trace-driven warm states stay in memory only.
	var key string
	if r.ck != nil && wspec.TracePath == "" {
		key, err = diskKey(wspec, c)
		if err != nil {
			return nil, err
		}
		if st, cached, _ := r.ck.Load(key); st != nil {
			r.mu.Lock()
			if cached {
				r.ckStats.DirCacheHits++
			} else {
				r.ckStats.DiskHits++
			}
			r.mu.Unlock()
			return st, nil
		}
	}

	src, osrc, err := openSource(wspec, prog, c)
	if err != nil {
		return nil, err
	}
	defer closeSource(src)
	co, err := core.NewWithSource(prog, osrc, c)
	if err != nil {
		return nil, err
	}
	if err := co.Run(wk.Warmup); err != nil {
		return nil, fmt.Errorf("%s/%s warmup: %w", wk.Benchmark, wk.Policy, err)
	}
	if err := sourceErr(wspec, src); err != nil {
		return nil, err
	}
	st, err := co.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("%s/%s snapshot: %w", wk.Benchmark, wk.Policy, err)
	}
	r.mu.Lock()
	r.ckStats.WarmupsExecuted++
	r.mu.Unlock()

	if key != "" {
		if err := r.ck.Save(key, st); err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.ckStats.DiskStores++
		r.mu.Unlock()
	}
	return st, nil
}

// diskKey content-addresses wspec's warm state. The hash covers the
// format version, the benchmark's workload parameters (which generate the
// program), and the complete derived core configuration — so any change
// to a policy, a profile, or the state format misses cleanly instead of
// restoring a stale checkpoint. The prefetcher instance is stripped: its
// identity is already pinned by the policy name and the config knobs.
func diskKey(wspec RunSpec, c core.Config) (string, error) {
	prof, err := workload.ByName(wspec.Benchmark)
	if err != nil {
		return "", err
	}
	c.Prefetcher = nil
	return checkpoint.Key(struct {
		Version   int
		Benchmark string
		Policy    string
		Warmup    uint64
		Workload  cfg.Params
		Config    core.Config
	}{
		Version:   checkpoint.FormatVersion,
		Benchmark: wspec.Benchmark,
		Policy:    wspec.Policy,
		Warmup:    wspec.Warmup,
		Workload:  prof.CFG,
		Config:    c,
	})
}

// RunAll executes every spec concurrently and returns results in order.
// Failures do not short-circuit: every spec runs, and all failures come
// back as one errors.Join-ed error with each cause labelled by its spec
// key — a broken grid reports every broken cell, not just the first.
func (r *Runner) RunAll(specs []RunSpec) ([]*RunResult, error) {
	results := make([]*RunResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		//lint:ignore determinism the worker pool sits above the simulated clock: each core simulates in its own goroutine with no shared state, and results land in per-index slots
		go func(i int) {
			defer wg.Done()
			var err error
			results[i], err = r.Run(specs[i])
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", specs[i].Key(), err)
			}
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// budgets returns the normalised warmup/measure instruction budgets: an
// all-zero spec means "default experiment scale".
func (s RunSpec) budgets() (warmup, measure uint64) {
	warmup, measure = s.Warmup, s.Measure
	if warmup == 0 && measure == 0 {
		o := DefaultOptions()
		warmup, measure = o.Warmup, o.Measure
	}
	return warmup, measure
}

// buildConfig derives the generated program and the full core
// configuration for spec: workload profile knobs, the BTB override,
// measure-phase flags, then the policy's configuration hook.
func buildConfig(spec RunSpec) (*cfg.Program, core.Config, error) {
	prof, err := workload.ByName(spec.Benchmark)
	if err != nil {
		return nil, core.Config{}, err
	}
	pol, err := policy.ByName(spec.Policy)
	if err != nil {
		return nil, core.Config{}, err
	}
	prog, err := prof.Program()
	if err != nil {
		return nil, core.Config{}, err
	}

	c := core.DefaultConfig()
	c.Seed = prof.CFG.Seed ^ 0x5eed
	if spec.Seed != 0 {
		// Mix the sweep seed in with an odd multiplier so adjacent seeds
		// (1, 2, 3...) land on well-separated rng stream families. The
		// program itself is untouched: only the data-side streams move.
		c.Seed ^= spec.Seed * 0x9e3779b97f4a7c15
	}
	c.MemOpFrac = prof.MemOpFrac
	c.DataHotLines = prof.DataHotLines
	c.DataColdLines = prof.DataColdLines
	c.DataHotFrac = prof.DataHotFrac
	if spec.BTBEntries > 0 {
		c.BPU.BTBEntries = spec.BTBEntries
	}
	c.CollectSets = spec.CollectSets
	c.NoFastForward = spec.NoFastForward
	pol.Apply(&c)
	return prog, c, nil
}

// measureRun resets a warmed core's measurement counters, simulates the
// measured window, and packages the result — shared by the from-scratch
// and fork-from-snapshot paths, which must agree bit-for-bit
// (TestCheckpointBitIdentical). onSample, when non-nil, observes each
// interval snapshot the moment it is recorded (the fabric worker's
// streaming path); it has no effect on the simulation or the result.
func measureRun(co *core.Core, spec RunSpec, measure uint64, onSample func(metrics.Sample)) (*RunResult, error) {
	co.ResetStats()
	if spec.SampleEvery > 0 {
		co.EnableSampling(spec.SampleEvery)
		if onSample != nil {
			co.SetSampleHook(onSample)
		}
	}
	if err := co.Run(measure); err != nil {
		return nil, fmt.Errorf("%s/%s measure: %w", spec.Benchmark, spec.Policy, err)
	}
	return &RunResult{
		Spec:    spec,
		Res:     co.Result(),
		Metrics: co.MetricsSnapshot(),
		Samples: co.Samples(),
	}, nil
}

// Execute performs one simulation run from scratch, without memoisation
// or warm-state reuse — the reference path that VerifyDeterminism and the
// checkpoint bit-identity tests compare against.
func Execute(spec RunSpec) (*RunResult, error) {
	return executeScratch(spec, nil)
}

// executeScratch is Execute with the streaming-sample hook exposed.
func executeScratch(spec RunSpec, onSample func(metrics.Sample)) (*RunResult, error) {
	prog, c, err := buildConfig(spec)
	if err != nil {
		return nil, err
	}
	src, osrc, err := openSource(spec, prog, c)
	if err != nil {
		return nil, err
	}
	co, err := core.NewWithSource(prog, osrc, c)
	if err != nil {
		closeSource(src)
		return nil, err
	}
	warmup, measure := spec.budgets()
	if err := co.Run(warmup); err != nil {
		closeSource(src)
		return nil, fmt.Errorf("%s/%s warmup: %w", spec.Benchmark, spec.Policy, err)
	}
	res, err := measureRun(co, spec, measure, onSample)
	return finishSource(spec, src, res, err)
}

// Results returns every memoised result, sorted by spec key — the export
// surface behind `cmd/experiments -metrics`.
func (r *Runner) Results() []*RunResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RunResult, 0, len(r.cache))
	for _, res := range r.cache {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Spec.Key(), out[j].Spec.Key(); a != b {
			return a < b
		}
		return out[i].Spec.Measure < out[j].Spec.Measure
	})
	return out
}

// VerifyDeterminism executes spec twice from scratch (no memoisation) and
// diffs the two full metric snapshots bit-exactly. Any nonzero diff —
// a counter off by one, a derived gauge differing in the last bit — is a
// determinism violation: some state leaked between runs or an unseeded
// source of randomness crept into the simulator. This is the falsifiable
// check every performance PR runs against silent metric drift.
func VerifyDeterminism(spec RunSpec) error {
	a, err := Execute(spec)
	if err != nil {
		return fmt.Errorf("determinism %s: first run: %w", spec.Key(), err)
	}
	b, err := Execute(spec)
	if err != nil {
		return fmt.Errorf("determinism %s: second run: %w", spec.Key(), err)
	}
	if diff := a.Metrics.Diff(b.Metrics); len(diff) > 0 {
		show := diff
		if len(show) > 20 {
			show = show[:20]
		}
		return fmt.Errorf("determinism %s: %d metrics differ between identical runs:\n  %s",
			spec.Key(), len(diff), strings.Join(show, "\n  "))
	}
	if len(a.Samples) != len(b.Samples) {
		return fmt.Errorf("determinism %s: sample counts differ: %d vs %d",
			spec.Key(), len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if diff := a.Samples[i].Metrics.Diff(b.Samples[i].Metrics); len(diff) > 0 {
			return fmt.Errorf("determinism %s: sample %d differs: %s",
				spec.Key(), i, strings.Join(diff[:1], ""))
		}
	}
	return nil
}

// spec builds a RunSpec from options.
func (o Options) spec(bench, pol string) RunSpec {
	s := RunSpec{
		Benchmark:         bench,
		Policy:            pol,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		CollectSets:       o.CollectSets,
		NoFastForward:     o.NoFastForward,
		TraceDifferential: o.TraceDifferential,
	}
	if o.TraceDir != "" {
		s.TracePath = TracePathFor(o.TraceDir, bench)
	}
	return s
}
