// Package harness runs (benchmark × policy) simulation grids with warmup,
// caches results for cross-run comparisons (speedups, FEC-stall reduction,
// coverage), and formats the rows of every table and figure in the paper's
// evaluation (see experiments.go).
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"pdip/internal/core"
	"pdip/internal/metrics"
	"pdip/internal/policy"
	"pdip/internal/workload"
)

// Options scales a whole experiment.
type Options struct {
	// Warmup and Measure are per-run instruction budgets. The paper warms
	// ~10M and measures 100M on gem5; the defaults here are scaled so the
	// full grid completes in minutes with the same pipeline model.
	Warmup, Measure uint64
	// Benchmarks restricts the benchmark set (nil = all 16).
	Benchmarks []string
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
	// CollectSets enables FEC/coverage set collection on every run.
	CollectSets bool
	// NoFastForward disables idle-cycle fast-forward on every run (see
	// RunSpec.NoFastForward).
	NoFastForward bool
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Warmup: 300_000, Measure: 1_000_000}
}

// QuickOptions returns a reduced scale for smoke tests and examples.
func QuickOptions() Options {
	return Options{Warmup: 60_000, Measure: 200_000}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunSpec identifies one simulation run.
type RunSpec struct {
	// Benchmark and Policy name the workload profile and configuration.
	Benchmark, Policy string
	// BTBEntries overrides the BTB capacity when > 0 (Fig 14/15 sweeps).
	BTBEntries int
	// Warmup and Measure are instruction budgets.
	Warmup, Measure uint64
	// CollectSets enables coverage-set collection.
	CollectSets bool
	// SampleEvery > 0 records a full metrics snapshot every that many
	// measured instructions (IPC/MPKI trajectories).
	SampleEvery uint64
	// NoFastForward disables idle-cycle fast-forward for this run (the
	// core.Config flag of the same name); metrics must be bit-identical
	// either way, and TestFastForwardBitIdentical holds the simulator to it.
	NoFastForward bool
}

// Key renders the spec as a stable string ("bench/policy[@btbK]"), used
// for metric export maps and error messages.
func (s RunSpec) Key() string {
	k := s.Benchmark + "/" + s.Policy
	if s.BTBEntries > 0 {
		k = fmt.Sprintf("%s@%dK-BTB", k, s.BTBEntries/1024)
	}
	return k
}

// RunResult pairs a spec with its measured snapshot.
type RunResult struct {
	Spec RunSpec
	Res  core.Result
	// Metrics is the full registry snapshot at the end of the measured
	// window (superset of Res, including prefetcher-internal counters).
	Metrics metrics.Snapshot
	// Samples holds interval snapshots when Spec.SampleEvery > 0.
	Samples []metrics.Sample
}

// Runner executes and memoises runs.
type Runner struct {
	mu    sync.Mutex
	cache map[RunSpec]*RunResult
	errs  map[RunSpec]error
	sem   chan struct{}
}

// NewRunner returns a Runner bounded to parallelism concurrent runs.
func NewRunner(parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		cache: make(map[RunSpec]*RunResult),
		errs:  make(map[RunSpec]error),
		sem:   make(chan struct{}, parallelism),
	}
}

// Run executes spec (or returns the memoised result).
func (r *Runner) Run(spec RunSpec) (*RunResult, error) {
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if err, ok := r.errs[spec]; ok {
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Unlock()

	r.sem <- struct{}{}
	defer func() { <-r.sem }()

	// Another goroutine may have completed it while we waited.
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	res, err := Execute(spec)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.errs[spec] = err
		return nil, err
	}
	r.cache[spec] = res
	return res, nil
}

// RunAll executes every spec concurrently and returns results in order.
// Failures do not short-circuit: every spec runs, and all failures come
// back as one errors.Join-ed error with each cause labelled by its spec
// key — a broken grid reports every broken cell, not just the first.
func (r *Runner) RunAll(specs []RunSpec) ([]*RunResult, error) {
	results := make([]*RunResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		//lint:ignore determinism the worker pool sits above the simulated clock: each core simulates in its own goroutine with no shared state, and results land in per-index slots
		go func(i int) {
			defer wg.Done()
			var err error
			results[i], err = r.Run(specs[i])
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", specs[i].Key(), err)
			}
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// Execute performs one simulation run without memoisation.
func Execute(spec RunSpec) (*RunResult, error) {
	prof, err := workload.ByName(spec.Benchmark)
	if err != nil {
		return nil, err
	}
	pol, err := policy.ByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	prog, err := prof.Program()
	if err != nil {
		return nil, err
	}

	c := core.DefaultConfig()
	c.Seed = prof.CFG.Seed ^ 0x5eed
	c.MemOpFrac = prof.MemOpFrac
	c.DataHotLines = prof.DataHotLines
	c.DataColdLines = prof.DataColdLines
	c.DataHotFrac = prof.DataHotFrac
	if spec.BTBEntries > 0 {
		c.BPU.BTBEntries = spec.BTBEntries
	}
	c.CollectSets = spec.CollectSets
	c.NoFastForward = spec.NoFastForward
	pol.Apply(&c)

	co, err := core.New(prog, c)
	if err != nil {
		return nil, err
	}
	warmup, measure := spec.Warmup, spec.Measure
	if warmup == 0 && measure == 0 {
		o := DefaultOptions()
		warmup, measure = o.Warmup, o.Measure
	}
	if err := co.Run(warmup); err != nil {
		return nil, fmt.Errorf("%s/%s warmup: %w", spec.Benchmark, spec.Policy, err)
	}
	co.ResetStats()
	if spec.SampleEvery > 0 {
		co.EnableSampling(spec.SampleEvery)
	}
	if err := co.Run(measure); err != nil {
		return nil, fmt.Errorf("%s/%s measure: %w", spec.Benchmark, spec.Policy, err)
	}
	res := co.Result()
	return &RunResult{
		Spec:    spec,
		Res:     res,
		Metrics: co.Snapshot(),
		Samples: co.Samples(),
	}, nil
}

// Results returns every memoised result, sorted by spec key — the export
// surface behind `cmd/experiments -metrics`.
func (r *Runner) Results() []*RunResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RunResult, 0, len(r.cache))
	for _, res := range r.cache {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Spec.Key(), out[j].Spec.Key(); a != b {
			return a < b
		}
		return out[i].Spec.Measure < out[j].Spec.Measure
	})
	return out
}

// VerifyDeterminism executes spec twice from scratch (no memoisation) and
// diffs the two full metric snapshots bit-exactly. Any nonzero diff —
// a counter off by one, a derived gauge differing in the last bit — is a
// determinism violation: some state leaked between runs or an unseeded
// source of randomness crept into the simulator. This is the falsifiable
// check every performance PR runs against silent metric drift.
func VerifyDeterminism(spec RunSpec) error {
	a, err := Execute(spec)
	if err != nil {
		return fmt.Errorf("determinism %s: first run: %w", spec.Key(), err)
	}
	b, err := Execute(spec)
	if err != nil {
		return fmt.Errorf("determinism %s: second run: %w", spec.Key(), err)
	}
	if diff := a.Metrics.Diff(b.Metrics); len(diff) > 0 {
		show := diff
		if len(show) > 20 {
			show = show[:20]
		}
		return fmt.Errorf("determinism %s: %d metrics differ between identical runs:\n  %s",
			spec.Key(), len(diff), strings.Join(show, "\n  "))
	}
	if len(a.Samples) != len(b.Samples) {
		return fmt.Errorf("determinism %s: sample counts differ: %d vs %d",
			spec.Key(), len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if diff := a.Samples[i].Metrics.Diff(b.Samples[i].Metrics); len(diff) > 0 {
			return fmt.Errorf("determinism %s: sample %d differs: %s",
				spec.Key(), i, strings.Join(diff[:1], ""))
		}
	}
	return nil
}

// spec builds a RunSpec from options.
func (o Options) spec(bench, pol string) RunSpec {
	return RunSpec{
		Benchmark:     bench,
		Policy:        pol,
		Warmup:        o.Warmup,
		Measure:       o.Measure,
		CollectSets:   o.CollectSets,
		NoFastForward: o.NoFastForward,
	}
}
