// Package harness runs (benchmark × policy) simulation grids with warmup,
// caches results for cross-run comparisons (speedups, FEC-stall reduction,
// coverage), and formats the rows of every table and figure in the paper's
// evaluation (see experiments.go).
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"pdip/internal/core"
	"pdip/internal/policy"
	"pdip/internal/workload"
)

// Options scales a whole experiment.
type Options struct {
	// Warmup and Measure are per-run instruction budgets. The paper warms
	// ~10M and measures 100M on gem5; the defaults here are scaled so the
	// full grid completes in minutes with the same pipeline model.
	Warmup, Measure uint64
	// Benchmarks restricts the benchmark set (nil = all 16).
	Benchmarks []string
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
	// CollectSets enables FEC/coverage set collection on every run.
	CollectSets bool
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Warmup: 300_000, Measure: 1_000_000}
}

// QuickOptions returns a reduced scale for smoke tests and examples.
func QuickOptions() Options {
	return Options{Warmup: 60_000, Measure: 200_000}
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunSpec identifies one simulation run.
type RunSpec struct {
	// Benchmark and Policy name the workload profile and configuration.
	Benchmark, Policy string
	// BTBEntries overrides the BTB capacity when > 0 (Fig 14/15 sweeps).
	BTBEntries int
	// Warmup and Measure are instruction budgets.
	Warmup, Measure uint64
	// CollectSets enables coverage-set collection.
	CollectSets bool
}

// RunResult pairs a spec with its measured snapshot.
type RunResult struct {
	Spec RunSpec
	Res  core.Result
}

// Runner executes and memoises runs.
type Runner struct {
	mu    sync.Mutex
	cache map[RunSpec]*RunResult
	errs  map[RunSpec]error
	sem   chan struct{}
}

// NewRunner returns a Runner bounded to parallelism concurrent runs.
func NewRunner(parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		cache: make(map[RunSpec]*RunResult),
		errs:  make(map[RunSpec]error),
		sem:   make(chan struct{}, parallelism),
	}
}

// Run executes spec (or returns the memoised result).
func (r *Runner) Run(spec RunSpec) (*RunResult, error) {
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if err, ok := r.errs[spec]; ok {
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Unlock()

	r.sem <- struct{}{}
	defer func() { <-r.sem }()

	// Another goroutine may have completed it while we waited.
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	res, err := Execute(spec)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.errs[spec] = err
		return nil, err
	}
	r.cache[spec] = res
	return res, nil
}

// RunAll executes every spec concurrently and returns results in order.
func (r *Runner) RunAll(specs []RunSpec) ([]*RunResult, error) {
	results := make([]*RunResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(specs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Execute performs one simulation run without memoisation.
func Execute(spec RunSpec) (*RunResult, error) {
	prof, err := workload.ByName(spec.Benchmark)
	if err != nil {
		return nil, err
	}
	pol, err := policy.ByName(spec.Policy)
	if err != nil {
		return nil, err
	}
	prog, err := prof.Program()
	if err != nil {
		return nil, err
	}

	c := core.DefaultConfig()
	c.Seed = prof.CFG.Seed ^ 0x5eed
	c.MemOpFrac = prof.MemOpFrac
	c.DataHotLines = prof.DataHotLines
	c.DataColdLines = prof.DataColdLines
	c.DataHotFrac = prof.DataHotFrac
	if spec.BTBEntries > 0 {
		c.BPU.BTBEntries = spec.BTBEntries
	}
	c.CollectSets = spec.CollectSets
	pol.Apply(&c)

	co, err := core.New(prog, c)
	if err != nil {
		return nil, err
	}
	warmup, measure := spec.Warmup, spec.Measure
	if warmup == 0 && measure == 0 {
		o := DefaultOptions()
		warmup, measure = o.Warmup, o.Measure
	}
	if err := co.Run(warmup); err != nil {
		return nil, fmt.Errorf("%s/%s warmup: %w", spec.Benchmark, spec.Policy, err)
	}
	co.ResetStats()
	if err := co.Run(measure); err != nil {
		return nil, fmt.Errorf("%s/%s measure: %w", spec.Benchmark, spec.Policy, err)
	}
	res := co.Result()
	return &RunResult{Spec: spec, Res: res}, nil
}

// spec builds a RunSpec from options.
func (o Options) spec(bench, pol string) RunSpec {
	return RunSpec{
		Benchmark:   bench,
		Policy:      pol,
		Warmup:      o.Warmup,
		Measure:     o.Measure,
		CollectSets: o.CollectSets,
	}
}
