package harness

import (
	"path/filepath"
	"testing"

	"pdip/internal/checkpoint"
	"pdip/internal/core"
)

// TestRecordTraceSized checks RecordTrace's default sizing covers a
// replay of the same spec without wrapping (the slack absorbs front-end
// run-ahead past the retired-instruction budget).
func TestRecordTraceSized(t *testing.T) {
	o := QuickOptions()
	spec := o.spec("kafka", "baseline")
	path := filepath.Join(t.TempDir(), "kafka.champsim")
	if err := RecordTrace(spec, path, 0); err != nil {
		t.Fatal(err)
	}
	spec.TracePath = path
	spec.TraceDifferential = true
	if _, err := Execute(spec); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCheckpointMidWrongPath is the adversarial checkpoint case for
// trace-driven runs: a snapshot taken while the front-end is fetching a
// *derived* wrong path mid-replay (IAG.Wrong of champsim kind) must fork
// into a core that replays bit-identically to the original continuing
// from the same point — the decode cache, RAS mirror, and reader position
// all have to survive the round trip. The differential mode is covered
// too (its wrong paths are shadow-walker forks riding the same union).
func TestTraceCheckpointMidWrongPath(t *testing.T) {
	for _, mode := range []struct {
		name         string
		differential bool
		wrongKind    string
	}{
		{"standalone", false, checkpoint.SourceChampSimWrong},
		{"differential", true, checkpoint.SourceCFG},
	} {
		t.Run(mode.name, func(t *testing.T) {
			o := QuickOptions()
			spec := o.spec("kafka", "pdip44")
			path := filepath.Join(t.TempDir(), "kafka.champsim")
			if err := RecordTrace(spec, path, 0); err != nil {
				t.Fatal(err)
			}
			spec.TracePath = path
			spec.TraceDifferential = mode.differential

			prog, c, err := buildConfig(spec)
			if err != nil {
				t.Fatal(err)
			}
			src, osrc, err := openSource(spec, prog, c)
			if err != nil {
				t.Fatal(err)
			}
			defer closeSource(src)
			co, err := core.NewWithSource(prog, osrc, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := co.Run(5003); err != nil {
				t.Fatal(err)
			}

			// Sample run boundaries at a dense, irregular stride until one
			// lands inside a wrong-path fetch window of the right kind.
			var st *checkpoint.State
			for step := 0; step < 2000; step++ {
				if err := co.Run(17); err != nil {
					t.Fatal(err)
				}
				s, err := co.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if s.IAG.Wrong != nil && s.IAG.Wrong.Kind == mode.wrongKind {
					st = s
					break
				}
			}
			if st == nil {
				t.Fatalf("no snapshot landed mid-wrong-path (kind %q) — widen the schedule", mode.wrongKind)
			}

			// A fresh config carries a fresh prefetcher instance — the
			// harness builds each fork's config the same way; restoring
			// into the prefetcher still attached to the original core
			// would alias live state.
			_, fc, err := buildConfig(spec)
			if err != nil {
				t.Fatal(err)
			}
			fsrc, fosrc, err := openSource(spec, prog, fc)
			if err != nil {
				t.Fatal(err)
			}
			defer closeSource(fsrc)
			fork, err := core.NewFromSnapshotWithSource(prog, fosrc, fc, st)
			if err != nil {
				t.Fatal(err)
			}

			const n = 2003
			if err := co.Run(n); err != nil {
				t.Fatal(err)
			}
			if err := fork.Run(n); err != nil {
				t.Fatal(err)
			}
			if co.Cycles() != fork.Cycles() {
				t.Errorf("cycle counts diverged: scratch %d, fork %d", co.Cycles(), fork.Cycles())
			}
			if diff := co.MetricsSnapshot().Diff(fork.MetricsSnapshot()); len(diff) > 0 {
				if len(diff) > 20 {
					diff = diff[:20]
				}
				t.Errorf("fork from mid-wrong-path snapshot is not bit-identical:\n  %v", diff)
			}
			if err := sourceErr(spec, src); err != nil {
				t.Error(err)
			}
			if err := sourceErr(spec, fsrc); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestTraceWarmForkMatchesScratch holds the warm-state layer to the same
// contract under traces as TestCheckpointBitIdentical does for synthetic
// runs: a trace-driven run served by forking a warm snapshot must be
// bit-identical to the same spec executed from scratch.
func TestTraceWarmForkMatchesScratch(t *testing.T) {
	o := QuickOptions()
	spec := o.spec("tomcat", "baseline")
	path := filepath.Join(t.TempDir(), "tomcat.champsim")
	if err := RecordTrace(spec, path, 0); err != nil {
		t.Fatal(err)
	}
	spec.TracePath = path

	scratch, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(2)
	forked, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.CheckpointStats().Forks == 0 {
		t.Fatal("runner did not take the warm-fork path")
	}
	if diff := scratch.Metrics.Diff(forked.Metrics); len(diff) > 0 {
		if len(diff) > 20 {
			diff = diff[:20]
		}
		t.Errorf("trace-driven warm fork differs from scratch:\n  %v", diff)
	}
}
