package harness

import (
	"strings"
	"testing"
)

var quickSpec = RunSpec{Benchmark: "kafka", Policy: "baseline", Warmup: 20_000, Measure: 60_000}

func TestExecuteSmoke(t *testing.T) {
	res, err := Execute(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.IPC() <= 0 {
		t.Fatal("zero IPC")
	}
	if res.Res.Core.Instructions < quickSpec.Measure {
		t.Fatalf("measured %d instructions, want >= %d", res.Res.Core.Instructions, quickSpec.Measure)
	}
}

func TestExecuteUnknownNames(t *testing.T) {
	if _, err := Execute(RunSpec{Benchmark: "doom", Policy: "baseline"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Execute(RunSpec{Benchmark: "kafka", Policy: "doom"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(2)
	a, err := r.Run(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical specs not memoised")
	}
}

func TestRunnerRunAll(t *testing.T) {
	r := NewRunner(4)
	specs := []RunSpec{
		quickSpec,
		{Benchmark: "kafka", Policy: "pdip44", Warmup: 20_000, Measure: 60_000},
	}
	out, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] == nil || out[1] == nil {
		t.Fatal("missing results")
	}
}

func TestRunAllAggregatesFailures(t *testing.T) {
	r := NewRunner(4)
	specs := []RunSpec{
		{Benchmark: "doom", Policy: "baseline"},
		quickSpec,
		{Benchmark: "kafka", Policy: "quake"},
	}
	out, err := r.RunAll(specs)
	if err == nil {
		t.Fatal("RunAll swallowed failing specs")
	}
	if out != nil {
		t.Fatal("partial results returned alongside an error")
	}
	// Both failures survive the join, each labelled with its spec key;
	// the healthy middle spec still ran and is memoised.
	msg := err.Error()
	for _, want := range []string{"doom/baseline", "kafka/quake"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("aggregate error missing %q:\n%s", want, msg)
		}
	}
	if _, ok := r.cache[quickSpec]; !ok {
		t.Fatal("healthy spec not executed when siblings fail")
	}
}

func TestBTBOverride(t *testing.T) {
	small := quickSpec
	small.BTBEntries = 1024
	res, err := Execute(small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.BTBKB >= 100 {
		t.Fatalf("BTB override ignored: %.1fKB", res.Res.BTBKB)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e.ID)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig3", "fig4", "fig9", "fig10", "fig11",
		"tab4", "fig12", "fig13", "tab5", "fig14", "fig15", "fig16", "ablations"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing", want)
		}
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func microOptions() Options {
	return Options{
		Warmup:     15_000,
		Measure:    40_000,
		Benchmarks: []string{"kafka", "speedometer2.0"},
	}
}

func TestFig1Runs(t *testing.T) {
	r := NewRunner(0)
	o := microOptions()
	out, err := Fig1(r, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Retiring", "Front-End Bound", "Bad Speculation", "Back-End Bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9Runs(t *testing.T) {
	r := NewRunner(0)
	out, err := Fig9(r, microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kafka") || !strings.Contains(out, "average") {
		t.Fatalf("fig9 output:\n%s", out)
	}
}

func TestTab4Runs(t *testing.T) {
	r := NewRunner(0)
	out, err := Tab4(r, microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PPKI") || !strings.Contains(out, "Accuracy") {
		t.Fatalf("tab4 output:\n%s", out)
	}
}

func TestTab5Runs(t *testing.T) {
	r := NewRunner(0)
	out, err := Tab5(r, microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Energy") || !strings.Contains(out, "Area") {
		t.Fatalf("tab5 output:\n%s", out)
	}
}

func TestFig16Runs(t *testing.T) {
	r := NewRunner(0)
	out, err := Fig16(r, microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mispredict") {
		t.Fatalf("fig16 output:\n%s", out)
	}
}

func TestOptionsHelpers(t *testing.T) {
	var o Options
	if len(o.benchmarks()) != 16 {
		t.Fatalf("default benchmark set %d", len(o.benchmarks()))
	}
	o.Benchmarks = []string{"kafka"}
	if len(o.benchmarks()) != 1 {
		t.Fatal("subset ignored")
	}
	if o.parallelism() <= 0 {
		t.Fatal("non-positive parallelism")
	}
	s := o.spec("kafka", "pdip44")
	if s.Benchmark != "kafka" || s.Policy != "pdip44" {
		t.Fatalf("spec %+v", s)
	}
	if DefaultOptions().Measure <= QuickOptions().Measure {
		t.Fatal("default scale not larger than quick scale")
	}
}

func TestRunnerCachesErrors(t *testing.T) {
	r := NewRunner(1)
	bad := RunSpec{Benchmark: "doom", Policy: "baseline"}
	if _, err := r.Run(bad); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := r.Run(bad); err == nil {
		t.Fatal("cached error lost")
	}
}
