package harness

import (
	"math"
	"strings"
	"testing"

	"pdip/internal/stats"
)

func TestPct(t *testing.T) {
	tests := []struct {
		name string
		in   float64
		want string
	}{
		{"zero", 0, "+0.00%"},
		{"positive", 0.032, "+3.20%"},
		{"negative", -0.0151, "-1.51%"},
		{"one", 1, "+100.00%"},
		{"tiny rounds to zero", 0.000004, "+0.00%"},
		{"large", 2.5, "+250.00%"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := pct(tc.in); got != tc.want {
				t.Errorf("pct(%v) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"empty slice", []float64{}, 0},
		{"single", []float64{4.2}, 4.2},
		{"pair", []float64{1, 3}, 2},
		{"negatives cancel", []float64{-1, 1}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := mean(tc.in); got != tc.want {
				t.Errorf("mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestMeanNaNPropagates(t *testing.T) {
	if got := mean([]float64{1, math.NaN()}); !math.IsNaN(got) {
		t.Errorf("mean with NaN input = %v, want NaN", got)
	}
}

func TestSpeedup(t *testing.T) {
	tests := []struct {
		name      string
		base, new float64
		want      float64
	}{
		{"zero baseline guarded", 0, 2.5, 0},
		{"no change", 1.5, 1.5, 0},
		{"gain", 2.0, 2.2, 0.1},
		{"loss", 2.0, 1.0, -0.5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := stats.Speedup(tc.base, tc.new)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Speedup(%v, %v) = %v, want %v", tc.base, tc.new, got, tc.want)
			}
		})
	}
}

func TestGeomean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.05}, 0.05},
		{"identity pair", []float64{0, 0}, 0},
		// geomean of (1.1, 1/1.1) is 1 → speedup 0.
		{"reciprocal pair", []float64{0.1, 1/1.1 - 1}, 0},
		// -100% speedup would mean log(0); the helper clamps instead of
		// returning -Inf/NaN.
		{"total loss clamped", []float64{-1}, 1e-9 - 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := stats.Geomean(tc.in)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Geomean(%v) = %v, want finite", tc.in, got)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Geomean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// TestSpeedupTableSingleBenchmark drives the real table path end-to-end on
// one tiny run: header row, benchmark row, and geomean row must all render
// with a parseable percentage per policy column.
func TestSpeedupTableSingleBenchmark(t *testing.T) {
	r := NewRunner(0)
	o := Options{Warmup: 10_000, Measure: 30_000, Benchmarks: []string{"cassandra"}}
	out, err := r.speedupTable(o, []string{"pdip44"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + separator + 1 benchmark + geomean
	if len(lines) != 4 {
		t.Fatalf("speedupTable rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "benchmark") || !strings.Contains(lines[0], "pdip44") {
		t.Errorf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "cassandra") {
		t.Errorf("bad benchmark row: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "geomean") {
		t.Errorf("bad geomean row: %q", lines[3])
	}
	for _, row := range lines[2:] {
		if !strings.Contains(row, "%") {
			t.Errorf("row missing percentage cell: %q", row)
		}
	}
	// Single benchmark: geomean over one value equals that value, so the
	// two data rows must show the same percentage.
	bench := strings.Fields(lines[2])
	geo := strings.Fields(lines[3])
	if bench[1] != geo[1] {
		t.Errorf("single-benchmark geomean %s != benchmark speedup %s", geo[1], bench[1])
	}
}

// TestSpeedupTableEmptyPolicies renders the degenerate empty-policy table
// without panicking.
func TestSpeedupTableEmptyPolicies(t *testing.T) {
	r := NewRunner(0)
	o := Options{Warmup: 10_000, Measure: 30_000, Benchmarks: []string{"cassandra"}}
	out, err := r.speedupTable(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "benchmark") || !strings.Contains(out, "geomean") {
		t.Errorf("empty-policy table missing scaffolding:\n%s", out)
	}
}

func TestStatsPct(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0.0%"},
		{0.625, "62.5%"},
		{1, "100.0%"},
	}
	for _, tc := range tests {
		if got := stats.Pct(tc.in); got != tc.want {
			t.Errorf("Pct(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
