package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_metrics.json from the current simulator")

const goldenPath = "testdata/golden_metrics.json"

// goldenSpecs is the regression grid: three benchmarks with distinct
// front-end profiles × the three prefetch policies the paper compares
// (FDIP baseline, PDIP, EIP), all at QuickOptions scale.
func goldenSpecs() []RunSpec {
	o := QuickOptions()
	var specs []RunSpec
	for _, b := range []string{"cassandra", "tomcat", "kafka"} {
		for _, p := range []string{"baseline", "pdip44", "eip46"} {
			specs = append(specs, o.spec(b, p))
		}
	}
	return specs
}

// goldenRun captures the current counter values for every golden spec.
// Counters only: they are integer-exact across platforms, whereas derived
// float gauges could legitimately differ in the last bit across
// architectures (e.g. fused multiply-add contraction).
func goldenRun(t *testing.T) map[string]map[string]uint64 {
	t.Helper()
	r := NewRunner(0)
	got := make(map[string]map[string]uint64)
	specs := goldenSpecs()
	if _, err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		res, err := r.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		got[spec.Key()] = res.Metrics.Counters
	}
	return got
}

// TestGoldenMetrics compares every counter of the 3×3 golden grid against
// testdata/golden_metrics.json. Any drift — an off-by-one in a resteer
// counter, a changed prefetch drop — fails with a per-key readable diff.
// After an intentional simulator change, regenerate with:
//
//	go test ./internal/harness -run TestGoldenMetrics -update
func TestGoldenMetrics(t *testing.T) {
	got := goldenRun(t)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d runs", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want map[string]map[string]uint64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	var diff []string
	keys := make(map[string]struct{}, len(want)+len(got))
	for k := range want {
		keys[k] = struct{}{}
	}
	for k := range got {
		keys[k] = struct{}{}
	}
	for run := range keys {
		w, wok := want[run]
		g, gok := got[run]
		switch {
		case !wok:
			diff = append(diff, run+": run missing from golden file")
			continue
		case !gok:
			diff = append(diff, run+": run missing from current results")
			continue
		}
		names := make(map[string]struct{}, len(w)+len(g))
		for n := range w {
			names[n] = struct{}{}
		}
		for n := range g {
			names[n] = struct{}{}
		}
		for n := range names {
			wv, wok := w[n]
			gv, gok := g[n]
			switch {
			case !wok:
				diff = append(diff, run+" "+n+": new counter (not in golden)")
			case !gok:
				diff = append(diff, run+" "+n+": counter removed")
			case wv != gv:
				diff = append(diff, run+" "+n+": golden="+utoa(wv)+" got="+utoa(gv))
			}
		}
	}
	if len(diff) > 0 {
		sort.Strings(diff)
		show := diff
		if len(show) > 40 {
			show = show[:40]
		}
		t.Errorf("golden metrics drift (%d differences; rerun with -update if intentional):\n  %s",
			len(diff), strings.Join(show, "\n  "))
	}
}

func utoa(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestGoldenCoverage asserts the golden grid actually spans the subsystems
// the acceptance criteria name: at least 20 counters touching core,
// frontend, cache, and pdip name spaces.
func TestGoldenCoverage(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want map[string]map[string]uint64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	run, ok := want["cassandra/pdip44"]
	if !ok {
		t.Fatal("golden file missing cassandra/pdip44")
	}
	if len(run) < 20 {
		t.Errorf("golden snapshot has %d counters, want >= 20", len(run))
	}
	for _, prefix := range []string{"core.", "frontend.", "cache.", "pdip.", "bpu.", "pq."} {
		found := false
		for name := range run {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("golden snapshot has no %q counters", prefix)
		}
	}
}
