package harness

import (
	"fmt"

	"pdip/internal/core"
	"pdip/internal/metrics"
)

// ExecuteJob is the job-execution core shared by the local Runner and the
// fabric worker: it resolves spec's warm state through the runner's
// warm-state layer (in-memory singleflight, then the content-addressed
// -checkpoint-dir, then a simulated warmup), forks it, and simulates the
// measured window. onSample, when non-nil and spec.SampleEvery > 0,
// observes every interval snapshot the moment it is recorded — the hook
// fabric workers use to stream incremental metrics back to the
// coordinator while the run is still in flight.
//
// ExecuteJob is idempotent by construction: the simulator is
// deterministic and warm forks are bit-identical to scratch runs
// (TestCheckpointBitIdentical), so re-executing a job — on another
// worker, after a lease expiry, against a warm disk checkpoint instead of
// a fresh warmup — produces the same result bit for bit. That property is
// what lets the fabric coordinator re-queue lost jobs without any
// output-merge ambiguity.
func (r *Runner) ExecuteJob(spec RunSpec, onSample func(metrics.Sample)) (*RunResult, error) {
	r.mu.Lock()
	r.stats.RunsExecuted++
	r.mu.Unlock()

	warmup, measure := spec.budgets()
	if warmup == 0 {
		// Nothing to amortize; run from scratch.
		return executeScratch(spec, onSample)
	}
	st, err := r.warmState(warmKeyOf(spec))
	if err != nil {
		return nil, err
	}
	prog, c, err := buildConfig(spec)
	if err != nil {
		return nil, err
	}
	src, osrc, err := openSource(spec, prog, c)
	if err != nil {
		return nil, err
	}
	co, err := core.NewFromSnapshotWithSource(prog, osrc, c, st)
	if err != nil {
		closeSource(src)
		return nil, fmt.Errorf("%s fork: %w", spec.Key(), err)
	}
	r.mu.Lock()
	r.ckStats.Forks++
	r.mu.Unlock()
	res, err := measureRun(co, spec, measure, onSample)
	return finishSource(spec, src, res, err)
}
