package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"pdip/internal/cfg"
	"pdip/internal/core"
	"pdip/internal/trace"
	"pdip/internal/trace/champsim"
)

// TraceSlack is the instruction headroom RecordTrace appends beyond a
// spec's warmup+measure budget. The front-end runs ahead of retirement
// (FTQ depth × entry size, plus pipeline drain), so a trace sized exactly
// to the retired-instruction budget would wrap — and a differential
// replay would then diverge at the wrap point. 64K instructions covers
// the deepest run-ahead the machine configuration allows with a wide
// margin, at ~4 MB of (compressible) trace.
const TraceSlack = 1 << 16

// TracePathFor names the trace file a benchmark reads from dir:
// <dir>/<benchmark>.champsim, or its .gz sibling when only that exists.
func TracePathFor(dir, bench string) string {
	p := filepath.Join(dir, bench+".champsim")
	if _, err := os.Stat(p); err != nil {
		if gz := p + ".gz"; fileExists(gz) {
			return gz
		}
	}
	return p
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// openSource opens spec's ChampSim trace (nil when the spec is purely
// synthetic). The concrete source is returned alongside its interface
// form so callers avoid handing the core a typed-nil interface.
func openSource(spec RunSpec, prog *cfg.Program, c core.Config) (*champsim.Source, trace.OracleSource, error) {
	if spec.TracePath == "" {
		return nil, nil, nil
	}
	var (
		src *champsim.Source
		err error
	)
	if spec.TraceDifferential {
		src, err = champsim.OpenDifferential(spec.TracePath, prog, c.Seed)
	} else {
		src, err = champsim.Open(spec.TracePath)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", spec.Key(), err)
	}
	return src, src, nil
}

func closeSource(src *champsim.Source) {
	if src != nil {
		src.Close()
	}
}

// sourceErr surfaces a latched replay divergence or stream fault.
func sourceErr(spec RunSpec, src *champsim.Source) error {
	if src == nil {
		return nil
	}
	if err := src.Err(); err != nil {
		return fmt.Errorf("%s: %w", spec.Key(), err)
	}
	return nil
}

// finishSource closes spec's source after a measured run, promoting any
// latched replay divergence into the run's error.
func finishSource(spec RunSpec, src *champsim.Source, res *RunResult, err error) (*RunResult, error) {
	if src == nil {
		return res, err
	}
	if err2 := sourceErr(spec, src); err == nil && err2 != nil {
		res, err = nil, err2
	}
	closeSource(src)
	return res, err
}

// RecordTrace exports spec's synthetic instruction stream as a ChampSim
// trace at path (gzipped when path ends in ".gz"). n is the number of
// instructions to record; 0 sizes the trace to the spec's warmup+measure
// budget plus TraceSlack, enough that a replay of the same spec never
// wraps. The stream is the exact oracle sequence a direct run consumes:
// same program, same seed, so a differential replay against the same
// benchmark is bit-identical.
func RecordTrace(spec RunSpec, path string, n uint64) error {
	prog, c, err := buildConfig(spec)
	if err != nil {
		return err
	}
	if n == 0 {
		warmup, measure := spec.budgets()
		n = warmup + measure + TraceSlack
	}
	w, err := champsim.Create(path)
	if err != nil {
		return err
	}
	walker := trace.New(prog, c.Seed)
	for i := uint64(0); i < n; i++ {
		if err := w.WriteInst(walker.Next()); err != nil {
			w.Close()
			return fmt.Errorf("record %s: %w", path, err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("record %s: %w", path, err)
	}
	return nil
}
