package harness

import (
	"testing"
)

// deterministicSpecs spans the prefetcher families so a regression in any
// one of them (an unseeded map iteration, cross-run state leak, time-based
// decision) is caught: the FDIP baseline, PDIP, EIP, RDIP, and FNL+MMA.
func deterministicSpecs() []RunSpec {
	specs := []RunSpec{}
	for _, tc := range []struct{ bench, policy string }{
		{"cassandra", "baseline"},
		{"cassandra", "pdip44"},
		{"tomcat", "eip46"},
		{"kafka", "rdip"},
		{"xalan", "fnl-mma"},
	} {
		specs = append(specs, RunSpec{
			Benchmark:   tc.bench,
			Policy:      tc.policy,
			Warmup:      20_000,
			Measure:     60_000,
			SampleEvery: 20_000,
		})
	}
	return specs
}

// TestDeterministicReplay runs every spec twice from scratch and requires
// the two full metric snapshots — counters, histograms, derived gauges,
// and every interval sample — to match bit-exactly.
func TestDeterministicReplay(t *testing.T) {
	for _, spec := range deterministicSpecs() {
		spec := spec
		t.Run(spec.Key(), func(t *testing.T) {
			t.Parallel()
			if err := VerifyDeterminism(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterministicReplayCollectSets repeats the check with coverage-set
// collection on, which exercises the map-backed FEC/prefetch-target sets:
// map iteration order must never leak into any published counter.
func TestDeterministicReplayCollectSets(t *testing.T) {
	spec := RunSpec{
		Benchmark:   "cassandra",
		Policy:      "pdip44",
		Warmup:      20_000,
		Measure:     60_000,
		CollectSets: true,
	}
	if err := VerifyDeterminism(spec); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDiffDetectsDrift is the negative control: two different
// policies on the same benchmark must produce differing snapshots, proving
// the diff machinery is not vacuously passing.
func TestSnapshotDiffDetectsDrift(t *testing.T) {
	base := RunSpec{Benchmark: "cassandra", Policy: "baseline", Warmup: 20_000, Measure: 60_000}
	pdip := base
	pdip.Policy = "pdip44"
	a, err := Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(pdip)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Metrics.Diff(b.Metrics); len(diff) == 0 {
		t.Fatal("baseline and pdip44 snapshots are identical; diff is vacuous")
	}
}

// TestSamplingTrajectory checks the interval-sampling contract: samples
// appear at exact instruction boundaries and metrics grow monotonically
// across them.
func TestSamplingTrajectory(t *testing.T) {
	res, err := Execute(RunSpec{
		Benchmark:   "cassandra",
		Policy:      "pdip44",
		Warmup:      20_000,
		Measure:     60_000,
		SampleEvery: 15_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Fatalf("want 4 samples at 15k intervals over 60k instructions, got %d", len(res.Samples))
	}
	var prev uint64
	for i, s := range res.Samples {
		if want := uint64(15_000 * (i + 1)); s.Instructions != want {
			t.Errorf("sample %d at %d instructions, want %d", i, s.Instructions, want)
		}
		cyc := s.Metrics.Counters["core.cycles"]
		if cyc <= prev {
			t.Errorf("sample %d: core.cycles %d not increasing (prev %d)", i, cyc, prev)
		}
		prev = cyc
	}
	// Run may overshoot the budget by up to the retire width in the final
	// cycle, but never undershoot.
	if got := res.Metrics.Counters["core.instructions"]; got < 60_000 {
		t.Errorf("final snapshot instructions = %d, want >= 60000", got)
	}
}
