package harness

import (
	"fmt"

	"pdip/internal/core"
	"pdip/internal/metrics"
	"pdip/internal/trace/champsim"
)

// SocketOptions sets socket-wide policy for a multi-tenant run.
type SocketOptions struct {
	// SharedPrefetcher shares tenant 0's prefetcher (one PDIP table for
	// the socket) instead of the default per-core tables.
	SharedPrefetcher bool
	// L2Reserve/L3Reserve are per-tenant reserved MSHR shares at the
	// shared levels (0 picks the default split, see uncore.Config).
	L2Reserve, L3Reserve int
}

// SocketRunResult packages one multi-tenant run: a per-tenant RunResult
// (each measured over exactly its Measure budget, frozen at its quota
// crossing) plus the shared-level interference counters.
type SocketRunResult struct {
	// Tenants holds one result per spec, in spec order.
	Tenants []*RunResult
	// Interference is the uncore registry snapshot: shared L2/L3 stats
	// plus per-tenant traffic, MSHR-steal, and cross-eviction counters.
	Interference metrics.Snapshot
	// Combined merges every tenant's registry (under "tenant<i>."
	// prefixes) with the uncore registry: the one flat namespace used
	// for JSON export and cross-run diffing.
	Combined metrics.Snapshot
	// Cycles is the socket clock at the end of the measured window.
	Cycles int64
}

// ExecuteSocket performs one multi-tenant run from scratch: N cores in
// lockstep against one shared uncore. Every spec must carry the same
// Warmup/Measure budgets (the socket warms and measures all tenants over
// one shared clock). Sampling is not supported on the socket path.
// A single-spec call is the bit-identity bridge: ExecuteSocket([]{spec})
// must report exactly what Execute(spec) reports
// (TestGoldenSocketEquivalence).
func ExecuteSocket(specs []RunSpec, so SocketOptions) (*SocketRunResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("socket: need at least one spec")
	}
	warmup, measure := specs[0].budgets()
	for i, spec := range specs {
		w, m := spec.budgets()
		if w != warmup || m != measure {
			return nil, fmt.Errorf("socket: tenant %d budgets %d+%d differ from tenant 0's %d+%d (one shared clock, one shared window)",
				i, w, m, warmup, measure)
		}
		if spec.SampleEvery > 0 {
			return nil, fmt.Errorf("socket: tenant %d: sampling is not supported on the socket path", i)
		}
	}

	tenants := make([]core.SocketTenant, len(specs))
	srcs := make([]*champsim.Source, len(specs))
	closeAll := func() {
		for _, src := range srcs {
			closeSource(src)
		}
	}
	for i, spec := range specs {
		prog, c, err := buildConfig(spec)
		if err != nil {
			closeAll()
			return nil, err
		}
		src, osrc, err := openSource(spec, prog, c)
		if err != nil {
			closeAll()
			return nil, err
		}
		srcs[i] = src
		tenants[i] = core.SocketTenant{Prog: prog, Src: osrc, Config: c}
	}

	s, err := core.NewSocket(tenants, core.SocketConfig{
		SharedPrefetcher: so.SharedPrefetcher,
		L2Reserve:        so.L2Reserve,
		L3Reserve:        so.L3Reserve,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	if err := s.Run(warmup); err != nil {
		closeAll()
		return nil, fmt.Errorf("socket warmup: %w", err)
	}
	s.ResetStats()
	if err := s.Run(measure); err != nil {
		closeAll()
		return nil, fmt.Errorf("socket measure: %w", err)
	}

	out := &SocketRunResult{
		Tenants: make([]*RunResult, len(specs)),
		Cycles:  s.Cycles(),
	}
	for i, spec := range specs {
		res, snap := s.TenantResult(i)
		rr := &RunResult{Spec: spec, Res: res, Metrics: snap}
		rr, err := finishSource(spec, srcs[i], rr, nil)
		srcs[i] = nil // finishSource closed it
		if err != nil {
			closeAll()
			return nil, err
		}
		out.Tenants[i] = rr
	}
	out.Interference = s.InterferenceSnapshot()
	out.Combined = combineSnapshots(out)
	return out, nil
}

// combineSnapshots flattens the run into one namespace: each tenant's
// quota-frozen snapshot under "tenant<i>." plus the uncore counters.
// Built from the frozen snapshots (not Socket.CombinedSnapshot, which
// reads the live registries and so includes post-quota drift) so the
// export matches the per-tenant results exactly.
func combineSnapshots(res *SocketRunResult) metrics.Snapshot {
	out := metrics.Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]float64),
	}
	for i, tr := range res.Tenants {
		prefix := fmt.Sprintf("tenant%d.", i)
		for name, v := range tr.Metrics.Counters {
			out.Counters[prefix+name] = v
		}
		for name, v := range tr.Metrics.Gauges {
			out.Gauges[prefix+name] = v
		}
	}
	for name, v := range res.Interference.Counters {
		out.Counters[name] = v
	}
	for name, v := range res.Interference.Gauges {
		out.Gauges[name] = v
	}
	return out
}
