package harness

import (
	"strings"
	"testing"
)

// TestFastForwardBitIdentical runs every golden-grid spec twice — once
// with idle-cycle fast-forward (the default) and once stepping every cycle
// (NoFastForward) — and diffs the full metric snapshots bit-exactly. The
// fast-forward contract is that a skipped window contains no observable
// event, so ANY difference (a cycle count, a starvation attribution, a
// histogram bucket) means some stage's NextEventAt bound was too late or
// its AccountStall bulk bookkeeping diverged from per-cycle stepping.
func TestFastForwardBitIdentical(t *testing.T) {
	for _, spec := range goldenSpecs() {
		spec := spec
		t.Run(spec.Key(), func(t *testing.T) {
			t.Parallel()
			ff, err := Execute(spec)
			if err != nil {
				t.Fatalf("fast-forward run: %v", err)
			}
			slow := spec
			slow.NoFastForward = true
			cy, err := Execute(slow)
			if err != nil {
				t.Fatalf("cycle-by-cycle run: %v", err)
			}
			if diff := ff.Metrics.Diff(cy.Metrics); len(diff) > 0 {
				show := diff
				if len(show) > 20 {
					show = show[:20]
				}
				t.Errorf("%d metrics differ between fast-forward and cycle-by-cycle stepping:\n  %s",
					len(diff), strings.Join(show, "\n  "))
			}
		})
	}
}
