package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pdip/internal/energy"
	"pdip/internal/stats"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the registry key ("fig10", "tab4", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment and returns its formatted rows.
	Run func(r *Runner, o Options) (string, error)
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: top-down issue-slot breakdown (cassandra)", Fig1},
		{"fig3", "Figure 3: prior techniques vs FDIP baseline", Fig3},
		{"fig4", "Figure 4: FEC lines and FEC decode-starvation shares", Fig4},
		{"fig9", "Figure 9: MPKI at L1I / L2I / L2D / L3", Fig9},
		{"fig10", "Figure 10: speedup comparison (headline)", Fig10},
		{"fig11", "Figure 11: % late prefetches", Fig11},
		{"tab4", "Table 4: PPKI and prefetch accuracy", Tab4},
		{"fig12", "Figure 12: % reduction in FEC stalls", Fig12},
		{"fig13", "Figure 13: PDIP table size sensitivity", Fig13},
		{"tab5", "Table 5: energy and area overhead (McPAT-like)", Tab5},
		{"fig14", "Figure 14: IPC gain at various BTB sizes", Fig14},
		{"fig15", "Figure 15: storage effectiveness (BTB + prefetch table)", Fig15},
		{"fig16", "Figure 16: prefetch trigger distribution", Fig16},
		{"ablations", "Ablations: PDIP design choices (§5.1–§5.3, §6.2)", Ablations},
		{"tracecheck", "Trace replay cross-check: record → ChampSim trace → differential replay vs direct", TraceCheck},
		{"contention", "Contention: 2 tenants on one socket, per-core vs shared PDIP table", Contention},
	}
}

// ExperimentByID returns the registered experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, ids)
}

func pct(f float64) string { return fmt.Sprintf("%+.2f%%", f*100) }

// speedups runs policy over benchmarks and returns per-benchmark speedups
// vs baseline plus the geomean.
func (r *Runner) speedups(o Options, policy string) (map[string]float64, float64, error) {
	benches := o.benchmarks()
	out := make(map[string]float64, len(benches))
	var sp []float64
	for _, b := range benches {
		base, err := r.Run(o.spec(b, "baseline"))
		if err != nil {
			return nil, 0, err
		}
		pol, err := r.Run(o.spec(b, policy))
		if err != nil {
			return nil, 0, err
		}
		s := stats.Speedup(base.Res.IPC(), pol.Res.IPC())
		out[b] = s
		sp = append(sp, s)
	}
	return out, stats.Geomean(sp), nil
}

// Fig1 reproduces the top-down breakdown of cassandra (paper: retiring
// 16.9%, front-end 53.6%, bad speculation 10.6%, back-end 18.9%).
func Fig1(r *Runner, o Options) (string, error) {
	res, err := r.Run(o.spec("cassandra", "baseline"))
	if err != nil {
		return "", err
	}
	ret, fe, bs, be := res.Res.Core.TopDown.Shares()
	t := stats.NewTable("category", "share", "paper")
	t.AddRow("Retiring", stats.Pct(ret), "16.9%")
	t.AddRow("Front-End Bound", stats.Pct(fe), "53.6%")
	t.AddRow("Bad Speculation", stats.Pct(bs), "10.6%")
	t.AddRow("Back-End Bound", stats.Pct(be), "18.9%")
	return t.String(), nil
}

// Fig3 compares the prior techniques of §3 against the FDIP baseline.
func Fig3(r *Runner, o Options) (string, error) {
	policies := []string{"2x-il1", "emissary", "eip-analytical", "eip-analytical+emissary", "fec-ideal"}
	return r.speedupTable(o, policies)
}

// Fig10 is the headline speedup comparison of §7.1.
func Fig10(r *Runner, o Options) (string, error) {
	policies := []string{"eip46", "eip-analytical", "emissary", "pdip44", "pdip44+emissary", "pdip44-zerocost"}
	return r.speedupTable(o, policies)
}

func (r *Runner) speedupTable(o Options, policies []string) (string, error) {
	header := append([]string{"benchmark"}, policies...)
	t := stats.NewTable(header...)
	per := make([]map[string]float64, len(policies))
	geo := make([]float64, len(policies))
	for i, p := range policies {
		m, g, err := r.speedups(o, p)
		if err != nil {
			return "", err
		}
		per[i], geo[i] = m, g
	}
	for _, b := range o.benchmarks() {
		row := []string{b}
		for i := range policies {
			row = append(row, pct(per[i][b]))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for i := range policies {
		row = append(row, pct(geo[i]))
	}
	t.AddRow(row...)
	return t.String(), nil
}

// Fig4 reports FEC line share and FEC starvation-cycle share (paper: ~10%
// of lines cause ~62% of decode starvation on average).
func Fig4(r *Runner, o Options) (string, error) {
	t := stats.NewTable("benchmark", "%FEC lines", "%FEC starvation", "%high-cost", "%hc+backend")
	var l, s []float64
	for _, b := range o.benchmarks() {
		res, err := r.Run(o.spec(b, "baseline"))
		if err != nil {
			return "", err
		}
		c := &res.Res.Core
		lineShare := res.Res.FECLinePct()
		stallShare := res.Res.FECStallShare()
		hc, hcb := 0.0, 0.0
		if c.LinesRetired > 0 {
			hc = float64(c.HighCostFECLines) / float64(c.LinesRetired)
			hcb = float64(c.HighCostBackend) / float64(c.LinesRetired)
		}
		t.AddRow(b, stats.Pct(lineShare), stats.Pct(stallShare), stats.Pct(hc), stats.Pct(hcb))
		l = append(l, lineShare)
		s = append(s, stallShare)
	}
	t.AddRow("average", stats.Pct(mean(l)), stats.Pct(mean(s)), "", "")
	return t.String(), nil
}

// Fig9 reports the baseline miss pressure (paper averages: L1I 85.9,
// L2I 12.4, L3 3.06).
func Fig9(r *Runner, o Options) (string, error) {
	t := stats.NewTable("benchmark", "L1I", "L2I", "L2D", "L3")
	var a, b2, c, d []float64
	for _, b := range o.benchmarks() {
		res, err := r.Run(o.spec(b, "baseline"))
		if err != nil {
			return "", err
		}
		t.AddRow(b,
			fmt.Sprintf("%.1f", res.Res.L1IMPKI()),
			fmt.Sprintf("%.1f", res.Res.L2IMPKI()),
			fmt.Sprintf("%.1f", res.Res.L2DMPKI()),
			fmt.Sprintf("%.1f", res.Res.L3MPKI()))
		a = append(a, res.Res.L1IMPKI())
		b2 = append(b2, res.Res.L2IMPKI())
		c = append(c, res.Res.L2DMPKI())
		d = append(d, res.Res.L3MPKI())
	}
	t.AddRow("average", fmt.Sprintf("%.1f", mean(a)), fmt.Sprintf("%.1f", mean(b2)),
		fmt.Sprintf("%.1f", mean(c)), fmt.Sprintf("%.1f", mean(d)))
	return t.String(), nil
}

// Fig11 reports the late-prefetch (partial hit) share for PDIP(44) and
// EIP(46) (paper: PDIP ~12.6% average).
func Fig11(r *Runner, o Options) (string, error) {
	t := stats.NewTable("benchmark", "PDIP(44) %late", "EIP(46) %late")
	var p, e []float64
	for _, b := range o.benchmarks() {
		rp, err := r.Run(o.spec(b, "pdip44"))
		if err != nil {
			return "", err
		}
		re, err := r.Run(o.spec(b, "eip46"))
		if err != nil {
			return "", err
		}
		t.AddRow(b, stats.Pct(rp.Res.LatePrefetchRate()), stats.Pct(re.Res.LatePrefetchRate()))
		p = append(p, rp.Res.LatePrefetchRate())
		e = append(e, re.Res.LatePrefetchRate())
	}
	t.AddRow("average", stats.Pct(mean(p)), stats.Pct(mean(e)))
	return t.String(), nil
}

// Tab4 reports mean PPKI and prefetch accuracy (paper: EIP(46) 22/44%,
// EIP-Analytical 40/45%, PDIP(11) 21/55%, PDIP(44) 32/54%).
func Tab4(r *Runner, o Options) (string, error) {
	policies := []string{"eip46", "eip-analytical", "pdip11", "pdip44"}
	t := stats.NewTable("metric", "EIP(46)", "EIP-Analytical", "PDIP(11)", "PDIP(44)")
	ppki := []string{"PPKI"}
	acc := []string{"Accuracy"}
	for _, p := range policies {
		var pv, av []float64
		for _, b := range o.benchmarks() {
			res, err := r.Run(o.spec(b, p))
			if err != nil {
				return "", err
			}
			pv = append(pv, res.Res.PPKI())
			av = append(av, res.Res.PrefetchAccuracy())
		}
		ppki = append(ppki, fmt.Sprintf("%.1f", mean(pv)))
		acc = append(acc, stats.Pct(mean(av)))
	}
	t.AddRow(ppki...)
	t.AddRow(acc...)
	return t.String(), nil
}

// Fig12 reports the reduction in FEC stall cycles vs baseline (paper:
// PDIP ~42% average, EIP ~19%).
func Fig12(r *Runner, o Options) (string, error) {
	t := stats.NewTable("benchmark", "PDIP(44)", "EIP(46)", "PDIP(44)+EMISSARY")
	var p, e, pe []float64
	reduction := func(bench, pol string) (float64, error) {
		base, err := r.Run(o.spec(bench, "baseline"))
		if err != nil {
			return 0, err
		}
		res, err := r.Run(o.spec(bench, pol))
		if err != nil {
			return 0, err
		}
		b := float64(base.Res.Core.FECStallCycles)
		if b == 0 {
			return 0, nil
		}
		return 1 - float64(res.Res.Core.FECStallCycles)/b, nil
	}
	for _, b := range o.benchmarks() {
		rp, err := reduction(b, "pdip44")
		if err != nil {
			return "", err
		}
		re, err := reduction(b, "eip46")
		if err != nil {
			return "", err
		}
		rpe, err := reduction(b, "pdip44+emissary")
		if err != nil {
			return "", err
		}
		t.AddRow(b, pct(rp), pct(re), pct(rpe))
		p = append(p, rp)
		e = append(e, re)
		pe = append(pe, rpe)
	}
	t.AddRow("average", pct(mean(p)), pct(mean(e)), pct(mean(pe)))
	return t.String(), nil
}

// Fig13 sweeps PDIP table sizes (paper: strong scaling to 43.5KB, then
// diminishing returns).
func Fig13(r *Runner, o Options) (string, error) {
	return r.speedupTable(o, []string{"pdip11", "pdip22", "pdip44", "pdip87"})
}

// Tab5 reports the analytical energy/area overhead of the PDIP table
// (paper: energy 0.25/0.55/0.62/0.64%, area 0.31/0.52/0.96/2.84%).
func Tab5(r *Runner, o Options) (string, error) {
	t := stats.NewTable("metric", "PDIP(11)", "PDIP(22)", "PDIP(44)", "PDIP(87)")
	erow := []string{"Energy"}
	arow := []string{"Area"}
	for _, ways := range []int{2, 4, 8, 16} {
		// Activity factor: table lookups per cycle, averaged over the
		// benchmark suite with PDIP(44) (lookup rate is size-independent:
		// one probe per new FTQ entry line).
		res, err := r.Run(o.spec("cassandra", "pdip44"))
		if err != nil {
			return "", err
		}
		lookupsPerCycle := float64(res.Res.PQ.Enqueued+res.Res.PQ.Issued) / float64(res.Res.Core.Cycles+1)
		m := energy.PDIPOverhead(ways, lookupsPerCycle)
		erow = append(erow, stats.Pct(m.EnergyFrac))
		arow = append(arow, stats.Pct(m.AreaFrac))
	}
	t.AddRow(erow...)
	t.AddRow(arow...)
	return t.String(), nil
}

// fig14BTBs are the swept BTB capacities (entries).
var fig14BTBs = []int{4096, 8192, 16384, 32768, 65536, 131072}

// Fig14 sweeps BTB sizes, reporting each policy's gain over the FDIP
// baseline at the same BTB size.
func Fig14(r *Runner, o Options) (string, error) {
	policies := []string{"eip46", "pdip11", "pdip44", "pdip44+emissary"}
	header := append([]string{"BTB entries"}, policies...)
	t := stats.NewTable(header...)
	for _, btb := range fig14BTBs {
		row := []string{fmt.Sprintf("%dK", btb/1024)}
		for _, p := range policies {
			var sp []float64
			for _, b := range o.benchmarks() {
				bs := o.spec(b, "baseline")
				bs.BTBEntries = btb
				base, err := r.Run(bs)
				if err != nil {
					return "", err
				}
				ps := o.spec(b, p)
				ps.BTBEntries = btb
				pol, err := r.Run(ps)
				if err != nil {
					return "", err
				}
				sp = append(sp, stats.Speedup(base.Res.IPC(), pol.Res.IPC()))
			}
			row = append(row, pct(stats.Geomean(sp)))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Fig15 reports the storage-effectiveness frontier: IPC gain over the
// 4K-BTB FDIP baseline as a function of BTB+prefetch-table storage.
func Fig15(r *Runner, o Options) (string, error) {
	type point struct {
		label     string
		storageKB float64
		gain      float64
	}
	var pts []point

	// Reference: geomean IPC of the 4K-entry-BTB FDIP baseline.
	refIPC := func() (float64, error) {
		var ipcs []float64
		for _, b := range o.benchmarks() {
			s := o.spec(b, "baseline")
			s.BTBEntries = 4096
			res, err := r.Run(s)
			if err != nil {
				return 0, err
			}
			ipcs = append(ipcs, res.Res.IPC())
		}
		return stats.GeomeanIPC(ipcs), nil
	}
	ref, err := refIPC()
	if err != nil {
		return "", err
	}

	for _, btb := range []int{4096, 8192, 16384, 32768, 65536} {
		for _, pol := range []string{"baseline", "pdip11", "pdip44", "eip46"} {
			var ipcs []float64
			var kb float64
			for _, b := range o.benchmarks() {
				s := o.spec(b, pol)
				s.BTBEntries = btb
				res, err := r.Run(s)
				if err != nil {
					return "", err
				}
				ipcs = append(ipcs, res.Res.IPC())
				kb = res.Res.BTBKB + res.Res.PrefetcherKB
			}
			g := stats.GeomeanIPC(ipcs)/ref - 1
			pts = append(pts, point{fmt.Sprintf("%s@%dK-BTB", pol, btb/1024), kb, g})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].storageKB < pts[j].storageKB })
	t := stats.NewTable("configuration", "storage KB", "gain vs 4K-BTB FDIP")
	for _, p := range pts {
		t.AddRow(p.label, fmt.Sprintf("%.1f", p.storageKB), pct(p.gain))
	}
	return t.String(), nil
}

// Fig16 reports the trigger-class distribution of issued PDIP prefetches
// (paper: ~89% mispredict triggers, ~11% last-taken).
func Fig16(r *Runner, o Options) (string, error) {
	t := stats.NewTable("benchmark", "%mispredict triggers", "%last-taken triggers")
	var m, l []float64
	for _, b := range o.benchmarks() {
		res, err := r.Run(o.spec(b, "pdip44"))
		if err != nil {
			return "", err
		}
		mp, lt := res.Res.TriggerDistribution()
		t.AddRow(b, stats.Pct(mp), stats.Pct(lt))
		m = append(m, mp)
		l = append(l, lt)
	}
	t.AddRow("average", stats.Pct(mean(m)), stats.Pct(mean(l)))
	return t.String(), nil
}

// Ablations compares the design choices DESIGN.md calls out: insertion
// probability, the high-cost/back-end-stall candidate filter, the offset
// mask, return-trigger exclusion, the PQ MSHR reserve, and FDIP itself.
func Ablations(r *Runner, o Options) (string, error) {
	return r.speedupTable(o, []string{
		"pdip44", "pdip44-insert100", "pdip44-insert3", "pdip44-allfec",
		"pdip44-nomask", "pdip44-returns", "pdip44-reserve0", "no-fdip",
	})
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TraceCheck is the self-validation experiment of the trace front-end:
// each selected benchmark is recorded to a ChampSim trace and replayed in
// differential mode under the headline policies, and every counter is
// diffed against the direct synthetic run. An "identical" row means the
// record→decode→replay loop is bit-exact for that cell; anything else
// prints the divergence count (and the run itself fails on decoder
// divergence, so a silent wrong-stream replay cannot score "identical").
func TraceCheck(r *Runner, o Options) (string, error) {
	dir, err := os.MkdirTemp("", "pdip-tracecheck-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	to := o
	to.TraceDir = dir
	to.TraceDifferential = true
	policies := []string{"baseline", "pdip44", "eip46"}
	t := stats.NewTable(append([]string{"benchmark", "records"}, policies...)...)
	for _, b := range o.benchmarks() {
		rspec := o.spec(b, "baseline")
		path := filepath.Join(dir, b+".champsim")
		if err := RecordTrace(rspec, path, 0); err != nil {
			return "", err
		}
		warmup, measure := rspec.budgets()
		row := []string{b, fmt.Sprintf("%d", warmup+measure+TraceSlack)}
		for _, p := range policies {
			direct, err := r.Run(o.spec(b, p))
			if err != nil {
				return "", err
			}
			replay, err := r.Run(to.spec(b, p))
			if err != nil {
				return "", err
			}
			if diff := direct.Metrics.Diff(replay.Metrics); len(diff) > 0 {
				row = append(row, fmt.Sprintf("%d diffs", len(diff)))
			} else {
				row = append(row, "identical")
			}
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Contention is the multi-tenant extension experiment: two tenants
// (cassandra and tomcat, both under PDIP) co-run on one socket with a
// shared L2/L3, once with per-core PDIP tables and once sharing one
// table, against their solo single-core runs. Per tenant it reports the
// IPC under each mode plus the shared-level interference it suffered in
// the per-core-table co-run: cross-tenant evictions and MSHR steals at
// L2. The deltas quantify exactly the prefetcher-vs-prefetcher cache
// pressure a one-core simulator cannot observe.
func Contention(r *Runner, o Options) (string, error) {
	benches := []string{"cassandra", "tomcat"}
	policy := "pdip44"
	specs := make([]RunSpec, len(benches))
	for i, b := range benches {
		specs[i] = o.spec(b, policy)
	}

	perCore, err := ExecuteSocket(specs, SocketOptions{})
	if err != nil {
		return "", err
	}
	shared, err := ExecuteSocket(specs, SocketOptions{SharedPrefetcher: true})
	if err != nil {
		return "", err
	}

	t := stats.NewTable("tenant", "solo IPC", "co-run IPC", "co-run IPC (shared table)", "L2 x-evict", "L2 MSHR steals")
	for i, b := range benches {
		solo, err := r.Run(specs[i])
		if err != nil {
			return "", err
		}
		uc := perCore.Interference.Counters
		p := fmt.Sprintf("uncore.tenant%d", i)
		t.AddRow(
			b+"/"+policy,
			fmt.Sprintf("%.3f", solo.Res.IPC()),
			fmt.Sprintf("%.3f", perCore.Tenants[i].Res.IPC()),
			fmt.Sprintf("%.3f", shared.Tenants[i].Res.IPC()),
			fmt.Sprintf("%d", uc[p+".l2.cross_evictions"]),
			fmt.Sprintf("%d", uc[p+".l2.mshr_steals"]),
		)
	}
	return t.String(), nil
}

// RunAllExperiments runs every registered experiment and concatenates the
// formatted outputs.
func RunAllExperiments(r *Runner, o Options) (string, error) {
	var sb strings.Builder
	for _, e := range Experiments() {
		out, err := e.Run(r, o)
		if err != nil {
			return sb.String(), fmt.Errorf("%s: %w", e.ID, err)
		}
		sb.WriteString("== " + e.Title + " ==\n")
		sb.WriteString(out)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
