package harness

import (
	"encoding/json"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestGoldenSocketEquivalence is the N=1 bit-identity pin for the socket
// path: every golden-grid cell, run through a one-tenant Socket (whose
// miss traffic crosses the arbitrated uncore port), must reproduce the
// committed golden_metrics.json counter for counter, both ways. The
// golden file is never regenerated from this test — drift here means the
// socket path perturbed single-core behaviour.
func TestGoldenSocketEquivalence(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with TestGoldenMetrics -update): %v", err)
	}
	var want map[string]map[string]uint64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	for _, spec := range goldenSpecs() {
		res, err := ExecuteSocket([]RunSpec{spec}, SocketOptions{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Key(), err)
		}
		golden, ok := want[spec.Key()]
		if !ok {
			t.Fatalf("golden file missing %s", spec.Key())
		}
		got := res.Tenants[0].Metrics.Counters
		var diff []string
		for n, wv := range golden {
			if gv, ok := got[n]; !ok || gv != wv {
				diff = append(diff, n+": golden="+utoa(wv)+" socket="+utoa(got[n]))
			}
		}
		for n := range got {
			if _, ok := golden[n]; !ok {
				diff = append(diff, n+": counter only in socket run")
			}
		}
		if len(diff) > 0 {
			sort.Strings(diff)
			if len(diff) > 20 {
				diff = diff[:20]
			}
			t.Errorf("%s: Socket{N:1} is not bit-identical to the golden grid:\n  %s",
				spec.Key(), strings.Join(diff, "\n  "))
		}
	}
}

// combinedKey flattens a socket result into one sorted counter map
// (tenant counters prefixed, uncore counters as-is) for bit-exact
// cross-run comparison.
func combinedCounters(res *SocketRunResult) map[string]uint64 {
	out := make(map[string]uint64)
	for i, tr := range res.Tenants {
		for n, v := range tr.Metrics.Counters {
			out["tenant"+string(rune('0'+i))+"."+n] = v
		}
	}
	for n, v := range res.Interference.Counters {
		out[n] = v
	}
	return out
}

// TestSocketContentionInterference is the acceptance check for the
// multi-tenant path: a 2-tenant run must report per-tenant IPC/MPKI,
// nonzero shared-level interference (cross-tenant evictions and MSHR
// steals under contention), and be bit-deterministic across replays.
func TestSocketContentionInterference(t *testing.T) {
	o := QuickOptions()
	specs := []RunSpec{o.spec("cassandra", "pdip44"), o.spec("tomcat", "pdip44")}
	// Reserve a single guaranteed L2 MSHR per tenant, leaving a deep
	// shared pool — the configuration under which steals are the common
	// case rather than an edge case.
	so := SocketOptions{L2Reserve: 1, L3Reserve: 1}

	run := func() *SocketRunResult {
		res, err := ExecuteSocket(specs, so)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()

	for i, tr := range a.Tenants {
		// The quota crossing lands at cycle granularity: within one retire
		// width of the budget, exactly like Core.Run (TestRunRetiresExactly).
		if n := tr.Res.Core.Instructions; n < specs[i].Measure || n > specs[i].Measure+16 {
			t.Errorf("tenant %d measured %d instructions, want ≈%d", i, n, specs[i].Measure)
		}
		if tr.Res.IPC() <= 0 {
			t.Errorf("tenant %d IPC %v not positive", i, tr.Res.IPC())
		}
		if tr.Res.L1IMPKI() <= 0 {
			t.Errorf("tenant %d L1I MPKI %v not positive", i, tr.Res.L1IMPKI())
		}
	}

	sum := func(res *SocketRunResult, suffix string) uint64 {
		var total uint64
		for n, v := range res.Interference.Counters {
			if strings.HasSuffix(n, suffix) {
				total += v
			}
		}
		return total
	}
	if got := sum(a, ".cross_evictions"); got == 0 {
		t.Error("2-tenant contention produced zero cross-tenant evictions at the shared levels")
	}
	if got := sum(a, ".mshr_steals"); got == 0 {
		t.Error("2-tenant contention produced zero MSHR steals at the shared levels")
	}
	if got := sum(a, ".requests"); got == 0 {
		t.Error("uncore saw zero tenant requests")
	}

	ca, cb := combinedCounters(a), combinedCounters(b)
	var diff []string
	for n, v := range ca {
		if cb[n] != v {
			diff = append(diff, n)
		}
	}
	for n := range cb {
		if _, ok := ca[n]; !ok {
			diff = append(diff, n)
		}
	}
	if len(diff) > 0 {
		sort.Strings(diff)
		if len(diff) > 20 {
			diff = diff[:20]
		}
		t.Errorf("identical 2-tenant runs diverged in %d counters:\n  %s", len(diff), strings.Join(diff, "\n  "))
	}
}

// TestSocketSharedPrefetcherRuns pins the one-PDIP-table-per-socket mode:
// it must run to completion, stay deterministic, and actually change
// prefetch behaviour relative to per-core tables.
func TestSocketSharedPrefetcherRuns(t *testing.T) {
	o := QuickOptions()
	specs := []RunSpec{o.spec("cassandra", "pdip44"), o.spec("kafka", "pdip44")}
	shared, err := ExecuteSocket(specs, SocketOptions{SharedPrefetcher: true})
	if err != nil {
		t.Fatal(err)
	}
	private, err := ExecuteSocket(specs, SocketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range specs {
		if !shared.Tenants[i].Metrics.Equal(private.Tenants[i].Metrics) {
			same = false
		}
	}
	if same {
		t.Error("shared-table and per-core-table runs are bit-identical — the SharedPrefetcher knob is not wired")
	}
}

// TestExecuteSocketRejectsMixedBudgets pins the one-shared-window
// contract.
func TestExecuteSocketRejectsMixedBudgets(t *testing.T) {
	o := QuickOptions()
	a, b := o.spec("cassandra", "baseline"), o.spec("tomcat", "baseline")
	b.Measure *= 2
	if _, err := ExecuteSocket([]RunSpec{a, b}, SocketOptions{}); err == nil {
		t.Fatal("ExecuteSocket accepted tenants with differing measure budgets")
	}
}
