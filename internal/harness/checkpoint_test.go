package harness

import (
	"strings"
	"sync"
	"testing"

	"pdip/internal/checkpoint"
)

// forkEquals runs spec through the runner's warm-fork path and through
// the from-scratch reference path, and requires bit-identical metrics.
func forkEquals(t *testing.T, r *Runner, spec RunSpec) {
	t.Helper()
	forked, err := r.Run(spec)
	if err != nil {
		t.Fatalf("warm-fork run: %v", err)
	}
	scratch, err := Execute(spec)
	if err != nil {
		t.Fatalf("scratch run: %v", err)
	}
	if diff := forked.Metrics.Diff(scratch.Metrics); len(diff) > 0 {
		show := diff
		if len(show) > 20 {
			show = show[:20]
		}
		t.Errorf("%d metrics differ between warm-fork and from-scratch execution:\n  %s",
			len(diff), strings.Join(show, "\n  "))
	}
	if len(forked.Samples) != len(scratch.Samples) {
		t.Fatalf("sample counts differ: %d (fork) vs %d (scratch)", len(forked.Samples), len(scratch.Samples))
	}
	for i := range forked.Samples {
		if diff := forked.Samples[i].Metrics.Diff(scratch.Samples[i].Metrics); len(diff) > 0 {
			t.Errorf("sample %d differs between warm-fork and from-scratch execution: %s",
				i, strings.Join(diff[:1], ""))
		}
	}
}

// TestCheckpointBitIdentical holds the warm-fork path to the simulator's
// core contract: restoring a warm snapshot and measuring must be
// bit-identical to warming up from scratch — over the golden grid, with
// and without idle-cycle fast-forward, and for measure-phase knob
// variants (sampling, coverage sets) forked from the same warm state.
func TestCheckpointBitIdentical(t *testing.T) {
	r := NewRunner(0)
	for _, base := range goldenSpecs() {
		for _, noFF := range []bool{false, true} {
			spec := base
			spec.NoFastForward = noFF
			name := spec.Key()
			if noFF {
				name += "/no-fast-forward"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				forkEquals(t, r, spec)
			})
		}
	}
	// Measure-phase variants share the warm tuple with the plain spec
	// above, so these forks reuse a warm state produced under different
	// measure knobs — the exact reuse the checkpoint layer exists for.
	variant := goldenSpecs()[0]
	variant.CollectSets = true
	variant.SampleEvery = 50_000
	t.Run(variant.Key()+"/collect-sets+sampling", func(t *testing.T) {
		t.Parallel()
		forkEquals(t, r, variant)
	})
}

// TestRunSingleflight submits the same spec from many goroutines at once
// and requires exactly one execution: one simulated warmup, one fork. The
// pre-singleflight Runner would run the spec once per goroutine that got
// past the cache check before the first finished.
func TestRunSingleflight(t *testing.T) {
	r := NewRunner(4)
	o := QuickOptions()
	spec := o.spec("cassandra", "baseline")
	const waiters = 16
	results := make([]*RunResult, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		//lint:ignore determinism concurrency harness above the simulated clock; each goroutine only reads the shared runner
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(spec)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d received a different result object — the run executed more than once", i)
		}
	}
	s := r.CheckpointStats()
	if s.WarmupsExecuted != 1 || s.Forks != 1 {
		t.Errorf("singleflight leak: %d warmups and %d forks for %d concurrent submissions of one spec (want 1 and 1)",
			s.WarmupsExecuted, s.Forks, waiters)
	}
}

// TestWarmStateSharedAcrossSpecs runs a grid of specs that differ only in
// measure-phase knobs and requires a single warmup to serve all of them.
func TestWarmStateSharedAcrossSpecs(t *testing.T) {
	r := NewRunner(2)
	o := QuickOptions()
	base := o.spec("tomcat", "pdip44")
	specs := []RunSpec{base}
	for _, d := range []uint64{1, 2, 3} {
		s := base
		s.Measure = base.Measure + d // distinct spec, same warm tuple
		specs = append(specs, s)
	}
	if _, err := r.RunAll(specs); err != nil {
		t.Fatal(err)
	}
	s := r.CheckpointStats()
	if s.WarmupsExecuted != 1 {
		t.Errorf("%d warmups executed for %d specs sharing one warm tuple (want 1)", s.WarmupsExecuted, len(specs))
	}
	if s.Forks != uint64(len(specs)) {
		t.Errorf("%d forks for %d specs (want one fork per spec)", s.Forks, len(specs))
	}
}

// TestCheckpointDiskCache exercises the cross-process path: a second
// runner pointed at the same -checkpoint-dir must restore the warm state
// from disk (no warmup simulated) and still produce bit-identical results.
func TestCheckpointDiskCache(t *testing.T) {
	dir := t.TempDir()
	o := QuickOptions()
	spec := o.spec("kafka", "eip46")

	r1 := NewRunnerWithCheckpoints(2, dir)
	a, err := r1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := r1.CheckpointStats(); s.WarmupsExecuted != 1 || s.DiskStores != 1 || s.DiskHits != 0 {
		t.Errorf("cold-cache runner: %+v (want 1 warmup, 1 store, 0 hits)", s)
	}

	r2 := NewRunnerWithCheckpoints(2, dir)
	b, err := r2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := r2.CheckpointStats(); s.WarmupsExecuted != 0 || s.DiskHits != 1 {
		t.Errorf("warm-cache runner: %+v (want 0 warmups, 1 disk hit)", s)
	}
	if diff := a.Metrics.Diff(b.Metrics); len(diff) > 0 {
		t.Errorf("%d metrics differ between simulated-warmup and disk-restored runs:\n  %s",
			len(diff), strings.Join(diff[:min(len(diff), 20)], "\n  "))
	}

	// A different warm tuple must miss: the content address covers the
	// configuration, so a changed knob can never restore a stale state.
	other := spec
	other.Warmup += 1000
	if _, err := r2.Run(other); err != nil {
		t.Fatal(err)
	}
	if s := r2.CheckpointStats(); s.WarmupsExecuted != 1 || s.DiskStores != 1 {
		t.Errorf("changed-tuple runner: %+v (want the changed tuple to warm and store fresh)", s)
	}
}

// TestCheckpointSharedDirCache exercises the in-process layer the fleet
// relies on: runners sharing one checkpoint.Dir must serve each other's
// warm states from the store's decoded-state cache — counted as
// DirCacheHits, with the disk never re-read — and stay bit-identical.
func TestCheckpointSharedDirCache(t *testing.T) {
	ck := checkpoint.NewDir(t.TempDir(), 0)
	o := QuickOptions()
	spec := o.spec("kafka", "eip46")

	r1 := NewRunnerWithDir(2, ck)
	a, err := r1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := r1.CheckpointStats(); s.WarmupsExecuted != 1 || s.DiskStores != 1 || s.DirCacheHits != 0 {
		t.Errorf("warming runner: %+v (want 1 warmup, 1 store, 0 cache forks)", s)
	}

	r2 := NewRunnerWithDir(2, ck)
	b, err := r2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := r2.CheckpointStats(); s.WarmupsExecuted != 0 || s.DirCacheHits != 1 || s.DiskHits != 0 {
		t.Errorf("sibling runner: %+v (want 0 warmups, 1 cache fork, 0 disk hits)", s)
	}
	if diff := a.Metrics.Diff(b.Metrics); len(diff) > 0 {
		t.Errorf("%d metrics differ between simulated-warmup and cache-forked runs:\n  %s",
			len(diff), strings.Join(diff[:min(len(diff), 20)], "\n  "))
	}
	if ds := ck.Stats(); ds.CacheHits != 1 || ds.Stores != 1 {
		t.Errorf("store stats: %+v (want the sibling's load counted as a cache hit)", ds)
	}

	// The aggregate report the fabric coordinator builds must carry the
	// new counter through RunnerStats.Add.
	sum := r1.Stats()
	sum.Add(r2.Stats())
	if sum.Checkpoint.DirCacheHits != 1 || sum.Checkpoint.WarmupsExecuted != 1 {
		t.Errorf("aggregated stats: %+v (want the cache fork to survive aggregation)", sum.Checkpoint)
	}
}
