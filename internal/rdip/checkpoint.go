package rdip

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// CaptureCheckpoint implements prefetch.Checkpointer: the signature
// table, the private RAS mirror and current context signature, pending
// retire-time requests, and the stats.
func (r *RDIP) CaptureCheckpoint() checkpoint.PrefetcherState {
	st := &checkpoint.RDIPState{
		Sets:    make([][]checkpoint.RDIPEntryState, len(r.sets)),
		Tick:    r.tick,
		RAS:     append([]isa.Addr(nil), r.ras...),
		Sig:     r.sig,
		Pending: prefetch.CaptureRequests(r.pending),
		Stats:   checkpoint.RDIPStats(r.Stats),
	}
	for si, set := range r.sets {
		ws := make([]checkpoint.RDIPEntryState, len(set))
		for wi, e := range set {
			ws[wi] = checkpoint.RDIPEntryState{
				Valid: e.valid,
				Tag:   e.tag,
				LRU:   e.lru,
				Lines: append([]isa.Addr(nil), e.lines...),
			}
		}
		st.Sets[si] = ws
	}
	return checkpoint.PrefetcherState{Kind: "rdip", RDIP: st}
}

// RestoreCheckpoint implements prefetch.Checkpointer. The receiver must
// have been built with the same table geometry.
func (r *RDIP) RestoreCheckpoint(st checkpoint.PrefetcherState) error {
	if st.Kind != "rdip" || st.RDIP == nil {
		return fmt.Errorf("rdip: checkpoint kind %q, prefetcher is rdip", st.Kind)
	}
	s := st.RDIP
	if len(s.Sets) != len(r.sets) {
		return fmt.Errorf("rdip: checkpoint has %d sets, table has %d", len(s.Sets), len(r.sets))
	}
	for si, ws := range s.Sets {
		if len(ws) != len(r.sets[si]) {
			return fmt.Errorf("rdip: checkpoint set %d has %d ways, table has %d", si, len(ws), len(r.sets[si]))
		}
		for wi, es := range ws {
			e := &r.sets[si][wi]
			e.valid = es.Valid
			e.tag = es.Tag
			e.lru = es.LRU
			e.lines = append(e.lines[:0], es.Lines...)
		}
	}
	r.tick = s.Tick
	r.ras = append(r.ras[:0], s.RAS...)
	r.sig = s.Sig
	r.pending = prefetch.RestoreRequests(r.pending[:0], s.Pending)
	r.Stats = Stats(s.Stats)
	return nil
}
