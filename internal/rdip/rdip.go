// Package rdip implements a Return-address-stack Directed Instruction
// Prefetcher in the spirit of Kolli, Saidi & Wenisch (MICRO '13), one of
// the context-signature baselines the paper's §8 surveys.
//
// The key observation of RDIP: the misses seen in a given calling context
// repeat the next time the same context recurs. The context is captured as
// a hash of the return address stack; a signature table maps each context
// to the lines that missed in it last time, and a context switch (call or
// return retiring) prefetches the new context's recorded miss set.
package rdip

import (
	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// Config sizes the signature table.
type Config struct {
	// Sets and Ways size the signature table.
	Sets, Ways int
	// LinesPerEntry caps the miss lines recorded per context.
	LinesPerEntry int
	// RASDepth is the depth of the prefetcher's private RAS mirror.
	RASDepth int
	// TagBits sizes the partial signature tag.
	TagBits int
}

// DefaultConfig returns a ≈32KB-class RDIP.
func DefaultConfig() Config {
	return Config{Sets: 512, Ways: 4, LinesPerEntry: 4, RASDepth: 16, TagBits: 10}
}

// StorageKB reports the signature-table budget (34-bit line addresses,
// matching the accounting used for PDIP and EIP).
func (c Config) StorageKB() float64 {
	bitsPerEntry := c.TagBits + 1 + c.LinesPerEntry*34
	return float64(c.Sets*c.Ways*bitsPerEntry) / 8192.0
}

type entry struct {
	valid bool
	tag   uint32
	lru   uint32
	lines []isa.Addr
}

// Stats counts RDIP events.
type Stats struct {
	// ContextSwitches counts retired calls + returns.
	ContextSwitches uint64
	// Recorded counts miss lines recorded into contexts.
	Recorded uint64
	// Hits counts context switches that found a recorded miss set.
	Hits uint64
}

// RDIP is the prefetcher.
type RDIP struct {
	cfg  Config
	sets [][]entry
	tick uint32

	// ras mirrors the call stack for signature computation.
	ras []isa.Addr
	// sig is the current context signature.
	sig uint64

	pending []prefetch.Request

	Stats Stats
}

// New builds an RDIP instance.
func New(cfg Config) *RDIP {
	if cfg.Sets == 0 {
		cfg = DefaultConfig()
	}
	r := &RDIP{cfg: cfg, sets: make([][]entry, cfg.Sets)}
	for i := range r.sets {
		ways := make([]entry, cfg.Ways)
		for w := range ways {
			ways[w].lines = make([]isa.Addr, 0, cfg.LinesPerEntry)
		}
		r.sets[i] = ways
	}
	return r
}

// Name implements prefetch.Prefetcher.
func (r *RDIP) Name() string { return "rdip" }

// StorageKB implements prefetch.Prefetcher.
func (r *RDIP) StorageKB() float64 { return r.cfg.StorageKB() }

// OnFTQInsert implements prefetch.Prefetcher: RDIP is context-driven, not
// access-driven, so the FTQ stream is not consulted.
func (r *RDIP) OnFTQInsert(_ isa.Addr, out []prefetch.Request) []prefetch.Request {
	return out
}

// OnLineRetired implements prefetch.Prefetcher: record misses under the
// current context signature.
func (r *RDIP) OnLineRetired(ev prefetch.RetireEvent) {
	if !ev.Missed {
		return
	}
	set, tag := r.indexTag()
	e := r.findOrAlloc(set, tag)
	for _, l := range e.lines {
		if l == ev.Line {
			return
		}
	}
	if len(e.lines) >= r.cfg.LinesPerEntry {
		copy(e.lines, e.lines[1:])
		e.lines[len(e.lines)-1] = ev.Line
	} else {
		e.lines = append(e.lines, ev.Line)
	}
	r.Stats.Recorded++
}

// OnCallReturn implements the core's call/return observer: update the RAS
// mirror and signature, and prefetch the new context's recorded misses.
func (r *RDIP) OnCallReturn(isCall bool, _ isa.Addr, returnAddr isa.Addr) {
	r.Stats.ContextSwitches++
	if isCall {
		if len(r.ras) < r.cfg.RASDepth {
			r.ras = append(r.ras, returnAddr)
		}
	} else if len(r.ras) > 0 {
		r.ras = r.ras[:len(r.ras)-1]
	}
	r.recomputeSig()

	set, tag := r.indexTag()
	for w := range r.sets[set] {
		e := &r.sets[set][w]
		if e.valid && e.tag == tag {
			r.Stats.Hits++
			r.tick++
			e.lru = r.tick
			for _, l := range e.lines {
				r.pending = append(r.pending, prefetch.Request{Line: l, Trigger: prefetch.TriggerNone})
			}
			return
		}
	}
}

// TakePending implements prefetch.RetireEmitter.
func (r *RDIP) TakePending(out []prefetch.Request) []prefetch.Request {
	out = append(out, r.pending...)
	r.pending = r.pending[:0]
	return out
}

// recomputeSig hashes the whole RAS (the original RDIP formulation).
func (r *RDIP) recomputeSig() {
	var h uint64 = 1469598103934665603
	for _, a := range r.ras {
		h ^= uint64(a) >> 2
		h *= 1099511628211
	}
	r.sig = h
}

func (r *RDIP) indexTag() (int, uint32) {
	set := int(r.sig % uint64(r.cfg.Sets))
	tag := uint32(r.sig/uint64(r.cfg.Sets)) & ((1 << r.cfg.TagBits) - 1)
	return set, tag
}

func (r *RDIP) findOrAlloc(set int, tag uint32) *entry {
	ways := r.sets[set]
	r.tick++
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			ways[w].lru = r.tick
			return &ways[w]
		}
	}
	victim := 0
	var oldest uint32 = ^uint32(0)
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < oldest {
			victim, oldest = w, ways[w].lru
		}
	}
	e := &ways[victim]
	e.valid = true
	e.tag = tag
	e.lru = r.tick
	e.lines = e.lines[:0]
	return e
}

// ResetStats zeroes counters, keeping table state warm.
func (r *RDIP) ResetStats() { r.Stats = Stats{} }
