package rdip

import "pdip/internal/metrics"

// RegisterMetrics implements metrics.Registrant, publishing the signature
// table's accounting under "rdip". Bindings are snapshot-time views over
// Stats, so ResetStats is reflected automatically.
func (r *RDIP) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("rdip.context_switches", func() uint64 { return r.Stats.ContextSwitches })
	reg.CounterFunc("rdip.recorded", func() uint64 { return r.Stats.Recorded })
	reg.CounterFunc("rdip.hits", func() uint64 { return r.Stats.Hits })
	reg.Gauge("rdip.storage_kb").Set(r.StorageKB())
}
