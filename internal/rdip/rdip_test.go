package rdip

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

func miss(line isa.Addr) prefetch.RetireEvent {
	return prefetch.RetireEvent{Line: line, Missed: true}
}

func TestRecordAndReplayOnContextSwitch(t *testing.T) {
	r := New(DefaultConfig())
	// Enter context (call), record two misses.
	r.OnCallReturn(true, 0x100, 0x105)
	r.OnLineRetired(miss(0x9000))
	r.OnLineRetired(miss(0x9040))
	// Leave and re-enter the same context: the recorded set replays.
	r.OnCallReturn(false, 0x200, 0)
	r.TakePending(nil) // drop whatever the outer context had
	r.OnCallReturn(true, 0x100, 0x105)
	reqs := r.TakePending(nil)
	if len(reqs) != 2 {
		t.Fatalf("replayed %d lines, want 2", len(reqs))
	}
	got := map[isa.Addr]bool{}
	for _, q := range reqs {
		got[q.Line] = true
	}
	if !got[0x9000] || !got[0x9040] {
		t.Fatalf("wrong replay set: %+v", reqs)
	}
}

func TestDifferentContextsIsolated(t *testing.T) {
	r := New(DefaultConfig())
	r.OnCallReturn(true, 0x100, 0x105)
	r.OnLineRetired(miss(0x9000))
	r.OnCallReturn(false, 0x200, 0)
	r.TakePending(nil)
	// A different call context must not replay the first context's set.
	r.OnCallReturn(true, 0x300, 0x305)
	reqs := r.TakePending(nil)
	for _, q := range reqs {
		if q.Line == 0x9000 {
			t.Fatal("context isolation broken")
		}
	}
}

func TestLinesPerEntryCap(t *testing.T) {
	c := DefaultConfig()
	c.LinesPerEntry = 2
	r := New(c)
	r.OnCallReturn(true, 0x100, 0x105)
	r.OnLineRetired(miss(0x9000))
	r.OnLineRetired(miss(0x9040))
	r.OnLineRetired(miss(0x9080))
	r.OnCallReturn(false, 0, 0)
	r.TakePending(nil)
	r.OnCallReturn(true, 0x100, 0x105)
	reqs := r.TakePending(nil)
	if len(reqs) != 2 {
		t.Fatalf("cap not enforced: %d lines", len(reqs))
	}
	for _, q := range reqs {
		if q.Line == 0x9000 {
			t.Fatal("oldest line not displaced")
		}
	}
}

func TestDuplicateMissNotRecordedTwice(t *testing.T) {
	r := New(DefaultConfig())
	r.OnCallReturn(true, 0x100, 0x105)
	r.OnLineRetired(miss(0x9000))
	r.OnLineRetired(miss(0x9000))
	if r.Stats.Recorded != 1 {
		t.Fatalf("recorded %d, want 1", r.Stats.Recorded)
	}
}

func TestHitsOnlyOnKnownContexts(t *testing.T) {
	r := New(DefaultConfig())
	r.OnCallReturn(true, 0x100, 0x105)
	if r.Stats.Hits != 0 {
		t.Fatal("hit on a never-seen context")
	}
}

func TestStorageAndName(t *testing.T) {
	r := New(DefaultConfig())
	if r.Name() != "rdip" {
		t.Fatalf("name %q", r.Name())
	}
	if kb := r.StorageKB(); kb < 10 || kb > 64 {
		t.Fatalf("storage %.1fKB outside the expected class", kb)
	}
}

func TestFTQInsertIsNoOp(t *testing.T) {
	r := New(DefaultConfig())
	if got := r.OnFTQInsert(0x40, nil); len(got) != 0 {
		t.Fatal("RDIP consumed the access stream")
	}
}

func TestResetStats(t *testing.T) {
	r := New(DefaultConfig())
	r.OnCallReturn(true, 0x100, 0x105)
	r.ResetStats()
	if r.Stats.ContextSwitches != 0 {
		t.Fatal("stats not reset")
	}
}
