// Package cfg generates synthetic programs as control-flow graphs.
//
// The paper evaluates PDIP on 16 server workloads (cassandra, tomcat, ...)
// whose defining property is an instruction footprint far larger than the
// L1-I and the BTB. We cannot run those JVM/SQL binaries inside this
// simulator, so cfg builds a stand-in: a program made of functions, each a
// sequence of basic blocks with realistic terminators (biased conditional
// branches, loops with learnable trip counts, direct and indirect calls,
// switch-like indirect jumps, returns). A seeded walk over this graph (see
// package trace) produces a dynamic instruction stream with the same
// front-end behaviour that PDIP exploits: L1-I capacity misses, BTB misses,
// branch mispredicts, and recurring (resteer-trigger, miss-target) pairs.
package cfg

import (
	"fmt"
	"sort"

	"pdip/internal/isa"
	"pdip/internal/rng"
)

// Params controls program generation. The workload package derives one
// Params per paper benchmark; tests construct small ones directly.
type Params struct {
	// Seed drives all layout and probability decisions.
	Seed uint64

	// NumFuncs is the number of functions in the program.
	NumFuncs int
	// BlocksPerFuncMean is the mean number of basic blocks per function.
	BlocksPerFuncMean float64
	// InstsPerBlockMean is the mean number of instructions per block.
	InstsPerBlockMean float64

	// CondFrac, JumpFrac, CallFrac, IndJumpFrac, IndCallFrac, RetFrac are
	// relative weights for terminator kinds of non-final blocks. A block
	// may also simply fall through (weight FallFrac).
	CondFrac, JumpFrac, CallFrac, IndJumpFrac, IndCallFrac, RetFrac, FallFrac float64

	// LoopFrac is the fraction of conditional branches that are loop
	// back-edges with a deterministic trip count (predictable by TAGE).
	LoopFrac float64
	// LoopTripMean is the mean loop trip count.
	LoopTripMean float64
	// CondBias is the mean taken-probability bias magnitude of
	// non-loop conditional branches: each branch gets a taken probability
	// of either CondBias or 1-CondBias (coin flip at generation time).
	// 0.95 yields highly predictable branches; 0.7 yields frequent
	// mispredicts.
	CondBias float64
	// HardBranchFrac is the fraction of non-loop conditional branches
	// that are data-dependent and hard to predict (bias HardBias instead
	// of CondBias). Concentrating mispredicts on a small static site set
	// is what makes the same resteer triggers — and therefore the same
	// FEC lines — recur, the behaviour PDIP and EMISSARY learn from.
	HardBranchFrac float64
	// HardBias is the taken-probability magnitude of hard branches.
	HardBias float64

	// IndirectTargets is the number of distinct targets of each indirect
	// jump/call (switch fan-out / virtual call sites).
	IndirectTargets int
	// IndirectBias is the probability the dominant (first) target is
	// chosen at each execution; the rest is spread uniformly. Real
	// virtual-call sites are heavily skewed toward one receiver, which is
	// what makes them ITTAGE-predictable.
	IndirectBias float64

	// HotFuncFrac is the fraction of functions that form the hot set;
	// HotCallWeight is how much more likely calls target hot functions.
	HotFuncFrac   float64
	HotCallWeight float64

	// CallLocality is the fraction of call sites whose callee lies near
	// the caller in function-index space (a request handler calling its
	// own helper subtree); the remainder pick hot-weighted global callees
	// (shared library/utility functions). Locality in the static call
	// graph is what gives the dynamic walk its phase behaviour: an active
	// region larger than the L1-I but far smaller than the footprint,
	// revisited on timescales prefetchers can learn.
	CallLocality float64
	// CallNeighborhood is the mean |caller-callee| index distance of
	// local calls.
	CallNeighborhood int

	// DispatchNoise is the index spread of top-level dispatch (the
	// function entered when the call stack empties) around a slowly
	// drifting center; DispatchJump is the per-dispatch probability of
	// the center jumping to a uniformly random function (request-type
	// change).
	DispatchNoise int
	DispatchJump  float64
	// DispatchDrift is the maximum per-dispatch random step of the
	// center (uniform in [-DispatchDrift, +DispatchDrift]).
	DispatchDrift int
	// DispatchHotFrac is the probability a dispatch goes to the hot
	// handler set (request popularity is zipf-like: a few request types
	// dominate). Hot handlers revisit fast enough to stay L1I-resident,
	// so the unlearnable dispatch-entry misses stay rare; cold handlers
	// supply background L1I/BTB pressure.
	DispatchHotFrac float64

	// CodeBase is the starting address for code layout.
	CodeBase isa.Addr
	// FuncAlign aligns function starts (bytes, power of two).
	FuncAlign int
}

// DefaultParams returns a small but structurally complete program
// configuration, useful in tests and the quickstart example.
func DefaultParams() Params {
	return Params{
		Seed:              1,
		NumFuncs:          64,
		BlocksPerFuncMean: 8,
		InstsPerBlockMean: 6,
		CondFrac:          0.45,
		JumpFrac:          0.08,
		CallFrac:          0.18,
		IndJumpFrac:       0.03,
		IndCallFrac:       0.04,
		RetFrac:           0.06,
		FallFrac:          0.16,
		LoopFrac:          0.3,
		LoopTripMean:      8,
		CondBias:          0.92,
		HardBranchFrac:    0.08,
		HardBias:          0.65,
		IndirectTargets:   4,
		IndirectBias:      0.85,
		HotFuncFrac:       0.2,
		HotCallWeight:     8,
		CallLocality:      0.75,
		CallNeighborhood:  40,
		DispatchNoise:     60,
		DispatchJump:      0.02,
		DispatchDrift:     4,
		DispatchHotFrac:   0.8,
		CodeBase:          0x400000,
		FuncAlign:         64,
	}
}

// Terminator describes how control leaves a basic block.
type Terminator struct {
	// Kind is the branch kind of the block's final instruction;
	// isa.NotBranch means pure fall-through into the next block.
	Kind isa.BranchKind

	// TakenBlock is the target block ID for direct branches (CondDirect
	// taken-target, UncondDirect, DirectCall).
	TakenBlock int

	// TakenProb is the taken probability for non-loop CondDirect.
	TakenProb float64
	// LoopTrip, if > 0, marks a CondDirect loop back-edge taken exactly
	// LoopTrip-1 consecutive times then not taken (trip count LoopTrip).
	LoopTrip int

	// IndTargets are the target block IDs of indirect jumps/calls, chosen
	// uniformly at walk time.
	IndTargets []int

	// Dispatch marks the driver loop's indirect call: its target is the
	// entry of a request handler chosen by the walker's dispatch policy
	// rather than from IndTargets.
	Dispatch bool
}

// Block is one basic block.
type Block struct {
	// ID is the block's index in Program.Blocks.
	ID int
	// Func is the ID of the owning function.
	Func int
	// Addr is the address of the block's first instruction.
	Addr isa.Addr
	// InstSizes holds the byte size of each instruction in order; the
	// final instruction is the terminator when Term.Kind != NotBranch.
	InstSizes []uint8
	// Term describes the block's control-flow exit.
	Term Terminator
}

// NumInsts returns the number of instructions in the block.
func (b *Block) NumInsts() int { return len(b.InstSizes) }

// Size returns the block size in bytes.
func (b *Block) Size() int {
	n := 0
	for _, s := range b.InstSizes {
		n += int(s)
	}
	return n
}

// End returns the address one past the last byte of the block.
func (b *Block) End() isa.Addr { return b.Addr + isa.Addr(b.Size()) }

// LastPC returns the address of the block's final instruction.
func (b *Block) LastPC() isa.Addr {
	return b.End() - isa.Addr(b.InstSizes[len(b.InstSizes)-1])
}

// Func is one function: a contiguous run of blocks.
type Func struct {
	// ID is the function's index in Program.Funcs.
	ID int
	// FirstBlock and NumBlocks delimit the function's blocks, which are
	// laid out contiguously in both block-ID and address space.
	FirstBlock, NumBlocks int
	// Layer is the function's call-graph layer. Calls only go from layer
	// k to layer k+1, making the static call graph a DAG: recursion is
	// structurally impossible and call depth is bounded by the layer
	// count. Layer 0 functions are request handlers (dispatch entry
	// points); the deepest layers are shared utility code, called from
	// everywhere and therefore naturally hot.
	Layer int
	// Hot marks membership in the hot set (call-weighted).
	Hot bool
}

// Program is a complete synthetic program.
type Program struct {
	Params Params
	Blocks []Block
	Funcs  []Func
	// Entry is the block ID where execution starts.
	Entry int

	// blockStarts caches block start addresses for BlockAt binary search.
	blockStarts []isa.Addr
	// nHot caches the hot-function count for PickGlobalFunc.
	nHot int
	// layerFuncs lists function IDs per call-graph layer.
	layerFuncs [][]int
	// hotHandlers lists hot layer-0 functions (dispatch targets).
	hotHandlers []int
}

// MaxLayer is the deepest call-graph layer; functions there make no calls.
const MaxLayer = 4

// Generate builds a program from params. Generation is deterministic in
// Params (including Seed).
func Generate(p Params) (*Program, error) {
	if p.NumFuncs <= 0 {
		return nil, fmt.Errorf("cfg: NumFuncs must be positive, got %d", p.NumFuncs)
	}
	if p.BlocksPerFuncMean < 1 || p.InstsPerBlockMean < 1 {
		return nil, fmt.Errorf("cfg: block/inst means must be >= 1")
	}
	if p.FuncAlign == 0 {
		p.FuncAlign = 64
	}
	if p.CodeBase == 0 {
		p.CodeBase = 0x400000
	}
	r := rng.New(p.Seed)
	prog := &Program{Params: p}

	// layerOf interleaves layers in index (and therefore address) space
	// with fractions 8/4/2/1/1 per 16 functions, so call-locality
	// neighbourhoods always contain every layer.
	layerOf := func(i int) int {
		switch m := i % 16; {
		case m < 8:
			return 0
		case m < 12:
			return 1
		case m < 14:
			return 2
		case m < 15:
			return 3
		default:
			return 4
		}
	}

	// Pass 1: create functions and blocks with sizes; lay out addresses.
	// Function 0 is the driver: a tiny dispatch loop that indirect-calls a
	// request handler (layer-0 function) and loops. Handlers return here,
	// so returns are RAS-predictable; the dispatch indirect call is the
	// (realistically) hard-to-predict site.
	addr := p.CodeBase
	{
		mkBlock := func(nInsts int) Block {
			sizes := make([]uint8, nInsts)
			for i := range sizes {
				sizes[i] = uint8(2 + r.Intn(6))
			}
			blk := Block{ID: len(prog.Blocks), Func: 0, Addr: addr, InstSizes: sizes}
			addr += isa.Addr(blk.Size())
			prog.Blocks = append(prog.Blocks, blk)
			return blk
		}
		mkBlock(4)
		mkBlock(3)
		prog.Blocks[0].Term = Terminator{Kind: isa.IndirectCall, Dispatch: true}
		prog.Blocks[1].Term = Terminator{Kind: isa.UncondDirect, TakenBlock: 0}
		prog.Funcs = append(prog.Funcs, Func{ID: 0, FirstBlock: 0, NumBlocks: 2, Layer: 0})
	}
	for f := 1; f < p.NumFuncs; f++ {
		align := isa.Addr(p.FuncAlign)
		addr = (addr + align - 1) &^ (align - 1)
		nBlocks := r.Geometric(p.BlocksPerFuncMean, int(p.BlocksPerFuncMean*6)+2)
		if nBlocks < 2 {
			nBlocks = 2 // entry block + return block at minimum
		}
		fn := Func{ID: f, FirstBlock: len(prog.Blocks), NumBlocks: nBlocks, Layer: layerOf(f)}
		fn.Hot = r.Bool(p.HotFuncFrac)
		for b := 0; b < nBlocks; b++ {
			nInsts := r.Geometric(p.InstsPerBlockMean, int(p.InstsPerBlockMean*5)+2)
			sizes := make([]uint8, nInsts)
			for i := range sizes {
				// x86-like: 2..7 bytes, mean ~4.
				sizes[i] = uint8(2 + r.Intn(6))
			}
			blk := Block{
				ID:        len(prog.Blocks),
				Func:      f,
				Addr:      addr,
				InstSizes: sizes,
			}
			addr += isa.Addr(blk.Size())
			prog.Blocks = append(prog.Blocks, blk)
		}
		prog.Funcs = append(prog.Funcs, fn)
	}

	prog.layerFuncs = make([][]int, MaxLayer+1)
	for _, fn := range prog.Funcs {
		if fn.Hot {
			prog.nHot++
		}
		prog.layerFuncs[fn.Layer] = append(prog.layerFuncs[fn.Layer], fn.ID)
		if fn.Hot && fn.Layer == 0 && fn.ID != 0 {
			prog.hotHandlers = append(prog.hotHandlers, fn.ID)
		}
	}

	// Pass 2: assign terminators now that all blocks exist. The driver
	// (function 0) already has its terminators.
	weights := []float64{p.CondFrac, p.JumpFrac, p.CallFrac, p.IndJumpFrac, p.IndCallFrac, p.RetFrac, p.FallFrac}
	kinds := []isa.BranchKind{isa.CondDirect, isa.UncondDirect, isa.DirectCall, isa.IndirectJump, isa.IndirectCall, isa.Return, isa.NotBranch}
	for fi := 1; fi < len(prog.Funcs); fi++ {
		fn := &prog.Funcs[fi]
		for b := 0; b < fn.NumBlocks; b++ {
			blk := &prog.Blocks[fn.FirstBlock+b]
			last := b == fn.NumBlocks-1
			if last {
				// The final block always returns so every call terminates.
				blk.Term = Terminator{Kind: isa.Return}
				continue
			}
			blk.Term = prog.genTerminator(r, fn, b, weights, kinds)
		}
	}

	// Execution starts in the driver loop.
	prog.Entry = 0

	prog.blockStarts = make([]isa.Addr, len(prog.Blocks))
	for i := range prog.Blocks {
		prog.blockStarts[i] = prog.Blocks[i].Addr
	}
	return prog, nil
}

// MustGenerate is Generate that panics on error, for tests and examples
// with known-good parameters.
func MustGenerate(p Params) *Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

func (prog *Program) genTerminator(r *rng.RNG, fn *Func, b int, weights []float64, kinds []isa.BranchKind) Terminator {
	kind := kinds[r.Pick(weights)]
	// The deepest layer makes no calls (the call graph is a DAG).
	if fn.Layer >= MaxLayer && (kind == isa.DirectCall || kind == isa.IndirectCall) {
		kind = isa.NotBranch
	}
	t := Terminator{Kind: kind}
	switch kind {
	case isa.NotBranch:
		// Fall through to the next block.
	case isa.CondDirect:
		if r.Bool(prog.Params.LoopFrac) && b > 0 {
			// Loop back-edge to a *nearby* earlier block: inner loops
			// span a few blocks. Long-reach back-edges would nest over
			// other loops and multiply re-execution unboundedly.
			reach := r.Geometric(3, 10)
			if reach > b {
				reach = b
			}
			t.TakenBlock = fn.FirstBlock + b - reach
			t.LoopTrip = 1 + r.Geometric(prog.Params.LoopTripMean, int(prog.Params.LoopTripMean*4)+1)
		} else {
			// Easy branches take short forward skips: compilers lay hot
			// paths out straight, so their taken targets land a block or
			// two ahead and the two sides reconverge quickly. Hard
			// (data-dependent) branches guard genuinely different code
			// paths, so their taken targets jump far ahead: on a
			// mispredict the resteer path shares no lines with the wrong
			// path the front-end was priming — these are the exposed,
			// front-end-critical misses PDIP targets.
			hard := r.Bool(prog.Params.HardBranchFrac)
			mean, cap := 2.0, 8
			if hard {
				mean, cap = 14.0, 40
			}
			skip := r.Geometric(mean, cap)
			if max := fn.NumBlocks - b - 1; skip > max {
				skip = max
			}
			t.TakenBlock = fn.FirstBlock + b + skip
			if hard {
				// Hard branches are majority-taken long forward skips
				// guarding a cold slow path: the predictor learns
				// "taken", and on the minority not-taken outcome the
				// front-end resteers into the skipped-over blocks — lines
				// the wrong path never primed and that execute too rarely
				// to stay L1I-resident. TakenProb is HardBias directly.
				bias := prog.Params.HardBias
				if bias == 0 {
					bias = 0.7
				}
				t.TakenProb = bias
			} else {
				bias := prog.Params.CondBias
				if r.Bool(0.5) {
					bias = 1 - bias
				}
				t.TakenProb = bias
			}
		}
	case isa.UncondDirect:
		// Forward-only: unconditional cycles would trap the walker.
		// Loops are expressed exclusively by trip-counted back-edges.
		// Like conditional skips, jumps are short and forward.
		skip := r.Geometric(3, 12)
		if max := fn.NumBlocks - b - 1; skip > max {
			skip = max
		}
		t.TakenBlock = fn.FirstBlock + b + skip
	case isa.DirectCall:
		t.TakenBlock = prog.Funcs[prog.pickCallee(r, fn.ID)].FirstBlock
	case isa.IndirectJump:
		n := prog.Params.IndirectTargets
		if n < 2 {
			n = 2
		}
		// Forward-only, like UncondDirect: switch dispatch to later arms,
		// spread a little wider than plain jumps.
		t.IndTargets = make([]int, n)
		for i := range t.IndTargets {
			skip := r.Geometric(5, 16)
			if max := fn.NumBlocks - b - 1; skip > max {
				skip = max
			}
			t.IndTargets[i] = fn.FirstBlock + b + skip
		}
	case isa.IndirectCall:
		n := prog.Params.IndirectTargets
		if n < 2 {
			n = 2
		}
		t.IndTargets = make([]int, n)
		for i := range t.IndTargets {
			t.IndTargets[i] = prog.Funcs[prog.pickCallee(r, fn.ID)].FirstBlock
		}
	case isa.Return:
	}
	return t
}

// pickCallee chooses a callee for a call site in function caller: always
// in the next call-graph layer; with probability CallLocality a neighbour
// in function-index space (the handler's own helper subtree), otherwise a
// hot-weighted global callee in that layer (shared utility code).
func (prog *Program) pickCallee(r *rng.RNG, caller int) int {
	p := prog.Params
	layer := prog.Funcs[caller].Layer + 1
	if layer > MaxLayer {
		layer = MaxLayer
	}
	if r.Bool(p.CallLocality) {
		scale := p.CallNeighborhood
		if scale < 1 {
			scale = 1
		}
		delta := r.Geometric(float64(scale), scale*6)
		if r.Bool(0.5) {
			delta = -delta
		}
		callee := caller + delta
		n := len(prog.Funcs)
		// Reflect at the boundaries to keep the neighbourhood dense.
		if callee < 0 {
			callee = -callee
		}
		if callee >= n {
			callee = 2*(n-1) - callee
		}
		if callee < 0 || callee >= n {
			callee = r.Intn(n)
		}
		if c := prog.SnapToLayer(callee, layer); c >= 0 {
			return c
		}
	}
	return prog.PickFuncInLayer(r, layer)
}

// SnapToLayer returns the function nearest to idx whose layer matches, or
// -1 if none within a small search radius (layers interleave every 16
// indices, so the search practically always succeeds).
func (prog *Program) SnapToLayer(idx, layer int) int {
	n := len(prog.Funcs)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	for d := 0; d < 48; d++ {
		if i := idx + d; i < n && prog.Funcs[i].Layer == layer {
			return i
		}
		if i := idx - d; i >= 0 && prog.Funcs[i].Layer == layer {
			return i
		}
	}
	return -1
}

// HotHandlers returns the hot layer-0 dispatch targets.
func (prog *Program) HotHandlers() []int { return prog.hotHandlers }

// PickFuncInLayer picks a function in the given layer, biased toward the
// hot set (a few weighted retries approximate HotCallWeight).
func (prog *Program) PickFuncInLayer(r *rng.RNG, layer int) int {
	list := prog.layerFuncs[layer]
	if len(list) == 0 {
		return r.Intn(len(prog.Funcs))
	}
	pick := list[r.Intn(len(list))]
	w := prog.Params.HotCallWeight
	if w <= 1 {
		return pick
	}
	pref := (w - 1) / w
	for try := 0; try < 3 && !prog.Funcs[pick].Hot && r.Bool(pref); try++ {
		pick = list[r.Intn(len(list))]
	}
	return pick
}

// PickGlobalFunc chooses a function uniformly but weighted toward the hot
// set. The trace walker also uses it for dispatch jumps.
func (prog *Program) PickGlobalFunc(r *rng.RNG) int {
	hotW := prog.Params.HotCallWeight
	if hotW < 1 {
		hotW = 1
	}
	nHot := prog.nHot
	total := float64(nHot)*hotW + float64(len(prog.Funcs)-nHot)
	if nHot > 0 && r.Float64() < float64(nHot)*hotW/total {
		k := r.Intn(nHot)
		for _, fn := range prog.Funcs {
			if fn.Hot {
				if k == 0 {
					return fn.ID
				}
				k--
			}
		}
	}
	return r.Intn(len(prog.Funcs))
}

// BlockAt returns the block containing addr, or nil if addr is outside the
// program's code region or inside inter-function alignment padding.
func (prog *Program) BlockAt(addr isa.Addr) *Block {
	i := sort.Search(len(prog.blockStarts), func(i int) bool {
		return prog.blockStarts[i] > addr
	}) - 1
	if i < 0 {
		return nil
	}
	blk := &prog.Blocks[i]
	if addr >= blk.End() {
		return nil
	}
	return blk
}

// FootprintBytes returns the total code size in bytes including alignment
// padding (last block end minus code base).
func (prog *Program) FootprintBytes() int {
	if len(prog.Blocks) == 0 {
		return 0
	}
	last := prog.Blocks[len(prog.Blocks)-1]
	return int(last.End() - prog.Params.CodeBase)
}

// FootprintLines returns the code footprint in 64-byte cache lines.
func (prog *Program) FootprintLines() int {
	return (prog.FootprintBytes() + isa.LineSize - 1) / isa.LineSize
}

// NumStaticBranches counts blocks whose terminator is a branch.
func (prog *Program) NumStaticBranches() int {
	n := 0
	for i := range prog.Blocks {
		if prog.Blocks[i].Term.Kind.IsBranch() {
			n++
		}
	}
	return n
}
