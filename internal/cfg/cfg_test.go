package cfg

import (
	"testing"
	"testing/quick"

	"pdip/internal/isa"
	"pdip/internal/rng"
)

func smallParams(seed uint64) Params {
	p := DefaultParams()
	p.Seed = seed
	p.NumFuncs = 128
	return p
}

func TestGenerateDeterminism(t *testing.T) {
	a := MustGenerate(smallParams(11))
	b := MustGenerate(smallParams(11))
	if len(a.Blocks) != len(b.Blocks) || len(a.Funcs) != len(b.Funcs) {
		t.Fatal("same seed produced different program shapes")
	}
	for i := range a.Blocks {
		if a.Blocks[i].Addr != b.Blocks[i].Addr || a.Blocks[i].Term.Kind != b.Blocks[i].Term.Kind {
			t.Fatalf("block %d differs between identical generations", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	p := smallParams(1)
	p.NumFuncs = 0
	if _, err := Generate(p); err == nil {
		t.Fatal("NumFuncs=0 accepted")
	}
	p = smallParams(1)
	p.BlocksPerFuncMean = 0
	if _, err := Generate(p); err == nil {
		t.Fatal("BlocksPerFuncMean=0 accepted")
	}
}

func TestDriverStructure(t *testing.T) {
	prog := MustGenerate(smallParams(2))
	if prog.Entry != 0 {
		t.Fatalf("entry = %d, want driver block 0", prog.Entry)
	}
	d := prog.Funcs[0]
	if d.NumBlocks != 2 {
		t.Fatalf("driver has %d blocks, want 2", d.NumBlocks)
	}
	if !prog.Blocks[0].Term.Dispatch || prog.Blocks[0].Term.Kind != isa.IndirectCall {
		t.Fatal("driver block 0 is not the dispatch indirect call")
	}
	if prog.Blocks[1].Term.Kind != isa.UncondDirect || prog.Blocks[1].Term.TakenBlock != 0 {
		t.Fatal("driver block 1 does not loop back to block 0")
	}
}

func TestLayerDAG(t *testing.T) {
	prog := MustGenerate(smallParams(3))
	for _, blk := range prog.Blocks {
		caller := prog.Funcs[blk.Func]
		switch blk.Term.Kind {
		case isa.DirectCall:
			callee := prog.Funcs[prog.Blocks[blk.Term.TakenBlock].Func]
			if blk.Term.Dispatch {
				continue
			}
			if callee.Layer != caller.Layer+1 {
				t.Fatalf("call from layer %d to layer %d (func %d → %d)",
					caller.Layer, callee.Layer, caller.ID, callee.ID)
			}
		case isa.IndirectCall:
			if blk.Term.Dispatch {
				continue
			}
			for _, tgt := range blk.Term.IndTargets {
				callee := prog.Funcs[prog.Blocks[tgt].Func]
				if callee.Layer != caller.Layer+1 {
					t.Fatalf("indirect call from layer %d to layer %d", caller.Layer, callee.Layer)
				}
			}
		}
	}
	// The deepest layer must make no calls.
	for _, blk := range prog.Blocks {
		if prog.Funcs[blk.Func].Layer == MaxLayer &&
			(blk.Term.Kind == isa.DirectCall || blk.Term.Kind == isa.IndirectCall) && !blk.Term.Dispatch {
			t.Fatalf("layer %d function %d makes a call", MaxLayer, blk.Func)
		}
	}
}

func TestForwardOnlyJumps(t *testing.T) {
	prog := MustGenerate(smallParams(4))
	for _, blk := range prog.Blocks {
		fn := prog.Funcs[blk.Func]
		rel := blk.ID - fn.FirstBlock
		switch blk.Term.Kind {
		case isa.UncondDirect:
			if blk.Func == 0 {
				continue // the driver loop-back is the one allowed cycle
			}
			if blk.Term.TakenBlock <= blk.ID {
				t.Fatalf("unconditional backward/self jump at block %d", blk.ID)
			}
		case isa.IndirectJump:
			for _, tgt := range blk.Term.IndTargets {
				if tgt <= blk.ID {
					t.Fatalf("indirect backward/self jump at block %d", blk.ID)
				}
			}
		case isa.CondDirect:
			tgtRel := blk.Term.TakenBlock - fn.FirstBlock
			if blk.Term.LoopTrip > 0 {
				if tgtRel >= rel {
					t.Fatalf("loop back-edge not backward at block %d", blk.ID)
				}
			} else if tgtRel <= rel {
				t.Fatalf("forward conditional targets itself or earlier at block %d", blk.ID)
			}
		}
	}
}

func TestBlocksContiguousAndSorted(t *testing.T) {
	prog := MustGenerate(smallParams(5))
	for i := 1; i < len(prog.Blocks); i++ {
		if prog.Blocks[i].Addr < prog.Blocks[i-1].End() {
			t.Fatalf("block %d overlaps block %d", i, i-1)
		}
	}
}

func TestBlockAt(t *testing.T) {
	prog := MustGenerate(smallParams(6))
	// Every instruction start address must resolve to its block.
	for bi := range prog.Blocks {
		blk := &prog.Blocks[bi]
		pc := blk.Addr
		for _, sz := range blk.InstSizes {
			got := prog.BlockAt(pc)
			if got == nil || got.ID != blk.ID {
				t.Fatalf("BlockAt(%v) did not find block %d", pc, blk.ID)
			}
			pc += isa.Addr(sz)
		}
	}
	if prog.BlockAt(prog.Params.CodeBase-1) != nil {
		t.Fatal("BlockAt before code base returned a block")
	}
	last := prog.Blocks[len(prog.Blocks)-1]
	if prog.BlockAt(last.End()+1024) != nil {
		t.Fatal("BlockAt past code end returned a block")
	}
}

func TestBlockAtProperty(t *testing.T) {
	prog := MustGenerate(smallParams(7))
	foot := prog.FootprintBytes()
	f := func(off uint32) bool {
		addr := prog.Params.CodeBase + isa.Addr(int(off)%foot)
		blk := prog.BlockAt(addr)
		// Padding gaps return nil; any hit must actually contain addr.
		if blk == nil {
			return true
		}
		return addr >= blk.Addr && addr < blk.End()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprint(t *testing.T) {
	prog := MustGenerate(smallParams(8))
	if prog.FootprintBytes() <= 0 {
		t.Fatal("non-positive footprint")
	}
	wantLines := (prog.FootprintBytes() + isa.LineSize - 1) / isa.LineSize
	if prog.FootprintLines() != wantLines {
		t.Fatalf("FootprintLines = %d, want %d", prog.FootprintLines(), wantLines)
	}
	if prog.NumStaticBranches() == 0 {
		t.Fatal("no static branches generated")
	}
}

func TestSnapToLayer(t *testing.T) {
	prog := MustGenerate(smallParams(9))
	for layer := 0; layer <= MaxLayer; layer++ {
		got := prog.SnapToLayer(len(prog.Funcs)/2, layer)
		if got < 0 {
			t.Fatalf("SnapToLayer found nothing for layer %d", layer)
		}
		if prog.Funcs[got].Layer != layer {
			t.Fatalf("SnapToLayer returned layer %d, want %d", prog.Funcs[got].Layer, layer)
		}
	}
	if prog.SnapToLayer(-5, 0) < 0 || prog.SnapToLayer(1<<20, 0) < 0 {
		t.Fatal("SnapToLayer failed to clamp out-of-range indices")
	}
}

func TestPickFuncInLayer(t *testing.T) {
	prog := MustGenerate(smallParams(10))
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		layer := i % (MaxLayer + 1)
		f := prog.PickFuncInLayer(r, layer)
		if prog.Funcs[f].Layer != layer {
			t.Fatalf("PickFuncInLayer(%d) returned layer %d", layer, prog.Funcs[f].Layer)
		}
	}
}

func TestHardBranchesHaveFarTargets(t *testing.T) {
	p := smallParams(12)
	p.HardBranchFrac = 1.0 // every non-loop conditional is hard
	p.LoopFrac = 0
	prog := MustGenerate(p)
	far, total := 0, 0
	for _, blk := range prog.Blocks[2:] { // skip driver
		if blk.Term.Kind != isa.CondDirect {
			continue
		}
		total++
		if blk.Term.TakenBlock-blk.ID >= 4 {
			far++
		}
	}
	if total == 0 {
		t.Fatal("no conditional branches generated")
	}
	if frac := float64(far) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of hard branches have far targets", frac*100)
	}
}

func TestHotHandlers(t *testing.T) {
	p := smallParams(13)
	p.HotFuncFrac = 0.5
	prog := MustGenerate(p)
	hot := prog.HotHandlers()
	if len(hot) == 0 {
		t.Fatal("no hot handlers with HotFuncFrac=0.5")
	}
	for _, h := range hot {
		if h == 0 {
			t.Fatal("driver listed as hot handler")
		}
		if prog.Funcs[h].Layer != 0 || !prog.Funcs[h].Hot {
			t.Fatalf("hot handler %d is layer %d hot=%v", h, prog.Funcs[h].Layer, prog.Funcs[h].Hot)
		}
	}
}
