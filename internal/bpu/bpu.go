package bpu

import "pdip/internal/isa"

// Config sizes the branch prediction unit.
type Config struct {
	// BTBEntries is the total BTB capacity (8-way set associative).
	BTBEntries int
	// RASDepth is the return address stack depth.
	RASDepth int
}

// DefaultConfig mirrors the paper's Table 1: 8K-entry BTB.
func DefaultConfig() Config {
	return Config{BTBEntries: 8192, RASDepth: 32}
}

// Prediction is the IAG-visible outcome of predicting one branch.
type Prediction struct {
	// Taken is the predicted direction. When the BTB misses, the IAG does
	// not know a branch exists, so the prediction is always fall-through
	// (Taken == false) regardless of what TAGE would have said.
	Taken bool
	// Target is the predicted target when Taken.
	Target isa.Addr
	// BTBHit reports whether the branch was visible to the IAG at all.
	BTBHit bool
}

// Stats counts prediction events on the correct path.
type Stats struct {
	CondBranches   uint64
	CondMispredict uint64
	BTBLookups     uint64
	BTBMissTaken   uint64 // taken branches invisible to the IAG
	IndBranches    uint64
	IndMispredict  uint64
	Returns        uint64
	RetMispredict  uint64
}

// BPU bundles TAGE, ITTAGE, the BTB and the RAS behind the single
// predict-and-train operation the IAG performs per basic block.
//
// Modelling note: the simulator trains predictors immediately at predict
// time with the actual outcome (trace-driven "immediate update", as in the
// CBP framework) and only for correct-path branches. This idealises away
// wrong-path history pollution and in-flight update delay; the mispredict
// *penalty* is still fully modelled by the pipeline's resteer machinery.
type BPU struct {
	Tage   *TAGE
	Ittage *ITTAGE
	Btb    *BTB
	Ras    *RAS

	Stats Stats
}

// New builds a BPU from cfg.
func New(cfg Config) *BPU {
	if cfg.BTBEntries == 0 {
		cfg = DefaultConfig()
	}
	return &BPU{
		Tage:   NewTAGE(),
		Ittage: NewITTAGE(),
		Btb:    NewBTB(cfg.BTBEntries),
		Ras:    NewRAS(cfg.RASDepth),
	}
}

// PredictAndTrain predicts the branch instruction in (whose actual outcome
// is known to the walker) and immediately trains the predictors with the
// actual outcome. It returns the prediction as made *before* training, so
// the caller can detect mispredicts by comparing with the actual outcome.
func (b *BPU) PredictAndTrain(in isa.Inst) Prediction {
	b.Stats.BTBLookups++
	btbTarget, _, btbHit := b.Btb.Lookup(in.PC)

	var p Prediction
	p.BTBHit = btbHit

	switch in.Kind {
	case isa.CondDirect:
		b.Stats.CondBranches++
		tageTaken := b.Tage.Predict(in.PC)
		if btbHit {
			p.Taken = tageTaken
			p.Target = btbTarget
		}
		// Train direction always; the direction outcome is architectural.
		b.Tage.Update(in.PC, in.Taken)
		b.Ittage.PushHistory(in.Taken)
		if p.Taken != in.Taken || (p.Taken && p.Target != in.Target) {
			b.Stats.CondMispredict++
		}
	case isa.UncondDirect, isa.DirectCall:
		if btbHit {
			p.Taken = true
			p.Target = btbTarget
		}
		b.Tage.PushHistory(true)
		b.Ittage.PushHistory(true)
	case isa.IndirectJump, isa.IndirectCall:
		b.Stats.IndBranches++
		if btbHit {
			p.Taken = true
			if t, ok := b.Ittage.Predict(in.PC); ok {
				p.Target = t
			} else {
				p.Target = btbTarget
			}
		}
		b.Ittage.Update(in.PC, in.Target)
		b.Tage.PushHistory(true)
		if !p.Taken || p.Target != in.Target {
			b.Stats.IndMispredict++
		}
	case isa.Return:
		b.Stats.Returns++
		if btbHit {
			p.Taken = true
			if t, ok := b.Ras.Pop(); ok {
				p.Target = t
			}
		} else {
			// The IAG cannot identify the return without a BTB hit; the
			// RAS still pops to stay aligned with the call stream.
			b.Ras.Pop()
		}
		b.Tage.PushHistory(true)
		b.Ittage.PushHistory(true)
		if !p.Taken || p.Target != in.Target {
			b.Stats.RetMispredict++
		}
	default:
		return p
	}

	if in.Kind.IsCall() {
		b.Ras.Push(in.FallThrough())
	}

	if in.Taken {
		if !btbHit {
			b.Stats.BTBMissTaken++
		}
		b.Btb.Insert(in.PC, in.Target, in.Kind)
	}
	return p
}
