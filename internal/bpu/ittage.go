package bpu

import "pdip/internal/isa"

// ittageTables is the number of tagged ITTAGE components.
const ittageTables = 5

var ittageHistLens = [ittageTables]int{6, 14, 32, 72, 160}

const (
	ittageTagBits   = 11
	ittageEntryBits = 9 // 512 entries per tagged table
	ittageBaseBits  = 11
)

type ittageEntry struct {
	tag    uint16
	target isa.Addr
	ctr    int8 // confidence, 0..3
	useful uint8
}

// ITTAGE predicts indirect branch targets with the same tagged geometric
// history organisation as TAGE (Seznec's ITTAGE), storing full targets in
// each entry plus a small tagless base table.
type ITTAGE struct {
	base    []isa.Addr // tagless last-target base table
	tables  [ittageTables][]ittageEntry
	hist    history
	idxFold [ittageTables]foldedHist
	tagFold [ittageTables]foldedHist

	allocSeed uint64

	// memo caches per-table indices and tags for the last prepared
	// (pc, history) pair, exactly as in TAGE: Predict and Update for the
	// same indirect branch see the same history, so the folded hashes
	// need computing once per branch, not once per loop.
	memoPC  isa.Addr
	memoOK  bool
	memoIdx [ittageTables]int32
	memoTag [ittageTables]uint16
}

// NewITTAGE returns an ITTAGE predictor with the default (≈64KB-class)
// geometry.
func NewITTAGE() *ITTAGE {
	it := &ITTAGE{base: make([]isa.Addr, 1<<ittageBaseBits)}
	for i := range it.tables {
		it.tables[i] = make([]ittageEntry, 1<<ittageEntryBits)
		it.idxFold[i] = newFolded(ittageHistLens[i], ittageEntryBits)
		it.tagFold[i] = newFolded(ittageHistLens[i], ittageTagBits)
	}
	return it
}

func (it *ITTAGE) index(table int, pc isa.Addr) int {
	v := uint32(pc>>1) ^ uint32(pc>>(1+ittageEntryBits)) ^ it.idxFold[table].comp ^ uint32(table*0x51ed)
	return int(v & ((1 << ittageEntryBits) - 1))
}

func (it *ITTAGE) tag(table int, pc isa.Addr) uint16 {
	v := uint32(pc>>1) ^ it.tagFold[table].comp ^ uint32(table*0x2c1b)
	return uint16(v & ((1 << ittageTagBits) - 1))
}

func (it *ITTAGE) baseIndex(pc isa.Addr) int {
	return int((pc >> 1) & ((1 << ittageBaseBits) - 1))
}

// prepare fills the index/tag memo for pc against the current history,
// reusing it when pc was already prepared since the last history shift.
func (it *ITTAGE) prepare(pc isa.Addr) {
	if it.memoOK && it.memoPC == pc {
		return
	}
	for i := 0; i < ittageTables; i++ {
		it.memoIdx[i] = int32(it.index(i, pc))
		it.memoTag[i] = it.tag(i, pc)
	}
	it.memoPC = pc
	it.memoOK = true
}

// Predict returns the predicted target for the indirect branch at pc and
// whether any component produced a prediction.
func (it *ITTAGE) Predict(pc isa.Addr) (isa.Addr, bool) {
	it.prepare(pc)
	for i := ittageTables - 1; i >= 0; i-- {
		e := &it.tables[i][it.memoIdx[i]]
		if e.tag == it.memoTag[i] && e.target != 0 {
			return e.target, true
		}
	}
	if t := it.base[it.baseIndex(pc)]; t != 0 {
		return t, true
	}
	return 0, false
}

// Update trains the predictor with the actual target and shifts history.
func (it *ITTAGE) Update(pc isa.Addr, target isa.Addr) {
	it.prepare(pc)
	provider := -1
	var pidx int
	for i := ittageTables - 1; i >= 0; i-- {
		idx := int(it.memoIdx[i])
		e := &it.tables[i][idx]
		if e.tag == it.memoTag[i] && e.target != 0 {
			provider, pidx = i, idx
			break
		}
	}

	correct := false
	if provider >= 0 {
		e := &it.tables[provider][pidx]
		correct = e.target == target
		if correct {
			if e.ctr < 3 {
				e.ctr++
			}
			if e.useful < 3 {
				e.useful++
			}
		} else {
			if e.ctr > 0 {
				e.ctr--
			} else {
				e.target = target // replace once confidence exhausted
			}
			if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		correct = it.base[it.baseIndex(pc)] == target
	}
	it.base[it.baseIndex(pc)] = target

	if !correct && provider < ittageTables-1 {
		it.allocate(pc, target, provider)
	}

	it.PushHistory(true)
}

func (it *ITTAGE) allocate(pc isa.Addr, target isa.Addr, provider int) {
	it.prepare(pc)
	start := provider + 1
	it.allocSeed = it.allocSeed*6364136223846793005 + 1442695040888963407
	if n := ittageTables - start; n > 1 && (it.allocSeed>>33)&1 == 1 {
		start++
	}
	for i := start; i < ittageTables; i++ {
		e := &it.tables[i][it.memoIdx[i]]
		if e.useful == 0 {
			*e = ittageEntry{tag: it.memoTag[i], target: target, ctr: 1}
			return
		}
	}
	for i := start; i < ittageTables; i++ {
		e := &it.tables[i][it.memoIdx[i]]
		if e.useful > 0 {
			e.useful--
		}
	}
}

// PushHistory shifts one path bit into the global history. Callers push
// for non-indirect branches too so indirect history stays path-correlated.
func (it *ITTAGE) PushHistory(taken bool) {
	for i := 0; i < ittageTables; i++ {
		old := it.hist.at(ittageHistLens[i] - 1)
		it.idxFold[i].push(taken, old)
		it.tagFold[i].push(taken, old)
	}
	it.hist.push(taken)
	it.memoOK = false
}
