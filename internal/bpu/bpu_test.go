package bpu

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/rng"
)

// --- TAGE ---

func TestTAGELearnsBias(t *testing.T) {
	tg := NewTAGE()
	pc := isa.Addr(0x1000)
	correct := 0
	r := rng.New(1)
	n := 20000
	for i := 0; i < n; i++ {
		taken := r.Bool(0.9)
		if tg.Predict(pc) == taken {
			correct++
		}
		tg.Update(pc, taken)
	}
	// A 90%-biased branch should be predicted at least ~85% right.
	if frac := float64(correct) / float64(n); frac < 0.85 {
		t.Fatalf("TAGE accuracy %.2f on a 0.9-biased branch", frac)
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	// A fixed short repeating pattern is history-predictable: TAGE must
	// beat the bimodal ceiling (the pattern is 2/3 taken).
	tg := NewTAGE()
	pc := isa.Addr(0x2040)
	pattern := []bool{true, true, false}
	correct := 0
	n := 30000
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		if tg.Predict(pc) == taken {
			correct++
		}
		tg.Update(pc, taken)
	}
	if frac := float64(correct) / float64(n); frac < 0.95 {
		t.Fatalf("TAGE accuracy %.3f on a deterministic pattern, want >= 0.95", frac)
	}
}

func TestTAGELearnsLoopTrip(t *testing.T) {
	// Loop with trip count 5: taken 4×, not-taken once, repeating.
	tg := NewTAGE()
	pc := isa.Addr(0x3700)
	correct, n := 0, 25000
	for i := 0; i < n; i++ {
		taken := i%5 != 4
		if tg.Predict(pc) == taken {
			correct++
		}
		tg.Update(pc, taken)
	}
	if frac := float64(correct) / float64(n); frac < 0.9 {
		t.Fatalf("TAGE accuracy %.3f on a trip-5 loop, want >= 0.9", frac)
	}
}

func TestTAGEMultipleBranches(t *testing.T) {
	// Two interleaved branches with opposite biases must not destroy each
	// other's state.
	tg := NewTAGE()
	a, b := isa.Addr(0x4000), isa.Addr(0x5000)
	okA, okB, n := 0, 0, 10000
	for i := 0; i < n; i++ {
		if tg.Predict(a) == true {
			okA++
		}
		tg.Update(a, true)
		if tg.Predict(b) == false {
			okB++
		}
		tg.Update(b, false)
	}
	if okA < n*9/10 || okB < n*9/10 {
		t.Fatalf("interleaved branches: %d/%d and %d/%d correct", okA, n, okB, n)
	}
}

// --- ITTAGE ---

func TestITTAGELearnsStableTarget(t *testing.T) {
	it := NewITTAGE()
	pc := isa.Addr(0x6000)
	target := isa.Addr(0x9999c0)
	correct, n := 0, 5000
	for i := 0; i < n; i++ {
		if got, ok := it.Predict(pc); ok && got == target {
			correct++
		}
		it.Update(pc, target)
	}
	if frac := float64(correct) / float64(n); frac < 0.95 {
		t.Fatalf("ITTAGE accuracy %.3f on a monomorphic site", frac)
	}
}

func TestITTAGESkewedTargets(t *testing.T) {
	it := NewITTAGE()
	pc := isa.Addr(0x7000)
	dom, minor := isa.Addr(0xaaaa00), isa.Addr(0xbbbb00)
	r := rng.New(2)
	correct, n := 0, 20000
	for i := 0; i < n; i++ {
		tgt := dom
		if !r.Bool(0.85) {
			tgt = minor
		}
		if got, ok := it.Predict(pc); ok && got == tgt {
			correct++
		}
		it.Update(pc, tgt)
	}
	// Must at least track the dominant target.
	if frac := float64(correct) / float64(n); frac < 0.7 {
		t.Fatalf("ITTAGE accuracy %.3f on an 85%%-skewed site", frac)
	}
}

// --- BTB ---

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(1024)
	pc, tgt := isa.Addr(0x1234), isa.Addr(0x5678)
	if _, _, hit := b.Lookup(pc); hit {
		t.Fatal("empty BTB hit")
	}
	b.Insert(pc, tgt, isa.UncondDirect)
	got, kind, hit := b.Lookup(pc)
	if !hit || got != tgt || kind != isa.UncondDirect {
		t.Fatalf("lookup after insert: hit=%v target=%v kind=%v", hit, got, kind)
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	b := NewBTB(1024)
	pc := isa.Addr(0x40)
	b.Insert(pc, 0x100, isa.IndirectJump)
	b.Insert(pc, 0x200, isa.IndirectJump)
	got, _, hit := b.Lookup(pc)
	if !hit || got != 0x200 {
		t.Fatalf("update did not replace target: %v", got)
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	b := NewBTB(64) // 8 sets × 8 ways
	// Insert 9 branches mapping to the same set; the LRU one must go.
	setStride := isa.Addr(8 << 1) // set index uses pc>>1 & mask
	base := isa.Addr(0x1000)
	for i := 0; i < 9; i++ {
		b.Insert(base+isa.Addr(i)*setStride*isa.Addr(b.Entries()/8), 0x42, isa.UncondDirect)
	}
	hits := 0
	for i := 0; i < 9; i++ {
		if _, _, hit := b.Lookup(base + isa.Addr(i)*setStride*isa.Addr(b.Entries()/8)); hit {
			hits++
		}
	}
	if hits > 8 {
		t.Fatalf("9 conflicting entries all resident in an 8-way set (%d hits)", hits)
	}
}

func TestBTBStorage(t *testing.T) {
	b := NewBTB(8192)
	kb := b.StorageKB()
	// Table 1: 8K entries = 119.01KB.
	if kb < 118 || kb > 120 {
		t.Fatalf("8K-entry BTB storage %.2fKB, want ≈119KB", kb)
	}
}

func TestBTBInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count accepted")
		}
	}()
	NewBTB(24) // 3 sets: not a power of two
}

// --- RAS ---

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x10)
	r.Push(0x20)
	if v, ok := r.Pop(); !ok || v != 0x20 {
		t.Fatalf("pop = %v, %v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 0x10 {
		t.Fatalf("pop = %v, %v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty RAS succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("top after overflow = %v", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("second after overflow = %v", v)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("depth not clamped at capacity")
	}
}

// --- composite BPU ---

func TestBPUBTBMissMeansFallThrough(t *testing.T) {
	b := New(DefaultConfig())
	in := isa.Inst{PC: 0x100, Size: 4, Kind: isa.UncondDirect, Taken: true, Target: 0x2000}
	p := b.PredictAndTrain(in)
	if p.Taken || p.BTBHit {
		t.Fatal("first sight of a branch predicted taken despite BTB miss")
	}
	// Trained: second occurrence must hit and be correct.
	p = b.PredictAndTrain(in)
	if !p.BTBHit || !p.Taken || p.Target != 0x2000 {
		t.Fatalf("after training: %+v", p)
	}
}

func TestBPUReturnUsesRAS(t *testing.T) {
	b := New(DefaultConfig())
	call := isa.Inst{PC: 0x100, Size: 5, Kind: isa.DirectCall, Taken: true, Target: 0x3000}
	ret := isa.Inst{PC: 0x3010, Size: 1, Kind: isa.Return, Taken: true, Target: 0x105}
	// Train the BTB entries once.
	b.PredictAndTrain(call)
	b.PredictAndTrain(ret)
	// Second round: the return must be predicted from the RAS.
	b.PredictAndTrain(call)
	p := b.PredictAndTrain(ret)
	if !p.Taken || p.Target != 0x105 {
		t.Fatalf("return prediction: %+v, want target 0x105", p)
	}
}

func TestBPUStats(t *testing.T) {
	b := New(DefaultConfig())
	in := isa.Inst{PC: 0x40, Size: 2, Kind: isa.CondDirect, Taken: true, Target: 0x400}
	for i := 0; i < 10; i++ {
		b.PredictAndTrain(in)
	}
	if b.Stats.CondBranches != 10 {
		t.Fatalf("CondBranches = %d", b.Stats.CondBranches)
	}
	if b.Stats.BTBMissTaken == 0 {
		t.Fatal("first taken occurrence not counted as BTB miss")
	}
}

func TestBPUConditionalTraining(t *testing.T) {
	b := New(DefaultConfig())
	in := isa.Inst{PC: 0x80, Size: 2, Kind: isa.CondDirect, Taken: true, Target: 0x800}
	misses := 0
	for i := 0; i < 2000; i++ {
		p := b.PredictAndTrain(in)
		if !p.Taken || p.Target != 0x800 {
			misses++
		}
	}
	if misses > 100 {
		t.Fatalf("%d/2000 mispredicts on an always-taken branch", misses)
	}
}
