// Package bpu implements the branch prediction unit of the modelled core:
// a TAGE conditional direction predictor, an ITTAGE indirect target
// predictor, a set-associative BTB, and a return address stack. These are
// the structures the paper's gem5 baseline uses (Table 1: 64KB TAGE, 64KB
// ITTAGE, 8K-entry BTB) and whose capacity pressure creates the resteers
// PDIP exploits.
package bpu

import "pdip/internal/isa"

// tageTables is the number of tagged TAGE components.
const tageTables = 6

// tageHistLens are the geometric history lengths of the tagged components.
var tageHistLens = [tageTables]int{4, 9, 18, 36, 72, 144}

const (
	tageTagBits   = 11
	tageEntryBits = 10 // 1024 entries per tagged table
	baseBits      = 13 // 8192-entry bimodal base
	maxHist       = 256
)

type tageEntry struct {
	tag    uint16
	ctr    int8  // 3-bit signed counter, -4..3; >= 0 means taken
	useful uint8 // 2-bit useful counter
}

// foldedHist incrementally maintains a hash of the most recent origLen
// history bits folded into width bits, updated in O(1) per history push
// (the classic CBP "compressed history" construction).
type foldedHist struct {
	comp     uint32
	origLen  int
	width    int
	outPoint int
}

func newFolded(origLen, width int) foldedHist {
	return foldedHist{origLen: origLen, width: width, outPoint: origLen % width}
}

// push mixes in the newest bit and removes the bit that falls out of the
// origLen-bit window (oldBit).
func (f *foldedHist) push(newBit, oldBit bool) {
	f.comp = (f.comp << 1)
	if newBit {
		f.comp |= 1
	}
	if oldBit {
		f.comp ^= 1 << f.outPoint
	}
	f.comp ^= f.comp >> f.width
	f.comp &= (1 << f.width) - 1
}

// history is a circular global direction-history buffer that feeds the
// folded hashes of TAGE and ITTAGE.
type history struct {
	bits [maxHist]bool
	head int // index of most recent bit
}

func (h *history) push(b bool) {
	h.head = (h.head + 1) & (maxHist - 1)
	h.bits[h.head] = b
}

// at returns the i-th most recent bit (0 = newest).
func (h *history) at(i int) bool {
	return h.bits[(h.head-i)&(maxHist-1)]
}

// TAGE is a TAgged GEometric-history-length conditional branch predictor
// (Seznec & Michaud). The implementation follows the classic design: a
// bimodal base predictor plus tagged components indexed by hashes of the
// PC and progressively longer global history, with provider/altpred
// selection, useful counters, and allocation on mispredict.
type TAGE struct {
	base   []int8 // 2-bit counters, -2..1; >= 0 means taken
	tables [tageTables][]tageEntry

	hist    history
	idxFold [tageTables]foldedHist
	tagFold [tageTables]foldedHist
	tg2Fold [tageTables]foldedHist

	// useAltOnNa biases provider-vs-alt choice for weak new entries.
	useAltOnNa int8
	// allocSeed provides deterministic pseudo-randomness for allocation.
	allocSeed uint64

	// memo caches the per-table indices and tags of the last prepared
	// (pc, history) pair. Predict and Update for the same branch see the
	// same history (Update trains before PushHistory shifts it), so the
	// folded-history hashes would otherwise be recomputed two or three
	// times per predicted branch — once in Predict's lookup, once in
	// Update's, once in allocate. PushHistory invalidates the memo.
	memoPC  isa.Addr
	memoOK  bool
	memoIdx [tageTables]int32
	memoTag [tageTables]uint16
}

// NewTAGE returns a TAGE predictor with the default (≈64KB-class) geometry.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]int8, 1<<baseBits)}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<tageEntryBits)
		t.idxFold[i] = newFolded(tageHistLens[i], tageEntryBits)
		t.tagFold[i] = newFolded(tageHistLens[i], tageTagBits)
		t.tg2Fold[i] = newFolded(tageHistLens[i], tageTagBits-1)
	}
	return t
}

func (t *TAGE) index(table int, pc isa.Addr) int {
	v := uint32(pc>>1) ^ uint32(pc>>(1+tageEntryBits)) ^ t.idxFold[table].comp ^ uint32(table*0x9e37)
	return int(v & ((1 << tageEntryBits) - 1))
}

func (t *TAGE) tag(table int, pc isa.Addr) uint16 {
	v := uint32(pc>>1) ^ t.tagFold[table].comp ^ (t.tg2Fold[table].comp << 1) ^ uint32(table*0x7f4a)
	return uint16(v & ((1 << tageTagBits) - 1))
}

// prepare fills the index/tag memo for pc against the current history,
// reusing it when pc was already prepared since the last history shift.
func (t *TAGE) prepare(pc isa.Addr) {
	if t.memoOK && t.memoPC == pc {
		return
	}
	for i := 0; i < tageTables; i++ {
		t.memoIdx[i] = int32(t.index(i, pc))
		t.memoTag[i] = t.tag(i, pc)
	}
	t.memoPC = pc
	t.memoOK = true
}

func (t *TAGE) baseIndex(pc isa.Addr) int {
	return int((pc >> 1) & ((1 << baseBits) - 1))
}

// Predict returns the predicted direction for the conditional branch at pc.
func (t *TAGE) Predict(pc isa.Addr) bool {
	pred, _, _, _ := t.lookup(pc)
	return pred
}

// lookup returns (prediction, provider table or -1 for base, provider
// index, altpred).
func (t *TAGE) lookup(pc isa.Addr) (pred bool, provider, pidx int, altpred bool) {
	t.prepare(pc)
	provider = -1
	altFound := false
	altpred = t.base[t.baseIndex(pc)] >= 0
	pred = altpred
	for i := tageTables - 1; i >= 0; i-- {
		idx := int(t.memoIdx[i])
		e := &t.tables[i][idx]
		if e.tag == t.memoTag[i] {
			if provider == -1 {
				provider, pidx = i, idx
				pred = e.ctr >= 0
			} else {
				altpred = e.ctr >= 0
				altFound = true
				break
			}
		}
	}
	if provider >= 0 && !altFound {
		altpred = t.base[t.baseIndex(pc)] >= 0
	}
	// Weak new entries: optionally trust the alternate prediction.
	if provider >= 0 {
		e := &t.tables[provider][pidx]
		weak := e.ctr == 0 || e.ctr == -1
		if weak && e.useful == 0 && t.useAltOnNa >= 0 {
			pred = altpred
		}
	}
	return pred, provider, pidx, altpred
}

// Update trains the predictor with the actual outcome of the conditional
// branch at pc and shifts the global history. Update must be called for
// every retired conditional branch, after Predict for the same branch.
func (t *TAGE) Update(pc isa.Addr, taken bool) {
	pred, provider, pidx, altpred := t.lookup(pc)
	mispred := pred != taken

	if provider >= 0 {
		e := &t.tables[provider][pidx]
		provPred := e.ctr >= 0
		// Track whether trusting alt over weak providers helps.
		weak := e.ctr == 0 || e.ctr == -1
		if weak && provPred != altpred {
			if provPred == taken {
				if t.useAltOnNa > -8 {
					t.useAltOnNa--
				}
			} else if t.useAltOnNa < 7 {
				t.useAltOnNa++
			}
		}
		if provPred == taken && altpred != taken && e.useful < 3 {
			e.useful++
		} else if provPred != taken && altpred == taken && e.useful > 0 {
			e.useful--
		}
		bump(&e.ctr, taken, -4, 3)
	} else {
		b := &t.base[t.baseIndex(pc)]
		bump(b, taken, -2, 1)
	}

	// Allocate a new entry in a longer-history table on mispredict.
	if mispred && provider < tageTables-1 {
		t.allocate(pc, taken, provider)
	}

	t.PushHistory(taken)
}

// allocate tries to claim an entry in one of the tables with history
// longer than the provider's, preferring not-useful entries. It runs
// between Update's lookup and PushHistory, so the memo is warm.
func (t *TAGE) allocate(pc isa.Addr, taken bool, provider int) {
	t.prepare(pc)
	start := provider + 1
	// Pseudo-random start offset avoids always allocating in the shortest
	// eligible table (standard TAGE trick).
	t.allocSeed = t.allocSeed*6364136223846793005 + 1442695040888963407
	if n := tageTables - start; n > 1 && (t.allocSeed>>33)&1 == 1 {
		start++
	}
	allocated := false
	for i := start; i < tageTables; i++ {
		e := &t.tables[i][t.memoIdx[i]]
		if e.useful == 0 {
			e.tag = t.memoTag[i]
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			allocated = true
			break
		}
	}
	if !allocated {
		// Decay useful bits along the allocation path so future
		// allocations succeed (graceful aging).
		for i := start; i < tageTables; i++ {
			e := &t.tables[i][t.memoIdx[i]]
			if e.useful > 0 {
				e.useful--
			}
		}
	}
}

// PushHistory shifts one direction bit into the global history and updates
// every folded hash. It is also used directly for branches TAGE does not
// predict (unconditional, indirect) so history stays path-correlated.
func (t *TAGE) PushHistory(taken bool) {
	for i := 0; i < tageTables; i++ {
		old := t.hist.at(tageHistLens[i] - 1)
		t.idxFold[i].push(taken, old)
		t.tagFold[i].push(taken, old)
		t.tg2Fold[i].push(taken, old)
	}
	t.hist.push(taken)
	t.memoOK = false
}

// bump saturates ctr toward taken within [lo, hi].
func bump(ctr *int8, taken bool, lo, hi int8) {
	if taken {
		if *ctr < hi {
			*ctr++
		}
	} else if *ctr > lo {
		*ctr--
	}
}
