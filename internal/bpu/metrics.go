package bpu

import "pdip/internal/metrics"

// RegisterMetrics binds branch prediction accounting under "bpu" into reg.
// Bindings are snapshot-time views over Stats; the predict hot path is
// untouched.
func (b *BPU) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("bpu.cond_branches", func() uint64 { return b.Stats.CondBranches })
	reg.CounterFunc("bpu.cond_mispredict", func() uint64 { return b.Stats.CondMispredict })
	reg.CounterFunc("bpu.btb_lookups", func() uint64 { return b.Stats.BTBLookups })
	reg.CounterFunc("bpu.btb_miss_taken", func() uint64 { return b.Stats.BTBMissTaken })
	reg.CounterFunc("bpu.ind_branches", func() uint64 { return b.Stats.IndBranches })
	reg.CounterFunc("bpu.ind_mispredict", func() uint64 { return b.Stats.IndMispredict })
	reg.CounterFunc("bpu.returns", func() uint64 { return b.Stats.Returns })
	reg.CounterFunc("bpu.ret_mispredict", func() uint64 { return b.Stats.RetMispredict })
	reg.Gauge("bpu.btb_kb").Set(b.Btb.StorageKB())
}
