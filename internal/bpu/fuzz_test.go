package bpu

import "testing"

// foldHarness pairs a global history buffer with per-table folded index
// hashes, maintained exactly as TAGE.PushHistory does.
type foldHarness struct {
	hist  history
	folds [tageTables]foldedHist
}

func newFoldHarness() *foldHarness {
	h := &foldHarness{}
	for i := range h.folds {
		h.folds[i] = newFolded(tageHistLens[i], tageEntryBits)
	}
	return h
}

func (h *foldHarness) push(b bool) {
	for i := range h.folds {
		old := h.hist.at(tageHistLens[i] - 1)
		h.folds[i].push(b, old)
	}
	h.hist.push(b)
}

func pushBytes(h *foldHarness, t *testing.T, data []byte) {
	t.Helper()
	for _, by := range data {
		for bit := 0; bit < 8; bit++ {
			h.push(by&(1<<bit) != 0)
			for i := range h.folds {
				if c := h.folds[i].comp; c >= 1<<h.folds[i].width {
					t.Fatalf("fold %d: comp %#x overflows its %d-bit width", i, c, h.folds[i].width)
				}
			}
		}
	}
}

// FuzzTAGEIndexFold checks the window property of the incrementally
// folded history: the fold is a pure function of the most recent origLen
// direction bits, so two histories with arbitrary different prefixes must
// produce identical fold values once they share a suffix at least as long
// as the full history window — and the fold must stay inside its
// configured bit width at every step. A broken outPoint (stale bits never
// cancelling) is exactly what this catches.
func FuzzTAGEIndexFold(f *testing.F) {
	f.Add([]byte{0xa5, 0x3c}, []byte{0x5a}, []byte{0xf0, 0x0f, 0x42})
	f.Add([]byte{}, []byte{0xff, 0xff, 0xff}, []byte{0x01})
	f.Fuzz(func(t *testing.T, prefixA, prefixB, suffix []byte) {
		if len(suffix) == 0 {
			suffix = []byte{0xa5}
		}
		a, b := newFoldHarness(), newFoldHarness()
		pushBytes(a, t, prefixA)
		pushBytes(b, t, prefixB)
		// Replay the shared suffix until the full maxHist window holds
		// identical bits in both harnesses.
		pushed := 0
		for pushed < maxHist {
			pushBytes(a, t, suffix)
			pushBytes(b, t, suffix)
			pushed += 8 * len(suffix)
		}
		for i := range a.folds {
			if a.folds[i].comp != b.folds[i].comp {
				t.Fatalf("fold %d (histLen %d): %#x != %#x after identical %d-bit suffix",
					i, tageHistLens[i], a.folds[i].comp, b.folds[i].comp, pushed)
			}
		}
	})
}
