package bpu

import "pdip/internal/isa"

// btbWays is the BTB associativity; capacity is varied by set count.
const btbWays = 8

// BTBEntryBits is the storage cost of one BTB entry in bits, chosen so an
// 8K-entry BTB costs 119.01KB as reported in the paper's Table 1.
const BTBEntryBits = 119

// btbEntry holds one taken branch: full tag (upper PC bits), target, and
// the branch kind so the IAG knows which predictor supplies the target.
type btbEntry struct {
	valid  bool
	tag    uint64
	target isa.Addr
	kind   isa.BranchKind
	lru    uint32
}

// BTB is a set-associative branch target buffer indexed by branch PC. The
// IAG discovers branches in the predicted stream through the BTB: a taken
// branch missing here is invisible to the front-end until decode or
// execute, which is the paper's "BTB miss" resteer class.
type BTB struct {
	sets     [][]btbEntry
	setShift uint
	setMask  uint64
	tick     uint32

	lookups, hits uint64
}

// NewBTB creates a BTB with the given total entry count, which must be a
// multiple of the fixed 8-way associativity and a power of two.
func NewBTB(entries int) *BTB {
	if entries < btbWays {
		entries = btbWays
	}
	numSets := entries / btbWays
	if numSets&(numSets-1) != 0 {
		panic("bpu: BTB entry count / 8 must be a power of two")
	}
	b := &BTB{
		sets:     make([][]btbEntry, numSets),
		setShift: 1, // branch PCs are at least 2-byte aligned in practice
		setMask:  uint64(numSets - 1),
	}
	backing := make([]btbEntry, numSets*btbWays)
	for i := range b.sets {
		b.sets[i] = backing[i*btbWays : (i+1)*btbWays]
	}
	return b
}

// Entries returns the total entry capacity.
func (b *BTB) Entries() int { return len(b.sets) * btbWays }

// StorageKB returns the BTB storage in kilobytes (Table 1 accounting).
func (b *BTB) StorageKB() float64 {
	return float64(b.Entries()*BTBEntryBits) / 8192.0
}

func (b *BTB) setOf(pc isa.Addr) (int, uint64) {
	v := uint64(pc) >> b.setShift
	return int(v & b.setMask), v >> uint(popcount(b.setMask))
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Lookup probes the BTB for a branch at pc. On a hit it returns the stored
// target and branch kind.
func (b *BTB) Lookup(pc isa.Addr) (target isa.Addr, kind isa.BranchKind, hit bool) {
	b.lookups++
	set, tag := b.setOf(pc)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			b.tick++
			e.lru = b.tick
			b.hits++
			return e.target, e.kind, true
		}
	}
	return 0, isa.NotBranch, false
}

// Insert installs or updates the entry for a taken branch at pc.
func (b *BTB) Insert(pc isa.Addr, target isa.Addr, kind isa.BranchKind) {
	set, tag := b.setOf(pc)
	b.tick++
	victim := 0
	var oldest uint32 = ^uint32(0)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			e.target = target
			e.kind = kind
			e.lru = b.tick
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
			continue
		}
		if e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	b.sets[set][victim] = btbEntry{valid: true, tag: tag, target: target, kind: kind, lru: b.tick}
}

// HitRate returns the fraction of lookups that hit, for diagnostics.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// RAS is a fixed-depth circular return address stack. Pushing beyond the
// capacity silently overwrites the oldest frame, so deeply nested call
// chains produce return mispredicts exactly as in hardware.
type RAS struct {
	entries []isa.Addr
	top     int // index of the current top
	depth   int // live entries, capped at len(entries)
}

// NewRAS returns a RAS with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		capacity = 32
	}
	return &RAS{entries: make([]isa.Addr, capacity)}
}

// Push records a return address.
func (r *RAS) Push(addr isa.Addr) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = addr
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return. With an empty (or overflowed) stack
// it returns 0, false.
func (r *RAS) Pop() (isa.Addr, bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return addr, true
}
