package bpu

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
)

// CaptureCheckpoint captures the full BPU: TAGE and ITTAGE tables with
// their global histories and folded-history accumulators, the BTB, the
// RAS, and the prediction stats.
func (b *BPU) CaptureCheckpoint() checkpoint.BPUState {
	return checkpoint.BPUState{
		TAGE:   b.Tage.captureCheckpoint(),
		ITTAGE: b.Ittage.captureCheckpoint(),
		BTB:    b.Btb.captureCheckpoint(),
		RAS:    b.Ras.captureCheckpoint(),
		Stats:  checkpoint.BPUStats(b.Stats),
	}
}

// RestoreCheckpoint overwrites the BPU from a captured state. The
// receiver must have been built with the same geometry (table sizes are
// fixed; BTB capacity and RAS depth are checked).
func (b *BPU) RestoreCheckpoint(st checkpoint.BPUState) error {
	if err := b.Tage.restoreCheckpoint(st.TAGE); err != nil {
		return err
	}
	if err := b.Ittage.restoreCheckpoint(st.ITTAGE); err != nil {
		return err
	}
	if err := b.Btb.restoreCheckpoint(st.BTB); err != nil {
		return err
	}
	if err := b.Ras.restoreCheckpoint(st.RAS); err != nil {
		return err
	}
	b.Stats = Stats(st.Stats)
	return nil
}

// captureCheckpoint captures the TAGE tables, history, folded-hash
// accumulators (only the compressed value — fold geometry is rebuilt by
// construction), and allocation state. The index/tag memo is skipped: it
// is a pure cache invalidated by the next PushHistory, and a restored
// predictor starts with memoOK == false, which is always safe.
func (t *TAGE) captureCheckpoint() checkpoint.TAGEState {
	st := checkpoint.TAGEState{
		Base:       append([]int8(nil), t.base...),
		Tables:     make([][]checkpoint.TAGEEntry, tageTables),
		HistBits:   append([]bool(nil), t.hist.bits[:]...),
		HistHead:   t.hist.head,
		IdxFold:    make([]uint32, tageTables),
		TagFold:    make([]uint32, tageTables),
		Tg2Fold:    make([]uint32, tageTables),
		UseAltOnNa: t.useAltOnNa,
		AllocSeed:  t.allocSeed,
	}
	for i := 0; i < tageTables; i++ {
		tbl := make([]checkpoint.TAGEEntry, len(t.tables[i]))
		for j, e := range t.tables[i] {
			tbl[j] = checkpoint.TAGEEntry{Tag: e.tag, Ctr: e.ctr, Useful: e.useful}
		}
		st.Tables[i] = tbl
		st.IdxFold[i] = t.idxFold[i].comp
		st.TagFold[i] = t.tagFold[i].comp
		st.Tg2Fold[i] = t.tg2Fold[i].comp
	}
	return st
}

func (t *TAGE) restoreCheckpoint(st checkpoint.TAGEState) error {
	if len(st.Base) != len(t.base) || len(st.Tables) != tageTables ||
		len(st.HistBits) != maxHist ||
		len(st.IdxFold) != tageTables || len(st.TagFold) != tageTables || len(st.Tg2Fold) != tageTables {
		return fmt.Errorf("bpu: TAGE checkpoint geometry mismatch")
	}
	copy(t.base, st.Base)
	for i := 0; i < tageTables; i++ {
		if len(st.Tables[i]) != len(t.tables[i]) {
			return fmt.Errorf("bpu: TAGE table %d has %d checkpoint entries, want %d", i, len(st.Tables[i]), len(t.tables[i]))
		}
		for j, e := range st.Tables[i] {
			t.tables[i][j] = tageEntry{tag: e.Tag, ctr: e.Ctr, useful: e.Useful}
		}
		t.idxFold[i].comp = st.IdxFold[i]
		t.tagFold[i].comp = st.TagFold[i]
		t.tg2Fold[i].comp = st.Tg2Fold[i]
	}
	copy(t.hist.bits[:], st.HistBits)
	t.hist.head = st.HistHead
	t.useAltOnNa = st.UseAltOnNa
	t.allocSeed = st.AllocSeed
	t.memoOK = false
	t.memoPC = 0
	t.memoIdx = [tageTables]int32{}
	t.memoTag = [tageTables]uint16{}
	return nil
}

// captureCheckpoint mirrors TAGE's: tables, history, fold accumulators,
// allocation seed; the memo is skipped for the same reason.
func (it *ITTAGE) captureCheckpoint() checkpoint.ITTAGEState {
	st := checkpoint.ITTAGEState{
		Base:      append([]isa.Addr(nil), it.base...),
		Tables:    make([][]checkpoint.ITTAGEEntry, ittageTables),
		HistBits:  append([]bool(nil), it.hist.bits[:]...),
		HistHead:  it.hist.head,
		IdxFold:   make([]uint32, ittageTables),
		TagFold:   make([]uint32, ittageTables),
		AllocSeed: it.allocSeed,
	}
	for i := 0; i < ittageTables; i++ {
		tbl := make([]checkpoint.ITTAGEEntry, len(it.tables[i]))
		for j, e := range it.tables[i] {
			tbl[j] = checkpoint.ITTAGEEntry{Tag: e.tag, Target: e.target, Ctr: e.ctr, Useful: e.useful}
		}
		st.Tables[i] = tbl
		st.IdxFold[i] = it.idxFold[i].comp
		st.TagFold[i] = it.tagFold[i].comp
	}
	return st
}

func (it *ITTAGE) restoreCheckpoint(st checkpoint.ITTAGEState) error {
	if len(st.Base) != len(it.base) || len(st.Tables) != ittageTables ||
		len(st.HistBits) != maxHist ||
		len(st.IdxFold) != ittageTables || len(st.TagFold) != ittageTables {
		return fmt.Errorf("bpu: ITTAGE checkpoint geometry mismatch")
	}
	copy(it.base, st.Base)
	for i := 0; i < ittageTables; i++ {
		if len(st.Tables[i]) != len(it.tables[i]) {
			return fmt.Errorf("bpu: ITTAGE table %d has %d checkpoint entries, want %d", i, len(st.Tables[i]), len(it.tables[i]))
		}
		for j, e := range st.Tables[i] {
			it.tables[i][j] = ittageEntry{tag: e.Tag, target: e.Target, ctr: e.Ctr, useful: e.Useful}
		}
		it.idxFold[i].comp = st.IdxFold[i]
		it.tagFold[i].comp = st.TagFold[i]
	}
	copy(it.hist.bits[:], st.HistBits)
	it.hist.head = st.HistHead
	it.allocSeed = st.AllocSeed
	it.memoOK = false
	it.memoPC = 0
	it.memoIdx = [ittageTables]int32{}
	it.memoTag = [ittageTables]uint16{}
	return nil
}

func (b *BTB) captureCheckpoint() checkpoint.BTBState {
	st := checkpoint.BTBState{
		Sets:    len(b.sets),
		Ways:    btbWays,
		Entries: make([]checkpoint.BTBEntryState, 0, len(b.sets)*btbWays),
		Tick:    b.tick,
		Lookups: b.lookups,
		Hits:    b.hits,
	}
	for _, set := range b.sets {
		for _, e := range set {
			st.Entries = append(st.Entries, checkpoint.BTBEntryState{
				Valid: e.valid, Tag: e.tag, Target: e.target, Kind: e.kind, LRU: e.lru,
			})
		}
	}
	return st
}

func (b *BTB) restoreCheckpoint(st checkpoint.BTBState) error {
	if st.Sets != len(b.sets) || st.Ways != btbWays {
		return fmt.Errorf("bpu: BTB checkpoint geometry %dx%d, BTB is %dx%d", st.Sets, st.Ways, len(b.sets), btbWays)
	}
	if len(st.Entries) != st.Sets*st.Ways {
		return fmt.Errorf("bpu: BTB checkpoint has %d entries, want %d", len(st.Entries), st.Sets*st.Ways)
	}
	k := 0
	for _, set := range b.sets {
		for i := range set {
			e := st.Entries[k]
			k++
			set[i] = btbEntry{valid: e.Valid, tag: e.Tag, target: e.Target, kind: e.Kind, lru: e.LRU}
		}
	}
	b.tick = st.Tick
	b.lookups = st.Lookups
	b.hits = st.Hits
	return nil
}

func (r *RAS) captureCheckpoint() checkpoint.RASState {
	return checkpoint.RASState{
		Entries: append([]isa.Addr(nil), r.entries...),
		Top:     r.top,
		Depth:   r.depth,
	}
}

func (r *RAS) restoreCheckpoint(st checkpoint.RASState) error {
	if len(st.Entries) != len(r.entries) {
		return fmt.Errorf("bpu: RAS checkpoint depth %d, RAS is %d", len(st.Entries), len(r.entries))
	}
	copy(r.entries, st.Entries)
	r.top = st.Top
	r.depth = st.Depth
	return nil
}
