package policy

import (
	"strings"
	"testing"

	"pdip/internal/core"
	"pdip/internal/workload"
)

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if p.Name == "" || p.Description == "" || p.Apply == nil {
			t.Fatalf("incomplete policy %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate policy name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestTable3PoliciesPresent(t *testing.T) {
	for _, want := range []string{
		"baseline", "emissary", "2x-il1",
		"eip46", "eip-analytical",
		"pdip11", "pdip22", "pdip44", "pdip87",
		"pdip44+emissary", "pdip44-zerocost", "fec-ideal",
	} {
		if _, err := ByName(want); err != nil {
			t.Fatalf("missing policy %q: %v", want, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestEveryPolicyYieldsValidConfig(t *testing.T) {
	for _, p := range All() {
		c := core.DefaultConfig()
		p.Apply(&c)
		if err := c.Validate(); err != nil {
			t.Fatalf("policy %q produces invalid config: %v", p.Name, err)
		}
	}
}

// TestEveryPolicyRunsOnCore is the registry's end-to-end gate: each
// policy must not only validate but actually build a core and simulate.
// A policy whose knobs only explode at construction or mid-run (nil
// prefetcher hooks, zero-width structures, bad cache geometry) is caught
// here rather than deep inside an experiment grid.
func TestEveryPolicyRunsOnCore(t *testing.T) {
	prof, err := workload.ByName("kafka")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := prof.Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			c := core.DefaultConfig()
			c.Seed = prof.CFG.Seed ^ 0x5eed
			c.MemOpFrac = prof.MemOpFrac
			p.Apply(&c)
			co, err := core.New(prog, c)
			if err != nil {
				t.Fatalf("policy %q fails core construction: %v", p.Name, err)
			}
			if err := co.Run(1000); err != nil {
				t.Fatalf("policy %q fails simulation: %v", p.Name, err)
			}
			r := co.Result()
			if r.Core.Instructions < 1000 || r.Core.Cycles == 0 {
				t.Fatalf("policy %q retired %d instructions in %d cycles",
					p.Name, r.Core.Instructions, r.Core.Cycles)
			}
		})
	}
}

func TestPoliciesCreateFreshPrefetchers(t *testing.T) {
	p, err := ByName("pdip44")
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := core.DefaultConfig(), core.DefaultConfig()
	p.Apply(&c1)
	p.Apply(&c2)
	if c1.Prefetcher == nil || c1.Prefetcher == c2.Prefetcher {
		t.Fatal("policy applications share prefetcher state")
	}
}

func TestSizedPDIPPolicies(t *testing.T) {
	// The sweep policies must reflect the paper's table sizes.
	for name, wantKB := range map[string]float64{
		"pdip11": 10.875, "pdip22": 21.75, "pdip44": 43.5, "pdip87": 87,
	} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := core.DefaultConfig()
		p.Apply(&c)
		if got := c.Prefetcher.StorageKB(); got != wantKB {
			t.Fatalf("%s storage %.3fKB, want %.3f", name, got, wantKB)
		}
	}
}

func Test2xIL1(t *testing.T) {
	p, _ := ByName("2x-il1")
	c := core.DefaultConfig()
	p.Apply(&c)
	if c.Mem.L1I.SizeBytes != 64<<10 {
		t.Fatalf("2x-il1 L1I size %d", c.Mem.L1I.SizeBytes)
	}
}

func TestEmissaryKnobs(t *testing.T) {
	p, _ := ByName("emissary")
	c := core.DefaultConfig()
	p.Apply(&c)
	if !c.Emissary || c.Mem.L2.ProtectedWays != 8 {
		t.Fatalf("emissary knobs: %+v", c.Mem.L2)
	}
	if c.EmissaryPromoteProb != 1.0/32.0 {
		t.Fatalf("promote prob %v", c.EmissaryPromoteProb)
	}
}

func TestAblationPoliciesExist(t *testing.T) {
	names := strings.Join(Names(), " ")
	for _, abl := range []string{"pdip44-insert100", "pdip44-allfec", "pdip44-nomask", "pdip44-returns", "pdip44-reserve0", "no-fdip"} {
		if !strings.Contains(names, abl) {
			t.Fatalf("ablation %q missing from registry", abl)
		}
	}
}
