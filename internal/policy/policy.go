// Package policy is the registry of evaluated configurations (the paper's
// Table 3 plus the ablations DESIGN.md calls out). A policy is a named
// mutation of the baseline core configuration; fresh prefetcher instances
// are created per application so runs never share mutable state.
package policy

import (
	"fmt"
	"sort"

	"pdip/internal/core"
	"pdip/internal/eip"
	"pdip/internal/fnlmma"
	"pdip/internal/pdip"
	"pdip/internal/prefetch"
	"pdip/internal/rdip"
)

// Policy is one named configuration.
type Policy struct {
	// Name is the registry key ("pdip44", "eip46", ...).
	Name string
	// Description matches Table 3's description column.
	Description string
	// Apply mutates a baseline core configuration in place.
	Apply func(*core.Config)
}

// emissaryOn enables the EMISSARY L2 replacement policy with the paper's
// preferred knobs: 8 protected ways, 1/32 promotion probability (§6.5).
func emissaryOn(c *core.Config) {
	c.Emissary = true
	c.Mem.L2.ProtectedWays = 8
	c.EmissaryPromoteProb = 1.0 / 32.0
}

func pdipOn(c *core.Config, ways int) {
	pc := pdip.ConfigForWays(ways)
	pc.Seed = c.Seed
	c.Prefetcher = pdip.New(pc)
}

// registry builds the full policy table.
func registry() []Policy {
	ps := []Policy{
		{"baseline", "Golden Cove-like FDIP core (Table 1)", func(c *core.Config) {}},
		{"no-fdip", "coupled front-end: FTQ depth 1, no FDIP prefetch (§6.2 ablation)", func(c *core.Config) {
			c.FTQDepth = 1
			c.DisableFDIPPrefetch = true
		}},
		{"2x-il1", "64KB instruction cache, twice the baseline", func(c *core.Config) {
			c.Mem.L1I.SizeBytes = 64 << 10
		}},
		{"emissary", "EMISSARY priority ways at L2 (8 ways, 1/32 promote)", emissaryOn},
		{"fec-ideal", "EMISSARY L2 + marked FEC lines always at L1I latency (§3 ceiling)", func(c *core.Config) {
			emissaryOn(c)
			c.FECIdeal = true
		}},
		{"eip46", "EIP prefetcher with ≈46KB entangling table", func(c *core.Config) {
			c.Prefetcher = eip.New(eip.DefaultConfig())
		}},
		{"nextline", "sequential next-2-lines prefetcher on miss (§8 baseline)", func(c *core.Config) {
			c.Prefetcher = prefetch.NewNextLine(2)
		}},
		{"rdip", "return-address-stack directed prefetcher (RDIP, §8 baseline)", func(c *core.Config) {
			c.Prefetcher = rdip.New(rdip.DefaultConfig())
		}},
		{"fnl-mma", "footprint-next-line + multiple-miss-ahead prefetcher (§8 baseline)", func(c *core.Config) {
			c.Prefetcher = fnlmma.New(fnlmma.DefaultConfig())
		}},
		{"eip-analytical", "analytical EIP: unbounded entangling table (>200KB)", func(c *core.Config) {
			c.Prefetcher = eip.New(eip.AnalyticalConfig())
		}},
		{"eip46+emissary", "EIP(46) combined with EMISSARY", func(c *core.Config) {
			c.Prefetcher = eip.New(eip.DefaultConfig())
			emissaryOn(c)
		}},
		{"eip-analytical+emissary", "EIP-Analytical combined with EMISSARY (Fig 3)", func(c *core.Config) {
			c.Prefetcher = eip.New(eip.AnalyticalConfig())
			emissaryOn(c)
		}},
		{"pdip44-zerocost", "PDIP(44) with zero-cycle prefetch installs (§7.2 ceiling)", func(c *core.Config) {
			pdipOn(c, 8)
			c.ZeroCostPrefetch = true
		}},
		{"pdip44+emissary", "PDIP(44) combined with EMISSARY (preferred policy)", func(c *core.Config) {
			pdipOn(c, 8)
			emissaryOn(c)
		}},
		{"pdip11+emissary", "PDIP(11) combined with EMISSARY", func(c *core.Config) {
			pdipOn(c, 2)
			emissaryOn(c)
		}},

		// Ablations (§5.1–§5.3 design choices).
		{"pdip44-insert100", "PDIP(44) inserting every qualifying line (prob 1.0)", func(c *core.Config) {
			pc := pdip.ConfigForWays(8)
			pc.InsertProb = 1.0
			pc.Seed = c.Seed
			c.Prefetcher = pdip.New(pc)
		}},
		{"pdip44-insert3", "PDIP(44) inserting at prob 0.03", func(c *core.Config) {
			pc := pdip.ConfigForWays(8)
			pc.InsertProb = 0.03
			pc.Seed = c.Seed
			c.Prefetcher = pdip.New(pc)
		}},
		{"pdip44-allfec", "PDIP(44) without the high-cost/back-end-stall insert filter", func(c *core.Config) {
			pc := pdip.ConfigForWays(8)
			pc.RequireHighCost = false
			pc.Seed = c.Seed
			c.Prefetcher = pdip.New(pc)
		}},
		{"pdip44-nomask", "PDIP(44) without the 4-bit following-blocks mask", func(c *core.Config) {
			pc := pdip.ConfigForWays(8)
			pc.MaskBits = -1
			pc.Seed = c.Seed
			c.Prefetcher = pdip.New(pc)
		}},
		{"pdip44-returns", "PDIP(44) inserting return-resteer triggers too", func(c *core.Config) {
			pc := pdip.ConfigForWays(8)
			pc.IgnoreReturns = false
			pc.Seed = c.Seed
			c.Prefetcher = pdip.New(pc)
		}},
		{"pdip44-reserve0", "PDIP(44) with no PQ MSHR demand reserve", func(c *core.Config) {
			pdipOn(c, 8)
			c.PQReserveMSHRs = -1
		}},
	}
	// PDIP table-size sweep (Fig 13): 2/4/8/16 ways ≈ 11/22/44/87 KB.
	for _, w := range []int{2, 4, 8, 16} {
		ways := w
		kb := pdip.ConfigForWays(ways).StorageKB()
		ps = append(ps, Policy{
			Name:        fmt.Sprintf("pdip%d", int(kb+0.5)),
			Description: fmt.Sprintf("PDIP with %d-way (%.1fKB) table", ways, kb),
			Apply:       func(c *core.Config) { pdipOn(c, ways) },
		})
	}
	return ps
}

// All returns every policy, stable-ordered.
func All() []Policy { return registry() }

// Names returns all registry keys, sorted.
func Names() []string {
	ps := registry()
	names := make([]string, len(ps))
	for i := range ps {
		names[i] = ps[i].Name
	}
	sort.Strings(names)
	return names
}

// ByName returns the named policy.
func ByName(name string) (Policy, error) {
	for _, p := range registry() {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("policy: unknown policy %q (known: %v)", name, Names())
}
