// Package eip implements the Entangling Instruction Prefetcher baseline
// (Ros & Jimborean, ISCA '21) the paper compares against, following the
// paper's own gem5 re-implementation (§6.5): the history buffer and the
// entangling table are maintained at commit to exclude wrong-path
// accesses, miss latencies are captured at fetch and consumed at commit to
// compute entangling distances, and full addresses are stored.
//
// Two variants exist: the bounded EIP(S) with a set-associative entangling
// table of S KB, and EIP-Analytical with an unbounded table (the paper's
// performance-oriented upper bound, >200KB).
package eip

import (
	"sort"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// Config parameterises EIP.
type Config struct {
	// HistorySize is the commit-order history buffer depth. The paper
	// found 40 entries as good as 1024.
	HistorySize int
	// Sets and Ways size the bounded entangling table. Sets == 0 selects
	// the analytical (unbounded) model.
	Sets, Ways int
	// TargetsPerEntry is the number of destination lines entangled per
	// source entry in the bounded table.
	TargetsPerEntry int
	// TagBits sizes the bounded table's partial tag.
	TagBits int
}

// dstAddrBits is the stored destination address width for storage
// accounting, matching the paper's 34-bit physical line addresses.
const dstAddrBits = 34

// DefaultConfig returns the bounded EIP(46)-class configuration used in
// the paper's headline comparison: a 46KB entangling table.
func DefaultConfig() Config {
	return Config{
		HistorySize:     40,
		Sets:            1192, // 1192 sets × 4 ways × 79 bits ≈ 46KB
		Ways:            4,
		TargetsPerEntry: 2,
		TagBits:         10,
	}
}

// AnalyticalConfig returns the unbounded EIP-Analytical model.
func AnalyticalConfig() Config {
	return Config{HistorySize: 40, TargetsPerEntry: 8}
}

// StorageKB reports the entangling-table budget; the analytical model
// reports the paper's ">200KB" nominal 237KB for Figure 15-style plots.
func (c Config) StorageKB() float64 {
	if c.Sets == 0 {
		return 237
	}
	bitsPerEntry := c.TagBits + 1 + c.TargetsPerEntry*dstAddrBits
	return float64(c.Sets*c.Ways*bitsPerEntry) / 8192.0
}

type histEntry struct {
	line  isa.Addr
	cycle int64
}

type tableEntry struct {
	valid bool
	tag   uint32
	lru   uint32
	dsts  []isa.Addr
}

// Stats counts EIP-specific events.
type Stats struct {
	// Entangled counts (src → dst) associations recorded.
	Entangled uint64
	// NoSource counts misses whose latency predates the history window.
	NoSource uint64
	// Lookups and Hits count FTQ-insert probes.
	Lookups uint64
	Hits    uint64
}

// EIP is the entangling prefetcher.
type EIP struct {
	cfg  Config
	hist []histEntry // ring, newest at (head-1)
	head int
	size int

	sets [][]tableEntry          // bounded table
	anal map[isa.Addr][]isa.Addr // analytical unbounded table
	tick uint32

	Stats Stats
}

// New builds an EIP instance; zero-value fields fall back to defaults.
func New(cfg Config) *EIP {
	if cfg.HistorySize == 0 {
		cfg.HistorySize = 40
	}
	if cfg.TargetsPerEntry == 0 {
		cfg.TargetsPerEntry = 2
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = 10
	}
	e := &EIP{cfg: cfg, hist: make([]histEntry, cfg.HistorySize)}
	if cfg.Sets > 0 {
		e.sets = make([][]tableEntry, cfg.Sets)
		for i := range e.sets {
			ways := make([]tableEntry, cfg.Ways)
			for w := range ways {
				ways[w].dsts = make([]isa.Addr, 0, cfg.TargetsPerEntry)
			}
			e.sets[i] = ways
		}
	} else {
		e.anal = make(map[isa.Addr][]isa.Addr)
	}
	return e
}

// Name implements prefetch.Prefetcher.
func (e *EIP) Name() string {
	if e.cfg.Sets == 0 {
		return "eip-analytical"
	}
	return "eip"
}

// StorageKB implements prefetch.Prefetcher.
func (e *EIP) StorageKB() float64 { return e.cfg.StorageKB() }

// OnFTQInsert implements prefetch.Prefetcher: a predicted access to a
// source line prefetches every line entangled with it.
func (e *EIP) OnFTQInsert(block isa.Addr, out []prefetch.Request) []prefetch.Request {
	e.Stats.Lookups++
	src := block.Line()
	if e.anal != nil {
		if dsts, ok := e.anal[src]; ok {
			e.Stats.Hits++
			for _, d := range dsts {
				out = append(out, prefetch.Request{Line: d, Trigger: prefetch.TriggerNone})
			}
		}
		return out
	}
	set, tag := e.indexTag(src)
	for w := range e.sets[set] {
		te := &e.sets[set][w]
		if te.valid && te.tag == tag {
			e.Stats.Hits++
			e.tick++
			te.lru = e.tick
			for _, d := range te.dsts {
				out = append(out, prefetch.Request{Line: d, Trigger: prefetch.TriggerNone})
			}
			break
		}
	}
	return out
}

// OnLineRetired implements prefetch.Prefetcher: record the committed line
// access in the history buffer and, when the line missed, entangle it with
// the line accessed approximately its fill latency earlier.
func (e *EIP) OnLineRetired(ev prefetch.RetireEvent) {
	if ev.Missed && ev.FetchLatency > 0 {
		if src, ok := e.findSource(ev.FetchCycle - ev.FetchLatency); ok && src != ev.Line {
			e.entangle(src, ev.Line)
		} else if !ok {
			e.Stats.NoSource++
		}
	}
	e.hist[e.head] = histEntry{line: ev.Line, cycle: ev.FetchCycle}
	e.head = (e.head + 1) % len(e.hist)
	if e.size < len(e.hist) {
		e.size++
	}
}

// findSource returns the history entry whose fetch cycle is closest to
// wantCycle — the access that, had it prefetched the missing line, would
// have hidden the full latency.
func (e *EIP) findSource(wantCycle int64) (isa.Addr, bool) {
	best := -1
	var bestDist int64 = 1 << 62
	for i := 0; i < e.size; i++ {
		h := &e.hist[(e.head-1-i+len(e.hist))%len(e.hist)]
		d := h.cycle - wantCycle
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = (e.head-1-i+len(e.hist))%len(e.hist), d
		}
	}
	if best < 0 {
		return 0, false
	}
	return e.hist[best].line, true
}

func (e *EIP) indexTag(src isa.Addr) (int, uint32) {
	ln := uint64(src) >> isa.LineShift
	set := int(ln % uint64(e.cfg.Sets))
	tag := uint32(ln/uint64(e.cfg.Sets)) & ((1 << e.cfg.TagBits) - 1)
	return set, tag
}

func (e *EIP) entangle(src, dst isa.Addr) {
	e.Stats.Entangled++
	if e.anal != nil {
		dsts := e.anal[src]
		for _, d := range dsts {
			if d == dst {
				return
			}
		}
		if len(dsts) >= e.cfg.TargetsPerEntry {
			copy(dsts, dsts[1:])
			dsts[len(dsts)-1] = dst
			e.anal[src] = dsts
			return
		}
		e.anal[src] = append(dsts, dst)
		return
	}
	set, tag := e.indexTag(src)
	ways := e.sets[set]
	e.tick++
	var te *tableEntry
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			te = &ways[w]
			break
		}
	}
	if te == nil {
		victim := 0
		var oldest uint32 = ^uint32(0)
		for w := range ways {
			if !ways[w].valid {
				victim = w
				break
			}
			if ways[w].lru < oldest {
				victim, oldest = w, ways[w].lru
			}
		}
		te = &ways[victim]
		te.valid = true
		te.tag = tag
		te.dsts = te.dsts[:0]
	}
	te.lru = e.tick
	for _, d := range te.dsts {
		if d == dst {
			return
		}
	}
	if len(te.dsts) >= e.cfg.TargetsPerEntry {
		copy(te.dsts, te.dsts[1:])
		te.dsts[len(te.dsts)-1] = dst
		return
	}
	te.dsts = append(te.dsts, dst)
}

// Entangling is one source→destinations association of the analytical
// table, in a dump-friendly form.
type Entangling struct {
	// Src is the entangling source line.
	Src isa.Addr
	// Dsts are the destination lines, in insertion order.
	Dsts []isa.Addr
}

// AnalyticalEntanglings returns the analytical table's content sorted by
// source address — the deterministic dump of the unordered map, for
// diagnostics and replay comparison. Nil for the bounded variant.
func (e *EIP) AnalyticalEntanglings() []Entangling {
	if e.anal == nil {
		return nil
	}
	srcs := make([]isa.Addr, 0, len(e.anal))
	for src := range e.anal {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	out := make([]Entangling, len(srcs))
	for i, src := range srcs {
		out[i] = Entangling{Src: src, Dsts: e.anal[src]}
	}
	return out
}

// ResetStats zeroes the counters while keeping table state warm (used at
// the end of the measurement warmup window).
func (e *EIP) ResetStats() { e.Stats = Stats{} }
