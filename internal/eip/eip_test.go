package eip

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

func access(line isa.Addr, cycle int64) prefetch.RetireEvent {
	return prefetch.RetireEvent{Line: line, FetchCycle: cycle}
}

func missAt(line isa.Addr, cycle, latency int64) prefetch.RetireEvent {
	return prefetch.RetireEvent{Line: line, FetchCycle: cycle, FetchLatency: latency, Missed: true}
}

func TestEntangleRoundtrip(t *testing.T) {
	e := New(DefaultConfig())
	src, dst := isa.Addr(0x1000), isa.Addr(0x9000)
	e.OnLineRetired(access(src, 100))
	// dst missed with latency 50: the source ~50 cycles earlier is src.
	e.OnLineRetired(missAt(dst, 150, 50))
	reqs := e.OnFTQInsert(src, nil)
	if len(reqs) != 1 || reqs[0].Line != dst {
		t.Fatalf("entangled lookup: %+v", reqs)
	}
}

func TestSourceSelectionPicksClosestLatency(t *testing.T) {
	e := New(DefaultConfig())
	far, near := isa.Addr(0x1000), isa.Addr(0x2000)
	e.OnLineRetired(access(far, 10))
	e.OnLineRetired(access(near, 90))
	// Miss at 100 with latency 12: want the entry nearest cycle 88 (near).
	e.OnLineRetired(missAt(0x9000, 100, 12))
	if got := e.OnFTQInsert(near, nil); len(got) != 1 {
		t.Fatalf("nearest-latency source not entangled: %+v", got)
	}
	if got := e.OnFTQInsert(far, nil); len(got) != 0 {
		t.Fatalf("distant source wrongly entangled: %+v", got)
	}
}

func TestSelfEntangleSkipped(t *testing.T) {
	e := New(DefaultConfig())
	line := isa.Addr(0x4000)
	e.OnLineRetired(access(line, 100))
	e.OnLineRetired(missAt(line, 105, 5))
	if got := e.OnFTQInsert(line, nil); len(got) != 0 {
		t.Fatalf("line entangled with itself: %+v", got)
	}
}

func TestDstCapSlides(t *testing.T) {
	c := DefaultConfig()
	c.TargetsPerEntry = 2
	e := New(c)
	src := isa.Addr(0x1000)
	for i := 1; i <= 3; i++ {
		e.OnLineRetired(access(src, int64(i*1000)))
		e.OnLineRetired(missAt(isa.Addr(0x9000+i*64), int64(i*1000+20), 20))
	}
	reqs := e.OnFTQInsert(src, nil)
	if len(reqs) != 2 {
		t.Fatalf("dst count %d, want cap 2", len(reqs))
	}
	for _, r := range reqs {
		if r.Line == 0x9040 {
			t.Fatal("oldest dst not displaced")
		}
	}
}

func TestDuplicateDstNotAdded(t *testing.T) {
	e := New(DefaultConfig())
	src, dst := isa.Addr(0x1000), isa.Addr(0x9000)
	for i := 0; i < 3; i++ {
		e.OnLineRetired(access(src, int64(100+i*200)))
		e.OnLineRetired(missAt(dst, int64(150+i*200), 50))
	}
	if got := e.OnFTQInsert(src, nil); len(got) != 1 {
		t.Fatalf("duplicate dsts stored: %+v", got)
	}
}

func TestAnalyticalUnbounded(t *testing.T) {
	e := New(AnalyticalConfig())
	if e.Name() != "eip-analytical" {
		t.Fatalf("name %q", e.Name())
	}
	// Thousands of distinct sources must all be retained.
	for i := 0; i < 5000; i++ {
		src := isa.Addr(0x100000 + i*64)
		e.OnLineRetired(access(src, int64(i*10)))
		e.OnLineRetired(missAt(isa.Addr(0x900000+i*64), int64(i*10+5), 5))
	}
	hits := 0
	for i := 0; i < 5000; i++ {
		if got := e.OnFTQInsert(isa.Addr(0x100000+i*64), nil); len(got) > 0 {
			hits++
		}
	}
	if hits < 4900 {
		t.Fatalf("analytical table lost entries: %d/5000 resident", hits)
	}
}

func TestBoundedTableEvicts(t *testing.T) {
	c := DefaultConfig()
	c.Sets = 4
	c.Ways = 2
	e := New(c)
	for i := 0; i < 64; i++ {
		src := isa.Addr(0x100000 + i*64)
		e.OnLineRetired(access(src, int64(i*10)))
		e.OnLineRetired(missAt(isa.Addr(0x900000+i*64), int64(i*10+5), 5))
	}
	hits := 0
	for i := 0; i < 64; i++ {
		if got := e.OnFTQInsert(isa.Addr(0x100000+i*64), nil); len(got) > 0 {
			hits++
		}
	}
	if hits > 8 {
		t.Fatalf("%d sources resident in an 8-entry table", hits)
	}
}

func TestStorageAccounting(t *testing.T) {
	kb := DefaultConfig().StorageKB()
	if kb < 40 || kb > 50 {
		t.Fatalf("EIP(46)-class storage %.1fKB", kb)
	}
	if AnalyticalConfig().StorageKB() != 237 {
		t.Fatal("analytical nominal storage changed")
	}
}

func TestNoSourceWhenHistoryEmpty(t *testing.T) {
	e := New(DefaultConfig())
	e.OnLineRetired(missAt(0x9000, 100, 50))
	if e.Stats.NoSource != 1 {
		t.Fatalf("NoSource = %d", e.Stats.NoSource)
	}
}

func TestResetStatsKeepsTable(t *testing.T) {
	e := New(DefaultConfig())
	e.OnLineRetired(access(0x1000, 100))
	e.OnLineRetired(missAt(0x9000, 150, 50))
	e.ResetStats()
	if e.Stats.Entangled != 0 {
		t.Fatal("stats not reset")
	}
	if got := e.OnFTQInsert(0x1000, nil); len(got) != 1 {
		t.Fatal("table lost on stats reset")
	}
}
