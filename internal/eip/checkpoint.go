package eip

import (
	"fmt"
	"sort"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
)

// CaptureCheckpoint implements prefetch.Checkpointer: the commit-order
// history ring, the bounded entangling table or the analytical unbounded
// map (key-sorted — checkpoint bytes must not depend on Go map iteration
// order), and the stats.
func (e *EIP) CaptureCheckpoint() checkpoint.PrefetcherState {
	st := &checkpoint.EIPState{
		Hist:  make([]checkpoint.EIPHistEntry, len(e.hist)),
		Head:  e.head,
		Size:  e.size,
		Tick:  e.tick,
		Stats: checkpoint.EIPStats(e.Stats),
	}
	for i, h := range e.hist {
		st.Hist[i] = checkpoint.EIPHistEntry{Line: h.line, Cycle: h.cycle}
	}
	if e.sets != nil {
		st.Sets = make([][]checkpoint.EIPEntryState, len(e.sets))
		for si, set := range e.sets {
			ws := make([]checkpoint.EIPEntryState, len(set))
			for wi, t := range set {
				ws[wi] = checkpoint.EIPEntryState{
					Valid: t.valid,
					Tag:   t.tag,
					LRU:   t.lru,
					Dsts:  append([]isa.Addr(nil), t.dsts...),
				}
			}
			st.Sets[si] = ws
		}
	}
	if e.anal != nil {
		srcs := make([]isa.Addr, 0, len(e.anal))
		for src := range e.anal {
			srcs = append(srcs, src)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		st.Anal = make([]checkpoint.EIPAnalEntry, 0, len(srcs))
		for _, src := range srcs {
			st.Anal = append(st.Anal, checkpoint.EIPAnalEntry{
				Src:  src,
				Dsts: append([]isa.Addr(nil), e.anal[src]...),
			})
		}
	}
	return checkpoint.PrefetcherState{Kind: "eip", EIP: st}
}

// RestoreCheckpoint implements prefetch.Checkpointer. The receiver must
// have been built with the same configuration (history depth, table
// geometry, bounded vs analytical mode).
func (e *EIP) RestoreCheckpoint(st checkpoint.PrefetcherState) error {
	if st.Kind != "eip" || st.EIP == nil {
		return fmt.Errorf("eip: checkpoint kind %q, prefetcher is eip", st.Kind)
	}
	s := st.EIP
	if len(s.Hist) != len(e.hist) {
		return fmt.Errorf("eip: checkpoint history depth %d, prefetcher has %d", len(s.Hist), len(e.hist))
	}
	if (s.Sets != nil) != (e.sets != nil) || len(s.Sets) != len(e.sets) {
		return fmt.Errorf("eip: checkpoint has %d table sets, prefetcher has %d", len(s.Sets), len(e.sets))
	}
	if (s.Anal != nil) && e.anal == nil {
		return fmt.Errorf("eip: checkpoint is analytical, prefetcher is bounded")
	}
	for i, h := range s.Hist {
		e.hist[i] = histEntry{line: h.Line, cycle: h.Cycle}
	}
	e.head = s.Head
	e.size = s.Size
	for si, ws := range s.Sets {
		if len(ws) != len(e.sets[si]) {
			return fmt.Errorf("eip: checkpoint set %d has %d ways, prefetcher has %d", si, len(ws), len(e.sets[si]))
		}
		for wi, es := range ws {
			t := &e.sets[si][wi]
			t.valid = es.Valid
			t.tag = es.Tag
			t.lru = es.LRU
			t.dsts = append(t.dsts[:0], es.Dsts...)
		}
	}
	if e.anal != nil {
		clear(e.anal)
		for _, a := range s.Anal {
			e.anal[a.Src] = append([]isa.Addr(nil), a.Dsts...)
		}
	}
	e.tick = s.Tick
	e.Stats = Stats(s.Stats)
	return nil
}
