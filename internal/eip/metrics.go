package eip

import "pdip/internal/metrics"

// RegisterMetrics implements metrics.Registrant, publishing the entangling
// table's accounting under "eip". Bindings are snapshot-time views over
// Stats, so ResetStats is reflected automatically.
func (e *EIP) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("eip.entangled", func() uint64 { return e.Stats.Entangled })
	reg.CounterFunc("eip.no_source", func() uint64 { return e.Stats.NoSource })
	reg.CounterFunc("eip.lookups", func() uint64 { return e.Stats.Lookups })
	reg.CounterFunc("eip.hits", func() uint64 { return e.Stats.Hits })
	reg.Gauge("eip.storage_kb").Set(e.StorageKB())
}
