package fnlmma

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

func miss(line isa.Addr) prefetch.RetireEvent {
	return prefetch.RetireEvent{Line: line, Missed: true}
}

func TestFNLPrefetchesWorthyNeighbours(t *testing.T) {
	f := New(DefaultConfig())
	base := isa.Addr(0x9000)
	// Train: accesses to base+1 and base+3 lines mark them worthy
	// relative to base.
	f.OnFTQInsert(base+1*isa.LineSize, nil)
	f.OnFTQInsert(base+3*isa.LineSize, nil)
	f.OnLineRetired(miss(base))
	reqs := f.TakePending(nil)
	got := map[isa.Addr]bool{}
	for _, q := range reqs {
		got[q.Line] = true
	}
	if !got[base+1*isa.LineSize] || !got[base+3*isa.LineSize] {
		t.Fatalf("worthy neighbours not prefetched: %+v", reqs)
	}
	if got[base+2*isa.LineSize] {
		t.Fatal("unworthy neighbour prefetched")
	}
}

func TestMMAChainsMisses(t *testing.T) {
	c := DefaultConfig()
	c.Distance = 2
	f := New(c)
	// Misses A, B, C, D: training links A→C and B→D.
	a, b, cc, d := isa.Addr(0x10000), isa.Addr(0x20000), isa.Addr(0x30000), isa.Addr(0x40000)
	for _, l := range []isa.Addr{a, b, cc, d} {
		f.OnLineRetired(miss(l))
	}
	f.TakePending(nil)
	// Re-miss A: MMA must now predict C.
	f.OnLineRetired(miss(a))
	reqs := f.TakePending(nil)
	found := false
	for _, q := range reqs {
		if q.Line == cc {
			found = true
		}
	}
	if !found {
		t.Fatalf("miss-ahead chain A→C not learned: %+v", reqs)
	}
	if f.Stats.MMAEmitted == 0 {
		t.Fatal("MMA emission not counted")
	}
}

func TestHitsGenerateNothing(t *testing.T) {
	f := New(DefaultConfig())
	f.OnLineRetired(prefetch.RetireEvent{Line: 0x9000, Missed: false})
	if got := f.TakePending(nil); len(got) != 0 {
		t.Fatal("hit generated prefetches")
	}
}

func TestStorageAndName(t *testing.T) {
	f := New(DefaultConfig())
	if f.Name() != "fnl+mma" {
		t.Fatalf("name %q", f.Name())
	}
	if kb := f.StorageKB(); kb < 10 || kb > 64 {
		t.Fatalf("storage %.1fKB outside the expected class", kb)
	}
}

func TestResetStats(t *testing.T) {
	f := New(DefaultConfig())
	f.OnFTQInsert(0x40, nil)
	f.ResetStats()
	if f.Stats.Trained != 0 {
		t.Fatal("stats not reset")
	}
}
