package fnlmma

import "pdip/internal/metrics"

// RegisterMetrics implements metrics.Registrant, publishing the FNL+MMA
// training/emission accounting under "fnlmma". Bindings are snapshot-time
// views over Stats, so ResetStats is reflected automatically.
func (f *FNLMMA) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("fnlmma.fnl_emitted", func() uint64 { return f.Stats.FNLEmitted })
	reg.CounterFunc("fnlmma.mma_emitted", func() uint64 { return f.Stats.MMAEmitted })
	reg.CounterFunc("fnlmma.trained", func() uint64 { return f.Stats.Trained })
	reg.Gauge("fnlmma.storage_kb").Set(f.StorageKB())
}
