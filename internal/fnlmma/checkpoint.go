package fnlmma

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// CaptureCheckpoint implements prefetch.Checkpointer: the footprint worth
// bits, the miss-ahead table, the miss ring, pending retire-time
// requests, and the stats.
func (f *FNLMMA) CaptureCheckpoint() checkpoint.PrefetcherState {
	return checkpoint.PrefetcherState{
		Kind: "fnlmma",
		FNLMMA: &checkpoint.FNLMMAState{
			Worth:    append([]uint8(nil), f.worth...),
			MMATag:   append([]uint32(nil), f.mmaTag...),
			MMADst:   append([]isa.Addr(nil), f.mmaDst...),
			MissRing: append([]isa.Addr(nil), f.missRing...),
			MissHead: f.missHead,
			Pending:  prefetch.CaptureRequests(f.pending),
			Stats:    checkpoint.FNLMMAStats(f.Stats),
		},
	}
}

// RestoreCheckpoint implements prefetch.Checkpointer. The receiver must
// have been built with the same table sizes.
func (f *FNLMMA) RestoreCheckpoint(st checkpoint.PrefetcherState) error {
	if st.Kind != "fnlmma" || st.FNLMMA == nil {
		return fmt.Errorf("fnlmma: checkpoint kind %q, prefetcher is fnlmma", st.Kind)
	}
	s := st.FNLMMA
	if len(s.Worth) != len(f.worth) || len(s.MMATag) != len(f.mmaTag) ||
		len(s.MMADst) != len(f.mmaDst) || len(s.MissRing) != len(f.missRing) {
		return fmt.Errorf("fnlmma: checkpoint table sizes (%d,%d,%d,%d) do not match prefetcher (%d,%d,%d,%d)",
			len(s.Worth), len(s.MMATag), len(s.MMADst), len(s.MissRing),
			len(f.worth), len(f.mmaTag), len(f.mmaDst), len(f.missRing))
	}
	copy(f.worth, s.Worth)
	copy(f.mmaTag, s.MMATag)
	copy(f.mmaDst, s.MMADst)
	copy(f.missRing, s.MissRing)
	f.missHead = s.MissHead
	f.pending = prefetch.RestoreRequests(f.pending[:0], s.Pending)
	f.Stats = Stats(s.Stats)
	return nil
}
