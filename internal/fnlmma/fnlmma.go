// Package fnlmma implements a prefetcher inspired by Seznec's FNL+MMA
// (the IPC-1 winner the paper's §8 surveys): Footprint Next Line plus
// Multiple Miss Ahead.
//
//   - FNL: when a line misses, the next few sequential lines are judged
//     "worth" prefetching by a footprint table of per-line worth bits,
//     trained by whether those neighbours were actually used.
//   - MMA: a miss-ahead table chains miss N to miss N+Distance, so seeing
//     one miss prefetches the misses expected shortly after it — enough
//     lead to hide the fill latency.
//
// This is an honest simplification of the championship design (no shadow
// I-cache; worth is trained from retirement instead), sized to the same
// storage class as the bounded prefetchers in this repository.
package fnlmma

import (
	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// Config sizes the two tables.
type Config struct {
	// WorthEntries sizes the FNL footprint table (direct-mapped).
	WorthEntries int
	// NextLines is the FNL degree (the paper's FNL looks 5 ahead).
	NextLines int
	// MMAEntries sizes the miss-ahead table (direct-mapped).
	MMAEntries int
	// Distance is how many misses ahead MMA predicts.
	Distance int
}

// DefaultConfig returns a ≈40KB-class configuration.
func DefaultConfig() Config {
	return Config{WorthEntries: 1 << 13, NextLines: 4, MMAEntries: 1 << 12, Distance: 4}
}

// StorageKB reports the metadata budget: worth bits plus full 34-bit
// targets in the MMA table.
func (c Config) StorageKB() float64 {
	bits := c.WorthEntries*c.NextLines + c.MMAEntries*(34+10)
	return float64(bits) / 8192.0
}

// Stats counts FNL+MMA events.
type Stats struct {
	FNLEmitted uint64
	MMAEmitted uint64
	Trained    uint64
}

// FNLMMA is the prefetcher.
type FNLMMA struct {
	cfg Config

	// worth holds per-line per-offset worth bits (bit k: line+k+1 useful).
	worth []uint8
	// mma maps a miss line to the line that missed Distance misses later.
	mmaTag []uint32
	mmaDst []isa.Addr
	// missRing holds the last Distance miss lines.
	missRing []isa.Addr
	missHead int

	pending []prefetch.Request

	Stats Stats
}

// New builds an FNL+MMA instance.
func New(cfg Config) *FNLMMA {
	if cfg.WorthEntries == 0 {
		cfg = DefaultConfig()
	}
	return &FNLMMA{
		cfg:      cfg,
		worth:    make([]uint8, cfg.WorthEntries),
		mmaTag:   make([]uint32, cfg.MMAEntries),
		mmaDst:   make([]isa.Addr, cfg.MMAEntries),
		missRing: make([]isa.Addr, cfg.Distance),
	}
}

// Name implements prefetch.Prefetcher.
func (f *FNLMMA) Name() string { return "fnl+mma" }

// StorageKB implements prefetch.Prefetcher.
func (f *FNLMMA) StorageKB() float64 { return f.cfg.StorageKB() }

func (f *FNLMMA) worthIdx(line isa.Addr) int {
	return int((uint64(line) >> isa.LineShift) % uint64(f.cfg.WorthEntries))
}

func (f *FNLMMA) mmaIdx(line isa.Addr) (int, uint32) {
	ln := uint64(line) >> isa.LineShift
	return int(ln % uint64(f.cfg.MMAEntries)), uint32(ln/uint64(f.cfg.MMAEntries)) & 0x3ff
}

// OnFTQInsert implements prefetch.Prefetcher: accesses train the footprint
// worth bits of their predecessors (the neighbour was used).
func (f *FNLMMA) OnFTQInsert(block isa.Addr, out []prefetch.Request) []prefetch.Request {
	line := block.Line()
	for k := 1; k <= f.cfg.NextLines; k++ {
		prev := line - isa.Addr(k*isa.LineSize)
		f.worth[f.worthIdx(prev)] |= 1 << (k - 1)
		f.Stats.Trained++
	}
	return out
}

// OnLineRetired implements prefetch.Prefetcher: misses fire FNL (worthy
// next lines) and MMA (the recorded miss Distance ahead), and train the
// miss-ahead chain.
func (f *FNLMMA) OnLineRetired(ev prefetch.RetireEvent) {
	if !ev.Missed {
		return
	}
	line := ev.Line

	// FNL: prefetch the worthy neighbours.
	w := f.worth[f.worthIdx(line)]
	for k := 1; k <= f.cfg.NextLines; k++ {
		if w&(1<<(k-1)) != 0 {
			f.pending = append(f.pending, prefetch.Request{Line: line + isa.Addr(k*isa.LineSize)})
			f.Stats.FNLEmitted++
		}
	}

	// MMA: prefetch the miss expected Distance misses from now.
	idx, tag := f.mmaIdx(line)
	if f.mmaTag[idx] == tag && f.mmaDst[idx] != 0 {
		f.pending = append(f.pending, prefetch.Request{Line: f.mmaDst[idx]})
		f.Stats.MMAEmitted++
	}

	// Train: the miss Distance-back now knows its successor.
	old := f.missRing[f.missHead]
	if old != 0 {
		oi, ot := f.mmaIdx(old)
		f.mmaTag[oi] = ot
		f.mmaDst[oi] = line
	}
	f.missRing[f.missHead] = line
	f.missHead = (f.missHead + 1) % len(f.missRing)
}

// TakePending implements prefetch.RetireEmitter.
func (f *FNLMMA) TakePending(out []prefetch.Request) []prefetch.Request {
	out = append(out, f.pending...)
	f.pending = f.pending[:0]
	return out
}

// ResetStats zeroes counters, keeping table state warm.
func (f *FNLMMA) ResetStats() { f.Stats = Stats{} }
