// Package backend models a deliberately simple out-of-order back-end: a
// reorder buffer whose entries complete independently (issue bandwidth and
// register dependencies are not modelled — memory latency dominates the
// workloads of interest) and retire in order, up to the retire width, once
// execution is done. This is the minimal back-end that still produces the
// signals the paper's front-end machinery needs: in-order retirement (the
// FEC conditions are checked at retire), ROB-full back-pressure (back-end
// bound slots), and back-end starvation (issue-queue-empty proxy).
package backend

import "pdip/internal/frontend"

// Stats aggregates ROB-level accounting: allocations, in-order
// retirements, and wrong-path squashes.
type Stats struct {
	Pushed   uint64
	Retired  uint64
	Squashed uint64
}

// ROB is the reorder buffer.
type ROB struct {
	entries []*frontend.Uop
	head    int
	count   int

	Stats Stats
}

// NewROB returns a ROB with the given capacity (Table 1: 512).
func NewROB(capacity int) *ROB {
	if capacity <= 0 {
		capacity = 512
	}
	return &ROB{entries: make([]*frontend.Uop, capacity)}
}

// Len returns the current occupancy.
func (r *ROB) Len() int { return r.count }

// Capacity returns the configured size.
func (r *ROB) Capacity() int { return len(r.entries) }

// Full reports whether allocation must stall.
func (r *ROB) Full() bool { return r.count == len(r.entries) }

// Empty reports an empty ROB (the back-end-starvation signal).
func (r *ROB) Empty() bool { return r.count == 0 }

// Push allocates a uop; it panics when full (decode checks Full first).
func (r *ROB) Push(u *frontend.Uop) {
	if r.Full() {
		panic("backend: ROB overflow")
	}
	r.entries[(r.head+r.count)%len(r.entries)] = u
	r.count++
	r.Stats.Pushed++
}

// Head returns the oldest uop without removing it, or nil when empty.
func (r *ROB) Head() *frontend.Uop {
	if r.count == 0 {
		return nil
	}
	return r.entries[r.head]
}

// Retire removes and returns up to width in-order uops whose execution
// completed by cycle now, appending them to out.
func (r *ROB) Retire(now int64, width int, out []*frontend.Uop) []*frontend.Uop {
	for n := 0; n < width && r.count > 0; n++ {
		u := r.entries[r.head]
		if u.DoneAt > now {
			break
		}
		out = append(out, u)
		r.entries[r.head] = nil
		r.head = (r.head + 1) % len(r.entries)
		r.count--
		r.Stats.Retired++
	}
	return out
}

// SquashWrongPath removes every wrong-path uop. Wrong-path uops are always
// a contiguous suffix (everything fetched after the mispredicted branch),
// so squash pops from the tail. Each squashed uop is handed to onSquash
// (when non-nil) before its slot is cleared, so the owner can recycle its
// storage. It returns the number squashed.
func (r *ROB) SquashWrongPath(onSquash func(*frontend.Uop)) int {
	n := 0
	for r.count > 0 {
		tail := (r.head + r.count - 1) % len(r.entries)
		if !r.entries[tail].WrongPath {
			break
		}
		if onSquash != nil {
			onSquash(r.entries[tail])
		}
		r.entries[tail] = nil
		r.count--
		n++
	}
	r.Stats.Squashed += uint64(n)
	return n
}
