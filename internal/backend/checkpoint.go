package backend

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/frontend"
)

// ForEach calls fn for every buffered uop in order, oldest first
// (checkpointing walks ROB contents with it).
func (r *ROB) ForEach(fn func(*frontend.Uop)) {
	for i := 0; i < r.count; i++ {
		fn(r.entries[(r.head+i)%len(r.entries)])
	}
}

// CaptureCheckpoint captures the buffered uops oldest-first plus the
// allocation/retire/squash stats. epID maps episode pointers to indices
// in the checkpoint's deduplicated episode table.
func (r *ROB) CaptureCheckpoint(epID func(*frontend.LineEpisode) int) checkpoint.ROBState {
	st := checkpoint.ROBState{
		Uops:  make([]checkpoint.UopState, 0, r.count),
		Stats: checkpoint.ROBStats(r.Stats),
	}
	r.ForEach(func(u *frontend.Uop) {
		st.Uops = append(st.Uops, u.CaptureCheckpoint(epID))
	})
	return st
}

// RestoreCheckpoint replaces the ROB's contents with the captured uops,
// rebuilding the ring at head 0 — ring phase is representation, not
// simulated state. newUop supplies uop storage (the core's pool
// allocator) so restored uops participate in recycling like fresh ones.
// Entries are installed directly rather than via Push so Stats.Pushed
// stays exactly as captured.
func (r *ROB) RestoreCheckpoint(st checkpoint.ROBState, eps []*frontend.LineEpisode, newUop func() *frontend.Uop) error {
	if len(st.Uops) > len(r.entries) {
		return fmt.Errorf("backend: checkpoint has %d ROB entries, capacity is %d", len(st.Uops), len(r.entries))
	}
	for i := range r.entries {
		r.entries[i] = nil
	}
	r.head = 0
	r.count = len(st.Uops)
	for i := range st.Uops {
		u := newUop()
		if err := u.RestoreCheckpoint(st.Uops[i], eps); err != nil {
			return err
		}
		r.entries[i] = u
	}
	r.Stats = Stats(st.Stats)
	return nil
}
