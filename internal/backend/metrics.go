package backend

import "pdip/internal/metrics"

// RegisterMetrics publishes the ROB's accounting under "backend.rob".
// Bindings are snapshot-time views over Stats, so a caller zeroing Stats
// (Core.ResetStats) resets them implicitly.
func (r *ROB) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("backend.rob.pushed", func() uint64 { return r.Stats.Pushed })
	reg.CounterFunc("backend.rob.retired", func() uint64 { return r.Stats.Retired })
	reg.CounterFunc("backend.rob.squashed", func() uint64 { return r.Stats.Squashed })
	reg.Gauge("backend.rob.capacity").Set(float64(r.Capacity()))
}
