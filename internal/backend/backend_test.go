package backend

import (
	"testing"

	"pdip/internal/frontend"
)

func uop(seq uint64, done int64, wrong bool) *frontend.Uop {
	return &frontend.Uop{Seq: seq, DoneAt: done, WrongPath: wrong}
}

func TestROBInOrderRetire(t *testing.T) {
	r := NewROB(8)
	r.Push(uop(1, 10, false))
	r.Push(uop(2, 5, false)) // completes earlier but must retire second
	out := r.Retire(7, 4, nil)
	if len(out) != 0 {
		t.Fatalf("retired %d before head completed", len(out))
	}
	out = r.Retire(10, 4, nil)
	if len(out) != 2 || out[0].Seq != 1 || out[1].Seq != 2 {
		t.Fatalf("retire order wrong: %v", out)
	}
}

func TestROBRetireWidth(t *testing.T) {
	r := NewROB(16)
	for i := 1; i <= 10; i++ {
		r.Push(uop(uint64(i), 0, false))
	}
	out := r.Retire(5, 4, nil)
	if len(out) != 4 {
		t.Fatalf("retired %d, want width 4", len(out))
	}
	if r.Len() != 6 {
		t.Fatalf("occupancy %d", r.Len())
	}
}

func TestROBFullAndPanic(t *testing.T) {
	r := NewROB(2)
	r.Push(uop(1, 0, false))
	r.Push(uop(2, 0, false))
	if !r.Full() {
		t.Fatal("not full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	r.Push(uop(3, 0, false))
}

func TestSquashWrongPathSuffix(t *testing.T) {
	r := NewROB(8)
	r.Push(uop(1, 0, false))
	r.Push(uop(2, 0, false))
	r.Push(uop(3, 0, true))
	r.Push(uop(4, 0, true))
	if n := r.SquashWrongPath(nil); n != 2 {
		t.Fatalf("squashed %d, want 2", n)
	}
	if r.Len() != 2 {
		t.Fatalf("occupancy %d after squash", r.Len())
	}
	out := r.Retire(100, 8, nil)
	for _, u := range out {
		if u.WrongPath {
			t.Fatal("wrong-path uop retired")
		}
	}
}

func TestSquashEmptyAndAllWrong(t *testing.T) {
	r := NewROB(4)
	if r.SquashWrongPath(nil) != 0 {
		t.Fatal("squash on empty ROB")
	}
	r.Push(uop(1, 0, true))
	r.Push(uop(2, 0, true))
	if r.SquashWrongPath(nil) != 2 || !r.Empty() {
		t.Fatal("all-wrong squash failed")
	}
}

func TestHead(t *testing.T) {
	r := NewROB(4)
	if r.Head() != nil {
		t.Fatal("head of empty ROB")
	}
	r.Push(uop(7, 0, false))
	if r.Head().Seq != 7 {
		t.Fatal("wrong head")
	}
}

func TestROBWrapAround(t *testing.T) {
	r := NewROB(3)
	seq := uint64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			seq++
			r.Push(uop(seq, 0, false))
		}
		out := r.Retire(1, 3, nil)
		if len(out) != 3 {
			t.Fatalf("round %d retired %d", round, len(out))
		}
		for i := 1; i < len(out); i++ {
			if out[i].Seq != out[i-1].Seq+1 {
				t.Fatal("retire order broken across wrap")
			}
		}
	}
}
