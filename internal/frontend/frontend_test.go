package frontend

import (
	"testing"

	"pdip/internal/bpu"
	"pdip/internal/cfg"
	"pdip/internal/isa"
	"pdip/internal/trace"
)

// --- FTQ ---

func TestFTQBasics(t *testing.T) {
	q := NewFTQ(3)
	if q.Depth() != 3 || q.Len() != 0 || q.Full() {
		t.Fatal("bad initial state")
	}
	for i := 0; i < 3; i++ {
		q.Push(&FTQEntry{Start: isa.Addr(i)})
	}
	if !q.Full() {
		t.Fatal("not full after 3 pushes")
	}
	for i := 0; i < 3; i++ {
		e := q.Pop()
		if e == nil || e.Start != isa.Addr(i) {
			t.Fatalf("pop %d: %+v", i, e)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop on empty returned an entry")
	}
}

func TestFTQOverflowPanics(t *testing.T) {
	q := NewFTQ(1)
	q.Push(&FTQEntry{})
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Push(&FTQEntry{})
}

func TestFTQFlushAndContains(t *testing.T) {
	q := NewFTQ(4)
	q.Push(&FTQEntry{Lines: []isa.Addr{0x40, 0x80}})
	q.Push(&FTQEntry{Lines: []isa.Addr{0x1c0}})
	if !q.Contains(0x80) || !q.Contains(0x1c0) || q.Contains(0x200) {
		t.Fatal("Contains wrong")
	}
	q.Flush()
	if q.Len() != 0 || q.Contains(0x80) {
		t.Fatal("flush did not empty the queue")
	}
}

func TestFTQWrapAround(t *testing.T) {
	q := NewFTQ(2)
	for i := 0; i < 10; i++ {
		q.Push(&FTQEntry{Start: isa.Addr(i)})
		if e := q.Pop(); e.Start != isa.Addr(i) {
			t.Fatalf("wrap iteration %d: %v", i, e.Start)
		}
	}
}

// --- IAG ---

func testIAG(seed uint64) (*IAG, *cfg.Program) {
	p := cfg.DefaultParams()
	p.Seed = seed
	p.NumFuncs = 96
	prog := cfg.MustGenerate(p)
	b := bpu.New(bpu.DefaultConfig())
	w := trace.New(prog, seed)
	return NewIAG(b, w, 16), prog
}

func TestIAGEntriesEndAtBranches(t *testing.T) {
	iag, _ := testIAG(1)
	for i := 0; i < 2000; i++ {
		e := iag.NextEntry()
		if len(e.Insts) == 0 {
			t.Fatal("empty entry")
		}
		for j, in := range e.Insts[:len(e.Insts)-1] {
			if in.Kind.IsBranch() {
				t.Fatalf("entry %d has a branch at non-terminal position %d", i, j)
			}
		}
		last := e.Insts[len(e.Insts)-1]
		if e.HasBranch != last.Kind.IsBranch() {
			t.Fatalf("HasBranch=%v but terminator kind=%v", e.HasBranch, last.Kind)
		}
		if len(e.Insts) > 16 {
			t.Fatalf("entry exceeds cap: %d instructions", len(e.Insts))
		}
	}
}

func TestIAGLinesCoverInstructions(t *testing.T) {
	iag, _ := testIAG(2)
	for i := 0; i < 2000; i++ {
		e := iag.NextEntry()
		lineSet := map[isa.Addr]struct{}{}
		for _, l := range e.Lines {
			lineSet[l] = struct{}{}
		}
		for _, in := range e.Insts {
			if _, ok := lineSet[in.PC.Line()]; !ok {
				t.Fatalf("instruction line %v missing from entry lines %v", in.PC.Line(), e.Lines)
			}
			end := in.PC + isa.Addr(in.Size) - 1
			if _, ok := lineSet[end.Line()]; !ok {
				t.Fatalf("spill line %v missing from entry lines", end.Line())
			}
		}
	}
}

func TestIAGMispredictForksWrongPath(t *testing.T) {
	iag, _ := testIAG(3)
	found := false
	for i := 0; i < 20000 && !found; i++ {
		e := iag.NextEntry()
		if e.Mispredict {
			found = true
			if e.WrongPath {
				t.Fatal("the mispredicted entry itself is marked wrong-path")
			}
			if e.CorrectTarget == 0 {
				t.Fatal("mispredict without a correct target")
			}
			if !iag.OnWrongPath() {
				t.Fatal("IAG did not enter wrong-path mode")
			}
			// Subsequent entries are wrong-path until resteer.
			n := iag.NextEntry()
			if !n.WrongPath {
				t.Fatal("entry after mispredict not wrong-path")
			}
			if n.Mispredict {
				t.Fatal("nested mispredict tracked on the wrong path")
			}
			iag.Resteer()
			if iag.OnWrongPath() {
				t.Fatal("Resteer did not clear wrong-path mode")
			}
			// The next correct-path entry must start at the resteer target.
			c := iag.NextEntry()
			if c.WrongPath {
				t.Fatal("entry after resteer still wrong-path")
			}
			if c.Start != e.CorrectTarget {
				t.Fatalf("resumed at %v, want %v", c.Start, e.CorrectTarget)
			}
		}
	}
	if !found {
		t.Fatal("no mispredict in 20000 entries")
	}
}

func TestIAGPathContinuity(t *testing.T) {
	// On the correct path (resteering immediately after each mispredict),
	// consecutive entries must be contiguous in control flow.
	iag, _ := testIAG(4)
	var prev *FTQEntry
	for i := 0; i < 5000; i++ {
		e := iag.NextEntry()
		if prev != nil {
			last := prev.Insts[len(prev.Insts)-1]
			want := last.NextPC()
			if prev.Mispredict {
				want = prev.CorrectTarget
			}
			if e.Start != want {
				t.Fatalf("entry %d starts at %v, want %v", i, e.Start, want)
			}
		}
		prev = e
		if e.Mispredict {
			iag.Resteer()
		}
	}
}

func TestIAGBTBMissClassification(t *testing.T) {
	iag, _ := testIAG(5)
	sawBTB, sawEarly := false, false
	for i := 0; i < 30000 && !(sawBTB && sawEarly); i++ {
		e := iag.NextEntry()
		if e.Mispredict {
			if e.Cause == ResteerBTBMiss {
				sawBTB = true
				if e.ResolveAtDecode {
					sawEarly = true
				}
			}
			iag.Resteer()
		}
	}
	if !sawBTB {
		t.Fatal("no BTB-miss resteers observed")
	}
	if !sawEarly {
		t.Fatal("no decode-resolved (early correction) resteers observed")
	}
}

func TestResteerCauseStrings(t *testing.T) {
	for _, c := range []ResteerCause{ResteerNone, ResteerMispredict, ResteerBTBMiss, ResteerReturn} {
		if c.String() == "" {
			t.Fatalf("cause %d has empty name", c)
		}
	}
}
