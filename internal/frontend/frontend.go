// Package frontend models the decoupled front-end (FDIP) of the paper's
// baseline: the instruction address generator (IAG) that walks the
// BPU-predicted stream one basic block per cycle, the fetch target queue
// (FTQ) that decouples prediction from fetch and drives prefetching, and
// the per-line fetch episodes that feed the FEC machinery.
package frontend

import (
	"pdip/internal/bpu"
	"pdip/internal/invariant"
	"pdip/internal/isa"
	"pdip/internal/mem"
	"pdip/internal/trace"
)

// ResteerCause classifies front-end resteers for stats and PDIP triggers.
type ResteerCause uint8

const (
	// ResteerNone means no resteer.
	ResteerNone ResteerCause = iota
	// ResteerMispredict is a conditional direction or indirect target
	// mispredict.
	ResteerMispredict
	// ResteerBTBMiss is a taken branch that was invisible to the IAG.
	ResteerBTBMiss
	// ResteerReturn is a return-target mispredict.
	ResteerReturn
)

func (c ResteerCause) String() string {
	switch c {
	case ResteerMispredict:
		return "mispredict"
	case ResteerBTBMiss:
		return "btb-miss"
	case ResteerReturn:
		return "return"
	default:
		return "none"
	}
}

// LineEpisode is one demand-fetch episode of an instruction cache line:
// the unit the FEC conditions are evaluated over. Episodes are created
// when the IFU issues the demand access and processed once, when the first
// instruction they delivered retires.
type LineEpisode struct {
	// Line is the cache line address.
	Line isa.Addr
	// WrongPath marks episodes created for squashed fetches.
	WrongPath bool
	// Missed reports an L1I demand miss; ServedBy is the filling level.
	Missed   bool
	ServedBy mem.Level
	// FetchCycle is the demand issue cycle; DoneCycle its completion.
	FetchCycle, DoneCycle int64
	// Starve counts decode-starvation cycles attributed to this episode.
	Starve int
	// BackendEmpty records an empty back-end during the starvation.
	BackendEmpty bool
	// WasPrefetch marks a demand access that consumed a prefetched line.
	WasPrefetch bool
	// Processed marks retire-time FEC handling as done.
	Processed bool
	// ResteerTrigger is the trigger block (line) of the most recent
	// resteer when this episode was fetched in its shadow, else 0.
	ResteerTrigger isa.Addr
	// ResteerWasReturn marks return-caused resteer shadows.
	ResteerWasReturn bool
	// Refs counts live Uop references to this episode so the core can
	// recycle episode storage once the last referencing uop retires or is
	// squashed. It is allocator bookkeeping, not simulated state.
	Refs int32
}

// Uop is one instruction flowing through decode, the ROB, and retire.
type Uop struct {
	// Inst is the architectural instruction with its actual outcome.
	Inst isa.Inst
	// Seq is a global fetch-order sequence number.
	Seq uint64
	// WrongPath marks squashed-on-resteer instructions.
	WrongPath bool
	// Ep is the fetch episode of the line this instruction came from.
	Ep *LineEpisode
	// Mispredict marks the (correct-path) branch whose prediction was
	// wrong; resolution triggers the resteer.
	Mispredict bool
	// ResolveAtDecode resolves the resteer at decode (early correction
	// for direct branches missing in the BTB) instead of at execute.
	ResolveAtDecode bool
	// Cause classifies the resteer for stats and trigger selection.
	Cause ResteerCause
	// CorrectTarget is where the front-end must resteer to.
	CorrectTarget isa.Addr
	// TriggerBlock is the block (line) address of the FTQ entry that
	// contained this branch — the PDIP trigger key.
	TriggerBlock isa.Addr
	// IsMemOp marks instructions that access the data hierarchy.
	IsMemOp bool
	// DataLine is the data cache line touched when IsMemOp.
	DataLine isa.Addr
	// DoneAt is the execution-complete cycle, set when entering the ROB.
	DoneAt int64
	// AvailableAt is when the uop leaves the fetch/decode pipe.
	AvailableAt int64
}

// FTQEntry is one predicted basic block in the fetch target queue.
type FTQEntry struct {
	// Insts are the entry's instructions with actual outcomes.
	Insts []isa.Inst
	// Start is the address of the first instruction.
	Start isa.Addr
	// Lines are the distinct cache lines the entry spans (in order).
	Lines []isa.Addr
	// WrongPath marks entries fetched beyond an unresolved mispredict.
	WrongPath bool
	// HasBranch reports whether the entry ends in a branch.
	HasBranch bool
	// Pred is the BPU's prediction for the terminator.
	Pred bpu.Prediction
	// Mispredict, Cause, ResolveAtDecode, CorrectTarget describe the
	// pending resteer when the prediction was wrong (correct path only).
	Mispredict      bool
	Cause           ResteerCause
	ResolveAtDecode bool
	CorrectTarget   isa.Addr

	// ShadowTrigger carries the trigger block of the most recent resteer
	// for correct-path entries inserted before the FTQ refilled (the
	// "wake of a resteer" of §4.2); 0 outside any resteer shadow.
	ShadowTrigger isa.Addr
	// ShadowWasReturn marks return-caused resteer shadows.
	ShadowWasReturn bool

	// Episodes are assigned by the IFU when demand fetch issues, one per
	// line in Lines.
	Episodes []*LineEpisode
	// ReadyAt is when all lines are fetched (set by the IFU).
	ReadyAt int64
}

// FTQ is the fixed-depth fetch target queue.
type FTQ struct {
	entries []*FTQEntry
	head    int
	count   int
}

// NewFTQ returns an FTQ with the given depth (Table 1: 24 entries).
func NewFTQ(depth int) *FTQ {
	if depth <= 0 {
		depth = 24
	}
	return &FTQ{entries: make([]*FTQEntry, depth)}
}

// Len returns the number of queued entries.
func (q *FTQ) Len() int { return q.count }

// Full reports whether the FTQ can accept no more entries.
func (q *FTQ) Full() bool { return q.count == len(q.entries) }

// Depth returns the configured capacity.
func (q *FTQ) Depth() int { return len(q.entries) }

// Push appends an entry; it panics when full (the IAG checks Full first).
func (q *FTQ) Push(e *FTQEntry) {
	if q.Full() {
		panic("frontend: FTQ overflow")
	}
	q.entries[(q.head+q.count)%len(q.entries)] = e
	q.count++
	if invariant.Enabled {
		if q.count < 0 || q.count > len(q.entries) {
			invariant.Failf("FTQ occupancy %d outside [0, %d]", q.count, len(q.entries))
		}
		for _, l := range e.Lines {
			if l.Line() != l {
				invariant.Failf("FTQ entry line %#x is not line-aligned", uint64(l))
			}
		}
	}
}

// Pop removes and returns the oldest entry, or nil when empty.
func (q *FTQ) Pop() *FTQEntry {
	if q.count == 0 {
		return nil
	}
	e := q.entries[q.head]
	q.entries[q.head] = nil
	q.head = (q.head + 1) % len(q.entries)
	q.count--
	return e
}

// Flush discards all entries (front-end resteer).
func (q *FTQ) Flush() {
	for i := range q.entries {
		q.entries[i] = nil
	}
	q.head, q.count = 0, 0
}

// Contains reports whether any queued entry covers line (used to suppress
// duplicate prefetches: targets are checked against the FTQ before
// issuing, §6.2).
func (q *FTQ) Contains(line isa.Addr) bool {
	for i := 0; i < q.count; i++ {
		e := q.entries[(q.head+i)%len(q.entries)]
		for _, l := range e.Lines {
			if l == line {
				return true
			}
		}
	}
	return false
}

// IAG is the instruction address generator: it walks the predicted stream
// one basic block per cycle, consulting the BPU on the correct path and
// following a forked wrong-path source after a mispredict until the
// resteer arrives.
type IAG struct {
	BPU    *bpu.BPU
	oracle trace.OracleSource
	wrong  trace.Source

	// maxEntryInsts caps instructions per FTQ entry.
	maxEntryInsts int

	// pendingMispredict blocks further correct-path tracking until the
	// current mispredict resolves.
	pendingMispredict bool

	// free is the FTQ-entry recycling pool and wrongFree the retired
	// wrong-path source whose storage the next fork reuses. Both are
	// allocator bookkeeping: a recycled entry is bit-identical to a fresh
	// one, and ForkWrong reproduces a fresh fork's stream exactly.
	free      []*FTQEntry
	wrongFree trace.Source
}

// NewIAG builds an IAG over the oracle instruction source (the synthetic
// CFG walker, or a ChampSim trace replay).
func NewIAG(b *bpu.BPU, oracle trace.OracleSource, maxEntryInsts int) *IAG {
	if maxEntryInsts <= 0 {
		maxEntryInsts = 16
	}
	return &IAG{BPU: b, oracle: oracle, maxEntryInsts: maxEntryInsts}
}

// OnWrongPath reports whether the IAG is fetching beyond an unresolved
// mispredict.
func (g *IAG) OnWrongPath() bool { return g.wrong != nil }

// Resteer redirects the IAG back to the correct path. The oracle source is
// already positioned at the resteer target (it stopped advancing when the
// mispredict was detected), so the wrong-path source is simply dropped.
func (g *IAG) Resteer() {
	if g.wrong != nil {
		g.wrongFree = g.wrong
	}
	g.wrong = nil
	g.pendingMispredict = false
}

// Recycle returns a fully drained FTQ entry to the IAG's pool so a later
// NextEntry reuses its storage. The caller must drop every reference to
// the entry and its slices first.
func (g *IAG) Recycle(e *FTQEntry) {
	if e == nil {
		return
	}
	g.free = append(g.free, e)
}

// newEntry pops a pooled entry (resetting it field-for-field to the zero
// entry while keeping slice backing) or allocates a fresh one.
func (g *IAG) newEntry(wrongPath bool) *FTQEntry {
	if n := len(g.free); n > 0 {
		e := g.free[n-1]
		g.free = g.free[:n-1]
		*e = FTQEntry{
			Insts:     e.Insts[:0],
			Lines:     e.Lines[:0],
			Episodes:  e.Episodes[:0],
			WrongPath: wrongPath,
		}
		return e
	}
	//lint:ignore allocfree pool refill when the FTQ entry free list is empty; amortized
	return &FTQEntry{WrongPath: wrongPath}
}

// NextEntry assembles the next FTQ entry from the predicted stream: it
// pulls instructions from the active walker until a branch terminator or
// the entry-size cap, predicts the terminator on the correct path, and
// forks a wrong-path walker when the prediction diverges from the oracle.
func (g *IAG) NextEntry() *FTQEntry {
	var w trace.Source = g.oracle
	if g.wrong != nil {
		w = g.wrong
	}
	//lint:ignore allocfree inlined pool refill (newEntry); amortized once the free list warms
	e := g.newEntry(g.wrong != nil)

	for len(e.Insts) < g.maxEntryInsts {
		in := w.Next()
		if len(e.Insts) == 0 {
			e.Start = in.PC
		}
		e.Insts = append(e.Insts, in)
		ln := in.PC.Line()
		if n := len(e.Lines); n == 0 || e.Lines[n-1] != ln {
			e.Lines = append(e.Lines, ln)
		}
		// Instructions spanning a line boundary touch the next line too.
		if end := in.PC + isa.Addr(in.Size) - 1; end.Line() != ln {
			e.Lines = append(e.Lines, end.Line())
		}
		if in.Kind.IsBranch() {
			e.HasBranch = true
			break
		}
	}

	if !e.HasBranch || e.WrongPath {
		// Sequential continuation, or wrong-path entry whose outcome the
		// front-end follows directly (nested wrong-path mispredicts are
		// not modelled; the resteer squashes everything anyway).
		return e
	}

	term := e.Insts[len(e.Insts)-1]
	pred := g.BPU.PredictAndTrain(term)
	e.Pred = pred

	predictedNext := term.FallThrough()
	if pred.Taken && pred.Target != 0 {
		predictedNext = pred.Target
	}
	actualNext := term.NextPC()
	if predictedNext == actualNext || g.pendingMispredict {
		return e
	}

	// Prediction diverged: classify the resteer and fork the wrong path.
	e.Mispredict = true
	e.CorrectTarget = actualNext
	switch {
	case !pred.BTBHit && term.Taken:
		e.Cause = ResteerBTBMiss
		// Early correction: decode computes direct targets (and the RAS
		// supplies return targets) without waiting for execute.
		e.ResolveAtDecode = term.Kind == isa.UncondDirect ||
			term.Kind == isa.DirectCall || term.Kind == isa.Return
	case term.Kind == isa.Return:
		e.Cause = ResteerReturn
	default:
		e.Cause = ResteerMispredict
	}
	g.pendingMispredict = true
	g.wrong = g.oracle.ForkWrong(g.wrongFree, predictedNext)
	g.wrongFree = nil
	return e
}
