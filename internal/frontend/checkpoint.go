package frontend

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/isa"
	"pdip/internal/mem"
)

// CaptureCheckpoint converts the episode to its wire form.
func (ep *LineEpisode) CaptureCheckpoint() checkpoint.EpisodeState {
	return checkpoint.EpisodeState{
		Line:             ep.Line,
		WrongPath:        ep.WrongPath,
		Missed:           ep.Missed,
		ServedBy:         uint8(ep.ServedBy),
		FetchCycle:       ep.FetchCycle,
		DoneCycle:        ep.DoneCycle,
		Starve:           ep.Starve,
		BackendEmpty:     ep.BackendEmpty,
		WasPrefetch:      ep.WasPrefetch,
		Processed:        ep.Processed,
		ResteerTrigger:   ep.ResteerTrigger,
		ResteerWasReturn: ep.ResteerWasReturn,
		Refs:             ep.Refs,
	}
}

// RestoreCheckpoint overwrites the episode from its wire form.
func (ep *LineEpisode) RestoreCheckpoint(st checkpoint.EpisodeState) {
	*ep = LineEpisode{
		Line:             st.Line,
		WrongPath:        st.WrongPath,
		Missed:           st.Missed,
		ServedBy:         mem.Level(st.ServedBy),
		FetchCycle:       st.FetchCycle,
		DoneCycle:        st.DoneCycle,
		Starve:           st.Starve,
		BackendEmpty:     st.BackendEmpty,
		WasPrefetch:      st.WasPrefetch,
		Processed:        st.Processed,
		ResteerTrigger:   st.ResteerTrigger,
		ResteerWasReturn: st.ResteerWasReturn,
		Refs:             st.Refs,
	}
}

// CaptureCheckpoint converts the uop to its wire form. epID maps the
// uop's episode pointer to its index in the checkpoint's deduplicated
// episode table (-1 for no episode).
func (u *Uop) CaptureCheckpoint(epID func(*LineEpisode) int) checkpoint.UopState {
	st := checkpoint.UopState{
		Inst:            u.Inst,
		Seq:             u.Seq,
		WrongPath:       u.WrongPath,
		Episode:         -1,
		Mispredict:      u.Mispredict,
		ResolveAtDecode: u.ResolveAtDecode,
		Cause:           uint8(u.Cause),
		CorrectTarget:   u.CorrectTarget,
		TriggerBlock:    u.TriggerBlock,
		IsMemOp:         u.IsMemOp,
		DataLine:        u.DataLine,
		DoneAt:          u.DoneAt,
		AvailableAt:     u.AvailableAt,
	}
	if u.Ep != nil {
		st.Episode = epID(u.Ep)
	}
	return st
}

// RestoreCheckpoint overwrites the uop from its wire form, resolving the
// episode index against eps (the restored episode table).
func (u *Uop) RestoreCheckpoint(st checkpoint.UopState, eps []*LineEpisode) error {
	if st.Episode >= len(eps) {
		return fmt.Errorf("frontend: uop episode index %d out of range (%d episodes)", st.Episode, len(eps))
	}
	*u = Uop{
		Inst:            st.Inst,
		Seq:             st.Seq,
		WrongPath:       st.WrongPath,
		Mispredict:      st.Mispredict,
		ResolveAtDecode: st.ResolveAtDecode,
		Cause:           ResteerCause(st.Cause),
		CorrectTarget:   st.CorrectTarget,
		TriggerBlock:    st.TriggerBlock,
		IsMemOp:         st.IsMemOp,
		DataLine:        st.DataLine,
		DoneAt:          st.DoneAt,
		AvailableAt:     st.AvailableAt,
	}
	if st.Episode >= 0 {
		u.Ep = eps[st.Episode]
	}
	return nil
}

// CaptureCheckpoint converts the FTQ entry to its wire form. epID maps
// episode pointers to indices in the checkpoint's episode table.
func (e *FTQEntry) CaptureCheckpoint(epID func(*LineEpisode) int) checkpoint.FTQEntryState {
	st := checkpoint.FTQEntryState{
		Insts:           append([]isa.Inst(nil), e.Insts...),
		Start:           e.Start,
		Lines:           append([]isa.Addr(nil), e.Lines...),
		WrongPath:       e.WrongPath,
		HasBranch:       e.HasBranch,
		PredTaken:       e.Pred.Taken,
		PredTarget:      e.Pred.Target,
		PredBTBHit:      e.Pred.BTBHit,
		Mispredict:      e.Mispredict,
		Cause:           uint8(e.Cause),
		ResolveAtDecode: e.ResolveAtDecode,
		CorrectTarget:   e.CorrectTarget,
		ShadowTrigger:   e.ShadowTrigger,
		ShadowWasReturn: e.ShadowWasReturn,
		ReadyAt:         e.ReadyAt,
	}
	if len(e.Episodes) > 0 {
		st.Episodes = make([]int, len(e.Episodes))
		for i, ep := range e.Episodes {
			st.Episodes[i] = epID(ep)
		}
	}
	return st
}

// NewEntryFromCheckpoint builds a fresh FTQ entry from its wire form,
// resolving episode indices against eps.
func NewEntryFromCheckpoint(st checkpoint.FTQEntryState, eps []*LineEpisode) (*FTQEntry, error) {
	e := &FTQEntry{
		Insts:           append([]isa.Inst(nil), st.Insts...),
		Start:           st.Start,
		Lines:           append([]isa.Addr(nil), st.Lines...),
		WrongPath:       st.WrongPath,
		HasBranch:       st.HasBranch,
		Mispredict:      st.Mispredict,
		Cause:           ResteerCause(st.Cause),
		ResolveAtDecode: st.ResolveAtDecode,
		CorrectTarget:   st.CorrectTarget,
		ShadowTrigger:   st.ShadowTrigger,
		ShadowWasReturn: st.ShadowWasReturn,
		ReadyAt:         st.ReadyAt,
	}
	e.Pred.Taken = st.PredTaken
	e.Pred.Target = st.PredTarget
	e.Pred.BTBHit = st.PredBTBHit
	if len(st.Episodes) > 0 {
		e.Episodes = make([]*LineEpisode, len(st.Episodes))
		for i, id := range st.Episodes {
			if id < 0 || id >= len(eps) {
				return nil, fmt.Errorf("frontend: FTQ entry episode index %d out of range (%d episodes)", id, len(eps))
			}
			e.Episodes[i] = eps[id]
		}
	}
	return e, nil
}

// CaptureCheckpoint captures the queued entries oldest-first. epID maps
// episode pointers as in FTQEntry.CaptureCheckpoint (queued entries have
// no episodes in practice — episodes exist only once an entry leaves the
// FTQ for the IFU — but the format does not rely on that).
func (q *FTQ) CaptureCheckpoint(epID func(*LineEpisode) int) []checkpoint.FTQEntryState {
	out := make([]checkpoint.FTQEntryState, 0, q.count)
	for i := 0; i < q.count; i++ {
		e := q.entries[(q.head+i)%len(q.entries)]
		out = append(out, e.CaptureCheckpoint(epID))
	}
	return out
}

// RestoreCheckpoint replaces the queue's contents with the captured
// entries (oldest-first), rebuilding the ring at head 0 — ring phase is
// representation, not simulated state.
func (q *FTQ) RestoreCheckpoint(sts []checkpoint.FTQEntryState, eps []*LineEpisode) error {
	if len(sts) > len(q.entries) {
		return fmt.Errorf("frontend: checkpoint has %d FTQ entries, depth is %d", len(sts), len(q.entries))
	}
	q.Flush()
	for i := range sts {
		e, err := NewEntryFromCheckpoint(sts[i], eps)
		if err != nil {
			return err
		}
		q.Push(e)
	}
	return nil
}

// CaptureCheckpoint captures the IAG's sources and mispredict gate. The
// FTQ-entry pool and the retired wrong-path source (free, wrongFree) are
// allocator bookkeeping, not simulated state: a recycled object is
// bit-identical to a fresh one, so a restored IAG starting with empty
// pools produces the same stream.
func (g *IAG) CaptureCheckpoint() checkpoint.IAGState {
	st := checkpoint.IAGState{
		Oracle:            g.oracle.CaptureSource(),
		PendingMispredict: g.pendingMispredict,
	}
	if g.wrong != nil {
		w := g.wrong.CaptureSource()
		st.Wrong = &w
	}
	return st
}

// RestoreCheckpoint overwrites the IAG's sources and mispredict gate. The
// oracle rebuilds the wrong-path source when the checkpoint carries one
// (wrong paths hold no reconstruction input of their own).
func (g *IAG) RestoreCheckpoint(st checkpoint.IAGState) error {
	if err := g.oracle.RestoreSource(st.Oracle); err != nil {
		return err
	}
	g.wrong = nil
	if st.Wrong != nil {
		w, err := g.oracle.RestoreWrong(*st.Wrong)
		if err != nil {
			return err
		}
		g.wrong = w
	}
	g.pendingMispredict = st.PendingMispredict
	return nil
}
