// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the simulator front-ends. Both cmd/pdipsim and cmd/experiments expose the
// same pair of flags; the profiles they write feed `go tool pprof` and are
// how the hot-path work in this repo was found and verified (see DESIGN.md,
// "Performance model").
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function must run after the measured
// work and before process exit; defer it from main.
//
// The heap profile is taken after a forced GC so it reflects live steady-
// state memory, not transient garbage — the number the zero-alloc work in
// this repo targets.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // capture live objects, not yet-uncollected garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
