package metrics

import (
	"fmt"
	"sort"

	"pdip/internal/checkpoint"
)

// CaptureCheckpoint captures every owned counter, gauge, and histogram in
// sorted name order. Bound functions (CounterFunc/GaugeFunc) are not
// captured: their backing state lives in the owning components, which
// checkpoint themselves.
func (r *Registry) CaptureCheckpoint() checkpoint.RegistryState {
	var st checkpoint.RegistryState

	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	st.Counters = make([]checkpoint.NamedCounter, 0, len(names))
	for _, n := range names {
		st.Counters = append(st.Counters, checkpoint.NamedCounter{Name: n, Value: r.counters[n].Load()})
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	st.Gauges = make([]checkpoint.NamedGauge, 0, len(names))
	for _, n := range names {
		st.Gauges = append(st.Gauges, checkpoint.NamedGauge{Name: n, Value: r.gauges[n].Load()})
	}

	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	st.Histograms = make([]checkpoint.HistogramState, 0, len(names))
	for _, n := range names {
		h := r.hists[n]
		st.Histograms = append(st.Histograms, checkpoint.HistogramState{
			Name:   n,
			Counts: append([]uint64(nil), h.counts...),
			Total:  h.total,
			Sum:    h.sum,
		})
	}
	return st
}

// RestoreCheckpoint overwrites the registry's owned values from a
// captured state. Every captured name must already be registered with a
// matching kind and (for histograms) bucket count — registration is a
// construction-time contract, so an unknown name means the checkpoint and
// the simulator build disagree about the metric schema.
func (r *Registry) RestoreCheckpoint(st checkpoint.RegistryState) error {
	for _, c := range st.Counters {
		dst, ok := r.counters[c.Name]
		if !ok {
			return fmt.Errorf("metrics: checkpoint counter %q not registered", c.Name)
		}
		dst.Store(c.Value)
	}
	for _, g := range st.Gauges {
		dst, ok := r.gauges[g.Name]
		if !ok {
			return fmt.Errorf("metrics: checkpoint gauge %q not registered", g.Name)
		}
		dst.Set(g.Value)
	}
	for _, h := range st.Histograms {
		dst, ok := r.hists[h.Name]
		if !ok {
			return fmt.Errorf("metrics: checkpoint histogram %q not registered", h.Name)
		}
		if len(dst.counts) != len(h.Counts) {
			return fmt.Errorf("metrics: checkpoint histogram %q has %d buckets, registry has %d",
				h.Name, len(h.Counts), len(dst.counts))
		}
		copy(dst.counts, h.Counts)
		dst.total = h.Total
		dst.sum = h.Sum
	}
	return nil
}
