// Package metrics is the simulator's unified observability layer: a
// lightweight counter/gauge/histogram registry every measuring component
// (core, frontend, cache, bpu, prefetchers, prefetch queue) registers into,
// with stable-ordered snapshots and JSON/CSV export behind it.
//
// Design constraints, in order:
//
//   - No reflection and no map lookups on the hot path. Components resolve
//     *Counter / *Gauge / *Histogram pointers once at construction and
//     increment through the pointer; alternatively they bind an existing
//     struct field behind a closure (CounterFunc/GaugeFunc), which is read
//     only at snapshot time.
//   - Deterministic output: Snapshot renders every metric in sorted name
//     order, and two runs with identical seeds must produce bit-identical
//     snapshots (the harness's deterministic-replay verifier depends on
//     this).
//   - Single-writer ownership: a registry belongs to one simulated core and
//     is mutated from one goroutine. None of the types here are
//     synchronised; cross-core aggregation happens on snapshots, which are
//     plain values.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count owned by the registry.
// The zero value is ready to use but is normally obtained from
// Registry.Counter so it appears in snapshots.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v }

// Store overwrites the current value (used when mirroring externally
// accumulated state).
func (c *Counter) Store(n uint64) { c.v = n }

// Reset zeroes the counter (measurement-window reset after warmup).
func (c *Counter) Reset() { c.v = 0 }

// Gauge is a point-in-time level (storage budgets, configured capacities,
// occupancies). Gauges survive Registry.Reset: they describe state, not
// accumulation.
type Gauge struct {
	v float64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Load returns the current value.
func (g *Gauge) Load() float64 { return g.v }

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// bounds in strictly increasing order; an implicit overflow bucket catches
// everything above the last bound. Observation is a short linear scan — no
// allocation, suitable for once-per-cycle hot-path use with a handful of
// buckets.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1, last is overflow
	total  uint64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.total++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveN records n identical samples in one call — the bulk form behind
// idle-cycle fast-forward, where a per-cycle observation repeats unchanged
// across a skipped stall window. For integer-valued v (every per-cycle
// occupancy metric) the accumulated sum is bit-identical to calling
// Observe(v) n times, because v*n and the repeated additions are both
// exact in float64 below 2^53.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.total += n
	h.sum += v * float64(n)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i] += n
			return
		}
	}
	h.counts[len(h.bounds)] += n
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
}

// Registry is one core's metric namespace. Names are dot-separated paths
// ("cache.l1i.misses", "frontend.resteer.mispredict"); a name is either
// owned (Counter/Gauge/Histogram allocated here) or bound (a closure over a
// component's own field). Registration is construction-time only; the hot
// path never touches the registry itself.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string]func() uint64
	gaugeFns   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string]func() uint64),
		gaugeFns:   make(map[string]func() float64),
	}
}

// taken reports whether name is already registered under any kind.
func (r *Registry) taken(name string) bool {
	if _, ok := r.counters[name]; ok {
		return true
	}
	if _, ok := r.gauges[name]; ok {
		return true
	}
	if _, ok := r.hists[name]; ok {
		return true
	}
	if _, ok := r.counterFns[name]; ok {
		return true
	}
	_, ok := r.gaugeFns[name]
	return ok
}

// Counter returns the owned counter registered under name, creating it on
// first use. It panics if name is already registered as another kind —
// metric names are a construction-time contract, not runtime input.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.taken(name) {
		panic(fmt.Sprintf("metrics: %q already registered as a different kind", name))
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the owned gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.taken(name) {
		panic(fmt.Sprintf("metrics: %q already registered as a different kind", name))
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the owned histogram registered under name with the
// given bucket upper bounds (strictly increasing), creating it on first
// use. Re-registration with different bounds panics.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
		}
		return h
	}
	if r.taken(name) {
		panic(fmt.Sprintf("metrics: %q already registered as a different kind", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds must be strictly increasing", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

// CounterFunc binds an externally stored counter (typically a field of a
// component's Stats struct) under name. The closure is resolved once here
// and evaluated only at snapshot time, so the component's hot path is
// untouched. Duplicate names panic.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r.taken(name) {
		panic(fmt.Sprintf("metrics: %q registered twice", name))
	}
	r.counterFns[name] = fn
}

// GaugeFunc binds a derived metric (IPC, MPKI, accuracy) under name,
// evaluated at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r.taken(name) {
		panic(fmt.Sprintf("metrics: %q registered twice", name))
	}
	r.gaugeFns[name] = fn
}

// Registrant is the optional interface components (prefetchers) implement
// to publish their counters into a core's registry.
type Registrant interface {
	RegisterMetrics(*Registry)
}

// Reset zeroes every owned counter and histogram — the measurement-window
// reset after warmup. Gauges (levels) and bound functions (whose backing
// state is reset by the owning component) are left alone.
func (r *Registry) Reset() {
	// Per-key resets commute, so iteration order cannot leak into metric
	// state here — but resetting in sorted-name order keeps the operation
	// order-independent by construction rather than by argument.
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if c, ok := r.counters[n]; ok {
			c.Reset()
		}
		if h, ok := r.hists[n]; ok {
			h.Reset()
		}
	}
}

// Len returns the number of registered metric names (histograms count
// once, although they expand to several snapshot entries).
func (r *Registry) Len() int {
	return len(r.counters) + len(r.gauges) + len(r.hists) + len(r.counterFns) + len(r.gaugeFns)
}

// Names returns every registered metric name in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, r.Len())
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.counterFns {
		names = append(names, n)
	}
	for n := range r.gaugeFns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every metric at this instant. Histograms expand into
// one counter per bucket ("name.le_<bound>", "name.overflow") plus
// "name.count" and a "name.sum" gauge. Gauges evaluating to NaN or ±Inf
// are clamped to 0 so snapshots stay JSON-encodable and diffable.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		//lint:ignore allocfree sampled diagnostics snapshot, one per sample interval, not per cycle
		Counters: make(map[string]uint64, len(r.counters)+len(r.counterFns)+4*len(r.hists)),
		//lint:ignore allocfree sampled diagnostics snapshot, one per sample interval, not per cycle
		Gauges: make(map[string]float64, len(r.gauges)+len(r.gaugeFns)+len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, fn := range r.counterFns {
		s.Counters[n] = fn()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = sanitize(g.Load())
	}
	for n, fn := range r.gaugeFns {
		s.Gauges[n] = sanitize(fn())
	}
	for n, h := range r.hists {
		for i, b := range h.bounds {
			//lint:ignore allocfree sampled diagnostics snapshot, one per sample interval, not per cycle
			s.Counters[fmt.Sprintf("%s.le_%g", n, b)] = h.counts[i]
		}
		//lint:ignore allocfree sampled diagnostics snapshot, one per sample interval, not per cycle
		s.Counters[n+".overflow"] = h.counts[len(h.bounds)]
		//lint:ignore allocfree sampled diagnostics snapshot, one per sample interval, not per cycle
		s.Counters[n+".count"] = h.total
		//lint:ignore allocfree sampled diagnostics snapshot, one per sample interval, not per cycle
		s.Gauges[n+".sum"] = sanitize(h.sum)
	}
	return s
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
