package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Snapshot is a stable-ordered view of every registered metric at one
// instant. Counters (and expanded histogram buckets) are exact integers;
// gauges are float64 values that round-trip bit-exactly through JSON.
// Snapshots are plain values: safe to compare, serialise, and pass across
// goroutines.
type Snapshot struct {
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter returns the named counter value and whether it exists.
func (s Snapshot) Counter(name string) (uint64, bool) {
	v, ok := s.Counters[name]
	return v, ok
}

// Gauge returns the named gauge value and whether it exists.
func (s Snapshot) Gauge(name string) (float64, bool) {
	v, ok := s.Gauges[name]
	return v, ok
}

// Equal reports whether two snapshots are bit-identical: same names, same
// counter values, and gauges equal under math.Float64bits (so -0 vs 0 or
// differently rounded results are detected, not papered over).
func (s Snapshot) Equal(o Snapshot) bool { return len(s.Diff(o)) == 0 }

// Diff returns one human-readable line per discrepancy between s and o, in
// sorted name order. An empty result means the snapshots are bit-identical.
func (s Snapshot) Diff(o Snapshot) []string {
	var out []string
	seen := make(map[string]bool)
	for n, a := range s.Counters {
		seen[n] = true
		if b, ok := o.Counters[n]; !ok {
			out = append(out, fmt.Sprintf("%s: %d != (missing)", n, a))
		} else if a != b {
			out = append(out, fmt.Sprintf("%s: %d != %d", n, a, b))
		}
	}
	for n, b := range o.Counters {
		if !seen[n] {
			out = append(out, fmt.Sprintf("%s: (missing) != %d", n, b))
		}
	}
	for n, a := range s.Gauges {
		key := "gauge " + n
		if b, ok := o.Gauges[n]; !ok {
			out = append(out, fmt.Sprintf("%s: %v != (missing)", key, a))
		} else if math.Float64bits(a) != math.Float64bits(b) {
			out = append(out, fmt.Sprintf("%s: %v != %v", key, a, b))
		}
	}
	for n, b := range o.Gauges {
		if _, ok := s.Gauges[n]; !ok {
			out = append(out, fmt.Sprintf("gauge %s: (missing) != %v", n, b))
		}
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the snapshot as indented JSON. Map keys marshal in
// sorted order, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshotJSON parses a snapshot previously written by WriteJSON.
func ReadSnapshotJSON(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, err
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	return s, nil
}

// WriteCSV writes "kind,name,value" rows in sorted name order. Gauge
// values use the shortest representation that round-trips.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "value"}); err != nil {
		return err
	}
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := cw.Write([]string{"counter", n, strconv.FormatUint(s.Counters[n], 10)}); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := cw.Write([]string{"gauge", n, strconv.FormatFloat(s.Gauges[n], 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sample is one interval snapshot of a run, taken every N retired
// instructions when sampling is enabled (IPC/MPKI trajectories).
type Sample struct {
	// Instructions is the retired-instruction count at sampling time
	// (measured window, post-warmup).
	Instructions uint64 `json:"instructions"`
	// Metrics is the full registry snapshot at that point.
	Metrics Snapshot `json:"metrics"`
}

// Export is the on-disk format of `pdipsim -stats-json`: run identity, the
// final snapshot, and the optional interval samples.
type Export struct {
	Benchmark string   `json:"benchmark,omitempty"`
	Policy    string   `json:"policy,omitempty"`
	Final     Snapshot `json:"final"`
	Samples   []Sample `json:"samples,omitempty"`
}

// WriteJSON writes the export as indented, deterministic JSON.
func (e Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
