package metrics

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCounterOwnership(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d, want 5", c.Load())
	}
	// Same name returns the same counter.
	if r.Counter("a.b") != c {
		t.Fatal("Counter not idempotent")
	}
	s := r.Snapshot()
	if v, ok := s.Counter("a.b"); !ok || v != 5 {
		t.Fatalf("snapshot a.b = %d,%v", v, ok)
	}
}

func TestCounterFuncBindsExternalField(t *testing.T) {
	r := NewRegistry()
	var field uint64
	r.CounterFunc("x.y", func() uint64 { return field })
	field = 42
	if v, _ := r.Snapshot().Counter("x.y"); v != 42 {
		t.Fatalf("bound counter = %d, want 42", v)
	}
}

func TestGaugeSurvivesReset(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("storage.kb")
	g.Set(43.5)
	c := r.Counter("events")
	c.Add(10)
	r.Reset()
	if c.Load() != 0 {
		t.Fatal("counter not reset")
	}
	if g.Load() != 43.5 {
		t.Fatal("gauge should survive Reset")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("occ", 1, 4, 8)
	for _, v := range []float64{0, 1, 2, 5, 9, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	want := map[string]uint64{
		"occ.le_1":     2, // 0, 1
		"occ.le_4":     1, // 2
		"occ.le_8":     1, // 5
		"occ.overflow": 2, // 9, 100
		"occ.count":    6,
	}
	for k, v := range want {
		if got := s.Counters[k]; got != v {
			t.Errorf("%s = %d, want %d", k, got, v)
		}
	}
	if got := s.Gauges["occ.sum"]; got != 117 {
		t.Errorf("occ.sum = %v, want 117", got)
	}
	h.Reset()
	if h.Total() != 0 || h.Sum() != 0 {
		t.Fatal("histogram not reset")
	}
}

func TestRegistryPanicsOnKindClash(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	r := NewRegistry()
	r.Counter("n")
	r.Gauge("n")
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing bounds")
		}
	}()
	NewRegistry().Histogram("h", 4, 4)
}

func TestSnapshotDiff(t *testing.T) {
	a := Snapshot{Counters: map[string]uint64{"x": 1, "y": 2}, Gauges: map[string]float64{"g": 1.5}}
	b := Snapshot{Counters: map[string]uint64{"x": 1, "z": 3}, Gauges: map[string]float64{"g": 1.5}}
	diff := a.Diff(b)
	if len(diff) != 2 {
		t.Fatalf("diff = %v, want 2 lines", diff)
	}
	if !a.Equal(a) {
		t.Fatal("snapshot not equal to itself")
	}
	if a.Equal(b) {
		t.Fatal("differing snapshots reported equal")
	}
}

func TestSnapshotDiffIsBitExactOnGauges(t *testing.T) {
	a := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]float64{"g": 0.0}}
	b := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]float64{"g": math.Copysign(0, -1)}}
	if a.Equal(b) {
		t.Fatal("0 and -0 must differ bit-exactly")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.big").Store(1<<53 - 1)
	r.Gauge("g.pi").Set(math.Pi)
	r.GaugeFunc("g.derived", func() float64 { return 1.0 / 3.0 })
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshotJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diff := s.Diff(back); len(diff) != 0 {
		t.Fatalf("JSON round trip not bit-exact: %v", diff)
	}
}

func TestSnapshotNaNGaugeSanitized(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("bad", func() float64 { return math.NaN() })
	if v := r.Snapshot().Gauges["bad"]; v != 0 {
		t.Fatalf("NaN gauge = %v, want sanitized 0", v)
	}
}

func TestSnapshotCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{"kind,name,value", "counter,a,1", "counter,b,2", "gauge,g,0.5"}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("CSV = %v, want %v", lines, want)
	}
}

func TestNamesSortedAndLen(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Gauge("a")
	r.Histogram("m", 1)
	r.CounterFunc("c", func() uint64 { return 0 })
	r.GaugeFunc("d", func() float64 { return 0 })
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	names := r.Names()
	want := []string{"a", "c", "d", "m", "z"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
}
