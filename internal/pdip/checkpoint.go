package pdip

import (
	"fmt"

	"pdip/internal/checkpoint"
	"pdip/internal/prefetch"
)

// CaptureCheckpoint implements prefetch.Checkpointer: the full
// trigger→target table (tags, LRU stamps, target slots with masks), the
// replacement clock, the insertion-coin rng, and the stats. The debug
// hooks (debugInserted, DebugLog) are diagnostics, not simulated state.
func (p *PDIP) CaptureCheckpoint() checkpoint.PrefetcherState {
	st := &checkpoint.PDIPState{
		Sets:  make([][]checkpoint.PDIPEntryState, len(p.sets)),
		Tick:  p.tick,
		Rng:   p.r.State(),
		Stats: checkpoint.PDIPStats(p.Stats),
	}
	for si, set := range p.sets {
		ws := make([]checkpoint.PDIPEntryState, len(set))
		for wi, e := range set {
			es := checkpoint.PDIPEntryState{
				Valid:   e.valid,
				Tag:     e.tag,
				LRU:     e.lru,
				Targets: make([]checkpoint.PDIPTargetState, len(e.targets)),
			}
			for ti, t := range e.targets {
				es.Targets[ti] = checkpoint.PDIPTargetState{
					Valid: t.valid, Base: t.base, Mask: t.mask, Trig: uint8(t.trig), LRU: t.lru,
				}
			}
			ws[wi] = es
		}
		st.Sets[si] = ws
	}
	return checkpoint.PrefetcherState{Kind: "pdip", PDIP: st}
}

// RestoreCheckpoint implements prefetch.Checkpointer. The receiver must
// have been built with the same table geometry.
func (p *PDIP) RestoreCheckpoint(st checkpoint.PrefetcherState) error {
	if st.Kind != "pdip" || st.PDIP == nil {
		return fmt.Errorf("pdip: checkpoint kind %q, prefetcher is pdip", st.Kind)
	}
	s := st.PDIP
	if len(s.Sets) != len(p.sets) {
		return fmt.Errorf("pdip: checkpoint has %d sets, table has %d", len(s.Sets), len(p.sets))
	}
	for si, ws := range s.Sets {
		if len(ws) != len(p.sets[si]) {
			return fmt.Errorf("pdip: checkpoint set %d has %d ways, table has %d", si, len(ws), len(p.sets[si]))
		}
		for wi, es := range ws {
			e := &p.sets[si][wi]
			if len(es.Targets) != len(e.targets) {
				return fmt.Errorf("pdip: checkpoint entry has %d target slots, table has %d", len(es.Targets), len(e.targets))
			}
			e.valid = es.Valid
			e.tag = es.Tag
			e.lru = es.LRU
			for ti, ts := range es.Targets {
				e.targets[ti] = target{
					valid: ts.Valid, base: ts.Base, mask: ts.Mask,
					trig: prefetch.TriggerKind(ts.Trig), lru: ts.LRU,
				}
			}
		}
	}
	p.tick = s.Tick
	p.r.SetState(s.Rng)
	p.Stats = Stats(s.Stats)
	return nil
}
