package pdip

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// FuzzPDIPTableInsertLookup feeds the PDIP table fuzzer-chosen
// (trigger, target) retirements with the insertion filters disabled
// (InsertProb 1, no high-cost gate) and checks the table's round-trip
// contract after every insert: the association is immediately visible to
// DebugHolds, an FTQ probe of the trigger emits the target, and the
// debug dump stays sorted. Capacity eviction of older pairs is legal;
// losing the pair just inserted is not.
func FuzzPDIPTableInsertLookup(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{7, 7, 1, 200, 200, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := New(Config{
			InsertProb:      1,
			RequireHighCost: false,
			IgnoreReturns:   false,
			Seed:            0x5eed,
		})
		p.EnableDebug()
		var out []prefetch.Request
		for i := 0; i+1 < len(data); i += 2 {
			trig := isa.Addr(uint64(data[i])+1) * isa.LineSize
			line := isa.Addr(uint64(data[i+1])+1) * isa.LineSize
			if trig == line {
				continue // self-triggering pairs are dropped by design
			}
			p.OnLineRetired(prefetch.RetireEvent{
				Line:           line,
				Missed:         true,
				FEC:            true,
				ResteerTrigger: trig,
			})
			if !p.DebugHolds(trig, line) {
				t.Fatalf("pair %d: table does not hold %#x → %#x right after insert",
					i/2, uint64(trig), uint64(line))
			}
			out = p.OnFTQInsert(trig, out[:0])
			found := false
			for _, r := range out {
				if r.Line == line {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("pair %d: FTQ probe of trigger %#x emitted %d requests, none for %#x",
					i/2, uint64(trig), len(out), uint64(line))
			}
		}
		lines := p.DebugInsertedLines()
		for i := 1; i < len(lines); i++ {
			if lines[i-1] >= lines[i] {
				t.Fatalf("DebugInsertedLines not strictly ascending at %d: %#x >= %#x",
					i, uint64(lines[i-1]), uint64(lines[i]))
			}
		}
	})
}
