// Package pdip implements Priority Directed Instruction Prefetching, the
// paper's contribution (§4–§5).
//
// PDIP issues prefetches only for front-end-critical (FEC) lines — lines
// that missed the L1-I and exposed the front-end to stalls FDIP could not
// hide — and triggers each prefetch from the block address of the
// instruction that disrupted the front-end: the resteering (mispredicted
// or BTB-missing) branch, or, for long-latency misses with no resteer, the
// last retired taken branch. The trigger→target association lives in the
// PDIP table: set-associative, indexed and tagged by trigger block
// address, each entry holding up to two target lines plus a 4-bit mask
// naming up to four following blocks per target.
package pdip

import (
	"sort"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
	"pdip/internal/rng"
)

// Config parameterises the PDIP table and insertion filters (§5).
type Config struct {
	// Sets is the number of table sets; the paper fixes 512 and scales
	// capacity by associativity.
	Sets int
	// Ways is the associativity (2→11KB, 4→22KB, 8→43.5KB, 16→87KB).
	Ways int
	// TargetsPerEntry is the number of target slots per entry (paper: 2).
	TargetsPerEntry int
	// MaskBits is the number of following blocks each target can name
	// (paper: 4).
	MaskBits int
	// TagBits sizes the partial tag (paper: 10).
	TagBits int
	// InsertProb inserts qualifying FEC lines with this probability
	// (§5.3: 0.25 performs best; 1.0 disables the filter).
	InsertProb float64
	// RequireHighCost restricts insertion to high-cost FEC lines (>10
	// starvation cycles) that also saw back-end stalls (§4.1, §5.3).
	RequireHighCost bool
	// IgnoreReturns skips insertion when the resteer was a return
	// mispredict (§5.2: reduces table pollution).
	IgnoreReturns bool
	// Seed drives the probabilistic-insertion RNG.
	Seed uint64
}

// TargetAddrBits is the stored physical line-address width used in the
// paper's storage accounting (34 bits).
const TargetAddrBits = 34

// DefaultConfig returns the paper's preferred PDIP(44) configuration:
// 512 sets × 8 ways × 2 targets, 4-bit masks, 10-bit tags, 0.25 insertion.
func DefaultConfig() Config {
	return Config{
		Sets:            512,
		Ways:            8,
		TargetsPerEntry: 2,
		MaskBits:        4,
		TagBits:         10,
		InsertProb:      0.25,
		RequireHighCost: true,
		IgnoreReturns:   true,
		Seed:            0x9d1b,
	}
}

// ConfigForWays returns the default configuration at a given associativity
// (the paper's PDIP(11)/(22)/(44)/(87) sweep).
func ConfigForWays(ways int) Config {
	c := DefaultConfig()
	c.Ways = ways
	return c
}

// StorageKB computes the table's metadata budget exactly as §5.4 does:
// per way, TagBits + 1 LRU bit + TargetsPerEntry×(34-bit address + mask).
func (c Config) StorageKB() float64 {
	bitsPerEntry := c.TagBits + 1 + c.TargetsPerEntry*(TargetAddrBits+c.MaskBits)
	totalBits := c.Sets * c.Ways * bitsPerEntry
	return float64(totalBits) / 8192.0
}

type target struct {
	valid bool
	base  isa.Addr // line address of the FEC prefetch candidate
	mask  uint8    // bit k set → also prefetch base + (k+1) lines
	trig  prefetch.TriggerKind
	lru   uint32
}

type entry struct {
	valid   bool
	tag     uint32
	lru     uint32
	targets []target
}

// Stats counts PDIP-specific events.
type Stats struct {
	// InsertAttempts counts qualifying FEC retirements seen.
	InsertAttempts uint64
	// InsertFiltered counts attempts rejected by the insertion coin.
	InsertFiltered uint64
	// InsertNoTrigger counts attempts with no usable trigger.
	InsertNoTrigger uint64
	// InsertReturnSkipped counts return-resteer insertions skipped.
	InsertReturnSkipped uint64
	// Inserted counts new target placements.
	Inserted uint64
	// MaskMerged counts insertions folded into an existing target's mask.
	MaskMerged uint64
	// Lookups and Hits count FTQ-insert table probes.
	Lookups uint64
	Hits    uint64
}

// PDIP is the prefetcher.
type PDIP struct {
	cfg  Config
	sets [][]entry
	tick uint32
	r    *rng.RNG

	Stats Stats

	// debugInserted, allocated by EnableDebug, records every line ever
	// placed (or mask-merged) as a prefetch target. Nil — and therefore
	// free — unless debugging is requested.
	debugInserted map[isa.Addr]struct{}
	// DebugLog, when set by a test, receives table events:
	// kind ∈ {"insert", "merge", "emit", "evict-target"}.
	DebugLog func(kind string, trigger, line isa.Addr)
}

// New builds a PDIP prefetcher; zero-value fields of cfg fall back to the
// paper defaults.
func New(cfg Config) *PDIP {
	def := DefaultConfig()
	if cfg.Sets == 0 {
		cfg.Sets = def.Sets
	}
	if cfg.Ways == 0 {
		cfg.Ways = def.Ways
	}
	if cfg.TargetsPerEntry == 0 {
		cfg.TargetsPerEntry = def.TargetsPerEntry
	}
	if cfg.MaskBits == 0 {
		cfg.MaskBits = def.MaskBits
	}
	if cfg.MaskBits < 0 {
		cfg.MaskBits = 0 // explicit no-mask ablation
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = def.TagBits
	}
	if cfg.InsertProb == 0 {
		cfg.InsertProb = def.InsertProb
	}
	p := &PDIP{
		cfg:  cfg,
		sets: make([][]entry, cfg.Sets),
		r:    rng.New(cfg.Seed ^ 0x9d19),
	}
	for i := range p.sets {
		ways := make([]entry, cfg.Ways)
		for w := range ways {
			ways[w].targets = make([]target, cfg.TargetsPerEntry)
		}
		p.sets[i] = ways
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *PDIP) Name() string { return "pdip" }

// StorageKB implements prefetch.Prefetcher.
func (p *PDIP) StorageKB() float64 { return p.cfg.StorageKB() }

// Config returns the active configuration.
func (p *PDIP) Config() Config { return p.cfg }

// indexTag splits a trigger block address into set index and partial tag.
// Triggers are block (line) addresses, so the line number indexes the set.
func (p *PDIP) indexTag(block isa.Addr) (int, uint32) {
	ln := uint64(block) >> isa.LineShift
	set := int(ln % uint64(p.cfg.Sets))
	tag := uint32(ln/uint64(p.cfg.Sets)) & ((1 << p.cfg.TagBits) - 1)
	return set, tag
}

// OnFTQInsert implements prefetch.Prefetcher: probe the table with the new
// FTQ entry's block address; on a hit, emit every associated target line
// plus its masked following blocks.
func (p *PDIP) OnFTQInsert(block isa.Addr, out []prefetch.Request) []prefetch.Request {
	p.Stats.Lookups++
	set, tag := p.indexTag(block.Line())
	for w := range p.sets[set] {
		e := &p.sets[set][w]
		if !e.valid || e.tag != tag {
			continue
		}
		p.Stats.Hits++
		p.tick++
		e.lru = p.tick
		for t := range e.targets {
			tg := &e.targets[t]
			if !tg.valid {
				continue
			}
			if p.DebugLog != nil {
				p.DebugLog("emit", block.Line(), tg.base)
			}
			out = append(out, prefetch.Request{Line: tg.base, Trigger: tg.trig})
			for k := 0; k < p.cfg.MaskBits; k++ {
				if tg.mask&(1<<k) != 0 {
					out = append(out, prefetch.Request{
						Line:    tg.base + isa.Addr((k+1)*isa.LineSize),
						Trigger: tg.trig,
					})
				}
			}
		}
		break
	}
	return out
}

// OnLineRetired implements prefetch.Prefetcher: qualify the retired line
// episode as a prefetch candidate and associate it with its trigger.
func (p *PDIP) OnLineRetired(ev prefetch.RetireEvent) {
	if !ev.FEC {
		return
	}
	if p.cfg.RequireHighCost && !(ev.HighCost && ev.BackendEmpty) {
		return
	}
	p.Stats.InsertAttempts++

	var trigBlock isa.Addr
	var kind prefetch.TriggerKind
	switch {
	case ev.ResteerTrigger != 0:
		if p.cfg.IgnoreReturns && ev.ResteerWasReturn {
			p.Stats.InsertReturnSkipped++
			return
		}
		trigBlock = ev.ResteerTrigger.Line()
		kind = prefetch.TriggerMispredict
	case ev.LastTakenBlock != 0:
		trigBlock = ev.LastTakenBlock.Line()
		kind = prefetch.TriggerLastTaken
	default:
		p.Stats.InsertNoTrigger++
		return
	}
	// Self-triggering entries are useless: by the time the trigger block
	// is seen the target is being fetched already.
	if trigBlock == ev.Line {
		return
	}

	if !p.r.Bool(p.cfg.InsertProb) {
		p.Stats.InsertFiltered++
		return
	}
	if p.debugInserted != nil {
		p.debugInserted[ev.Line] = struct{}{}
	}
	p.insert(trigBlock, ev.Line, kind)
}

// insert places (trigger → targetLine) into the table, folding the target
// into an existing entry's mask when it is within MaskBits following
// blocks of a stored base.
func (p *PDIP) insert(trigBlock, targetLine isa.Addr, kind prefetch.TriggerKind) {
	set, tag := p.indexTag(trigBlock)
	ways := p.sets[set]
	p.tick++

	// Find the entry for this trigger.
	var e *entry
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			e = &ways[w]
			break
		}
	}
	if e == nil {
		// Allocate the LRU way.
		victim := 0
		var oldest uint32 = ^uint32(0)
		for w := range ways {
			if !ways[w].valid {
				victim = w
				oldest = 0
				break
			}
			if ways[w].lru < oldest {
				victim, oldest = w, ways[w].lru
			}
		}
		e = &ways[victim]
		e.valid = true
		e.tag = tag
		for t := range e.targets {
			e.targets[t] = target{}
		}
	}
	e.lru = p.tick

	// Merge into an existing target when the line is the base or within
	// the mask window of a stored base.
	for t := range e.targets {
		tg := &e.targets[t]
		if !tg.valid {
			continue
		}
		if targetLine == tg.base {
			tg.lru = p.tick
			return
		}

		if targetLine > tg.base {
			delta := int(targetLine-tg.base) / isa.LineSize
			if delta >= 1 && delta <= p.cfg.MaskBits {
				tg.mask |= 1 << (delta - 1)
				tg.lru = p.tick
				p.Stats.MaskMerged++
				return
			}
		}
	}
	// Place in a free target slot, else replace the LRU target.
	victim := -1
	var oldest uint32 = ^uint32(0)
	for t := range e.targets {
		tg := &e.targets[t]
		if !tg.valid {
			victim = t
			break
		}
		if tg.lru < oldest {
			victim, oldest = t, tg.lru
		}
	}
	if p.DebugLog != nil {
		if old := e.targets[victim]; old.valid {
			p.DebugLog("evict-target", trigBlock, old.base)
		}
		p.DebugLog("insert", trigBlock, targetLine)
	}
	e.targets[victim] = target{valid: true, base: targetLine, trig: kind, lru: p.tick}
	p.Stats.Inserted++
}

// ResetStats zeroes the counters while keeping table state warm (used at
// the end of the measurement warmup window).
func (p *PDIP) ResetStats() { p.Stats = Stats{} }

// EnableDebug turns on insertion recording: every line subsequently
// placed (or mask-merged) as a prefetch target is remembered and can be
// read back with DebugInsertedLines. Off by default so production runs
// pay neither the map nor its growth.
func (p *PDIP) EnableDebug() {
	if p.debugInserted == nil {
		p.debugInserted = make(map[isa.Addr]struct{})
	}
}

// DebugInsertedLines returns every line recorded since EnableDebug, in
// ascending address order (a deterministic dump of an unordered set).
func (p *PDIP) DebugInsertedLines() []isa.Addr {
	lines := make([]isa.Addr, 0, len(p.debugInserted))
	for l := range p.debugInserted {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// DebugHolds reports whether the table currently associates trigger with
// line (directly or via a mask bit). Test/diagnostic use only.
func (p *PDIP) DebugHolds(trigger, line isa.Addr) bool {
	set, tag := p.indexTag(trigger.Line())
	for w := range p.sets[set] {
		e := &p.sets[set][w]
		if !e.valid || e.tag != tag {
			continue
		}
		for t := range e.targets {
			tg := &e.targets[t]
			if !tg.valid {
				continue
			}
			if line == tg.base {
				return true
			}
			if line > tg.base {
				d := int(line-tg.base) / isa.LineSize
				if d >= 1 && d <= p.cfg.MaskBits && tg.mask&(1<<(d-1)) != 0 {
					return true
				}
			}
		}
	}
	return false
}
