package pdip

import "pdip/internal/metrics"

// RegisterMetrics implements metrics.Registrant, publishing the table's
// insertion/lookup accounting under "pdip". Bindings are snapshot-time
// views over Stats, so ResetStats is reflected automatically.
func (p *PDIP) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("pdip.insert_attempts", func() uint64 { return p.Stats.InsertAttempts })
	reg.CounterFunc("pdip.insert_filtered", func() uint64 { return p.Stats.InsertFiltered })
	reg.CounterFunc("pdip.insert_no_trigger", func() uint64 { return p.Stats.InsertNoTrigger })
	reg.CounterFunc("pdip.insert_return_skipped", func() uint64 { return p.Stats.InsertReturnSkipped })
	reg.CounterFunc("pdip.inserted", func() uint64 { return p.Stats.Inserted })
	reg.CounterFunc("pdip.mask_merged", func() uint64 { return p.Stats.MaskMerged })
	reg.CounterFunc("pdip.lookups", func() uint64 { return p.Stats.Lookups })
	reg.CounterFunc("pdip.hits", func() uint64 { return p.Stats.Hits })
	reg.Gauge("pdip.storage_kb").Set(p.StorageKB())
}
