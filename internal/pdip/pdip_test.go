package pdip

import (
	"testing"

	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

func TestStorageMatchesPaper(t *testing.T) {
	// §5.4: 512 sets × 8 ways × (10 tag + 1 LRU + 2×(34+4)) = 43.5KB.
	got := DefaultConfig().StorageKB()
	if got != 43.5 {
		t.Fatalf("PDIP(44) storage = %.2fKB, want 43.5", got)
	}
	// The paper's size sweep: 11 / 22 / 43.5 / 87 KB for 2/4/8/16 ways.
	for ways, want := range map[int]float64{2: 10.875, 4: 21.75, 8: 43.5, 16: 87.0} {
		if got := ConfigForWays(ways).StorageKB(); got != want {
			t.Fatalf("ways=%d storage %.3f, want %.3f", ways, got, want)
		}
	}
}

func fecEvent(trigger, line isa.Addr) prefetch.RetireEvent {
	return prefetch.RetireEvent{
		Line:           line,
		Missed:         true,
		FEC:            true,
		HighCost:       true,
		BackendEmpty:   true,
		StarveCycles:   20,
		ResteerTrigger: trigger,
	}
}

func deterministic() Config {
	c := DefaultConfig()
	c.InsertProb = 1.0
	return c
}

func TestInsertLookupRoundtrip(t *testing.T) {
	p := New(deterministic())
	trig, target := isa.Addr(0x1000), isa.Addr(0x9000)
	p.OnLineRetired(fecEvent(trig, target))
	reqs := p.OnFTQInsert(trig, nil)
	if len(reqs) != 1 || reqs[0].Line != target {
		t.Fatalf("lookup after insert: %+v", reqs)
	}
	if reqs[0].Trigger != prefetch.TriggerMispredict {
		t.Fatalf("trigger class %v", reqs[0].Trigger)
	}
	// A different trigger must miss.
	if got := p.OnFTQInsert(0x5000, nil); len(got) != 0 {
		t.Fatalf("unrelated trigger hit: %+v", got)
	}
}

func TestLookupIsBlockGranular(t *testing.T) {
	p := New(deterministic())
	p.OnLineRetired(fecEvent(0x1008, 0x9000)) // trigger mid-line
	// Any address in the trigger's line must hit.
	if got := p.OnFTQInsert(0x1000, nil); len(got) != 1 {
		t.Fatalf("block-granular lookup failed: %+v", got)
	}
}

func TestMaskMerge(t *testing.T) {
	p := New(deterministic())
	trig := isa.Addr(0x1000)
	base := isa.Addr(0x9000)
	p.OnLineRetired(fecEvent(trig, base))
	p.OnLineRetired(fecEvent(trig, base+1*isa.LineSize))
	p.OnLineRetired(fecEvent(trig, base+4*isa.LineSize))
	if p.Stats.MaskMerged != 2 {
		t.Fatalf("MaskMerged = %d, want 2", p.Stats.MaskMerged)
	}
	reqs := p.OnFTQInsert(trig, nil)
	want := map[isa.Addr]bool{base: true, base + 64: true, base + 256: true}
	if len(reqs) != 3 {
		t.Fatalf("emitted %d requests: %+v", len(reqs), reqs)
	}
	for _, r := range reqs {
		if !want[r.Line] {
			t.Fatalf("unexpected line %v", r.Line)
		}
	}
}

func TestMaskWindowLimit(t *testing.T) {
	p := New(deterministic())
	trig, base := isa.Addr(0x1000), isa.Addr(0x9000)
	p.OnLineRetired(fecEvent(trig, base))
	p.OnLineRetired(fecEvent(trig, base+5*isa.LineSize)) // beyond 4-line mask
	if p.Stats.MaskMerged != 0 {
		t.Fatal("line beyond the mask window merged")
	}
	reqs := p.OnFTQInsert(trig, nil)
	if len(reqs) != 2 {
		t.Fatalf("want 2 separate targets, got %+v", reqs)
	}
}

func TestTargetSlotLRUReplacement(t *testing.T) {
	p := New(deterministic())
	trig := isa.Addr(0x1000)
	// Three far-apart targets into a 2-slot entry.
	a, b, c := isa.Addr(0x10000), isa.Addr(0x20000), isa.Addr(0x30000)
	p.OnLineRetired(fecEvent(trig, a))
	p.OnLineRetired(fecEvent(trig, b))
	p.OnLineRetired(fecEvent(trig, c))
	reqs := p.OnFTQInsert(trig, nil)
	if len(reqs) != 2 {
		t.Fatalf("want 2 targets, got %d", len(reqs))
	}
	for _, r := range reqs {
		if r.Line == a {
			t.Fatal("LRU target not replaced")
		}
	}
}

func TestNonFECNotInserted(t *testing.T) {
	p := New(deterministic())
	ev := fecEvent(0x1000, 0x9000)
	ev.FEC = false
	p.OnLineRetired(ev)
	if got := p.OnFTQInsert(0x1000, nil); len(got) != 0 {
		t.Fatal("non-FEC line inserted")
	}
}

func TestHighCostFilter(t *testing.T) {
	c := deterministic()
	c.RequireHighCost = true
	p := New(c)
	ev := fecEvent(0x1000, 0x9000)
	ev.HighCost = false
	p.OnLineRetired(ev)
	if got := p.OnFTQInsert(0x1000, nil); len(got) != 0 {
		t.Fatal("low-cost FEC line inserted despite the filter")
	}
	ev.HighCost = true
	ev.BackendEmpty = false
	p.OnLineRetired(ev)
	if got := p.OnFTQInsert(0x1000, nil); len(got) != 0 {
		t.Fatal("no-backend-stall line inserted despite the filter")
	}
}

func TestIgnoreReturns(t *testing.T) {
	p := New(deterministic())
	ev := fecEvent(0x1000, 0x9000)
	ev.ResteerWasReturn = true
	p.OnLineRetired(ev)
	if p.Stats.InsertReturnSkipped != 1 {
		t.Fatal("return resteer not skipped")
	}
	c := deterministic()
	c.IgnoreReturns = false
	p2 := New(c)
	p2.OnLineRetired(ev)
	if got := p2.OnFTQInsert(0x1000, nil); len(got) != 1 {
		t.Fatal("return trigger not inserted with IgnoreReturns=false")
	}
}

func TestLastTakenFallback(t *testing.T) {
	p := New(deterministic())
	ev := fecEvent(0, 0x9000) // no resteer shadow
	ev.LastTakenBlock = 0x2000
	p.OnLineRetired(ev)
	reqs := p.OnFTQInsert(0x2000, nil)
	if len(reqs) != 1 || reqs[0].Trigger != prefetch.TriggerLastTaken {
		t.Fatalf("last-taken trigger path: %+v", reqs)
	}
}

func TestNoTriggerCounted(t *testing.T) {
	p := New(deterministic())
	ev := fecEvent(0, 0x9000)
	ev.LastTakenBlock = 0
	p.OnLineRetired(ev)
	if p.Stats.InsertNoTrigger != 1 {
		t.Fatal("triggerless insertion not counted")
	}
}

func TestSelfTriggerSkipped(t *testing.T) {
	p := New(deterministic())
	line := isa.Addr(0x9000)
	p.OnLineRetired(fecEvent(line, line))
	if got := p.OnFTQInsert(line, nil); len(got) != 0 {
		t.Fatal("self-triggering entry inserted")
	}
}

func TestInsertProbabilityFilters(t *testing.T) {
	c := DefaultConfig()
	c.InsertProb = 0.25
	p := New(c)
	for i := 0; i < 4000; i++ {
		p.OnLineRetired(fecEvent(isa.Addr(0x1000+i*64), isa.Addr(0x900000+i*64)))
	}
	filtered := float64(p.Stats.InsertFiltered) / float64(p.Stats.InsertAttempts)
	if filtered < 0.70 || filtered > 0.80 {
		t.Fatalf("insert filter rate %.2f, want ≈0.75", filtered)
	}
}

func TestEntryLRUEviction(t *testing.T) {
	c := deterministic()
	c.Sets = 1
	c.Ways = 2
	p := New(c)
	// Three triggers map to the single set; only two entries survive.
	for i := 0; i < 3; i++ {
		p.OnLineRetired(fecEvent(isa.Addr(0x1000+i*64), isa.Addr(0x90000+i*64)))
	}
	hits := 0
	for i := 0; i < 3; i++ {
		if got := p.OnFTQInsert(isa.Addr(0x1000+i*64), nil); len(got) > 0 {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("%d triggers resident in a 2-way single-set table", hits)
	}
}

func TestNoMaskAblation(t *testing.T) {
	c := deterministic()
	c.MaskBits = -1
	p := New(c)
	trig, base := isa.Addr(0x1000), isa.Addr(0x9000)
	p.OnLineRetired(fecEvent(trig, base))
	p.OnLineRetired(fecEvent(trig, base+isa.LineSize))
	reqs := p.OnFTQInsert(trig, nil)
	if len(reqs) != 2 {
		t.Fatalf("no-mask config merged lines: %+v", reqs)
	}
	if p.Stats.MaskMerged != 0 {
		t.Fatal("mask merge happened with MaskBits=0")
	}
}

func TestDebugHolds(t *testing.T) {
	p := New(deterministic())
	trig, base := isa.Addr(0x1000), isa.Addr(0x9000)
	p.OnLineRetired(fecEvent(trig, base))
	p.OnLineRetired(fecEvent(trig, base+2*isa.LineSize))
	if !p.DebugHolds(trig, base) || !p.DebugHolds(trig, base+2*isa.LineSize) {
		t.Fatal("DebugHolds misses stored pairs")
	}
	if p.DebugHolds(trig, base+7*isa.LineSize) {
		t.Fatal("DebugHolds reports a pair never stored")
	}
}

func TestResetStatsKeepsTable(t *testing.T) {
	p := New(deterministic())
	p.OnLineRetired(fecEvent(0x1000, 0x9000))
	p.ResetStats()
	if p.Stats.Inserted != 0 {
		t.Fatal("stats not reset")
	}
	if got := p.OnFTQInsert(0x1000, nil); len(got) != 1 {
		t.Fatal("table contents lost on stats reset")
	}
}
