// Package checkpoint defines the versioned, deterministic serialization
// format for the complete simulator state: every microarchitectural
// structure a warmed core carries — cache tags, LRU state, EMISSARY
// P-bits, MSHR deadlines, TAGE/ITTAGE folded histories, BTB, RAS, FTQ,
// PQ, prefetcher tables, trace-walker positions, rng streams, and the
// metrics registry.
//
// The package is a leaf: it imports only the ISA vocabulary and the
// standard library, so every component package can depend on it to
// implement its own Capture/Restore pair without cycles. State structs
// deliberately contain no Go maps (map-backed component state is captured
// as key-sorted slices): the wire encoding must be byte-identical for
// identical simulator state, because the on-disk cache is content
// addressed and the bit-identity tests diff restored runs against
// from-scratch runs.
//
// Two uses share the format:
//
//   - In-memory fork: a *State is a plain value; core.NewFromSnapshot
//     builds a fresh core and copies the state in. One snapshot can be
//     forked concurrently — Restore implementations only read the state
//     and never alias its slices.
//   - On-disk cache: Encode/Decode frame the state in the versioned
//     binary columnar wire format (checkpoint_binary.go), and Dir/Save/
//     Load manage a content-addressed directory keyed by a config+workload
//     hash (see Key). Decode sniffs the stream and still reads the legacy
//     gzip+JSON format (checkpoint_legacy.go) for old directory contents.
package checkpoint

import (
	"pdip/internal/isa"
)

// FormatVersion identifies the state layout and wire format. Bump it
// whenever a captured struct changes shape or meaning — stale on-disk
// checkpoints then miss (they are keyed by version) instead of restoring
// garbage.
//
// Version history: 1 = original format (IAGState held WalkerState
// directly); 2 = instruction sources became a tagged union (SourceState),
// admitting ChampSim trace replay alongside the synthetic CFG walker;
// 3 = multi-tenant sockets: CacheState grew per-owner attribution columns
// (Owner/InflightOwner/Owners), HierarchyState grew the Shared flag (a
// core-private hierarchy skips the uncore-owned L2/L3), and SocketState
// captures an N-core socket with the shared uncore recorded once;
// 4 = the wire format switched from gzip+JSON to the binary columnar
// codec (same state layout as 3 — legacy version-3 JSON streams are
// sniffed and decoded by the retained legacy decoder).
const FormatVersion = 4

// legacyJSONVersion is the newest state-layout version the retained
// gzip+JSON decoder accepts. Layouts 3 and 4 are field-identical (4 only
// changed the wire encoding), so a sniffed legacy stream at version 3
// decodes into the current structs and is stamped FormatVersion on the
// way out.
const legacyJSONVersion = 3

// State is the complete simulator state at one cycle boundary.
type State struct {
	// Version is FormatVersion at capture time.
	Version int

	Core    CoreState
	Metrics RegistryState
	Mem     HierarchyState
	BPU     BPUState
	IAG     IAGState

	// Episodes is the deduplicated table of live fetch episodes; FTQ/IFU
	// entries and uops reference it by index.
	Episodes []EpisodeState
	// FTQ holds the queued fetch-target entries, oldest first. Queued
	// entries have no episodes (episodes exist only once an entry leaves
	// the FTQ for the IFU).
	FTQ []FTQEntryState
	// IFU is the entry mid-fetch in the instruction fetch unit, if any.
	IFU *FTQEntryState
	// DecodeQ is the fetch→decode latch contents, oldest first.
	DecodeQ []UopState
	ROB     ROBState
	PQ      QueueState

	Prefetcher PrefetcherState
}

// CoreState holds the core's own scalar and set state (cycle clock,
// resteer machinery, EMISSARY promotion set, FEC bookkeeping, rng
// streams).
type CoreState struct {
	Now     int64
	Seq     uint64
	Retired uint64

	HasResteer     bool
	ResteerAt      int64
	ResteerTarget  isa.Addr
	ResteerTrigger isa.Addr
	ResteerCause   uint8

	IAGResumeAt     int64
	ShadowTrigger   isa.Addr
	ShadowWasReturn bool
	ShadowLeft      int
	LastTakenBlock  isa.Addr

	// Promoted and FECEver are architectural map state, captured as
	// key-sorted slices.
	Promoted []isa.Addr
	FECEver  []isa.Addr

	// Coverage diagnostics (CollectSets runs only; nil otherwise).
	FECSet    []isa.Addr
	PFSet     []PFSetEntry
	FECReqAge [4]uint64
	FECHolds  [3]uint64
	FECTrace  []FECInstanceState

	SampleEvery uint64

	DataRng  uint64
	PromoRng uint64
}

// PFSetEntry is one (line → last-request-cycle) pair of the prefetch
// coverage set, sorted by line.
type PFSetEntry struct {
	Line  isa.Addr
	Cycle int64
}

// FECInstanceState is one sampled FEC diagnostic instance.
type FECInstanceState struct {
	Line    isa.Addr
	Trigger isa.Addr
	Starve  int
	Served  uint8
}

// RegistryState captures the owned values of a metrics registry in sorted
// name order. Bound counter/gauge functions are not captured — their
// backing state lives in (and is restored with) the owning components.
type RegistryState struct {
	Counters   []NamedCounter
	Gauges     []NamedGauge
	Histograms []HistogramState
}

// NamedCounter is one owned counter value.
type NamedCounter struct {
	Name  string
	Value uint64
}

// NamedGauge is one owned gauge value.
type NamedGauge struct {
	Name  string
	Value float64
}

// HistogramState is one owned histogram's buckets (bounds are structural,
// re-created at registration, and only checked at restore).
type HistogramState struct {
	Name   string
	Counts []uint64
	Total  uint64
	Sum    float64
}

// HierarchyState captures the four cache levels. Port wiring is stateless
// and rebuilt by construction.
type HierarchyState struct {
	L1I, L1D, L2, L3 CacheState
	// Shared marks a core-private hierarchy whose L2/L3 are views of a
	// socket's uncore: their CacheStates are left empty here (the socket
	// captures the shared levels exactly once, in UncoreState).
	Shared bool `json:",omitempty"`
}

// CacheState is one set-associative cache level: every line's metadata
// plus the MSHR file and the level's stats.
//
// Line metadata is stored columnar — one parallel array per field,
// indexed set-major (set*Ways + way) — rather than as an array of
// per-line structs. The cache sections dominate the encoded state (L2
// and L3 carry tens of thousands of lines), and the columnar layout
// both shrinks them (each field name appears once in the JSON, not once
// per line; the three bool columns pack into base64 bitmasks) and
// decodes as primitive-array scans instead of per-line object parses.
type CacheState struct {
	// Sets and Ways pin the geometry so a restore into a differently
	// configured cache fails loudly.
	Sets, Ways int
	// Tag, LRU, and ReadyAt are per-line columns (Sets×Ways entries).
	Tag     []uint64
	LRU     []uint32
	ReadyAt []int64
	// Valid, Priority (the EMISSARY P-bit), and Prefetched are per-line
	// bool columns packed as bitmasks.
	Valid, Priority, Prefetched Bitmask
	Tick                        uint32
	Inflight                    []int64
	InflightMin                 int64
	Stats                       CacheStats
	// Owner attribution columns, present only for shared (owner-tracked)
	// levels: Owner is the per-line owner column, InflightOwner parallels
	// Inflight, and Owners holds the per-owner interference counters. The
	// per-owner in-flight occupancy is derived from InflightOwner at
	// restore.
	Owner         []uint8      `json:",omitempty"`
	InflightOwner []uint8      `json:",omitempty"`
	Owners        []OwnerStats `json:",omitempty"`
}

// OwnerStats mirrors cache.OwnerStats field-for-field (a compile-checked
// struct conversion in the cache package keeps them in lockstep).
type OwnerStats struct {
	Fills                  uint64
	MSHRSteals             uint64
	DelayedFills           uint64
	DelayCycles            uint64
	SpecDropped            uint64
	CrossEvictionsSuffered uint64
	CrossEvictionsCaused   uint64
}

// Bitmask is a packed bool column: entry i lives at bit i%8 of byte i/8.
// JSON encodes it as a base64 string, so n bools cost ~n/6 bytes on the
// wire instead of 5–6 bytes each as literal true/false.
type Bitmask []byte

// NewBitmask returns an all-false mask with capacity for n entries.
func NewBitmask(n int) Bitmask { return make(Bitmask, (n+7)/8) }

// Set marks entry i true.
func (b Bitmask) Set(i int) { b[i/8] |= 1 << (i % 8) }

// Get reports entry i.
func (b Bitmask) Get(i int) bool { return b[i/8]>>(i%8)&1 != 0 }

// Len returns the number of entries the mask can hold.
func (b Bitmask) Len() int { return len(b) * 8 }

// CacheStats mirrors cache.Stats field-for-field (a compile-checked
// struct conversion in the cache package keeps them in lockstep).
type CacheStats struct {
	Accesses          uint64
	Misses            uint64
	InstMisses        uint64
	DataMisses        uint64
	LateHits          uint64
	Fills             uint64
	PrefetchFills     uint64
	UsefulPrefetches  uint64
	LatePrefetches    uint64
	UselessPrefetches uint64
	Evictions         uint64
}

// BPUState captures the branch prediction unit.
type BPUState struct {
	TAGE   TAGEState
	ITTAGE ITTAGEState
	BTB    BTBState
	RAS    RASState
	Stats  BPUStats
}

// BPUStats mirrors bpu.Stats (compile-checked conversion).
type BPUStats struct {
	CondBranches   uint64
	CondMispredict uint64
	BTBLookups     uint64
	BTBMissTaken   uint64
	IndBranches    uint64
	IndMispredict  uint64
	Returns        uint64
	RetMispredict  uint64
}

// TAGEState captures the conditional direction predictor: base and tagged
// tables, the global history ring, the folded-history accumulators (only
// the compressed value — lengths and fold points are geometry, rebuilt by
// construction), and the allocation state.
type TAGEState struct {
	Base     []int8
	Tables   [][]TAGEEntry
	HistBits []bool
	HistHead int
	// IdxFold/TagFold/Tg2Fold are the per-table folded-history compressed
	// values.
	IdxFold, TagFold, Tg2Fold []uint32
	UseAltOnNa                int8
	AllocSeed                 uint64
}

// TAGEEntry is one tagged-table entry.
type TAGEEntry struct {
	Tag    uint16
	Ctr    int8
	Useful uint8
}

// ITTAGEState captures the indirect target predictor.
type ITTAGEState struct {
	Base             []isa.Addr
	Tables           [][]ITTAGEEntry
	HistBits         []bool
	HistHead         int
	IdxFold, TagFold []uint32
	AllocSeed        uint64
}

// ITTAGEEntry is one tagged-table entry.
type ITTAGEEntry struct {
	Tag    uint16
	Target isa.Addr
	Ctr    int8
	Useful uint8
}

// BTBState captures the branch target buffer as a dense set-major entry
// array plus its LRU clock and hit accounting.
type BTBState struct {
	Sets, Ways    int
	Entries       []BTBEntryState
	Tick          uint32
	Lookups, Hits uint64
}

// BTBEntryState is one BTB entry.
type BTBEntryState struct {
	Valid  bool
	Tag    uint64
	Target isa.Addr
	Kind   isa.BranchKind
	LRU    uint32
}

// RASState captures the return address stack ring.
type RASState struct {
	Entries []isa.Addr
	Top     int
	Depth   int
}

// IAGState captures the instruction address generator: the oracle source,
// the forked wrong-path source (when fetching beyond an unresolved
// mispredict), and the mispredict gate.
type IAGState struct {
	Oracle            SourceState
	Wrong             *SourceState
	PendingMispredict bool
}

// Source kinds for SourceState. Exactly the sub-state matching the kind
// is populated; restore fails loudly on a kind the restoring source does
// not speak.
const (
	// SourceCFG is the synthetic CFG walker (trace.Walker). Wrong-path
	// walkers forked from any oracle kind that delegates its wrong paths
	// to a shadow walker use this kind too.
	SourceCFG = "cfg"
	// SourceChampSim is a ChampSim trace-replay oracle
	// (trace/champsim.Source), standalone or differential.
	SourceChampSim = "champsim"
	// SourceChampSimWrong is the derived wrong path of a standalone
	// ChampSim replay (trace/champsim.Wrong).
	SourceChampSimWrong = "champsim-wrong"
)

// SourceState is the tagged union over instruction-source kinds: the
// synthetic CFG walker and the ChampSim trace-replay sources serialize
// into the same slot of IAGState, keyed by Kind. The backing input (the
// generated program, the trace file) is reconstruction input, not state.
type SourceState struct {
	Kind string
	// Walker is the CFG-walker state (SourceCFG), and doubles as the
	// shadow-walker state of a differential ChampSim source.
	Walker *WalkerState `json:",omitempty"`
	// ChampSim is the trace-replay state (SourceChampSim and
	// SourceChampSimWrong).
	ChampSim *ChampSimState `json:",omitempty"`
}

// WalkerState captures a trace walker's position and stream state. The
// current block is stored by ID (-1 when the walker is "lost" outside any
// block); the program itself is reconstruction input, not state.
type WalkerState struct {
	Rng            uint64
	Stack          []isa.Addr
	LoopCnt        []uint16
	CurBlock       int
	InstIdx        int
	LostPC         isa.Addr
	WrongPath      bool
	DispatchCenter int
	Count          uint64
}

// ChampSimState captures a ChampSim trace-replay source. For the oracle,
// Count and Primed pin the reader position (records consumed = Count +
// one look-ahead record when Primed), and Decode/RAS hold the shadow
// structures the derived wrong path walks; the trace file itself is
// reconstruction input. For a wrong-path source (SourceChampSimWrong),
// PC and RAS hold the speculative cursor — the shadow tables it reads
// belong to (and are restored with) the parent oracle.
type ChampSimState struct {
	Count  uint64
	Primed bool
	// Decode is the sparse contents of the shadow decode cache, sorted
	// by slot index.
	Decode []ChampSimDecodeEntry `json:",omitempty"`
	RAS    []isa.Addr            `json:",omitempty"`
	PC     isa.Addr
}

// ChampSimDecodeEntry is one valid shadow decode-cache slot.
type ChampSimDecodeEntry struct {
	Slot   int
	PC     isa.Addr
	Size   uint8
	Kind   uint8
	Taken  bool
	Target isa.Addr
}

// EpisodeState is one live line-fetch episode. Episodes are shared (an
// FTQ entry's uops all reference their line's episode), so they are
// captured once in State.Episodes and referenced by index.
type EpisodeState struct {
	Line             isa.Addr
	WrongPath        bool
	Missed           bool
	ServedBy         uint8
	FetchCycle       int64
	DoneCycle        int64
	Starve           int
	BackendEmpty     bool
	WasPrefetch      bool
	Processed        bool
	ResteerTrigger   isa.Addr
	ResteerWasReturn bool
	Refs             int32
}

// FTQEntryState is one predicted basic block in the FTQ or IFU.
type FTQEntryState struct {
	Insts     []isa.Inst
	Start     isa.Addr
	Lines     []isa.Addr
	WrongPath bool
	HasBranch bool

	PredTaken  bool
	PredTarget isa.Addr
	PredBTBHit bool

	Mispredict      bool
	Cause           uint8
	ResolveAtDecode bool
	CorrectTarget   isa.Addr

	ShadowTrigger   isa.Addr
	ShadowWasReturn bool

	// Episodes indexes State.Episodes (IFU entry only; queued FTQ entries
	// have none).
	Episodes []int
	ReadyAt  int64
}

// UopState is one in-flight instruction (fetch→decode latch or ROB).
type UopState struct {
	Inst      isa.Inst
	Seq       uint64
	WrongPath bool
	// Episode indexes State.Episodes; -1 means no episode reference.
	Episode         int
	Mispredict      bool
	ResolveAtDecode bool
	Cause           uint8
	CorrectTarget   isa.Addr
	TriggerBlock    isa.Addr
	IsMemOp         bool
	DataLine        isa.Addr
	DoneAt          int64
	AvailableAt     int64
}

// ROBState captures the reorder buffer contents, oldest first.
type ROBState struct {
	Uops  []UopState
	Stats ROBStats
}

// ROBStats mirrors backend.Stats (compile-checked conversion).
type ROBStats struct {
	Pushed   uint64
	Retired  uint64
	Squashed uint64
}

// QueueState captures the prefetch queue contents, oldest first.
type QueueState struct {
	Entries []RequestState
	Stats   QueueStats
}

// RequestState is one queued prefetch target.
type RequestState struct {
	Line    isa.Addr
	Trigger uint8
}

// QueueStats mirrors prefetch.Stats (compile-checked conversion).
type QueueStats struct {
	Enqueued         uint64
	DroppedQueueFull uint64
	Issued           uint64
	DroppedPresent   uint64
	DroppedMSHR      uint64
	ByTrigger        [3]uint64
}

// PrefetcherState captures the prefetcher under test. Kind names the
// concrete implementation; exactly the matching sub-state is non-nil.
type PrefetcherState struct {
	Kind     string
	PDIP     *PDIPState     `json:",omitempty"`
	EIP      *EIPState      `json:",omitempty"`
	RDIP     *RDIPState     `json:",omitempty"`
	FNLMMA   *FNLMMAState   `json:",omitempty"`
	NextLine *NextLineState `json:",omitempty"`
}

// PDIPState captures the PDIP trigger→target table.
type PDIPState struct {
	Sets  [][]PDIPEntryState
	Tick  uint32
	Rng   uint64
	Stats PDIPStats
}

// PDIPEntryState is one PDIP table entry.
type PDIPEntryState struct {
	Valid   bool
	Tag     uint32
	LRU     uint32
	Targets []PDIPTargetState
}

// PDIPTargetState is one target slot.
type PDIPTargetState struct {
	Valid bool
	Base  isa.Addr
	Mask  uint8
	Trig  uint8
	LRU   uint32
}

// PDIPStats mirrors pdip.Stats (compile-checked conversion).
type PDIPStats struct {
	InsertAttempts      uint64
	InsertFiltered      uint64
	InsertNoTrigger     uint64
	InsertReturnSkipped uint64
	Inserted            uint64
	MaskMerged          uint64
	Lookups             uint64
	Hits                uint64
}

// EIPState captures the entangling prefetcher: the commit-order history
// ring, the bounded table, and — in analytical mode — the unbounded map,
// key-sorted.
type EIPState struct {
	Hist  []EIPHistEntry
	Head  int
	Size  int
	Sets  [][]EIPEntryState
	Anal  []EIPAnalEntry
	Tick  uint32
	Stats EIPStats
}

// EIPHistEntry is one history-ring slot.
type EIPHistEntry struct {
	Line  isa.Addr
	Cycle int64
}

// EIPEntryState is one bounded-table entry.
type EIPEntryState struct {
	Valid bool
	Tag   uint32
	LRU   uint32
	Dsts  []isa.Addr
}

// EIPAnalEntry is one analytical-table association, sorted by Src.
type EIPAnalEntry struct {
	Src  isa.Addr
	Dsts []isa.Addr
}

// EIPStats mirrors eip.Stats (compile-checked conversion).
type EIPStats struct {
	Entangled uint64
	NoSource  uint64
	Lookups   uint64
	Hits      uint64
}

// RDIPState captures the return-directed prefetcher: the signature table,
// the private RAS mirror, and pending retire-time requests.
type RDIPState struct {
	Sets    [][]RDIPEntryState
	Tick    uint32
	RAS     []isa.Addr
	Sig     uint64
	Pending []RequestState
	Stats   RDIPStats
}

// RDIPEntryState is one signature-table entry.
type RDIPEntryState struct {
	Valid bool
	Tag   uint32
	LRU   uint32
	Lines []isa.Addr
}

// RDIPStats mirrors rdip.Stats (compile-checked conversion).
type RDIPStats struct {
	ContextSwitches uint64
	Recorded        uint64
	Hits            uint64
}

// FNLMMAState captures the FNL+MMA prefetcher tables.
type FNLMMAState struct {
	Worth    []uint8
	MMATag   []uint32
	MMADst   []isa.Addr
	MissRing []isa.Addr
	MissHead int
	Pending  []RequestState
	Stats    FNLMMAStats
}

// FNLMMAStats mirrors fnlmma.Stats (compile-checked conversion).
type FNLMMAStats struct {
	FNLEmitted uint64
	MMAEmitted uint64
	Trained    uint64
}

// NextLineState captures the sequential prefetcher.
type NextLineState struct {
	Degree  int
	Emitted uint64
	Pending []RequestState
}

// SocketState is the socket-level snapshot of an N-core, shared-uncore
// simulation: the uncore (shared L2/L3 plus its metric registry) captured
// exactly once, and each core's full State as a child whose hierarchy
// section is marked Shared (its L2/L3 columns empty).
type SocketState struct {
	// Version is FormatVersion at capture time.
	Version int
	// Now is the socket clock (every core's clock is in lockstep with it).
	Now int64
	// SharedPrefetcher records the socket's table-sharing mode so a
	// restore into a differently wired socket fails loudly.
	SharedPrefetcher bool
	Uncore           UncoreState
	Cores            []State
}

// UncoreState captures the shared half of the socket's memory system.
type UncoreState struct {
	L2, L3 CacheState
	// Metrics holds the uncore registry's owned values (per-tenant traffic
	// counters; the interference counter funcs restore with the caches).
	Metrics RegistryState
}
