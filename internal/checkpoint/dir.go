package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Key content-addresses a checkpoint by hashing the canonical JSON of v
// (the caller passes everything that determines the warm state: format
// version, workload parameters, and the full simulator configuration).
// encoding/json renders struct fields in declaration order and sorts map
// keys, so the hash is stable across processes.
func Key(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// path places key's checkpoint inside dir.
func path(dir, key string) string {
	return filepath.Join(dir, key+".ckpt.gz")
}

// Load reads the checkpoint stored under key in dir. A missing file,
// a corrupt file, or a format-version mismatch all return an error the
// caller treats as a cache miss.
func Load(dir, key string) (*State, error) {
	f, err := os.Open(path(dir, key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Save writes st under key in dir, creating the directory as needed. The
// write goes through a temp file and an atomic rename so concurrent
// processes warming the same cell never observe a partial checkpoint —
// last writer wins with identical bytes.
func Save(dir, key string, st *State) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := Encode(tmp, st); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}
