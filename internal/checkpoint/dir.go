package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Key content-addresses a checkpoint by hashing the canonical JSON of v
// (the caller passes everything that determines the warm state: format
// version, workload parameters, and the full simulator configuration).
// encoding/json renders struct fields in declaration order and sorts map
// keys, so the hash is stable across processes.
func Key(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Checkpoint file suffixes: new binary checkpoints are written as
// <key>.ckpt; <key>.ckpt.gz is the legacy gzip+JSON suffix, still read
// (and GC'd) so directories written before the binary codec keep working.
const (
	ckptSuffix       = ".ckpt"
	ckptLegacySuffix = ".ckpt.gz"
)

// path places key's checkpoint inside dir.
func path(dir, key string) string {
	return filepath.Join(dir, key+ckptSuffix)
}

// Load reads the checkpoint stored under key in dir. A missing file,
// a corrupt file, or a format-version mismatch all return an error the
// caller treats as a cache miss. Prefer Dir.Load, which adds the decoded
// in-memory cache in front of this.
func Load(dir, key string) (*State, error) {
	b, err := os.ReadFile(path(dir, key))
	if err != nil {
		if b, err = os.ReadFile(filepath.Join(dir, key+ckptLegacySuffix)); err != nil {
			return nil, err
		}
	}
	return DecodeBytes(b)
}

// Save writes st under key in dir, creating the directory as needed. The
// write goes through a temp file and an atomic rename so concurrent
// processes warming the same cell never observe a partial checkpoint —
// last writer wins with identical bytes.
func Save(dir, key string, st *State) error {
	_, err := save(dir, key, st)
	return err
}

// save is Save returning the encoded size (the Dir cache's cost unit).
func save(dir, key string, st *State) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	return int64(buf.Len()), nil
}

// DefaultCacheBytes is Dir's default in-memory cache budget. Cost is
// accounted in encoded bytes (the decoded footprint is a few times
// larger), so the default keeps roughly a few hundred warm states
// resident — far more tuples than any one grid touches.
const DefaultCacheBytes = 256 << 20

// Dir is a content-addressed warm-state store: the on-disk checkpoint
// directory fronted by a size-bounded in-memory cache of decoded states.
// The first in-process fork of a tuple pays one disk read + decode; every
// later fork gets the already-decoded *State back directly. Cached states
// are shared across callers, which is safe because restore code treats a
// State as read-only (the same contract that lets one snapshot fork
// concurrently).
//
// All methods are safe for concurrent use; concurrent Loads of the same
// key are singleflighted so a cold tuple is read and decoded once, not
// once per caller.
type Dir struct {
	path       string
	cacheBytes int64

	mu       sync.Mutex
	entries  map[string]*dirEntry
	lru      dirList // most-recent first; evictions pop the tail
	cost     int64
	inflight map[string]*dirLoad
	stats    DirStats
}

// dirEntry is one cached decoded state on the Dir's LRU list.
type dirEntry struct {
	key        string
	st         *State
	cost       int64
	prev, next *dirEntry
}

// dirList is an intrusive doubly-linked LRU list. A hand-rolled list
// (rather than scanning the entry map for the oldest tick) keeps
// eviction O(1) and keeps map iteration out of the package entirely.
type dirList struct {
	head, tail *dirEntry
}

func (l *dirList) pushFront(e *dirEntry) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *dirList) remove(e *dirEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *dirList) moveFront(e *dirEntry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// dirLoad is one in-flight disk load, singleflighted per key.
type dirLoad struct {
	done chan struct{}
	st   *State
	cost int64
	err  error
}

// DirStats counts the store's traffic since construction.
type DirStats struct {
	// CacheHits counts Loads served decoded from memory (including
	// singleflight waiters that blocked on a leader's disk load).
	CacheHits uint64
	// DiskHits counts Loads that found and decoded an on-disk checkpoint.
	DiskHits uint64
	// Misses counts Loads that found nothing (the caller re-warms).
	Misses uint64
	// Stores counts Saves.
	Stores uint64
	// Evictions counts in-memory cache entries dropped to fit the budget.
	Evictions uint64
}

// NewDir opens the checkpoint directory at path with an in-memory cache
// budget of cacheBytes encoded bytes. cacheBytes == 0 selects
// DefaultCacheBytes; cacheBytes < 0 disables the in-memory cache (every
// Load decodes from disk). The directory is created lazily on first Save.
func NewDir(path string, cacheBytes int64) *Dir {
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	return &Dir{
		path:       path,
		cacheBytes: cacheBytes,
		entries:    make(map[string]*dirEntry),
		inflight:   make(map[string]*dirLoad),
	}
}

// Path returns the directory this store fronts.
func (d *Dir) Path() string { return d.path }

// Stats returns a snapshot of the store's traffic counters.
func (d *Dir) Stats() DirStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Load returns the state stored under key, preferring the in-memory
// cache. cached reports a memory hit — the caller skipped both disk and
// decode. A miss is (nil, false, nil); errors (corrupt or truncated
// files, version mismatches) are also misses, surfaced for transparency
// but safe to ignore: the caller re-warms and the next Save overwrites
// the bad file.
func (d *Dir) Load(key string) (st *State, cached bool, err error) {
	d.mu.Lock()
	if e, ok := d.entries[key]; ok {
		d.lru.moveFront(e)
		d.stats.CacheHits++
		d.mu.Unlock()
		d.touch(key)
		return e.st, true, nil
	}
	if c, ok := d.inflight[key]; ok {
		d.mu.Unlock()
		<-c.done
		d.mu.Lock()
		if c.st != nil {
			d.stats.CacheHits++
		} else {
			d.stats.Misses++
		}
		d.mu.Unlock()
		return c.st, c.st != nil, c.err
	}
	c := &dirLoad{done: make(chan struct{})}
	d.inflight[key] = c
	d.mu.Unlock()

	c.st, c.cost, c.err = d.loadDisk(key)

	d.mu.Lock()
	delete(d.inflight, key)
	if c.st != nil {
		d.stats.DiskHits++
		d.insertLocked(key, c.st, c.cost)
	} else {
		d.stats.Misses++
	}
	d.mu.Unlock()
	close(c.done)
	return c.st, false, c.err
}

// loadDisk reads and decodes key's file, trying the binary suffix first
// and the legacy gzip+JSON suffix second. The decoded cost is the
// encoded length — the unit the cache budget is accounted in.
func (d *Dir) loadDisk(key string) (*State, int64, error) {
	b, err := os.ReadFile(path(d.path, key))
	if err != nil {
		if b, err = os.ReadFile(filepath.Join(d.path, key+ckptLegacySuffix)); err != nil {
			return nil, 0, nil // not stored: a plain miss, not an error
		}
	}
	st, err := DecodeBytes(b)
	if err != nil {
		return nil, 0, err
	}
	d.touch(key)
	return st, int64(len(b)), nil
}

// Save writes st under key (atomic temp-file + rename, as the package
// function) and installs the decoded state in the in-memory cache, so
// the tuple that was just warmed forks from memory from the start.
func (d *Dir) Save(key string, st *State) error {
	n, err := save(d.path, key, st)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.stats.Stores++
	d.insertLocked(key, st, n)
	d.mu.Unlock()
	return nil
}

// insertLocked installs (key, st) with the given cost and evicts from the
// LRU tail until the cache fits its budget. Caller holds d.mu.
func (d *Dir) insertLocked(key string, st *State, cost int64) {
	if d.cacheBytes < 0 {
		return
	}
	if old, ok := d.entries[key]; ok {
		d.lru.remove(old)
		d.cost -= old.cost
		delete(d.entries, key)
	}
	e := &dirEntry{key: key, st: st, cost: cost}
	d.entries[key] = e
	d.lru.pushFront(e)
	d.cost += cost
	for d.cost > d.cacheBytes && d.lru.tail != nil && d.lru.tail != e {
		victim := d.lru.tail
		d.lru.remove(victim)
		delete(d.entries, victim.key)
		d.cost -= victim.cost
		d.stats.Evictions++
	}
}

// touch bumps key's file mtime so GC's least-recently-used order follows
// actual use, not just write time. Best-effort: a failed touch (file
// GC'd by another process) costs nothing.
func (d *Dir) touch(key string) {
	//lint:ignore determinism host-side cache-recency metadata for GC eviction order; never observable by simulation state
	now := time.Now()
	_ = os.Chtimes(path(d.path, key), now, now)
}

// GC bounds the on-disk store: when the checkpoint files under the
// directory total more than maxBytes, the least-recently-used files
// (oldest mtime — Load touches files it serves) are removed until the
// rest fit. It returns how many files were removed and how many bytes
// they freed. The in-memory cache is left intact: decoded states stay
// servable in-process even when their backing file is collected.
func (d *Dir) GC(maxBytes int64) (removed int, freed int64, err error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil // nothing stored yet
		}
		return 0, 0, fmt.Errorf("checkpoint: gc: %w", err)
	}
	type file struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []file
	var total int64
	for _, en := range ents {
		name := en.Name()
		if !strings.HasSuffix(name, ckptSuffix) && !strings.HasSuffix(name, ckptLegacySuffix) {
			continue // foreign files and in-flight temps are not ours to delete
		}
		info, err := en.Info()
		if err != nil {
			continue // raced with a concurrent GC/rename
		}
		files = append(files, file{name: name, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name // stable order for equal mtimes
	})
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(filepath.Join(d.path, f.name)); err != nil {
			continue // raced with a concurrent GC; its removal still counts toward its own total
		}
		total -= f.size
		removed++
		freed += f.size
	}
	return removed, freed, nil
}
