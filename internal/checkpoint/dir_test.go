package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestDirLoadSaveCache covers the store's fast path: a miss before any
// Save, a Save that installs the decoded state, and a Load served from
// memory — returning the very same *State, not a re-decode.
func TestDirLoadSaveCache(t *testing.T) {
	dir := t.TempDir()
	d := NewDir(dir, 0)
	st := sampleState()

	if got, cached, err := d.Load("k1"); got != nil || cached || err != nil {
		t.Fatalf("load before save = (%v, %v, %v), want (nil, false, nil)", got, cached, err)
	}
	if err := d.Save("k1", st); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "k1"+ckptSuffix)); err != nil {
		t.Fatalf("save left no %s file: %v", ckptSuffix, err)
	}
	got, cached, err := d.Load("k1")
	if err != nil || !cached {
		t.Fatalf("load after save = (cached=%v, err=%v), want a memory hit", cached, err)
	}
	if got != st {
		t.Error("memory hit returned a different *State than the one saved (re-decoded instead of cached)")
	}
	s := d.Stats()
	want := DirStats{CacheHits: 1, Misses: 1, Stores: 1}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}

	// A fresh Dir over the same directory models the next process: first
	// Load pays the disk decode, the second is a memory hit.
	d2 := NewDir(dir, 0)
	got2, cached2, err := d2.Load("k1")
	if err != nil || cached2 {
		t.Fatalf("cold load = (cached=%v, err=%v), want a disk hit", cached2, err)
	}
	if !reflect.DeepEqual(st, got2) {
		t.Error("disk round trip through Dir is lossy")
	}
	if _, cached3, _ := d2.Load("k1"); !cached3 {
		t.Error("second load of a disk-hit key was not served from memory")
	}
	if s := d2.Stats(); s.DiskHits != 1 || s.CacheHits != 1 {
		t.Errorf("cold-dir stats = %+v, want 1 disk hit + 1 cache hit", s)
	}
}

// TestDirCacheDisabled pins the cacheBytes < 0 contract: every Load
// decodes from disk, nothing is retained.
func TestDirCacheDisabled(t *testing.T) {
	d := NewDir(t.TempDir(), -1)
	if err := d.Save("k", sampleState()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		st, cached, err := d.Load("k")
		if err != nil || st == nil || cached {
			t.Fatalf("load %d = (%v, cached=%v, err=%v), want an uncached disk hit", i, st, cached, err)
		}
	}
	if s := d.Stats(); s.DiskHits != 2 || s.CacheHits != 0 {
		t.Errorf("stats = %+v, want 2 disk hits and no cache hits", s)
	}
}

// TestDirEviction bounds the cache to less than two entries' cost and
// checks LRU order: inserting a second state evicts the first (never the
// entry just inserted), and the evicted key falls back to disk.
func TestDirEviction(t *testing.T) {
	dir := t.TempDir()
	probe := NewDir(dir, 0)
	if err := probe.Save("a", sampleState()); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, "a"+ckptSuffix))
	if err != nil {
		t.Fatal(err)
	}
	cost := info.Size()

	d := NewDir(dir, cost+cost/2) // room for one entry, not two
	if err := d.Save("a", sampleState()); err != nil {
		t.Fatal(err)
	}
	if err := d.Save("b", sampleState()); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v, want exactly one eviction", s)
	}
	if _, cached, _ := d.Load("b"); !cached {
		t.Error("most recent entry was evicted instead of the LRU one")
	}
	if st, cached, err := d.Load("a"); st == nil || cached || err != nil {
		t.Errorf("evicted key load = (%v, cached=%v, err=%v), want an uncached disk hit", st, cached, err)
	}
}

// TestDirSingleflight hammers one cold key from many goroutines: the
// disk decode must happen exactly once, with every caller getting the
// same decoded state back.
func TestDirSingleflight(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, "k", sampleState()); err != nil { // package Save: nothing cached yet
		t.Fatal(err)
	}
	d := NewDir(dir, 0)
	const callers = 16
	states := make([]*State, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := d.Load("k")
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			states[i] = st
		}(i)
	}
	wg.Wait()
	for i, st := range states {
		if st == nil {
			t.Fatalf("caller %d got no state", i)
		}
		if st != states[0] {
			t.Fatalf("caller %d decoded a private copy — singleflight did not share", i)
		}
	}
	if s := d.Stats(); s.DiskHits != 1 || s.CacheHits != callers-1 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 1 disk hit and %d cache hits", s, callers-1)
	}
}

// TestDirLegacyFile plants a legacy gzip+JSON checkpoint under the old
// .ckpt.gz suffix: Dir.Load must find it, sniff it, and migrate it to the
// current version in memory.
func TestDirLegacyFile(t *testing.T) {
	dir := t.TempDir()
	st := sampleState()
	var buf bytes.Buffer
	if err := encodeLegacyJSON(&buf, st); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "old"+ckptLegacySuffix), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	d := NewDir(dir, 0)
	got, cached, err := d.Load("old")
	if err != nil || got == nil || cached {
		t.Fatalf("legacy load = (%v, cached=%v, err=%v), want an uncached disk hit", got, cached, err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Error("legacy on-disk checkpoint decoded lossily through Dir")
	}
}

// TestDirCorruptFile pins the corrupt-file contract: Load surfaces the
// decode error but counts a miss, so the caller re-warms and overwrites.
func TestDirCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad"+ckptSuffix), []byte("PDCKgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := NewDir(dir, 0)
	st, cached, err := d.Load("bad")
	if st != nil || cached || err == nil {
		t.Fatalf("corrupt load = (%v, cached=%v, err=%v), want (nil, false, error)", st, cached, err)
	}
	if s := d.Stats(); s.Misses != 1 {
		t.Errorf("stats = %+v, want the corrupt load counted as a miss", s)
	}
}

// TestDirGC fills a directory past a byte budget with files of staggered
// mtimes and requires the oldest to go first, foreign files to survive,
// and a no-op when already under budget.
func TestDirGC(t *testing.T) {
	dir := t.TempDir()
	d := NewDir(dir, 0)
	keys := []string{"k0", "k1", "k2", "k3"}
	var sizes []int64
	base := time.Unix(1_700_000_000, 0)
	for i, k := range keys {
		if err := d.Save(k, sampleState()); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, k+ckptSuffix)
		// Pin mtimes explicitly so the LRU order under test is exact, not
		// a race against file-system timestamp granularity.
		mt := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	var total int64
	for _, s := range sizes {
		total += s
	}
	if n, freed, err := d.GC(total); n != 0 || freed != 0 || err != nil {
		t.Fatalf("GC under budget = (%d, %d, %v), want a no-op", n, freed, err)
	}

	// Budget for the two newest files: the two oldest must be removed.
	budget := sizes[2] + sizes[3]
	n, freed, err := d.GC(budget)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || freed != sizes[0]+sizes[1] {
		t.Errorf("GC removed %d files (%d bytes), want 2 oldest (%d bytes)", n, freed, sizes[0]+sizes[1])
	}
	for i, k := range keys {
		_, err := os.Stat(filepath.Join(dir, k+ckptSuffix))
		if gone := os.IsNotExist(err); gone != (i < 2) {
			t.Errorf("after GC, %s exists=%v — oldest-first order violated", k, !gone)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("GC removed a non-checkpoint file: %v", err)
	}

	// The in-memory cache still serves a key whose file was collected.
	if _, cached, _ := d.Load("k0"); !cached {
		t.Error("GC invalidated the in-memory cache entry for a collected file")
	}

	// A directory that was never created is an empty store, not an error.
	if n, freed, err := NewDir(filepath.Join(dir, "never-created"), 0).GC(1); n != 0 || freed != 0 || err != nil {
		t.Errorf("GC on a missing directory = (%d, %d, %v), want (0, 0, nil)", n, freed, err)
	}
}
