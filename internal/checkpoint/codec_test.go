package checkpoint

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"

	"pdip/internal/isa"
)

// sampleCache fills one cache level with non-trivial values in every
// column, including the owner-attribution columns when owned is set.
func sampleCache(sets, ways int, owned bool) CacheState {
	n := sets * ways
	c := CacheState{
		Sets: sets, Ways: ways,
		Tag:         make([]uint64, n),
		LRU:         make([]uint32, n),
		ReadyAt:     make([]int64, n),
		Valid:       NewBitmask(n),
		Priority:    NewBitmask(n),
		Prefetched:  NewBitmask(n),
		Tick:        77,
		Inflight:    []int64{250, 90, 100},
		InflightMin: 90,
		Stats: CacheStats{
			Accesses: 10, Misses: 3, InstMisses: 2, DataMisses: 1,
			LateHits: 1, Fills: 3, PrefetchFills: 2, UsefulPrefetches: 1,
			LatePrefetches: 1, UselessPrefetches: 1, Evictions: 2,
		},
	}
	for i := 0; i < n; i++ {
		c.Tag[i] = uint64(0x1000 + 64*i)
		c.LRU[i] = uint32(n - i)
		c.ReadyAt[i] = int64(50 - 3*i)
		if i%2 == 0 {
			c.Valid.Set(i)
		}
		if i%3 == 0 {
			c.Priority.Set(i)
		}
		if i%5 == 0 {
			c.Prefetched.Set(i)
		}
	}
	if owned {
		c.Owner = make([]uint8, n)
		for i := range c.Owner {
			c.Owner[i] = uint8(i % 3)
		}
		c.InflightOwner = []uint8{0, 1, 1}
		c.Owners = []OwnerStats{
			{Fills: 5, MSHRSteals: 1, DelayedFills: 2, DelayCycles: 9,
				SpecDropped: 1, CrossEvictionsSuffered: 1, CrossEvictionsCaused: 2},
			{Fills: 3},
		}
	}
	return c
}

// samplePrefetcher builds a populated PrefetcherState for the given kind.
func samplePrefetcher(kind string) PrefetcherState {
	switch kind {
	case "pdip":
		return PrefetcherState{Kind: "pdip", PDIP: &PDIPState{
			Sets: [][]PDIPEntryState{
				{{Valid: true, Tag: 7, LRU: 1, Targets: []PDIPTargetState{
					{Valid: true, Base: 0x5000, Mask: 0b101, Trig: 1, LRU: 2},
					{},
				}}},
				nil,
				{{Valid: true, Tag: 9, LRU: 4}},
			},
			Tick: 3, Rng: 99,
			Stats: PDIPStats{InsertAttempts: 5, InsertFiltered: 1, InsertNoTrigger: 1,
				InsertReturnSkipped: 1, Inserted: 2, MaskMerged: 1, Lookups: 10, Hits: 4},
		}}
	case "eip":
		return PrefetcherState{Kind: "eip", EIP: &EIPState{
			Hist: []EIPHistEntry{{Line: 0x40, Cycle: 10}, {Line: 0x80, Cycle: 12}},
			Head: 1, Size: 2,
			Sets: [][]EIPEntryState{
				{{Valid: true, Tag: 3, LRU: 1, Dsts: []isa.Addr{0x100, 0x140}}},
				nil,
			},
			Anal:  []EIPAnalEntry{{Src: 0x40, Dsts: []isa.Addr{0x80}}, {Src: 0x80, Dsts: []isa.Addr{0xc0, 0x100}}},
			Tick:  5,
			Stats: EIPStats{Entangled: 4, NoSource: 1, Lookups: 9, Hits: 3},
		}}
	case "rdip":
		return PrefetcherState{Kind: "rdip", RDIP: &RDIPState{
			Sets: [][]RDIPEntryState{
				{{Valid: true, Tag: 2, LRU: 1, Lines: []isa.Addr{0x200, 0x240}}},
			},
			Tick: 2, RAS: []isa.Addr{0x300, 0x340}, Sig: 0xabcdef,
			Pending: []RequestState{{Line: 0x400, Trigger: 2}},
			Stats:   RDIPStats{ContextSwitches: 3, Recorded: 7, Hits: 2},
		}}
	case "fnlmma":
		return PrefetcherState{Kind: "fnlmma", FNLMMA: &FNLMMAState{
			Worth:    []uint8{0, 2, 1},
			MMATag:   []uint32{4, 5},
			MMADst:   []isa.Addr{0x500, 0x540},
			MissRing: []isa.Addr{0x600},
			MissHead: 0,
			Pending:  []RequestState{{Line: 0x640, Trigger: 1}},
			Stats:    FNLMMAStats{FNLEmitted: 6, MMAEmitted: 2, Trained: 8},
		}}
	case "nextline":
		return PrefetcherState{Kind: "nextline", NextLine: &NextLineState{
			Degree: 2, Emitted: 11,
			Pending: []RequestState{{Line: 0x700, Trigger: 0}},
		}}
	default:
		return PrefetcherState{Kind: kind}
	}
}

// sampleState hand-builds a State exercising every section of the wire
// format: optional pointers present, every column type non-empty, both
// walker and trace-replay source kinds, and shared episodes. The slices
// are nil-or-non-empty on purpose — the decoder materialises empty
// columns as nil, and reflect.DeepEqual distinguishes nil from []T{}.
func sampleState() *State {
	st := &State{Version: FormatVersion}
	st.Core = CoreState{
		Now: 12345, Seq: 99, Retired: 88,
		HasResteer: true, ResteerAt: 12350, ResteerTarget: 0x4000,
		ResteerTrigger: 0x4040, ResteerCause: 2,
		IAGResumeAt: 12351, ShadowTrigger: 0x80, ShadowWasReturn: true,
		ShadowLeft: 3, LastTakenBlock: 0x1000,
		Promoted:    []isa.Addr{0x40, 0x80, 0x100},
		FECEver:     []isa.Addr{0x40},
		FECSet:      []isa.Addr{0x40, 0xc0},
		PFSet:       []PFSetEntry{{Line: 0x40, Cycle: 10}, {Line: 0x80, Cycle: 12}},
		FECReqAge:   [4]uint64{1, 2, 3, 4},
		FECHolds:    [3]uint64{5, 6, 7},
		FECTrace:    []FECInstanceState{{Line: 0x40, Trigger: 0x20, Starve: 4, Served: 1}},
		SampleEvery: 1000, DataRng: 777, PromoRng: 888,
	}
	st.Metrics = RegistryState{
		Counters:   []NamedCounter{{Name: "a.x", Value: 1}, {Name: "b.y", Value: 2}},
		Gauges:     []NamedGauge{{Name: "g", Value: 1.5}},
		Histograms: []HistogramState{{Name: "h", Counts: []uint64{1, 0, 3}, Total: 4, Sum: 9.5}},
	}
	st.Mem = HierarchyState{
		L1I: sampleCache(2, 2, false),
		L1D: sampleCache(2, 2, false),
		L2:  sampleCache(4, 2, true),
		L3:  sampleCache(4, 4, true),
	}
	st.BPU = BPUState{
		TAGE: TAGEState{
			Base: []int8{-2, -1, 0, 1},
			Tables: [][]TAGEEntry{
				{{Tag: 9, Ctr: -1, Useful: 1}, {Tag: 3, Ctr: 2}},
				{{Tag: 1, Useful: 3}},
			},
			HistBits: []bool{true, false, true, true},
			HistHead: 2,
			IdxFold:  []uint32{5, 6}, TagFold: []uint32{7, 8}, Tg2Fold: []uint32{9, 10},
			UseAltOnNa: -3, AllocSeed: 0xdeadbeef,
		},
		ITTAGE: ITTAGEState{
			Base:     []isa.Addr{0x100, 0x200},
			Tables:   [][]ITTAGEEntry{{{Tag: 4, Target: 0x300, Ctr: 1, Useful: 2}}},
			HistBits: []bool{false, true},
			HistHead: 1,
			IdxFold:  []uint32{1}, TagFold: []uint32{2},
			AllocSeed: 42,
		},
		BTB: BTBState{Sets: 2, Ways: 2, Entries: []BTBEntryState{
			{Valid: true, Tag: 10, Target: 0x400, Kind: isa.CondDirect, LRU: 1},
			{},
			{Valid: true, Tag: 11, Target: 0x500, Kind: isa.Return, LRU: 2},
			{Valid: true, Tag: 12, Target: 0x600, Kind: isa.IndirectCall, LRU: 3},
		}, Tick: 4, Lookups: 100, Hits: 60},
		RAS: RASState{Entries: []isa.Addr{0x700, 0x800, 0}, Top: 1, Depth: 2},
		Stats: BPUStats{CondBranches: 50, CondMispredict: 5, BTBLookups: 80,
			BTBMissTaken: 8, IndBranches: 7, IndMispredict: 2, Returns: 6, RetMispredict: 1},
	}
	st.IAG = IAGState{
		Oracle: SourceState{
			Kind: SourceChampSim,
			Walker: &WalkerState{Rng: 1, Stack: []isa.Addr{0x10, 0x20},
				LoopCnt: []uint16{3, 0, 1}, CurBlock: 7, InstIdx: 2, LostPC: 0x30,
				DispatchCenter: 5, Count: 999},
			ChampSim: &ChampSimState{Count: 1234, Primed: true,
				Decode: []ChampSimDecodeEntry{
					{Slot: 3, PC: 0x40, Size: 4, Kind: 1, Taken: true, Target: 0x50},
					{Slot: 9, PC: 0x60, Size: 2},
				},
				RAS: []isa.Addr{0x70}, PC: 0x80},
		},
		Wrong: &SourceState{Kind: SourceCFG,
			Walker: &WalkerState{Rng: 2, CurBlock: -1, LostPC: 0x90, WrongPath: true, Count: 55}},
		PendingMispredict: true,
	}
	st.Episodes = []EpisodeState{
		{Line: 0x1000, WrongPath: true, Missed: true, ServedBy: 2, FetchCycle: 100,
			DoneCycle: 150, Starve: 3, BackendEmpty: true, WasPrefetch: true,
			ResteerTrigger: 0x1040, ResteerWasReturn: true, Refs: 2},
		{Line: 0x1040, Processed: true, Refs: 1},
	}
	insts := []isa.Inst{
		{PC: 0x2000, Size: 4},
		{PC: 0x2004, Size: 2, Kind: isa.CondDirect, Taken: true, Target: 0x2100},
	}
	st.FTQ = []FTQEntryState{{
		Insts: insts, Start: 0x2000, Lines: []isa.Addr{0x2000, 0x2040},
		HasBranch: true, PredTaken: true, PredTarget: 0x2100, PredBTBHit: true,
		Mispredict: true, Cause: 1, ResolveAtDecode: true, CorrectTarget: 0x2200,
		ShadowTrigger: 0x2004, ReadyAt: 120,
	}}
	st.IFU = &FTQEntryState{
		Insts: insts[:1:1], Start: 0x3000, Lines: []isa.Addr{0x3000},
		Episodes: []int{0, 1}, ReadyAt: 130,
	}
	st.DecodeQ = []UopState{{
		Inst: insts[0], Seq: 5, Episode: 0, IsMemOp: true,
		DataLine: 0x9000, DoneAt: 140, AvailableAt: 135,
	}}
	st.ROB = ROBState{
		Uops: []UopState{{
			Inst: insts[1], Seq: 6, Episode: -1, Mispredict: true, ResolveAtDecode: true,
			Cause: 2, CorrectTarget: 0x2200, TriggerBlock: 0x2000, DoneAt: 160, AvailableAt: 150,
		}},
		Stats: ROBStats{Pushed: 10, Retired: 8, Squashed: 1},
	}
	st.PQ = QueueState{
		Entries: []RequestState{{Line: 0x4000, Trigger: 1}, {Line: 0x4040}},
		Stats: QueueStats{Enqueued: 9, DroppedQueueFull: 1, Issued: 7,
			DroppedPresent: 1, DroppedMSHR: 1, ByTrigger: [3]uint64{3, 4, 2}},
	}
	st.Prefetcher = samplePrefetcher("pdip")
	return st
}

// sampleSocketState builds a two-core socket whose per-core hierarchies
// are shared views (empty L2/L3 columns) of the captured uncore.
func sampleSocketState() *SocketState {
	a, b := sampleState(), sampleState()
	for _, st := range []*State{a, b} {
		st.Mem.L2 = CacheState{}
		st.Mem.L3 = CacheState{}
		st.Mem.Shared = true
	}
	b.Core.Seq = 123 // make the cores distinguishable
	b.Prefetcher = samplePrefetcher("eip")
	return &SocketState{
		Version:          FormatVersion,
		Now:              12345,
		SharedPrefetcher: true,
		Uncore: UncoreState{
			L2: sampleCache(4, 2, true),
			L3: sampleCache(4, 4, true),
			Metrics: RegistryState{
				Counters: []NamedCounter{{Name: "uncore.tenant0.requests", Value: 42}},
			},
		},
		Cores: []State{*a, *b},
	}
}

// encodeState is a test helper returning st's wire bytes.
func encodeState(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTrip pushes a fully populated state through the binary
// codec and requires an exact structural match back.
func TestBinaryRoundTrip(t *testing.T) {
	st := sampleState()
	got, err := DecodeBytes(encodeState(t, st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Errorf("binary round trip is lossy:\n in: %+v\nout: %+v", st, got)
	}
}

// TestBinaryRoundTripAllPrefetchers round-trips each prefetcher kind's
// sub-state through its dedicated wire section.
func TestBinaryRoundTripAllPrefetchers(t *testing.T) {
	for _, kind := range []string{"none", "pdip", "eip", "rdip", "fnlmma", "nextline"} {
		st := sampleState()
		st.Prefetcher = samplePrefetcher(kind)
		got, err := DecodeBytes(encodeState(t, st))
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if !reflect.DeepEqual(st.Prefetcher, got.Prefetcher) {
			t.Errorf("%s: prefetcher state round trip is lossy:\n in: %+v\nout: %+v",
				kind, st.Prefetcher, got.Prefetcher)
		}
	}
}

// TestBinarySocketRoundTrip round-trips a two-core socket snapshot.
func TestBinarySocketRoundTrip(t *testing.T) {
	st := sampleSocketState()
	var buf bytes.Buffer
	if err := EncodeSocket(&buf, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSocket(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Errorf("socket round trip is lossy:\n in: %+v\nout: %+v", st, got)
	}
}

// binarySampleDigest pins the exact wire bytes of sampleState's encoding.
// The encoder is required to be a pure function of the state — same state,
// same bytes, across processes and Go versions — because the disk store is
// content-addressed and the fabric's warm-once leases assume one canonical
// encoding per tuple. If this digest changes, the wire format changed:
// bump FormatVersion (so stale directories miss instead of misdecoding)
// and re-pin.
const binarySampleDigest = "f8d71780137ed52ec6f3cc4fa0fcbd50a24c0d462d19eb870f0588576001d270"

// TestBinaryDeterministicBytes requires byte-identical encodings across
// repeated encodes, across a decode/re-encode round trip, and across time
// (the pinned digest).
func TestBinaryDeterministicBytes(t *testing.T) {
	st := sampleState()
	a := encodeState(t, st)
	if !bytes.Equal(a, encodeState(t, st)) {
		t.Error("two encodings of the same state differ (nondeterministic encoder)")
	}
	dec, err := DecodeBytes(a)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(a, encodeState(t, dec)) {
		t.Error("re-encoding a decoded state changed the bytes (non-canonical decode)")
	}
	if got := hex.EncodeToString(sum256(a)); got != binarySampleDigest {
		t.Errorf("wire format drifted: sample encoding digest = %s, pinned %s\n"+
			"(if the change is intentional, bump FormatVersion and re-pin)", got, binarySampleDigest)
	}
	if len(a) < 6 || a[0] != 'P' || a[1] != 'D' || a[2] != 'C' || a[3] != 'K' {
		t.Errorf("encoding does not start with the PDCK magic: % x", a[:6])
	}
}

func sum256(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// TestBinaryDecodeTruncated feeds every proper prefix of a valid encoding
// to the decoder: each must fail with an error — never panic, never
// half-succeed.
func TestBinaryDecodeTruncated(t *testing.T) {
	full := encodeState(t, sampleState())
	for n := 0; n < len(full); n++ {
		if _, err := DecodeBytes(full[:n:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte encoding", n, len(full))
		}
	}
}

// TestBinaryVersionMismatch pins the refusal path for snapshots from a
// different format version.
func TestBinaryVersionMismatch(t *testing.T) {
	st := sampleState()
	st.Version = FormatVersion + 1
	if _, err := DecodeBytes(encodeState(t, st)); err == nil {
		t.Error("decode accepted a stream with a future format version")
	}
}

// TestLegacyJSONMigration writes the retained gzip+JSON format and decodes
// it through the sniffing front door: the bytes must be recognised as
// legacy, decode to the identical state, and come back stamped with the
// current FormatVersion.
func TestLegacyJSONMigration(t *testing.T) {
	st := sampleState()
	var buf bytes.Buffer
	if err := encodeLegacyJSON(&buf, st); err != nil {
		t.Fatalf("legacy encode: %v", err)
	}
	if !isLegacy(buf.Bytes()) {
		t.Fatal("legacy gzip stream not sniffed as legacy")
	}
	if st.Version != FormatVersion {
		t.Fatalf("legacy encode mutated the in-memory state's version to %d", st.Version)
	}
	got, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("decode legacy: %v", err)
	}
	if got.Version != FormatVersion {
		t.Errorf("migrated state carries version %d, want %d", got.Version, FormatVersion)
	}
	if !reflect.DeepEqual(st, got) {
		t.Errorf("legacy JSON migration is lossy:\n in: %+v\nout: %+v", st, got)
	}
	// The io.Reader entry point must sniff too (Dir reads files whole, but
	// harness code paths go through Decode).
	if _, err := Decode(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("Decode(reader) rejected a legacy stream: %v", err)
	}
}

// TestLegacySocketJSONMigration is TestLegacyJSONMigration for the
// socket-level snapshot.
func TestLegacySocketJSONMigration(t *testing.T) {
	st := sampleSocketState()
	var buf bytes.Buffer
	if err := encodeLegacySocketJSON(&buf, st); err != nil {
		t.Fatalf("legacy encode: %v", err)
	}
	got, err := DecodeSocket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode legacy socket: %v", err)
	}
	if got.Version != FormatVersion {
		t.Errorf("migrated socket carries version %d, want %d", got.Version, FormatVersion)
	}
	if !reflect.DeepEqual(st, got) {
		t.Errorf("legacy socket JSON migration is lossy:\n in: %+v\nout: %+v", st, got)
	}
}

// TestLegacyJSONVersionMismatch builds a legacy stream claiming an older
// layout version than the JSON decoder understands: the sniffed decode
// must refuse it rather than force the bytes into current structs.
func TestLegacyJSONVersionMismatch(t *testing.T) {
	st := sampleState()
	st.Version = legacyJSONVersion - 1
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(st); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBytes(buf.Bytes()); err == nil {
		t.Error("decode accepted a legacy stream with a pre-legacy layout version")
	}
}
