// Legacy gzip+JSON wire format (FormatVersion ≤ 3). Retained read-only:
// Decode/DecodeSocket sniff the gzip magic and fall back here so a
// -checkpoint-dir populated before the binary codec still serves warm
// states. New writes always use the binary format (checkpoint_binary.go).
// encodeLegacyJSON survives unexported for the migration round-trip test.
package checkpoint

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// legacyMagic is the gzip stream magic; every legacy checkpoint starts
// with it, and the binary format's magic deliberately differs in byte 0.
var legacyMagic = [2]byte{0x1f, 0x8b}

func isLegacy(b []byte) bool {
	return len(b) >= 2 && b[0] == legacyMagic[0] && b[1] == legacyMagic[1]
}

// acceptLegacyVersion maps an on-wire legacy version to the current
// FormatVersion. Layout 3 is field-identical to 4 (the bump was
// wire-format only), so it decodes into the current structs unchanged.
func acceptLegacyVersion(v int) (int, error) {
	if v != legacyJSONVersion {
		return 0, fmt.Errorf("checkpoint: legacy format version %d, want %d", v, legacyJSONVersion)
	}
	return FormatVersion, nil
}

// encodeLegacyJSON writes st in the pre-binary gzip+JSON wire format,
// stamped with the legacy layout version. Only tests call it: it exists
// so the migration test can fabricate "old directory contents" without
// checking in binary fixtures.
func encodeLegacyJSON(w io.Writer, st *State) error {
	old := st.Version
	st.Version = legacyJSONVersion
	defer func() { st.Version = old }()
	zw, err := gzip.NewWriterLevel(w, gzip.BestSpeed)
	if err != nil {
		return fmt.Errorf("checkpoint: encode legacy: %w", err)
	}
	if err := json.NewEncoder(zw).Encode(st); err != nil {
		zw.Close()
		return fmt.Errorf("checkpoint: encode legacy: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("checkpoint: encode legacy: %w", err)
	}
	return nil
}

// encodeLegacySocketJSON is the socket-level analogue of encodeLegacyJSON.
func encodeLegacySocketJSON(w io.Writer, st *SocketState) error {
	old := st.Version
	st.Version = legacyJSONVersion
	defer func() { st.Version = old }()
	zw, err := gzip.NewWriterLevel(w, gzip.BestSpeed)
	if err != nil {
		return fmt.Errorf("checkpoint: encode legacy socket: %w", err)
	}
	if err := json.NewEncoder(zw).Encode(st); err != nil {
		zw.Close()
		return fmt.Errorf("checkpoint: encode legacy socket: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("checkpoint: encode legacy socket: %w", err)
	}
	return nil
}

// decodeLegacy reads a gzip+JSON state stream and normalizes its version
// to the current FormatVersion.
func decodeLegacy(b []byte) (*State, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	defer zr.Close()
	var st State
	if err := json.NewDecoder(zr).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	v, err := acceptLegacyVersion(st.Version)
	if err != nil {
		return nil, err
	}
	st.Version = v
	return &st, nil
}

// decodeLegacySocket reads a gzip+JSON socket stream and normalizes its
// version to the current FormatVersion.
func decodeLegacySocket(b []byte) (*SocketState, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode socket: %w", err)
	}
	defer zr.Close()
	var st SocketState
	if err := json.NewDecoder(zr).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: decode socket: %w", err)
	}
	v, err := acceptLegacyVersion(st.Version)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: socket: %w", err)
	}
	st.Version = v
	return &st, nil
}
