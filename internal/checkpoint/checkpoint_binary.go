// Binary columnar wire format (FormatVersion 4).
//
// Layout: a 4-byte magic ("PDCK"), a kind byte (state vs socket), a
// varint format version, then the state body as a sequence of framed
// sections — one per top-level State field group — each `id byte +
// uint32 little-endian payload length + payload`. Inside a section,
// fields encode in struct declaration order with typed column encodings:
//
//   - scalars: unsigned varint (uint16/32/64, Addr), zigzag varint
//     (int/int32/int64), single byte (uint8, bool), 8-byte LE bits
//     (float64)
//   - sorted or clustered numeric columns (cache tags, MSHR deadlines,
//     address sets): zigzag-delta varints — consecutive deltas are tiny,
//     so entries cost 1–2 bytes instead of 8
//   - bool columns: the Bitmask bytes verbatim (no base64 layer)
//   - strings (metric names, source/prefetcher kinds): interned — first
//     use writes ref 0 + length + bytes, later uses write index+1; the
//     intern table is keyed by first-use order, so identical states
//     produce identical bytes
//
// There is no compression layer: the columnar layout already removes the
// JSON field-name and base64 overhead gzip existed to claw back, and
// skipping it keeps encode/decode off the critical path of every fork.
//
// Determinism contract: the state structs hold no maps and every column
// encodes in declaration order, so encoding the same state twice yields
// identical bytes — the property content addressing (Key/Save/Load) and
// the fabric's warm-once leases rely on.
//
// The decoder never trusts the input: every length is bounds-checked
// against the remaining bytes before allocation, sections must consume
// exactly their declared payload, and trailing bytes are an error.
// Corruption surfaces as an error from Decode, never a panic
// (FuzzBinaryCheckpointDecode pins this).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"pdip/internal/isa"
)

// Wire constants. The magic deliberately shares no prefix with the gzip
// magic (0x1f 0x8b) the legacy sniff keys on.
const (
	kindState  = 1
	kindSocket = 2
)

var binMagic = [4]byte{'P', 'D', 'C', 'K'}

// Section ids for the State body (one per top-level field group) and the
// SocketState body.
const (
	secCore       = 1
	secMetrics    = 2
	secMem        = 3
	secBPU        = 4
	secIAG        = 5
	secEpisodes   = 6
	secFTQ        = 7
	secIFU        = 8
	secDecodeQ    = 9
	secROB        = 10
	secPQ         = 11
	secPrefetcher = 12

	secUncore = 20
	secCores  = 21
)

// encPool recycles encoder buffers: a warmed state encodes to hundreds of
// KB, and Save/fork paths encode repeatedly with identical sizes.
var encPool = sync.Pool{New: func() any { return new(encoder) }}

// Encode writes st to w in the binary columnar format. Identical states
// encode to identical bytes — the property content addressing relies on.
func Encode(w io.Writer, st *State) error {
	e := encPool.Get().(*encoder)
	e.reset()
	e.header(kindState, st.Version)
	e.state(st)
	_, err := w.Write(e.buf)
	encPool.Put(e)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Decode reads a state previously written by Encode, sniffing and
// accepting the legacy gzip+JSON format for old -checkpoint-dir contents.
// A version mismatch is an error: the caller treats it as a cache miss
// and re-warms.
func Decode(r io.Reader) (*State, error) {
	b, err := readAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return DecodeBytes(b)
}

// readAll is io.ReadAll with an exact-size fast path for readers that
// know their length (bytes.Reader, bytes.Buffer): one right-sized
// allocation instead of append-doubling through megabytes of garbage.
func readAll(r io.Reader) ([]byte, error) {
	if l, ok := r.(interface{ Len() int }); ok {
		b := make([]byte, l.Len())
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	return io.ReadAll(r)
}

// DecodeBytes is Decode over an in-memory stream, avoiding the reader
// indirection on the fork fast path. The returned state never aliases b:
// byte columns and strings are copied out, so the caller may recycle b.
func DecodeBytes(b []byte) (st *State, err error) {
	if isLegacy(b) {
		return decodeLegacy(b)
	}
	defer catchCorrupt(&err, "decode")
	d := &decoder{b: b}
	ver := d.header(kindState)
	if ver != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, want %d", ver, FormatVersion)
	}
	st = d.state()
	st.Version = ver
	d.done()
	return st, nil
}

// EncodeSocket writes a socket state in the binary columnar format, with
// the same determinism contract as Encode.
func EncodeSocket(w io.Writer, st *SocketState) error {
	e := encPool.Get().(*encoder)
	e.reset()
	e.header(kindSocket, st.Version)
	e.sv(st.Now)
	e.bool(st.SharedPrefetcher)
	e.section(secUncore, func() {
		e.cache(&st.Uncore.L2)
		e.cache(&st.Uncore.L3)
		e.registry(&st.Uncore.Metrics)
	})
	e.section(secCores, func() {
		e.uv(uint64(len(st.Cores)))
		for i := range st.Cores {
			e.state(&st.Cores[i])
		}
	})
	_, err := w.Write(e.buf)
	encPool.Put(e)
	if err != nil {
		return fmt.Errorf("checkpoint: encode socket: %w", err)
	}
	return nil
}

// DecodeSocket reads a socket state previously written by EncodeSocket,
// sniffing and accepting the legacy gzip+JSON format.
func DecodeSocket(r io.Reader) (st *SocketState, err error) {
	b, err := readAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode socket: %w", err)
	}
	if isLegacy(b) {
		return decodeLegacySocket(b)
	}
	defer catchCorrupt(&err, "decode socket")
	d := &decoder{b: b}
	ver := d.header(kindSocket)
	if ver != FormatVersion {
		return nil, fmt.Errorf("checkpoint: socket format version %d, want %d", ver, FormatVersion)
	}
	st = &SocketState{Version: ver}
	st.Now = d.sv()
	st.SharedPrefetcher = d.bool()
	end := d.section(secUncore)
	d.cache(&st.Uncore.L2)
	d.cache(&st.Uncore.L3)
	d.registry(&st.Uncore.Metrics)
	d.endSection(secUncore, end)
	end = d.section(secCores)
	n := d.count(32)
	st.Cores = make([]State, n)
	for i := range st.Cores {
		core := d.state()
		st.Cores[i] = *core
	}
	d.endSection(secCores, end)
	d.done()
	return st, nil
}

// corrupt is the decoder's internal corruption signal; catchCorrupt
// converts it to an error at the API boundary.
type corrupt struct{ msg string }

func catchCorrupt(err *error, op string) {
	if p := recover(); p != nil {
		c, ok := p.(corrupt)
		if !ok {
			panic(p)
		}
		*err = fmt.Errorf("checkpoint: %s: corrupt stream: %s", op, c.msg)
	}
}

// ---------------------------------------------------------------------------
// Encoder

// encoder accumulates the wire bytes. All appends go through the typed
// helpers so the encoding stays uniform across structs.
type encoder struct {
	buf []byte
	// strs is the intern table: name → emitted index, keyed by first-use
	// order. Lookup only — never iterated — so it cannot perturb byte
	// determinism.
	strs map[string]uint64
}

func (e *encoder) reset() {
	e.buf = e.buf[:0]
	if e.strs == nil {
		e.strs = make(map[string]uint64)
	} else {
		clear(e.strs)
	}
}

func (e *encoder) header(kind byte, version int) {
	e.buf = append(e.buf, binMagic[0], binMagic[1], binMagic[2], binMagic[3], kind)
	e.uv(uint64(version))
}

// section frames fn's output as `id + uint32 LE length + payload`,
// patching the length after the payload is written.
func (e *encoder) section(id byte, fn func()) {
	e.buf = append(e.buf, id, 0, 0, 0, 0)
	lenOff := len(e.buf) - 4
	fn()
	binary.LittleEndian.PutUint32(e.buf[lenOff:], uint32(len(e.buf)-lenOff-4))
}

func (e *encoder) u8(v byte)       { e.buf = append(e.buf, v) }
func (e *encoder) uv(v uint64)     { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) sv(v int64)      { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) vi(v int)        { e.sv(int64(v)) }
func (e *encoder) addr(a isa.Addr) { e.uv(uint64(a)) }

func (e *encoder) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *encoder) str(s string) {
	if idx, ok := e.strs[s]; ok {
		e.uv(idx + 1)
		return
	}
	e.strs[s] = uint64(len(e.strs))
	e.uv(0)
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// raw writes a length-prefixed byte column (bitmasks, owner columns).
func (e *encoder) raw(b []byte) {
	e.uv(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// bools packs a bool column into a length-prefixed bitmask.
func (e *encoder) bools(bs []bool) {
	e.uv(uint64(len(bs)))
	var acc byte
	for i, v := range bs {
		if v {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.buf = append(e.buf, acc)
			acc = 0
		}
	}
	if len(bs)%8 != 0 {
		e.buf = append(e.buf, acc)
	}
}

func (e *encoder) u16s(xs []uint16) {
	e.uv(uint64(len(xs)))
	for _, x := range xs {
		e.uv(uint64(x))
	}
}

func (e *encoder) u32s(xs []uint32) {
	e.uv(uint64(len(xs)))
	for _, x := range xs {
		e.uv(uint64(x))
	}
}

func (e *encoder) i8s(xs []int8) {
	e.uv(uint64(len(xs)))
	for _, x := range xs {
		e.buf = append(e.buf, byte(x))
	}
}

// u64d writes a uint64 column as zigzag deltas: sorted or clustered
// columns (tags, addresses, counters) shrink to 1–2 bytes per entry.
// Deltas use wraparound arithmetic, so unsorted columns stay correct —
// just less compact.
func (e *encoder) u64d(xs []uint64) {
	e.uv(uint64(len(xs)))
	var prev uint64
	for _, x := range xs {
		e.sv(int64(x - prev))
		prev = x
	}
}

func (e *encoder) i64d(xs []int64) {
	e.uv(uint64(len(xs)))
	var prev int64
	for _, x := range xs {
		e.sv(x - prev)
		prev = x
	}
}

func (e *encoder) addrs(xs []isa.Addr) {
	e.uv(uint64(len(xs)))
	var prev isa.Addr
	for _, x := range xs {
		e.sv(int64(x - prev))
		prev = x
	}
}

func (e *encoder) ints(xs []int) {
	e.uv(uint64(len(xs)))
	for _, x := range xs {
		e.sv(int64(x))
	}
}

// ---------------------------------------------------------------------------
// Decoder

// decoder walks the wire bytes with strict bounds checks; any
// inconsistency panics with corrupt, recovered at the API boundary.
type decoder struct {
	b   []byte
	off int
	// strs is the intern table in first-use order.
	strs []string
}

func (d *decoder) fail(format string, args ...any) {
	panic(corrupt{fmt.Sprintf(format+" at offset %d", append(args, d.off)...)})
}

func (d *decoder) need(n int) {
	if n < 0 || len(d.b)-d.off < n {
		d.fail("need %d bytes, have %d", n, len(d.b)-d.off)
	}
}

func (d *decoder) header(kind byte) int {
	d.need(5)
	if [4]byte(d.b[:4]) != binMagic {
		d.fail("bad magic %x", d.b[:4])
	}
	if d.b[4] != kind {
		d.fail("wrong checkpoint kind %d, want %d", d.b[4], kind)
	}
	d.off = 5
	v := d.uv()
	if v > math.MaxInt32 {
		d.fail("absurd version %d", v)
	}
	return int(v)
}

// section consumes a section header and returns the payload's end offset;
// endSection asserts the payload was consumed exactly.
func (d *decoder) section(id byte) int {
	d.need(5)
	if d.b[d.off] != id {
		d.fail("section id %d, want %d", d.b[d.off], id)
	}
	n := int(binary.LittleEndian.Uint32(d.b[d.off+1 : d.off+5]))
	d.off += 5
	d.need(n)
	return d.off + n
}

func (d *decoder) endSection(id byte, end int) {
	if d.off != end {
		d.fail("section %d length mismatch: ended at %d, want %d", id, d.off, end)
	}
}

func (d *decoder) done() {
	if d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
}

func (d *decoder) u8() byte {
	d.need(1)
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uv() uint64 {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
	}
	d.off += n
	return v
}

func (d *decoder) sv() int64 {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
	}
	d.off += n
	return v
}

func (d *decoder) vi() int { return int(d.sv()) }

func (d *decoder) addr() isa.Addr { return isa.Addr(d.uv()) }

func (d *decoder) u16() uint16 {
	v := d.uv()
	if v > math.MaxUint16 {
		d.fail("uint16 overflow %d", v)
	}
	return uint16(v)
}

func (d *decoder) u32() uint32 {
	v := d.uv()
	if v > math.MaxUint32 {
		d.fail("uint32 overflow %d", v)
	}
	return uint32(v)
}

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool")
		return false
	}
}

func (d *decoder) f64() float64 {
	d.need(8)
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// count reads an element count and rejects any claim that could not fit
// in the remaining bytes at minBytes per element — the allocation guard
// that keeps adversarial inputs from forcing huge makes.
func (d *decoder) count(minBytes int) int {
	if minBytes < 1 {
		minBytes = 1
	}
	n := d.uv()
	if n > uint64(len(d.b)-d.off)/uint64(minBytes) {
		d.fail("count %d exceeds remaining input", n)
	}
	return int(n)
}

func (d *decoder) str() string {
	ref := d.uv()
	if ref == 0 {
		n := d.count(1)
		d.need(n)
		s := string(d.b[d.off : d.off+n])
		d.off += n
		d.strs = append(d.strs, s)
		return s
	}
	if ref-1 >= uint64(len(d.strs)) {
		d.fail("intern ref %d out of range", ref)
	}
	return d.strs[ref-1]
}

func (d *decoder) raw() []byte {
	n := d.count(1)
	d.need(n)
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += n
	return out
}

func (d *decoder) boolsOut() []bool {
	n := d.uv()
	if n > uint64(len(d.b)-d.off)*8 {
		d.fail("bool count %d exceeds remaining input", n)
	}
	nb := int(n+7) / 8
	d.need(nb)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.b[d.off+i/8]>>(i%8)&1 != 0
	}
	d.off += nb
	return out
}

func (d *decoder) u16s() []uint16 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = d.u16()
	}
	return out
}

func (d *decoder) u32s() []uint32 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32()
	}
	return out
}

func (d *decoder) i8s() []int8 {
	n := d.count(1)
	d.need(n)
	if n == 0 {
		return nil
	}
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(d.b[d.off+i])
	}
	d.off += n
	return out
}

func (d *decoder) u64d() []uint64 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	var prev uint64
	for i := range out {
		prev += uint64(d.sv())
		out[i] = prev
	}
	return out
}

func (d *decoder) i64d() []int64 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	var prev int64
	for i := range out {
		prev += d.sv()
		out[i] = prev
	}
	return out
}

func (d *decoder) addrs() []isa.Addr {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]isa.Addr, n)
	var prev isa.Addr
	for i := range out {
		prev += isa.Addr(d.sv())
		out[i] = prev
	}
	return out
}

func (d *decoder) intsOut() []int {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.sv())
	}
	return out
}

// ---------------------------------------------------------------------------
// State body

func (e *encoder) state(st *State) {
	e.uv(uint64(st.Version))
	e.section(secCore, func() { e.core(&st.Core) })
	e.section(secMetrics, func() { e.registry(&st.Metrics) })
	e.section(secMem, func() {
		e.cache(&st.Mem.L1I)
		e.cache(&st.Mem.L1D)
		e.cache(&st.Mem.L2)
		e.cache(&st.Mem.L3)
		e.bool(st.Mem.Shared)
	})
	e.section(secBPU, func() { e.bpu(&st.BPU) })
	e.section(secIAG, func() { e.iag(&st.IAG) })
	e.section(secEpisodes, func() {
		e.uv(uint64(len(st.Episodes)))
		for i := range st.Episodes {
			e.episode(&st.Episodes[i])
		}
	})
	e.section(secFTQ, func() {
		e.uv(uint64(len(st.FTQ)))
		for i := range st.FTQ {
			e.ftqEntry(&st.FTQ[i])
		}
	})
	e.section(secIFU, func() {
		if st.IFU == nil {
			e.bool(false)
			return
		}
		e.bool(true)
		e.ftqEntry(st.IFU)
	})
	e.section(secDecodeQ, func() {
		e.uv(uint64(len(st.DecodeQ)))
		for i := range st.DecodeQ {
			e.uop(&st.DecodeQ[i])
		}
	})
	e.section(secROB, func() {
		e.uv(uint64(len(st.ROB.Uops)))
		for i := range st.ROB.Uops {
			e.uop(&st.ROB.Uops[i])
		}
		e.uv(st.ROB.Stats.Pushed)
		e.uv(st.ROB.Stats.Retired)
		e.uv(st.ROB.Stats.Squashed)
	})
	e.section(secPQ, func() { e.queue(&st.PQ) })
	e.section(secPrefetcher, func() { e.prefetcher(&st.Prefetcher) })
}

func (d *decoder) state() *State {
	st := &State{}
	v := d.uv()
	if v > math.MaxInt32 {
		d.fail("absurd version %d", v)
	}
	st.Version = int(v)
	end := d.section(secCore)
	d.core(&st.Core)
	d.endSection(secCore, end)
	end = d.section(secMetrics)
	d.registry(&st.Metrics)
	d.endSection(secMetrics, end)
	end = d.section(secMem)
	d.cache(&st.Mem.L1I)
	d.cache(&st.Mem.L1D)
	d.cache(&st.Mem.L2)
	d.cache(&st.Mem.L3)
	st.Mem.Shared = d.bool()
	d.endSection(secMem, end)
	end = d.section(secBPU)
	d.bpu(&st.BPU)
	d.endSection(secBPU, end)
	end = d.section(secIAG)
	d.iag(&st.IAG)
	d.endSection(secIAG, end)
	end = d.section(secEpisodes)
	n := d.count(8)
	if n > 0 {
		st.Episodes = make([]EpisodeState, n)
		for i := range st.Episodes {
			d.episode(&st.Episodes[i])
		}
	}
	d.endSection(secEpisodes, end)
	end = d.section(secFTQ)
	n = d.count(8)
	if n > 0 {
		st.FTQ = make([]FTQEntryState, n)
		for i := range st.FTQ {
			d.ftqEntry(&st.FTQ[i])
		}
	}
	d.endSection(secFTQ, end)
	end = d.section(secIFU)
	if d.bool() {
		st.IFU = &FTQEntryState{}
		d.ftqEntry(st.IFU)
	}
	d.endSection(secIFU, end)
	end = d.section(secDecodeQ)
	n = d.count(8)
	if n > 0 {
		st.DecodeQ = make([]UopState, n)
		for i := range st.DecodeQ {
			d.uop(&st.DecodeQ[i])
		}
	}
	d.endSection(secDecodeQ, end)
	end = d.section(secROB)
	n = d.count(8)
	if n > 0 {
		st.ROB.Uops = make([]UopState, n)
		for i := range st.ROB.Uops {
			d.uop(&st.ROB.Uops[i])
		}
	}
	st.ROB.Stats.Pushed = d.uv()
	st.ROB.Stats.Retired = d.uv()
	st.ROB.Stats.Squashed = d.uv()
	d.endSection(secROB, end)
	end = d.section(secPQ)
	d.queue(&st.PQ)
	d.endSection(secPQ, end)
	end = d.section(secPrefetcher)
	d.prefetcher(&st.Prefetcher)
	d.endSection(secPrefetcher, end)
	return st
}

// ---------------------------------------------------------------------------
// Per-struct codecs, each pair in field declaration order.

func (e *encoder) core(c *CoreState) {
	e.sv(c.Now)
	e.uv(c.Seq)
	e.uv(c.Retired)
	e.bool(c.HasResteer)
	e.sv(c.ResteerAt)
	e.addr(c.ResteerTarget)
	e.addr(c.ResteerTrigger)
	e.u8(c.ResteerCause)
	e.sv(c.IAGResumeAt)
	e.addr(c.ShadowTrigger)
	e.bool(c.ShadowWasReturn)
	e.vi(c.ShadowLeft)
	e.addr(c.LastTakenBlock)
	e.addrs(c.Promoted)
	e.addrs(c.FECEver)
	e.addrs(c.FECSet)
	e.uv(uint64(len(c.PFSet)))
	var prev isa.Addr
	for _, p := range c.PFSet {
		e.sv(int64(p.Line - prev))
		prev = p.Line
		e.sv(p.Cycle)
	}
	for _, v := range c.FECReqAge {
		e.uv(v)
	}
	for _, v := range c.FECHolds {
		e.uv(v)
	}
	e.uv(uint64(len(c.FECTrace)))
	for i := range c.FECTrace {
		t := &c.FECTrace[i]
		e.addr(t.Line)
		e.addr(t.Trigger)
		e.vi(t.Starve)
		e.u8(t.Served)
	}
	e.uv(c.SampleEvery)
	e.uv(c.DataRng)
	e.uv(c.PromoRng)
}

func (d *decoder) core(c *CoreState) {
	c.Now = d.sv()
	c.Seq = d.uv()
	c.Retired = d.uv()
	c.HasResteer = d.bool()
	c.ResteerAt = d.sv()
	c.ResteerTarget = d.addr()
	c.ResteerTrigger = d.addr()
	c.ResteerCause = d.u8()
	c.IAGResumeAt = d.sv()
	c.ShadowTrigger = d.addr()
	c.ShadowWasReturn = d.bool()
	c.ShadowLeft = d.vi()
	c.LastTakenBlock = d.addr()
	c.Promoted = d.addrs()
	c.FECEver = d.addrs()
	c.FECSet = d.addrs()
	if n := d.count(2); n > 0 {
		c.PFSet = make([]PFSetEntry, n)
		var prev isa.Addr
		for i := range c.PFSet {
			prev += isa.Addr(d.sv())
			c.PFSet[i].Line = prev
			c.PFSet[i].Cycle = d.sv()
		}
	}
	for i := range c.FECReqAge {
		c.FECReqAge[i] = d.uv()
	}
	for i := range c.FECHolds {
		c.FECHolds[i] = d.uv()
	}
	if n := d.count(4); n > 0 {
		c.FECTrace = make([]FECInstanceState, n)
		for i := range c.FECTrace {
			t := &c.FECTrace[i]
			t.Line = d.addr()
			t.Trigger = d.addr()
			t.Starve = d.vi()
			t.Served = d.u8()
		}
	}
	c.SampleEvery = d.uv()
	c.DataRng = d.uv()
	c.PromoRng = d.uv()
}

func (e *encoder) registry(r *RegistryState) {
	e.uv(uint64(len(r.Counters)))
	for i := range r.Counters {
		e.str(r.Counters[i].Name)
		e.uv(r.Counters[i].Value)
	}
	e.uv(uint64(len(r.Gauges)))
	for i := range r.Gauges {
		e.str(r.Gauges[i].Name)
		e.f64(r.Gauges[i].Value)
	}
	e.uv(uint64(len(r.Histograms)))
	for i := range r.Histograms {
		h := &r.Histograms[i]
		e.str(h.Name)
		e.u64d(h.Counts)
		e.uv(h.Total)
		e.f64(h.Sum)
	}
}

func (d *decoder) registry(r *RegistryState) {
	if n := d.count(2); n > 0 {
		r.Counters = make([]NamedCounter, n)
		for i := range r.Counters {
			r.Counters[i].Name = d.str()
			r.Counters[i].Value = d.uv()
		}
	}
	if n := d.count(2); n > 0 {
		r.Gauges = make([]NamedGauge, n)
		for i := range r.Gauges {
			r.Gauges[i].Name = d.str()
			r.Gauges[i].Value = d.f64()
		}
	}
	if n := d.count(2); n > 0 {
		r.Histograms = make([]HistogramState, n)
		for i := range r.Histograms {
			h := &r.Histograms[i]
			h.Name = d.str()
			h.Counts = d.u64d()
			h.Total = d.uv()
			h.Sum = d.f64()
		}
	}
}

func (e *encoder) cache(c *CacheState) {
	e.vi(c.Sets)
	e.vi(c.Ways)
	e.u64d(c.Tag)
	e.u32s(c.LRU)
	e.i64d(c.ReadyAt)
	e.raw(c.Valid)
	e.raw(c.Priority)
	e.raw(c.Prefetched)
	e.uv(uint64(c.Tick))
	e.i64d(c.Inflight)
	e.sv(c.InflightMin)
	e.cacheStats(&c.Stats)
	e.raw(c.Owner)
	e.raw(c.InflightOwner)
	e.uv(uint64(len(c.Owners)))
	for i := range c.Owners {
		o := &c.Owners[i]
		e.uv(o.Fills)
		e.uv(o.MSHRSteals)
		e.uv(o.DelayedFills)
		e.uv(o.DelayCycles)
		e.uv(o.SpecDropped)
		e.uv(o.CrossEvictionsSuffered)
		e.uv(o.CrossEvictionsCaused)
	}
}

func (d *decoder) cache(c *CacheState) {
	c.Sets = d.vi()
	c.Ways = d.vi()
	c.Tag = d.u64d()
	c.LRU = d.u32s()
	c.ReadyAt = d.i64d()
	c.Valid = Bitmask(d.raw())
	c.Priority = Bitmask(d.raw())
	c.Prefetched = Bitmask(d.raw())
	c.Tick = d.u32()
	c.Inflight = d.i64d()
	c.InflightMin = d.sv()
	d.cacheStats(&c.Stats)
	c.Owner = d.raw()
	c.InflightOwner = d.raw()
	if n := d.count(7); n > 0 {
		c.Owners = make([]OwnerStats, n)
		for i := range c.Owners {
			o := &c.Owners[i]
			o.Fills = d.uv()
			o.MSHRSteals = d.uv()
			o.DelayedFills = d.uv()
			o.DelayCycles = d.uv()
			o.SpecDropped = d.uv()
			o.CrossEvictionsSuffered = d.uv()
			o.CrossEvictionsCaused = d.uv()
		}
	}
}

func (e *encoder) cacheStats(s *CacheStats) {
	e.uv(s.Accesses)
	e.uv(s.Misses)
	e.uv(s.InstMisses)
	e.uv(s.DataMisses)
	e.uv(s.LateHits)
	e.uv(s.Fills)
	e.uv(s.PrefetchFills)
	e.uv(s.UsefulPrefetches)
	e.uv(s.LatePrefetches)
	e.uv(s.UselessPrefetches)
	e.uv(s.Evictions)
}

func (d *decoder) cacheStats(s *CacheStats) {
	s.Accesses = d.uv()
	s.Misses = d.uv()
	s.InstMisses = d.uv()
	s.DataMisses = d.uv()
	s.LateHits = d.uv()
	s.Fills = d.uv()
	s.PrefetchFills = d.uv()
	s.UsefulPrefetches = d.uv()
	s.LatePrefetches = d.uv()
	s.UselessPrefetches = d.uv()
	s.Evictions = d.uv()
}

func (e *encoder) bpu(b *BPUState) {
	t := &b.TAGE
	e.i8s(t.Base)
	e.uv(uint64(len(t.Tables)))
	for _, tbl := range t.Tables {
		e.uv(uint64(len(tbl)))
		for _, en := range tbl {
			e.uv(uint64(en.Tag))
			e.u8(byte(en.Ctr))
			e.u8(en.Useful)
		}
	}
	e.bools(t.HistBits)
	e.vi(t.HistHead)
	e.u32s(t.IdxFold)
	e.u32s(t.TagFold)
	e.u32s(t.Tg2Fold)
	e.u8(byte(t.UseAltOnNa))
	e.uv(t.AllocSeed)

	it := &b.ITTAGE
	e.addrs(it.Base)
	e.uv(uint64(len(it.Tables)))
	for _, tbl := range it.Tables {
		e.uv(uint64(len(tbl)))
		for _, en := range tbl {
			e.uv(uint64(en.Tag))
			e.addr(en.Target)
			e.u8(byte(en.Ctr))
			e.u8(en.Useful)
		}
	}
	e.bools(it.HistBits)
	e.vi(it.HistHead)
	e.u32s(it.IdxFold)
	e.u32s(it.TagFold)
	e.uv(it.AllocSeed)

	bt := &b.BTB
	e.vi(bt.Sets)
	e.vi(bt.Ways)
	e.uv(uint64(len(bt.Entries)))
	var prevTag uint64
	var prevTgt isa.Addr
	for i := range bt.Entries {
		en := &bt.Entries[i]
		e.bool(en.Valid)
		e.sv(int64(en.Tag - prevTag))
		prevTag = en.Tag
		e.sv(int64(en.Target - prevTgt))
		prevTgt = en.Target
		e.u8(byte(en.Kind))
		e.uv(uint64(en.LRU))
	}
	e.uv(uint64(bt.Tick))
	e.uv(bt.Lookups)
	e.uv(bt.Hits)

	e.addrs(b.RAS.Entries)
	e.vi(b.RAS.Top)
	e.vi(b.RAS.Depth)

	s := &b.Stats
	e.uv(s.CondBranches)
	e.uv(s.CondMispredict)
	e.uv(s.BTBLookups)
	e.uv(s.BTBMissTaken)
	e.uv(s.IndBranches)
	e.uv(s.IndMispredict)
	e.uv(s.Returns)
	e.uv(s.RetMispredict)
}

func (d *decoder) bpu(b *BPUState) {
	t := &b.TAGE
	t.Base = d.i8s()
	if n := d.count(1); n > 0 {
		t.Tables = make([][]TAGEEntry, n)
		for ti := range t.Tables {
			if m := d.count(3); m > 0 {
				tbl := make([]TAGEEntry, m)
				for i := range tbl {
					tbl[i].Tag = d.u16()
					tbl[i].Ctr = int8(d.u8())
					tbl[i].Useful = d.u8()
				}
				t.Tables[ti] = tbl
			}
		}
	}
	t.HistBits = d.boolsOut()
	t.HistHead = d.vi()
	t.IdxFold = d.u32s()
	t.TagFold = d.u32s()
	t.Tg2Fold = d.u32s()
	t.UseAltOnNa = int8(d.u8())
	t.AllocSeed = d.uv()

	it := &b.ITTAGE
	it.Base = d.addrs()
	if n := d.count(1); n > 0 {
		it.Tables = make([][]ITTAGEEntry, n)
		for ti := range it.Tables {
			if m := d.count(4); m > 0 {
				tbl := make([]ITTAGEEntry, m)
				for i := range tbl {
					tbl[i].Tag = d.u16()
					tbl[i].Target = d.addr()
					tbl[i].Ctr = int8(d.u8())
					tbl[i].Useful = d.u8()
				}
				it.Tables[ti] = tbl
			}
		}
	}
	it.HistBits = d.boolsOut()
	it.HistHead = d.vi()
	it.IdxFold = d.u32s()
	it.TagFold = d.u32s()
	it.AllocSeed = d.uv()

	bt := &b.BTB
	bt.Sets = d.vi()
	bt.Ways = d.vi()
	if n := d.count(5); n > 0 {
		bt.Entries = make([]BTBEntryState, n)
		var prevTag uint64
		var prevTgt isa.Addr
		for i := range bt.Entries {
			en := &bt.Entries[i]
			en.Valid = d.bool()
			prevTag += uint64(d.sv())
			en.Tag = prevTag
			prevTgt += isa.Addr(d.sv())
			en.Target = prevTgt
			en.Kind = isa.BranchKind(d.u8())
			en.LRU = d.u32()
		}
	}
	bt.Tick = d.u32()
	bt.Lookups = d.uv()
	bt.Hits = d.uv()

	b.RAS.Entries = d.addrs()
	b.RAS.Top = d.vi()
	b.RAS.Depth = d.vi()

	s := &b.Stats
	s.CondBranches = d.uv()
	s.CondMispredict = d.uv()
	s.BTBLookups = d.uv()
	s.BTBMissTaken = d.uv()
	s.IndBranches = d.uv()
	s.IndMispredict = d.uv()
	s.Returns = d.uv()
	s.RetMispredict = d.uv()
}

func (e *encoder) iag(g *IAGState) {
	e.source(&g.Oracle)
	if g.Wrong == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.source(g.Wrong)
	}
	e.bool(g.PendingMispredict)
}

func (d *decoder) iag(g *IAGState) {
	d.source(&g.Oracle)
	if d.bool() {
		g.Wrong = &SourceState{}
		d.source(g.Wrong)
	}
	g.PendingMispredict = d.bool()
}

func (e *encoder) source(s *SourceState) {
	e.str(s.Kind)
	if s.Walker == nil {
		e.bool(false)
	} else {
		e.bool(true)
		w := s.Walker
		e.uv(w.Rng)
		e.addrs(w.Stack)
		e.u16s(w.LoopCnt)
		e.vi(w.CurBlock)
		e.vi(w.InstIdx)
		e.addr(w.LostPC)
		e.bool(w.WrongPath)
		e.vi(w.DispatchCenter)
		e.uv(w.Count)
	}
	if s.ChampSim == nil {
		e.bool(false)
	} else {
		e.bool(true)
		c := s.ChampSim
		e.uv(c.Count)
		e.bool(c.Primed)
		e.uv(uint64(len(c.Decode)))
		prevSlot := 0
		for i := range c.Decode {
			en := &c.Decode[i]
			e.sv(int64(en.Slot - prevSlot))
			prevSlot = en.Slot
			e.addr(en.PC)
			e.u8(en.Size)
			e.u8(en.Kind)
			e.bool(en.Taken)
			e.addr(en.Target)
		}
		e.addrs(c.RAS)
		e.addr(c.PC)
	}
}

func (d *decoder) source(s *SourceState) {
	s.Kind = d.str()
	if d.bool() {
		w := &WalkerState{}
		w.Rng = d.uv()
		w.Stack = d.addrs()
		w.LoopCnt = d.u16s()
		w.CurBlock = d.vi()
		w.InstIdx = d.vi()
		w.LostPC = d.addr()
		w.WrongPath = d.bool()
		w.DispatchCenter = d.vi()
		w.Count = d.uv()
		s.Walker = w
	}
	if d.bool() {
		c := &ChampSimState{}
		c.Count = d.uv()
		c.Primed = d.bool()
		if n := d.count(6); n > 0 {
			c.Decode = make([]ChampSimDecodeEntry, n)
			prevSlot := 0
			for i := range c.Decode {
				en := &c.Decode[i]
				prevSlot += d.vi()
				en.Slot = prevSlot
				en.PC = d.addr()
				en.Size = d.u8()
				en.Kind = d.u8()
				en.Taken = d.bool()
				en.Target = d.addr()
			}
		}
		c.RAS = d.addrs()
		c.PC = d.addr()
		s.ChampSim = c
	}
}

func (e *encoder) episode(ep *EpisodeState) {
	e.addr(ep.Line)
	e.bool(ep.WrongPath)
	e.bool(ep.Missed)
	e.u8(ep.ServedBy)
	e.sv(ep.FetchCycle)
	e.sv(ep.DoneCycle)
	e.vi(ep.Starve)
	e.bool(ep.BackendEmpty)
	e.bool(ep.WasPrefetch)
	e.bool(ep.Processed)
	e.addr(ep.ResteerTrigger)
	e.bool(ep.ResteerWasReturn)
	e.sv(int64(ep.Refs))
}

func (d *decoder) episode(ep *EpisodeState) {
	ep.Line = d.addr()
	ep.WrongPath = d.bool()
	ep.Missed = d.bool()
	ep.ServedBy = d.u8()
	ep.FetchCycle = d.sv()
	ep.DoneCycle = d.sv()
	ep.Starve = d.vi()
	ep.BackendEmpty = d.bool()
	ep.WasPrefetch = d.bool()
	ep.Processed = d.bool()
	ep.ResteerTrigger = d.addr()
	ep.ResteerWasReturn = d.bool()
	ep.Refs = int32(d.sv())
}

func (e *encoder) inst(in *isa.Inst) {
	e.addr(in.PC)
	e.u8(in.Size)
	e.u8(byte(in.Kind))
	e.bool(in.Taken)
	e.addr(in.Target)
}

func (d *decoder) inst(in *isa.Inst) {
	in.PC = d.addr()
	in.Size = d.u8()
	in.Kind = isa.BranchKind(d.u8())
	in.Taken = d.bool()
	in.Target = d.addr()
}

func (e *encoder) ftqEntry(f *FTQEntryState) {
	e.uv(uint64(len(f.Insts)))
	for i := range f.Insts {
		e.inst(&f.Insts[i])
	}
	e.addr(f.Start)
	e.addrs(f.Lines)
	e.bool(f.WrongPath)
	e.bool(f.HasBranch)
	e.bool(f.PredTaken)
	e.addr(f.PredTarget)
	e.bool(f.PredBTBHit)
	e.bool(f.Mispredict)
	e.u8(f.Cause)
	e.bool(f.ResolveAtDecode)
	e.addr(f.CorrectTarget)
	e.addr(f.ShadowTrigger)
	e.bool(f.ShadowWasReturn)
	e.ints(f.Episodes)
	e.sv(f.ReadyAt)
}

func (d *decoder) ftqEntry(f *FTQEntryState) {
	if n := d.count(5); n > 0 {
		f.Insts = make([]isa.Inst, n)
		for i := range f.Insts {
			d.inst(&f.Insts[i])
		}
	}
	f.Start = d.addr()
	f.Lines = d.addrs()
	f.WrongPath = d.bool()
	f.HasBranch = d.bool()
	f.PredTaken = d.bool()
	f.PredTarget = d.addr()
	f.PredBTBHit = d.bool()
	f.Mispredict = d.bool()
	f.Cause = d.u8()
	f.ResolveAtDecode = d.bool()
	f.CorrectTarget = d.addr()
	f.ShadowTrigger = d.addr()
	f.ShadowWasReturn = d.bool()
	f.Episodes = d.intsOut()
	f.ReadyAt = d.sv()
}

func (e *encoder) uop(u *UopState) {
	e.inst(&u.Inst)
	e.uv(u.Seq)
	e.bool(u.WrongPath)
	e.vi(u.Episode)
	e.bool(u.Mispredict)
	e.bool(u.ResolveAtDecode)
	e.u8(u.Cause)
	e.addr(u.CorrectTarget)
	e.addr(u.TriggerBlock)
	e.bool(u.IsMemOp)
	e.addr(u.DataLine)
	e.sv(u.DoneAt)
	e.sv(u.AvailableAt)
}

func (d *decoder) uop(u *UopState) {
	d.inst(&u.Inst)
	u.Seq = d.uv()
	u.WrongPath = d.bool()
	u.Episode = d.vi()
	u.Mispredict = d.bool()
	u.ResolveAtDecode = d.bool()
	u.Cause = d.u8()
	u.CorrectTarget = d.addr()
	u.TriggerBlock = d.addr()
	u.IsMemOp = d.bool()
	u.DataLine = d.addr()
	u.DoneAt = d.sv()
	u.AvailableAt = d.sv()
}

func (e *encoder) requests(rs []RequestState) {
	e.uv(uint64(len(rs)))
	var prev isa.Addr
	for i := range rs {
		e.sv(int64(rs[i].Line - prev))
		prev = rs[i].Line
		e.u8(rs[i].Trigger)
	}
}

func (d *decoder) requests() []RequestState {
	n := d.count(2)
	if n == 0 {
		return nil
	}
	out := make([]RequestState, n)
	var prev isa.Addr
	for i := range out {
		prev += isa.Addr(d.sv())
		out[i].Line = prev
		out[i].Trigger = d.u8()
	}
	return out
}

func (e *encoder) queue(q *QueueState) {
	e.requests(q.Entries)
	s := &q.Stats
	e.uv(s.Enqueued)
	e.uv(s.DroppedQueueFull)
	e.uv(s.Issued)
	e.uv(s.DroppedPresent)
	e.uv(s.DroppedMSHR)
	for _, v := range s.ByTrigger {
		e.uv(v)
	}
}

func (d *decoder) queue(q *QueueState) {
	q.Entries = d.requests()
	s := &q.Stats
	s.Enqueued = d.uv()
	s.DroppedQueueFull = d.uv()
	s.Issued = d.uv()
	s.DroppedPresent = d.uv()
	s.DroppedMSHR = d.uv()
	for i := range s.ByTrigger {
		s.ByTrigger[i] = d.uv()
	}
}

func (e *encoder) prefetcher(p *PrefetcherState) {
	e.str(p.Kind)
	if p.PDIP == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.pdip(p.PDIP)
	}
	if p.EIP == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.eip(p.EIP)
	}
	if p.RDIP == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.rdip(p.RDIP)
	}
	if p.FNLMMA == nil {
		e.bool(false)
	} else {
		e.bool(true)
		e.fnlmma(p.FNLMMA)
	}
	if p.NextLine == nil {
		e.bool(false)
	} else {
		e.bool(true)
		nl := p.NextLine
		e.vi(nl.Degree)
		e.uv(nl.Emitted)
		e.requests(nl.Pending)
	}
}

func (d *decoder) prefetcher(p *PrefetcherState) {
	p.Kind = d.str()
	if d.bool() {
		p.PDIP = d.pdip()
	}
	if d.bool() {
		p.EIP = d.eip()
	}
	if d.bool() {
		p.RDIP = d.rdip()
	}
	if d.bool() {
		p.FNLMMA = d.fnlmma()
	}
	if d.bool() {
		nl := &NextLineState{}
		nl.Degree = d.vi()
		nl.Emitted = d.uv()
		nl.Pending = d.requests()
		p.NextLine = nl
	}
}

func (e *encoder) pdip(p *PDIPState) {
	// Entry and target totals lead the sets so the decoder can slab-
	// allocate the whole table in two makes instead of one per set/entry
	// (the PDIP table decodes as tens of thousands of tiny slices
	// otherwise).
	var totE, totT uint64
	for _, set := range p.Sets {
		totE += uint64(len(set))
		for i := range set {
			totT += uint64(len(set[i].Targets))
		}
	}
	e.uv(uint64(len(p.Sets)))
	e.uv(totE)
	e.uv(totT)
	for _, set := range p.Sets {
		e.uv(uint64(len(set)))
		for i := range set {
			en := &set[i]
			e.bool(en.Valid)
			e.uv(uint64(en.Tag))
			e.uv(uint64(en.LRU))
			e.uv(uint64(len(en.Targets)))
			for j := range en.Targets {
				t := &en.Targets[j]
				e.bool(t.Valid)
				e.addr(t.Base)
				e.u8(t.Mask)
				e.u8(t.Trig)
				e.uv(uint64(t.LRU))
			}
		}
	}
	e.uv(uint64(p.Tick))
	e.uv(p.Rng)
	s := &p.Stats
	e.uv(s.InsertAttempts)
	e.uv(s.InsertFiltered)
	e.uv(s.InsertNoTrigger)
	e.uv(s.InsertReturnSkipped)
	e.uv(s.Inserted)
	e.uv(s.MaskMerged)
	e.uv(s.Lookups)
	e.uv(s.Hits)
}

func (d *decoder) pdip() *PDIPState {
	p := &PDIPState{}
	n := d.count(1)
	totE := d.count(4)
	totT := d.count(5)
	slabE := make([]PDIPEntryState, totE)
	slabT := make([]PDIPTargetState, totT)
	if n > 0 {
		p.Sets = make([][]PDIPEntryState, n)
		for si := range p.Sets {
			m := d.count(4)
			if m > len(slabE) {
				d.fail("pdip entry count exceeds declared total")
			}
			if m == 0 {
				continue
			}
			set := slabE[:m:m]
			slabE = slabE[m:]
			for i := range set {
				en := &set[i]
				en.Valid = d.bool()
				en.Tag = d.u32()
				en.LRU = d.u32()
				k := d.count(5)
				if k > len(slabT) {
					d.fail("pdip target count exceeds declared total")
				}
				if k > 0 {
					en.Targets = slabT[:k:k]
					slabT = slabT[k:]
					for j := range en.Targets {
						t := &en.Targets[j]
						t.Valid = d.bool()
						t.Base = d.addr()
						t.Mask = d.u8()
						t.Trig = d.u8()
						t.LRU = d.u32()
					}
				}
			}
			p.Sets[si] = set
		}
	}
	if len(slabE) != 0 || len(slabT) != 0 {
		d.fail("pdip declared totals exceed actual entries")
	}
	p.Tick = d.u32()
	p.Rng = d.uv()
	s := &p.Stats
	s.InsertAttempts = d.uv()
	s.InsertFiltered = d.uv()
	s.InsertNoTrigger = d.uv()
	s.InsertReturnSkipped = d.uv()
	s.Inserted = d.uv()
	s.MaskMerged = d.uv()
	s.Lookups = d.uv()
	s.Hits = d.uv()
	return p
}

func (e *encoder) eip(p *EIPState) {
	e.uv(uint64(len(p.Hist)))
	var prev isa.Addr
	for i := range p.Hist {
		e.sv(int64(p.Hist[i].Line - prev))
		prev = p.Hist[i].Line
		e.sv(p.Hist[i].Cycle)
	}
	e.vi(p.Head)
	e.vi(p.Size)
	e.uv(uint64(len(p.Sets)))
	for _, set := range p.Sets {
		e.uv(uint64(len(set)))
		for i := range set {
			en := &set[i]
			e.bool(en.Valid)
			e.uv(uint64(en.Tag))
			e.uv(uint64(en.LRU))
			e.addrs(en.Dsts)
		}
	}
	e.uv(uint64(len(p.Anal)))
	prev = 0
	for i := range p.Anal {
		e.sv(int64(p.Anal[i].Src - prev))
		prev = p.Anal[i].Src
		e.addrs(p.Anal[i].Dsts)
	}
	e.uv(uint64(p.Tick))
	s := &p.Stats
	e.uv(s.Entangled)
	e.uv(s.NoSource)
	e.uv(s.Lookups)
	e.uv(s.Hits)
}

func (d *decoder) eip() *EIPState {
	p := &EIPState{}
	if n := d.count(2); n > 0 {
		p.Hist = make([]EIPHistEntry, n)
		var prev isa.Addr
		for i := range p.Hist {
			prev += isa.Addr(d.sv())
			p.Hist[i].Line = prev
			p.Hist[i].Cycle = d.sv()
		}
	}
	p.Head = d.vi()
	p.Size = d.vi()
	if n := d.count(1); n > 0 {
		p.Sets = make([][]EIPEntryState, n)
		for si := range p.Sets {
			if m := d.count(4); m > 0 {
				set := make([]EIPEntryState, m)
				for i := range set {
					en := &set[i]
					en.Valid = d.bool()
					en.Tag = d.u32()
					en.LRU = d.u32()
					en.Dsts = d.addrs()
				}
				p.Sets[si] = set
			}
		}
	}
	if n := d.count(2); n > 0 {
		p.Anal = make([]EIPAnalEntry, n)
		var prev isa.Addr
		for i := range p.Anal {
			prev += isa.Addr(d.sv())
			p.Anal[i].Src = prev
			p.Anal[i].Dsts = d.addrs()
		}
	}
	p.Tick = d.u32()
	s := &p.Stats
	s.Entangled = d.uv()
	s.NoSource = d.uv()
	s.Lookups = d.uv()
	s.Hits = d.uv()
	return p
}

func (e *encoder) rdip(p *RDIPState) {
	e.uv(uint64(len(p.Sets)))
	for _, set := range p.Sets {
		e.uv(uint64(len(set)))
		for i := range set {
			en := &set[i]
			e.bool(en.Valid)
			e.uv(uint64(en.Tag))
			e.uv(uint64(en.LRU))
			e.addrs(en.Lines)
		}
	}
	e.uv(uint64(p.Tick))
	e.addrs(p.RAS)
	e.uv(p.Sig)
	e.requests(p.Pending)
	s := &p.Stats
	e.uv(s.ContextSwitches)
	e.uv(s.Recorded)
	e.uv(s.Hits)
}

func (d *decoder) rdip() *RDIPState {
	p := &RDIPState{}
	if n := d.count(1); n > 0 {
		p.Sets = make([][]RDIPEntryState, n)
		for si := range p.Sets {
			if m := d.count(4); m > 0 {
				set := make([]RDIPEntryState, m)
				for i := range set {
					en := &set[i]
					en.Valid = d.bool()
					en.Tag = d.u32()
					en.LRU = d.u32()
					en.Lines = d.addrs()
				}
				p.Sets[si] = set
			}
		}
	}
	p.Tick = d.u32()
	p.RAS = d.addrs()
	p.Sig = d.uv()
	p.Pending = d.requests()
	s := &p.Stats
	s.ContextSwitches = d.uv()
	s.Recorded = d.uv()
	s.Hits = d.uv()
	return p
}

func (e *encoder) fnlmma(p *FNLMMAState) {
	e.raw(p.Worth)
	e.u32s(p.MMATag)
	e.addrs(p.MMADst)
	e.addrs(p.MissRing)
	e.vi(p.MissHead)
	e.requests(p.Pending)
	s := &p.Stats
	e.uv(s.FNLEmitted)
	e.uv(s.MMAEmitted)
	e.uv(s.Trained)
}

func (d *decoder) fnlmma() *FNLMMAState {
	p := &FNLMMAState{}
	p.Worth = d.raw()
	p.MMATag = d.u32s()
	p.MMADst = d.addrs()
	p.MissRing = d.addrs()
	p.MissHead = d.vi()
	p.Pending = d.requests()
	s := &p.Stats
	s.FNLEmitted = d.uv()
	s.MMAEmitted = d.uv()
	s.Trained = d.uv()
	return p
}
