package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzBinaryCheckpointDecode throws arbitrary bytes at the sniffing
// decode path — the exact bytes an on-disk checkpoint file feeds it. The
// decoder must never panic or over-allocate on hostile input (truncated
// sections, lying counts, bad intern refs, corrupt gzip headers), and
// anything it does accept must re-encode canonically: encode(decode(b))
// decodes again to the same bytes, the property the content-addressed
// store depends on.
func FuzzBinaryCheckpointDecode(f *testing.F) {
	seed := func(st *State) {
		var buf bytes.Buffer
		if err := Encode(&buf, st); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		buf.Reset()
		if err := encodeLegacyJSON(&buf, st); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(sampleState())
	for _, kind := range []string{"none", "eip", "rdip", "fnlmma", "nextline"} {
		st := sampleState()
		st.Prefetcher = samplePrefetcher(kind)
		seed(st)
	}
	minimal := &State{Version: FormatVersion}
	minimal.IAG.Oracle = SourceState{Kind: SourceCFG, Walker: &WalkerState{}}
	seed(minimal)
	var sock bytes.Buffer
	if err := EncodeSocket(&sock, sampleSocketState()); err != nil {
		f.Fatal(err)
	}
	f.Add(sock.Bytes())
	f.Add([]byte("PDCK"))
	f.Add([]byte{0x1f, 0x8b, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeBytes(data)
		if err != nil {
			return // rejected, and did not panic: fine
		}
		var buf bytes.Buffer
		if err := Encode(&buf, st); err != nil {
			t.Fatalf("re-encode of an accepted decode failed: %v", err)
		}
		st2, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		var buf2 bytes.Buffer
		if err := Encode(&buf2, st2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Error("decode→encode is not canonical: two re-encode passes disagree")
		}
	})
}

// FuzzBinarySocketDecode is the socket-stream sibling: the two decoders
// share the framing machinery but disagree on the kind byte, so each
// must reject the other's streams cleanly.
func FuzzBinarySocketDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeSocket(&buf, sampleSocketState()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := encodeLegacySocketJSON(&buf, sampleSocketState()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := Encode(&buf, sampleState()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSocket(bytes.NewReader(data))
		if err != nil {
			return
		}
		var a bytes.Buffer
		if err := EncodeSocket(&a, st); err != nil {
			t.Fatalf("re-encode of an accepted socket decode failed: %v", err)
		}
		st2, err := DecodeSocket(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("canonical socket re-encoding does not decode: %v", err)
		}
		var b bytes.Buffer
		if err := EncodeSocket(&b, st2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Error("socket decode→encode is not canonical: two re-encode passes disagree")
		}
	})
}
