package pipeline

import "testing"

type recordStage struct {
	name string
	log  *[]string
}

func (s *recordStage) Name() string { return s.name }
func (s *recordStage) Tick(now int64) {
	*s.log = append(*s.log, s.name)
}

func TestPipelineTickOrder(t *testing.T) {
	var log []string
	p := New(
		&recordStage{"retire", &log},
		&recordStage{"decode", &log},
		&recordStage{"fetch", &log},
	)
	p.Tick(1)
	p.Tick(2)
	want := []string{"retire", "decode", "fetch", "retire", "decode", "fetch"}
	if len(log) != len(want) {
		t.Fatalf("ticked %d stage calls, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("tick order %v, want %v", log, want)
		}
	}
	if len(p.Stages()) != 3 {
		t.Fatalf("Stages() returned %d", len(p.Stages()))
	}
}

func TestLatchFIFO(t *testing.T) {
	var l Latch[int]
	if _, ok := l.Peek(); ok {
		t.Fatal("peek on empty latch")
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("pop on empty latch")
	}
	for i := 1; i <= 4; i++ {
		l.Push(i)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if v, ok := l.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	for want := 1; want <= 4; want++ {
		v, ok := l.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d", v, ok, want)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len after drain = %d", l.Len())
	}
}

func TestLatchStorageRecycledOnDrain(t *testing.T) {
	var l Latch[int]
	for i := 0; i < 8; i++ {
		l.Push(i)
	}
	for l.Len() > 0 {
		l.Pop()
	}
	// After a full drain the head cursor must reset so pushes reuse the
	// backing array from index 0.
	l.Push(42)
	if v, ok := l.Peek(); !ok || v != 42 {
		t.Fatalf("Peek after recycle = %d,%v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after recycle = %d", l.Len())
	}
}

func TestLatchFilter(t *testing.T) {
	var l Latch[int]
	for i := 0; i < 10; i++ {
		l.Push(i)
	}
	// Consume a prefix, then filter: only unconsumed entries survive.
	l.Pop()
	l.Pop()
	l.Filter(func(v int) bool { return v%2 == 0 })
	want := []int{2, 4, 6, 8}
	if l.Len() != len(want) {
		t.Fatalf("Len after filter = %d, want %d", l.Len(), len(want))
	}
	for _, w := range want {
		v, ok := l.Pop()
		if !ok || v != w {
			t.Fatalf("Pop after filter = %d,%v want %d", v, ok, w)
		}
	}
}

func TestLatchFilterAll(t *testing.T) {
	var l Latch[string]
	l.Push("a")
	l.Push("b")
	l.Filter(func(string) bool { return false })
	if l.Len() != 0 {
		t.Fatalf("Len = %d after filter-all", l.Len())
	}
	l.Push("c")
	if v, _ := l.Pop(); v != "c" {
		t.Fatalf("latch corrupted after filter-all: %q", v)
	}
}

func TestLatchReset(t *testing.T) {
	var l Latch[int]
	l.Push(1)
	l.Push(2)
	l.Pop()
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after reset = %d", l.Len())
	}
	l.Push(7)
	if v, _ := l.Peek(); v != 7 {
		t.Fatalf("Peek after reset = %d", v)
	}
}
