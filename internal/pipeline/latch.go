package pipeline

// Latch is a typed FIFO buffer between two pipeline stages: the producer
// pushes at the tail, the consumer peeks and pops at the head, and a
// flush-style Filter drops entries wholesale (wrong-path squash). It is a
// slice with a head cursor rather than a ring so batch production (a
// fetch group) amortises to one append each, and storage is recycled once
// the consumer fully drains.
//
// A Latch imposes no capacity of its own — pipeline structures bound
// occupancy with their own rules (e.g. decode checks Len before accepting
// a fetch group), so the bound stays where the semantics live.
type Latch[T any] struct {
	buf  []T
	head int
}

// Len returns the number of buffered entries.
func (l *Latch[T]) Len() int { return len(l.buf) - l.head }

// Grow pre-sizes the latch's backing array to hold at least n entries, so
// a latch whose occupancy is bounded by pipeline rules (decode's depth
// check) never reallocates on the hot path. A no-op when capacity already
// suffices or the latch is mid-use.
func (l *Latch[T]) Grow(n int) {
	if cap(l.buf) >= n || len(l.buf) > 0 || l.head > 0 {
		return
	}
	l.buf = make([]T, 0, n)
}

// Push appends v at the tail.
func (l *Latch[T]) Push(v T) {
	l.buf = append(l.buf, v)
}

// Peek returns the head entry without consuming it.
func (l *Latch[T]) Peek() (T, bool) {
	if l.head >= len(l.buf) {
		var zero T
		return zero, false
	}
	return l.buf[l.head], true
}

// Pop consumes and returns the head entry. When the latch drains empty its
// storage is reset so the backing array is reused by later pushes.
func (l *Latch[T]) Pop() (T, bool) {
	if l.head >= len(l.buf) {
		var zero T
		return zero, false
	}
	v := l.buf[l.head]
	l.head++
	if l.head == len(l.buf) {
		l.buf = l.buf[:0]
		l.head = 0
	}
	return v, true
}

// Filter keeps only entries satisfying keep, preserving order and
// compacting storage (the wrong-path squash on a front-end resteer).
func (l *Latch[T]) Filter(keep func(T) bool) {
	kept := l.buf[:0]
	for i := l.head; i < len(l.buf); i++ {
		if keep(l.buf[i]) {
			kept = append(kept, l.buf[i])
		}
	}
	l.buf = kept
	l.head = 0
}

// At returns the i-th buffered entry (0 = head) without consuming it.
// Checkpointing walks latch contents with it; i must be in [0, Len()).
func (l *Latch[T]) At(i int) T {
	return l.buf[l.head+i]
}

// Reset discards every entry.
func (l *Latch[T]) Reset() {
	l.buf = l.buf[:0]
	l.head = 0
}
