// Package pipeline provides the structural glue of the simulated core: a
// Stage interface for per-cycle pipeline stages and a typed Latch that
// buffers work between adjacent stages. The package is deliberately tiny —
// it owns no simulation semantics. Stages encapsulate one slice of the
// per-cycle work (retire, decode, fetch, ...) and are ticked in program
// order by a Pipeline; a Latch is the only sanctioned way for one stage to
// hand work to the next, which keeps every stage testable in isolation and
// makes the cycle loop's evaluation order explicit and auditable.
package pipeline

// Stage is one pipeline stage. Tick advances the stage by one cycle; the
// Pipeline calls it exactly once per simulated cycle, in construction
// order. A stage that models a multi-issue structure (e.g. a 2-wide fetch
// unit) iterates internally rather than being ticked twice.
type Stage interface {
	// Name identifies the stage in diagnostics and metrics.
	Name() string
	// Tick advances the stage to cycle now.
	Tick(now int64)
}

// Pipeline is an ordered list of stages ticked once per cycle. Order is
// the contract: it is fixed at construction and defines the intra-cycle
// evaluation sequence (older work drains before younger work enters).
type Pipeline struct {
	stages []Stage
}

// New builds a pipeline that ticks stages in the given order.
func New(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// Tick advances every stage to cycle now, in order.
//
//lint:hotpath
func (p *Pipeline) Tick(now int64) {
	for _, s := range p.stages {
		s.Tick(now)
	}
}

// Stages returns the ordered stage list (diagnostics and tests).
func (p *Pipeline) Stages() []Stage { return p.stages }

// Never is the NextEventAt sentinel meaning "no self-originated event":
// the stage cannot act, or change any observable behaviour (including the
// counters it would bump on a stalled cycle), until some other stage acts
// first. A stage returning Never delegates its wake-up to the bounds of
// the stages it depends on.
const Never = int64(^uint64(0) >> 1)

// Sleeper is implemented by stages that can lower-bound their next event
// for idle-cycle fast-forward. NextEventAt(now) returns the earliest cycle
// strictly after now at which the stage could do state-changing work or at
// which its per-cycle bookkeeping (stall attribution, top-down slots)
// could change classification — or Never. The bound must be conservative:
// returning too-early cycles only costs speed; returning a late bound
// breaks bit-identical replay. Implementations are part of the simulated
// machine and must derive the bound from simulated state only (never the
// host clock; see the simlint determinism analyzer).
type Sleeper interface {
	NextEventAt(now int64) int64
}

// StallAccounter is implemented by stages that do per-cycle bookkeeping
// even when stalled (e.g. decode's starvation attribution). AccountStall
// applies, in one bulk update, the bookkeeping the stage would have done
// on each of the n stalled cycles now+1 .. now+n — the driver guarantees
// (via NextEventAt) that the stage's behaviour is identical on every
// cycle of that window.
type StallAccounter interface {
	AccountStall(now int64, n int64)
}

// NextEventAt returns the earliest NextEventAt bound over every stage, or
// Never when all stages are event-free. Stages that do not implement
// Sleeper cannot be bounded and pin the result to now+1 (no skip).
func (p *Pipeline) NextEventAt(now int64) int64 {
	next := Never
	for _, s := range p.stages {
		sl, ok := s.(Sleeper)
		if !ok {
			return now + 1
		}
		if t := sl.NextEventAt(now); t < next {
			next = t
		}
	}
	return next
}

// AccountStall applies n stalled cycles of bulk bookkeeping to every
// stage that does any (see StallAccounter).
func (p *Pipeline) AccountStall(now int64, n int64) {
	for _, s := range p.stages {
		if a, ok := s.(StallAccounter); ok {
			a.AccountStall(now, n)
		}
	}
}
