// Package pipeline provides the structural glue of the simulated core: a
// Stage interface for per-cycle pipeline stages and a typed Latch that
// buffers work between adjacent stages. The package is deliberately tiny —
// it owns no simulation semantics. Stages encapsulate one slice of the
// per-cycle work (retire, decode, fetch, ...) and are ticked in program
// order by a Pipeline; a Latch is the only sanctioned way for one stage to
// hand work to the next, which keeps every stage testable in isolation and
// makes the cycle loop's evaluation order explicit and auditable.
package pipeline

// Stage is one pipeline stage. Tick advances the stage by one cycle; the
// Pipeline calls it exactly once per simulated cycle, in construction
// order. A stage that models a multi-issue structure (e.g. a 2-wide fetch
// unit) iterates internally rather than being ticked twice.
type Stage interface {
	// Name identifies the stage in diagnostics and metrics.
	Name() string
	// Tick advances the stage to cycle now.
	Tick(now int64)
}

// Pipeline is an ordered list of stages ticked once per cycle. Order is
// the contract: it is fixed at construction and defines the intra-cycle
// evaluation sequence (older work drains before younger work enters).
type Pipeline struct {
	stages []Stage
}

// New builds a pipeline that ticks stages in the given order.
func New(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// Tick advances every stage to cycle now, in order.
func (p *Pipeline) Tick(now int64) {
	for _, s := range p.stages {
		s.Tick(now)
	}
}

// Stages returns the ordered stage list (diagnostics and tests).
func (p *Pipeline) Stages() []Stage { return p.stages }
