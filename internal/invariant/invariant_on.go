//go:build siminvariant

package invariant

import "fmt"

// Enabled gates the assertion blocks; true under the siminvariant tag.
const Enabled = true

// Failf reports a violated invariant. The simulator's state is wrong by
// definition at this point, so it panics rather than returning.
func Failf(format string, args ...any) {
	panic("invariant violation: " + fmt.Sprintf(format, args...))
}
