package invariant

import "testing"

// TestFailf checks both build modes: armed (siminvariant tag) Failf must
// panic with the formatted condition; disarmed it must be a no-op.
func TestFailf(t *testing.T) {
	if !Enabled {
		Failf("must be a no-op when disabled %d", 1)
		return
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic with invariants enabled")
		}
		if s, ok := r.(string); !ok || s != "invariant violation: boom 7" {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Failf("boom %d", 7)
}
