//go:build !siminvariant

package invariant

// Enabled gates the assertion blocks; false in the default build, so the
// compiler removes the checks entirely.
const Enabled = false

// Failf is a no-op in the default build.
func Failf(format string, args ...any) {}
