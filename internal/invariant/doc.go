// Package invariant is the runtime twin of the static cmd/simlint
// contracts: micro-assertions wired into the pipeline stages, the FTQ,
// the prefetch queue, the caches, and the memory ports.
//
// The checks are gated behind the siminvariant build tag. In the default
// build Enabled is a false constant, so every `if invariant.Enabled`
// block is eliminated by the compiler and the simulator pays nothing.
// `make check-invariant` (go test -tags siminvariant ./...) runs the full
// test suite with the assertions armed; a violated invariant panics with
// the broken condition.
package invariant
