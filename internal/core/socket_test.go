package core

import (
	"bytes"
	"fmt"
	"testing"

	"pdip/internal/checkpoint"
	"pdip/internal/pdip"
)

// socketTenants builds one tenant per seed, each with its own program,
// seed, and a fresh PDIP instance. Regenerating with the same seeds
// yields configs that NewSocketFromSnapshot accepts as matching.
func socketTenants(seeds ...uint64) []SocketTenant {
	out := make([]SocketTenant, len(seeds))
	for i, seed := range seeds {
		c := testConfig(seed)
		c.Prefetcher = pdip.New(pdip.DefaultConfig())
		out[i] = SocketTenant{Prog: testProgram(seed), Config: c}
	}
	return out
}

// TestSocketSingleTenantMatchesCore is the core-level half of the N=1
// bit-identity pin: a one-tenant socket — same program, seed, and policy —
// must tick the exact cycles and counters of a standalone core, even
// though its miss path runs through the uncore's arbitrated port.
func TestSocketSingleTenantMatchesCore(t *testing.T) {
	prog := testProgram(41)
	mkCfg := func() Config {
		c := testConfig(41)
		c.Prefetcher = pdip.New(pdip.DefaultConfig())
		return c
	}

	co := MustNew(prog, mkCfg())
	if err := co.Run(40000); err != nil {
		t.Fatal(err)
	}

	s, err := NewSocket([]SocketTenant{{Prog: prog, Config: mkCfg()}}, SocketConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(40000); err != nil {
		t.Fatal(err)
	}

	if co.Cycles() != s.Core(0).Cycles() {
		t.Errorf("cycle counts diverged: core %d, socket %d", co.Cycles(), s.Core(0).Cycles())
	}
	if s.Cycles() != s.Core(0).Cycles() {
		t.Errorf("socket clock %d out of lockstep with its core's %d", s.Cycles(), s.Core(0).Cycles())
	}
	if diff := co.MetricsSnapshot().Diff(s.Core(0).MetricsSnapshot()); len(diff) > 0 {
		show := diff
		if len(show) > 20 {
			show = show[:20]
		}
		t.Errorf("%d metrics differ between core and 1-tenant socket:\n  %v", len(diff), show)
	}
}

// TestSocketLockstep pins the socket clock discipline: after any Run,
// every core's cycle counter equals the socket's.
func TestSocketLockstep(t *testing.T) {
	s, err := NewSocket(socketTenants(51, 52, 53), SocketConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(8000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumCores(); i++ {
		if got := s.Core(i).Cycles(); got != s.Cycles() {
			t.Errorf("core %d at cycle %d, socket at %d", i, got, s.Cycles())
		}
	}
}

// TestSocketRejectsMismatchedUncore pins the constructor contract: tenants
// whose shared-level geometry differs from tenant 0's are refused (there
// is only one uncore).
func TestSocketRejectsMismatchedUncore(t *testing.T) {
	tenants := socketTenants(61, 62)
	tenants[1].Config.Mem.L2.Ways *= 2
	if _, err := NewSocket(tenants, SocketConfig{}); err == nil {
		t.Fatal("socket accepted tenants with differing L2 geometry")
	}
	tenants = socketTenants(61, 62)
	tenants[1].Config.NoFastForward = true
	if _, err := NewSocket(tenants, SocketConfig{}); err == nil {
		t.Fatal("socket accepted tenants with differing fast-forward modes")
	}
}

// snapshotSocketRoundTrip snapshots s, pushes the state through the
// serialized wire format (EncodeSocket/DecodeSocket), and restores a
// fresh socket built from identically regenerated tenants.
func snapshotSocketRoundTrip(t *testing.T, s *Socket, seeds []uint64, sc SocketConfig) *Socket {
	t.Helper()
	st, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := checkpoint.EncodeSocket(&buf, st); err != nil {
		t.Fatalf("encode: %v", err)
	}
	st2, err := checkpoint.DecodeSocket(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	fork, err := NewSocketFromSnapshot(socketTenants(seeds...), sc, st2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return fork
}

// diffSockets runs both sockets until every tenant retires n more
// instructions and diffs the combined (per-tenant + uncore) snapshots
// bit-exactly.
func diffSockets(t *testing.T, label string, a, b *Socket, n uint64) {
	t.Helper()
	if err := a.Run(n); err != nil {
		t.Fatalf("%s: original: %v", label, err)
	}
	if err := b.Run(n); err != nil {
		t.Fatalf("%s: restored: %v", label, err)
	}
	if a.Cycles() != b.Cycles() {
		t.Errorf("%s: socket clocks diverged: %d vs %d", label, a.Cycles(), b.Cycles())
	}
	if diff := a.CombinedSnapshot().Diff(b.CombinedSnapshot()); len(diff) > 0 {
		show := diff
		if len(show) > 20 {
			show = show[:20]
		}
		t.Errorf("%s: %d metrics differ after restore:\n  %v", label, len(diff), show)
	}
}

// TestSocketCheckpointMidWrongPath is the adversarial socket round trip:
// a 2-core socket is snapshotted at arbitrary mid-run points until core 1
// is caught with its wrong-path walker live (a pending resteer in flight),
// the state crosses the wire format, and the restored socket must replay
// bit-identically — per-tenant counters and shared-level interference
// counters alike. The test fails if the wrong-path condition is never
// observed, so the coverage claim is itself checked.
func TestSocketCheckpointMidWrongPath(t *testing.T) {
	seeds := []uint64{31, 32}
	sc := SocketConfig{}
	s, err := NewSocket(socketTenants(seeds...), sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(3001); err != nil {
		t.Fatal(err)
	}

	caught := false
	for step := 0; step < 600 && !caught; step++ {
		if err := s.Run(13); err != nil {
			t.Fatal(err)
		}
		st, err := s.Snapshot()
		if err != nil {
			t.Fatalf("step %d: snapshot: %v", step, err)
		}
		caught = st.Cores[1].IAG.Wrong != nil
		if !caught && step%41 != 0 {
			continue
		}
		fork := snapshotSocketRoundTrip(t, s, seeds, sc)
		diffSockets(t, fmt.Sprintf("step %d (wrong-path=%v)", step, caught), s, fork, 499)
	}
	if !caught {
		t.Error("wrong-path walker on core 1 never observed across snapshots — widen the snapshot schedule")
	}
}
