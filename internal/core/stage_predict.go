package core

import (
	"pdip/internal/invariant"
	"pdip/internal/mem"
	"pdip/internal/pipeline"
)

// predictStage runs the IAG: assemble the next predicted basic block,
// enqueue it in the FTQ, send the FDIP prime messages for its lines, and
// consult the prefetcher (PDIP table lookup happens once per new FTQ
// entry, §4.2). The stage iterates IAGWidth times per cycle — Golden
// Cove-class front-ends predict two blocks per cycle, and without
// prediction bandwidth above the fetch drain rate the FTQ could never
// refill after a flush.
type predictStage struct {
	co *Core
}

// Name implements pipeline.Stage.
func (s *predictStage) Name() string { return "predict" }

// Tick implements pipeline.Stage.
//
//lint:hotpath
func (s *predictStage) Tick(now int64) {
	width := s.co.cfg.IAGWidth
	if width <= 0 {
		width = 1
	}
	for i := 0; i < width; i++ {
		s.predictOne(now)
	}
}

// NextEventAt implements pipeline.Sleeper: the IAG produces a block every
// cycle it is neither blocked by a full FTQ (a fetch-stage pop is the
// wake-up) nor inside the post-resteer redirect bubble.
func (s *predictStage) NextEventAt(now int64) int64 {
	co := s.co
	if co.ftq.Full() {
		return pipeline.Never
	}
	if co.iagResumeAt > now+1 {
		return co.iagResumeAt
	}
	return now + 1
}

func (s *predictStage) predictOne(now int64) {
	co := s.co
	if co.ftq.Full() || now < co.iagResumeAt {
		return
	}
	e := co.iag.NextEntry()
	if invariant.Enabled && len(e.Lines) == 0 {
		invariant.Failf("predict: IAG produced an FTQ entry with no lines at cycle %d", now)
	}

	if !e.WrongPath && co.shadowLeft > 0 {
		e.ShadowTrigger = co.shadowTrigger
		e.ShadowWasReturn = co.shadowWasReturn
		co.shadowLeft--
	}

	co.ftq.Push(e)

	// FDIP prefetch: FTQ entries directly prime the L1I (§2.1). One MSHR
	// is reserved so demand fetches are never fully locked out.
	if !co.cfg.DisableFDIPPrefetch {
		for _, line := range e.Lines {
			co.iport.Send(mem.Req{
				Op:       mem.OpPrime,
				Line:     line,
				At:       now,
				Reserve:  1,
				Priority: co.isPromoted(line),
			})
		}
	}

	// Prefetcher consultation, one probe per distinct line of the entry
	// (the entry's block address, plus spill lines for spanning blocks).
	co.reqBuf = co.reqBuf[:0]
	for _, line := range e.Lines {
		co.reqBuf = co.pf.OnFTQInsert(line, co.reqBuf)
	}
	for _, r := range co.reqBuf {
		// Duplicate suppression against the FTQ (§6.2).
		if co.ftq.Contains(r.Line) {
			co.ct.prefetch.pfDroppedFTQ.Inc()
			continue
		}
		if co.pfSet != nil {
			co.pfSet[r.Line] = now
		}
		co.pq.Enqueue(r)
	}
}
