package core

import (
	"pdip/internal/frontend"
	"pdip/internal/invariant"
)

// Object recycling for the two hot per-cycle allocations the profiler
// found: uops (one per delivered instruction) and line episodes (one per
// fetched line). Both have strict single-owner lifecycles —
//
//   - a uop is created at deliver, lives in the fetch→decode latch and
//     then the ROB, and dies at retire or wrong-path squash;
//   - an episode is created at startFetch, is referenced by the uops of
//     its entry (LineEpisode.Refs), and dies when the last referencing
//     uop dies (or immediately after deliver, for spill-line episodes no
//     uop maps to);
//
// so a free list on the Core replaces the garbage collector entirely in
// steady state. Recycled objects are reset field-for-field to the zero
// value, making a pooled allocation bit-identical to a fresh one.

// newUop pops a recycled uop (zeroed) or allocates a fresh one.
func (co *Core) newUop() *frontend.Uop {
	if n := len(co.uopFree); n > 0 {
		u := co.uopFree[n-1]
		co.uopFree = co.uopFree[:n-1]
		*u = frontend.Uop{}
		return u
	}
	//lint:ignore allocfree pool refill when the free list is empty; amortized and recycled via releaseUop
	return &frontend.Uop{}
}

// releaseUop returns u to the pool, dropping its episode reference and
// releasing the episode when u was its last holder. The caller must not
// touch u afterwards.
func (co *Core) releaseUop(u *frontend.Uop) {
	if ep := u.Ep; ep != nil {
		u.Ep = nil
		ep.Refs--
		if invariant.Enabled && ep.Refs < 0 {
			invariant.Failf("pool: episode for line %#x released below zero refs", uint64(ep.Line))
		}
		if ep.Refs == 0 {
			co.releaseEpisode(ep)
		}
	}
	co.uopFree = append(co.uopFree, u)
}

// newEpisode pops a recycled episode (zeroed) or allocates a fresh one.
func (co *Core) newEpisode() *frontend.LineEpisode {
	if n := len(co.epFree); n > 0 {
		ep := co.epFree[n-1]
		co.epFree = co.epFree[:n-1]
		*ep = frontend.LineEpisode{}
		return ep
	}
	//lint:ignore allocfree pool refill when the free list is empty; amortized and recycled via releaseEpisode
	return &frontend.LineEpisode{}
}

// releaseEpisode returns ep to the pool. The caller must not touch ep
// afterwards.
func (co *Core) releaseEpisode(ep *frontend.LineEpisode) {
	co.epFree = append(co.epFree, ep)
}
