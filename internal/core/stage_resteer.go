package core

import (
	"pdip/internal/frontend"
	"pdip/internal/invariant"
	"pdip/internal/pipeline"
)

// resteerStage applies the single pending front-end redirect once its
// resolution cycle arrives: classify it, flush speculative front-end
// state, squash wrong-path work, and open the resteer shadow window the
// FEC trigger association relies on (§4.2). It owns the
// frontend.resteer.* counters.
type resteerStage struct {
	co *Core
}

// Name implements pipeline.Stage.
func (s *resteerStage) Name() string { return "resteer" }

// Tick implements pipeline.Stage.
//
//lint:hotpath
func (s *resteerStage) Tick(now int64) {
	co := s.co
	if !co.hasResteer || now < co.pendingResteer.at {
		return
	}
	ev := co.pendingResteer
	co.hasResteer = false

	ct := &co.ct.resteer
	switch ev.cause {
	case frontend.ResteerBTBMiss:
		ct.btbMiss.Inc()
	case frontend.ResteerReturn:
		ct.ret.Inc()
	default:
		ct.mispredict.Inc()
	}

	// Flush speculative front-end state, recycling the flushed entries
	// (none has episodes: episodes only exist once an entry leaves the FTQ
	// for the IFU). The PQ is intentionally not flushed: its entries are
	// prefetch hints, not control flow.
	for e := co.ftq.Pop(); e != nil; e = co.ftq.Pop() {
		co.iag.Recycle(e)
	}
	if invariant.Enabled && co.ftq.Len() != 0 {
		invariant.Failf("resteer: FTQ holds %d entries after flush", co.ftq.Len())
	}
	if e := co.ifuEntry; e != nil && e.WrongPath {
		// Not yet delivered, so no uop references its episodes.
		for _, ep := range e.Episodes {
			co.releaseEpisode(ep)
		}
		co.iag.Recycle(e)
		co.ifuEntry = nil
	}
	// Drop wrong-path uops from the fetch→decode latch and the ROB,
	// recycling their storage.
	co.decodeQ.Filter(func(u *frontend.Uop) bool {
		if u.WrongPath {
			co.releaseUop(u)
			return false
		}
		return true
	})
	co.rob.SquashWrongPath(co.releaseUop)

	co.iag.Resteer()
	co.iagResumeAt = now + int64(co.cfg.ResteerPenalty)

	co.shadowTrigger = ev.trigger
	co.shadowWasReturn = ev.cause == frontend.ResteerReturn
	co.shadowLeft = co.cfg.ResteerShadowBlocks
}

// NextEventAt implements pipeline.Sleeper: the stage acts only at the
// pending redirect's resolution cycle.
func (s *resteerStage) NextEventAt(now int64) int64 {
	co := s.co
	if !co.hasResteer {
		return pipeline.Never
	}
	if co.pendingResteer.at <= now {
		return now + 1
	}
	return co.pendingResteer.at
}
