package core

import (
	"pdip/internal/frontend"
	"pdip/internal/invariant"
)

// resteerStage applies the single pending front-end redirect once its
// resolution cycle arrives: classify it, flush speculative front-end
// state, squash wrong-path work, and open the resteer shadow window the
// FEC trigger association relies on (§4.2). It owns the
// frontend.resteer.* counters.
type resteerStage struct {
	co *Core
}

// Name implements pipeline.Stage.
func (s *resteerStage) Name() string { return "resteer" }

// Tick implements pipeline.Stage.
func (s *resteerStage) Tick(now int64) {
	co := s.co
	ev := co.pendingResteer
	if ev == nil || now < ev.at {
		return
	}
	co.pendingResteer = nil

	ct := &co.ct.resteer
	switch ev.cause {
	case frontend.ResteerBTBMiss:
		ct.btbMiss.Inc()
	case frontend.ResteerReturn:
		ct.ret.Inc()
	default:
		ct.mispredict.Inc()
	}

	// Flush speculative front-end state. The PQ is intentionally not
	// flushed: its entries are prefetch hints, not control flow.
	co.ftq.Flush()
	if invariant.Enabled && co.ftq.Len() != 0 {
		invariant.Failf("resteer: FTQ holds %d entries after flush", co.ftq.Len())
	}
	if co.ifuEntry != nil && co.ifuEntry.WrongPath {
		co.ifuEntry = nil
	}
	// Drop wrong-path uops from the fetch→decode latch.
	co.decodeQ.Filter(func(u *frontend.Uop) bool { return !u.WrongPath })
	co.rob.SquashWrongPath()

	co.iag.Resteer()
	co.iagResumeAt = now + int64(co.cfg.ResteerPenalty)

	co.shadowTrigger = ev.trigger
	co.shadowWasReturn = ev.cause == frontend.ResteerReturn
	co.shadowLeft = co.cfg.ResteerShadowBlocks
}
