package core

import (
	"pdip/internal/frontend"
	"pdip/internal/isa"
	"pdip/internal/mem"
)

// FEC (front-end criticality) shared state queries. The FEC sets live on
// Core because three stages consult them: retire writes them, fetch reads
// them for FEC-Ideal service, and the prefetch-drain stage reads the
// promotion set to tag fills with the EMISSARY P-bit.

// priorityOf reports whether a prefetched line should carry the EMISSARY
// P-bit (PDIP+EMISSARY physical synergy: one FEC-tracking mechanism).
func (co *Core) priorityOf(line isa.Addr) bool {
	if !co.cfg.Emissary && !co.cfg.FECIdeal {
		return false
	}
	_, ok := co.promoted[line]
	return ok
}

// isPromoted reports whether line was EMISSARY-promoted (demand fills of
// promoted lines carry the P-bit).
func (co *Core) isPromoted(line isa.Addr) bool {
	if !co.cfg.Emissary && !co.cfg.FECIdeal {
		return false
	}
	_, ok := co.promoted[line]
	return ok
}

// isFECEver reports whether line ever met the FEC conditions (FEC-Ideal).
func (co *Core) isFECEver(line isa.Addr) bool {
	_, ok := co.fecEver[line]
	return ok
}

// recordFECDiagnostics files one FEC episode into the CollectSets-only
// diagnostic structures: the sampled trace, the trigger-pair holds
// classification, and the request-age histogram.
func (co *Core) recordFECDiagnostics(ep *frontend.LineEpisode) {
	if co.pfSet == nil {
		return
	}
	if len(co.fecTrace) < 4000 {
		co.fecTrace = append(co.fecTrace, FECInstance{
			Line:    ep.Line,
			Trigger: ep.ResteerTrigger,
			Starve:  ep.Starve,
			Served:  ep.ServedBy,
		})
	}
	if holder, ok := co.pf.(interface{ DebugHolds(t, l isa.Addr) bool }); ok {
		switch {
		case ep.ResteerTrigger == 0:
			co.fecHolds[0]++
		case holder.DebugHolds(ep.ResteerTrigger, ep.Line):
			co.fecHolds[1]++
		default:
			co.fecHolds[2]++
		}
	}
	if at, ok := co.pfSet[ep.Line]; !ok {
		co.fecReqAge[0]++
	} else if age := ep.FetchCycle - at; age > 10000 {
		co.fecReqAge[1]++
	} else if age > 100 {
		co.fecReqAge[2]++
	} else {
		co.fecReqAge[3]++
	}
}

// FECInstance is a sampled FEC episode for diagnostics.
type FECInstance struct {
	Line, Trigger isa.Addr
	Starve        int
	Served        mem.Level
}

// FECTrace returns sampled FEC instances (CollectSets only).
func (co *Core) FECTrace() []FECInstance { return co.fecTrace }
