package core

import (
	"testing"

	"pdip/internal/frontend"
	"pdip/internal/isa"
	"pdip/internal/prefetch"
)

// stageCore builds a core for direct stage poking.
func stageCore(t *testing.T) *Core {
	t.Helper()
	return MustNew(testProgram(11), testConfig(11))
}

// stageOf fetches the named stage from the core's pipeline.
func stageOf(t *testing.T, co *Core, name string) interface{ Tick(int64) } {
	t.Helper()
	for _, s := range co.Pipeline().Stages() {
		if s.Name() == name {
			return s
		}
	}
	t.Fatalf("no stage named %q", name)
	return nil
}

func TestPipelineStageOrder(t *testing.T) {
	co := stageCore(t)
	want := []string{"retire", "resteer", "decode", "fetch", "predict", "prefetch-drain"}
	stages := co.Pipeline().Stages()
	if len(stages) != len(want) {
		t.Fatalf("pipeline has %d stages, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.Name() != want[i] {
			t.Fatalf("stage %d is %q, want %q (order is the intra-cycle contract)",
				i, s.Name(), want[i])
		}
	}
}

func TestPredictStageFillsFTQ(t *testing.T) {
	co := stageCore(t)
	ps := stageOf(t, co, "predict")
	if co.ftq.Len() != 0 {
		t.Fatal("FTQ not empty at construction")
	}
	ps.Tick(1)
	if got := co.ftq.Len(); got != co.cfg.IAGWidth {
		t.Fatalf("one predict tick enqueued %d entries, want IAGWidth=%d", got, co.cfg.IAGWidth)
	}
	// The FDIP prime path must have filled the L1I for the entry's lines.
	if co.hier.L1I.Stats.Fills == 0 {
		t.Fatal("predict tick primed no L1I lines (FDIP prime path broken)")
	}
}

func TestPredictStageRespectsResteerBubble(t *testing.T) {
	co := stageCore(t)
	ps := stageOf(t, co, "predict")
	co.iagResumeAt = 100
	ps.Tick(50)
	if co.ftq.Len() != 0 {
		t.Fatal("predict stage ran inside the resteer bubble")
	}
	ps.Tick(100)
	if co.ftq.Len() == 0 {
		t.Fatal("predict stage still stalled once the bubble elapsed")
	}
}

func TestFetchStageDeliversIntoLatch(t *testing.T) {
	co := stageCore(t)
	ps := stageOf(t, co, "predict")
	fs := stageOf(t, co, "fetch")
	ps.Tick(1)
	fs.Tick(1) // starts the demand fetch; entry not ready on a cold miss
	for now := int64(2); now < 400 && co.decodeQ.Len() == 0; now++ {
		fs.Tick(now)
	}
	if co.decodeQ.Len() == 0 {
		t.Fatal("fetch stage never delivered uops into the decode latch")
	}
	u, _ := co.decodeQ.Peek()
	if u.Ep == nil {
		t.Fatal("delivered uop has no fetch episode")
	}
}

func TestDecodeStageStarvationAttribution(t *testing.T) {
	co := stageCore(t)
	ds := stageOf(t, co, "decode")
	// Empty latch, empty FTQ, no IFU entry: a starved cycle attributed to
	// the no-entry bucket, with the full width counted front-end bound.
	ds.Tick(1)
	if got := co.ct.decode.decodeStarved.Load(); got != 1 {
		t.Fatalf("decodeStarved = %d, want 1", got)
	}
	if got := co.ct.decode.starveNoEntry.Load(); got != 1 {
		t.Fatalf("starveNoEntry = %d, want 1", got)
	}
	if got := co.ct.decode.tdFrontend.Load(); got != uint64(co.cfg.DecodeWidth) {
		t.Fatalf("tdFrontend = %d, want DecodeWidth=%d", got, co.cfg.DecodeWidth)
	}
}

func TestDecodeStageMovesReadyUops(t *testing.T) {
	co := stageCore(t)
	ds := stageOf(t, co, "decode")
	for i := 0; i < 3; i++ {
		co.decodeQ.Push(&frontend.Uop{Seq: uint64(i + 1), AvailableAt: 5})
	}
	ds.Tick(4) // not yet available
	if co.rob.Len() != 0 {
		t.Fatal("decode moved uops before AvailableAt")
	}
	if got := co.ct.decode.decodeStarved.Load(); got != 1 {
		t.Fatalf("decodeStarved = %d, want 1 (work in latch, none ready)", got)
	}
	ds.Tick(5)
	if co.rob.Len() != 3 {
		t.Fatalf("ROB holds %d uops after decode, want 3", co.rob.Len())
	}
	if co.decodeQ.Len() != 0 {
		t.Fatalf("latch still holds %d uops", co.decodeQ.Len())
	}
}

func TestResteerStageSquashesWrongPath(t *testing.T) {
	co := stageCore(t)
	rs := stageOf(t, co, "resteer")
	// Two correct-path uops below a wrong-path suffix in the latch and
	// one wrong-path uop in the ROB.
	co.decodeQ.Push(&frontend.Uop{Seq: 1})
	co.decodeQ.Push(&frontend.Uop{Seq: 2, WrongPath: true})
	co.decodeQ.Push(&frontend.Uop{Seq: 3, WrongPath: true})
	co.rob.Push(&frontend.Uop{Seq: 4})
	co.rob.Push(&frontend.Uop{Seq: 5, WrongPath: true})
	co.pendingResteer = resteerEvent{
		at:      10,
		trigger: isa.Addr(0x40),
		cause:   frontend.ResteerMispredict,
	}
	co.hasResteer = true
	rs.Tick(9) // not due yet
	if co.decodeQ.Len() != 3 {
		t.Fatal("resteer applied before its resolution cycle")
	}
	rs.Tick(10)
	if co.hasResteer {
		t.Fatal("resteer not consumed")
	}
	if co.decodeQ.Len() != 1 {
		t.Fatalf("latch holds %d uops after squash, want 1", co.decodeQ.Len())
	}
	if u, _ := co.decodeQ.Peek(); u.WrongPath || u.Seq != 1 {
		t.Fatalf("wrong survivor %+v", u)
	}
	if co.rob.Len() != 1 {
		t.Fatalf("ROB holds %d after squash, want 1", co.rob.Len())
	}
	if got := co.ct.resteer.mispredict.Load(); got != 1 {
		t.Fatalf("mispredict resteer counter = %d, want 1", got)
	}
	if co.iagResumeAt != 10+int64(co.cfg.ResteerPenalty) {
		t.Fatalf("iagResumeAt = %d", co.iagResumeAt)
	}
	if co.shadowTrigger != isa.Addr(0x40) || co.shadowLeft != co.cfg.ResteerShadowBlocks {
		t.Fatal("resteer shadow window not opened")
	}
}

func TestRetireStageRetiresAndCounts(t *testing.T) {
	co := stageCore(t)
	rs := stageOf(t, co, "retire")
	// Refs mirrors the pool contract: one live reference per uop built
	// below, so retire's release path sees a consistent refcount.
	ep := &frontend.LineEpisode{Line: isa.Addr(0x1000), Missed: true, Starve: 5, Refs: 2}
	co.rob.Push(&frontend.Uop{Seq: 1, DoneAt: 3, Ep: ep})
	co.rob.Push(&frontend.Uop{Seq: 2, DoneAt: 3, Ep: ep})
	rs.Tick(2) // head not done
	if co.Retired() != 0 {
		t.Fatal("retired before DoneAt")
	}
	rs.Tick(3)
	if co.Retired() != 2 {
		t.Fatalf("retired %d, want 2", co.Retired())
	}
	// The shared episode is processed exactly once and met the FEC
	// conditions (missed, starved).
	if got := co.ct.retire.linesRetired.Load(); got != 1 {
		t.Fatalf("linesRetired = %d, want 1 (episode processed once)", got)
	}
	if got := co.ct.retire.fecLines.Load(); got != 1 {
		t.Fatalf("fecLines = %d, want 1", got)
	}
	if got := co.ct.retire.fecStallCycles.Load(); got != 5 {
		t.Fatalf("fecStallCycles = %d, want 5", got)
	}
	if !co.isFECEver(ep.Line) {
		t.Fatal("FEC line not recorded in fecEver")
	}
}

func TestPrefetchDrainStageIssuesIntoPort(t *testing.T) {
	co := stageCore(t)
	// Enqueue a PQ request directly and tick only the drain stage: the
	// prefetch must reach the L1I through the instruction port.
	ds := stageOf(t, co, "prefetch-drain")
	co.pq.Enqueue(prefetch.Request{Line: isa.Addr(0x8000)})
	ds.Tick(1)
	if co.pq.Stats.Issued != 1 {
		t.Fatalf("PQ issued %d, want 1", co.pq.Stats.Issued)
	}
	if co.hier.L1I.Stats.PrefetchFills != 1 {
		t.Fatalf("L1I prefetch fills = %d, want 1", co.hier.L1I.Stats.PrefetchFills)
	}
}

func TestStepTicksWholePipeline(t *testing.T) {
	co := stageCore(t)
	if err := co.Run(5000); err != nil {
		t.Fatal(err)
	}
	r := co.Result()
	if r.Core.Instructions < 5000 || r.Core.Cycles == 0 {
		t.Fatalf("pipeline did not run: %+v", r.Core)
	}
	// Every stage left its fingerprint: fetch filled the L1I, decode did
	// top-down accounting, retire counted line episodes.
	if r.L1I.Accesses == 0 || r.Core.LinesRetired == 0 {
		t.Fatalf("stage fingerprints missing: %+v", r.Core)
	}
	slots := r.Core.TopDown.Retiring + r.Core.TopDown.BadSpeculation +
		r.Core.TopDown.FrontendBound + r.Core.TopDown.BackendBound
	if want := r.Core.Cycles * uint64(co.cfg.DecodeWidth); slots != want {
		t.Fatalf("top-down slots %d != cycles×width %d", slots, want)
	}
}
