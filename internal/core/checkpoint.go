package core

import (
	"fmt"
	"sort"

	"pdip/internal/cfg"
	"pdip/internal/checkpoint"
	"pdip/internal/frontend"
	"pdip/internal/isa"
	"pdip/internal/mem"
	"pdip/internal/prefetch"
	"pdip/internal/trace"
)

// Snapshot captures the complete simulator state at the current cycle
// boundary: every structure whose contents influence future simulated
// behaviour or final metrics. A core restored from the snapshot (see
// NewFromSnapshot) replays bit-identically to this core — that property
// is what lets the harness warm a configuration once and fork the warm
// state across measure-phase variants.
//
// Deliberately not captured (and safe to omit):
//
//   - The uop/episode/FTQ-entry free pools and the retired wrong-path
//     walker (pool.go, IAG.free/wrongFree): recycled objects are reset
//     field-for-field to zero, so an empty pool is behaviourally
//     identical to a warm one.
//   - TAGE/ITTAGE index memos: pure caches, recomputed on demand.
//   - Per-stage scratch (decodeStage.lastSeq, prefetchDrainStage.lastTick,
//     reqBuf, retireBuf): invariant bookkeeping and within-cycle buffers
//     that are empty at every cycle boundary.
//   - Interval samples: measurement output, cleared by ResetStats; warm
//     cores have sampling disabled.
//
// TestCheckpointCompleteness walks the core's type tree by reflection and
// fails when a field is neither captured nor on the explicit skip list,
// so future state additions cannot silently desynchronize this format.
func (co *Core) Snapshot() (*checkpoint.State, error) {
	ck, ok := co.pf.(prefetch.Checkpointer)
	if !ok {
		return nil, fmt.Errorf("core: prefetcher %q does not implement prefetch.Checkpointer", co.pf.Name())
	}

	// Deduplicate live episodes in deterministic first-encounter order:
	// decode-latch uops (oldest first), then ROB uops (oldest first), then
	// the in-flight IFU entry's episode list. Episodes are shared between
	// the uops of one fetch group, so identity (not value) must survive
	// the round trip for the Refs-based recycling to keep working.
	epIdx := make(map[*frontend.LineEpisode]int)
	var eps []*frontend.LineEpisode
	epID := func(ep *frontend.LineEpisode) int {
		if id, ok := epIdx[ep]; ok {
			return id
		}
		id := len(eps)
		epIdx[ep] = id
		eps = append(eps, ep)
		return id
	}
	for i := 0; i < co.decodeQ.Len(); i++ {
		if u := co.decodeQ.At(i); u.Ep != nil {
			epID(u.Ep)
		}
	}
	co.rob.ForEach(func(u *frontend.Uop) {
		if u.Ep != nil {
			epID(u.Ep)
		}
	})
	if co.ifuEntry != nil {
		for _, ep := range co.ifuEntry.Episodes {
			epID(ep)
		}
	}

	st := &checkpoint.State{
		Version: checkpoint.FormatVersion,
		Core:    co.captureCoreState(),
		Metrics: co.reg.CaptureCheckpoint(),
		Mem:     co.hier.CaptureCheckpoint(),
		BPU:     co.bp.CaptureCheckpoint(),
		IAG:     co.iag.CaptureCheckpoint(),
	}

	st.Episodes = make([]checkpoint.EpisodeState, len(eps))
	for i, ep := range eps {
		st.Episodes[i] = ep.CaptureCheckpoint()
	}
	st.FTQ = co.ftq.CaptureCheckpoint(epID)
	if co.ifuEntry != nil {
		e := co.ifuEntry.CaptureCheckpoint(epID)
		st.IFU = &e
	}
	st.DecodeQ = make([]checkpoint.UopState, 0, co.decodeQ.Len())
	for i := 0; i < co.decodeQ.Len(); i++ {
		st.DecodeQ = append(st.DecodeQ, co.decodeQ.At(i).CaptureCheckpoint(epID))
	}
	st.ROB = co.rob.CaptureCheckpoint(epID)
	st.PQ = co.pq.CaptureCheckpoint()
	st.Prefetcher = ck.CaptureCheckpoint()

	// epID only registers episodes reachable from uops and the IFU entry;
	// if the walk above ever misses a reachable episode, its index would
	// silently dangle, so double-check the registration count.
	if len(epIdx) != len(eps) {
		return nil, fmt.Errorf("core: episode dedup inconsistency (%d indexed, %d collected)", len(epIdx), len(eps))
	}
	return st, nil
}

// captureCoreState captures the core's scalar state, the EMISSARY and FEC
// sets (key-sorted — checkpoint bytes must not depend on Go map iteration
// order), the CollectSets diagnostics, and the rng streams.
func (co *Core) captureCoreState() checkpoint.CoreState {
	st := checkpoint.CoreState{
		Now:             co.now,
		Seq:             co.seq,
		Retired:         co.retired,
		HasResteer:      co.hasResteer,
		ResteerAt:       co.pendingResteer.at,
		ResteerTarget:   co.pendingResteer.target,
		ResteerTrigger:  co.pendingResteer.trigger,
		ResteerCause:    uint8(co.pendingResteer.cause),
		IAGResumeAt:     co.iagResumeAt,
		ShadowTrigger:   co.shadowTrigger,
		ShadowWasReturn: co.shadowWasReturn,
		ShadowLeft:      co.shadowLeft,
		LastTakenBlock:  co.lastTakenBlock,
		Promoted:        sortedAddrSet(co.promoted),
		FECEver:         sortedAddrSet(co.fecEver),
		FECReqAge:       co.fecReqAge,
		FECHolds:        co.fecHolds,
		SampleEvery:     co.sampleEvery,
		DataRng:         co.dataRng.State(),
		PromoRng:        co.promoRng.State(),
	}
	if co.fecSet != nil {
		st.FECSet = sortedAddrSet(co.fecSet)
	}
	if co.pfSet != nil {
		lines := make([]isa.Addr, 0, len(co.pfSet))
		for line := range co.pfSet {
			lines = append(lines, line)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		st.PFSet = make([]checkpoint.PFSetEntry, 0, len(lines))
		for _, line := range lines {
			st.PFSet = append(st.PFSet, checkpoint.PFSetEntry{Line: line, Cycle: co.pfSet[line]})
		}
	}
	if len(co.fecTrace) > 0 {
		st.FECTrace = make([]checkpoint.FECInstanceState, len(co.fecTrace))
		for i, f := range co.fecTrace {
			st.FECTrace[i] = checkpoint.FECInstanceState{
				Line: f.Line, Trigger: f.Trigger, Starve: f.Starve, Served: uint8(f.Served),
			}
		}
	}
	return st
}

func sortedAddrSet(m map[isa.Addr]struct{}) []isa.Addr {
	out := make([]isa.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewFromSnapshot builds a core over prog with configuration c and
// overwrites its state from st — the in-memory fork operation. The
// configuration must describe the same machine the snapshot was taken on
// (same geometry everywhere); measure-phase knobs (CollectSets,
// NoFastForward, sampling) may differ. st is only read: one snapshot can
// be forked concurrently from many goroutines.
func NewFromSnapshot(prog *cfg.Program, c Config, st *checkpoint.State) (*Core, error) {
	return NewFromSnapshotWithSource(prog, nil, c, st)
}

// NewFromSnapshotWithSource is NewFromSnapshot for cores driven by an
// explicit instruction source (trace replay): src must be a fresh source
// over the same input the snapshot's core was built on, and is positioned
// by the restore.
func NewFromSnapshotWithSource(prog *cfg.Program, src trace.OracleSource, c Config, st *checkpoint.State) (*Core, error) {
	if st.Version != checkpoint.FormatVersion {
		return nil, fmt.Errorf("core: snapshot format version %d, simulator speaks %d", st.Version, checkpoint.FormatVersion)
	}
	co, err := NewWithSource(prog, src, c)
	if err != nil {
		return nil, err
	}
	if err := co.restore(st); err != nil {
		return nil, err
	}
	return co, nil
}

// restore overwrites a freshly constructed core's state from st. Slices
// held by st are copied, never aliased.
func (co *Core) restore(st *checkpoint.State) error {
	ck, ok := co.pf.(prefetch.Checkpointer)
	if !ok {
		return fmt.Errorf("core: prefetcher %q does not implement prefetch.Checkpointer", co.pf.Name())
	}
	if err := co.reg.RestoreCheckpoint(st.Metrics); err != nil {
		return err
	}
	if err := co.hier.RestoreCheckpoint(st.Mem); err != nil {
		return err
	}
	if err := co.bp.RestoreCheckpoint(st.BPU); err != nil {
		return err
	}
	if err := co.iag.RestoreCheckpoint(st.IAG); err != nil {
		return err
	}

	eps := make([]*frontend.LineEpisode, len(st.Episodes))
	for i := range st.Episodes {
		ep := co.newEpisode()
		ep.RestoreCheckpoint(st.Episodes[i])
		eps[i] = ep
	}
	if err := co.ftq.RestoreCheckpoint(st.FTQ, eps); err != nil {
		return err
	}
	co.ifuEntry = nil
	if st.IFU != nil {
		e, err := frontend.NewEntryFromCheckpoint(*st.IFU, eps)
		if err != nil {
			return err
		}
		co.ifuEntry = e
	}
	co.decodeQ.Reset()
	for i := range st.DecodeQ {
		u := co.newUop()
		if err := u.RestoreCheckpoint(st.DecodeQ[i], eps); err != nil {
			return err
		}
		co.decodeQ.Push(u)
	}
	if err := co.rob.RestoreCheckpoint(st.ROB, eps, co.newUop); err != nil {
		return err
	}
	if err := co.pq.RestoreCheckpoint(st.PQ); err != nil {
		return err
	}
	if err := ck.RestoreCheckpoint(st.Prefetcher); err != nil {
		return err
	}
	return co.restoreCoreState(st.Core)
}

// restoreCoreState is captureCoreState's inverse.
func (co *Core) restoreCoreState(st checkpoint.CoreState) error {
	co.now = st.Now
	co.seq = st.Seq
	co.retired = st.Retired
	co.hasResteer = st.HasResteer
	co.pendingResteer = resteerEvent{
		at:      st.ResteerAt,
		target:  st.ResteerTarget,
		trigger: st.ResteerTrigger,
		cause:   frontend.ResteerCause(st.ResteerCause),
	}
	co.iagResumeAt = st.IAGResumeAt
	co.shadowTrigger = st.ShadowTrigger
	co.shadowWasReturn = st.ShadowWasReturn
	co.shadowLeft = st.ShadowLeft
	co.lastTakenBlock = st.LastTakenBlock
	clear(co.promoted)
	for _, a := range st.Promoted {
		co.promoted[a] = struct{}{}
	}
	clear(co.fecEver)
	for _, a := range st.FECEver {
		co.fecEver[a] = struct{}{}
	}
	// The CollectSets diagnostics restore only into a core that has them
	// enabled; a fork that turns CollectSets on over a snapshot taken
	// without it simply starts with empty sets (identical to a scratch run,
	// whose ResetStats clears them at the warmup boundary).
	if co.fecSet != nil {
		clear(co.fecSet)
		for _, a := range st.FECSet {
			co.fecSet[a] = struct{}{}
		}
	}
	if co.pfSet != nil {
		clear(co.pfSet)
		for _, e := range st.PFSet {
			co.pfSet[e.Line] = e.Cycle
		}
	}
	co.fecReqAge = st.FECReqAge
	co.fecHolds = st.FECHolds
	co.fecTrace = co.fecTrace[:0]
	for _, f := range st.FECTrace {
		co.fecTrace = append(co.fecTrace, FECInstance{
			Line: f.Line, Trigger: f.Trigger, Starve: f.Starve, Served: mem.Level(f.Served),
		})
	}
	co.sampleEvery = st.SampleEvery
	co.dataRng.SetState(st.DataRng)
	co.promoRng.SetState(st.PromoRng)
	return nil
}
