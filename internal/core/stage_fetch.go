package core

import (
	"pdip/internal/frontend"
	"pdip/internal/invariant"
	"pdip/internal/isa"
	"pdip/internal/mem"
	"pdip/internal/pipeline"
)

// dataBase places the synthetic data region far from code.
const dataBase isa.Addr = 0x10_0000_0000

// fetchStage is the IFU: it pops ready FTQ entries, issues demand fetch
// messages for every line (creating the fetch episodes the FEC machinery
// tracks), and delivers decoded uops into the fetch→decode latch. The
// stage iterates FetchWidth times per cycle.
type fetchStage struct {
	co *Core
}

// Name implements pipeline.Stage.
func (s *fetchStage) Name() string { return "fetch" }

// Tick implements pipeline.Stage.
//
//lint:hotpath
func (s *fetchStage) Tick(now int64) {
	width := s.co.cfg.FetchWidth
	if width <= 0 {
		width = 1
	}
	for i := 0; i < width; i++ {
		s.fetchOne(now)
	}
}

func (s *fetchStage) fetchOne(now int64) {
	co := s.co
	// Start a new entry when idle.
	if co.ifuEntry == nil {
		e := co.ftq.Pop()
		if e == nil {
			return
		}
		s.startFetch(e, now)
	}
	e := co.ifuEntry
	if now < e.ReadyAt {
		return
	}
	// Respect the decode-buffer bound.
	if co.decodeQ.Len()+len(e.Insts) > co.cfg.DecodeQDepth {
		return
	}
	s.deliver(e, now)
	co.ifuEntry = nil
	// The entry is fully drained: release the episodes no uop mapped to
	// (spill lines whose instructions all started on the previous line) and
	// recycle the entry's storage.
	for _, ep := range e.Episodes {
		if ep.Refs == 0 {
			co.releaseEpisode(ep)
		}
	}
	co.iag.Recycle(e)
}

// NextEventAt implements pipeline.Sleeper. The IFU's next event is the
// blocking entry's ReadyAt; with no entry in flight it acts the next cycle
// when the FTQ holds work, and otherwise sleeps until another stage's
// event (a predict-stage insert) precedes any fetch. An entry blocked on
// decode-buffer depth likewise waits on decode's own bound.
func (s *fetchStage) NextEventAt(now int64) int64 {
	co := s.co
	e := co.ifuEntry
	if e == nil {
		if co.ftq.Len() > 0 {
			return now + 1
		}
		return pipeline.Never
	}
	if now < e.ReadyAt {
		return e.ReadyAt
	}
	return pipeline.Never
}

// startFetch issues demand-fetch messages for every line of the entry and
// creates the fetch episodes the FEC machinery tracks.
func (s *fetchStage) startFetch(e *frontend.FTQEntry, now int64) {
	co := s.co
	ready := now
	e.Episodes = e.Episodes[:0]
	for _, line := range e.Lines {
		//lint:ignore allocfree inlined pool refill (core/pool.go newEpisode); amortized once the free list warms
		ep := co.newEpisode()
		ep.Line = line
		ep.WrongPath = e.WrongPath
		ep.FetchCycle = now
		ep.ResteerTrigger = e.ShadowTrigger
		ep.ResteerWasReturn = e.ShadowWasReturn
		if co.cfg.FECIdeal && co.isFECEver(line) {
			// FEC-Ideal: FEC-qualified lines always arrive with L1I hit
			// latency (§3's ceiling).
			ep.DoneCycle = now
		} else {
			res := co.iport.Send(mem.Req{
				Op:       mem.OpFetch,
				Line:     line,
				At:       now,
				Priority: co.isPromoted(line),
			})
			// A line still in flight at demand time (partial hit) is a
			// miss the FTQ prefetch could not fully hide — exactly the
			// class the FEC conditions are about (§2.1).
			ep.Missed = !res.L1Hit || res.WasInflight
			ep.WasPrefetch = res.WasPrefetch
			ep.ServedBy = res.ServedBy
			if res.L1Hit && !res.WasInflight {
				// Pipelined hit: latency folded into DecodePipeLat.
				ep.DoneCycle = now
			} else {
				ep.DoneCycle = res.Done
			}
		}
		if invariant.Enabled && ep.DoneCycle < now {
			invariant.Failf("fetch: line %#x completes at %d, before its demand issue at %d",
				uint64(line), ep.DoneCycle, now)
		}
		e.Episodes = append(e.Episodes, ep)
		if ep.DoneCycle > ready {
			ready = ep.DoneCycle
		}
	}
	e.ReadyAt = ready
	co.ifuEntry = e
}

// deliver converts the fetched entry's instructions into uops and pushes
// them into the fetch→decode latch.
func (s *fetchStage) deliver(e *frontend.FTQEntry, now int64) {
	co := s.co
	avail := now + int64(co.cfg.DecodePipeLat)
	epFor := func(pc isa.Addr) *frontend.LineEpisode {
		ln := pc.Line()
		for _, ep := range e.Episodes {
			if ep.Line == ln {
				return ep
			}
		}
		return e.Episodes[0]
	}
	for i := range e.Insts {
		in := e.Insts[i]
		co.seq++
		//lint:ignore allocfree inlined pool refill (core/pool.go newUop); amortized once the free list warms
		u := co.newUop()
		u.Inst = in
		u.Seq = co.seq
		u.WrongPath = e.WrongPath
		u.Ep = epFor(in.PC)
		u.AvailableAt = avail
		u.Ep.Refs++
		if in.Kind == isa.NotBranch && co.dataRng.Bool(co.cfg.MemOpFrac) {
			u.IsMemOp = true
			u.DataLine = co.genDataLine()
		}
		if e.Mispredict && i == len(e.Insts)-1 {
			u.Mispredict = true
			u.ResolveAtDecode = e.ResolveAtDecode
			u.Cause = e.Cause
			u.CorrectTarget = e.CorrectTarget
			// The PDIP trigger key is the block (line) address of the
			// trigger *instruction* (SS5.1) - stable across occurrences,
			// unlike FTQ-entry boundaries, which depend on which of the
			// preceding branches happened to be taken.
			u.TriggerBlock = in.PC.Line()
		}
		co.decodeQ.Push(u)
	}
}

// genDataLine draws from the workload's synthetic data-address stream.
func (co *Core) genDataLine() isa.Addr {
	hot := co.cfg.DataHotLines
	cold := co.cfg.DataColdLines
	if hot <= 0 {
		hot = 1
	}
	if cold <= 0 {
		cold = 1
	}
	var idx int
	if co.dataRng.Bool(co.cfg.DataHotFrac) {
		idx = co.dataRng.Intn(hot)
	} else {
		idx = hot + co.dataRng.Intn(cold)
	}
	return dataBase + isa.Addr(idx*isa.LineSize)
}
